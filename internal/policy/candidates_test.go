package policy

import (
	"testing"

	"dqalloc/internal/rng"
	"dqalloc/internal/workload"
)

func TestSelectorRespectsCandidates(t *testing.T) {
	sel := NewSelector(bnqCost{}, 4)
	env := testEnv(fixedView{io: []int{0, 9, 0, 0}, cpu: []int{0, 0, 0, 0}}, 4)
	env.Candidates = []int{1, 3}
	// Site 0 is idle but not a candidate; site 1 is loaded; site 3 idle.
	for i := 0; i < 5; i++ {
		if got := sel.Select(ioQuery(), 0, env); got != 3 {
			t.Fatalf("selector chose %d, want candidate 3", got)
		}
	}
}

func TestSelectorKeepsCandidateArrival(t *testing.T) {
	sel := NewSelector(bnqCost{}, 4)
	env := testEnv(fixedView{io: []int{1, 1, 1, 1}, cpu: []int{0, 0, 0, 0}}, 4)
	env.Candidates = []int{0, 2}
	if got := sel.Select(ioQuery(), 0, env); got != 0 {
		t.Errorf("tied candidate arrival not kept: chose %d", got)
	}
}

func TestLocalFallsBackToNearestCopy(t *testing.T) {
	p, err := New(Local, 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	env := testEnv(fixedView{io: make([]int, 6), cpu: make([]int, 6)}, 6)
	env.NumSites = 6
	env.Candidates = []int{1, 4}
	tests := []struct {
		arrival int
		want    int
	}{
		{arrival: 1, want: 1}, // holds a copy
		{arrival: 2, want: 4}, // downstream: 4 is 2 hops, 1 is 5 hops
		{arrival: 5, want: 1}, // wraps: 1 is 2 hops, 4 is 5 hops
		{arrival: 0, want: 1},
	}
	for _, tt := range tests {
		if got := p.Select(ioQuery(), tt.arrival, env); got != tt.want {
			t.Errorf("arrival %d -> %d, want %d", tt.arrival, got, tt.want)
		}
	}
}

func TestRandomStaysInCandidates(t *testing.T) {
	p, err := New(Random, 6, rng.NewStream(5))
	if err != nil {
		t.Fatal(err)
	}
	env := testEnv(fixedView{io: make([]int, 6), cpu: make([]int, 6)}, 6)
	env.NumSites = 6
	env.Candidates = []int{2, 5}
	counts := map[int]int{}
	for i := 0; i < 1000; i++ {
		counts[p.Select(ioQuery(), 0, env)]++
	}
	if len(counts) != 2 || counts[2] == 0 || counts[5] == 0 {
		t.Errorf("random picks = %v, want both candidates only", counts)
	}
}

func TestLERTWithCandidatesPricesNetwork(t *testing.T) {
	p, err := New(LERT, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Arrival holds a copy; the only other candidate is idle but the
	// query is tiny, so the message cost should keep it local.
	env := testEnv(fixedView{io: []int{1, 0, 9, 9}, cpu: []int{0, 0, 0, 0}}, 4)
	env.Candidates = []int{0, 1}
	q := &workload.Query{EstReads: 1, EstPageCPU: 0.05}
	if got := p.Select(q, 0, env); got != 0 {
		t.Errorf("LERT moved a tiny query to %d despite message cost", got)
	}
	big := &workload.Query{EstReads: 40, EstPageCPU: 0.05}
	if got := p.Select(big, 0, env); got != 1 {
		t.Errorf("LERT kept a big query local (got %d), idle candidate ignored", got)
	}
}

func TestSelectorCandidateRotation(t *testing.T) {
	sel := NewSelector(bnqCost{}, 4)
	env := testEnv(fixedView{io: []int{9, 0, 0, 0}, cpu: []int{0, 0, 0, 0}}, 4)
	env.Candidates = []int{1, 2, 3}
	seen := map[int]bool{}
	for i := 0; i < 6; i++ {
		seen[sel.Select(ioQuery(), 0, env)] = true
	}
	if len(seen) < 2 {
		t.Errorf("tied candidates never rotated: %v", seen)
	}
}
