package policy

import (
	"math"
	"testing"
)

// TestChooseDOPBounds pins the property the engine's split placement
// relies on: the chosen degree always lies in [1, max(1, kmax)], so a
// split can never be asked to span more sites than the up-candidate
// pool offers.
func TestChooseDOPBounds(t *testing.T) {
	for _, fixed := range []float64{0, 1, 50} {
		for _, div := range []float64{0, 0.5, 10, 1000} {
			for _, ov := range []float64{0, 0.1, 5, 1e6} {
				for _, kmax := range []int{-3, 0, 1, 2, 7, 64} {
					k := ChooseDOP(fixed, div, ov, kmax)
					hi := kmax
					if hi < 1 {
						hi = 1
					}
					if k < 1 || k > hi {
						t.Fatalf("ChooseDOP(%v,%v,%v,%d) = %d outside [1,%d]",
							fixed, div, ov, kmax, k, hi)
					}
				}
			}
		}
	}
}

// TestSplitCostMonotoneAtZeroOverhead: with no per-site price, more
// sites never hurt — the cost is non-increasing in k, so ChooseDOP
// saturates at kmax whenever any work is divisible.
func TestSplitCostMonotoneAtZeroOverhead(t *testing.T) {
	for _, div := range []float64{0.1, 3, 250} {
		prev := math.Inf(1)
		for k := 1; k <= 32; k++ {
			c := SplitCost(5, div, 0, k)
			if c > prev {
				t.Fatalf("SplitCost(5,%v,0,%d) = %v > cost at k-1 = %v", div, k, c, prev)
			}
			prev = c
		}
		if k := ChooseDOP(5, div, 0, 8); k != 8 {
			t.Fatalf("zero overhead, divisible %v: ChooseDOP = %d, want saturation at 8", div, k)
		}
	}
}

// TestChooseDOPTiePrefersSerial: splitting must strictly pay. With no
// divisible work every k costs the same (plus overhead), so the degree
// stays 1.
func TestChooseDOPTiePrefersSerial(t *testing.T) {
	if k := ChooseDOP(10, 0, 0, 8); k != 1 {
		t.Fatalf("nothing divisible, zero overhead: ChooseDOP = %d, want 1", k)
	}
	if k := ChooseDOP(10, 0, 2, 8); k != 1 {
		t.Fatalf("nothing divisible, positive overhead: ChooseDOP = %d, want 1", k)
	}
}

// TestChooseDOPOverheadBound: a large enough per-site price makes every
// split lose, and the optimum under SplitCost's convex tradeoff is
// sqrt(divisible/overhead) rounded to a neighbor.
func TestChooseDOPOverheadBound(t *testing.T) {
	if k := ChooseDOP(0, 10, 1000, 16); k != 1 {
		t.Fatalf("overhead dwarfs the divisible work: ChooseDOP = %d, want 1", k)
	}
	// divisible 100, overhead 1: continuous optimum k* = 10.
	k := ChooseDOP(0, 100, 1, 16)
	if k < 9 || k > 11 {
		t.Fatalf("ChooseDOP(0,100,1,16) = %d, want near the sqrt optimum 10", k)
	}
	c1 := SplitCost(0, 100, 1, 1)
	ck := SplitCost(0, 100, 1, k)
	if ck >= c1 {
		t.Fatalf("chosen split cost %v not below serial cost %v", ck, c1)
	}
}

func TestParallelModeStringsAndParse(t *testing.T) {
	for _, m := range []ParallelMode{ParallelSingle, ParallelOperator, ParallelDOP} {
		if !m.Valid() {
			t.Fatalf("mode %d invalid", m)
		}
		got, err := ParseParallelMode(m.String())
		if err != nil || got != m {
			t.Fatalf("round trip of %v: got %v, err %v", m, got, err)
		}
	}
	if ParallelMode(0).Valid() || ParallelMode(99).Valid() {
		t.Error("out-of-range mode reported valid")
	}
	if ParallelMode(0).String() != "unknown" {
		t.Errorf("zero mode string %q", ParallelMode(0).String())
	}
	if _, err := ParseParallelMode("both"); err == nil {
		t.Error("unknown spelling accepted")
	}
}

func TestValidSplitParams(t *testing.T) {
	if !ValidSplitParams(0, 1, 2) {
		t.Error("finite non-negative params rejected")
	}
	for _, bad := range [][3]float64{
		{math.NaN(), 1, 1},
		{1, math.Inf(1), 1},
		{1, 1, math.Inf(-1)},
		{-1, 1, 1},
		{1, -0.5, 1},
		{1, 1, -2},
	} {
		if ValidSplitParams(bad[0], bad[1], bad[2]) {
			t.Errorf("params %v accepted", bad)
		}
	}
}
