// Package policy implements the paper's dynamic query allocation
// algorithms (Section 4): the generic site-selection procedure of Figure
// 3 and the cost functions of Figures 4–6 (BNQ, BNQRD, LERT), plus the
// LOCAL and RANDOM baselines used in the evaluation.
package policy

import (
	"fmt"
	"math"

	"dqalloc/internal/loadinfo"
	"dqalloc/internal/rng"
	"dqalloc/internal/workload"
)

// Env carries everything a policy may consult when costing a site: the
// load view, the (homogeneous) site hardware parameters, and the network
// cost model.
type Env struct {
	// View exposes per-site query counts (possibly stale).
	View loadinfo.View
	// NumSites is the number of candidate DB sites.
	NumSites int
	// NumDisks and DiskTime describe each site's storage hardware.
	NumDisks int
	DiskTime float64
	// NetTime returns the pure transmission time (no queueing) to ship
	// query q from site `from` for execution at site `to` and return its
	// results; it is zero when from == to.
	NetTime func(q *workload.Query, from, to int) float64
	// Candidates restricts the allocation to the listed sites (the sites
	// holding a copy of the data the query references, in the partially
	// replicated extension). nil means every site is a candidate — the
	// paper's fully replicated environment. An empty non-nil set is
	// permitted and makes every policy return NoSite.
	Candidates []int
	// Up marks each site's liveness (fault-injection extension). nil
	// means every site is up — the paper's reliable-sites assumption
	// (Section 2). Policies never choose a down site; when no candidate
	// is live they return NoSite.
	Up []bool
	// CPUSpeeds gives each site's CPU speed factor in the heterogeneity
	// extension. nil means the paper's homogeneous sites (speed 1
	// everywhere). LERT consults this; the count-based policies cannot.
	CPUSpeeds []float64
	// Penalty adds a per-site surcharge to every cost the Selector
	// evaluates. The replica manager installs it for degraded remote
	// reads: when no up site holds a fragment, every site pays the ring
	// fetch time, so cost-based policies rank fallback sites with the
	// transfer priced in. nil means no surcharge (the common path). The
	// count-based LOCAL and RANDOM policies ignore it — they never
	// compare costs.
	Penalty func(site int) float64
	// Suspect marks sites under gray-failure suspicion (fail-slow
	// detection extension): up, reporting, but responding anomalously
	// slowly. nil means no detector is running. Unlike Up, suspicion is
	// advisory — cost-based policies price it through Penalty, while
	// LOCAL and RANDOM (which never compare costs) prefer unsuspected
	// sites and fall back to a suspect one only when every alternative
	// is suspect or down. The mask is updated in place by the detector.
	Suspect []bool
}

// NoSite is returned by Select when no candidate site may execute the
// query — the candidate set is empty, or every copy holder is down. It
// is never a valid site index; callers must handle it (reject the query
// or retry later) rather than dispatch.
const NoSite = -1

// cpuSpeed returns site's CPU speed factor (1 when homogeneous).
func (e *Env) cpuSpeed(site int) float64 {
	if e.CPUSpeeds == nil {
		return 1
	}
	return e.CPUSpeeds[site]
}

// candidateAllowed reports whether site may execute the query under the
// current candidate restriction.
func (e *Env) candidateAllowed(site int) bool {
	if e.Candidates == nil {
		return true
	}
	for _, s := range e.Candidates {
		if s == site {
			return true
		}
	}
	return false
}

// siteUp reports the site's liveness (true when no mask is installed).
func (e *Env) siteUp(site int) bool { return e.Up == nil || e.Up[site] }

// penalty returns the site's cost surcharge (0 without a hook).
func (e *Env) penalty(site int) float64 {
	if e.Penalty == nil {
		return 0
	}
	return e.Penalty(site)
}

// suspect reports whether the site is under gray-failure suspicion
// (always false without a detector).
func (e *Env) suspect(site int) bool { return e.Suspect != nil && e.Suspect[site] }

// allowed reports whether site may execute the query: it must hold a
// copy and be up.
func (e *Env) allowed(site int) bool { return e.siteUp(site) && e.candidateAllowed(site) }

// QueryBound classifies a query with the rule of Section 4.2, using the
// optimizer's demand estimates: if the per-disk I/O demand exceeds the
// per-page CPU demand the query is I/O-bound, otherwise CPU-bound.
func QueryBound(q *workload.Query, diskTime float64, numDisks int) workload.Bound {
	if diskTime/float64(numDisks) > q.EstPageCPU {
		return workload.IOBound
	}
	return workload.CPUBound
}

// Policy chooses the execution site for a newly submitted query.
type Policy interface {
	// Name returns the policy's short name as used in the paper's tables.
	Name() string
	// Select returns the chosen execution site for q, which arrived at
	// site arrival.
	Select(q *workload.Query, arrival int, env *Env) int
}

// Kind enumerates the built-in policies.
type Kind int

const (
	// Local always executes queries at their arrival site (the paper's
	// "LOCAL" reference case).
	Local Kind = iota + 1
	// Random picks a uniformly random site — a no-information baseline
	// beyond the paper's set.
	Random
	// BNQ balances the number of queries at each site (Figure 4).
	BNQ
	// BNQRD balances the number of queries of the same bound (Figure 5).
	BNQRD
	// LERT routes to the least estimated response time (Figure 6).
	LERT
	// Work balances the outstanding *estimated work* per resource — an
	// extension exploiting the paper's observation that load is a
	// two-dimensional quantity (Section 1): the cost of a site is its
	// bottleneck resource's backlog after accepting the query.
	Work
)

// String returns the policy name used in the paper's tables.
func (k Kind) String() string {
	switch k {
	case Local:
		return "LOCAL"
	case Random:
		return "RANDOM"
	case BNQ:
		return "BNQ"
	case BNQRD:
		return "BNQRD"
	case LERT:
		return "LERT"
	case Work:
		return "WORK"
	default:
		return "unknown"
	}
}

// New builds a policy of the given kind for a system of numSites sites.
// stream drives randomized policies (Random) and may be nil otherwise.
func New(kind Kind, numSites int, stream *rng.Stream) (Policy, error) {
	if numSites <= 0 {
		return nil, fmt.Errorf("policy: numSites %d must be positive", numSites)
	}
	switch kind {
	case Local:
		return &localPolicy{}, nil
	case Random:
		if stream == nil {
			return nil, fmt.Errorf("policy: RANDOM needs a random stream")
		}
		return &randomPolicy{stream: stream}, nil
	case BNQ:
		return NewSelector(bnqCost{}, numSites), nil
	case BNQRD:
		return NewSelector(bnqrdCost{}, numSites), nil
	case LERT:
		return NewSelector(lertCost{}, numSites), nil
	case Work:
		return NewSelector(workCost{}, numSites), nil
	default:
		return nil, fmt.Errorf("policy: unknown kind %d", kind)
	}
}

// localPolicy keeps every query at its arrival site. The cursor spreads
// suspicion-displaced traffic: when a home site is marked gray, its
// whole arrival stream must land elsewhere, and nearest-downstream would
// dump all of it on one neighbor — doubling that site's load and buying
// back with queueing much of what rerouting saved. Round-robin over the
// clean sites splits the displaced stream evenly instead. The cursor
// only moves on the suspicion path, so runs without a detector are
// bit-identical to the stateless policy.
type localPolicy struct {
	rr int
}

func (*localPolicy) Name() string { return "LOCAL" }

func (p *localPolicy) Select(_ *workload.Query, arrival int, env *Env) int {
	if env.allowed(arrival) && !env.suspect(arrival) {
		return arrival
	}
	if env.suspect(arrival) {
		// Suspicion displacement: spread over the clean live sites.
		if best := p.cleanSpread(arrival, env); best != NoSite {
			return best
		}
	} else if best := localFallback(arrival, env, true); best != NoSite {
		// The home site holds no copy (partial replication) or is down
		// (fault injection); "local" degrades to the nearest unsuspected
		// live downstream copy holder, which spreads the traffic evenly
		// without load information (each home has its own neighbor).
		return best
	}
	if env.allowed(arrival) {
		// Every alternative is suspect or down too; a suspect home beats
		// a suspect remote (no message cost), so stay.
		return arrival
	}
	// NoSite when every copy holder is down.
	return localFallback(arrival, env, false)
}

// cleanSpread picks the next unsuspected live site after the cursor,
// advancing it on success.
func (p *localPolicy) cleanSpread(arrival int, env *Env) int {
	ok := func(s int) bool {
		return s != arrival && env.allowed(s) && !env.suspect(s)
	}
	if env.Candidates == nil {
		n := env.NumSites
		for i := 0; i < n-1; i++ {
			if s := (arrival + 1 + (p.rr+i)%(n-1)) % n; ok(s) {
				p.rr++
				return s
			}
		}
		return NoSite
	}
	m := len(env.Candidates)
	for i := 0; i < m; i++ {
		if s := env.Candidates[(p.rr+i)%m]; ok(s) {
			p.rr++
			return s
		}
	}
	return NoSite
}

// localFallback returns the nearest ring-downstream allowed site other
// than arrival; wantClean additionally excludes suspected sites.
func localFallback(arrival int, env *Env, wantClean bool) int {
	ok := func(s int) bool {
		return s != arrival && env.allowed(s) && !(wantClean && env.suspect(s))
	}
	if env.Candidates == nil {
		for d := 1; d < env.NumSites; d++ {
			if s := (arrival + d) % env.NumSites; ok(s) {
				return s
			}
		}
		return NoSite
	}
	best, bestDist := NoSite, env.NumSites
	for _, s := range env.Candidates {
		if !ok(s) {
			continue
		}
		if d := (s - arrival + env.NumSites) % env.NumSites; d < bestDist {
			best, bestDist = s, d
		}
	}
	return best
}

// randomPolicy sends each query to a uniformly random candidate site.
type randomPolicy struct {
	stream *rng.Stream
}

func (p *randomPolicy) Name() string { return "RANDOM" }

func (p *randomPolicy) Select(_ *workload.Query, _ int, env *Env) int {
	// The Up == nil, Suspect == nil paths consume exactly one draw over
	// the full set, preserving the no-fault random sequence bit for bit.
	if env.Candidates != nil {
		if len(env.Candidates) == 0 {
			return NoSite
		}
		if env.Up == nil && env.Suspect == nil {
			return env.Candidates[p.stream.Intn(len(env.Candidates))]
		}
		return pickUniform(p.stream, env, env.Candidates...)
	}
	if env.Up == nil && env.Suspect == nil {
		return p.stream.Intn(env.NumSites)
	}
	return pickUniform(p.stream, env)
}

// pickUniform draws uniformly among the live members of set (or of all
// sites when set is empty), preferring unsuspected ones: the draw is
// over the live-and-clean subset when it is non-empty, over all live
// members otherwise. NoSite — without consuming a draw — when none is
// live.
func pickUniform(stream *rng.Stream, env *Env, set ...int) int {
	if env.Suspect != nil {
		clean := func(s int) bool { return env.siteUp(s) && !env.Suspect[s] }
		if s := pickWhere(stream, env, clean, set); s != NoSite {
			return s
		}
	}
	return pickWhere(stream, env, env.siteUp, set)
}

// pickWhere draws uniformly among the members of set (or of all sites
// when set is nil) satisfying ok, returning NoSite — without consuming
// a draw — when none does.
func pickWhere(stream *rng.Stream, env *Env, ok func(int) bool, set []int) int {
	n := env.NumSites
	if set != nil {
		n = len(set)
	}
	nth := func(i int) int {
		if set != nil {
			return set[i]
		}
		return i
	}
	eligible := 0
	for i := 0; i < n; i++ {
		if ok(nth(i)) {
			eligible++
		}
	}
	if eligible == 0 {
		return NoSite
	}
	k := stream.Intn(eligible)
	for i := 0; i < n; i++ {
		if !ok(nth(i)) {
			continue
		}
		if k == 0 {
			return nth(i)
		}
		k--
	}
	panic("policy: unreachable")
}

// CostFunc estimates the processing cost of executing q at site s. All
// the paper's allocation algorithms are expressed this way (Section 4:
// "all of the allocation algorithms presented here can be viewed as
// choosing the processing site with the minimum estimated processing
// cost").
type CostFunc interface {
	Name() string
	SiteCost(q *workload.Query, s, arrival int, env *Env) float64
}

// Selector realizes Figure 3: it keeps the arrival site unless a remote
// site has strictly lower cost, scanning remote sites in round-robin
// order (the paper's one noted detail: "the 'foreach' loop that examines
// possible remote execution sites should scan these sites in a
// round-robin fashion"). An optional Tuning (antiherd.go) adds the
// imperfect-information defenses — hysteresis, power-of-K sampling,
// probabilistic tie-breaking; with the zero Tuning the selector's
// decisions and random-stream consumption are bit-identical to the
// plain Figure-3 loop.
type Selector struct {
	cost   CostFunc
	cursor []int // per-arrival-site scan start

	tune    Tuning
	stream  *rng.Stream // drives PowerK sampling and RandomTies; nil otherwise
	scratch []int       // PowerK candidate buffer
}

var _ Policy = (*Selector)(nil)

// NewSelector wraps a cost function in the Figure-3 selection loop for a
// system of numSites sites.
func NewSelector(cost CostFunc, numSites int) *Selector {
	return &Selector{cost: cost, cursor: make([]int, numSites)}
}

// Name returns the wrapped cost function's name.
func (sel *Selector) Name() string { return sel.cost.Name() }

// Select implements function SelectSite of Figure 3, generalized to an
// optional candidate set and an optional liveness mask: the arrival
// site is kept unless a strictly cheaper candidate exists; when the
// arrival site holds no copy (or is down), the first candidate scanned
// seeds the minimum instead. NoSite when no candidate is allowed.
//
// The anti-herd knobs slot into the same loop: PowerK restricts the
// scan to a random sample of the eligible remotes, RandomTies breaks
// equal-cost remote ties uniformly at random (reservoir sampling)
// instead of first-in-scan-order, and Hysteresis demands the best
// remote undercut the local cost by a relative margin before the query
// transfers.
func (sel *Selector) Select(q *workload.Query, arrival int, env *Env) int {
	localOK := env.allowed(arrival)
	localCost := math.Inf(1)
	if localOK {
		localCost = sel.cost.SiteCost(q, arrival, arrival, env) + env.penalty(arrival)
	}
	best := NoSite
	minCost := math.Inf(1)
	ties := 0
	consider := func(remote int) {
		cur := sel.cost.SiteCost(q, remote, arrival, env) + env.penalty(remote)
		switch {
		case cur < minCost:
			best, minCost, ties = remote, cur, 1
		case sel.tune.RandomTies && best != NoSite && cur == minCost:
			ties++
			if sel.stream.Intn(ties) == 0 {
				best = remote
			}
		}
	}
	if sel.tune.PowerK > 0 {
		for _, remote := range sel.sampleRemotes(arrival, env) {
			consider(remote)
		}
	} else {
		start := sel.cursor[arrival]
		sel.cursor[arrival]++
		if env.Candidates == nil {
			n := env.NumSites
			for i := 0; i < n; i++ {
				remote := (start + i) % n
				if remote == arrival || !env.siteUp(remote) {
					continue
				}
				consider(remote)
			}
		} else {
			n := len(env.Candidates)
			for i := 0; i < n; i++ {
				remote := env.Candidates[(start+i)%n]
				if remote == arrival || !env.siteUp(remote) {
					continue
				}
				consider(remote)
			}
		}
	}
	if !localOK {
		return best
	}
	if best != NoSite && minCost < localCost*(1-sel.tune.Hysteresis) {
		return best
	}
	return arrival
}

// bnqCost is Figure 4: the number of queries at the site.
type bnqCost struct{}

func (bnqCost) Name() string { return "BNQ" }

func (bnqCost) SiteCost(_ *workload.Query, s, _ int, env *Env) float64 {
	return float64(env.View.NumQueries(s))
}

// bnqrdCost is Figure 5: the number of queries of the same bound as q.
type bnqrdCost struct{}

func (bnqrdCost) Name() string { return "BNQRD" }

func (bnqrdCost) SiteCost(q *workload.Query, s, _ int, env *Env) float64 {
	if QueryBound(q, env.DiskTime, env.NumDisks) == workload.IOBound {
		return float64(env.View.NumIOQueries(s))
	}
	return float64(env.View.NumCPUQueries(s))
}

// workCost balances outstanding estimated work in two dimensions: the
// cost of placing q at s is the backlog of s's bottleneck resource after
// accepting q (CPU work scaled by speed; disk work by the disk count).
// It needs a WorkView; against a plain count view it degrades to BNQ.
type workCost struct{}

func (workCost) Name() string { return "WORK" }

func (workCost) SiteCost(q *workload.Query, s, _ int, env *Env) float64 {
	wv, ok := env.View.(loadinfo.WorkView)
	if !ok {
		return float64(env.View.NumQueries(s))
	}
	cpuBacklog := (wv.CPUWork(s) + q.EstCPUDemand()) / env.cpuSpeed(s)
	ioBacklog := (wv.IOWork(s) + q.EstDiskDemand(env.DiskTime)) / float64(env.NumDisks)
	return math.Max(cpuBacklog, ioBacklog)
}

// lertCost is Figure 6: the estimated response time of q at the site,
// combining its service demands, the waiting implied by competing queries
// of the same bound, and the message costs of remote execution.
type lertCost struct{}

func (lertCost) Name() string { return "LERT" }

func (lertCost) SiteCost(q *workload.Query, s, arrival int, env *Env) float64 {
	// In the heterogeneity extension the query's (and its competitors')
	// CPU bursts shrink by the site's speed factor; the homogeneous case
	// divides by 1 and reduces to Figure 6 verbatim.
	cpuTime := q.EstCPUDemand() / env.cpuSpeed(s)
	ioTime := q.EstDiskDemand(env.DiskTime)
	netTime := env.NetTime(q, arrival, s)
	cpuWait := cpuTime * float64(env.View.NumCPUQueries(s))
	ioWait := ioTime * float64(env.View.NumIOQueries(s)) / float64(env.NumDisks)
	return cpuTime + cpuWait + ioTime + ioWait + netTime
}
