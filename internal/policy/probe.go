package policy

import (
	"fmt"
	"math"
	"strconv"

	"dqalloc/internal/rng"
	"dqalloc/internal/workload"
)

// This file adds limited-information allocation policies. The paper
// assumes every site knows all loads and defers the design of the
// information-exchange policy (Section 4.4). Probing policies answer the
// dual question: how little information is enough? Instead of a global
// view they inspect the arrival site plus k randomly probed remote
// sites at decision time — the scheme classically studied by Eager,
// Lazowska & Zahorjan. Combined with the periodic-broadcast views in
// internal/loadinfo, they bracket the paper's perfect-information
// assumption from both sides.

// Probe wraps a cost function in a sampled variant of the Figure-3
// selector: the arrival site competes against k probed remote candidate
// sites rather than all of them.
type Probe struct {
	cost   CostFunc
	k      int
	stream *rng.Stream
}

var _ Policy = (*Probe)(nil)

// NewProbe builds a probing policy around cost with k probes per
// decision.
func NewProbe(cost CostFunc, k int, stream *rng.Stream) (*Probe, error) {
	if cost == nil {
		return nil, fmt.Errorf("policy: nil cost function")
	}
	if k < 1 {
		return nil, fmt.Errorf("policy: probe count %d < 1", k)
	}
	if stream == nil {
		return nil, fmt.Errorf("policy: probing needs a random stream")
	}
	return &Probe{cost: cost, k: k, stream: stream}, nil
}

// Name returns e.g. "PROBE2-LERT".
func (p *Probe) Name() string {
	return "PROBE" + strconv.Itoa(p.k) + "-" + p.cost.Name()
}

// Select keeps the arrival site unless one of k probed candidates is
// strictly cheaper. NoSite when neither the arrival site nor any pool
// member is an allowed (live, copy-holding) execution site.
func (p *Probe) Select(q *workload.Query, arrival int, env *Env) int {
	best := NoSite
	minCost := math.Inf(1)
	if env.allowed(arrival) {
		best = arrival
		minCost = p.cost.SiteCost(q, arrival, arrival, env)
	}
	pool := remotePool(arrival, env)
	k := p.k
	if k > len(pool) {
		k = len(pool)
	}
	// Partial Fisher–Yates: draw k distinct probes from the pool.
	for i := 0; i < k; i++ {
		j := i + p.stream.Intn(len(pool)-i)
		pool[i], pool[j] = pool[j], pool[i]
		site := pool[i]
		if cur := p.cost.SiteCost(q, site, arrival, env); cur < minCost {
			minCost = cur
			best = site
		}
	}
	if best < 0 && len(pool) > 0 {
		// Arrival cannot execute and no probe hit: first pool entry.
		best = pool[0]
	}
	return best
}

// remotePool lists the sites a probing policy may probe: the allowed
// (copy-holding, live) sites minus the arrival site. When that leaves
// nothing but an allowed arrival site, the pool is the arrival site
// alone; when nothing at all is allowed it is empty. The slice is
// freshly allocated each call; callers may reorder it freely.
func remotePool(arrival int, env *Env) []int {
	var pool []int
	if env.Candidates != nil {
		pool = make([]int, 0, len(env.Candidates))
		for _, s := range env.Candidates {
			if s != arrival && env.siteUp(s) {
				pool = append(pool, s)
			}
		}
	} else {
		pool = make([]int, 0, env.NumSites-1)
		for s := 0; s < env.NumSites; s++ {
			if s != arrival && env.siteUp(s) {
				pool = append(pool, s)
			}
		}
	}
	if len(pool) == 0 && env.allowed(arrival) {
		return []int{arrival}
	}
	return pool
}

// Threshold is the classic two-level policy: a query is transferred only
// when the arrival site's query count reaches T; it then goes to the
// first of k probed sites whose count is below T, else stays local.
// It needs no global load view at all.
type Threshold struct {
	t      int
	k      int
	stream *rng.Stream
}

var _ Policy = (*Threshold)(nil)

// NewThreshold builds a threshold policy with local threshold t and k
// probes.
func NewThreshold(t, k int, stream *rng.Stream) (*Threshold, error) {
	if t < 1 {
		return nil, fmt.Errorf("policy: threshold %d < 1", t)
	}
	if k < 1 {
		return nil, fmt.Errorf("policy: probe count %d < 1", k)
	}
	if stream == nil {
		return nil, fmt.Errorf("policy: threshold policy needs a random stream")
	}
	return &Threshold{t: t, k: k, stream: stream}, nil
}

// Name returns e.g. "THRESH4x2".
func (p *Threshold) Name() string {
	return "THRESH" + strconv.Itoa(p.t) + "x" + strconv.Itoa(p.k)
}

// Select implements the threshold transfer rule. NoSite when nothing
// is allowed.
func (p *Threshold) Select(q *workload.Query, arrival int, env *Env) int {
	_ = q
	local := env.allowed(arrival)
	if local && env.View.NumQueries(arrival) < p.t {
		return arrival
	}
	pool := remotePool(arrival, env)
	k := p.k
	if k > len(pool) {
		k = len(pool)
	}
	for i := 0; i < k; i++ {
		j := i + p.stream.Intn(len(pool)-i)
		pool[i], pool[j] = pool[j], pool[i]
		if env.View.NumQueries(pool[i]) < p.t {
			return pool[i]
		}
	}
	if local {
		return arrival
	}
	if len(pool) == 0 {
		return NoSite
	}
	return pool[0]
}

// NewProbeKind builds a probing wrapper around a built-in cost function
// selected by kind (BNQ, BNQRD or LERT).
func NewProbeKind(kind Kind, k int, stream *rng.Stream) (Policy, error) {
	var cost CostFunc
	switch kind {
	case BNQ:
		cost = bnqCost{}
	case BNQRD:
		cost = bnqrdCost{}
	case LERT:
		cost = lertCost{}
	default:
		return nil, fmt.Errorf("policy: kind %v has no cost function to probe", kind)
	}
	return NewProbe(cost, k, stream)
}
