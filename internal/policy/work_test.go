package policy

import (
	"testing"

	"dqalloc/internal/loadinfo"
	"dqalloc/internal/workload"
)

// workView extends fixedView with per-site work amounts.
type workView struct {
	fixedView
	cpuW, ioW []float64
}

func (v workView) CPUWork(s int) float64 { return v.cpuW[s] }
func (v workView) IOWork(s int) float64  { return v.ioW[s] }

var _ loadinfo.WorkView = workView{}

func TestWorkCostBottleneck(t *testing.T) {
	env := testEnv(workView{
		fixedView: fixedView{io: []int{1, 1}, cpu: []int{1, 1}},
		cpuW:      []float64{30, 0},
		ioW:       []float64{0, 10},
	}, 2)
	var wc workCost
	q := &workload.Query{EstReads: 10, EstPageCPU: 0.1} // cpu 1, io 10
	// Site 0: max((30+1)/1, (0+10)/2) = 31. Site 1: max(1, 20/2=10) = 10.
	if got := wc.SiteCost(q, 0, 0, env); got != 31 {
		t.Errorf("cost(site0) = %v, want 31", got)
	}
	if got := wc.SiteCost(q, 1, 0, env); got != 10 {
		t.Errorf("cost(site1) = %v, want 10", got)
	}
}

func TestWorkCostFallsBackToCounts(t *testing.T) {
	// A plain View without work info degrades to query counts.
	env := testEnv(fixedView{io: []int{2, 0}, cpu: []int{1, 1}}, 2)
	var wc workCost
	if got := wc.SiteCost(ioQuery(), 0, 0, env); got != 3 {
		t.Errorf("fallback cost = %v, want count 3", got)
	}
}

func TestWorkCostUsesSpeed(t *testing.T) {
	env := testEnv(workView{
		fixedView: fixedView{io: []int{0, 0}, cpu: []int{0, 0}},
		cpuW:      []float64{40, 40},
		ioW:       []float64{0, 0},
	}, 2)
	env.CPUSpeeds = []float64{2, 1}
	var wc workCost
	q := &workload.Query{EstReads: 20, EstPageCPU: 1.0}
	fast := wc.SiteCost(q, 0, 0, env)
	slow := wc.SiteCost(q, 1, 0, env)
	if fast >= slow {
		t.Errorf("fast site cost %v not below slow %v", fast, slow)
	}
}

func TestWorkPolicyConstruction(t *testing.T) {
	p, err := New(Work, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "WORK" {
		t.Errorf("Name = %q", p.Name())
	}
	if Work.String() != "WORK" {
		t.Errorf("Kind string = %q", Work.String())
	}
}

func TestWorkSelectsLeastLoadedBottleneck(t *testing.T) {
	p, err := New(Work, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	env := testEnv(workView{
		fixedView: fixedView{io: []int{0, 0, 0}, cpu: []int{0, 0, 0}},
		cpuW:      []float64{100, 5, 50},
		ioW:       []float64{0, 0, 0},
	}, 3)
	if got := p.Select(cpuQuery(), 0, env); got != 1 {
		t.Errorf("WORK chose %d, want least-backlog site 1", got)
	}
}
