package policy

import (
	"math"
	"testing"

	"dqalloc/internal/loadinfo"
	"dqalloc/internal/rng"
	"dqalloc/internal/workload"
)

// fixedView is a hand-set load view for policy tests.
type fixedView struct {
	io  []int
	cpu []int
}

func (v fixedView) NumQueries(s int) int    { return v.io[s] + v.cpu[s] }
func (v fixedView) NumIOQueries(s int) int  { return v.io[s] }
func (v fixedView) NumCPUQueries(s int) int { return v.cpu[s] }

func testEnv(v loadinfo.View, numSites int) *Env {
	return &Env{
		View:     v,
		NumSites: numSites,
		NumDisks: 2,
		DiskTime: 1,
		NetTime: func(q *workload.Query, from, to int) float64 {
			if from == to {
				return 0
			}
			return 2 // transfer + return, msg_length 1 each
		},
	}
}

func ioQuery() *workload.Query  { return &workload.Query{EstReads: 20, EstPageCPU: 0.05} }
func cpuQuery() *workload.Query { return &workload.Query{EstReads: 20, EstPageCPU: 1.0} }

func TestQueryBound(t *testing.T) {
	if QueryBound(ioQuery(), 1, 2) != workload.IOBound {
		t.Error("io query misclassified")
	}
	if QueryBound(cpuQuery(), 1, 2) != workload.CPUBound {
		t.Error("cpu query misclassified")
	}
	// Equality goes to CPU-bound (strict > in the rule).
	q := &workload.Query{EstReads: 20, EstPageCPU: 0.5}
	if QueryBound(q, 1, 2) != workload.CPUBound {
		t.Error("boundary query should be CPU-bound")
	}
}

func TestLocalAlwaysStaysHome(t *testing.T) {
	p, err := New(Local, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	env := testEnv(fixedView{io: []int{9, 0, 0, 0}, cpu: []int{9, 0, 0, 0}}, 4)
	if got := p.Select(ioQuery(), 0, env); got != 0 {
		t.Errorf("LOCAL chose %d, want arrival site 0", got)
	}
	if p.Name() != "LOCAL" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestRandomUniform(t *testing.T) {
	p, err := New(Random, 4, rng.NewStream(3))
	if err != nil {
		t.Fatal(err)
	}
	env := testEnv(fixedView{io: make([]int, 4), cpu: make([]int, 4)}, 4)
	counts := make([]int, 4)
	for i := 0; i < 4000; i++ {
		counts[p.Select(ioQuery(), 0, env)]++
	}
	for s, c := range counts {
		if c < 800 || c > 1200 {
			t.Errorf("site %d chosen %d/4000, want ~1000", s, c)
		}
	}
}

func TestRandomRequiresStream(t *testing.T) {
	if _, err := New(Random, 4, nil); err == nil {
		t.Error("RANDOM without stream accepted")
	}
}

func TestBNQPicksFewestQueries(t *testing.T) {
	p, err := New(BNQ, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	env := testEnv(fixedView{io: []int{2, 1, 0, 3}, cpu: []int{1, 1, 1, 0}}, 4)
	// Totals: 3, 2, 1, 3 — site 2 wins regardless of class.
	if got := p.Select(ioQuery(), 0, env); got != 2 {
		t.Errorf("BNQ chose %d, want 2", got)
	}
	if got := p.Select(cpuQuery(), 3, env); got != 2 {
		t.Errorf("BNQ chose %d, want 2", got)
	}
}

func TestBNQKeepsArrivalOnTie(t *testing.T) {
	p, err := New(BNQ, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	env := testEnv(fixedView{io: []int{1, 1, 1}, cpu: []int{0, 0, 0}}, 3)
	for arrival := 0; arrival < 3; arrival++ {
		if got := p.Select(ioQuery(), arrival, env); got != arrival {
			t.Errorf("tie from arrival %d sent query to %d", arrival, got)
		}
	}
}

func TestBNQRDUsesClassCounts(t *testing.T) {
	p, err := New(BNQRD, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Site 1 is loaded with CPU-bound work but has no I/O-bound queries;
	// site 2 is the reverse.
	env := testEnv(fixedView{io: []int{2, 0, 5}, cpu: []int{2, 5, 0}}, 3)
	if got := p.Select(ioQuery(), 0, env); got != 1 {
		t.Errorf("BNQRD sent io query to %d, want 1 (fewest io-bound)", got)
	}
	if got := p.Select(cpuQuery(), 0, env); got != 2 {
		t.Errorf("BNQRD sent cpu query to %d, want 2 (fewest cpu-bound)", got)
	}
}

func TestLERTCostFunction(t *testing.T) {
	env := testEnv(fixedView{io: []int{3, 0}, cpu: []int{1, 2}}, 2)
	q := ioQuery() // cpuTime = 1, ioTime = 20
	var lert lertCost
	// Local site 0: 1 + 1*1 + 20 + 20*3/2 + 0 = 52.
	if got := lert.SiteCost(q, 0, 0, env); math.Abs(got-52) > 1e-12 {
		t.Errorf("local cost = %v, want 52", got)
	}
	// Remote site 1: 1 + 1*2 + 20 + 0 + 2 = 25.
	if got := lert.SiteCost(q, 1, 0, env); math.Abs(got-25) > 1e-12 {
		t.Errorf("remote cost = %v, want 25", got)
	}
}

func TestLERTAvoidsUnprofitableTransfer(t *testing.T) {
	p, err := New(LERT, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Loads almost equal: transferring would win by less than the message
	// cost, so LERT must stay local where BNQ would move.
	env := testEnv(fixedView{io: []int{1, 0}, cpu: []int{0, 0}}, 2)
	q := &workload.Query{EstReads: 1, EstPageCPU: 0.05} // tiny query
	// Local: 0.05 + 0 + 1 + 1*1/2 = 1.55. Remote: 0.05 + 1 + 0 + 2 = 3.05.
	if got := p.Select(q, 0, env); got != 0 {
		t.Errorf("LERT transferred a tiny query (chose %d), message cost ignored", got)
	}

	bnq, err := New(BNQ, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := bnq.Select(q, 0, env); got != 1 {
		t.Errorf("BNQ should transfer here (chose %d)", got)
	}
}

func TestLERTPrefersIdleRemote(t *testing.T) {
	p, err := New(LERT, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	env := testEnv(fixedView{io: []int{4, 0}, cpu: []int{0, 0}}, 2)
	if got := p.Select(ioQuery(), 0, env); got != 1 {
		t.Errorf("LERT stayed at loaded site (chose %d)", got)
	}
}

func TestSelectorRoundRobinRotation(t *testing.T) {
	sel := NewSelector(bnqCost{}, 3)
	// Sites 1 and 2 tie at zero load while arrival site 0 is loaded; the
	// round-robin cursor should alternate which tied site wins.
	env := testEnv(fixedView{io: []int{5, 0, 0}, cpu: []int{0, 0, 0}}, 3)
	first := sel.Select(ioQuery(), 0, env)
	second := sel.Select(ioQuery(), 0, env)
	third := sel.Select(ioQuery(), 0, env)
	if first == second && second == third {
		t.Errorf("selector always picks %d; round-robin scan not rotating", first)
	}
	for _, got := range []int{first, second, third} {
		if got == 0 {
			t.Error("selector chose the loaded arrival site")
		}
	}
}

func TestKindString(t *testing.T) {
	tests := []struct {
		kind Kind
		want string
	}{
		{Local, "LOCAL"}, {Random, "RANDOM"}, {BNQ, "BNQ"},
		{BNQRD, "BNQRD"}, {LERT, "LERT"}, {Kind(0), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", tt.kind, got, tt.want)
		}
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	if _, err := New(BNQ, 0, nil); err == nil {
		t.Error("numSites 0 accepted")
	}
	if _, err := New(Kind(99), 3, nil); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestPolicyNames(t *testing.T) {
	for _, kind := range []Kind{Local, BNQ, BNQRD, LERT} {
		p, err := New(kind, 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != kind.String() {
			t.Errorf("policy name %q != kind %q", p.Name(), kind)
		}
	}
}
