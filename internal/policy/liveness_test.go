package policy

import (
	"testing"

	"dqalloc/internal/rng"
)

// allPolicies builds one instance of every built-in policy plus the
// probing wrappers, for liveness-contract sweeps.
func allPolicies(t *testing.T, numSites int) []Policy {
	t.Helper()
	var ps []Policy
	for _, kind := range []Kind{Local, Random, BNQ, BNQRD, LERT, Work} {
		p, err := New(kind, numSites, rng.NewStream(1))
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	probe, err := NewProbeKind(LERT, 2, rng.NewStream(2))
	if err != nil {
		t.Fatal(err)
	}
	thresh, err := NewThreshold(3, 2, rng.NewStream(3))
	if err != nil {
		t.Fatal(err)
	}
	return append(ps, probe, thresh)
}

// TestEmptyCandidatesReturnsNoSite is the empty-candidate-set
// regression: every policy must return NoSite — not panic — when the
// candidate set is non-nil but empty.
func TestEmptyCandidatesReturnsNoSite(t *testing.T) {
	for _, p := range allPolicies(t, 4) {
		env := testEnv(fixedView{io: make([]int, 4), cpu: make([]int, 4)}, 4)
		env.Candidates = []int{}
		if got := p.Select(ioQuery(), 0, env); got != NoSite {
			t.Errorf("%s: empty candidates chose %d, want NoSite", p.Name(), got)
		}
	}
}

// TestAllSitesDownReturnsNoSite: with every site dead, every policy
// must return NoSite, with or without a candidate restriction.
func TestAllSitesDownReturnsNoSite(t *testing.T) {
	for _, p := range allPolicies(t, 4) {
		for _, cands := range [][]int{nil, {1, 3}} {
			env := testEnv(fixedView{io: make([]int, 4), cpu: make([]int, 4)}, 4)
			env.Candidates = cands
			env.Up = make([]bool, 4) // all down
			if got := p.Select(ioQuery(), 0, env); got != NoSite {
				t.Errorf("%s (candidates %v): all-down chose %d, want NoSite", p.Name(), cands, got)
			}
		}
	}
}

// TestPoliciesAvoidDownSites: whatever the loads, a policy must never
// pick a dead site while a live one exists.
func TestPoliciesAvoidDownSites(t *testing.T) {
	for _, p := range allPolicies(t, 4) {
		// Site 2 is idle but down; the rest carry load.
		env := testEnv(fixedView{io: []int{3, 3, 0, 3}, cpu: []int{2, 2, 0, 2}}, 4)
		env.Up = []bool{true, true, false, true}
		for arrival := 0; arrival < 4; arrival++ {
			for i := 0; i < 8; i++ {
				got := p.Select(ioQuery(), arrival, env)
				if got == NoSite {
					t.Fatalf("%s: NoSite with three live sites", p.Name())
				}
				if got == 2 {
					t.Fatalf("%s: chose down site 2 (arrival %d)", p.Name(), arrival)
				}
			}
		}
	}
}

// TestDownArrivalRoutesAway: a query arriving at a down site must be
// routed to a live site (the terminals survive their site's crash).
func TestDownArrivalRoutesAway(t *testing.T) {
	for _, p := range allPolicies(t, 4) {
		env := testEnv(fixedView{io: make([]int, 4), cpu: make([]int, 4)}, 4)
		env.Up = []bool{false, true, true, true}
		for i := 0; i < 8; i++ {
			got := p.Select(ioQuery(), 0, env)
			if got == 0 || got == NoSite {
				t.Fatalf("%s: arrival site down, chose %d", p.Name(), got)
			}
		}
	}
}

// TestLocalFallsBackToNearestLiveCopy: LOCAL's ring-distance fallback
// must skip dead copy holders.
func TestLocalFallsBackToNearestLiveCopy(t *testing.T) {
	p, err := New(Local, 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	env := testEnv(fixedView{io: make([]int, 6), cpu: make([]int, 6)}, 6)
	env.Candidates = []int{1, 4}
	env.Up = []bool{true, true, true, true, false, true} // copy holder 4 is down
	tests := []struct {
		arrival int
		want    int
	}{
		{arrival: 1, want: 1}, // live copy holder keeps the query
		{arrival: 2, want: 1}, // nearest copy (4, 2 hops) is down: wrap to 1
		{arrival: 5, want: 1},
	}
	for _, tt := range tests {
		if got := p.Select(ioQuery(), tt.arrival, env); got != tt.want {
			t.Errorf("arrival %d -> %d, want %d", tt.arrival, got, tt.want)
		}
	}
	// Fully replicated: a down arrival site scans downstream for the
	// first live site.
	env.Candidates = nil
	env.Up = []bool{true, false, false, true, true, true}
	if got := p.Select(ioQuery(), 1, env); got != 3 {
		t.Errorf("down arrival 1 -> %d, want first live downstream 3", got)
	}
}

// TestRandomUpMaskKeepsUniformity: RANDOM restricted by a mask must
// cover exactly the live sites, roughly uniformly.
func TestRandomUpMaskKeepsUniformity(t *testing.T) {
	p, err := New(Random, 4, rng.NewStream(9))
	if err != nil {
		t.Fatal(err)
	}
	env := testEnv(fixedView{io: make([]int, 4), cpu: make([]int, 4)}, 4)
	env.Up = []bool{true, false, true, true}
	counts := make([]int, 4)
	const draws = 3000
	for i := 0; i < draws; i++ {
		counts[p.Select(ioQuery(), 0, env)]++
	}
	if counts[1] != 0 {
		t.Fatalf("down site drawn %d times", counts[1])
	}
	for _, s := range []int{0, 2, 3} {
		frac := float64(counts[s]) / draws
		if frac < 0.28 || frac > 0.39 {
			t.Errorf("live site %d drawn fraction %v, want ~1/3", s, frac)
		}
	}
}

// TestNilMaskMatchesNoMask: an all-true mask must not change any
// policy's choice relative to no mask at all (the no-fault fast paths
// and the masked paths must agree).
func TestNilMaskMatchesNoMask(t *testing.T) {
	view := fixedView{io: []int{2, 0, 5, 1}, cpu: []int{1, 3, 0, 2}}
	for _, kind := range []Kind{Local, BNQ, BNQRD, LERT, Work} {
		unmasked, err := New(kind, 4, nil)
		if err != nil {
			t.Fatal(err)
		}
		masked, err := New(kind, 4, nil)
		if err != nil {
			t.Fatal(err)
		}
		for arrival := 0; arrival < 4; arrival++ {
			envA := testEnv(view, 4)
			envB := testEnv(view, 4)
			envB.Up = []bool{true, true, true, true}
			a := unmasked.Select(ioQuery(), arrival, envA)
			b := masked.Select(ioQuery(), arrival, envB)
			if a != b {
				t.Errorf("%v arrival %d: no mask chose %d, all-true mask chose %d", kind, arrival, a, b)
			}
		}
	}
}
