package policy

import (
	"strings"
	"testing"

	"dqalloc/internal/rng"
	"dqalloc/internal/workload"
)

func TestProbeValidation(t *testing.T) {
	if _, err := NewProbe(nil, 1, rng.NewStream(1)); err == nil {
		t.Error("nil cost accepted")
	}
	if _, err := NewProbe(bnqCost{}, 0, rng.NewStream(1)); err == nil {
		t.Error("zero probes accepted")
	}
	if _, err := NewProbe(bnqCost{}, 1, nil); err == nil {
		t.Error("nil stream accepted")
	}
}

func TestProbeName(t *testing.T) {
	p, err := NewProbe(lertCost{}, 2, rng.NewStream(1))
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "PROBE2-LERT" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestProbeStaysLocalWhenNotBetter(t *testing.T) {
	p, err := NewProbe(bnqCost{}, 3, rng.NewStream(2))
	if err != nil {
		t.Fatal(err)
	}
	env := testEnv(fixedView{io: []int{0, 1, 1, 1}, cpu: []int{0, 0, 0, 0}}, 4)
	for i := 0; i < 20; i++ {
		if got := p.Select(ioQuery(), 0, env); got != 0 {
			t.Fatalf("probe left the cheapest (arrival) site for %d", got)
		}
	}
}

func TestProbeFindsIdleSiteWithFullCoverage(t *testing.T) {
	// k = numSites-1 probes see everything: behaves like the full
	// selector.
	p, err := NewProbe(bnqCost{}, 3, rng.NewStream(3))
	if err != nil {
		t.Fatal(err)
	}
	env := testEnv(fixedView{io: []int{5, 2, 0, 2}, cpu: []int{0, 0, 0, 0}}, 4)
	for i := 0; i < 20; i++ {
		if got := p.Select(ioQuery(), 0, env); got != 2 {
			t.Fatalf("full-coverage probe chose %d, want 2", got)
		}
	}
}

func TestProbeOneSometimesMissesBest(t *testing.T) {
	// With one probe among three loaded-or-idle remotes, the idle site
	// cannot be found every time — that is the whole point of limited
	// information.
	p, err := NewProbe(bnqCost{}, 1, rng.NewStream(4))
	if err != nil {
		t.Fatal(err)
	}
	env := testEnv(fixedView{io: []int{5, 4, 0, 4}, cpu: []int{0, 0, 0, 0}}, 4)
	hits := 0
	const n = 300
	for i := 0; i < n; i++ {
		if p.Select(ioQuery(), 0, env) == 2 {
			hits++
		}
	}
	if hits == 0 || hits == n {
		t.Errorf("probe-1 found the idle site %d/%d times; want strictly between", hits, n)
	}
}

func TestProbeRespectsCandidates(t *testing.T) {
	p, err := NewProbe(bnqCost{}, 2, rng.NewStream(5))
	if err != nil {
		t.Fatal(err)
	}
	env := testEnv(fixedView{io: []int{9, 0, 0, 0}, cpu: []int{0, 0, 0, 0}}, 4)
	env.Candidates = []int{0, 3}
	for i := 0; i < 50; i++ {
		got := p.Select(ioQuery(), 0, env)
		if got != 0 && got != 3 {
			t.Fatalf("probe chose non-candidate %d", got)
		}
	}
	// Arrival not a candidate: must still return a candidate.
	env.Candidates = []int{1, 3}
	for i := 0; i < 50; i++ {
		got := p.Select(ioQuery(), 0, env)
		if got != 1 && got != 3 {
			t.Fatalf("probe chose non-candidate %d", got)
		}
	}
}

func TestNewProbeKind(t *testing.T) {
	for _, kind := range []Kind{BNQ, BNQRD, LERT} {
		p, err := NewProbeKind(kind, 2, rng.NewStream(6))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasSuffix(p.Name(), kind.String()) {
			t.Errorf("name %q does not end in %v", p.Name(), kind)
		}
	}
	if _, err := NewProbeKind(Local, 2, rng.NewStream(6)); err == nil {
		t.Error("LOCAL probe accepted")
	}
}

func TestThresholdValidation(t *testing.T) {
	if _, err := NewThreshold(0, 1, rng.NewStream(1)); err == nil {
		t.Error("threshold 0 accepted")
	}
	if _, err := NewThreshold(1, 0, rng.NewStream(1)); err == nil {
		t.Error("zero probes accepted")
	}
	if _, err := NewThreshold(1, 1, nil); err == nil {
		t.Error("nil stream accepted")
	}
}

func TestThresholdBehavior(t *testing.T) {
	p, err := NewThreshold(3, 2, rng.NewStream(7))
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "THRESH3x2" {
		t.Errorf("Name = %q", p.Name())
	}
	// Below threshold: stay local regardless of remote state.
	env := testEnv(fixedView{io: []int{2, 0, 0, 0}, cpu: []int{0, 0, 0, 0}}, 4)
	for i := 0; i < 20; i++ {
		if got := p.Select(ioQuery(), 0, env); got != 0 {
			t.Fatalf("below-threshold query transferred to %d", got)
		}
	}
	// At threshold with idle remotes: transfers somewhere below T.
	env = testEnv(fixedView{io: []int{3, 0, 0, 0}, cpu: []int{0, 0, 0, 0}}, 4)
	transferred := 0
	for i := 0; i < 50; i++ {
		if got := p.Select(ioQuery(), 0, env); got != 0 {
			transferred++
			if env.View.NumQueries(got) >= 3 {
				t.Fatalf("transferred to overloaded site %d", got)
			}
		}
	}
	if transferred == 0 {
		t.Error("at-threshold query never transferred")
	}
	// Everything saturated: stays local.
	env = testEnv(fixedView{io: []int{5, 5, 5, 5}, cpu: []int{0, 0, 0, 0}}, 4)
	for i := 0; i < 20; i++ {
		if got := p.Select(ioQuery(), 0, env); got != 0 {
			t.Fatalf("saturated system still transferred to %d", got)
		}
	}
}

func TestThresholdWithCandidates(t *testing.T) {
	p, err := NewThreshold(1, 2, rng.NewStream(8))
	if err != nil {
		t.Fatal(err)
	}
	env := testEnv(fixedView{io: []int{0, 0, 0, 0}, cpu: []int{0, 0, 0, 0}}, 4)
	env.Candidates = []int{2, 3}
	// Arrival holds no copy: must pick a candidate even though its own
	// count is below threshold.
	for i := 0; i < 20; i++ {
		got := p.Select(ioQuery(), 0, env)
		if got != 2 && got != 3 {
			t.Fatalf("threshold policy chose non-candidate %d", got)
		}
	}
}

func TestProbePolicyInSimulator(t *testing.T) {
	// Smoke-check that a probing policy plugs into the full system via
	// CustomPolicy (exercised further in internal/exper).
	q := &workload.Query{EstReads: 20, EstPageCPU: 1.0}
	p, err := NewProbeKind(LERT, 2, rng.NewStream(9))
	if err != nil {
		t.Fatal(err)
	}
	env := testEnv(fixedView{io: []int{0, 0, 0, 0}, cpu: []int{4, 0, 0, 0}}, 4)
	moved := 0
	for i := 0; i < 50; i++ {
		if p.Select(q, 0, env) != 0 {
			moved++
		}
	}
	if moved == 0 {
		t.Error("probing LERT never escaped a loaded arrival site")
	}
}
