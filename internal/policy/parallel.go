package policy

// This file holds the parallel-query extension's policy-layer pieces:
// the placement-mode enumeration and the degree-of-parallelism cost
// model. The per-operator site choices themselves reuse the existing
// Policy implementations (a join or filter carrier is costed exactly
// like a query with that operator's demands), which is how the
// multi-resource balanced placement of WORK and LERT extends to
// operators for free.

import (
	"fmt"
	"math"
)

// ParallelMode selects how a multi-operator plan is placed.
type ParallelMode int

const (
	// ParallelSingle places the whole operator tree at one policy-chosen
	// site — intra-query parallelism off, operator model on. The baseline
	// every split must beat.
	ParallelSingle ParallelMode = iota + 1
	// ParallelOperator places each operator independently via the
	// allocation policy, costing it by its own per-resource demands;
	// intermediate results ship between the chosen sites.
	ParallelOperator
	// ParallelDOP adds intra-operator parallelism: the bottom join is
	// split fragment-and-replicate across a cost-model-chosen 1..K sites
	// (the partitioned input's scan shares colocate with the join
	// instances; the replicated input ships to each).
	ParallelDOP
)

// String returns the mode name.
func (m ParallelMode) String() string {
	switch m {
	case ParallelSingle:
		return "single"
	case ParallelOperator:
		return "operator"
	case ParallelDOP:
		return "dop"
	default:
		return "unknown"
	}
}

// Valid reports whether m is a defined mode.
func (m ParallelMode) Valid() bool {
	return m == ParallelSingle || m == ParallelOperator || m == ParallelDOP
}

// SplitCost is the DOP cost model: the estimated completion time of a
// join split k ways, where fixed is the work every instance repeats
// (the replicated input's scan and per-instance join share), divisible
// is the work the split divides (the partitioned input's scan and its
// join share), and overhead is the per-extra-site price (startup plus
// shipping the replicated input to one more site). At zero overhead the
// cost is non-increasing in k — more sites never hurt — so overhead
// alone bounds the useful degree of parallelism.
func SplitCost(fixed, divisible, overhead float64, k int) float64 {
	if k < 1 {
		k = 1
	}
	return fixed + divisible/float64(k) + overhead*float64(k-1)
}

// ChooseDOP picks the degree of parallelism minimizing SplitCost over
// 1..kmax, preferring the smallest k on ties (splitting must strictly
// pay). The result always lies in [1, max(1, kmax)], so it never
// exceeds the caller's up-candidate count.
func ChooseDOP(fixed, divisible, overhead float64, kmax int) int {
	if kmax < 1 {
		return 1
	}
	best, bestCost := 1, SplitCost(fixed, divisible, overhead, 1)
	for k := 2; k <= kmax; k++ {
		if c := SplitCost(fixed, divisible, overhead, k); c < bestCost {
			best, bestCost = k, c
		}
	}
	return best
}

// ParseParallelMode maps a CLI spelling to its mode.
func ParseParallelMode(s string) (ParallelMode, error) {
	switch s {
	case "single":
		return ParallelSingle, nil
	case "operator":
		return ParallelOperator, nil
	case "dop":
		return ParallelDOP, nil
	default:
		return 0, fmt.Errorf("policy: unknown parallel mode %q (want single, operator, or dop)", s)
	}
}

// ValidSplitParams reports whether the cost-model inputs are usable:
// finite and non-negative.
func ValidSplitParams(fixed, divisible, overhead float64) bool {
	for _, x := range [...]float64{fixed, divisible, overhead} {
		if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 {
			return false
		}
	}
	return true
}
