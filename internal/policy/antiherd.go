package policy

// This file holds the anti-herd tuning for the Figure-3 selector — the
// policy layer of the imperfect-information robustness extension. Under
// stale load views (loadinfo.Broadcaster) or noisy demand estimates
// (internal/noise), plain greedy selection herds: every site sees the
// same momentarily-idle victim, dumps its queries there, and the
// overload only becomes visible at the next broadcast. The three
// defenses here are the classic mitigations:
//
//   - Hysteresis keeps the query at its arrival site unless the best
//     remote undercuts the local cost by a relative margin, so small
//     (likely spurious) differences never trigger a transfer.
//   - Power-of-K sampling costs only K randomly drawn eligible remotes
//     per decision, decorrelating concurrent deciders (the
//     power-of-two-choices insight: K = 2 captures most of the benefit
//     with none of the herding).
//   - Probabilistic tie-breaking picks uniformly among equal-cost
//     remotes instead of first-in-scan-order, spreading simultaneous
//     decisions across equally attractive sites.
//
// All three are off in the zero Tuning, and a selector built with the
// zero Tuning consumes no random draws and decides bit-identically to
// the untuned Figure-3 loop.

import (
	"fmt"
	"math"

	"dqalloc/internal/rng"
)

// Tuning collects the selector's anti-herd knobs. The zero value
// disables them all.
type Tuning struct {
	// Hysteresis is the relative transfer margin: a query moves only
	// when the best remote cost is below local·(1 − Hysteresis). Zero
	// restores the paper's strict < comparison; must stay in [0, 1).
	Hysteresis float64
	// PowerK, when positive, costs only K randomly sampled eligible
	// remote sites per decision instead of scanning them all. Zero
	// scans every site (the paper's loop); values above the site count
	// are invalid.
	PowerK int
	// RandomTies breaks equal-cost remote ties uniformly at random
	// (reservoir sampling over the scan) instead of keeping the first
	// site scanned.
	RandomTies bool
}

// Enabled reports whether any knob departs from the paper's selector.
func (t Tuning) Enabled() bool { return t.Hysteresis != 0 || t.PowerK != 0 || t.RandomTies }

// Validate reports the first tuning error, if any, for a system of
// numSites sites.
func (t Tuning) Validate(numSites int) error {
	switch {
	case math.IsNaN(t.Hysteresis) || t.Hysteresis < 0 || t.Hysteresis >= 1:
		return fmt.Errorf("policy: hysteresis margin %v outside [0,1)", t.Hysteresis)
	case t.PowerK < 0:
		return fmt.Errorf("policy: negative PowerK %d", t.PowerK)
	case t.PowerK > numSites:
		return fmt.Errorf("policy: PowerK %d exceeds %d sites", t.PowerK, numSites)
	}
	return nil
}

// NewTunedSelector wraps a cost function in the Figure-3 loop with the
// given anti-herd tuning. stream drives PowerK sampling and random
// tie-breaking; it may be nil only when neither is enabled.
func NewTunedSelector(cost CostFunc, numSites int, tune Tuning, stream *rng.Stream) (*Selector, error) {
	if numSites <= 0 {
		return nil, fmt.Errorf("policy: numSites %d must be positive", numSites)
	}
	if err := tune.Validate(numSites); err != nil {
		return nil, err
	}
	if (tune.PowerK > 0 || tune.RandomTies) && stream == nil {
		return nil, fmt.Errorf("policy: PowerK/RandomTies tuning needs a random stream")
	}
	sel := NewSelector(cost, numSites)
	sel.tune = tune
	sel.stream = stream
	return sel, nil
}

// NewTuned builds a cost-based policy of the given kind with anti-herd
// tuning. Only the selector policies (BNQ, BNQRD, LERT, WORK) accept
// tuning: LOCAL never transfers and RANDOM never consults costs, so a
// margin, sample size, or tie-break rule has nothing to act on there.
func NewTuned(kind Kind, numSites int, tune Tuning, stream *rng.Stream) (Policy, error) {
	var cost CostFunc
	switch kind {
	case BNQ:
		cost = bnqCost{}
	case BNQRD:
		cost = bnqrdCost{}
	case LERT:
		cost = lertCost{}
	case Work:
		cost = workCost{}
	default:
		return nil, fmt.Errorf("policy: anti-herd tuning requires a cost-based policy, not %v", kind)
	}
	return NewTunedSelector(cost, numSites, tune, stream)
}

// sampleRemotes returns up to PowerK eligible remote sites drawn
// uniformly without replacement (partial Fisher–Yates over the eligible
// set). When fewer than K remotes are eligible every one is returned —
// and no draws are consumed, so stream usage depends only on the
// decision sequence, never on which sites happen to be down.
func (sel *Selector) sampleRemotes(arrival int, env *Env) []int {
	sel.scratch = sel.scratch[:0]
	if env.Candidates == nil {
		for s := 0; s < env.NumSites; s++ {
			if s != arrival && env.siteUp(s) {
				sel.scratch = append(sel.scratch, s)
			}
		}
	} else {
		for _, s := range env.Candidates {
			if s != arrival && env.siteUp(s) {
				sel.scratch = append(sel.scratch, s)
			}
		}
	}
	k := sel.tune.PowerK
	if k >= len(sel.scratch) {
		return sel.scratch
	}
	for i := 0; i < k; i++ {
		j := i + sel.stream.Intn(len(sel.scratch)-i)
		sel.scratch[i], sel.scratch[j] = sel.scratch[j], sel.scratch[i]
	}
	return sel.scratch[:k]
}
