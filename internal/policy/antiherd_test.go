package policy

import (
	"math"
	"testing"

	"dqalloc/internal/rng"
	"dqalloc/internal/workload"
)

// referenceSelect is an independent transcription of the original
// Figure-3 loop (seed the minimum with the local cost, scan remotes
// round-robin, keep the first strict improvement) used to prove the
// tuned selector with zero Tuning is decision-identical.
func referenceSelect(cost CostFunc, cursor []int, q *workload.Query, arrival int, env *Env) int {
	best := NoSite
	minCost := math.Inf(1)
	if env.allowed(arrival) {
		best = arrival
		minCost = cost.SiteCost(q, arrival, arrival, env)
	}
	start := cursor[arrival]
	cursor[arrival]++
	scan := func(remote int) {
		if remote == arrival || !env.siteUp(remote) {
			return
		}
		if c := cost.SiteCost(q, remote, arrival, env); c < minCost {
			best, minCost = remote, c
		}
	}
	if env.Candidates == nil {
		for i := 0; i < env.NumSites; i++ {
			scan((start + i) % env.NumSites)
		}
	} else {
		n := len(env.Candidates)
		for i := 0; i < n; i++ {
			scan(env.Candidates[(start+i)%n])
		}
	}
	return best
}

// randomEnv draws a random load view, optional candidate restriction,
// and optional liveness mask for property tests.
func randomEnv(st *rng.Stream, n int) *Env {
	v := fixedView{io: make([]int, n), cpu: make([]int, n)}
	for i := 0; i < n; i++ {
		v.io[i] = st.Intn(6)
		v.cpu[i] = st.Intn(6)
	}
	env := testEnv(v, n)
	if st.Bernoulli(0.4) {
		cands := []int{}
		for s := 0; s < n; s++ {
			if st.Bernoulli(0.6) {
				cands = append(cands, s)
			}
		}
		env.Candidates = cands
	}
	if st.Bernoulli(0.5) {
		up := make([]bool, n)
		for s := range up {
			up[s] = st.Bernoulli(0.8)
		}
		env.Up = up
	}
	return env
}

// TestZeroTuningMatchesReference: with every knob off, the tuned
// selector must decide exactly like the paper's Figure-3 loop across
// random views, candidate sets, liveness masks, and arrival sites —
// the digest-identity contract at the policy layer.
func TestZeroTuningMatchesReference(t *testing.T) {
	for _, cost := range []CostFunc{bnqCost{}, bnqrdCost{}, lertCost{}, workCost{}} {
		const n = 5
		tuned, err := NewTunedSelector(cost, n, Tuning{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		refCursor := make([]int, n)
		st := rng.NewStream(99)
		for trial := 0; trial < 500; trial++ {
			env := randomEnv(st, n)
			q := ioQuery()
			if st.Bernoulli(0.5) {
				q = cpuQuery()
			}
			arrival := st.Intn(n)
			want := referenceSelect(cost, refCursor, q, arrival, env)
			if got := tuned.Select(q, arrival, env); got != want {
				t.Fatalf("%s trial %d: tuned chose %d, reference chose %d (arrival %d, cands %v, up %v)",
					cost.Name(), trial, got, want, arrival, env.Candidates, env.Up)
			}
		}
	}
}

// TestHysteresisMargin: a remote must undercut local·(1 − h) to win the
// query; marginally better remotes no longer trigger a transfer.
func TestHysteresisMargin(t *testing.T) {
	view := fixedView{io: []int{10, 9, 7}, cpu: make([]int, 3)}
	cases := []struct {
		h    float64
		want int
	}{
		{0, 2},    // best remote 7 < 10: transfer
		{0.2, 2},  // threshold 8: remote 7 still qualifies
		{0.35, 0}, // threshold 6.5: nothing qualifies, stay local
	}
	for _, tc := range cases {
		sel, err := NewTunedSelector(bnqCost{}, 3, Tuning{Hysteresis: tc.h}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := sel.Select(ioQuery(), 0, testEnv(view, 3)); got != tc.want {
			t.Errorf("h=%v: chose %d, want %d", tc.h, got, tc.want)
		}
	}
}

// TestHysteresisSkipsWhenLocalDown: the margin only guards transfers
// away from a usable local site; with the arrival site down the best
// remote wins regardless of margin.
func TestHysteresisSkipsWhenLocalDown(t *testing.T) {
	view := fixedView{io: []int{0, 9, 7}, cpu: make([]int, 3)}
	env := testEnv(view, 3)
	env.Up = []bool{false, true, true}
	sel, err := NewTunedSelector(bnqCost{}, 3, Tuning{Hysteresis: 0.9}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := sel.Select(ioQuery(), 0, env); got != 2 {
		t.Errorf("local down: chose %d, want best remote 2", got)
	}
}

// TestPowerKSampleSubset: sampleRemotes must return exactly K distinct
// eligible remotes — never the arrival site, never a down site, never a
// non-candidate — and be deterministic per seed.
func TestPowerKSampleSubset(t *testing.T) {
	const n = 8
	mkEnv := func() *Env {
		env := testEnv(fixedView{io: make([]int, n), cpu: make([]int, n)}, n)
		env.Up = []bool{true, true, false, true, true, true, false, true}
		env.Candidates = []int{0, 1, 2, 3, 4, 5, 7}
		return env
	}
	build := func(seed uint64) *Selector {
		sel, err := NewTunedSelector(bnqCost{}, n, Tuning{PowerK: 3}, rng.NewStream(seed))
		if err != nil {
			t.Fatal(err)
		}
		return sel
	}
	a, b := build(5), build(5)
	for trial := 0; trial < 200; trial++ {
		got := append([]int(nil), a.sampleRemotes(1, mkEnv())...)
		if len(got) != 3 {
			t.Fatalf("sampled %d sites, want 3", len(got))
		}
		seen := map[int]bool{}
		for _, s := range got {
			// Eligible: candidate, up, not the arrival site 1.
			if s == 1 || s == 2 || s == 6 || s < 0 || s >= n || seen[s] {
				t.Fatalf("bad sample %v", got)
			}
			seen[s] = true
		}
		same := b.sampleRemotes(1, mkEnv())
		for i := range got {
			if got[i] != same[i] {
				t.Fatalf("trial %d: same seed sampled %v vs %v", trial, got, same)
			}
		}
	}
}

// TestPowerKNoDrawsWhenAllEligible: when K covers every eligible
// remote, no random draws may be consumed — stream usage must not
// depend on how many sites happen to be down.
func TestPowerKNoDrawsWhenAllEligible(t *testing.T) {
	st, twin := rng.NewStream(5), rng.NewStream(5)
	sel, err := NewTunedSelector(bnqCost{}, 4, Tuning{PowerK: 3}, st)
	if err != nil {
		t.Fatal(err)
	}
	env := testEnv(fixedView{io: []int{1, 2, 3, 4}, cpu: make([]int, 4)}, 4)
	sel.Select(ioQuery(), 0, env) // 3 eligible remotes == K
	env.Up = []bool{true, false, true, true}
	sel.Select(ioQuery(), 0, env) // 2 eligible remotes < K
	if st.Uint64() != twin.Uint64() {
		t.Error("PowerK consumed draws although every eligible remote was sampled")
	}
}

// TestPowerKFullSampleMatchesUntuned: with K = numSites and distinct
// costs, sampling covers all remotes and the decision must match the
// untuned selector.
func TestPowerKFullSampleMatchesUntuned(t *testing.T) {
	const n = 4
	view := fixedView{io: []int{5, 3, 9, 1}, cpu: make([]int, n)}
	untuned := NewSelector(bnqCost{}, n)
	tuned, err := NewTunedSelector(bnqCost{}, n, Tuning{PowerK: n}, rng.NewStream(1))
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 3; rep++ {
		for arrival := 0; arrival < n; arrival++ {
			want := untuned.Select(ioQuery(), arrival, testEnv(view, n))
			if got := tuned.Select(ioQuery(), arrival, testEnv(view, n)); got != want {
				t.Errorf("arrival %d: tuned chose %d, untuned chose %d", arrival, got, want)
			}
		}
	}
}

// TestRandomTiesUniform: equal-cost remotes must each win roughly 1/k
// of the decisions instead of the first-in-scan-order site taking all.
func TestRandomTiesUniform(t *testing.T) {
	const n = 4
	view := fixedView{io: []int{5, 1, 1, 1}, cpu: make([]int, n)}
	sel, err := NewTunedSelector(bnqCost{}, n, Tuning{RandomTies: true}, rng.NewStream(9))
	if err != nil {
		t.Fatal(err)
	}
	const trials = 6000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		got := sel.Select(ioQuery(), 0, testEnv(view, n))
		if got == 0 || got == NoSite {
			t.Fatalf("tie among cheaper remotes chose %d", got)
		}
		counts[got]++
	}
	for s := 1; s < n; s++ {
		frac := float64(counts[s]) / trials
		if frac < 0.28 || frac > 0.39 {
			t.Errorf("site %d won %.3f of ties, want ~1/3", s, frac)
		}
	}
}

// TestRandomTiesDeterministicPerSeed: the tie-break sequence must be a
// pure function of the seed.
func TestRandomTiesDeterministicPerSeed(t *testing.T) {
	const n = 4
	view := fixedView{io: []int{5, 1, 1, 1}, cpu: make([]int, n)}
	build := func() *Selector {
		sel, err := NewTunedSelector(bnqCost{}, n, Tuning{RandomTies: true}, rng.NewStream(21))
		if err != nil {
			t.Fatal(err)
		}
		return sel
	}
	a, b := build(), build()
	for i := 0; i < 500; i++ {
		x := a.Select(ioQuery(), 0, testEnv(view, n))
		y := b.Select(ioQuery(), 0, testEnv(view, n))
		if x != y {
			t.Fatalf("decision %d: same seed diverged, %d vs %d", i, x, y)
		}
	}
}

func TestTuningValidate(t *testing.T) {
	cases := []struct {
		name string
		tune Tuning
		ok   bool
	}{
		{"zero", Tuning{}, true},
		{"all knobs", Tuning{Hysteresis: 0.2, PowerK: 2, RandomTies: true}, true},
		{"k equals sites", Tuning{PowerK: 4}, true},
		{"negative hysteresis", Tuning{Hysteresis: -0.1}, false},
		{"hysteresis one", Tuning{Hysteresis: 1}, false},
		{"nan hysteresis", Tuning{Hysteresis: math.NaN()}, false},
		{"negative k", Tuning{PowerK: -1}, false},
		{"k above sites", Tuning{PowerK: 5}, false},
	}
	for _, tc := range cases {
		if err := tc.tune.Validate(4); (err == nil) != tc.ok {
			t.Errorf("%s: Validate(4) = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestTuningEnabled(t *testing.T) {
	if (Tuning{}).Enabled() {
		t.Error("zero Tuning reports enabled")
	}
	for _, tune := range []Tuning{{Hysteresis: 0.1}, {PowerK: 2}, {RandomTies: true}} {
		if !tune.Enabled() {
			t.Errorf("%+v reports disabled", tune)
		}
	}
}

func TestNewTunedErrors(t *testing.T) {
	st := rng.NewStream(1)
	if _, err := NewTuned(Local, 4, Tuning{Hysteresis: 0.1}, st); err == nil {
		t.Error("LOCAL accepted anti-herd tuning")
	}
	if _, err := NewTuned(Random, 4, Tuning{Hysteresis: 0.1}, st); err == nil {
		t.Error("RANDOM accepted anti-herd tuning")
	}
	if _, err := NewTunedSelector(bnqCost{}, 4, Tuning{PowerK: 2}, nil); err == nil {
		t.Error("PowerK without a stream accepted")
	}
	if _, err := NewTunedSelector(bnqCost{}, 4, Tuning{RandomTies: true}, nil); err == nil {
		t.Error("RandomTies without a stream accepted")
	}
	if _, err := NewTunedSelector(bnqCost{}, 0, Tuning{}, nil); err == nil {
		t.Error("zero sites accepted")
	}
	if _, err := NewTunedSelector(bnqCost{}, 4, Tuning{Hysteresis: -1}, nil); err == nil {
		t.Error("invalid tuning accepted")
	}
	p, err := NewTuned(BNQ, 4, Tuning{Hysteresis: 0.1}, nil)
	if err != nil || p.Name() != "BNQ" {
		t.Errorf("NewTuned(BNQ) = %v, %v", p, err)
	}
	for _, kind := range []Kind{BNQRD, LERT, Work} {
		if _, err := NewTuned(kind, 4, Tuning{PowerK: 2}, st); err != nil {
			t.Errorf("NewTuned(%v) rejected: %v", kind, err)
		}
	}
}

// --- pickUniform property tests (RANDOM's fault-aware tie-breaker) ---

// TestPickUniformDeterministicPerSeed: picks are a pure function of the
// stream seed and the call sequence.
func TestPickUniformDeterministicPerSeed(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		a, b := rng.NewStream(seed), rng.NewStream(seed)
		gen := rng.NewStream(seed + 100)
		for trial := 0; trial < 300; trial++ {
			n := 2 + gen.Intn(6)
			env := testEnv(fixedView{io: make([]int, n), cpu: make([]int, n)}, n)
			up := make([]bool, n)
			for i := range up {
				up[i] = gen.Bernoulli(0.7)
			}
			env.Up = up
			if x, y := pickUniform(a, env), pickUniform(b, env); x != y {
				t.Fatalf("seed %d trial %d: %d vs %d", seed, trial, x, y)
			}
		}
	}
}

// TestPickUniformUniformAcrossLiveSites: every live site must be drawn
// with equal probability, with and without a candidate set.
func TestPickUniformUniformAcrossLiveSites(t *testing.T) {
	const n = 6
	env := testEnv(fixedView{io: make([]int, n), cpu: make([]int, n)}, n)
	env.Up = []bool{true, false, true, true, false, true}
	st := rng.NewStream(42)
	const trials = 40000

	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		s := pickUniform(st, env)
		if !env.Up[s] {
			t.Fatalf("picked down site %d", s)
		}
		counts[s]++
	}
	for _, s := range []int{0, 2, 3, 5} {
		if frac := float64(counts[s]) / trials; frac < 0.22 || frac > 0.28 {
			t.Errorf("site %d drawn with frequency %.3f, want ~0.25", s, frac)
		}
	}

	// Candidate restriction {1, 3, 4, 5} with site 4 down: live {1?...}.
	env.Up = []bool{true, true, true, true, false, true}
	set := []int{1, 3, 4, 5}
	setCounts := make([]int, n)
	for i := 0; i < trials; i++ {
		s := pickUniform(st, env, set...)
		if s == 4 || s == 0 || s == 2 {
			t.Fatalf("picked ineligible site %d", s)
		}
		setCounts[s]++
	}
	for _, s := range []int{1, 3, 5} {
		if frac := float64(setCounts[s]) / trials; frac < 0.30 || frac > 0.37 {
			t.Errorf("candidate %d drawn with frequency %.3f, want ~1/3", s, frac)
		}
	}
}

// TestPickUniformSkipsDownSites: under random liveness masks the pick
// is always a live in-set site, or NoSite exactly when none is live.
func TestPickUniformSkipsDownSites(t *testing.T) {
	gen, st := rng.NewStream(7), rng.NewStream(8)
	for trial := 0; trial < 2000; trial++ {
		n := 1 + gen.Intn(8)
		env := testEnv(fixedView{io: make([]int, n), cpu: make([]int, n)}, n)
		up := make([]bool, n)
		anyLive := false
		for i := range up {
			up[i] = gen.Bernoulli(0.5)
		}
		env.Up = up
		var set []int
		if gen.Bernoulli(0.5) {
			set = []int{}
			for s := 0; s < n; s++ {
				if gen.Bernoulli(0.6) {
					set = append(set, s)
				}
			}
			for _, s := range set {
				anyLive = anyLive || up[s]
			}
		} else {
			for _, v := range up {
				anyLive = anyLive || v
			}
		}
		got := pickUniform(st, env, set...)
		if !anyLive {
			if got != NoSite {
				t.Fatalf("trial %d: no live site but picked %d", trial, got)
			}
			continue
		}
		if got == NoSite || !up[got] {
			t.Fatalf("trial %d: picked %d (up=%v, set=%v)", trial, got, up, set)
		}
		if set != nil {
			in := false
			for _, s := range set {
				in = in || s == got
			}
			if !in {
				t.Fatalf("trial %d: picked %d outside candidate set %v", trial, got, set)
			}
		}
	}
}

// TestPickUniformNoDrawWhenNoneLive: the NoSite path must not consume
// a random draw, so a dead candidate set never shifts the sequence.
func TestPickUniformNoDrawWhenNoneLive(t *testing.T) {
	a, b := rng.NewStream(3), rng.NewStream(3)
	env := testEnv(fixedView{io: make([]int, 4), cpu: make([]int, 4)}, 4)
	env.Up = make([]bool, 4)
	if got := pickUniform(a, env); got != NoSite {
		t.Fatalf("all-down pick = %d, want NoSite", got)
	}
	if a.Uint64() != b.Uint64() {
		t.Error("pickUniform consumed a draw on the NoSite path")
	}
}
