// Package rng supplies deterministic pseudo-random number streams for the
// simulation.
//
// The generator is xoshiro256++ seeded through splitmix64, implemented here
// so that experiment outputs are bit-reproducible regardless of Go release.
// Every stochastic entity in the model (each terminal source, each disk,
// the allocator's tie-breakers, ...) owns an independent Stream derived
// from the experiment's root seed, so changing one entity's consumption
// pattern never perturbs another's — the classic common-random-numbers
// discipline for variance reduction when comparing allocation policies.
package rng

import "math"

// Stream is a single pseudo-random sequence. It is not safe for concurrent
// use; each goroutine (the simulation is single-threaded anyway) and each
// model entity should own its own Stream.
type Stream struct {
	s [4]uint64
}

// NewStream returns a stream seeded from seed via splitmix64, following the
// xoshiro authors' recommended initialization.
func NewStream(seed uint64) *Stream {
	var st Stream
	x := seed
	for i := range st.s {
		x, st.s[i] = splitmix64(x)
	}
	// xoshiro must not start from the all-zero state.
	if st.s == [4]uint64{} {
		st.s[0] = 0x9e3779b97f4a7c15
	}
	return &st
}

// Child derives an independent stream from this stream's seed lineage and
// the given identifier. Calling Child never consumes numbers from the
// parent, so adding entities does not shift existing sequences.
func (r *Stream) Child(id uint64) *Stream {
	// Mix the parent's initial state with the child id through splitmix64.
	x := r.s[0] ^ (id+1)*0xbf58476d1ce4e5b9
	x, _ = splitmix64(x)
	x ^= r.s[2]
	return NewStream(x)
}

// Uint64 returns the next 64 uniformly distributed bits (xoshiro256++).
func (r *Stream) Uint64() uint64 {
	s := &r.s
	result := rotl(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform variate in [0, 1) with 53 random bits.
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire-style bounded generation without modulo bias.
	bound := uint64(n)
	for {
		v := r.Uint64()
		if v < math.MaxUint64-math.MaxUint64%bound || bound&(bound-1) == 0 {
			return int(v % bound)
		}
	}
}

// Exp returns an exponential variate with the given mean. A zero mean
// yields zero (a degenerate but occasionally useful configuration, e.g.
// disabled think time). A +Inf mean yields +Inf without consuming a
// variate, so "this event never happens" configurations (e.g. an
// infinite mean time to failure) leave the stream untouched.
func (r *Stream) Exp(mean float64) float64 {
	if mean < 0 {
		panic("rng: negative exponential mean")
	}
	if mean == 0 {
		return 0
	}
	if math.IsInf(mean, 1) {
		return math.Inf(1)
	}
	// Guard against log(0); Float64 is in [0,1).
	u := 1 - r.Float64()
	return -mean * math.Log(u)
}

// Normal returns a standard normal variate via the Box–Muller transform.
// Every call consumes exactly two uniforms (the second transform output
// is discarded rather than cached), so a stream's consumption depends
// only on the call count — the same fixed-consumption discipline the
// rest of the model relies on for common random numbers.
func (r *Stream) Normal() float64 {
	// 1 - Float64() lies in (0, 1], so the logarithm is finite.
	u := 1 - r.Float64()
	v := r.Float64()
	return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
}

// Uniform returns a uniform variate in [lo, hi). It panics if hi < lo.
func (r *Stream) Uniform(lo, hi float64) float64 {
	if hi < lo {
		panic("rng: Uniform with hi < lo")
	}
	return lo + (hi-lo)*r.Float64()
}

// Bernoulli reports true with probability p (clamped to [0,1]).
func (r *Stream) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a random permutation of [0, n), Fisher–Yates shuffled.
func (r *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// splitmix64 advances the splitmix64 state and returns the next state and
// output value.
func splitmix64(x uint64) (state, out uint64) {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return x, z
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }
