package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := NewStream(42)
	b := NewStream(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := NewStream(1)
	b := NewStream(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("streams with different seeds matched %d/100 draws", same)
	}
}

func TestChildIndependence(t *testing.T) {
	root := NewStream(7)
	c0 := root.Child(0)
	c1 := root.Child(1)
	// Children must differ from each other and from the parent.
	if c0.Uint64() == c1.Uint64() {
		t.Error("sibling child streams produced identical first draw")
	}
	// Deriving children must not consume from the parent.
	p1 := NewStream(7)
	if root.Uint64() != p1.Uint64() {
		t.Error("Child() consumed numbers from the parent stream")
	}
}

func TestChildDeterminism(t *testing.T) {
	a := NewStream(9).Child(5)
	b := NewStream(9).Child(5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("equal child derivations diverged")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewStream(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewStream(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestExpMoments(t *testing.T) {
	r := NewStream(13)
	const (
		n    = 200000
		mean = 3.5
	)
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(mean)
		if v < 0 {
			t.Fatalf("negative exponential variate %v", v)
		}
		sum += v
		sumSq += v * v
	}
	m := sum / n
	variance := sumSq/n - m*m
	if math.Abs(m-mean) > 0.05 {
		t.Errorf("exp mean = %v, want ~%v", m, mean)
	}
	if math.Abs(variance-mean*mean) > 0.5 {
		t.Errorf("exp variance = %v, want ~%v", variance, mean*mean)
	}
}

func TestExpZeroMean(t *testing.T) {
	r := NewStream(1)
	if v := r.Exp(0); v != 0 {
		t.Errorf("Exp(0) = %v, want 0", v)
	}
}

// TestExpInfiniteMean: an infinite mean models an event that never
// happens (e.g. MTTF = +Inf) and must not consume a draw, so fault-free
// streams stay aligned.
func TestExpInfiniteMean(t *testing.T) {
	a, b := NewStream(5), NewStream(5)
	if v := a.Exp(math.Inf(1)); !math.IsInf(v, 1) {
		t.Errorf("Exp(+Inf) = %v, want +Inf", v)
	}
	if x, y := a.Uint64(), b.Uint64(); x != y {
		t.Errorf("Exp(+Inf) consumed a draw: next %d vs %d", x, y)
	}
}

func TestUniformRange(t *testing.T) {
	r := NewStream(17)
	const lo, hi = 0.8, 1.2
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Uniform(lo, hi)
		if v < lo || v >= hi {
			t.Fatalf("Uniform out of [%v,%v): %v", lo, hi, v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1.0) > 0.005 {
		t.Errorf("uniform mean = %v, want ~1.0", mean)
	}
}

func TestIntnUniformity(t *testing.T) {
	r := NewStream(19)
	const buckets = 7
	counts := make([]int, buckets)
	const n = 70000
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	for b, c := range counts {
		if math.Abs(float64(c)-n/buckets) > 500 {
			t.Errorf("bucket %d count %d deviates from %d", b, c, n/buckets)
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := NewStream(23)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := NewStream(29)
	const p = 0.3
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	if rate := float64(hits) / n; math.Abs(rate-p) > 0.01 {
		t.Errorf("Bernoulli rate = %v, want ~%v", rate, p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewStream(31)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewStream(1).Intn(0)
}

func BenchmarkUint64(b *testing.B) {
	r := NewStream(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkExp(b *testing.B) {
	r := NewStream(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.Exp(1.0)
	}
	_ = sink
}

// TestNormalMoments: the Box–Muller transform must deliver mean 0,
// variance 1 to within sampling tolerance.
func TestNormalMoments(t *testing.T) {
	r := NewStream(23)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal()
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite normal variate %v", v)
		}
		sum += v
		sumSq += v * v
	}
	m := sum / n
	variance := sumSq/n - m*m
	if math.Abs(m) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", m)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

// TestNormalFixedConsumption: every Normal call must consume exactly two
// uniforms, so interleaving Normal draws never shifts a stream relative
// to a plan that budgeted two draws per call.
func TestNormalFixedConsumption(t *testing.T) {
	a, b := NewStream(29), NewStream(29)
	for i := 0; i < 100; i++ {
		a.Normal()
		b.Float64()
		b.Float64()
	}
	if x, y := a.Uint64(), b.Uint64(); x != y {
		t.Errorf("Normal consumption drifted: next %d vs %d", x, y)
	}
}
