// Package site models one DB processing site of the paper's Figure 2: a
// processor-sharing CPU and an array of FCFS disks, through which an
// executing query cycles num_reads times — each cycle reading one page
// from a disk and then processing it on the CPU.
//
// The terminals and the outgoing message queue of Figure 2 live one level
// up (internal/system and internal/network): this package is strictly the
// execution engine of a site.
package site

import (
	"fmt"

	"dqalloc/internal/queue"
	"dqalloc/internal/rng"
	"dqalloc/internal/sim"
	"dqalloc/internal/workload"
)

// DiskDist selects the disk service-time distribution.
type DiskDist int

const (
	// DiskUniform draws page access times uniformly on DiskTime ±
	// DiskTimeDev·DiskTime — the paper's simulation setting (Table 7).
	DiskUniform DiskDist = iota + 1
	// DiskExponential draws exponential page access times with mean
	// DiskTime — the paper's Section 3 analytical setting, which makes
	// the site an exact product-form network for MVA cross-validation.
	DiskExponential
)

// String returns the distribution name.
func (d DiskDist) String() string {
	switch d {
	case DiskUniform:
		return "uniform"
	case DiskExponential:
		return "exponential"
	default:
		return "unknown"
	}
}

// Config describes a site's hardware and workload classes (Table 1).
type Config struct {
	// NumDisks is the number of disks at the site.
	NumDisks int
	// DiskTime is the mean time to access one disk page.
	DiskTime float64
	// DiskTimeDev is the half-width of the uniform disk-time distribution
	// expressed as a fraction of DiskTime (Table 7 uses 20%). Ignored for
	// DiskExponential.
	DiskTimeDev float64
	// DiskDist selects the disk service-time distribution; the zero value
	// means DiskUniform.
	DiskDist DiskDist
	// CPUSpeed scales the CPU's service rate (1.0 = the paper's
	// homogeneous baseline; 2.0 halves every CPU burst). Zero means 1.0.
	// The paper assumes homogeneity; this knob is the heterogeneity
	// extension.
	CPUSpeed float64
	// DiskSelection picks the disk serving each read.
	DiskSelection queue.DiskSelection
	// Classes is the query class table; per-page CPU service times are
	// exponential with the class mean.
	Classes []workload.Class

	// CycleHook, when non-nil, runs after each completed read/process
	// cycle except the last. Returning true means the hook took ownership
	// of the query (it is migrating away); the site then forgets it.
	// This is the attachment point for the paper's future-work idea of
	// moving partially executed queries "between primitive operations".
	CycleHook func(q *workload.Query) bool
}

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	switch {
	case c.NumDisks < 1:
		return fmt.Errorf("site: NumDisks %d < 1", c.NumDisks)
	case c.DiskTime <= 0:
		return fmt.Errorf("site: DiskTime %v must be positive", c.DiskTime)
	case c.DiskTimeDev < 0 || c.DiskTimeDev >= 1:
		return fmt.Errorf("site: DiskTimeDev %v outside [0,1)", c.DiskTimeDev)
	case len(c.Classes) == 0:
		return fmt.Errorf("site: no query classes")
	}
	if c.DiskDist != 0 && c.DiskDist != DiskUniform && c.DiskDist != DiskExponential {
		return fmt.Errorf("site: invalid disk distribution %d", c.DiskDist)
	}
	if c.CPUSpeed < 0 {
		return fmt.Errorf("site: negative CPU speed %v", c.CPUSpeed)
	}
	if c.DiskSelection != queue.SelectRandom && c.DiskSelection != queue.SelectShortestQueue {
		return fmt.Errorf("site: invalid disk selection %d", c.DiskSelection)
	}
	for _, cl := range c.Classes {
		if err := cl.Validate(); err != nil {
			return fmt.Errorf("site: %w", err)
		}
	}
	return nil
}

// Site executes queries on its CPU and disks. Each query admitted via
// Execute cycles (disk read → CPU processing) until its sampled read
// count is exhausted, then the completion callback fires.
type Site struct {
	id    int
	sched *sim.Scheduler
	cfg   Config
	done  func(*workload.Query)

	cpu     *queue.PS[*workload.Query]
	disks   *queue.DiskArray[*workload.Query]
	diskSvc *rng.Stream
	cpuSvc  *rng.Stream

	active int
}

// New builds an idle site. stream seeds the site's private service-time
// and disk-selection streams; done fires when a query's last CPU burst
// completes (while the query is still counted at the site).
func New(id int, sched *sim.Scheduler, cfg Config, stream *rng.Stream, done func(*workload.Query)) (*Site, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if done == nil {
		return nil, fmt.Errorf("site: nil completion callback")
	}
	if stream == nil {
		return nil, fmt.Errorf("site: nil random stream")
	}
	s := &Site{id: id, sched: sched, cfg: cfg, done: done}
	s.diskSvc = stream.Child(1)
	s.cpuSvc = stream.Child(2)
	s.cpu = queue.NewPS(sched, s.onCPUDone)
	s.disks = queue.NewDiskArray(sched, cfg.NumDisks, cfg.DiskSelection, stream.Child(3), s.onDiskDone)
	return s, nil
}

// ID returns the site's index.
func (s *Site) ID() int { return s.id }

// Active returns the number of queries currently executing at the site.
func (s *Site) Active() int { return s.active }

// Occupancy returns the number of queries currently at the CPU and at the
// disk array. Between events every active query is at exactly one of the
// two service centers, so cpu + disk == Active() — a structural invariant
// the internal/check auditors verify at runtime.
func (s *Site) Occupancy() (cpu, disk int) {
	return s.cpu.QueueLen(), s.disks.QueueLen()
}

// Execute admits a query: its first page read is dispatched immediately.
// The query must have ReadsTotal >= 1 and a valid class index.
func (s *Site) Execute(q *workload.Query) {
	if q.Class < 0 || q.Class >= len(s.cfg.Classes) {
		panic(fmt.Sprintf("site: query class %d out of range", q.Class))
	}
	if q.ReadsTotal < 1 {
		panic("site: query with no reads")
	}
	s.active++
	s.startRead(q)
}

// Crash drains the site mid-run (fault-injection extension): every
// executing query is removed from the CPU and the disks without
// completing, their pending service events are cancelled, and the lost
// queries are returned in deterministic order — CPU jobs in arrival
// order first, then disk jobs in disk-index order. The site object
// itself stays usable; whether new queries may be routed to it while it
// is "down", and when it is repaired, is the caller's concern.
func (s *Site) Crash() []*workload.Query {
	lost := s.cpu.Drain()
	lost = append(lost, s.disks.Drain()...)
	s.active = 0
	return lost
}

// Abort withdraws one executing query without completing it (the
// deadline-abort / hedge-cancellation extension): wherever its current
// cycle has it — sharing the CPU or queued at a disk — it is removed
// and the pending service event adjusted, exactly as if that one query
// had crashed. Reports whether the query was present; false means it
// is not at this site (e.g. still in transit on the ring).
func (s *Site) Abort(q *workload.Query) bool {
	match := func(j *workload.Query) bool { return j == q }
	if _, ok := s.cpu.RemoveFunc(match); ok {
		s.active--
		return true
	}
	if _, ok := s.disks.RemoveFunc(match); ok {
		s.active--
		return true
	}
	return false
}

// SetCPURate scales the CPU's live service rate (fail-slow extension):
// in-progress sharing is settled at the old rate, then every present and
// future burst proceeds at the new one. 1 restores full speed.
func (s *Site) SetCPURate(rate float64) { s.cpu.SetRate(rate) }

// SetDiskRate scales every disk's live service rate (fail-slow
// extension); the in-service read keeps its completed work and only the
// remainder stretches. 1 restores full speed.
func (s *Site) SetDiskRate(rate float64) { s.disks.SetRate(rate) }

// CPUUtilization returns the CPU busy fraction over the stats window
// ending at t.
func (s *Site) CPUUtilization(t float64) float64 { return s.cpu.Utilization(t) }

// DiskUtilization returns the mean disk busy fraction over the stats
// window ending at t.
func (s *Site) DiskUtilization(t float64) float64 { return s.disks.Utilization(t) }

// CPULoad returns the time-average number of queries at the CPU.
func (s *Site) CPULoad(t float64) float64 { return s.cpu.MeanLoad(t) }

// PagesRead returns the number of completed page reads.
func (s *Site) PagesRead() uint64 { return s.disks.Served() }

// ResetStats restarts the site's measurement windows at t.
func (s *Site) ResetStats(t float64) {
	s.cpu.ResetStats(t)
	s.disks.ResetStats(t)
}

// startRead samples a disk access time from the configured distribution
// and dispatches the read.
func (s *Site) startRead(q *workload.Query) {
	var service float64
	if s.cfg.DiskDist == DiskExponential {
		service = s.diskSvc.Exp(s.cfg.DiskTime)
	} else {
		service = s.cfg.DiskTime
		if dev := s.cfg.DiskTime * s.cfg.DiskTimeDev; dev > 0 {
			service = s.diskSvc.Uniform(s.cfg.DiskTime-dev, s.cfg.DiskTime+dev)
		}
	}
	q.Service += service
	q.DiskService += service
	s.disks.Enqueue(q, service)
}

// onDiskDone moves a query from disk to CPU with an exponential per-page
// processing requirement, scaled by the site's CPU speed.
func (s *Site) onDiskDone(q *workload.Query) {
	mean := s.cfg.Classes[q.Class].PageCPUTime
	if q.PageCPU > 0 {
		// Operator carriers (parallel-query extension) override the class
		// mean: a join or filter page costs differently than a scan page.
		mean = q.PageCPU
	}
	if s.cfg.CPUSpeed > 0 {
		mean /= s.cfg.CPUSpeed
	}
	service := s.cpuSvc.Exp(mean)
	q.Service += service
	s.cpu.Enqueue(q, service)
}

// onCPUDone finishes one read/process cycle and either starts the next
// read, hands the query to the migration hook, or completes it.
func (s *Site) onCPUDone(q *workload.Query) {
	q.ReadsDone++
	if q.ReadsDone < q.ReadsTotal {
		if s.cfg.CycleHook != nil && s.cfg.CycleHook(q) {
			s.active--
			return
		}
		s.startRead(q)
		return
	}
	s.active--
	s.done(q)
}
