package site

import (
	"math"
	"testing"

	"dqalloc/internal/queue"
	"dqalloc/internal/rng"
	"dqalloc/internal/sim"
	"dqalloc/internal/workload"
)

func testConfig() Config {
	return Config{
		NumDisks:      2,
		DiskTime:      1,
		DiskTimeDev:   0.2,
		DiskSelection: queue.SelectRandom,
		Classes: []workload.Class{
			{Name: "io", PageCPUTime: 0.05, NumReads: 20, MsgLength: 1},
			{Name: "cpu", PageCPUTime: 1.0, NumReads: 20, MsgLength: 1},
		},
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{name: "no disks", mutate: func(c *Config) { c.NumDisks = 0 }},
		{name: "zero disk time", mutate: func(c *Config) { c.DiskTime = 0 }},
		{name: "dev too large", mutate: func(c *Config) { c.DiskTimeDev = 1 }},
		{name: "negative dev", mutate: func(c *Config) { c.DiskTimeDev = -0.1 }},
		{name: "no classes", mutate: func(c *Config) { c.Classes = nil }},
		{name: "bad selection", mutate: func(c *Config) { c.DiskSelection = 0 }},
		{name: "bad class", mutate: func(c *Config) { c.Classes[0].NumReads = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := testConfig()
			tt.mutate(&cfg)
			if cfg.Validate() == nil {
				t.Error("invalid config accepted")
			}
		})
	}
	if err := testConfig().Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestNewRejectsNilCallbacks(t *testing.T) {
	s := sim.New()
	if _, err := New(0, s, testConfig(), rng.NewStream(1), nil); err == nil {
		t.Error("nil done accepted")
	}
	if _, err := New(0, s, testConfig(), nil, func(*workload.Query) {}); err == nil {
		t.Error("nil stream accepted")
	}
}

func TestQueryCompletesAllReads(t *testing.T) {
	s := sim.New()
	var done *workload.Query
	st, err := New(0, s, testConfig(), rng.NewStream(1), func(q *workload.Query) { done = q })
	if err != nil {
		t.Fatal(err)
	}
	q := &workload.Query{Class: 0, ReadsTotal: 7}
	s.At(0, func() { st.Execute(q) })
	s.Run()
	if done != q {
		t.Fatal("query did not complete")
	}
	if q.ReadsDone != 7 {
		t.Errorf("ReadsDone = %d, want 7", q.ReadsDone)
	}
	if st.Active() != 0 {
		t.Errorf("Active = %d, want 0", st.Active())
	}
	if st.PagesRead() != 7 {
		t.Errorf("PagesRead = %d, want 7", st.PagesRead())
	}
}

func TestServiceAccumulationMatchesClock(t *testing.T) {
	// With a single query and nothing else, there is no queueing at the
	// disks and none at the CPU: elapsed time equals accumulated service.
	s := sim.New()
	var doneAt float64
	st, err := New(0, s, testConfig(), rng.NewStream(2), func(*workload.Query) { doneAt = s.Now() })
	if err != nil {
		t.Fatal(err)
	}
	q := &workload.Query{Class: 1, ReadsTotal: 15}
	s.At(0, func() { st.Execute(q) })
	s.Run()
	if math.Abs(doneAt-q.Service) > 1e-9 {
		t.Errorf("elapsed %v != service %v for a lone query", doneAt, q.Service)
	}
	// CPU-bound class: roughly 15 disk units + 15 CPU units.
	if q.Service < 15 {
		t.Errorf("service %v implausibly small", q.Service)
	}
}

func TestActiveCountsConcurrentQueries(t *testing.T) {
	s := sim.New()
	completed := 0
	st, err := New(0, s, testConfig(), rng.NewStream(3), func(*workload.Query) { completed++ })
	if err != nil {
		t.Fatal(err)
	}
	s.At(0, func() {
		for i := 0; i < 5; i++ {
			st.Execute(&workload.Query{Class: i % 2, ReadsTotal: 10})
		}
		if st.Active() != 5 {
			t.Errorf("Active = %d, want 5", st.Active())
		}
	})
	s.Run()
	if completed != 5 {
		t.Errorf("completed = %d, want 5", completed)
	}
}

func TestMeanServiceTracksClassDemands(t *testing.T) {
	// Average service of many lone-ish queries should approach the class
	// demand: reads * (diskTime + pageCPU).
	s := sim.New()
	cfg := testConfig()
	var total float64
	n := 0
	// Run queries one at a time (chained through the completion callback)
	// so accumulated service has no queueing component.
	const queries = 400
	var st *Site
	done := func(q *workload.Query) {
		total += q.Service
		n++
		if n < queries {
			st.Execute(&workload.Query{Class: 0, ReadsTotal: 20})
		}
	}
	st, err := New(0, s, cfg, rng.NewStream(4), done)
	if err != nil {
		t.Fatal(err)
	}
	s.At(0, func() { st.Execute(&workload.Query{Class: 0, ReadsTotal: 20}) })
	s.Run()
	mean := total / float64(n)
	want := 20 * (1 + 0.05)
	if math.Abs(mean-want) > 0.5 {
		t.Errorf("mean service = %v, want ~%v", mean, want)
	}
}

func TestExecutePanicsOnBadQuery(t *testing.T) {
	s := sim.New()
	st, err := New(0, s, testConfig(), rng.NewStream(5), func(*workload.Query) {})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []*workload.Query{
		{Class: 9, ReadsTotal: 1},
		{Class: 0, ReadsTotal: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Execute(%+v) did not panic", q)
				}
			}()
			st.Execute(q)
		}()
	}
}

func TestCPUUtilizationUnderLoad(t *testing.T) {
	s := sim.New()
	st, err := New(0, s, testConfig(), rng.NewStream(6), func(*workload.Query) {})
	if err != nil {
		t.Fatal(err)
	}
	s.At(0, func() { st.Execute(&workload.Query{Class: 1, ReadsTotal: 50}) })
	s.Run()
	end := s.Now()
	cpuU := st.CPUUtilization(end)
	diskU := st.DiskUtilization(end)
	// CPU-bound class: cpu busy ~50%, each of 2 disks ~25%.
	if cpuU < 0.3 || cpuU > 0.7 {
		t.Errorf("CPU utilization = %v, want ~0.5", cpuU)
	}
	if diskU < 0.15 || diskU > 0.4 {
		t.Errorf("disk utilization = %v, want ~0.25", diskU)
	}
}

func TestSiteID(t *testing.T) {
	s := sim.New()
	st, err := New(3, s, testConfig(), rng.NewStream(7), func(*workload.Query) {})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID() != 3 {
		t.Errorf("ID = %d, want 3", st.ID())
	}
}
