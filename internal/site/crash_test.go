package site

import (
	"testing"

	"dqalloc/internal/rng"
	"dqalloc/internal/sim"
	"dqalloc/internal/workload"
)

func TestCrashDrainsActiveQueries(t *testing.T) {
	s := sim.New()
	var completed int
	st, err := New(0, s, testConfig(), rng.NewStream(6), func(*workload.Query) { completed++ })
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]*workload.Query, 4)
	s.At(0, func() {
		for i := range qs {
			qs[i] = &workload.Query{Class: i % 2, ReadsTotal: 20}
			st.Execute(qs[i])
		}
	})
	var lost []*workload.Query
	s.At(10, func() { lost = st.Crash() })
	s.Run()
	if completed != 0 {
		t.Errorf("%d queries completed despite the crash", completed)
	}
	if len(lost) != 4 {
		t.Fatalf("Crash returned %d queries, want 4", len(lost))
	}
	if st.Active() != 0 {
		t.Errorf("Active() = %d after crash", st.Active())
	}
	if cpu, disk := st.Occupancy(); cpu != 0 || disk != 0 {
		t.Errorf("occupancy (%d, %d) after crash", cpu, disk)
	}
	// Every admitted query must come back, each exactly once.
	seen := map[*workload.Query]bool{}
	for _, q := range lost {
		if seen[q] {
			t.Error("query drained twice")
		}
		seen[q] = true
	}
	for i, q := range qs {
		if !seen[q] {
			t.Errorf("query %d not drained", i)
		}
	}
}

func TestSiteUsableAfterCrash(t *testing.T) {
	s := sim.New()
	var completed int
	st, err := New(0, s, testConfig(), rng.NewStream(7), func(*workload.Query) { completed++ })
	if err != nil {
		t.Fatal(err)
	}
	s.At(0, func() { st.Execute(&workload.Query{Class: 0, ReadsTotal: 20}) })
	s.At(5, func() { st.Crash() })
	// A repaired site accepts and completes fresh work.
	s.At(10, func() { st.Execute(&workload.Query{Class: 0, ReadsTotal: 5}) })
	s.Run()
	if completed != 1 {
		t.Errorf("post-repair completions = %d, want 1", completed)
	}
}

func TestCrashOfIdleSiteIsEmpty(t *testing.T) {
	s := sim.New()
	st, err := New(0, s, testConfig(), rng.NewStream(8), func(*workload.Query) {})
	if err != nil {
		t.Fatal(err)
	}
	if lost := st.Crash(); len(lost) != 0 {
		t.Errorf("idle crash returned %d queries", len(lost))
	}
}
