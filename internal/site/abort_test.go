package site

import (
	"testing"

	"dqalloc/internal/queue"
	"dqalloc/internal/rng"
	"dqalloc/internal/sim"
	"dqalloc/internal/workload"
)

func abortTestSite(t *testing.T, done func(*workload.Query)) (*sim.Scheduler, *Site) {
	t.Helper()
	sched := sim.New()
	cfg := Config{
		NumDisks:      2,
		DiskTime:      1,
		DiskTimeDev:   0.2,
		DiskSelection: queue.SelectRandom,
		Classes:       []workload.Class{{Name: "io", PageCPUTime: 0.05, NumReads: 20, MsgLength: 1}},
	}
	s, err := New(0, sched, cfg, rng.NewStream(9), done)
	if err != nil {
		t.Fatal(err)
	}
	return sched, s
}

// TestSiteAbort aborts one of two executing queries mid-run: the site's
// census drops by one, the occupancy invariant holds, and only the
// survivor completes.
func TestSiteAbort(t *testing.T) {
	var completed []*workload.Query
	sched, s := abortTestSite(t, func(q *workload.Query) { completed = append(completed, q) })
	qa := &workload.Query{ID: 1, ReadsTotal: 30}
	qb := &workload.Query{ID: 2, ReadsTotal: 30}
	s.Execute(qa)
	s.Execute(qb)
	sched.RunUntil(5)
	if s.Active() != 2 {
		t.Fatalf("active %d, want 2", s.Active())
	}
	if !s.Abort(qa) {
		t.Fatal("Abort did not find the executing query")
	}
	if s.Active() != 1 {
		t.Fatalf("active %d after abort, want 1", s.Active())
	}
	cpu, disk := s.Occupancy()
	if cpu+disk != s.Active() {
		t.Fatalf("occupancy %d+%d != active %d", cpu, disk, s.Active())
	}
	if s.Abort(qa) {
		t.Fatal("aborted query found twice")
	}
	sched.Run()
	if len(completed) != 1 || completed[0] != qb {
		t.Fatalf("completions %v, want only the survivor", completed)
	}
	if s.Active() != 0 {
		t.Fatalf("active %d at end, want 0", s.Active())
	}
}

// TestSiteAbortAbsent: a query never admitted (or already shipped away)
// is reported absent and the site is untouched.
func TestSiteAbortAbsent(t *testing.T) {
	sched, s := abortTestSite(t, func(*workload.Query) {})
	q := &workload.Query{ID: 1, ReadsTotal: 5}
	s.Execute(q)
	sched.RunUntil(1)
	if s.Abort(&workload.Query{ID: 99, ReadsTotal: 5}) {
		t.Fatal("absent query reported aborted")
	}
	if s.Active() != 1 {
		t.Fatalf("active %d, want 1", s.Active())
	}
}
