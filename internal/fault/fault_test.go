package fault

import (
	"math"
	"testing"

	"dqalloc/internal/rng"
	"dqalloc/internal/sim"
)

func testConfig() Config {
	c := Default()
	c.MTTF = 100
	c.MTTR = 20
	return c
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("disabled config rejected: %v", err)
	}
	if err := Default().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
	inf := Default()
	inf.MTTF = math.Inf(1)
	inf.MTTR = 0 // irrelevant without failures
	if err := inf.Validate(); err != nil {
		t.Errorf("MTTF=+Inf config rejected: %v", err)
	}
	if inf.SiteFailures() {
		t.Error("MTTF=+Inf reports site failures")
	}
	bad := []func(*Config){
		func(c *Config) { c.MTTF = 0 },
		func(c *Config) { c.MTTF = -1 },
		func(c *Config) { c.MTTR = 0 },
		func(c *Config) { c.DropProb = -0.1 },
		func(c *Config) { c.DropProb = 1.5 },
		func(c *Config) { c.DelayMean = -1 },
		func(c *Config) { c.DetectTimeout = 0 },
		func(c *Config) { c.RetryBackoff = 0 },
		func(c *Config) { c.MaxRetries = -1 },
	}
	for i, mutate := range bad {
		c := Default()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestInjectorAlternates(t *testing.T) {
	sched := sim.New()
	var crashes, repairs []int
	inj, err := NewInjector(sched, 3, testConfig(), rng.NewStream(7),
		func(s int) { crashes = append(crashes, s) },
		func(s int) { repairs = append(repairs, s) })
	if err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(2000)
	if inj.Crashes() == 0 {
		t.Fatal("no crashes over 20 MTTFs")
	}
	if got := inj.Crashes() - inj.Repairs(); got > 3 {
		t.Errorf("crashes %d exceed repairs %d by more than the site count", inj.Crashes(), inj.Repairs())
	}
	if uint64(len(crashes)) != inj.Crashes() || uint64(len(repairs)) != inj.Repairs() {
		t.Errorf("callback counts (%d, %d) disagree with counters (%d, %d)",
			len(crashes), len(repairs), inj.Crashes(), inj.Repairs())
	}
	// The mask must agree with the crash/repair history per site.
	for s := 0; s < 3; s++ {
		c, r := 0, 0
		for _, x := range crashes {
			if x == s {
				c++
			}
		}
		for _, x := range repairs {
			if x == s {
				r++
			}
		}
		if wantUp := c == r; inj.SiteUp(s) != wantUp {
			t.Errorf("site %d: up=%v after %d crashes, %d repairs", s, inj.SiteUp(s), c, r)
		}
	}
}

func TestInjectorDeterminism(t *testing.T) {
	run := func(seed uint64) (uint64, []float64) {
		sched := sim.New()
		inj, err := NewInjector(sched, 4, testConfig(), rng.NewStream(seed), nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		sched.RunUntil(5000)
		down := make([]float64, 4)
		for s := range down {
			down[s] = inj.Downtime(s, 5000)
		}
		return inj.Crashes(), down
	}
	c1, d1 := run(11)
	c2, d2 := run(11)
	if c1 != c2 {
		t.Fatalf("same seed, different crash counts: %d vs %d", c1, c2)
	}
	for s := range d1 {
		if d1[s] != d2[s] {
			t.Fatalf("same seed, different downtime at site %d: %v vs %v", s, d1[s], d2[s])
		}
	}
	if c3, _ := run(12); c3 == c1 {
		t.Logf("different seeds gave equal crash counts (%d) — possible but suspicious", c1)
	}
}

func TestDowntimeWindow(t *testing.T) {
	sched := sim.New()
	inj, err := NewInjector(sched, 2, testConfig(), rng.NewStream(3), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(1000)
	inj.ResetStats(1000)
	sched.RunUntil(3000)
	for s := 0; s < 2; s++ {
		d := inj.Downtime(s, 3000)
		if d < 0 || d > 2000 {
			t.Errorf("site %d downtime %v outside window [0, 2000]", s, d)
		}
	}
	// With MTTF 100 / MTTR 20 the expected unavailability is ~1/6; over a
	// 2000-unit window at least some downtime should land in it.
	total := inj.Downtime(0, 3000) + inj.Downtime(1, 3000)
	if total == 0 {
		t.Error("no downtime measured over 20 MTTFs")
	}
}

func TestNoFailuresSchedulesNothing(t *testing.T) {
	sched := sim.New()
	cfg := Default()
	cfg.MTTF = math.Inf(1)
	inj, err := NewInjector(sched, 3, cfg, rng.NewStream(5), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Len() != 0 {
		t.Errorf("reliable-site injector scheduled %d events", sched.Len())
	}
	sched.RunUntil(10000)
	if inj.Crashes() != 0 {
		t.Errorf("reliable sites crashed %d times", inj.Crashes())
	}
	for s := 0; s < 3; s++ {
		if inj.Downtime(s, 10000) != 0 {
			t.Errorf("reliable site %d has downtime", s)
		}
	}
}
