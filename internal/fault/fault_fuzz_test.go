package fault_test

import (
	"math"
	"testing"

	"dqalloc/internal/fault"
	"dqalloc/internal/system"
)

// clampF folds an arbitrary fuzzed float into [lo, hi], mapping NaN and
// infinities to lo.
func clampF(v, lo, hi float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return lo
	}
	v = math.Abs(v)
	return lo + math.Mod(v, hi-lo)
}

// FuzzFaultConfig hammers the fault-injection configuration surface:
//
//  1. Validate must never panic, and a config it accepts must honor the
//     documented field contracts — no NaN anywhere, probabilities in
//     [0,1], degradation factors ≥ 1 when their episodes are live.
//  2. Any sanitized in-range config must drive a short fully-audited
//     run without tripping a conservation auditor.
//  3. An enabled config whose every fault process is off (no crashes,
//     no loss, no delay, no fail-slow, no brownouts) must be a true
//     noop: its event-stream digest matches a disabled config bit for
//     bit, whatever the inert watchdog knobs are set to.
func FuzzFaultConfig(f *testing.F) {
	f.Add(uint64(1), 10000.0, 500.0, 0.0, 0.0, 150.0, 10.0, 8, 4000.0, 800.0, 10.0, 0.0, 2000.0, 300.0, 4.0)
	f.Add(uint64(2), math.Inf(1), 0.0, 0.05, 2.0, 50.0, 5.0, 3, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
	f.Add(uint64(3), math.NaN(), -1.0, 1.5, math.Inf(1), 0.0, -3.0, -1, -5.0, math.NaN(), 0.5, 0.5, -1.0, 0.0, 0.9)
	f.Add(uint64(4), 800.0, 200.0, 0.3, 5.0, 80.0, 2.0, 1, 600.0, 150.0, 3.0, 1.0, 900.0, 100.0, 2.0)
	f.Fuzz(func(t *testing.T, seed uint64,
		mttf, mttr, drop, delay, detect, backoff float64, retries int,
		slowMTTF, slowMTTR, slowFactor, slowDisk, brMTTF, brMTTR, brFactor float64) {

		raw := fault.Config{
			Enabled:        true,
			MTTF:           mttf,
			MTTR:           mttr,
			DropProb:       drop,
			DelayMean:      delay,
			DetectTimeout:  detect,
			RetryBackoff:   backoff,
			MaxRetries:     retries,
			SlowMTTF:       slowMTTF,
			SlowMTTR:       slowMTTR,
			SlowFactor:     slowFactor,
			SlowDiskFactor: slowDisk,
			BrownoutMTTF:   brMTTF,
			BrownoutMTTR:   brMTTR,
			BrownoutFactor: brFactor,
		}
		err := raw.Validate() // must never panic
		off := raw
		off.Enabled = false
		if off.Validate() != nil {
			t.Fatal("disabled config rejected")
		}
		if err == nil {
			// Contract of an accepted config: every field is a usable
			// number in its documented range.
			for name, v := range map[string]float64{
				"MTTF": raw.MTTF, "MTTR": raw.MTTR, "DropProb": raw.DropProb,
				"DelayMean": raw.DelayMean, "DetectTimeout": raw.DetectTimeout,
				"RetryBackoff": raw.RetryBackoff,
				"SlowMTTF":     raw.SlowMTTF, "SlowMTTR": raw.SlowMTTR,
				"SlowFactor": raw.SlowFactor, "SlowDiskFactor": raw.SlowDiskFactor,
				"BrownoutMTTF": raw.BrownoutMTTF, "BrownoutMTTR": raw.BrownoutMTTR,
				"BrownoutFactor": raw.BrownoutFactor,
			} {
				if math.IsNaN(v) || v < 0 {
					t.Fatalf("Validate accepted %s = %v", name, v)
				}
			}
			if raw.DropProb > 1 {
				t.Fatalf("Validate accepted DropProb %v", raw.DropProb)
			}
			if raw.SlowFaults() && (raw.SlowFactor < 1 || (raw.SlowDiskFactor != 0 && raw.SlowDiskFactor < 1)) {
				t.Fatalf("Validate accepted sub-1 degradation factors: %+v", raw)
			}
			if raw.Brownouts() && raw.BrownoutFactor < 1 {
				t.Fatalf("Validate accepted brownout factor %v", raw.BrownoutFactor)
			}
			if raw.MaxRetries < 0 {
				t.Fatalf("Validate accepted MaxRetries %d", raw.MaxRetries)
			}
		}

		// A sanitized in-range sibling of the fuzz point must survive a
		// short run with every auditor armed.
		sane := fault.Config{
			Enabled:        true,
			MTTF:           clampF(mttf, 500, 5000),
			MTTR:           clampF(mttr, 50, 500),
			DropProb:       clampF(drop, 0, 0.2),
			DelayMean:      clampF(delay, 0, 5),
			DetectTimeout:  clampF(detect, 50, 300),
			RetryBackoff:   clampF(backoff, 1, 50),
			MaxRetries:     1 + (retries&0x7f+128)%8,
			SlowMTTF:       clampF(slowMTTF, 200, 2000),
			SlowMTTR:       clampF(slowMTTR, 50, 500),
			SlowFactor:     clampF(slowFactor, 1, 20),
			SlowDiskFactor: clampF(slowDisk, 1, 20),
			BrownoutMTTF:   clampF(brMTTF, 200, 2000),
			BrownoutMTTR:   clampF(brMTTR, 50, 500),
			BrownoutFactor: clampF(brFactor, 1, 10),
		}
		cfg := system.Default()
		cfg.NumSites = 3
		cfg.MPL = 3
		cfg.Warmup = 50
		cfg.Measure = 400
		cfg.Seed = seed%1024 + 1
		cfg.Audit = true
		cfg.Fault = sane
		if err := cfg.Validate(); err != nil {
			t.Fatalf("sanitized config rejected: %v", err)
		}
		s, err := system.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Run()
		if err := s.Audit(); err != nil {
			t.Fatalf("auditor violation: %v", err)
		}

		// Enabled-noop identity for the gray-failure extension: with
		// SlowMTTF and BrownoutMTTF zero the slow injector must not
		// exist, so the leftover fuzzed episode parameters — factors,
		// durations — must not change the crash-only event stream by a
		// single bit. The gate is the predicate, not field presence.
		crashOnly := sane
		crashOnly.SlowMTTF = 0
		crashOnly.SlowMTTR = 0
		crashOnly.SlowFactor = 0
		crashOnly.SlowDiskFactor = 0
		crashOnly.BrownoutMTTF = 0
		crashOnly.BrownoutMTTR = 0
		crashOnly.BrownoutFactor = 0
		inert := sane
		inert.SlowMTTF = 0     // off, but SlowMTTR/factors keep fuzzed values
		inert.BrownoutMTTF = 0 // off, but BrownoutMTTR/factor keep fuzzed values
		base := cfg
		base.Fault = crashOnly
		base.TraceDigest = true
		inertCfg := cfg
		inertCfg.Fault = inert
		inertCfg.TraceDigest = true
		want := digestOf(t, base)
		got := digestOf(t, inertCfg)
		if got != want {
			t.Fatalf("inert fail-slow fields changed the event stream: %#x != %#x", got, want)
		}
	})
}

func digestOf(t *testing.T, cfg system.Config) uint64 {
	t.Helper()
	s, err := system.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := s.Run()
	if err := s.Audit(); err != nil {
		t.Fatal(err)
	}
	return r.TraceDigest
}
