package fault

import (
	"fmt"
	"math"

	"dqalloc/internal/rng"
	"dqalloc/internal/sim"
)

// This file holds the fail-slow half of the fault model: per-site
// episodes during which a site keeps running — and keeps broadcasting
// load reports — but executes SlowFactor× slower, plus ring-wide
// brownout episodes inflating transmission times. Fail-slow is the
// gray-failure complement to the crash model in fault.go: nothing is
// lost, no watchdog fires, and the load-information feedback loop the
// allocation policies depend on is silently poisoned.

// Scheduler event kinds for the fail-slow layer (see sim.Event.Kind).
const (
	// EventKindSlowOn tags fail-slow episode onsets.
	EventKindSlowOn byte = 0x53
	// EventKindSlowOff tags fail-slow episode recoveries.
	EventKindSlowOff byte = 0x54
	// EventKindBrownoutOn tags ring-brownout onsets.
	EventKindBrownoutOn byte = 0x55
	// EventKindBrownoutOff tags ring-brownout recoveries.
	EventKindBrownoutOff byte = 0x56
)

// SlowTotals is the fail-slow ledger snapshot read by the
// check.SlowFaultConservation auditor through a closure.
type SlowTotals struct {
	// Episodes and Recoveries count fail-slow onsets and completed
	// recoveries; Degraded counts sites currently inside an episode.
	Episodes, Recoveries uint64
	Degraded             int
	// Brownouts and BrownoutEnds count ring-brownout onsets and ends;
	// BrownoutActive reports whether one is open now.
	Brownouts, BrownoutEnds uint64
	BrownoutActive          bool
}

// SlowInjector runs the per-site fail-slow processes and the ring
// brownout process. Like the crash Injector, each site draws onset and
// duration times from its own child stream (the brownout process gets
// the child one past the last site), so the gray-failure sample path is
// a common-random-numbers block shared across policies.
type SlowInjector struct {
	sched      *sim.Scheduler
	cfg        Config
	slowed     []bool
	streams    []*rng.Stream
	brStream   *rng.Stream
	onSlow     func(site int)
	onRecover  func(site int)
	onBrownout func(active bool)

	episodes     uint64
	recoveries   uint64
	brownouts    uint64
	brownoutEnds uint64
	brActive     bool

	slowSince   []float64 // valid while the site is slowed
	slowTime    []float64 // accumulated degraded time inside the stats window
	brSince     float64
	brTime      float64
	windowStart float64
}

// NewSlowInjector builds the fail-slow injector for numSites sites and
// schedules each site's first onset and the first brownout (each a no-op
// when its half of the config is off). onSlow and onRecover fire at the
// corresponding instants, after the slowness mask has been updated;
// onBrownout fires with the new brownout state.
func NewSlowInjector(sched *sim.Scheduler, numSites int, cfg Config, stream *rng.Stream, onSlow, onRecover func(site int), onBrownout func(active bool)) (*SlowInjector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if numSites <= 0 {
		return nil, fmt.Errorf("fault: numSites %d must be positive", numSites)
	}
	if stream == nil {
		return nil, fmt.Errorf("fault: nil random stream")
	}
	inj := &SlowInjector{
		sched:      sched,
		cfg:        cfg,
		slowed:     make([]bool, numSites),
		streams:    make([]*rng.Stream, numSites),
		onSlow:     onSlow,
		onRecover:  onRecover,
		onBrownout: onBrownout,
		slowSince:  make([]float64, numSites),
		slowTime:   make([]float64, numSites),
	}
	if cfg.SlowFaults() {
		for s := range inj.slowed {
			inj.streams[s] = stream.Child(uint64(s))
			inj.scheduleOnset(s)
		}
	}
	if cfg.Brownouts() {
		inj.brStream = stream.Child(uint64(numSites))
		inj.scheduleBrownout()
	}
	return inj, nil
}

// Slowed reports whether site s is currently inside a fail-slow episode.
func (inj *SlowInjector) Slowed(s int) bool { return inj.slowed[s] }

// SlowMask returns the live slowness mask: element s is true while site
// s is degraded. Callers may hold the slice; it is updated in place at
// onset and recovery instants.
func (inj *SlowInjector) SlowMask() []bool { return inj.slowed }

// BrownoutActive reports whether a ring brownout is open now.
func (inj *SlowInjector) BrownoutActive() bool { return inj.brActive }

// Totals returns the episode ledger for the conservation auditor.
func (inj *SlowInjector) Totals() SlowTotals {
	degraded := 0
	for _, s := range inj.slowed {
		if s {
			degraded++
		}
	}
	return SlowTotals{
		Episodes:       inj.episodes,
		Recoveries:     inj.recoveries,
		Degraded:       degraded,
		Brownouts:      inj.brownouts,
		BrownoutEnds:   inj.brownoutEnds,
		BrownoutActive: inj.brActive,
	}
}

func (inj *SlowInjector) scheduleOnset(s int) {
	ev := inj.sched.After(inj.streams[s].Exp(inj.cfg.SlowMTTF), func() { inj.slowOn(s) })
	ev.SetKind(EventKindSlowOn)
}

func (inj *SlowInjector) slowOn(s int) {
	inj.slowed[s] = true
	inj.episodes++
	inj.slowSince[s] = inj.sched.Now()
	if inj.onSlow != nil {
		inj.onSlow(s)
	}
	ev := inj.sched.After(inj.streams[s].Exp(inj.cfg.SlowMTTR), func() { inj.slowOff(s) })
	ev.SetKind(EventKindSlowOff)
}

func (inj *SlowInjector) slowOff(s int) {
	now := inj.sched.Now()
	inj.slowed[s] = false
	inj.recoveries++
	if since := math.Max(inj.slowSince[s], inj.windowStart); now > since {
		inj.slowTime[s] += now - since
	}
	if inj.onRecover != nil {
		inj.onRecover(s)
	}
	inj.scheduleOnset(s)
}

func (inj *SlowInjector) scheduleBrownout() {
	ev := inj.sched.After(inj.brStream.Exp(inj.cfg.BrownoutMTTF), func() { inj.brownoutOn() })
	ev.SetKind(EventKindBrownoutOn)
}

func (inj *SlowInjector) brownoutOn() {
	inj.brActive = true
	inj.brownouts++
	inj.brSince = inj.sched.Now()
	if inj.onBrownout != nil {
		inj.onBrownout(true)
	}
	ev := inj.sched.After(inj.brStream.Exp(inj.cfg.BrownoutMTTR), func() { inj.brownoutOff() })
	ev.SetKind(EventKindBrownoutOff)
}

func (inj *SlowInjector) brownoutOff() {
	now := inj.sched.Now()
	inj.brActive = false
	inj.brownoutEnds++
	if since := math.Max(inj.brSince, inj.windowStart); now > since {
		inj.brTime += now - since
	}
	if inj.onBrownout != nil {
		inj.onBrownout(false)
	}
	inj.scheduleBrownout()
}

// ResetStats restarts the degraded-time accounting window at t (call at
// the begin-measurement instant, like every other stats window).
func (inj *SlowInjector) ResetStats(t float64) {
	inj.windowStart = t
	for s := range inj.slowTime {
		inj.slowTime[s] = 0
	}
	inj.brTime = 0
}

// DegradedTime returns site s's accumulated fail-slow time over the
// stats window ending at end, including a still-open episode.
func (inj *SlowInjector) DegradedTime(s int, end float64) float64 {
	d := inj.slowTime[s]
	if inj.slowed[s] {
		if since := math.Max(inj.slowSince[s], inj.windowStart); end > since {
			d += end - since
		}
	}
	return d
}

// BrownoutTime returns the accumulated ring-brownout time over the
// stats window ending at end, including a still-open episode.
func (inj *SlowInjector) BrownoutTime(end float64) float64 {
	d := inj.brTime
	if inj.brActive {
		if since := math.Max(inj.brSince, inj.windowStart); end > since {
			d += end - since
		}
	}
	return d
}
