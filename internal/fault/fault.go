// Package fault is the fault-injection subsystem: deterministic site
// crash/repair processes and the knobs of the lossy-network extension.
//
// The paper assumes reliable sites and a lossless subnet (Section 2)
// and notes that dynamic allocation "should be more resilient to
// failures" than static assignment — without testing it. This package
// supplies the missing failure model so that claim can be measured:
// sites fail and recover as alternating exponential processes (the
// classic machine-repair model), load-status broadcasts can be lost or
// delayed, and the system layer adds detection timeouts with
// retry/failover. Everything is driven by the simulation scheduler and
// dedicated child rng streams, so runs stay bit-reproducible and —
// with faults disabled — the no-fault event trace is untouched.
package fault

import (
	"fmt"
	"math"

	"dqalloc/internal/rng"
	"dqalloc/internal/sim"
)

// Config collects the fault model's parameters. The zero value (and
// Enabled == false) disables fault injection entirely.
type Config struct {
	// Enabled turns the subsystem on. When false every other field is
	// ignored and the simulation's event trace is bit-identical to a
	// build without this package.
	Enabled bool

	// MTTF is each site's mean time to failure (exponential). +Inf
	// means sites never fail — useful for studying the lossy network in
	// isolation, and for the enabled-noop identity tests.
	MTTF float64
	// MTTR is each site's mean time to repair (exponential).
	MTTR float64

	// DropProb is the probability that any one ring transmission (query
	// shipment, result return) or per-site load-status entry is lost.
	DropProb float64
	// DelayMean is the mean extra latency (exponential) added to ring
	// transmissions and load-status entries that survive the drop coin.
	// Zero adds no delay and draws nothing.
	DelayMean float64

	// DetectTimeout is the watchdog interval: a query unheard-of for
	// this long after dispatch is checked for loss. It bounds failure
	// detection latency; false timeouts (the query is merely slow) just
	// re-arm the watchdog, so execution stays at-most-once.
	DetectTimeout float64
	// RetryBackoff is the base delay before re-allocating a lost query;
	// attempt k waits RetryBackoff·2^(k-1).
	RetryBackoff float64
	// MaxRetries bounds re-allocation attempts per query; a query
	// losing more than MaxRetries attempts is rejected (counted, never
	// silently dropped).
	MaxRetries int

	// SlowMTTF is each site's mean time between fail-slow onsets
	// (exponential). 0 or +Inf disables fail-slow episodes. Unlike a
	// crash, a fail-slow site keeps executing and keeps broadcasting
	// load reports — it just runs SlowFactor× slower.
	SlowMTTF float64
	// SlowMTTR is each fail-slow episode's mean duration (exponential).
	SlowMTTR float64
	// SlowFactor multiplies CPU (and, unless overridden, disk) service
	// times while a site is in a fail-slow episode; must be ≥ 1.
	SlowFactor float64
	// SlowDiskFactor optionally overrides the disk multiplier during a
	// fail-slow episode. 0 means "follow SlowFactor"; any other value
	// must be ≥ 1. Set it to 1 for a CPU-only gray failure.
	SlowDiskFactor float64

	// BrownoutMTTF is the mean time between ring brownout onsets
	// (exponential). 0 or +Inf disables brownouts. A brownout is a
	// network-wide gray failure: every transmission starting during the
	// episode takes BrownoutFactor× longer.
	BrownoutMTTF float64
	// BrownoutMTTR is each brownout episode's mean duration (exponential).
	BrownoutMTTR float64
	// BrownoutFactor multiplies ring transmission times during a
	// brownout; must be ≥ 1.
	BrownoutFactor float64
}

// Default returns a moderate-failure configuration: site failures every
// 10000 time units healing in 500 (≈95% intrinsic availability),
// reliable network, and a watchdog tuned to the Table-7 workload's
// response-time scale.
func Default() Config {
	return Config{
		Enabled:       true,
		MTTF:          10000,
		MTTR:          500,
		DropProb:      0,
		DelayMean:     0,
		DetectTimeout: 150,
		RetryBackoff:  10,
		MaxRetries:    8,
	}
}

// DefaultSlow returns a pure gray-failure configuration: sites never
// crash but suffer 10× fail-slow episodes every 4000 time units lasting
// 800 on average (both CPU and disk), with the reliable network and
// default watchdog settings. Assign it to Config.Fault and adjust.
func DefaultSlow() Config {
	c := Default()
	c.MTTF = math.Inf(1)
	c.SlowMTTF = 4000
	c.SlowMTTR = 800
	c.SlowFactor = 10
	return c
}

// Validate reports a configuration error, if any. A disabled config is
// always valid.
func (c Config) Validate() error {
	if !c.Enabled {
		return nil
	}
	switch {
	case !(c.MTTF > 0): // rejects 0, negatives and NaN; +Inf passes
		return fmt.Errorf("fault: MTTF %v must be positive (or +Inf for no failures)", c.MTTF)
	case c.SiteFailures() && !(c.MTTR > 0 && !math.IsInf(c.MTTR, 1)):
		return fmt.Errorf("fault: MTTR %v must be positive and finite", c.MTTR)
	case math.IsNaN(c.DropProb) || c.DropProb < 0 || c.DropProb > 1:
		return fmt.Errorf("fault: DropProb %v outside [0,1]", c.DropProb)
	case math.IsNaN(c.DelayMean) || c.DelayMean < 0 || math.IsInf(c.DelayMean, 1):
		return fmt.Errorf("fault: DelayMean %v must be finite and non-negative", c.DelayMean)
	case !(c.DetectTimeout > 0) || math.IsInf(c.DetectTimeout, 1):
		return fmt.Errorf("fault: DetectTimeout %v must be positive and finite", c.DetectTimeout)
	case !(c.RetryBackoff > 0) || math.IsInf(c.RetryBackoff, 1):
		return fmt.Errorf("fault: RetryBackoff %v must be positive and finite", c.RetryBackoff)
	case c.MaxRetries < 0:
		return fmt.Errorf("fault: MaxRetries %d must be non-negative", c.MaxRetries)
	case math.IsNaN(c.SlowMTTF) || c.SlowMTTF < 0:
		return fmt.Errorf("fault: SlowMTTF %v must be non-negative (0 or +Inf for no fail-slow)", c.SlowMTTF)
	case c.SlowFaults() && !(c.SlowMTTR > 0 && !math.IsInf(c.SlowMTTR, 1)):
		return fmt.Errorf("fault: SlowMTTR %v must be positive and finite", c.SlowMTTR)
	case c.SlowFaults() && !(c.SlowFactor >= 1 && !math.IsInf(c.SlowFactor, 1)):
		return fmt.Errorf("fault: SlowFactor %v must be ≥ 1 and finite", c.SlowFactor)
	case c.SlowFaults() && c.SlowDiskFactor != 0 && !(c.SlowDiskFactor >= 1 && !math.IsInf(c.SlowDiskFactor, 1)):
		return fmt.Errorf("fault: SlowDiskFactor %v must be 0 (follow SlowFactor) or ≥ 1 and finite", c.SlowDiskFactor)
	case !c.SlowFaults() && (math.IsNaN(c.SlowMTTR) || c.SlowMTTR < 0 || math.IsNaN(c.SlowFactor) || c.SlowFactor < 0 || math.IsNaN(c.SlowDiskFactor) || c.SlowDiskFactor < 0):
		return fmt.Errorf("fault: negative or NaN fail-slow parameter with fail-slow disabled")
	case math.IsNaN(c.BrownoutMTTF) || c.BrownoutMTTF < 0:
		return fmt.Errorf("fault: BrownoutMTTF %v must be non-negative (0 or +Inf for no brownouts)", c.BrownoutMTTF)
	case c.Brownouts() && !(c.BrownoutMTTR > 0 && !math.IsInf(c.BrownoutMTTR, 1)):
		return fmt.Errorf("fault: BrownoutMTTR %v must be positive and finite", c.BrownoutMTTR)
	case c.Brownouts() && !(c.BrownoutFactor >= 1 && !math.IsInf(c.BrownoutFactor, 1)):
		return fmt.Errorf("fault: BrownoutFactor %v must be ≥ 1 and finite", c.BrownoutFactor)
	case !c.Brownouts() && (math.IsNaN(c.BrownoutMTTR) || c.BrownoutMTTR < 0 || math.IsNaN(c.BrownoutFactor) || c.BrownoutFactor < 0):
		return fmt.Errorf("fault: negative or NaN brownout parameter with brownouts disabled")
	}
	return nil
}

// SiteFailures reports whether the config makes sites crash at all.
func (c Config) SiteFailures() bool { return c.Enabled && !math.IsInf(c.MTTF, 1) }

// NetworkFaults reports whether the config perturbs the network or the
// load broadcasts.
func (c Config) NetworkFaults() bool { return c.Enabled && (c.DropProb > 0 || c.DelayMean > 0) }

// SlowFaults reports whether the config makes sites fail slow at all.
func (c Config) SlowFaults() bool {
	return c.Enabled && c.SlowMTTF > 0 && !math.IsInf(c.SlowMTTF, 1)
}

// Brownouts reports whether the config browns out the ring at all.
func (c Config) Brownouts() bool {
	return c.Enabled && c.BrownoutMTTF > 0 && !math.IsInf(c.BrownoutMTTF, 1)
}

// SlowCPUFactor returns the CPU service-time multiplier of a fail-slow
// episode.
func (c Config) SlowCPUFactor() float64 { return c.SlowFactor }

// SlowDiskMult returns the disk service-time multiplier of a fail-slow
// episode: SlowDiskFactor, or SlowFactor when unset.
func (c Config) SlowDiskMult() float64 {
	if c.SlowDiskFactor != 0 {
		return c.SlowDiskFactor
	}
	return c.SlowFactor
}

// Scheduler event kinds for the trace digest (see sim.Event.Kind).
const (
	// EventKindCrash tags site-failure events.
	EventKindCrash byte = 0x51
	// EventKindRepair tags site-repair events.
	EventKindRepair byte = 0x52
)

// Injector runs the per-site crash/repair processes. Each site draws
// its failure and repair times from its own child stream, so the fault
// sample path is a common-random-numbers block: it is identical across
// allocation policies and unchanged by anything the rest of the model
// draws.
type Injector struct {
	sched    *sim.Scheduler
	cfg      Config
	up       []bool
	streams  []*rng.Stream
	onCrash  func(site int)
	onRepair func(site int)

	crashes uint64
	repairs uint64

	downSince   []float64 // valid while the site is down
	downTime    []float64 // accumulated downtime inside the stats window
	windowStart float64
}

// NewInjector builds the injector for numSites sites and schedules each
// site's first failure (no-op when the config keeps sites reliable).
// onCrash and onRepair fire at the corresponding instants, after the
// liveness mask has been updated.
func NewInjector(sched *sim.Scheduler, numSites int, cfg Config, stream *rng.Stream, onCrash, onRepair func(site int)) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if numSites <= 0 {
		return nil, fmt.Errorf("fault: numSites %d must be positive", numSites)
	}
	if stream == nil {
		return nil, fmt.Errorf("fault: nil random stream")
	}
	inj := &Injector{
		sched:     sched,
		cfg:       cfg,
		up:        make([]bool, numSites),
		streams:   make([]*rng.Stream, numSites),
		onCrash:   onCrash,
		onRepair:  onRepair,
		downSince: make([]float64, numSites),
		downTime:  make([]float64, numSites),
	}
	for s := range inj.up {
		inj.up[s] = true
		inj.streams[s] = stream.Child(uint64(s))
	}
	if cfg.SiteFailures() {
		for s := range inj.up {
			inj.scheduleCrash(s)
		}
	}
	return inj, nil
}

// Up returns the live liveness mask: element s is true while site s is
// up. Callers (the policy Env) may hold the slice; it is updated in
// place at crash and repair instants.
func (inj *Injector) Up() []bool { return inj.up }

// SiteUp reports site s's current liveness.
func (inj *Injector) SiteUp(s int) bool { return inj.up[s] }

// Crashes returns the lifetime count of site failures.
func (inj *Injector) Crashes() uint64 { return inj.crashes }

// Repairs returns the lifetime count of completed repairs.
func (inj *Injector) Repairs() uint64 { return inj.repairs }

func (inj *Injector) scheduleCrash(s int) {
	ev := inj.sched.After(inj.streams[s].Exp(inj.cfg.MTTF), func() { inj.crash(s) })
	ev.SetKind(EventKindCrash)
}

func (inj *Injector) crash(s int) {
	now := inj.sched.Now()
	inj.up[s] = false
	inj.crashes++
	inj.downSince[s] = now
	if inj.onCrash != nil {
		inj.onCrash(s)
	}
	ev := inj.sched.After(inj.streams[s].Exp(inj.cfg.MTTR), func() { inj.repair(s) })
	ev.SetKind(EventKindRepair)
}

func (inj *Injector) repair(s int) {
	now := inj.sched.Now()
	inj.up[s] = true
	inj.repairs++
	if since := math.Max(inj.downSince[s], inj.windowStart); now > since {
		inj.downTime[s] += now - since
	}
	if inj.onRepair != nil {
		inj.onRepair(s)
	}
	inj.scheduleCrash(s)
}

// ResetStats restarts the downtime accounting window at t (call at the
// begin-measurement instant, like every other stats window).
func (inj *Injector) ResetStats(t float64) {
	inj.windowStart = t
	for s := range inj.downTime {
		inj.downTime[s] = 0
	}
}

// Downtime returns site s's accumulated downtime over the stats window
// ending at end, including the still-open outage of a currently-down
// site.
func (inj *Injector) Downtime(s int, end float64) float64 {
	d := inj.downTime[s]
	if !inj.up[s] {
		if since := math.Max(inj.downSince[s], inj.windowStart); end > since {
			d += end - since
		}
	}
	return d
}
