package network

import (
	"testing"

	"dqalloc/internal/sim"
)

func TestRingDropInvokesOnDropOnly(t *testing.T) {
	s := sim.New()
	r := NewRing(s, 2, 1)
	fates := []bool{false, true, false} // second message dropped
	i := 0
	r.SetFault(func() (bool, float64) { d := fates[i]; i++; return d, 0 })
	var delivered, dropped []float64
	send := func() {
		r.Send(Message{
			From: 0, To: 1, Size: 2,
			OnDeliver: func() { delivered = append(delivered, s.Now()) },
			OnDrop:    func() { dropped = append(dropped, s.Now()) },
		})
	}
	s.At(0, func() { send(); send(); send() })
	s.Run()
	if len(delivered) != 2 || len(dropped) != 1 {
		t.Fatalf("delivered %v dropped %v, want 2 and 1", delivered, dropped)
	}
	// The dropped transmission still occupies the ring for its slot.
	if dropped[0] != 4 || delivered[1] != 6 {
		t.Errorf("drop at %v, final delivery at %v, want 4 and 6", dropped[0], delivered[1])
	}
	if r.TotalDropped() != 1 || r.Dropped() != 1 {
		t.Errorf("dropped counters = %d/%d, want 1/1", r.TotalDropped(), r.Dropped())
	}
	if r.Sent() != r.TotalDelivered()+r.TotalDropped()+uint64(r.Pending()) {
		t.Errorf("conservation violated: sent %d, delivered %d, dropped %d, pending %d",
			r.Sent(), r.TotalDelivered(), r.TotalDropped(), r.Pending())
	}
	// Dropped bytes are not carried.
	if r.BytesCarried() != 4 {
		t.Errorf("bytes carried = %v, want 4", r.BytesCarried())
	}
}

func TestRingFaultDelayExtendsOccupancy(t *testing.T) {
	s := sim.New()
	r := NewRing(s, 2, 1)
	r.SetFault(func() (bool, float64) { return false, 3 })
	var times []float64
	deliver := func() { times = append(times, s.Now()) }
	s.At(0, func() {
		r.Send(Message{From: 0, To: 1, Size: 2, OnDeliver: deliver})
		r.Send(Message{From: 0, To: 1, Size: 2, OnDeliver: deliver})
	})
	s.Run()
	// Each transmission takes 2 + 3 extra; they serialize.
	if len(times) != 2 || times[0] != 5 || times[1] != 10 {
		t.Errorf("delivery times = %v, want [5 10]", times)
	}
}

func TestRingDropWithoutOnDropIsCounted(t *testing.T) {
	s := sim.New()
	r := NewRing(s, 2, 1)
	r.SetFault(func() (bool, float64) { return true, 0 })
	s.At(0, func() {
		r.Send(Message{From: 0, To: 1, Size: 1, OnDeliver: func() { t.Error("dropped message delivered") }})
	})
	s.Run()
	if r.TotalDropped() != 1 || r.Pending() != 0 {
		t.Errorf("dropped/pending = %d/%d, want 1/0", r.TotalDropped(), r.Pending())
	}
}

func TestResetStatsKeepsLifetimeDropCounter(t *testing.T) {
	s := sim.New()
	r := NewRing(s, 2, 1)
	r.SetFault(func() (bool, float64) { return true, 0 })
	s.At(0, func() {
		r.Send(Message{From: 0, To: 1, Size: 1, OnDeliver: func() {}})
	})
	s.Run()
	r.ResetStats(s.Now())
	if r.Dropped() != 0 {
		t.Errorf("windowed drop counter %d after reset", r.Dropped())
	}
	if r.TotalDropped() != 1 {
		t.Errorf("lifetime drop counter %d after reset, want 1", r.TotalDropped())
	}
}
