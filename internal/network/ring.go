// Package network models the paper's communications subnetwork (Section
// 2): "a simple token-ring style local network" with a single outgoing
// message queue per site, round-robin polling for send requests, a
// transmission cost linear in message length, and negligible polling
// overhead.
package network

import (
	"dqalloc/internal/sim"
	"dqalloc/internal/stats"
)

// Message is one transfer over the ring: a query descriptor being shipped
// to a remote execution site, or a result page set returning home.
type Message struct {
	From int     // sending site
	To   int     // receiving site
	Size float64 // message length in bytes

	// OnDeliver runs at the instant the transmission completes. It must
	// not be nil.
	OnDeliver func()
	// OnDrop runs instead of OnDeliver when the lossy-network extension
	// (SetFault) drops the message. nil means the drop is only counted —
	// acceptable for messages whose loss nobody must recover from.
	OnDrop func()

	// Kind tags the transmission-complete event in the trace digest; the
	// zero value means EventKindTransmit (an ordinary query/result
	// message). The replica manager stamps fragment-copy shipments with
	// its own kind so traces distinguish data movement from queries.
	Kind byte

	enqueuedAt float64
}

// Ring is the polled token-ring medium shared by all sites. Exactly one
// message is in flight at a time; after each transmission the ring resumes
// polling at the next site, giving sites round-robin access.
type Ring struct {
	sched   *sim.Scheduler
	perByte float64

	queues  [][]Message
	pending int
	cursor  int // next site to poll
	busy    bool
	// inflight is the single message being transmitted (the ring carries
	// exactly one at a time), and completeFn/dropFn are its retirement
	// actions, bound once at construction so transmit allocates no
	// closure per transmission.
	inflight   Message
	completeFn sim.Action
	dropFn     sim.Action
	util       stats.TimeWeighted
	qlen       stats.TimeWeighted
	delivered  uint64
	dropped    uint64
	bytes      float64
	waits      stats.Welford // ring queueing delay per message (excl. transmission)

	// fault, when non-nil, decides each transmission's fate (lossy
	// network extension). It is consulted exactly once per transmission,
	// in transmission order, keeping runs deterministic.
	fault func() (drop bool, delay float64)

	// stretch, when non-nil, returns the current transmission-time
	// multiplier (brownout extension). Consulted exactly once per
	// transmission, at its start; a message already in flight when a
	// brownout opens or closes keeps its original timing.
	stretch func() float64

	// sent, totalDelivered and totalDropped are lifetime counters (never
	// reset by ResetStats) backing the message-conservation invariant
	// sent == totalDelivered + totalDropped + pending audited by
	// internal/check.
	sent           uint64
	totalDelivered uint64
	totalDropped   uint64
}

// EventKindTransmit tags the ring's transmission-complete events in the
// scheduler's trace digest.
const EventKindTransmit byte = 0x21

// NewRing builds a ring connecting numSites sites, with a transmission
// time of perByte time units per byte of message length.
func NewRing(sched *sim.Scheduler, numSites int, perByte float64) *Ring {
	if numSites <= 0 {
		panic("network: ring needs at least one site")
	}
	if perByte < 0 {
		panic("network: negative per-byte cost")
	}
	r := &Ring{
		sched:   sched,
		perByte: perByte,
		queues:  make([][]Message, numSites),
	}
	r.completeFn = r.complete
	r.dropFn = r.drop
	return r
}

// TransmitTime returns the time the ring needs to transmit size bytes,
// excluding any queueing.
func (r *Ring) TransmitTime(size float64) float64 { return size * r.perByte }

// SetFault installs a per-message fault model: fn is consulted once per
// transmission, in transmission order. drop suppresses delivery — the
// message's OnDrop callback (if any) runs instead of OnDeliver — and
// delay extends the transmission's occupancy of the ring, modeling
// link-layer retransmissions and congestion. The paper assumes a
// lossless subnet; this hook is the fault-injection extension. Install
// before the first Send; pass nil to restore reliable delivery.
func (r *Ring) SetFault(fn func() (drop bool, delay float64)) { r.fault = fn }

// SetStretch installs a transmission-time multiplier consulted once at
// each transmission's start (brownout extension): a factor of k makes
// every transmission beginning while it returns k take k× as long,
// modeling a network-wide gray failure. In-flight messages are
// unaffected. Pass nil to restore nominal timing.
func (r *Ring) SetStretch(fn func() float64) { r.stretch = fn }

// Send places a message in the sender's outgoing queue. Delivery happens
// after the ring polls the sender and transmits the message.
func (r *Ring) Send(m Message) {
	if m.OnDeliver == nil {
		panic("network: message without OnDeliver")
	}
	if m.From < 0 || m.From >= len(r.queues) || m.To < 0 || m.To >= len(r.queues) {
		panic("network: message endpoint out of range")
	}
	now := r.sched.Now()
	m.enqueuedAt = now
	r.queues[m.From] = append(r.queues[m.From], m)
	r.pending++
	r.sent++
	r.qlen.Set(now, float64(r.pending))
	if !r.busy {
		r.poll()
	}
}

// Pending returns the number of messages waiting or in flight.
func (r *Ring) Pending() int { return r.pending }

// Delivered returns the number of completed transmissions over the stats
// window (reset by ResetStats).
func (r *Ring) Delivered() uint64 { return r.delivered }

// Dropped returns the number of messages the fault model dropped over
// the stats window (reset by ResetStats).
func (r *Ring) Dropped() uint64 { return r.dropped }

// Sent returns the total messages handed to the ring since construction.
func (r *Ring) Sent() uint64 { return r.sent }

// TotalDelivered returns the total completed transmissions since
// construction. At every instant
// Sent() == TotalDelivered() + TotalDropped() + Pending().
func (r *Ring) TotalDelivered() uint64 { return r.totalDelivered }

// TotalDropped returns the total messages dropped by the fault model
// since construction (zero on a reliable ring).
func (r *Ring) TotalDropped() uint64 { return r.totalDropped }

// BytesCarried returns the total bytes transmitted.
func (r *Ring) BytesCarried() float64 { return r.bytes }

// Utilization returns the fraction of time the ring was transmitting over
// the stats window ending at t. This is the paper's "subnet utilization"
// (Table 11).
func (r *Ring) Utilization(t float64) float64 { return r.util.MeanAt(t) }

// MeanPending returns the time-average number of queued messages over the
// stats window ending at t.
func (r *Ring) MeanPending(t float64) float64 { return r.qlen.MeanAt(t) }

// MeanWait returns the mean ring queueing delay per delivered message,
// excluding transmission time.
func (r *Ring) MeanWait() float64 { return r.waits.Mean() }

// ResetStats restarts the measurement windows at t.
func (r *Ring) ResetStats(t float64) {
	r.util.Reset(t)
	r.qlen.Reset(t)
	r.delivered = 0
	r.dropped = 0
	r.bytes = 0
	r.waits.Reset()
}

// poll scans sites round-robin from the cursor and transmits the first
// pending message found. Polling overhead is negligible per the paper, so
// the scan itself takes zero simulated time.
func (r *Ring) poll() {
	if r.pending == 0 {
		return
	}
	n := len(r.queues)
	for i := 0; i < n; i++ {
		s := (r.cursor + i) % n
		if len(r.queues[s]) == 0 {
			continue
		}
		m := r.queues[s][0]
		copy(r.queues[s], r.queues[s][1:])
		r.queues[s][len(r.queues[s])-1] = Message{}
		r.queues[s] = r.queues[s][:len(r.queues[s])-1]
		r.cursor = (s + 1) % n
		r.transmit(m)
		return
	}
}

func (r *Ring) transmit(m Message) {
	now := r.sched.Now()
	r.busy = true
	r.inflight = m
	r.util.Set(now, 1)
	r.waits.Add(now - m.enqueuedAt)
	hold := r.TransmitTime(m.Size)
	if r.stretch != nil {
		hold *= r.stretch()
	}
	dropped := false
	if r.fault != nil {
		var extra float64
		dropped, extra = r.fault()
		hold += extra
	}
	var ev sim.Handle
	if dropped {
		ev = r.sched.After(hold, r.dropFn)
	} else {
		ev = r.sched.After(hold, r.completeFn)
	}
	if m.Kind != 0 {
		ev.SetKind(m.Kind)
	} else {
		ev.SetKind(EventKindTransmit)
	}
}

func (r *Ring) complete() {
	// Take the in-flight message before polling: poll may immediately
	// start the next transmission, overwriting the slot.
	m := r.inflight
	r.inflight = Message{}
	now := r.sched.Now()
	r.pending--
	r.qlen.Set(now, float64(r.pending))
	r.delivered++
	r.totalDelivered++
	r.bytes += m.Size
	r.busy = false
	r.util.Set(now, 0)
	// Resume polling before delivering so that a delivery action that
	// immediately sends again observes a consistent ring state.
	r.poll()
	m.OnDeliver()
}

// drop retires a message the fault model discarded: the transmission
// occupied the ring but the receiver never got the payload.
func (r *Ring) drop() {
	m := r.inflight
	r.inflight = Message{}
	now := r.sched.Now()
	r.pending--
	r.qlen.Set(now, float64(r.pending))
	r.dropped++
	r.totalDropped++
	r.busy = false
	r.util.Set(now, 0)
	r.poll()
	if m.OnDrop != nil {
		m.OnDrop()
	}
}
