package network

import (
	"math"
	"testing"

	"dqalloc/internal/sim"
)

func TestRingDeliversWithLinearCost(t *testing.T) {
	s := sim.New()
	r := NewRing(s, 4, 0.5)
	var deliveredAt float64 = -1
	s.At(0, func() {
		r.Send(Message{From: 0, To: 2, Size: 6, OnDeliver: func() { deliveredAt = s.Now() }})
	})
	s.Run()
	if deliveredAt != 3 { // 6 bytes * 0.5 per byte
		t.Errorf("delivered at %v, want 3", deliveredAt)
	}
	if r.Delivered() != 1 || r.BytesCarried() != 6 {
		t.Errorf("delivered/bytes = %d/%v, want 1/6", r.Delivered(), r.BytesCarried())
	}
}

func TestRingSerializesTransmissions(t *testing.T) {
	s := sim.New()
	r := NewRing(s, 2, 1)
	var times []float64
	deliver := func() { times = append(times, s.Now()) }
	s.At(0, func() {
		r.Send(Message{From: 0, To: 1, Size: 2, OnDeliver: deliver})
		r.Send(Message{From: 0, To: 1, Size: 2, OnDeliver: deliver})
		r.Send(Message{From: 1, To: 0, Size: 2, OnDeliver: deliver})
	})
	s.Run()
	want := []float64{2, 4, 6}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("delivery times = %v, want %v", times, want)
		}
	}
}

func TestRingRoundRobinFairness(t *testing.T) {
	s := sim.New()
	r := NewRing(s, 3, 1)
	var order []int
	send := func(site int) {
		r.Send(Message{From: site, To: (site + 1) % 3, Size: 1,
			OnDeliver: func() { order = append(order, site) }})
	}
	s.At(0, func() {
		// Two messages per site; round-robin must interleave sites
		// rather than draining site 0 first.
		send(0)
		send(0)
		send(1)
		send(1)
		send(2)
		send(2)
	})
	s.Run()
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("service order = %v, want %v", order, want)
		}
	}
}

func TestRingCursorAdvancesPastIdleSites(t *testing.T) {
	s := sim.New()
	r := NewRing(s, 4, 1)
	var order []int
	send := func(site int) {
		r.Send(Message{From: site, To: 0, Size: 1,
			OnDeliver: func() { order = append(order, site) }})
	}
	s.At(0, func() { send(2); send(3); send(2) })
	s.Run()
	// Cursor starts at 0; sites 0 and 1 are idle, so 2 transmits first,
	// then polling resumes at 3, then wraps to 2 again.
	want := []int{2, 3, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("service order = %v, want %v", order, want)
		}
	}
}

func TestRingUtilization(t *testing.T) {
	s := sim.New()
	r := NewRing(s, 2, 1)
	s.At(0, func() {
		r.Send(Message{From: 0, To: 1, Size: 3, OnDeliver: func() {}})
	})
	s.RunUntil(10)
	if got := r.Utilization(10); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("utilization = %v, want 0.3", got)
	}
}

func TestRingWaitExcludesTransmission(t *testing.T) {
	s := sim.New()
	r := NewRing(s, 2, 1)
	s.At(0, func() {
		r.Send(Message{From: 0, To: 1, Size: 4, OnDeliver: func() {}}) // waits 0
		r.Send(Message{From: 1, To: 0, Size: 4, OnDeliver: func() {}}) // waits 4
	})
	s.Run()
	if got := r.MeanWait(); math.Abs(got-2) > 1e-12 {
		t.Errorf("mean ring wait = %v, want 2", got)
	}
}

func TestRingDeliveryCanSendAgain(t *testing.T) {
	s := sim.New()
	r := NewRing(s, 2, 1)
	hops := 0
	var bounce func()
	bounce = func() {
		hops++
		if hops < 5 {
			r.Send(Message{From: hops % 2, To: (hops + 1) % 2, Size: 1, OnDeliver: bounce})
		}
	}
	s.At(0, func() {
		r.Send(Message{From: 0, To: 1, Size: 1, OnDeliver: bounce})
	})
	s.Run()
	if hops != 5 {
		t.Errorf("hops = %d, want 5", hops)
	}
	if r.Pending() != 0 {
		t.Errorf("pending = %d, want 0", r.Pending())
	}
}

func TestRingResetStats(t *testing.T) {
	s := sim.New()
	r := NewRing(s, 2, 1)
	s.At(0, func() {
		r.Send(Message{From: 0, To: 1, Size: 5, OnDeliver: func() {}})
	})
	s.At(6, func() { r.ResetStats(6) })
	s.RunUntil(12)
	if got := r.Utilization(12); got != 0 {
		t.Errorf("post-reset utilization = %v, want 0", got)
	}
	if r.Delivered() != 0 || r.BytesCarried() != 0 {
		t.Error("post-reset counters not cleared")
	}
}

func TestRingPanicsOnBadEndpoint(t *testing.T) {
	s := sim.New()
	r := NewRing(s, 2, 1)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range endpoint did not panic")
		}
	}()
	r.Send(Message{From: 0, To: 5, Size: 1, OnDeliver: func() {}})
}

func TestRingPanicsOnNilDeliver(t *testing.T) {
	s := sim.New()
	r := NewRing(s, 2, 1)
	defer func() {
		if recover() == nil {
			t.Error("nil OnDeliver did not panic")
		}
	}()
	r.Send(Message{From: 0, To: 1, Size: 1})
}
