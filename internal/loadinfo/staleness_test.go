package loadinfo

import (
	"testing"

	"dqalloc/internal/sim"
	"dqalloc/internal/workload"
)

// These tests pin the staleness *semantics* of the broadcaster: how old
// an entry can get under loss, and that the age is directly observable
// through LastUpdate/Age rather than inferred from value changes — the
// property the live server's TTL machinery (internal/serve) relies on.

func TestLastUpdateTracksBroadcastRounds(t *testing.T) {
	s := sim.New()
	tb := NewTable(3)
	b, err := NewBroadcaster(s, tb, 10)
	if err != nil {
		t.Fatal(err)
	}
	for site := 0; site < 3; site++ {
		if got := b.LastUpdate(site); got != 0 {
			t.Errorf("site %d initial LastUpdate = %v, want 0 (construction snapshot)", site, got)
		}
	}
	s.RunUntil(25) // broadcasts at 10 and 20
	for site := 0; site < 3; site++ {
		if got := b.LastUpdate(site); got != 20 {
			t.Errorf("site %d LastUpdate = %v, want 20", site, got)
		}
		if got := b.Age(site); got != 5 {
			t.Errorf("site %d Age = %v, want 5", site, got)
		}
	}
}

// TestEntriesOlderThanKPeriodsAreObservablyStale: K consecutive lost
// reports leave the entry's age beyond K×period, visibly, while the
// clean sites stay within one period of fresh.
func TestEntriesOlderThanKPeriodsAreObservablyStale(t *testing.T) {
	const period, K = 10.0, 3
	s := sim.New()
	tb := NewTable(2)
	b, err := NewBroadcaster(s, tb, period)
	if err != nil {
		t.Fatal(err)
	}
	// Site 0's status messages are always lost; site 1's always arrive.
	b.SetPerturb(func(site int) (bool, float64) { return site == 0, 0 })
	s.At(1, func() { tb.Assign(0, workload.IOBound) })
	s.RunUntil(K*period + 5) // rounds at 10, 20, 30 all dropped for site 0

	if age := b.Age(0); age <= K*period {
		t.Errorf("lossy site age = %v, want > %v (K=%d consecutive losses)", age, K*period, K)
	}
	if age := b.Age(1); age > period {
		t.Errorf("clean site age = %v, want <= one period (%v)", age, period)
	}
	// The stale value is the construction-time snapshot, consistent with
	// the stale age.
	if got := b.NumQueries(0); got != 0 {
		t.Errorf("stale entry shows %d queries, want the t=0 value 0", got)
	}
}

// TestDelayedEntryStampsArrivalTime: a delayed status message refreshes
// LastUpdate at its *application* instant, so Age reflects when the
// view last changed, not when the message was sent.
func TestDelayedEntryStampsArrivalTime(t *testing.T) {
	s := sim.New()
	tb := NewTable(1)
	b, err := NewBroadcaster(s, tb, 10)
	if err != nil {
		t.Fatal(err)
	}
	b.SetPerturb(func(int) (bool, float64) { return false, 4 })
	s.RunUntil(12) // broadcast at 10, delayed application due at 14
	if got := b.LastUpdate(0); got != 0 {
		t.Errorf("LastUpdate = %v before the delayed message lands, want 0", got)
	}
	s.RunUntil(15)
	if got := b.LastUpdate(0); got != 14 {
		t.Errorf("LastUpdate = %v, want the arrival time 14", got)
	}
}

// TestStopIdempotentUnderPerturbation: Stop called repeatedly — before,
// between, and after perturbed rounds with delayed messages still in
// flight — must never cancel an event it does not own, and the drained
// schedule must leave the last applied state intact.
func TestStopIdempotentUnderPerturbation(t *testing.T) {
	s := sim.New()
	tb := NewTable(2)
	b, err := NewBroadcaster(s, tb, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Every round defers both sites' messages by 7, so each tick leaves
	// delayed-info events pending past the next Stop.
	b.SetPerturb(func(int) (bool, float64) { return false, 7 })
	s.At(5, func() { tb.Assign(1, workload.CPUBound) })
	s.At(12, func() { b.Stop(); b.Stop() }) // tick at 10 in flight toward 17
	s.At(13, func() { b.Stop() })
	// A foreign event after the stops must survive them.
	fired := false
	s.At(30, func() { fired = true })
	s.Run()
	if !fired {
		t.Error("Stop cancelled an event it did not own")
	}
	// The delayed messages from the t=10 round still land at 17 — they
	// were already in flight when Stop arrived — but no round after 10
	// ever runs.
	if got := b.NumQueries(1); got != 1 {
		t.Errorf("in-flight delayed message lost: site 1 shows %d, want 1", got)
	}
	if got := b.LastUpdate(1); got != 17 {
		t.Errorf("LastUpdate = %v, want 17 (the in-flight application)", got)
	}
}
