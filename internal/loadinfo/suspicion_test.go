package loadinfo

import (
	"math"
	"testing"
)

func TestSuspectConfigValidate(t *testing.T) {
	if err := (SuspectConfig{}).Validate(); err != nil {
		t.Fatalf("disabled config invalid: %v", err)
	}
	if err := DefaultSuspect().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []SuspectConfig{
		{Enabled: true, Alpha: 0, Ratio: 3, Clear: 1.5, MinSamples: 8, Penalty: 1},
		{Enabled: true, Alpha: 1.5, Ratio: 3, Clear: 1.5, MinSamples: 8, Penalty: 1},
		{Enabled: true, Alpha: math.NaN(), Ratio: 3, Clear: 1.5, MinSamples: 8, Penalty: 1},
		{Enabled: true, Alpha: 0.2, Ratio: 1, Clear: 1, MinSamples: 8, Penalty: 1},
		{Enabled: true, Alpha: 0.2, Ratio: math.Inf(1), Clear: 1.5, MinSamples: 8, Penalty: 1},
		{Enabled: true, Alpha: 0.2, Ratio: 3, Clear: 0.5, MinSamples: 8, Penalty: 1},
		{Enabled: true, Alpha: 0.2, Ratio: 3, Clear: 3, MinSamples: 8, Penalty: 1},
		{Enabled: true, Alpha: 0.2, Ratio: 3, Clear: 1.5, MinSamples: 0, Penalty: 1},
		{Enabled: true, Alpha: 0.2, Ratio: 3, Clear: 1.5, MinSamples: 8, Penalty: -1},
		{Enabled: true, Alpha: 0.2, Ratio: 3, Clear: 1.5, MinSamples: 8, Penalty: math.Inf(1)},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: config %+v unexpectedly valid", i, c)
		}
	}
}

// A site running 10× slower than its peers must become suspect once it
// has MinSamples, and must clear after recovering.
func TestSuspicionMarkAndClear(t *testing.T) {
	cfg := DefaultSuspect()
	u, err := NewSuspicion(4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mask := u.Mask()
	now := 0.0
	for i := 0; i < 20; i++ {
		now += 10
		for s := 0; s < 3; s++ {
			u.Observe(s, 1.2, now) // healthy: response ≈ service
		}
		u.Observe(3, 12, now) // gray: 10× degraded
	}
	if !u.Suspected(3) {
		t.Fatalf("degraded site not suspect; score %v", u.Score(3))
	}
	for s := 0; s < 3; s++ {
		if u.Suspected(s) {
			t.Fatalf("healthy site %d suspect", s)
		}
	}
	if !mask[3] {
		t.Fatal("mask not updated in place")
	}
	if u.Penalty(3) != cfg.Penalty {
		t.Fatalf("suspect penalty %v, want %v", u.Penalty(3), cfg.Penalty)
	}
	if u.Penalty(0) != 0 {
		t.Fatalf("clean penalty %v, want 0", u.Penalty(0))
	}
	if u.SuspectCount() != 1 {
		t.Fatalf("SuspectCount %d, want 1", u.SuspectCount())
	}
	// Recovery: the EWMA decays back toward healthy; hysteresis clears.
	for i := 0; i < 50; i++ {
		now += 10
		for s := 0; s < 4; s++ {
			u.Observe(s, 1.2, now)
		}
	}
	if u.Suspected(3) {
		t.Fatalf("recovered site still suspect; score %v", u.Score(3))
	}
}

// Before MinSamples a site must never be condemned, however slow.
func TestSuspicionMinSamples(t *testing.T) {
	u, err := NewSuspicion(3, DefaultSuspect())
	if err != nil {
		t.Fatal(err)
	}
	now := 0.0
	for i := 0; i < 20; i++ {
		now += 1
		u.Observe(0, 1, now)
		u.Observe(1, 1, now)
	}
	for i := 0; i < 7; i++ { // MinSamples is 8
		now += 1
		u.Observe(2, 100, now)
	}
	if u.Suspected(2) {
		t.Fatal("site suspect before MinSamples")
	}
	u.Observe(2, 100, now+1)
	if !u.Suspected(2) {
		t.Fatal("site not suspect at MinSamples")
	}
}

// Garbage samples must be ignored, not poison the EWMA.
func TestSuspicionIgnoresGarbage(t *testing.T) {
	u, err := NewSuspicion(2, DefaultSuspect())
	if err != nil {
		t.Fatal(err)
	}
	u.Observe(0, math.NaN(), 1)
	u.Observe(0, math.Inf(1), 2)
	u.Observe(0, -1, 3)
	u.Observe(0, 0, 4)
	if u.Samples(0) != 0 {
		t.Fatalf("garbage samples counted: %d", u.Samples(0))
	}
}

func TestNewSuspicionRejects(t *testing.T) {
	if _, err := NewSuspicion(3, SuspectConfig{}); err == nil {
		t.Fatal("disabled config accepted")
	}
	if _, err := NewSuspicion(0, DefaultSuspect()); err == nil {
		t.Fatal("zero sites accepted")
	}
	bad := DefaultSuspect()
	bad.Alpha = -1
	if _, err := NewSuspicion(3, bad); err == nil {
		t.Fatal("invalid config accepted")
	}
}
