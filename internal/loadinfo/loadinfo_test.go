package loadinfo

import (
	"testing"

	"dqalloc/internal/sim"
	"dqalloc/internal/workload"
)

func TestTableCounts(t *testing.T) {
	tb := NewTable(3)
	tb.Assign(0, workload.IOBound)
	tb.Assign(0, workload.CPUBound)
	tb.Assign(1, workload.IOBound)
	if tb.NumQueries(0) != 2 || tb.NumIOQueries(0) != 1 || tb.NumCPUQueries(0) != 1 {
		t.Errorf("site 0 counts = %d/%d/%d, want 2/1/1",
			tb.NumQueries(0), tb.NumIOQueries(0), tb.NumCPUQueries(0))
	}
	if tb.NumQueries(2) != 0 {
		t.Errorf("idle site count = %d, want 0", tb.NumQueries(2))
	}
	if tb.Total() != 3 {
		t.Errorf("Total = %d, want 3", tb.Total())
	}
	tb.Complete(0, workload.IOBound)
	if tb.NumIOQueries(0) != 0 || tb.NumQueries(0) != 1 {
		t.Error("Complete did not decrement")
	}
}

func TestTablePanicsOnUnderflow(t *testing.T) {
	tb := NewTable(1)
	defer func() {
		if recover() == nil {
			t.Error("completion without assignment did not panic")
		}
	}()
	tb.Complete(0, workload.IOBound)
}

func TestTablePanicsOnInvalidBound(t *testing.T) {
	tb := NewTable(1)
	defer func() {
		if recover() == nil {
			t.Error("invalid bound did not panic")
		}
	}()
	tb.Assign(0, workload.Bound(0))
}

func TestBroadcasterStaleness(t *testing.T) {
	s := sim.New()
	tb := NewTable(2)
	b, err := NewBroadcaster(s, tb, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Changes after the initial snapshot are invisible until the next tick.
	s.At(1, func() { tb.Assign(0, workload.IOBound) })
	s.At(5, func() {
		if b.NumQueries(0) != 0 {
			t.Errorf("stale view at t=5 sees %d, want 0", b.NumQueries(0))
		}
		if tb.NumQueries(0) != 1 {
			t.Errorf("ground truth at t=5 = %d, want 1", tb.NumQueries(0))
		}
	})
	s.At(11, func() {
		if b.NumQueries(0) != 1 || b.NumIOQueries(0) != 1 {
			t.Errorf("post-broadcast view = %d/%d, want 1/1",
				b.NumQueries(0), b.NumIOQueries(0))
		}
	})
	s.RunUntil(12)
	b.Stop()
}

func TestBroadcasterInitialSnapshot(t *testing.T) {
	s := sim.New()
	tb := NewTable(1)
	tb.Assign(0, workload.CPUBound)
	b, err := NewBroadcaster(s, tb, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()
	if b.NumCPUQueries(0) != 1 {
		t.Errorf("initial snapshot missing assignment: %d", b.NumCPUQueries(0))
	}
	if b.Period() != 5 {
		t.Errorf("Period = %v, want 5", b.Period())
	}
}

func TestBroadcasterStopCancelsTicks(t *testing.T) {
	s := sim.New()
	tb := NewTable(1)
	b, err := NewBroadcaster(s, tb, 2)
	if err != nil {
		t.Fatal(err)
	}
	s.At(3, func() {
		b.Stop()
		tb.Assign(0, workload.IOBound)
	})
	s.Run() // terminates because the recurring tick is cancelled
	if b.NumQueries(0) != 0 {
		t.Error("stopped broadcaster kept refreshing")
	}
}

func TestBroadcasterRejectsBadPeriod(t *testing.T) {
	s := sim.New()
	tb := NewTable(1)
	if _, err := NewBroadcaster(s, tb, 0); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := NewBroadcaster(s, tb, -1); err == nil {
		t.Error("negative period accepted")
	}
}

func TestWorkTracking(t *testing.T) {
	tb := NewTable(2)
	tb.AssignWork(0, 10, 20)
	tb.AssignWork(0, 1, 2)
	tb.AssignWork(1, 5, 5)
	if tb.CPUWork(0) != 11 || tb.IOWork(0) != 22 {
		t.Errorf("site 0 work = %v/%v, want 11/22", tb.CPUWork(0), tb.IOWork(0))
	}
	tb.CompleteWork(0, 10, 20)
	if tb.CPUWork(0) != 1 || tb.IOWork(0) != 2 {
		t.Errorf("post-complete work = %v/%v, want 1/2", tb.CPUWork(0), tb.IOWork(0))
	}
	if tb.CPUWork(1) != 5 {
		t.Errorf("site 1 untouched work = %v", tb.CPUWork(1))
	}
}

func TestWorkUnderflowPanics(t *testing.T) {
	tb := NewTable(1)
	defer func() {
		if recover() == nil {
			t.Error("work underflow did not panic")
		}
	}()
	tb.CompleteWork(0, 1, 0)
}

func TestBroadcasterSnapshotsWork(t *testing.T) {
	s := sim.New()
	tb := NewTable(1)
	b, err := NewBroadcaster(s, tb, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()
	s.At(1, func() { tb.AssignWork(0, 7, 3) })
	s.At(5, func() {
		if b.CPUWork(0) != 0 || b.IOWork(0) != 0 {
			t.Error("stale view leaked fresh work")
		}
	})
	s.At(11, func() {
		if b.CPUWork(0) != 7 || b.IOWork(0) != 3 {
			t.Errorf("post-broadcast work = %v/%v, want 7/3", b.CPUWork(0), b.IOWork(0))
		}
	})
	s.RunUntil(12)
}

func TestNewTablePanicsOnNoSites(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTable(0) did not panic")
		}
	}()
	NewTable(0)
}
