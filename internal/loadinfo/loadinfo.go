// Package loadinfo maintains the load-distribution information that the
// allocation heuristics consume: for every site, the number of queries
// currently allocated there, split into I/O-bound and CPU-bound counts
// (paper Sections 4.1–4.3).
//
// The paper assumes "each site knows the current loads of all other sites"
// (Section 2); PerfectView realizes that assumption. The paper defers the
// design of an information-exchange policy to future work (Section 4.4);
// Broadcaster implements the natural candidate — periodic status broadcast
// — so the cost of stale information can be studied.
package loadinfo

import (
	"fmt"

	"dqalloc/internal/sim"
	"dqalloc/internal/workload"
)

// View is the allocator's read interface over site load state. Sites are
// identified by index.
type View interface {
	// NumQueries returns the number of queries allocated to the site.
	NumQueries(site int) int
	// NumIOQueries returns the number of I/O-bound queries at the site.
	NumIOQueries(site int) int
	// NumCPUQueries returns the number of CPU-bound queries at the site.
	NumCPUQueries(site int) int
}

// WorkView is the optional extension of View exposing the outstanding
// *estimated work* committed to each site, split by resource. Policies
// that want two-dimensional work balancing (rather than query counts)
// type-assert a View to WorkView.
type WorkView interface {
	// CPUWork returns the site's outstanding estimated CPU demand.
	CPUWork(site int) float64
	// IOWork returns the site's outstanding estimated disk demand.
	IOWork(site int) float64
}

// Table is the ground-truth load table, updated by the system as queries
// are allocated and complete. It doubles as the PerfectView.
type Table struct {
	io      []int
	cpu     []int
	cpuWork []float64
	ioWork  []float64
}

var (
	_ View     = (*Table)(nil)
	_ WorkView = (*Table)(nil)
)

// NewTable returns a table covering numSites sites, all idle.
func NewTable(numSites int) *Table {
	if numSites <= 0 {
		panic("loadinfo: need at least one site")
	}
	return &Table{
		io:      make([]int, numSites),
		cpu:     make([]int, numSites),
		cpuWork: make([]float64, numSites),
		ioWork:  make([]float64, numSites),
	}
}

// NumSites returns the number of sites tracked.
func (t *Table) NumSites() int { return len(t.io) }

// Assign records that a query of the given bound was allocated to site.
// A query counts from its allocation instant (including transit) until
// Complete is called, per the commitment semantics in DESIGN.md.
func (t *Table) Assign(site int, b workload.Bound) {
	switch b {
	case workload.IOBound:
		t.io[site]++
	case workload.CPUBound:
		t.cpu[site]++
	default:
		panic(fmt.Sprintf("loadinfo: invalid bound %d", b))
	}
}

// Complete records that a query of the given bound finished at site.
func (t *Table) Complete(site int, b workload.Bound) {
	switch b {
	case workload.IOBound:
		t.io[site]--
	case workload.CPUBound:
		t.cpu[site]--
	default:
		panic(fmt.Sprintf("loadinfo: invalid bound %d", b))
	}
	if t.io[site] < 0 || t.cpu[site] < 0 {
		panic("loadinfo: completion without matching assignment")
	}
}

// AssignWork records the estimated demands of a query allocated to site.
// Call it alongside Assign; CompleteWork must receive the same values.
func (t *Table) AssignWork(site int, cpu, io float64) {
	t.cpuWork[site] += cpu
	t.ioWork[site] += io
}

// CompleteWork removes a completed (or migrated-away) query's estimated
// demands from site.
func (t *Table) CompleteWork(site int, cpu, io float64) {
	t.cpuWork[site] -= cpu
	t.ioWork[site] -= io
	if t.cpuWork[site] < -1e-6 || t.ioWork[site] < -1e-6 {
		panic("loadinfo: work completion without matching assignment")
	}
}

// CPUWork returns the site's outstanding estimated CPU demand.
func (t *Table) CPUWork(site int) float64 { return t.cpuWork[site] }

// IOWork returns the site's outstanding estimated disk demand.
func (t *Table) IOWork(site int) float64 { return t.ioWork[site] }

// NumQueries returns the live query count at site.
func (t *Table) NumQueries(site int) int { return t.io[site] + t.cpu[site] }

// NumIOQueries returns the live I/O-bound count at site.
func (t *Table) NumIOQueries(site int) int { return t.io[site] }

// NumCPUQueries returns the live CPU-bound count at site.
func (t *Table) NumCPUQueries(site int) int { return t.cpu[site] }

// Total returns the number of queries allocated across all sites.
func (t *Table) Total() int {
	total := 0
	for i := range t.io {
		total += t.io[i] + t.cpu[i]
	}
	return total
}

// Broadcaster periodically snapshots a Table, exposing the most recent
// snapshot as the View. This models sites exchanging load status messages
// every Period time units: between broadcasts the allocators work with
// stale counts. Period zero or negative is rejected — use the Table
// directly for perfect information.
type Broadcaster struct {
	table  *Table
	period float64
	sched  *sim.Scheduler

	io      []int
	cpu     []int
	cpuWork []float64
	ioWork  []float64
	// updated is the simulation time each site's entry was last applied,
	// so consumers (and tests) can observe staleness directly instead of
	// inferring it from value changes.
	updated []float64
	next    sim.Handle
	// tickFn is the recurring snapshot action, bound once at
	// construction so each round schedules the next without allocating
	// a method-value closure.
	tickFn  sim.Action
	stopped bool

	// perturb, when non-nil, decides the fate of each site's entry in a
	// broadcast round (fault-injection extension): a dropped entry keeps
	// its previous — now doubly stale — value, and a delayed entry is
	// applied only after the extra latency elapses.
	perturb Perturb
}

// Perturb decides the fate of one site's status message in a broadcast
// round: drop loses the update entirely, a positive delay defers its
// application. Implementations are consulted once per site per round,
// in site order, keeping runs deterministic.
type Perturb func(site int) (drop bool, delay float64)

var (
	_ View     = (*Broadcaster)(nil)
	_ WorkView = (*Broadcaster)(nil)
)

// NewBroadcaster starts periodic snapshots of table every period time
// units, beginning with an immediate snapshot. Call Stop to cancel the
// recurring event (e.g. at the end of the measurement horizon).
func NewBroadcaster(sched *sim.Scheduler, table *Table, period float64) (*Broadcaster, error) {
	if period <= 0 {
		return nil, fmt.Errorf("loadinfo: broadcast period %v must be positive", period)
	}
	b := &Broadcaster{
		table:   table,
		period:  period,
		sched:   sched,
		io:      make([]int, table.NumSites()),
		cpu:     make([]int, table.NumSites()),
		cpuWork: make([]float64, table.NumSites()),
		ioWork:  make([]float64, table.NumSites()),
		updated: make([]float64, table.NumSites()),
	}
	b.tickFn = b.tick
	b.snapshot()
	b.next = sched.After(period, b.tickFn)
	b.next.SetKind(eventKindBroadcast)
	return b, nil
}

// Event kinds tagged onto this package's scheduler events for the trace
// digest (see sim.Event.Kind).
const (
	// eventKindBroadcast tags snapshot ticks.
	eventKindBroadcast byte = 0x31
	// eventKindDelayedInfo tags the deferred application of one site's
	// delayed status message (lossy-broadcast extension).
	eventKindDelayedInfo byte = 0x32
)

// Period returns the broadcast interval.
func (b *Broadcaster) Period() float64 { return b.period }

// SetPerturb installs a per-entry fault model for subsequent broadcast
// rounds (the initial snapshot taken at construction is always clean).
// Pass nil to restore loss-free instantaneous snapshots.
func (b *Broadcaster) SetPerturb(fn Perturb) { b.perturb = fn }

// Stop cancels future snapshots. The last snapshot remains readable.
// Stop is idempotent: calling it twice, or after the scheduler has
// drained the pending tick, is a no-op — it never cancels an event it
// does not own.
func (b *Broadcaster) Stop() {
	b.stopped = true
	b.sched.Cancel(b.next)
	b.next = sim.Handle{}
}

// NumQueries returns the site's query count as of the last broadcast.
func (b *Broadcaster) NumQueries(site int) int { return b.io[site] + b.cpu[site] }

// NumIOQueries returns the site's I/O-bound count as of the last broadcast.
func (b *Broadcaster) NumIOQueries(site int) int { return b.io[site] }

// NumCPUQueries returns the site's CPU-bound count as of the last broadcast.
func (b *Broadcaster) NumCPUQueries(site int) int { return b.cpu[site] }

// CPUWork returns the site's estimated CPU work as of the last broadcast.
func (b *Broadcaster) CPUWork(site int) float64 { return b.cpuWork[site] }

// IOWork returns the site's estimated disk work as of the last broadcast.
func (b *Broadcaster) IOWork(site int) float64 { return b.ioWork[site] }

// LastUpdate returns the simulation time site's entry was last applied
// (the initial construction snapshot counts). An entry whose age
// exceeds the broadcast period has been dropped or delayed at least
// once; age beyond K periods means K consecutive losses.
func (b *Broadcaster) LastUpdate(site int) float64 { return b.updated[site] }

// Age returns how stale site's entry is at the current simulation time.
func (b *Broadcaster) Age(site int) float64 { return b.sched.Now() - b.updated[site] }

func (b *Broadcaster) snapshot() {
	copy(b.io, b.table.io)
	copy(b.cpu, b.table.cpu)
	copy(b.cpuWork, b.table.cpuWork)
	copy(b.ioWork, b.table.ioWork)
	now := b.sched.Now()
	for i := range b.updated {
		b.updated[i] = now
	}
}

// broadcastOnce refreshes the snapshot, consulting the perturbation
// model entry by entry when one is installed.
func (b *Broadcaster) broadcastOnce() {
	if b.perturb == nil {
		b.snapshot()
		return
	}
	for s := 0; s < b.table.NumSites(); s++ {
		drop, delay := b.perturb(s)
		if drop {
			continue // the previous value stays visible
		}
		if delay <= 0 {
			b.apply(s, b.table.io[s], b.table.cpu[s], b.table.cpuWork[s], b.table.ioWork[s])
			continue
		}
		io, cpu := b.table.io[s], b.table.cpu[s]
		cw, iw := b.table.cpuWork[s], b.table.ioWork[s]
		ev := b.sched.After(delay, func() { b.apply(s, io, cpu, cw, iw) })
		ev.SetKind(eventKindDelayedInfo)
	}
}

// apply installs one site's (possibly delayed) status message.
func (b *Broadcaster) apply(site, io, cpu int, cpuWork, ioWork float64) {
	b.io[site] = io
	b.cpu[site] = cpu
	b.cpuWork[site] = cpuWork
	b.ioWork[site] = ioWork
	b.updated[site] = b.sched.Now()
}

func (b *Broadcaster) tick() {
	if b.stopped {
		return
	}
	b.broadcastOnce()
	b.next = b.sched.After(b.period, b.tickFn)
	b.next.SetKind(eventKindBroadcast)
}
