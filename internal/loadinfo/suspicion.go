package loadinfo

import (
	"fmt"
	"math"
	"sort"
)

// This file is the gray-failure detector of the fail-slow extension: a
// per-site slowdown score fed by completed queries, compared against the
// population median so that a site running much slower than its peers —
// while still up and still broadcasting load reports — is marked suspect.
// Policies read the mask through policy.Env and route around suspects;
// the mask clears with hysteresis once the site recovers.

// SuspectConfig parameterizes the gray-failure suspicion scorer. The zero
// value (Enabled == false) disables it.
type SuspectConfig struct {
	// Enabled turns suspicion scoring on.
	Enabled bool
	// Alpha is the EWMA weight given to each new slowdown sample
	// (0 < Alpha <= 1). Larger reacts faster but is noisier.
	Alpha float64
	// Ratio marks a site suspect when its slowdown EWMA exceeds Ratio ×
	// the population median. Must exceed Clear.
	Ratio float64
	// Clear releases a suspect site once its EWMA falls back below
	// Clear × the population median (hysteresis). Must be >= 1.
	Clear float64
	// MinSamples is the number of completions a site must contribute
	// before it can be marked suspect, so one slow query during warmup
	// does not condemn a healthy site.
	MinSamples int
	// Probation bounds how long a suspect verdict may stand without
	// fresh evidence: after Probation time units the site is released
	// with its score reseeded to the population median, so probe
	// traffic re-decides it. Without this, routing around a suspect
	// site starves it of samples and the verdict freezes forever —
	// even after the gray failure heals.
	Probation float64
	// Penalty is the cost surcharge (in the policies' response-time cost
	// units) added to a suspect site's score, steering cost-based
	// policies away without forbidding the site outright.
	Penalty float64
}

// DefaultSuspect returns a moderate detector: EWMA weight 0.5 (about two
// clearly-degraded completions to condemn — samples from a gray site are
// rationed by its own slowness, so a sluggish EWMA pays for its smoothing
// in detection lag), suspect at 3× the population median slowdown, clear
// at 1.5×, after 8 samples, with a surcharge of 1000 cost units.
func DefaultSuspect() SuspectConfig {
	return SuspectConfig{
		Enabled:    true,
		Alpha:      0.5,
		Ratio:      3,
		Clear:      1.5,
		MinSamples: 8,
		Probation:  500,
		Penalty:    1000,
	}
}

// Validate reports the first configuration error, if any.
func (c SuspectConfig) Validate() error {
	if !c.Enabled {
		return nil
	}
	switch {
	case math.IsNaN(c.Alpha) || c.Alpha <= 0 || c.Alpha > 1:
		return fmt.Errorf("loadinfo: suspect Alpha %v outside (0,1]", c.Alpha)
	case math.IsNaN(c.Ratio) || c.Ratio <= 1 || math.IsInf(c.Ratio, 0):
		return fmt.Errorf("loadinfo: suspect Ratio %v must be finite and > 1", c.Ratio)
	case math.IsNaN(c.Clear) || c.Clear < 1 || c.Clear >= c.Ratio:
		return fmt.Errorf("loadinfo: suspect Clear %v outside [1, Ratio)", c.Clear)
	case c.MinSamples < 1:
		return fmt.Errorf("loadinfo: suspect MinSamples %d < 1", c.MinSamples)
	case math.IsNaN(c.Probation) || math.IsInf(c.Probation, 0) || c.Probation <= 0:
		return fmt.Errorf("loadinfo: suspect Probation %v must be positive and finite", c.Probation)
	case math.IsNaN(c.Penalty) || math.IsInf(c.Penalty, 0) || c.Penalty < 0:
		return fmt.Errorf("loadinfo: suspect Penalty %v must be finite and non-negative", c.Penalty)
	}
	return nil
}

// Suspicion tracks a slowdown EWMA per site and maintains the suspect
// mask. Observe feeds it one sample per completed query: the ratio of
// the query's wall response time at its execution site to its nominal
// sampled service demand, which is ≈ 1 + queueing on a healthy site and
// ≈ the degradation factor + queueing on a fail-slow one.
type Suspicion struct {
	cfg      SuspectConfig
	ewma     []float64
	count    []int
	suspect  []bool
	markedAt []float64 // verdict instant, valid while suspect
	scratch  []float64
}

// NewSuspicion returns a detector over numSites sites with everything
// clean. The config must be enabled and valid.
func NewSuspicion(numSites int, cfg SuspectConfig) (*Suspicion, error) {
	if !cfg.Enabled {
		return nil, fmt.Errorf("loadinfo: suspicion scorer built from disabled config")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if numSites < 1 {
		return nil, fmt.Errorf("loadinfo: suspicion needs at least one site")
	}
	return &Suspicion{
		cfg:      cfg,
		ewma:     make([]float64, numSites),
		count:    make([]int, numSites),
		suspect:  make([]bool, numSites),
		markedAt: make([]float64, numSites),
		scratch:  make([]float64, 0, numSites),
	}, nil
}

// Mask returns the live suspect mask. Observe updates it in place, so a
// consumer (policy.Env) holding the slice always sees the current
// verdicts without re-fetching.
func (u *Suspicion) Mask() []bool { return u.suspect }

// Suspected reports whether site is currently suspect.
func (u *Suspicion) Suspected(site int) bool { return u.suspect[site] }

// Penalty returns the cost surcharge for site: cfg.Penalty while the
// site is suspect, zero otherwise.
func (u *Suspicion) Penalty(site int) float64 {
	if u.suspect[site] {
		return u.cfg.Penalty
	}
	return 0
}

// Score returns site's current slowdown EWMA (zero before any sample).
func (u *Suspicion) Score(site int) float64 { return u.ewma[site] }

// Samples returns how many slowdown samples site has contributed.
func (u *Suspicion) Samples(site int) int { return u.count[site] }

// Observe feeds one slowdown sample for site at simulation time now and
// refreshes the verdicts. Non-positive and non-finite samples are
// ignored (a zero-service query carries no signal).
func (u *Suspicion) Observe(site int, slowdown, now float64) {
	if math.IsNaN(slowdown) || math.IsInf(slowdown, 0) || slowdown <= 0 {
		return
	}
	if u.count[site] == 0 {
		u.ewma[site] = slowdown
	} else {
		u.ewma[site] += u.cfg.Alpha * (slowdown - u.ewma[site])
	}
	u.count[site]++
	u.refresh(now)
}

// refresh recomputes the population median over sites with at least one
// sample and re-derives every site's verdict with hysteresis, releasing
// suspects whose probation expired.
func (u *Suspicion) refresh(now float64) {
	u.scratch = u.scratch[:0]
	for s, n := range u.count {
		if n > 0 {
			u.scratch = append(u.scratch, u.ewma[s])
		}
	}
	if len(u.scratch) < 2 {
		return // no population to compare against
	}
	sort.Float64s(u.scratch)
	median := u.scratch[len(u.scratch)/2]
	if len(u.scratch)%2 == 0 {
		median = (median + u.scratch[len(u.scratch)/2-1]) / 2
	}
	if median <= 0 {
		return
	}
	for s := range u.suspect {
		if u.count[s] < u.cfg.MinSamples {
			continue
		}
		if u.suspect[s] {
			if now-u.markedAt[s] >= u.cfg.Probation {
				// Probation over: the verdict starved the site of samples,
				// so release it with a neutral score and let probe traffic
				// re-decide. A still-degraded site re-condemns itself in a
				// couple of samples; a healed one stays clean.
				u.suspect[s] = false
				u.ewma[s] = median
			} else if u.ewma[s] < u.cfg.Clear*median {
				u.suspect[s] = false
			}
		} else if u.ewma[s] > u.cfg.Ratio*median {
			u.suspect[s] = true
			u.markedAt[s] = now
		}
	}
}

// SuspectCount returns the number of currently suspect sites.
func (u *Suspicion) SuspectCount() int {
	n := 0
	for _, v := range u.suspect {
		if v {
			n++
		}
	}
	return n
}
