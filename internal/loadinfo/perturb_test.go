package loadinfo

import (
	"testing"

	"dqalloc/internal/sim"
	"dqalloc/internal/workload"
)

func TestPerturbDropKeepsStaleValue(t *testing.T) {
	s := sim.New()
	tb := NewTable(2)
	b, err := NewBroadcaster(s, tb, 10)
	if err != nil {
		t.Fatal(err)
	}
	b.SetPerturb(func(site int) (bool, float64) { return site == 0, 0 })
	s.At(5, func() {
		tb.Assign(0, workload.IOBound)
		tb.Assign(1, workload.CPUBound)
	})
	s.RunUntil(15) // one perturbed broadcast at t=10
	if got := b.NumQueries(0); got != 0 {
		t.Errorf("dropped entry updated: site 0 shows %d, want stale 0", got)
	}
	if got := b.NumQueries(1); got != 1 {
		t.Errorf("clean entry not updated: site 1 shows %d, want 1", got)
	}
}

func TestPerturbDelayDefersApplication(t *testing.T) {
	s := sim.New()
	tb := NewTable(1)
	b, err := NewBroadcaster(s, tb, 10)
	if err != nil {
		t.Fatal(err)
	}
	b.SetPerturb(func(int) (bool, float64) { return false, 4 })
	s.At(5, func() { tb.Assign(0, workload.IOBound) })
	s.RunUntil(12) // broadcast at 10, application due at 14
	if got := b.NumQueries(0); got != 0 {
		t.Errorf("delayed entry applied early: %d", got)
	}
	s.RunUntil(15)
	if got := b.NumQueries(0); got != 1 {
		t.Errorf("delayed entry not applied: %d, want 1", got)
	}
}

// TestPerturbDelayedValueIsSnapshot: a delayed status message carries
// the table values of its broadcast instant, not of its arrival.
func TestPerturbDelayedValueIsSnapshot(t *testing.T) {
	s := sim.New()
	tb := NewTable(1)
	b, err := NewBroadcaster(s, tb, 10)
	if err != nil {
		t.Fatal(err)
	}
	b.SetPerturb(func(int) (bool, float64) { return false, 5 })
	s.At(2, func() { tb.Assign(0, workload.IOBound) })
	s.At(12, func() { tb.Assign(0, workload.IOBound) }) // after the t=10 snapshot
	s.RunUntil(16)                                      // delayed message lands at 15
	if got := b.NumQueries(0); got != 1 {
		t.Errorf("delayed message shows %d, want the broadcast-time value 1", got)
	}
}

// TestStopIsIdempotent is the double-Stop regression: a second Stop
// (or one arriving after the pending tick already fired) must not
// cancel an event the broadcaster no longer owns.
func TestStopIsIdempotent(t *testing.T) {
	s := sim.New()
	tb := NewTable(1)
	b, err := NewBroadcaster(s, tb, 10)
	if err != nil {
		t.Fatal(err)
	}
	b.Stop()
	b.Stop() // second call must be a no-op
	// A foreign event scheduled after the stop must survive and fire.
	fired := false
	s.After(10, func() { fired = true })
	b.Stop()
	s.Run()
	if !fired {
		t.Error("Stop cancelled an event it did not own")
	}
}

// TestStopHaltsTicks: after Stop no further snapshots are taken, even
// if a tick was somehow in flight.
func TestStopHaltsTicks(t *testing.T) {
	s := sim.New()
	tb := NewTable(1)
	b, err := NewBroadcaster(s, tb, 10)
	if err != nil {
		t.Fatal(err)
	}
	s.At(5, func() { b.Stop() })
	s.At(6, func() { tb.Assign(0, workload.IOBound) })
	s.RunUntil(50)
	if got := b.NumQueries(0); got != 0 {
		t.Errorf("stopped broadcaster refreshed its snapshot: %d", got)
	}
}
