package report

import "dqalloc/internal/exper"

// ReplicationTable renders the partial-replication sweep.
func ReplicationTable(rows []exper.ReplicationRow) *Table {
	t := &Table{
		Title:   "Extension: copies per object (partial replication, future work 6.2)",
		Columns: []string{"copies", "W_static", "W_LERT", "LERT%", "subnet", "remote"},
	}
	for _, r := range rows {
		t.AddRow(I(r.Copies), F(r.WStatic, 2), F(r.WLERT, 2), Pct(r.Impr),
			F(r.SubnetLERT, 3), F(r.RemoteLERT, 3))
	}
	return t
}

// MigrationTable renders the migration ablation.
func MigrationTable(rows []exper.MigrationRow) *Table {
	t := &Table{
		Title:   "Extension: mid-execution migration (future work 6.2)",
		Columns: []string{"policy", "W_plain", "W_migration", "impr%", "migs/query"},
	}
	for _, r := range rows {
		t.AddRow(r.Policy, F(r.WPlain, 2), F(r.WMigration, 2), Pct(r.Impr), F(r.MigrationsPer, 3))
	}
	return t
}

// StalenessTable renders the load-information staleness sweep.
func StalenessTable(rows []exper.StalenessRow) *Table {
	t := &Table{
		Title:   "Extension: load-information staleness (Section 4.4)",
		Columns: []string{"period", "W_BNQ", "W_LERT"},
	}
	for _, r := range rows {
		label := "perfect"
		if r.Period > 0 {
			label = F(r.Period, 0)
		}
		t.AddRow(label, F(r.WBNQ, 2), F(r.WLERT, 2))
	}
	return t
}

// ProbeTable renders the limited-information probe sweep.
func ProbeTable(rows []exper.ProbeRow) *Table {
	t := &Table{
		Title:   "Extension: probe-based allocation (limited information)",
		Columns: []string{"probes", "W_probeBNQ", "W_probeLERT", "W_threshold"},
	}
	for _, r := range rows {
		t.AddRow(I(r.Probes), F(r.WProbeBNQ, 2), F(r.WProbeRT, 2), F(r.WThresh, 2))
	}
	return t
}

// HeterogeneityTable renders the hardware-profile comparison.
func HeterogeneityTable(rows []exper.HeterogeneityRow) *Table {
	t := &Table{
		Title:   "Extension: heterogeneous CPU speeds",
		Columns: []string{"profile", "W_LOCAL", "W_BNQ", "W_LERT", "LERT-vs-BNQ%"},
	}
	for _, r := range rows {
		t.AddRow(r.Profile, F(r.WLocal, 2), F(r.WBNQ, 2), F(r.WLERT, 2), Pct(r.LERTEdge))
	}
	return t
}
