package report

import (
	"fmt"

	"dqalloc/internal/exper"
)

// FactorGrid renders a Table 5/6-style WIF or FIF grid.
func FactorGrid(title string, rows []exper.FactorRow) *Table {
	t := &Table{Title: title}
	t.Columns = []string{"cpu1/cpu2"}
	if len(rows) > 0 {
		for _, c := range rows[0].Cells {
			t.Columns = append(t.Columns, fmt.Sprintf("L%d,i=%d", c.LoadIndex+1, c.Class+1))
		}
	}
	for _, row := range rows {
		cells := []string{row.Ratio.Label()}
		for _, c := range row.Cells {
			cells = append(cells, F(c.Value, 2))
		}
		t.AddRow(cells...)
	}
	return t
}

// ImprovementTable renders Table 8 or Table 9.
func ImprovementTable(title, xName string, rows []exper.ImprovementRow) *Table {
	t := &Table{
		Title: title,
		Columns: []string{
			xName, "rho_c", "W_LOCAL",
			"BNQ%", "BNQRD%", "LERT%", // vs LOCAL
			"BNQRD/BNQ%", "LERT/BNQ%",
		},
	}
	for _, r := range rows {
		t.AddRow(
			F(r.X, 0), F(r.RhoC, 2), F(r.WLocal, 2),
			Pct(r.VsLocal[0]), Pct(r.VsLocal[1]), Pct(r.VsLocal[2]),
			Pct(r.VsBNQ[0]), Pct(r.VsBNQ[1]),
		)
	}
	return t
}

// MsgLengthTable renders the msg_length variant rows.
func MsgLengthTable(rows []exper.MsgLengthRow) *Table {
	t := &Table{
		Title:   "msg_length variant (think_time = 350): improvements over BNQ",
		Columns: []string{"msg_length", "W_BNQ", "W_LERT", "BNQRD/BNQ%", "LERT/BNQ%"},
	}
	for _, r := range rows {
		t.AddRow(F(r.MsgLength, 1), F(r.WBNQ, 2), F(r.WLERT, 2), Pct(r.VsBNQRD), Pct(r.VsLERT))
	}
	return t
}

// CapacityTable renders Table 10.
func CapacityTable(rows []exper.CapacityRow) *Table {
	t := &Table{
		Title:   "Table 10: Maximum mpl versus response time",
		Columns: []string{"resp<=", "LOCAL", "LERT"},
	}
	for _, r := range rows {
		t.AddRow(F(r.Target, 1), I(r.MaxLocal), I(r.MaxLERT))
	}
	return t
}

// SitesTable renders Table 11.
func SitesTable(rows []exper.SitesRow) *Table {
	t := &Table{
		Title:   "Table 11: Waiting time and subnet utilization versus number of sites",
		Columns: []string{"num_sites", "W_LOCAL", "BNQ%", "LERT%", "subnet_BNQ%", "subnet_LERT%"},
	}
	for _, r := range rows {
		t.AddRow(I(r.NumSites), F(r.WLocal, 2), Pct(r.ImprBNQ), Pct(r.ImprLERT),
			Pct(r.SubnetBNQ), Pct(r.SubnetLERT))
	}
	return t
}

// FairnessTable renders Table 12.
func FairnessTable(rows []exper.FairnessRow) *Table {
	t := &Table{
		Title: "Table 12: W and F versus class_io_prob",
		Columns: []string{
			"p_io", "rho_d/rho_c", "W_LOCAL", "BNQ%", "LERT%",
			"F_LOCAL", "F_impr_BNQ%", "F_impr_LERT%",
		},
	}
	for _, r := range rows {
		t.AddRow(F(r.ClassIOProb, 1), F(r.UtilRatio, 2), F(r.WLocal, 2),
			Pct(r.ImprBNQ), Pct(r.ImprLERT),
			F(r.FLocal, 3), Pct(r.FImprBNQ), Pct(r.FImprLERT))
	}
	return t
}
