// Package report renders experiment results as aligned text tables (the
// same rows the paper prints) and as CSV for downstream plotting.
package report

import (
	"fmt"
	"strconv"
	"strings"
)

// Table is a titled grid of string cells with a header row.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends one row. The cell count should match the header.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(cell)
			}
			b.WriteString(strings.Repeat(" ", pad))
			b.WriteString(cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := len(widths) - 1
	if total < 0 {
		total = 0
	}
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header included,
// cells quoted only when needed).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteString(strconv.Quote(cell))
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// F formats a float with the given number of decimals.
func F(v float64, decimals int) string {
	return strconv.FormatFloat(v, 'f', decimals, 64)
}

// Pct formats a percentage with two decimals, as the paper prints
// improvement columns.
func Pct(v float64) string { return F(v, 2) }

// I formats an integer cell.
func I(v int) string { return strconv.Itoa(v) }

// Cell formats an arbitrary value.
func Cell(v any) string { return fmt.Sprint(v) }
