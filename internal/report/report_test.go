package report

import (
	"strings"
	"testing"

	"dqalloc/internal/exper"
	"dqalloc/internal/optimal"
)

func TestTableString(t *testing.T) {
	tb := &Table{Title: "demo", Columns: []string{"a", "long-col"}}
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	out := tb.String()
	if !strings.HasPrefix(out, "demo\n") {
		t.Errorf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), out)
	}
	// All data lines share the same width.
	if len(lines[1]) != len(lines[3]) || len(lines[3]) != len(lines[4]) {
		t.Errorf("misaligned rows:\n%s", out)
	}
	if !strings.Contains(lines[4], "333") {
		t.Errorf("row content lost:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Columns: []string{"x", "note"}}
	tb.AddRow("1", `has,comma`)
	tb.AddRow("2", "plain")
	csv := tb.CSV()
	want := "x,note\n1,\"has,comma\"\n2,plain\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestFormatters(t *testing.T) {
	if F(3.14159, 2) != "3.14" {
		t.Errorf("F = %q", F(3.14159, 2))
	}
	if Pct(12.345) != "12.35" {
		t.Errorf("Pct = %q", Pct(12.345))
	}
	if I(42) != "42" {
		t.Errorf("I = %q", I(42))
	}
	if Cell(7) != "7" {
		t.Errorf("Cell = %q", Cell(7))
	}
}

func TestFactorGridShape(t *testing.T) {
	rows := []exper.FactorRow{{
		Ratio: optimal.CPURatio{CPU1: 0.05, CPU2: 0.5},
		Cells: []exper.FactorCell{
			{LoadIndex: 0, Class: 0, Value: 0.14},
			{LoadIndex: 0, Class: 1, Value: 0.01},
		},
	}}
	tb := FactorGrid("Table 5", rows)
	if len(tb.Columns) != 3 {
		t.Fatalf("columns = %v", tb.Columns)
	}
	if tb.Columns[1] != "L1,i=1" || tb.Columns[2] != "L1,i=2" {
		t.Errorf("column labels = %v", tb.Columns)
	}
	if tb.Rows[0][0] != ".05/0.5" || tb.Rows[0][1] != "0.14" {
		t.Errorf("row = %v", tb.Rows[0])
	}
}

func TestImprovementTable(t *testing.T) {
	rows := []exper.ImprovementRow{{
		X: 350, RhoC: 0.53, WLocal: 22.71,
		VsLocal: [3]float64{38.53, 41.96, 43.54},
		VsBNQ:   [2]float64{5.57, 9.58},
	}}
	tb := ImprovementTable("Table 8", "think_time", rows)
	if len(tb.Rows) != 1 || len(tb.Rows[0]) != len(tb.Columns) {
		t.Fatalf("shape mismatch: %v vs %v", tb.Rows, tb.Columns)
	}
	out := tb.String()
	for _, want := range []string{"350", "22.71", "38.53", "9.58"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestRemainingRenderers(t *testing.T) {
	msg := MsgLengthTable([]exper.MsgLengthRow{{MsgLength: 2, WBNQ: 16, WLERT: 15, VsBNQRD: 10, VsLERT: 2}})
	if len(msg.Rows) != 1 || len(msg.Rows[0]) != len(msg.Columns) {
		t.Error("MsgLengthTable shape mismatch")
	}
	capT := CapacityTable([]exper.CapacityRow{{Target: 40, MaxLocal: 10, MaxLERT: 17}})
	if !strings.Contains(capT.String(), "17") {
		t.Error("CapacityTable missing data")
	}
	sites := SitesTable([]exper.SitesRow{{NumSites: 6, WLocal: 21.5, ImprBNQ: 34, ImprLERT: 39, SubnetBNQ: 37, SubnetLERT: 36}})
	if len(sites.Rows[0]) != len(sites.Columns) {
		t.Error("SitesTable shape mismatch")
	}
	fair := FairnessTable([]exper.FairnessRow{{ClassIOProb: 0.3, UtilRatio: 0.7, WLocal: 33, ImprBNQ: 33.9, ImprLERT: 37.6, FLocal: -0.377, FImprBNQ: 76.7, FImprLERT: 73.7}})
	if !strings.Contains(fair.String(), "-0.377") {
		t.Error("FairnessTable missing fairness value")
	}
}

func TestEmptyTable(t *testing.T) {
	tb := &Table{Columns: []string{"only"}}
	out := tb.String()
	if !strings.Contains(out, "only") {
		t.Errorf("empty table render = %q", out)
	}
	if tb.CSV() != "only\n" {
		t.Errorf("empty CSV = %q", tb.CSV())
	}
}
