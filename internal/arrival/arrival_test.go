package arrival

import (
	"math"
	"testing"

	"dqalloc/internal/rng"
	"dqalloc/internal/sim"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"disabled zero value", Config{}, true},
		{"poisson", DefaultPoisson(0.4), true},
		{"mmpp", DefaultMMPP(0.4), true},
		{"bad process", Config{Enabled: true, Process: 9, Rate: 1}, false},
		{"zero rate", Config{Enabled: true, Process: Poisson, Rate: 0}, false},
		{"negative rate", Config{Enabled: true, Process: Poisson, Rate: -1}, false},
		{"inf rate", Config{Enabled: true, Process: Poisson, Rate: math.Inf(1)}, false},
		{"nan rate", Config{Enabled: true, Process: Poisson, Rate: math.NaN()}, false},
		{"burst factor below one", Config{Enabled: true, Process: MMPP, Rate: 1, BurstFactor: 0.5}, false},
		{"negative calm dwell", Config{Enabled: true, Process: MMPP, Rate: 1, BurstFactor: 2, CalmMean: -1}, false},
		{"negative burst dwell", Config{Enabled: true, Process: MMPP, Rate: 1, BurstFactor: 2, BurstMean: -1}, false},
		{"mmpp factor one", Config{Enabled: true, Process: MMPP, Rate: 1, BurstFactor: 1}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatalf("config %+v validated", tc.cfg)
			}
		})
	}
}

// runSource drives one source for the given horizon and returns its
// arrival count and the arrival time sequence.
func runSource(t *testing.T, cfg Config, rate float64, seed uint64, horizon float64) (uint64, []float64) {
	t.Helper()
	sched := sim.New()
	var times []float64
	src, err := NewSource(sched, cfg, rate, 4, rng.NewStream(seed), func(home int) {
		if home < 0 || home >= 4 {
			t.Fatalf("home %d out of range", home)
		}
		times = append(times, sched.Now())
	})
	if err != nil {
		t.Fatal(err)
	}
	src.Start()
	sched.RunUntil(horizon)
	if src.Arrivals() != uint64(len(times)) {
		t.Fatalf("source counted %d arrivals, emitted %d", src.Arrivals(), len(times))
	}
	return src.Arrivals(), times
}

// TestLongRunRate checks that both processes realize their configured
// long-run mean rate: the MMPP calm/burst intensities are solved so the
// cycle-weighted mean equals Rate.
func TestLongRunRate(t *testing.T) {
	const rate, horizon = 0.5, 200_000.0
	for _, cfg := range []Config{DefaultPoisson(rate), DefaultMMPP(rate)} {
		n, _ := runSource(t, cfg, rate, 11, horizon)
		got := float64(n) / horizon
		if math.Abs(got-rate)/rate > 0.05 {
			t.Errorf("%s: realized rate %.4f, want %.2f ± 5%%", cfg.Process, got, rate)
		}
	}
}

// TestMMPPBurstier verifies that the burst phase actually concentrates
// arrivals: the dispersion (variance/mean of per-window counts) of an
// MMPP with 8× bursts must exceed the Poisson dispersion of 1.
func TestMMPPBurstier(t *testing.T) {
	cfg := DefaultMMPP(0.5)
	cfg.BurstFactor = 8
	_, times := runSource(t, cfg, 0.5, 5, 100_000)
	const window = 50.0
	counts := make(map[int]float64)
	for _, at := range times {
		counts[int(at/window)]++
	}
	nw := int(100_000 / window)
	var mean, m2 float64
	for i := 0; i < nw; i++ {
		mean += counts[i]
	}
	mean /= float64(nw)
	for i := 0; i < nw; i++ {
		d := counts[i] - mean
		m2 += d * d
	}
	dispersion := m2 / float64(nw) / mean
	if dispersion < 1.5 {
		t.Fatalf("MMPP dispersion %.2f not over-dispersed vs Poisson (1.0)", dispersion)
	}
}

// TestDeterminism: two same-seed sources emit identical arrival-time
// sequences, including across MMPP phase switches.
func TestDeterminism(t *testing.T) {
	for _, cfg := range []Config{DefaultPoisson(0.3), DefaultMMPP(0.3)} {
		_, a := runSource(t, cfg, 0.3, 42, 20_000)
		_, b := runSource(t, cfg, 0.3, 42, 20_000)
		if len(a) != len(b) {
			t.Fatalf("%s: %d vs %d arrivals on the same seed", cfg.Process, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: arrival %d at %v vs %v", cfg.Process, i, a[i], b[i])
			}
		}
	}
}

func TestNewSourceErrors(t *testing.T) {
	sched := sim.New()
	stream := rng.NewStream(1)
	emit := func(int) {}
	ok := DefaultPoisson(1)
	if _, err := NewSource(sched, Config{}, 1, 1, stream, emit); err == nil {
		t.Error("disabled config accepted")
	}
	if _, err := NewSource(sched, ok, 0, 1, stream, emit); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewSource(sched, ok, 1, 0, stream, emit); err == nil {
		t.Error("zero homes accepted")
	}
	if _, err := NewSource(sched, ok, 1, 1, nil, emit); err == nil {
		t.Error("nil stream accepted")
	}
	if _, err := NewSource(sched, ok, 1, 1, stream, nil); err == nil {
		t.Error("nil emit accepted")
	}
}
