// Package arrival implements deterministic open-arrival sources for the
// overload-robustness extension: instead of the paper's closed terminal
// population (mpl terminals per site cycling think → submit → wait),
// queries arrive from outside the system according to a per-class
// stochastic process and leave on completion or rejection.
//
// Two processes are provided. Poisson is the textbook open workload:
// exponential interarrival times at a constant rate. MMPP is a 2-state
// Markov-modulated Poisson process alternating between a calm and a
// burst phase with exponential dwell times; its long-run mean rate
// equals the configured Rate while bursts carry BurstFactor times the
// calm intensity — the bursty regime Thomasian's survey singles out as
// the one closed models cannot produce.
//
// Every source owns a dedicated child RNG stream, so runs are
// deterministic and arrival randomness never perturbs the model's other
// streams. A state switch exploits the exponential distribution's
// memorylessness: the pending arrival is cancelled and a fresh
// interarrival is drawn at the new rate, which preserves both the
// process's distribution and the simulation's determinism.
package arrival

import (
	"fmt"
	"math"

	"dqalloc/internal/rng"
	"dqalloc/internal/sim"
)

// Event kinds tagged onto this package's scheduler events for the trace
// digest (see sim.Event.Kind).
const (
	// EventKindArrival marks one open arrival.
	EventKindArrival byte = 0x61
	// EventKindPhase marks an MMPP calm/burst phase switch.
	EventKindPhase byte = 0x62
)

// Process selects the arrival process.
type Process int

const (
	// Poisson arrivals have exponential interarrivals at a constant rate.
	Poisson Process = iota + 1
	// MMPP arrivals follow a 2-state Markov-modulated Poisson process
	// alternating between calm and burst phases.
	MMPP
)

// String returns the process name.
func (p Process) String() string {
	switch p {
	case Poisson:
		return "poisson"
	case MMPP:
		return "mmpp"
	default:
		return "unknown"
	}
}

// Default MMPP dwell times, in simulated time units: long calm phases
// punctuated by short bursts.
const (
	DefaultCalmMean  = 400.0
	DefaultBurstMean = 100.0
)

// Config parameterizes the open-arrival subsystem. The zero value
// (Enabled == false) keeps the paper's closed terminals.
type Config struct {
	// Enabled replaces the closed terminal population with open sources.
	Enabled bool
	// Process selects Poisson or MMPP arrivals.
	Process Process
	// Rate is the system-wide long-run mean arrival rate (queries per
	// time unit), split across classes by the workload's class
	// probabilities.
	Rate float64
	// BurstFactor is the ratio of burst-phase to calm-phase intensity
	// (MMPP only, ≥ 1; 1 degenerates to Poisson).
	BurstFactor float64
	// CalmMean and BurstMean are the mean dwell times of the two MMPP
	// phases; zero selects DefaultCalmMean/DefaultBurstMean.
	CalmMean  float64
	BurstMean float64
}

// Validate reports the first configuration error, if any.
func (c Config) Validate() error {
	if !c.Enabled {
		return nil
	}
	if c.Process != Poisson && c.Process != MMPP {
		return fmt.Errorf("arrival: invalid process %d", c.Process)
	}
	if math.IsNaN(c.Rate) || math.IsInf(c.Rate, 0) || c.Rate <= 0 {
		return fmt.Errorf("arrival: rate %v must be positive and finite", c.Rate)
	}
	if c.Process == MMPP {
		if math.IsNaN(c.BurstFactor) || math.IsInf(c.BurstFactor, 0) || c.BurstFactor < 1 {
			return fmt.Errorf("arrival: burst factor %v must be ≥ 1 and finite", c.BurstFactor)
		}
		if c.CalmMean < 0 || math.IsNaN(c.CalmMean) || math.IsInf(c.CalmMean, 0) {
			return fmt.Errorf("arrival: calm dwell mean %v must be non-negative and finite", c.CalmMean)
		}
		if c.BurstMean < 0 || math.IsNaN(c.BurstMean) || math.IsInf(c.BurstMean, 0) {
			return fmt.Errorf("arrival: burst dwell mean %v must be non-negative and finite", c.BurstMean)
		}
	}
	return nil
}

// DefaultPoisson returns an enabled Poisson configuration at the given
// system-wide rate.
func DefaultPoisson(rate float64) Config {
	return Config{Enabled: true, Process: Poisson, Rate: rate}
}

// DefaultMMPP returns an enabled MMPP configuration at the given
// long-run mean rate with 4× bursts and the default dwell times.
func DefaultMMPP(rate float64) Config {
	return Config{Enabled: true, Process: MMPP, Rate: rate, BurstFactor: 4,
		CalmMean: DefaultCalmMean, BurstMean: DefaultBurstMean}
}

// calmMean and burstMean apply the zero-means-default rule.
func (c Config) calmMean() float64 {
	if c.CalmMean > 0 {
		return c.CalmMean
	}
	return DefaultCalmMean
}

func (c Config) burstMean() float64 {
	if c.BurstMean > 0 {
		return c.BurstMean
	}
	return DefaultBurstMean
}

// Source is one class's open-arrival process. It draws interarrival
// times (and, for MMPP, phase dwell times and per-arrival home sites)
// from its own stream and calls emit once per arrival.
type Source struct {
	sched *sim.Scheduler
	strm  *rng.Stream
	proc  Process
	emit  func(home int)
	homes int

	calmRate  float64
	burstRate float64
	calmMean  float64
	burstMean float64

	burst    bool
	next     sim.Handle // pending arrival
	arriveFn sim.Action
	switchFn sim.Action
	arrivals uint64
}

// NewSource builds a source emitting arrivals at the given long-run mean
// rate (this source's share of Config.Rate), uniformly over homes home
// sites. emit is invoked from within the event loop, once per arrival.
func NewSource(sched *sim.Scheduler, cfg Config, rate float64, homes int, stream *rng.Stream, emit func(home int)) (*Source, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Enabled {
		return nil, fmt.Errorf("arrival: source from disabled config")
	}
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return nil, fmt.Errorf("arrival: source rate %v must be positive and finite", rate)
	}
	if homes < 1 {
		return nil, fmt.Errorf("arrival: %d home sites < 1", homes)
	}
	if stream == nil {
		return nil, fmt.Errorf("arrival: nil random stream")
	}
	if emit == nil {
		return nil, fmt.Errorf("arrival: nil emit callback")
	}
	s := &Source{
		sched:    sched,
		strm:     stream,
		proc:     cfg.Process,
		emit:     emit,
		homes:    homes,
		calmRate: rate,
	}
	if cfg.Process == MMPP {
		// Solve the long-run mean for the calm intensity: over one
		// calm+burst cycle the process spends Tc at λ_calm and Tb at
		// F·λ_calm, so mean = λ_calm·(Tc + F·Tb)/(Tc + Tb) = rate.
		tc, tb, f := cfg.calmMean(), cfg.burstMean(), cfg.BurstFactor
		s.calmMean, s.burstMean = tc, tb
		s.calmRate = rate * (tc + tb) / (tc + f*tb)
		s.burstRate = f * s.calmRate
	}
	s.arriveFn = s.arrive
	s.switchFn = s.switchPhase
	return s, nil
}

// Start schedules the first arrival (and, for MMPP, the first phase
// switch). Call once, before the scheduler runs.
func (s *Source) Start() {
	s.scheduleNext()
	if s.proc == MMPP {
		s.scheduleSwitch()
	}
}

// Arrivals returns the number of arrivals emitted so far.
func (s *Source) Arrivals() uint64 { return s.arrivals }

// Bursting reports whether an MMPP source is currently in its burst
// phase (always false for Poisson).
func (s *Source) Bursting() bool { return s.burst }

// rate returns the current phase's intensity.
func (s *Source) rate() float64 {
	if s.burst {
		return s.burstRate
	}
	return s.calmRate
}

func (s *Source) scheduleNext() {
	s.next = s.sched.After(s.strm.Exp(1/s.rate()), s.arriveFn)
	s.next.SetKind(EventKindArrival)
}

func (s *Source) scheduleSwitch() {
	mean := s.calmMean
	if s.burst {
		mean = s.burstMean
	}
	ev := s.sched.After(s.strm.Exp(mean), s.switchFn)
	ev.SetKind(EventKindPhase)
}

func (s *Source) arrive() {
	s.arrivals++
	home := s.strm.Intn(s.homes)
	s.scheduleNext()
	s.emit(home)
}

// switchPhase toggles calm↔burst. The pending arrival was drawn at the
// old intensity; by memorylessness of the exponential, cancelling it and
// drawing fresh at the new intensity leaves the process exact.
func (s *Source) switchPhase() {
	s.burst = !s.burst
	s.sched.Cancel(s.next)
	s.scheduleNext()
	s.scheduleSwitch()
}
