package noise

import (
	"math"
	"testing"

	"dqalloc/internal/rng"
	"dqalloc/internal/workload"
)

func mkQuery(class int) *workload.Query {
	return &workload.Query{Class: class, EstReads: 20, EstPageCPU: 0.05}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"disabled zero value", Config{}, true},
		{"default", Default(), true},
		{"zero sigmas", Config{Enabled: true, Dist: Lognormal}, true},
		{"uniform ok", Config{Enabled: true, Dist: Uniform, ReadsSigma: 0.5, CPUSigma: 0.99}, true},
		{"missing dist", Config{Enabled: true, ReadsSigma: 0.5}, false},
		{"negative reads sigma", Config{Enabled: true, Dist: Lognormal, ReadsSigma: -0.1}, false},
		{"negative cpu sigma", Config{Enabled: true, Dist: Lognormal, CPUSigma: -1}, false},
		{"nan sigma", Config{Enabled: true, Dist: Lognormal, ReadsSigma: math.NaN()}, false},
		{"infinite sigma", Config{Enabled: true, Dist: Lognormal, CPUSigma: math.Inf(1)}, false},
		{"uniform sigma at 1", Config{Enabled: true, Dist: Uniform, ReadsSigma: 1}, false},
		{"uniform sigma above 1", Config{Enabled: true, Dist: Uniform, CPUSigma: 1.5}, false},
	}
	for _, tc := range cases {
		if err := tc.cfg.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestInjectorRejectsBadInputs(t *testing.T) {
	st := rng.NewStream(1)
	if _, err := NewInjector(Config{}, 2, st); err == nil {
		t.Error("no error building an injector from a disabled config")
	}
	if _, err := NewInjector(Default(), 0, st); err == nil {
		t.Error("no error for zero classes")
	}
	if _, err := NewInjector(Default(), 2, nil); err == nil {
		t.Error("no error for nil stream")
	}
	bad := Default()
	bad.ReadsSigma = -1
	if _, err := NewInjector(bad, 2, st); err == nil {
		t.Error("no error for invalid config")
	}
}

func TestPerturbDeterministic(t *testing.T) {
	for _, dist := range []Dist{Lognormal, Uniform} {
		cfg := Config{Enabled: true, Dist: dist, ReadsSigma: 0.4, CPUSigma: 0.4}
		a, _ := NewInjector(cfg, 2, rng.NewStream(7))
		b, _ := NewInjector(cfg, 2, rng.NewStream(7))
		for i := 0; i < 100; i++ {
			qa, qb := mkQuery(i%2), mkQuery(i%2)
			a.Perturb(qa)
			b.Perturb(qb)
			if qa.EstReads != qb.EstReads || qa.EstPageCPU != qb.EstPageCPU {
				t.Fatalf("%v: same seed diverged at query %d: %v/%v vs %v/%v",
					dist, i, qa.EstReads, qa.EstPageCPU, qb.EstReads, qb.EstPageCPU)
			}
		}
	}
}

// TestZeroSigmaIsIdentity: σ = 0 must leave estimates bit-identical
// (factors exactly 1) while still consuming the class stream, so a
// zero-magnitude injector is a behavioral no-op.
func TestZeroSigmaIsIdentity(t *testing.T) {
	for _, dist := range []Dist{Lognormal, Uniform} {
		in, err := NewInjector(Config{Enabled: true, Dist: dist}, 2, rng.NewStream(3))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			q := mkQuery(i % 2)
			in.Perturb(q)
			if q.EstReads != 20 || q.EstPageCPU != 0.05 {
				t.Fatalf("%v: zero sigma changed estimates: %v / %v", dist, q.EstReads, q.EstPageCPU)
			}
		}
	}
}

// TestPerClassIndependence: perturbing class 0 queries must not shift
// class 1's noise sequence — each class owns its own child stream.
func TestPerClassIndependence(t *testing.T) {
	cfg := Default()
	a, _ := NewInjector(cfg, 2, rng.NewStream(11))
	b, _ := NewInjector(cfg, 2, rng.NewStream(11))
	// a interleaves class-0 perturbations; b does not.
	for i := 0; i < 20; i++ {
		a.Perturb(mkQuery(0))
	}
	qa, qb := mkQuery(1), mkQuery(1)
	a.Perturb(qa)
	b.Perturb(qb)
	if qa.EstReads != qb.EstReads || qa.EstPageCPU != qb.EstPageCPU {
		t.Errorf("class-0 draws shifted class 1: %v/%v vs %v/%v",
			qa.EstReads, qa.EstPageCPU, qb.EstReads, qb.EstPageCPU)
	}
}

// TestLognormalMeanPreserving: the σ²/2 shift must keep E[factor] ≈ 1,
// so noise widens the estimate distribution without biasing its level.
func TestLognormalMeanPreserving(t *testing.T) {
	cfg := Config{Enabled: true, Dist: Lognormal, ReadsSigma: 0.6, CPUSigma: 0.6}
	in, _ := NewInjector(cfg, 1, rng.NewStream(13))
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		q := mkQuery(0)
		in.Perturb(q)
		if q.EstReads <= 0 {
			t.Fatalf("non-positive estimate %v", q.EstReads)
		}
		sum += q.EstReads
	}
	mean := sum / n
	if math.Abs(mean-20) > 0.3 {
		t.Errorf("mean perturbed EstReads = %v, want ~20", mean)
	}
}

// TestUniformFactorsBounded: uniform errors must stay inside the
// configured band, keeping estimates positive.
func TestUniformFactorsBounded(t *testing.T) {
	cfg := Config{Enabled: true, Dist: Uniform, ReadsSigma: 0.3, CPUSigma: 0.3}
	in, _ := NewInjector(cfg, 1, rng.NewStream(17))
	for i := 0; i < 10000; i++ {
		q := mkQuery(0)
		in.Perturb(q)
		if q.EstReads < 20*0.7 || q.EstReads >= 20*1.3 {
			t.Fatalf("EstReads %v outside the ±30%% band", q.EstReads)
		}
		if q.EstPageCPU < 0.05*0.7 || q.EstPageCPU >= 0.05*1.3 {
			t.Fatalf("EstPageCPU %v outside the ±30%% band", q.EstPageCPU)
		}
	}
}

func TestDistString(t *testing.T) {
	if Lognormal.String() != "lognormal" || Uniform.String() != "uniform" || Dist(0).String() != "unknown" {
		t.Error("Dist.String mismatch")
	}
	if d, err := ParseDist("lognormal"); err != nil || d != Lognormal {
		t.Errorf("ParseDist(lognormal) = %v, %v", d, err)
	}
	if d, err := ParseDist("uniform"); err != nil || d != Uniform {
		t.Errorf("ParseDist(uniform) = %v, %v", d, err)
	}
	if _, err := ParseDist("gauss"); err == nil {
		t.Error("ParseDist accepted an unknown name")
	}
}
