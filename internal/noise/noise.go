// Package noise is the estimation-error injector: it perturbs the
// optimizer's per-query demand estimates so the allocation policies
// decide on imperfect information while execution consumes the true
// sampled demands.
//
// The paper's dynamic strategies assume the "query optimizer" of
// Section 1.2.2 predicts each query's CPU and I/O demands accurately;
// in the unperturbed model the estimates are exact class means (or the
// sampled actuals in the oracle ablation). Real optimizers err by
// large multiplicative factors, so this package draws a multiplicative
// error — mean-preserving lognormal, or uniform — for each submitted
// query's EstReads and EstPageCPU. Each class owns its own child rng
// stream and every perturbation consumes exactly two draws, so the
// noise sample path is a common-random-numbers block: changing one
// class's error magnitude never shifts another's sequence, and a
// disabled (or zero-magnitude) injector leaves every other stream and
// the event trace untouched.
package noise

import (
	"fmt"
	"math"

	"dqalloc/internal/rng"
	"dqalloc/internal/workload"
)

// Dist selects the multiplicative error distribution.
type Dist int

const (
	// Lognormal draws factor = exp(σZ − σ²/2), Z standard normal: the
	// classic model of optimizer cardinality error. The σ²/2 shift makes
	// the factor mean-preserving (E[factor] = 1) so noise changes the
	// spread of the estimates, not their average level.
	Lognormal Dist = iota + 1
	// Uniform draws factor ~ U(1−σ, 1+σ), a bounded error useful for
	// controlled sensitivity sweeps; σ must stay below 1 so factors
	// remain positive.
	Uniform
)

// String returns the distribution name.
func (d Dist) String() string {
	switch d {
	case Lognormal:
		return "lognormal"
	case Uniform:
		return "uniform"
	default:
		return "unknown"
	}
}

// ParseDist converts a flag value to a Dist.
func ParseDist(s string) (Dist, error) {
	switch s {
	case "lognormal":
		return Lognormal, nil
	case "uniform":
		return Uniform, nil
	default:
		return 0, fmt.Errorf("noise: unknown distribution %q (want lognormal or uniform)", s)
	}
}

// Config parameterizes the injector. The zero value (Enabled == false)
// disables estimation-error injection entirely.
type Config struct {
	// Enabled turns the injector on. When false every other field is
	// ignored, no streams are consumed, and runs are bit-identical to a
	// build without this package.
	Enabled bool
	// Dist selects the error distribution.
	Dist Dist
	// ReadsSigma is the error magnitude applied to EstReads: the σ of
	// the lognormal ln-factor, or the half-width of the uniform factor.
	// Zero injects no reads error (the draw still happens, keeping
	// stream consumption fixed).
	ReadsSigma float64
	// CPUSigma is the error magnitude applied to EstPageCPU, with the
	// same semantics as ReadsSigma.
	CPUSigma float64
}

// Default returns a moderate-error configuration: lognormal factors
// with σ = 0.5 on both estimates, i.e. one-standard-deviation errors of
// roughly ±65%/−40% — midrange for measured optimizer estimates.
func Default() Config {
	return Config{Enabled: true, Dist: Lognormal, ReadsSigma: 0.5, CPUSigma: 0.5}
}

// Validate reports a configuration error, if any. A disabled config is
// always valid.
func (c Config) Validate() error {
	if !c.Enabled {
		return nil
	}
	if c.Dist != Lognormal && c.Dist != Uniform {
		return fmt.Errorf("noise: invalid distribution %d", c.Dist)
	}
	for _, s := range []struct {
		name string
		v    float64
	}{{"ReadsSigma", c.ReadsSigma}, {"CPUSigma", c.CPUSigma}} {
		switch {
		case math.IsNaN(s.v) || s.v < 0:
			return fmt.Errorf("noise: %s %v must be non-negative", s.name, s.v)
		case math.IsInf(s.v, 1):
			return fmt.Errorf("noise: %s must be finite", s.name)
		case c.Dist == Uniform && s.v >= 1:
			return fmt.Errorf("noise: uniform %s %v must stay below 1 (factors must be positive)", s.name, s.v)
		}
	}
	return nil
}

// Injector perturbs query estimates. Build one per run with NewInjector
// and call Perturb on every freshly generated query before the
// allocation policy sees it.
type Injector struct {
	cfg     Config
	streams []*rng.Stream // one per class
}

// NewInjector builds the injector for numClasses query classes. Each
// class draws from its own child of stream, identified by class index.
func NewInjector(cfg Config, numClasses int, stream *rng.Stream) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Enabled {
		return nil, fmt.Errorf("noise: injector built from a disabled config")
	}
	if numClasses < 1 {
		return nil, fmt.Errorf("noise: numClasses %d < 1", numClasses)
	}
	if stream == nil {
		return nil, fmt.Errorf("noise: nil random stream")
	}
	in := &Injector{cfg: cfg, streams: make([]*rng.Stream, numClasses)}
	for c := range in.streams {
		in.streams[c] = stream.Child(uint64(c))
	}
	return in, nil
}

// Perturb multiplies q's demand estimates by freshly drawn error
// factors. Exactly two draws are consumed from q's class stream per
// call regardless of the configured magnitudes, so consumption depends
// only on the per-class submission count. The true demands (ReadsTotal
// and the per-page service sampling at the sites) are untouched:
// execution remains exact while allocation sees the error.
func (in *Injector) Perturb(q *workload.Query) {
	st := in.streams[q.Class]
	q.EstReads *= in.factor(st, in.cfg.ReadsSigma)
	q.EstPageCPU *= in.factor(st, in.cfg.CPUSigma)
}

// factor draws one multiplicative error factor.
func (in *Injector) factor(st *rng.Stream, sigma float64) float64 {
	switch in.cfg.Dist {
	case Uniform:
		return st.Uniform(1-sigma, 1+sigma)
	default: // Lognormal
		return math.Exp(sigma*st.Normal() - sigma*sigma/2)
	}
}
