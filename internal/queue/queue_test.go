package queue

import (
	"math"
	"testing"

	"dqalloc/internal/rng"
	"dqalloc/internal/sim"
)

func TestFCFSServesInOrder(t *testing.T) {
	s := sim.New()
	var order []int
	var times []float64
	srv := NewFCFS(s, func(id int) {
		order = append(order, id)
		times = append(times, s.Now())
	})
	s.At(0, func() {
		srv.Enqueue(1, 3)
		srv.Enqueue(2, 2)
		srv.Enqueue(3, 1)
	})
	s.Run()
	wantOrder := []int{1, 2, 3}
	wantTimes := []float64{3, 5, 6}
	for i := range wantOrder {
		if order[i] != wantOrder[i] || times[i] != wantTimes[i] {
			t.Fatalf("completion %d = (%d, %v), want (%d, %v)",
				i, order[i], times[i], wantOrder[i], wantTimes[i])
		}
	}
	if srv.Served() != 3 {
		t.Errorf("Served = %d, want 3", srv.Served())
	}
}

func TestFCFSIdleThenBusy(t *testing.T) {
	s := sim.New()
	srv := NewFCFS(s, func(struct{}) {})
	s.At(0, func() { srv.Enqueue(struct{}{}, 2) })
	s.At(10, func() { srv.Enqueue(struct{}{}, 2) })
	s.Run()
	// Busy 4 out of 12 time units.
	if got := srv.Utilization(12); math.Abs(got-4.0/12.0) > 1e-12 {
		t.Errorf("utilization = %v, want %v", got, 4.0/12.0)
	}
	if srv.Busy() {
		t.Error("server busy after all jobs done")
	}
	if srv.QueueLen() != 0 {
		t.Errorf("queue length = %d, want 0", srv.QueueLen())
	}
}

func TestFCFSZeroService(t *testing.T) {
	s := sim.New()
	done := 0
	srv := NewFCFS(s, func(struct{}) { done++ })
	s.At(1, func() { srv.Enqueue(struct{}{}, 0) })
	s.Run()
	if done != 1 || s.Now() != 1 {
		t.Errorf("zero-service job: done=%d at t=%v, want 1 at t=1", done, s.Now())
	}
}

func TestPSEqualShares(t *testing.T) {
	s := sim.New()
	var times = map[int]float64{}
	srv := NewPS(s, func(id int) { times[id] = s.Now() })
	s.At(0, func() {
		srv.Enqueue(1, 2) // alone would finish at 2
		srv.Enqueue(2, 1) // alone would finish at 1
	})
	s.Run()
	// Sharing: job 2 gets 1 unit of work by time 2 (rate 1/2); job 1 then
	// has 1 unit left served alone, finishing at 3.
	if math.Abs(times[2]-2) > 1e-9 || math.Abs(times[1]-3) > 1e-9 {
		t.Errorf("completion times = %v, want job2@2 job1@3", times)
	}
}

func TestPSLateArrival(t *testing.T) {
	s := sim.New()
	times := map[int]float64{}
	srv := NewPS(s, func(id int) { times[id] = s.Now() })
	s.At(0, func() { srv.Enqueue(1, 2) })
	s.At(1, func() { srv.Enqueue(2, 2) })
	s.Run()
	// Job 1: alone over [0,1) does 1 unit; shares until its last unit
	// completes at t=3. Job 2 then has 1 unit left alone, finishing at 4.
	if math.Abs(times[1]-3) > 1e-9 || math.Abs(times[2]-4) > 1e-9 {
		t.Errorf("completion times = %v, want job1@3 job2@4", times)
	}
}

func TestPSSimultaneousDepartures(t *testing.T) {
	s := sim.New()
	var order []int
	srv := NewPS(s, func(id int) { order = append(order, id) })
	s.At(0, func() {
		srv.Enqueue(1, 1)
		srv.Enqueue(2, 1)
		srv.Enqueue(3, 1)
	})
	s.Run()
	if s.Now() != 3 {
		t.Errorf("clock = %v, want 3 (three jobs sharing)", s.Now())
	}
	for i, id := range order {
		if id != i+1 {
			t.Fatalf("departure order = %v, want arrival order", order)
		}
	}
}

func TestPSUtilizationWindow(t *testing.T) {
	s := sim.New()
	srv := NewPS(s, func(struct{}) {})
	s.At(0, func() { srv.Enqueue(struct{}{}, 1) })
	s.At(5, func() { srv.Enqueue(struct{}{}, 1) })
	s.Run()
	if got := srv.Utilization(10); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("utilization = %v, want 0.2", got)
	}
	if got := srv.MeanLoad(10); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("mean load = %v, want 0.2", got)
	}
}

// TestFCFSMM1 checks the FCFS server against the M/M/1 closed form:
// with ρ = λ/μ < 1, the mean number in system is ρ/(1−ρ).
func TestFCFSMM1(t *testing.T) {
	s := sim.New()
	arrivals := rng.NewStream(101)
	services := rng.NewStream(102)
	const (
		lambda = 0.7
		mu     = 1.0
		horiz  = 400000.0
	)
	srv := NewFCFS(s, func(struct{}) {})
	var nextArrival func()
	nextArrival = func() {
		srv.Enqueue(struct{}{}, services.Exp(1/mu))
		s.After(arrivals.Exp(1/lambda), nextArrival)
	}
	s.After(arrivals.Exp(1/lambda), nextArrival)
	s.RunUntil(horiz)
	rho := lambda / mu
	wantN := rho / (1 - rho)
	if got := srv.MeanQueueLen(horiz); math.Abs(got-wantN) > 0.15 {
		t.Errorf("M/M/1 mean jobs = %v, want ~%v", got, wantN)
	}
	if got := srv.Utilization(horiz); math.Abs(got-rho) > 0.02 {
		t.Errorf("M/M/1 utilization = %v, want ~%v", got, rho)
	}
}

// TestPSMM1 checks the PS server against the M/M/1-PS closed form, which
// shares the ρ/(1−ρ) mean-jobs law with FCFS.
func TestPSMM1(t *testing.T) {
	s := sim.New()
	arrivals := rng.NewStream(201)
	services := rng.NewStream(202)
	const (
		lambda = 0.6
		mu     = 1.0
		horiz  = 400000.0
	)
	srv := NewPS(s, func(struct{}) {})
	var nextArrival func()
	nextArrival = func() {
		srv.Enqueue(struct{}{}, services.Exp(1/mu))
		s.After(arrivals.Exp(1/lambda), nextArrival)
	}
	s.After(arrivals.Exp(1/lambda), nextArrival)
	s.RunUntil(horiz)
	rho := lambda / mu
	wantN := rho / (1 - rho)
	if got := srv.MeanLoad(horiz); math.Abs(got-wantN) > 0.12 {
		t.Errorf("M/M/1-PS mean jobs = %v, want ~%v", got, wantN)
	}
}

func TestDiskArrayShortestQueue(t *testing.T) {
	s := sim.New()
	arr := NewDiskArray[int](s, 2, SelectShortestQueue, nil, func(int) {})
	s.At(0, func() {
		arr.Enqueue(1, 10) // disk 0
		arr.Enqueue(2, 10) // disk 1
		arr.Enqueue(3, 10) // ties -> disk 0
		if got := arr.QueueLen(); got != 3 {
			t.Errorf("QueueLen = %d, want 3", got)
		}
		if arr.disks[0].QueueLen() != 2 || arr.disks[1].QueueLen() != 1 {
			t.Errorf("shortest-queue placement = %d/%d, want 2/1",
				arr.disks[0].QueueLen(), arr.disks[1].QueueLen())
		}
	})
	s.Run()
	if arr.Served() != 3 {
		t.Errorf("Served = %d, want 3", arr.Served())
	}
}

func TestDiskArrayRandomBalance(t *testing.T) {
	s := sim.New()
	arr := NewDiskArray[int](s, 4, SelectRandom, rng.NewStream(7), func(int) {})
	counts := make([]int, 4)
	s.At(0, func() {
		for i := 0; i < 4000; i++ {
			d := arr.choose()
			counts[d]++
		}
	})
	s.Run()
	for i, c := range counts {
		if c < 800 || c > 1200 {
			t.Errorf("disk %d chosen %d/4000 times, want ~1000", i, c)
		}
	}
}

func TestDiskArrayUtilization(t *testing.T) {
	s := sim.New()
	arr := NewDiskArray[int](s, 2, SelectShortestQueue, nil, func(int) {})
	s.At(0, func() {
		arr.Enqueue(1, 5)  // disk 0 busy [0,5)
		arr.Enqueue(2, 10) // disk 1 busy [0,10)
	})
	s.Run()
	if got := arr.Utilization(10); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("array utilization = %v, want 0.75", got)
	}
}

func TestDiskSelectionString(t *testing.T) {
	if SelectRandom.String() != "random" ||
		SelectShortestQueue.String() != "shortest-queue" ||
		DiskSelection(0).String() != "unknown" {
		t.Error("DiskSelection.String mismatch")
	}
}

func TestResetStatsDiscardsTransient(t *testing.T) {
	s := sim.New()
	srv := NewFCFS(s, func(struct{}) {})
	s.At(0, func() { srv.Enqueue(struct{}{}, 9) })
	s.At(10, func() { srv.ResetStats(10) })
	s.RunUntil(20)
	if got := srv.Utilization(20); got != 0 {
		t.Errorf("post-reset utilization = %v, want 0", got)
	}
	if srv.Served() != 0 {
		t.Errorf("post-reset served = %d, want 0", srv.Served())
	}
}

func BenchmarkPSChurn(b *testing.B) {
	s := sim.New()
	services := rng.NewStream(1)
	srv := NewPS(s, func(struct{}) {})
	arrivals := rng.NewStream(2)
	n := 0
	var next func()
	next = func() {
		if n >= b.N {
			return
		}
		n++
		srv.Enqueue(struct{}{}, services.Exp(1))
		s.After(arrivals.Exp(1.25), next)
	}
	b.ResetTimer()
	s.After(0, next)
	s.Run()
}
