// Package queue implements the service centers of the paper's DB-site
// model (Section 2): first-come-first-served single servers (the disks),
// an event-driven processor-sharing server (the CPU), and a multi-disk
// array with a pluggable disk-selection rule. Servers are generic over the
// job type so that the same machinery serves queries, messages, and test
// payloads.
package queue

import (
	"dqalloc/internal/sim"
	"dqalloc/internal/stats"
)

// Event kinds tagged onto this package's scheduler events for the trace
// digest (see sim.Event.Kind).
const (
	// EventKindFCFS marks an FCFS server's service-completion event.
	EventKindFCFS byte = 0x11
	// EventKindPS marks a PS server's next-departure event.
	EventKindPS byte = 0x12
)

// FCFS is a single server with an unbounded FIFO queue. The caller samples
// the service time and passes it at enqueue; the server invokes the
// completion callback when the job's service finishes.
type FCFS[T any] struct {
	sched *sim.Scheduler
	done  func(T)
	// finishFn is the service-completion action, bound once at
	// construction so startNext schedules it without allocating a
	// closure per service.
	finishFn sim.Action

	queue  []fcfsEntry[T]
	busy   bool
	next   sim.Handle // pending service-completion event
	util   stats.TimeWeighted
	qlen   stats.TimeWeighted
	served uint64
	// rate is the server's speed. It stays exactly 1 unless SetRate is
	// called (fail-slow episodes), so the no-fault arithmetic is
	// bit-identical (y/1.0 == y). remaining and rateSince track the
	// in-service job's unfinished work so a mid-service rate change
	// stretches exactly the work not yet done.
	rate      float64
	remaining float64
	rateSince float64
}

type fcfsEntry[T any] struct {
	job     T
	service float64
}

// NewFCFS returns an idle FCFS server. done is called (from within the
// simulation's event loop) each time a job completes service.
func NewFCFS[T any](sched *sim.Scheduler, done func(T)) *FCFS[T] {
	if done == nil {
		panic("queue: nil completion callback")
	}
	f := &FCFS[T]{sched: sched, done: done, rate: 1}
	f.finishFn = f.finish
	return f
}

// Rate returns the server's current speed (1 unless degraded).
func (f *FCFS[T]) Rate() float64 { return f.rate }

// SetRate changes the server's speed: the in-service job's completion is
// re-timed so work already done at the old rate counts and only the
// remaining work stretches (or shrinks). This is the fail-slow hook — a
// rate of 1/k stretches service times by k. rate must be positive.
func (f *FCFS[T]) SetRate(rate float64) {
	if !(rate > 0) {
		panic("queue: non-positive FCFS rate")
	}
	if rate == f.rate {
		return
	}
	if f.busy {
		now := f.sched.Now()
		f.remaining -= (now - f.rateSince) * f.rate
		if f.remaining < 0 {
			f.remaining = 0
		}
		f.rateSince = now
		f.sched.Cancel(f.next)
		f.next = f.sched.After(f.remaining/rate, f.finishFn)
		f.next.SetKind(EventKindFCFS)
	}
	f.rate = rate
}

// Enqueue adds a job requiring the given service time. Service starts
// immediately if the server is idle.
func (f *FCFS[T]) Enqueue(job T, service float64) {
	if service < 0 {
		panic("queue: negative service time")
	}
	now := f.sched.Now()
	f.queue = append(f.queue, fcfsEntry[T]{job: job, service: service})
	f.qlen.Set(now, float64(len(f.queue)))
	if !f.busy {
		f.startNext()
	}
}

// QueueLen returns the number of jobs present, including the one in
// service.
func (f *FCFS[T]) QueueLen() int { return len(f.queue) }

// Busy reports whether a job is in service.
func (f *FCFS[T]) Busy() bool { return f.busy }

// Served returns the number of completed jobs.
func (f *FCFS[T]) Served() uint64 { return f.served }

// Utilization returns the busy fraction over the stats window ending at t.
func (f *FCFS[T]) Utilization(t float64) float64 { return f.util.MeanAt(t) }

// MeanQueueLen returns the time-average number of jobs present over the
// stats window ending at t.
func (f *FCFS[T]) MeanQueueLen(t float64) float64 { return f.qlen.MeanAt(t) }

// ResetStats restarts the utilization and queue-length windows at t,
// discarding the warmup transient.
func (f *FCFS[T]) ResetStats(t float64) {
	f.util.Reset(t)
	f.qlen.Reset(t)
	f.served = 0
}

// Drain removes every job — queued or in service — without completing
// it, cancels the pending service-completion event, and returns the jobs
// in queue order (the one in service first). The utilization and
// queue-length windows record the server going idle. This models the
// server's site crashing: the jobs are lost, and recovering them is the
// caller's concern.
func (f *FCFS[T]) Drain() []T {
	now := f.sched.Now()
	f.sched.Cancel(f.next)
	f.next = sim.Handle{}
	out := make([]T, len(f.queue))
	for i := range f.queue {
		out[i] = f.queue[i].job
		f.queue[i] = fcfsEntry[T]{}
	}
	f.queue = f.queue[:0]
	f.busy = false
	f.qlen.Set(now, 0)
	f.util.Set(now, 0)
	return out
}

// RemoveFunc withdraws the first job matching the predicate — queued or
// in service — without completing it, and reports whether one matched.
// Removing the job in service cancels its pending completion event and
// starts the next job fresh (the elapsed service is forfeited, matching
// Drain's crash semantics); removing a queued job just closes the gap.
// This is the deadline-abort / hedge-cancellation primitive.
func (f *FCFS[T]) RemoveFunc(match func(T) bool) (T, bool) {
	var zero T
	for i := range f.queue {
		if !match(f.queue[i].job) {
			continue
		}
		job := f.queue[i].job
		now := f.sched.Now()
		inService := i == 0 && f.busy
		if inService {
			f.sched.Cancel(f.next)
			f.next = sim.Handle{}
		}
		copy(f.queue[i:], f.queue[i+1:])
		f.queue[len(f.queue)-1] = fcfsEntry[T]{}
		f.queue = f.queue[:len(f.queue)-1]
		f.qlen.Set(now, float64(len(f.queue)))
		if inService {
			if len(f.queue) > 0 {
				f.startNext()
			} else {
				f.busy = false
				f.util.Set(now, 0)
			}
		}
		return job, true
	}
	return zero, false
}

func (f *FCFS[T]) startNext() {
	now := f.sched.Now()
	f.busy = true
	f.util.Set(now, 1)
	head := f.queue[0]
	f.remaining = head.service
	f.rateSince = now
	f.next = f.sched.After(head.service/f.rate, f.finishFn)
	f.next.SetKind(EventKindFCFS)
}

func (f *FCFS[T]) finish() {
	now := f.sched.Now()
	f.next = sim.Handle{}
	head := f.queue[0]
	copy(f.queue, f.queue[1:])
	f.queue[len(f.queue)-1] = fcfsEntry[T]{}
	f.queue = f.queue[:len(f.queue)-1]
	f.qlen.Set(now, float64(len(f.queue)))
	f.served++
	if len(f.queue) > 0 {
		f.startNext()
	} else {
		f.busy = false
		f.util.Set(now, 0)
	}
	f.done(head.job)
}
