package queue

import (
	"testing"

	"dqalloc/internal/rng"
	"dqalloc/internal/sim"
)

func TestFCFSDrain(t *testing.T) {
	s := sim.New()
	var done []int
	f := NewFCFS(s, func(j int) { done = append(done, j) })
	s.At(0, func() {
		f.Enqueue(1, 10)
		f.Enqueue(2, 10)
		f.Enqueue(3, 10)
	})
	var drained []int
	s.At(5, func() { drained = f.Drain() })
	s.Run()
	if len(done) != 0 {
		t.Errorf("drained jobs completed: %v", done)
	}
	if want := []int{1, 2, 3}; len(drained) != 3 || drained[0] != 1 || drained[1] != 2 || drained[2] != 3 {
		t.Errorf("Drain returned %v, want %v", drained, want)
	}
	if f.QueueLen() != 0 {
		t.Errorf("queue length %d after drain", f.QueueLen())
	}
	// The server must be reusable after a drain.
	s2 := sim.New()
	done = nil
	f2 := NewFCFS(s2, func(j int) { done = append(done, j) })
	s2.At(0, func() { f2.Enqueue(7, 3) })
	s2.At(1, func() { f2.Drain() })
	s2.At(2, func() { f2.Enqueue(8, 3) })
	s2.Run()
	if len(done) != 1 || done[0] != 8 {
		t.Errorf("post-drain completions = %v, want [8]", done)
	}
}

func TestPSDrain(t *testing.T) {
	s := sim.New()
	var done []int
	p := NewPS(s, func(j int) { done = append(done, j) })
	s.At(0, func() {
		p.Enqueue(1, 10)
		p.Enqueue(2, 20)
	})
	var drained []int
	s.At(5, func() { drained = p.Drain() })
	s.Run()
	if len(done) != 0 {
		t.Errorf("drained jobs completed: %v", done)
	}
	if len(drained) != 2 || drained[0] != 1 || drained[1] != 2 {
		t.Errorf("Drain returned %v, want [1 2]", drained)
	}
	if p.QueueLen() != 0 {
		t.Errorf("load %d after drain", p.QueueLen())
	}
	// Reusable after drain: a fresh job completes after its full demand.
	var at float64 = -1
	s3 := sim.New()
	p3 := NewPS(s3, func(int) { at = s3.Now() })
	s3.At(0, func() { p3.Enqueue(1, 10) })
	s3.At(2, func() { p3.Drain() })
	s3.At(4, func() { p3.Enqueue(2, 10) })
	s3.Run()
	if at != 14 {
		t.Errorf("post-drain completion at %v, want 14", at)
	}
}

func TestDiskArrayDrain(t *testing.T) {
	s := sim.New()
	var done []int
	d := NewDiskArray(s, 2, SelectShortestQueue, rng.NewStream(1), func(j int) { done = append(done, j) })
	s.At(0, func() {
		d.Enqueue(1, 10) // disk 0
		d.Enqueue(2, 10) // disk 1
		d.Enqueue(3, 10) // disk 0 (tie broken by index)
	})
	var drained []int
	s.At(5, func() { drained = d.Drain() })
	s.Run()
	if len(done) != 0 {
		t.Errorf("drained reads completed: %v", done)
	}
	// Disk-index order: disk 0's queue (1, 3) then disk 1's (2).
	if len(drained) != 3 || drained[0] != 1 || drained[1] != 3 || drained[2] != 2 {
		t.Errorf("Drain returned %v, want [1 3 2]", drained)
	}
	if d.QueueLen() != 0 {
		t.Errorf("queue length %d after drain", d.QueueLen())
	}
}
