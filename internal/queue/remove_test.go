package queue

import (
	"testing"

	"dqalloc/internal/rng"
	"dqalloc/internal/sim"
)

// TestFCFSRemoveQueued removes a waiting job: the job in service is
// untouched and completes on schedule.
func TestFCFSRemoveQueued(t *testing.T) {
	sched := sim.New()
	var done []int
	f := NewFCFS[int](sched, func(j int) { done = append(done, j) })
	f.Enqueue(1, 10)
	f.Enqueue(2, 10)
	f.Enqueue(3, 10)
	job, ok := f.RemoveFunc(func(j int) bool { return j == 2 })
	if !ok || job != 2 {
		t.Fatalf("RemoveFunc = (%d, %v), want (2, true)", job, ok)
	}
	if f.QueueLen() != 2 {
		t.Fatalf("queue length %d, want 2", f.QueueLen())
	}
	sched.Run()
	if len(done) != 2 || done[0] != 1 || done[1] != 3 {
		t.Fatalf("completions %v, want [1 3]", done)
	}
	if sched.Now() != 20 {
		t.Fatalf("finished at %v, want 20 (job 2's service never ran)", sched.Now())
	}
}

// TestFCFSRemoveInService removes the job in service: its completion
// event is cancelled and the next job starts fresh at that instant.
func TestFCFSRemoveInService(t *testing.T) {
	sched := sim.New()
	var done []int
	f := NewFCFS[int](sched, func(j int) { done = append(done, j) })
	f.Enqueue(1, 10)
	f.Enqueue(2, 7)
	sched.RunUntil(4) // job 1 is mid-service
	job, ok := f.RemoveFunc(func(j int) bool { return j == 1 })
	if !ok || job != 1 {
		t.Fatalf("RemoveFunc = (%d, %v), want (1, true)", job, ok)
	}
	if !f.Busy() || f.QueueLen() != 1 {
		t.Fatalf("busy %v queue %d, want service of job 2 started", f.Busy(), f.QueueLen())
	}
	sched.Run()
	if len(done) != 1 || done[0] != 2 {
		t.Fatalf("completions %v, want [2]", done)
	}
	if sched.Now() != 11 { // 4 (removal) + 7 (job 2 fresh)
		t.Fatalf("job 2 finished at %v, want 11", sched.Now())
	}
}

// TestFCFSRemoveLastGoesIdle removes the only job: the server must go
// idle with no dangling completion event.
func TestFCFSRemoveLastGoesIdle(t *testing.T) {
	sched := sim.New()
	f := NewFCFS[int](sched, func(int) { t.Fatal("unexpected completion") })
	f.Enqueue(1, 10)
	sched.RunUntil(3)
	if _, ok := f.RemoveFunc(func(j int) bool { return j == 1 }); !ok {
		t.Fatal("job not found")
	}
	if f.Busy() || f.QueueLen() != 0 {
		t.Fatalf("busy %v queue %d after removing the only job", f.Busy(), f.QueueLen())
	}
	sched.Run() // no completion may fire
}

func TestFCFSRemoveAbsent(t *testing.T) {
	sched := sim.New()
	f := NewFCFS[int](sched, func(int) {})
	f.Enqueue(1, 5)
	if _, ok := f.RemoveFunc(func(j int) bool { return j == 99 }); ok {
		t.Fatal("absent job reported removed")
	}
	if f.QueueLen() != 1 {
		t.Fatalf("queue length %d, want 1", f.QueueLen())
	}
}

// TestPSRemove removes one of two sharing jobs mid-service: the
// survivor speeds up to full rate from the removal instant.
func TestPSRemove(t *testing.T) {
	sched := sim.New()
	var done []int
	p := NewPS[int](sched, func(j int) { done = append(done, j) })
	p.Enqueue(1, 10)
	p.Enqueue(2, 10)
	sched.RunUntil(4) // each has received 2 units, 8 remain apiece
	job, ok := p.RemoveFunc(func(j int) bool { return j == 1 })
	if !ok || job != 1 {
		t.Fatalf("RemoveFunc = (%d, %v), want (1, true)", job, ok)
	}
	if p.QueueLen() != 1 {
		t.Fatalf("queue length %d, want 1", p.QueueLen())
	}
	sched.Run()
	if len(done) != 1 || done[0] != 2 {
		t.Fatalf("completions %v, want [2]", done)
	}
	if sched.Now() != 12 { // 4 + remaining 8 at full rate
		t.Fatalf("job 2 finished at %v, want 12", sched.Now())
	}
}

// TestPSRemoveLastGoesIdle empties the processor via removal.
func TestPSRemoveLastGoesIdle(t *testing.T) {
	sched := sim.New()
	p := NewPS[int](sched, func(int) { t.Fatal("unexpected completion") })
	p.Enqueue(1, 10)
	sched.RunUntil(2)
	if _, ok := p.RemoveFunc(func(j int) bool { return j == 1 }); !ok {
		t.Fatal("job not found")
	}
	if p.QueueLen() != 0 {
		t.Fatalf("queue length %d, want 0", p.QueueLen())
	}
	sched.Run()
}

func TestDiskArrayRemove(t *testing.T) {
	sched := sim.New()
	var done []int
	d := NewDiskArray[int](sched, 3, SelectRandom, rng.NewStream(1), func(j int) { done = append(done, j) })
	for i := 1; i <= 6; i++ {
		d.Enqueue(i, 5)
	}
	job, ok := d.RemoveFunc(func(j int) bool { return j == 4 })
	if !ok || job != 4 {
		t.Fatalf("RemoveFunc = (%d, %v), want (4, true)", job, ok)
	}
	if d.QueueLen() != 5 {
		t.Fatalf("queue length %d, want 5", d.QueueLen())
	}
	if _, ok := d.RemoveFunc(func(j int) bool { return j == 4 }); ok {
		t.Fatal("job 4 removed twice")
	}
	sched.Run()
	if len(done) != 5 {
		t.Fatalf("%d completions, want 5", len(done))
	}
	for _, j := range done {
		if j == 4 {
			t.Fatal("removed job completed anyway")
		}
	}
}
