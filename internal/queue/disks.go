package queue

import (
	"dqalloc/internal/rng"
	"dqalloc/internal/sim"
)

// DiskSelection chooses which disk of a site serves a page read.
type DiskSelection int

const (
	// SelectRandom sends each read to a uniformly random disk. This is the
	// default: it matches the equal-visit-ratio structure assumed by the
	// paper's Section 3 mean-value analysis.
	SelectRandom DiskSelection = iota + 1
	// SelectShortestQueue sends each read to the disk with the fewest
	// queued requests, breaking ties by lowest disk index.
	SelectShortestQueue
)

// String returns the selection policy's name.
func (d DiskSelection) String() string {
	switch d {
	case SelectRandom:
		return "random"
	case SelectShortestQueue:
		return "shortest-queue"
	default:
		return "unknown"
	}
}

// DiskArray models a site's storage hardware: num_disks independent FCFS
// servers (Section 2, Table 1). Reads are dispatched to one disk according
// to the configured selection rule.
type DiskArray[T any] struct {
	disks  []*FCFS[T]
	pick   DiskSelection
	stream *rng.Stream
}

// NewDiskArray builds an array of n FCFS disks. stream drives the random
// selection rule (it may be nil when pick is SelectShortestQueue). done is
// called on each completed read.
func NewDiskArray[T any](sched *sim.Scheduler, n int, pick DiskSelection, stream *rng.Stream, done func(T)) *DiskArray[T] {
	if n <= 0 {
		panic("queue: disk array needs at least one disk")
	}
	if pick == SelectRandom && stream == nil {
		panic("queue: random disk selection needs a stream")
	}
	d := &DiskArray[T]{pick: pick, stream: stream}
	d.disks = make([]*FCFS[T], n)
	for i := range d.disks {
		d.disks[i] = NewFCFS(sched, done)
	}
	return d
}

// Enqueue dispatches one read with the given service time to a disk.
func (d *DiskArray[T]) Enqueue(job T, service float64) {
	d.disks[d.choose()].Enqueue(job, service)
}

// Drain empties every disk without completing any read, returning the
// lost jobs in disk-index order (within a disk, queue order). See
// FCFS.Drain.
func (d *DiskArray[T]) Drain() []T {
	var out []T
	for _, disk := range d.disks {
		out = append(out, disk.Drain()...)
	}
	return out
}

// RemoveFunc withdraws the first matching read across the disks (in
// disk-index order) without completing it. See FCFS.RemoveFunc.
func (d *DiskArray[T]) RemoveFunc(match func(T) bool) (T, bool) {
	for _, disk := range d.disks {
		if job, ok := disk.RemoveFunc(match); ok {
			return job, true
		}
	}
	var zero T
	return zero, false
}

// SetRate changes every disk's speed; in-service reads are re-timed so
// only their remaining work stretches. See FCFS.SetRate.
func (d *DiskArray[T]) SetRate(rate float64) {
	for _, disk := range d.disks {
		disk.SetRate(rate)
	}
}

// NumDisks returns the number of disks in the array.
func (d *DiskArray[T]) NumDisks() int { return len(d.disks) }

// QueueLen returns the total number of reads present across all disks.
func (d *DiskArray[T]) QueueLen() int {
	total := 0
	for _, disk := range d.disks {
		total += disk.QueueLen()
	}
	return total
}

// Served returns the total reads completed across all disks.
func (d *DiskArray[T]) Served() uint64 {
	var total uint64
	for _, disk := range d.disks {
		total += disk.Served()
	}
	return total
}

// Utilization returns the mean busy fraction across disks over the stats
// window ending at t.
func (d *DiskArray[T]) Utilization(t float64) float64 {
	sum := 0.0
	for _, disk := range d.disks {
		sum += disk.Utilization(t)
	}
	return sum / float64(len(d.disks))
}

// ResetStats restarts every disk's measurement window at t.
func (d *DiskArray[T]) ResetStats(t float64) {
	for _, disk := range d.disks {
		disk.ResetStats(t)
	}
}

func (d *DiskArray[T]) choose() int {
	switch d.pick {
	case SelectShortestQueue:
		best := 0
		for i := 1; i < len(d.disks); i++ {
			if d.disks[i].QueueLen() < d.disks[best].QueueLen() {
				best = i
			}
		}
		return best
	default:
		return d.stream.Intn(len(d.disks))
	}
}
