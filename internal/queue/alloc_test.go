package queue

import (
	"testing"

	"dqalloc/internal/race"
	"dqalloc/internal/sim"
)

// Steady-state allocation pins for the service centers: with the
// scheduler's free list and the servers' internal slices warm, a full
// enqueue→serve→complete cycle allocates nothing. See the rationale in
// internal/sim/alloc_test.go.

func TestFCFSCycleSteadyStateAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are inflated under -race")
	}
	s := sim.New()
	served := 0
	f := NewFCFS[int](s, func(int) { served++ })
	// Warm the queue slice and the scheduler pool.
	for i := 0; i < 16; i++ {
		f.Enqueue(i, 1)
	}
	s.Run()
	avg := testing.AllocsPerRun(500, func() {
		f.Enqueue(7, 1)
		s.Run()
	})
	if avg != 0 {
		t.Errorf("FCFS enqueue→serve cycle allocates %v objects/op, want 0", avg)
	}
	if served == 0 {
		t.Fatal("no jobs served")
	}
}

func TestPSCycleSteadyStateAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are inflated under -race")
	}
	s := sim.New()
	served := 0
	p := NewPS[int](s, func(int) { served++ })
	// Warm the job and finished-scratch slices with overlapping jobs.
	for i := 0; i < 16; i++ {
		p.Enqueue(i, 1)
	}
	s.Run()
	avg := testing.AllocsPerRun(500, func() {
		p.Enqueue(3, 1)
		p.Enqueue(4, 2)
		s.Run()
	})
	if avg != 0 {
		t.Errorf("PS enqueue→serve cycle allocates %v objects/op, want 0", avg)
	}
	if served == 0 {
		t.Fatal("no jobs served")
	}
}
