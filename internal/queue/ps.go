package queue

import (
	"math"

	"dqalloc/internal/sim"
	"dqalloc/internal/stats"
)

// psEpsilon absorbs floating-point residue when deciding that a job's
// remaining work has reached zero.
const psEpsilon = 1e-9

// PS is an egalitarian processor-sharing server: with n jobs present, each
// receives service at rate 1/n. This models the paper's CPU (Section 2:
// "the CPU is modeled as a PS server").
//
// The implementation is event-driven: whenever the active set changes, the
// remaining work of every job is advanced and the next departure is
// rescheduled. All departures that become due simultaneously are delivered
// in arrival order.
type PS[T any] struct {
	sched *sim.Scheduler
	done  func(T)
	// departFn is the next-departure action, bound once at construction
	// so reschedule allocates no closure per departure event.
	departFn sim.Action

	jobs       []psJob[T]
	fin        []T // scratch for simultaneous departures, reused across events
	lastUpdate float64
	next       sim.Handle
	util       stats.TimeWeighted
	load       stats.TimeWeighted
	served     uint64
	// rate is the server's speed: work is consumed at rate/n per job.
	// Stays exactly 1 unless SetRate is called (fail-slow episodes), so
	// the no-fault arithmetic is bit-identical (x·1.0 == x, y/1.0 == y).
	rate float64
}

type psJob[T any] struct {
	job       T
	remaining float64
}

// NewPS returns an idle processor-sharing server. done is called each time
// a job's service requirement is exhausted.
func NewPS[T any](sched *sim.Scheduler, done func(T)) *PS[T] {
	if done == nil {
		panic("queue: nil completion callback")
	}
	p := &PS[T]{sched: sched, done: done, rate: 1}
	p.departFn = p.depart
	return p
}

// Rate returns the server's current speed (1 unless degraded).
func (p *PS[T]) Rate() float64 { return p.rate }

// SetRate changes the server's speed: elapsed sharing is applied at the
// old rate, then the next departure is rescheduled at the new one. This
// is the fail-slow hook — a rate of 1/f stretches all in-progress and
// future work by f. rate must be positive.
func (p *PS[T]) SetRate(rate float64) {
	if !(rate > 0) {
		panic("queue: non-positive PS rate")
	}
	if rate == p.rate {
		return
	}
	p.advance()
	p.rate = rate
	p.reschedule()
}

// Enqueue adds a job with the given total service requirement. The job
// immediately begins sharing the processor.
func (p *PS[T]) Enqueue(job T, service float64) {
	if service < 0 {
		panic("queue: negative service time")
	}
	p.advance()
	p.jobs = append(p.jobs, psJob[T]{job: job, remaining: service})
	now := p.sched.Now()
	p.load.Set(now, float64(len(p.jobs)))
	p.util.Set(now, 1)
	p.reschedule()
}

// QueueLen returns the number of jobs sharing the processor.
func (p *PS[T]) QueueLen() int { return len(p.jobs) }

// Served returns the number of completed jobs.
func (p *PS[T]) Served() uint64 { return p.served }

// Utilization returns the fraction of time the processor was busy over
// the stats window ending at t.
func (p *PS[T]) Utilization(t float64) float64 { return p.util.MeanAt(t) }

// MeanLoad returns the time-average number of jobs present over the stats
// window ending at t.
func (p *PS[T]) MeanLoad(t float64) float64 { return p.load.MeanAt(t) }

// ResetStats restarts the measurement windows at t.
func (p *PS[T]) ResetStats(t float64) {
	p.util.Reset(t)
	p.load.Reset(t)
	p.served = 0
}

// Drain removes every job sharing the processor without completing it,
// cancels the pending departure event, and returns the jobs in arrival
// order. The utilization and load windows record the processor going
// idle. This models the processor's site crashing: the jobs are lost,
// and recovering them is the caller's concern.
func (p *PS[T]) Drain() []T {
	p.advance()
	now := p.sched.Now()
	p.sched.Cancel(p.next)
	p.next = sim.Handle{}
	out := make([]T, len(p.jobs))
	var zero psJob[T]
	for i := range p.jobs {
		out[i] = p.jobs[i].job
		p.jobs[i] = zero
	}
	p.jobs = p.jobs[:0]
	p.load.Set(now, 0)
	p.util.Set(now, 0)
	return out
}

// RemoveFunc withdraws the first job matching the predicate without
// completing it, and reports whether one matched. Elapsed sharing is
// applied to every job first, then the next departure is rescheduled
// over the survivors — who from this instant share the processor one
// way fewer. This is the deadline-abort / hedge-cancellation primitive.
func (p *PS[T]) RemoveFunc(match func(T) bool) (T, bool) {
	var zero T
	for i := range p.jobs {
		if !match(p.jobs[i].job) {
			continue
		}
		p.advance()
		job := p.jobs[i].job
		copy(p.jobs[i:], p.jobs[i+1:])
		p.jobs[len(p.jobs)-1] = psJob[T]{}
		p.jobs = p.jobs[:len(p.jobs)-1]
		now := p.sched.Now()
		p.load.Set(now, float64(len(p.jobs)))
		if len(p.jobs) == 0 {
			p.util.Set(now, 0)
		}
		p.reschedule()
		return job, true
	}
	return zero, false
}

// advance applies elapsed processor sharing to every active job.
func (p *PS[T]) advance() {
	now := p.sched.Now()
	n := len(p.jobs)
	if n > 0 && now > p.lastUpdate {
		each := (now - p.lastUpdate) * p.rate / float64(n)
		for i := range p.jobs {
			p.jobs[i].remaining -= each
			if p.jobs[i].remaining < 0 {
				p.jobs[i].remaining = 0
			}
		}
	}
	p.lastUpdate = now
}

// reschedule cancels any pending departure event and schedules the next
// one based on the smallest remaining requirement.
func (p *PS[T]) reschedule() {
	p.sched.Cancel(p.next)
	p.next = sim.Handle{}
	if len(p.jobs) == 0 {
		return
	}
	minRemaining := math.Inf(1)
	for i := range p.jobs {
		if p.jobs[i].remaining < minRemaining {
			minRemaining = p.jobs[i].remaining
		}
	}
	delay := minRemaining * float64(len(p.jobs)) / p.rate
	if delay < 0 {
		delay = 0
	}
	p.next = p.sched.After(delay, p.departFn)
	p.next.SetKind(EventKindPS)
}

// depart advances sharing and releases every job whose requirement is now
// exhausted, preserving arrival order among simultaneous departures.
func (p *PS[T]) depart() {
	p.next = sim.Handle{}
	p.advance()
	now := p.sched.Now()

	finished := p.fin[:0]
	kept := p.jobs[:0]
	for _, j := range p.jobs {
		if j.remaining <= psEpsilon {
			finished = append(finished, j.job)
		} else {
			kept = append(kept, j)
		}
	}
	var zero psJob[T]
	for i := len(kept); i < len(p.jobs); i++ {
		p.jobs[i] = zero
	}
	p.jobs = kept

	p.load.Set(now, float64(len(p.jobs)))
	if len(p.jobs) == 0 {
		p.util.Set(now, 0)
	}
	p.reschedule()
	for _, job := range finished {
		p.served++
		p.done(job)
	}
	// Release payload references before the next event reuses the scratch.
	var zeroT T
	for i := range finished {
		finished[i] = zeroT
	}
	p.fin = finished[:0]
}
