package optimal

import (
	"math"
	"testing"
)

func TestLoadMatrixHelpers(t *testing.T) {
	l := LoadMatrix{{2, 1, 0, 0}, {0, 0, 1, 1}}
	totals := l.SiteTotals()
	want := []int{2, 1, 1, 1}
	for j := range want {
		if totals[j] != want[j] {
			t.Fatalf("SiteTotals = %v, want %v", totals, want)
		}
	}
	if qd := l.QueryDifference(); qd != 1 {
		t.Errorf("QueryDifference = %d, want 1", qd)
	}
	ct := l.ClassTotals()
	if ct[0] != 3 || ct[1] != 2 {
		t.Errorf("ClassTotals = %v, want [3 2]", ct)
	}
}

func TestValidation(t *testing.T) {
	p := PaperParams(0.05, 1.0)
	if err := p.Validate(); err != nil {
		t.Fatalf("paper params rejected: %v", err)
	}
	bad := []Params{
		{NumSites: 0, NumDisks: 2, DiskTime: 1, PageCPU: []float64{1, 1}},
		{NumSites: 4, NumDisks: 0, DiskTime: 1, PageCPU: []float64{1, 1}},
		{NumSites: 4, NumDisks: 2, DiskTime: 0, PageCPU: []float64{1, 1}},
		{NumSites: 4, NumDisks: 2, DiskTime: 1},
		{NumSites: 4, NumDisks: 2, DiskTime: 1, PageCPU: []float64{-1, 1}},
	}
	for i, b := range bad {
		if b.Validate() == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
	if err := (LoadMatrix{{1, 1}}).Validate(p); err == nil {
		t.Error("wrong-shape matrix accepted")
	}
	if err := (LoadMatrix{{1, 1, 1, -1}, {0, 0, 0, 0}}).Validate(p); err == nil {
		t.Error("negative load accepted")
	}
	if _, err := Evaluate(p, PaperLoadMatrices()[0], 5); err == nil {
		t.Error("out-of-range class accepted")
	}
}

func TestEvaluateBalancedSymmetricLoad(t *testing.T) {
	// All sites identical: every allocation is equivalent, so WIF = 0.
	p := PaperParams(0.05, 1.0)
	l := LoadMatrix{{1, 1, 1, 1}, {1, 1, 1, 1}}
	a, err := Evaluate(p, l, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.BNQSites) != 4 {
		t.Errorf("BNQ candidates = %v, want all 4 sites", a.BNQSites)
	}
	if a.WIF() > 1e-9 {
		t.Errorf("WIF = %v on a symmetric load, want 0", a.WIF())
	}
	for _, o := range a.Outcomes[1:] {
		if math.Abs(o.ArrivalWait-a.Outcomes[0].ArrivalWait) > 1e-9 {
			t.Error("symmetric sites produced different arrival waits")
		}
	}
}

func TestOptimalPrefersComplementarySite(t *testing.T) {
	// An I/O-bound arrival should prefer a site loaded with a CPU-bound
	// query over a site loaded with an I/O-bound query: they compete for
	// different resources.
	p := PaperParams(0.05, 1.0)
	l := LoadMatrix{
		{1, 0, 0, 0}, // class 1 (io) query at site 0
		{0, 1, 0, 0}, // class 2 (cpu) query at site 1
	}
	a, err := Evaluate(p, l, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Sites 2 and 3 are empty: zero waiting, clearly optimal.
	if a.WaitOpt > 1e-9 {
		t.Errorf("W_OPT = %v, want 0 at an idle site", a.WaitOpt)
	}
	// Co-locating with the CPU-bound query must beat co-locating with the
	// I/O-bound one.
	if a.Outcomes[1].ArrivalWait >= a.Outcomes[0].ArrivalWait {
		t.Errorf("wait with cpu-bound neighbor (%v) not below wait with io-bound neighbor (%v)",
			a.Outcomes[1].ArrivalWait, a.Outcomes[0].ArrivalWait)
	}
}

func TestWIFGrowsWithDemandRatio(t *testing.T) {
	// Table 5, L = [[1,1,0,0],[0,0,1,1]], arrival class 1: at fixed cpu1,
	// increasing the cpu2/cpu1 ratio increases WIF (paper: .14→.24 at
	// cpu1=.05 and .20→.31 at cpu1=.10), and all values stay inside the
	// paper's observed band (0–0.45).
	l := PaperLoadMatrices()[0]
	wif := func(cpu1, cpu2 float64) float64 {
		a, err := Evaluate(PaperParams(cpu1, cpu2), l, 0)
		if err != nil {
			t.Fatal(err)
		}
		v := a.WIF()
		if v < 0 || v > 0.45 {
			t.Errorf("WIF(%v/%v) = %v outside the paper's band", cpu1, cpu2, v)
		}
		return v
	}
	if wif(0.05, 1.0) <= wif(0.05, 0.5) {
		t.Error("WIF did not grow with ratio at cpu1 = .05")
	}
	if wif(0.10, 2.0) <= wif(0.10, 1.0) {
		t.Error("WIF did not grow with ratio at cpu1 = .10")
	}
}

func TestWIFNonNegativeAcrossPaperGrid(t *testing.T) {
	// BNQ can never beat OPT: OPT minimizes over all sites including
	// BNQ's choices. FIF likewise.
	for _, ratio := range PaperCPURatios() {
		p := PaperParams(ratio.CPU1, ratio.CPU2)
		for li, l := range PaperLoadMatrices() {
			for class := 0; class < 2; class++ {
				a, err := Evaluate(p, l, class)
				if err != nil {
					t.Fatal(err)
				}
				if a.WIF() < -1e-12 || a.WIF() > 1 {
					t.Errorf("ratio %s L%d class %d: WIF = %v outside [0,1]",
						ratio.Label(), li+1, class+1, a.WIF())
				}
				if a.FIF() < -1e-12 || a.FIF() > 1 {
					t.Errorf("ratio %s L%d class %d: FIF = %v outside [0,1]",
						ratio.Label(), li+1, class+1, a.FIF())
				}
				if a.WaitOpt > a.WaitBNQ+1e-12 {
					t.Error("W_OPT exceeds W_BNQ")
				}
			}
		}
	}
}

func TestFIFSubstantialOnPaperGrid(t *testing.T) {
	// Table 6's headline: "in all cases a significant improvement in the
	// fairness of the system can be achieved". Check the grid's mean FIF
	// is large even if individual cells vary.
	var sum float64
	var n int
	for _, ratio := range PaperCPURatios() {
		p := PaperParams(ratio.CPU1, ratio.CPU2)
		for _, l := range PaperLoadMatrices() {
			for class := 0; class < 2; class++ {
				a, err := Evaluate(p, l, class)
				if err != nil {
					t.Fatal(err)
				}
				sum += a.FIF()
				n++
			}
		}
	}
	if mean := sum / float64(n); mean < 0.3 {
		t.Errorf("mean FIF over the paper grid = %v, want substantial (> 0.3)", mean)
	}
}

func TestWaitAndFairOptimaOftenDiffer(t *testing.T) {
	// Section 3: "W_OPT and F_OPT were achieved by different allocations
	// in about half of the cases". Verify the phenomenon occurs in a
	// meaningful fraction of the grid.
	differ, total := 0, 0
	for _, ratio := range PaperCPURatios() {
		p := PaperParams(ratio.CPU1, ratio.CPU2)
		for _, l := range PaperLoadMatrices() {
			for class := 0; class < 2; class++ {
				a, err := Evaluate(p, l, class)
				if err != nil {
					t.Fatal(err)
				}
				total++
				if a.OptWaitSite != a.OptFairSite {
					differ++
				}
			}
		}
	}
	frac := float64(differ) / float64(total)
	if frac < 0.2 || frac > 0.9 {
		t.Errorf("optima differ in %v of cases, paper observes about half", frac)
	}
}

func TestHigherTotalLoadLowersWIF(t *testing.T) {
	// Section 3: "an increase in the number of queries ... decreases the
	// beneficial impact that resource demand estimates may have".
	// Compare the 4-query L1 with the 5-query L3 for class-1 arrivals
	// across the mid ratios (matrices whose BNQ choice is not a full tie,
	// where the paper's unspecified tie-break dominates the cell).
	ms := PaperLoadMatrices()
	for _, ratio := range PaperCPURatios()[1:4] {
		p := PaperParams(ratio.CPU1, ratio.CPU2)
		light, err := Evaluate(p, ms[0], 0)
		if err != nil {
			t.Fatal(err)
		}
		heavy, err := Evaluate(p, ms[2], 0)
		if err != nil {
			t.Fatal(err)
		}
		if heavy.WIF() >= light.WIF() {
			t.Errorf("%s: WIF(L3) = %v >= WIF(L1) = %v; paper reports the opposite trend",
				ratio.Label(), heavy.WIF(), light.WIF())
		}
	}
}

func TestCPURatioLabels(t *testing.T) {
	for _, r := range PaperCPURatios() {
		if r.Label() == "" {
			t.Errorf("ratio %+v has no label", r)
		}
	}
	if (CPURatio{CPU1: 9, CPU2: 9}).Label() != "" {
		t.Error("unknown ratio got a label")
	}
}
