package optimal

// This file fixes the exact grid of arrival conditions the paper analyzes
// in Tables 5 and 6.

// PaperParams returns the Section 3 setting (Table 4): four sites, two
// disks per site, disk time 1, and the given per-class CPU demands.
func PaperParams(cpu1, cpu2 float64) Params {
	return Params{
		NumSites: 4,
		NumDisks: 2,
		DiskTime: 1,
		PageCPU:  []float64{cpu1, cpu2},
	}
}

// CPURatio is one row of Tables 5/6: the pair of per-page CPU demands.
type CPURatio struct {
	CPU1, CPU2 float64
}

// Label returns the row label as printed in the paper, e.g. ".05/0.5".
func (c CPURatio) Label() string {
	switch {
	case c.CPU1 == 0.05 && c.CPU2 == 0.5:
		return ".05/0.5"
	case c.CPU1 == 0.05 && c.CPU2 == 1.0:
		return ".05/1.0"
	case c.CPU1 == 0.10 && c.CPU2 == 1.0:
		return ".10/1.0"
	case c.CPU1 == 0.10 && c.CPU2 == 2.0:
		return ".10/2.0"
	case c.CPU1 == 0.50 && c.CPU2 == 2.0:
		return ".50/2.0"
	case c.CPU1 == 0.50 && c.CPU2 == 2.5:
		return ".50/2.5"
	default:
		return ""
	}
}

// PaperCPURatios returns the six cpu1/cpu2 rows of Tables 5 and 6.
func PaperCPURatios() []CPURatio {
	return []CPURatio{
		{CPU1: 0.05, CPU2: 0.5},
		{CPU1: 0.05, CPU2: 1.0},
		{CPU1: 0.10, CPU2: 1.0},
		{CPU1: 0.10, CPU2: 2.0},
		{CPU1: 0.50, CPU2: 2.0},
		{CPU1: 0.50, CPU2: 2.5},
	}
}

// PaperLoadMatrices returns the six load distributions L heading the
// columns of Tables 5 and 6 (row 1 = class 1 counts per site, row 2 =
// class 2 counts per site).
func PaperLoadMatrices() []LoadMatrix {
	return []LoadMatrix{
		{{1, 1, 0, 0}, {0, 0, 1, 1}},
		{{1, 1, 1, 0}, {0, 0, 0, 1}},
		{{2, 1, 0, 0}, {0, 0, 1, 1}},
		{{2, 1, 1, 0}, {0, 0, 0, 1}},
		{{2, 1, 2, 0}, {0, 0, 0, 1}},
		{{2, 1, 1, 0}, {0, 1, 1, 2}},
	}
}
