package optimal

import (
	"math"
	"testing"
)

func TestTieBreakString(t *testing.T) {
	for tb, want := range map[TieBreak]string{
		TieAverage: "average", TieFirst: "first", TieBest: "best",
		TieWorst: "worst", TieBreak(0): "unknown",
	} {
		if tb.String() != want {
			t.Errorf("TieBreak(%d).String() = %q, want %q", tb, tb.String(), want)
		}
	}
}

func TestTieBreakOrdering(t *testing.T) {
	// For any arrival: best <= average <= worst, and first lies between
	// best and worst.
	for _, ratio := range PaperCPURatios() {
		p := PaperParams(ratio.CPU1, ratio.CPU2)
		for _, l := range PaperLoadMatrices() {
			for class := 0; class < 2; class++ {
				a, err := Evaluate(p, l, class)
				if err != nil {
					t.Fatal(err)
				}
				wb, _ := a.BNQMetrics(TieBest)
				wa, _ := a.BNQMetrics(TieAverage)
				ww, _ := a.BNQMetrics(TieWorst)
				wf, _ := a.BNQMetrics(TieFirst)
				if wb > wa+1e-12 || wa > ww+1e-12 {
					t.Fatalf("best %v <= average %v <= worst %v violated", wb, wa, ww)
				}
				if wf < wb-1e-12 || wf > ww+1e-12 {
					t.Fatalf("first %v outside [best %v, worst %v]", wf, wb, ww)
				}
			}
		}
	}
}

func TestTieBreakDefaultMatchesEvaluate(t *testing.T) {
	a, err := Evaluate(PaperParams(0.05, 1.0), PaperLoadMatrices()[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	w, f := a.BNQMetrics(TieAverage)
	if w != a.WaitBNQ || f != a.FairBNQ {
		t.Error("TieAverage does not match Evaluate's stored metrics")
	}
	if a.WIFWith(TieAverage) != a.WIF() || a.FIFWith(TieAverage) != a.FIF() {
		t.Error("factor helpers disagree with defaults")
	}
}

func TestTieBreakSpreadOnAllTiedMatrix(t *testing.T) {
	// L2 = [[1,1,1,0],[0,0,0,1]] ties every site; the tie-break choice
	// should swing WIF substantially there — the sensitivity behind the
	// Tables 5/6 divergent cells.
	a, err := Evaluate(PaperParams(0.05, 0.5), PaperLoadMatrices()[1], 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.BNQSites) != 4 {
		t.Fatalf("expected all-tied BNQ, got %v", a.BNQSites)
	}
	spread := a.WIFWith(TieWorst) - a.WIFWith(TieBest)
	if spread < 0.1 {
		t.Errorf("tie-break WIF spread = %v, expected substantial (> 0.1)", spread)
	}
	if a.WIFWith(TieBest) > 1e-9 {
		t.Errorf("charitable tie-break should reach the optimum (WIF %v)", a.WIFWith(TieBest))
	}
}

func TestTieBreakNonTiedMatrixInsensitive(t *testing.T) {
	// L4 = [[2,1,1,0],[0,0,0,1]]: sites 1-3 tie but site 0 does not; the
	// spread exists yet stays smaller than the fully-tied case... for
	// WIF specifically verify worst >= first >= best holds with real
	// separation available.
	a, err := Evaluate(PaperParams(0.05, 1.0), PaperLoadMatrices()[3], 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.BNQSites) != 3 {
		t.Fatalf("BNQ sites = %v, want 3 tied", a.BNQSites)
	}
	if math.IsNaN(a.WIFWith(TieFirst)) {
		t.Error("NaN WIF")
	}
}
