// Package optimal reproduces the paper's Section 3 study of optimal
// single-allocation decisions. For an arrival A(L, i) — a class-i query
// arriving at a system whose load distribution is the matrix L — it
// evaluates every candidate allocation with exact MVA, locates the
// optimal one, and computes the Waiting Improvement Factor (WIF, Table 5)
// and Fairness Improvement Factor (FIF, Table 6) relative to the
// "balance the number of queries" (BNQ) strategy.
//
// As in the paper, think times and read counts are taken as large:
// each site is a saturated closed network whose queries cycle through its
// disks and CPU forever, and metrics are per cycle.
package optimal

import (
	"fmt"
	"math"

	"dqalloc/internal/mva"
)

// Params fixes the site hardware and per-cycle class demands for the
// study (the paper uses 4 sites, 2 disks, disk_time 1, and a grid of
// per-page CPU demand pairs).
type Params struct {
	// NumSites is the number of candidate DB sites.
	NumSites int
	// NumDisks is the number of disks per site.
	NumDisks int
	// DiskTime is the per-cycle disk demand (one page access per cycle).
	DiskTime float64
	// PageCPU is the per-cycle CPU demand of each class.
	PageCPU []float64
}

// Validate reports the first parameter error, if any.
func (p Params) Validate() error {
	switch {
	case p.NumSites < 1:
		return fmt.Errorf("optimal: NumSites %d < 1", p.NumSites)
	case p.NumDisks < 1:
		return fmt.Errorf("optimal: NumDisks %d < 1", p.NumDisks)
	case p.DiskTime <= 0:
		return fmt.Errorf("optimal: DiskTime %v must be positive", p.DiskTime)
	case len(p.PageCPU) == 0:
		return fmt.Errorf("optimal: no classes")
	}
	for i, c := range p.PageCPU {
		if c < 0 {
			return fmt.Errorf("optimal: negative CPU demand for class %d", i)
		}
	}
	return nil
}

// cycleDemand returns class r's total service demand per cycle.
func (p Params) cycleDemand(r int) float64 { return p.PageCPU[r] + p.DiskTime }

// LoadMatrix is the paper's L = [l_{i,j}]: the number of class-i queries
// being served at site j. Rows are classes, columns sites.
type LoadMatrix [][]int

// Validate checks the matrix shape against the parameters.
func (l LoadMatrix) Validate(p Params) error {
	if len(l) != len(p.PageCPU) {
		return fmt.Errorf("optimal: load matrix has %d classes, params have %d", len(l), len(p.PageCPU))
	}
	for i, row := range l {
		if len(row) != p.NumSites {
			return fmt.Errorf("optimal: class %d row has %d sites, want %d", i, len(row), p.NumSites)
		}
		for j, v := range row {
			if v < 0 {
				return fmt.Errorf("optimal: negative load l[%d][%d]", i, j)
			}
		}
	}
	return nil
}

// SiteTotals returns the query-count vector N = [n_1..n_S].
func (l LoadMatrix) SiteTotals() []int {
	if len(l) == 0 {
		return nil
	}
	totals := make([]int, len(l[0]))
	for _, row := range l {
		for j, v := range row {
			totals[j] += v
		}
	}
	return totals
}

// ClassTotals returns the per-class query counts across all sites.
func (l LoadMatrix) ClassTotals() []int {
	totals := make([]int, len(l))
	for i, row := range l {
		for _, v := range row {
			totals[i] += v
		}
	}
	return totals
}

// QueryDifference returns the paper's QD: max |n_i − n_j| over sites.
func (l LoadMatrix) QueryDifference() int {
	totals := l.SiteTotals()
	lo, hi := totals[0], totals[0]
	for _, v := range totals[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}

// Outcome holds the per-cycle metrics of allocating the arrival to one
// candidate site.
type Outcome struct {
	// Site is the candidate execution site.
	Site int
	// ArrivalWait is the new query's expected waiting time per cycle.
	ArrivalWait float64
	// ArrivalResponse is the new query's expected residence time per cycle.
	ArrivalResponse float64
	// Fairness is the system-wide |Ŵ_1 − Ŵ_2| after this allocation.
	Fairness float64
}

// TieBreak selects how W̄_BNQ and F_BNQ are derived when several sites
// tie on the minimal query count. The paper never specifies its
// convention, and the all-tied cells of Tables 5–6 are sensitive to it;
// exposing the alternatives quantifies that sensitivity (see
// EXPERIMENTS.md).
type TieBreak int

const (
	// TieAverage averages the metric over all tied sites — the default,
	// modelling a BNQ that picks uniformly among minima.
	TieAverage TieBreak = iota + 1
	// TieFirst always picks the lowest-indexed tied site.
	TieFirst
	// TieBest charitably picks the tied site with the best metric value.
	TieBest
	// TieWorst adversarially picks the tied site with the worst value.
	TieWorst
)

// String returns the convention name.
func (tb TieBreak) String() string {
	switch tb {
	case TieAverage:
		return "average"
	case TieFirst:
		return "first"
	case TieBest:
		return "best"
	case TieWorst:
		return "worst"
	default:
		return "unknown"
	}
}

// Analysis is the full evaluation of one arrival A(L, i).
type Analysis struct {
	// Class is the arriving query's class.
	Class int
	// Outcomes holds one entry per candidate site.
	Outcomes []Outcome
	// BNQSites are the sites the minimal-QD (fewest queries) strategy
	// may choose; metrics for BNQ average over them.
	BNQSites []int
	// WaitBNQ and WaitOpt are W̄_BNQ(L,i) and W̄_OPT(L,i).
	WaitBNQ, WaitOpt float64
	// FairBNQ and FairOpt are F_BNQ(L,i) and F_OPT(L,i).
	FairBNQ, FairOpt float64
	// OptWaitSite and OptFairSite are the allocations achieving WaitOpt
	// and FairOpt (ties to the lowest index).
	OptWaitSite, OptFairSite int
}

// WIF returns the Waiting Improvement Factor
// (W̄_BNQ − W̄_OPT) / W̄_BNQ, zero when BNQ's waiting is zero.
func (a *Analysis) WIF() float64 {
	if a.WaitBNQ == 0 {
		return 0
	}
	return (a.WaitBNQ - a.WaitOpt) / a.WaitBNQ
}

// FIF returns the Fairness Improvement Factor
// (F_BNQ − F_OPT) / F_BNQ, zero when BNQ's unfairness is zero.
func (a *Analysis) FIF() float64 {
	if a.FairBNQ == 0 {
		return 0
	}
	return (a.FairBNQ - a.FairOpt) / a.FairBNQ
}

// BNQMetrics recomputes W̄_BNQ and F_BNQ under an alternative tie-break
// convention (Evaluate's stored values use TieAverage).
func (a *Analysis) BNQMetrics(tb TieBreak) (wait, fair float64) {
	switch tb {
	case TieFirst:
		o := a.Outcomes[a.BNQSites[0]]
		return o.ArrivalWait, o.Fairness
	case TieBest:
		wait, fair = math.Inf(1), math.Inf(1)
		for _, j := range a.BNQSites {
			wait = math.Min(wait, a.Outcomes[j].ArrivalWait)
			fair = math.Min(fair, a.Outcomes[j].Fairness)
		}
		return wait, fair
	case TieWorst:
		for _, j := range a.BNQSites {
			wait = math.Max(wait, a.Outcomes[j].ArrivalWait)
			fair = math.Max(fair, a.Outcomes[j].Fairness)
		}
		return wait, fair
	default:
		return a.WaitBNQ, a.FairBNQ
	}
}

// WIFWith and FIFWith return the improvement factors under an
// alternative tie-break convention.
func (a *Analysis) WIFWith(tb TieBreak) float64 {
	wait, _ := a.BNQMetrics(tb)
	if wait == 0 {
		return 0
	}
	return (wait - a.WaitOpt) / wait
}

// FIFWith is the FIF analogue of WIFWith.
func (a *Analysis) FIFWith(tb TieBreak) float64 {
	_, fair := a.BNQMetrics(tb)
	if fair == 0 {
		return 0
	}
	return (fair - a.FairOpt) / fair
}

// Evaluate analyzes the arrival of a class-`class` query at a system with
// load distribution L, trying every candidate site.
func Evaluate(p Params, l LoadMatrix, class int) (*Analysis, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := l.Validate(p); err != nil {
		return nil, err
	}
	if class < 0 || class >= len(p.PageCPU) {
		return nil, fmt.Errorf("optimal: class %d out of range", class)
	}

	a := &Analysis{Class: class}
	for j := 0; j < p.NumSites; j++ {
		o, err := evaluateAllocation(p, l, class, j)
		if err != nil {
			return nil, err
		}
		a.Outcomes = append(a.Outcomes, o)
	}

	// BNQ candidates: sites with the minimal query count.
	totals := l.SiteTotals()
	minTotal := totals[0]
	for _, v := range totals[1:] {
		if v < minTotal {
			minTotal = v
		}
	}
	for j, v := range totals {
		if v == minTotal {
			a.BNQSites = append(a.BNQSites, j)
		}
	}

	for _, j := range a.BNQSites {
		a.WaitBNQ += a.Outcomes[j].ArrivalWait
		a.FairBNQ += a.Outcomes[j].Fairness
	}
	a.WaitBNQ /= float64(len(a.BNQSites))
	a.FairBNQ /= float64(len(a.BNQSites))

	a.WaitOpt, a.FairOpt = math.Inf(1), math.Inf(1)
	for j, o := range a.Outcomes {
		if o.ArrivalWait < a.WaitOpt {
			a.WaitOpt = o.ArrivalWait
			a.OptWaitSite = j
		}
		if o.Fairness < a.FairOpt {
			a.FairOpt = o.Fairness
			a.OptFairSite = j
		}
	}
	return a, nil
}

// evaluateAllocation computes the arrival's waiting time and the
// system-wide fairness when the new class-`class` query is placed at site
// `target`.
func evaluateAllocation(p Params, l LoadMatrix, class, target int) (Outcome, error) {
	nClasses := len(p.PageCPU)

	// Per-site populations after the allocation.
	waits := make([][]float64, p.NumSites) // [site][class] waiting per cycle
	for j := 0; j < p.NumSites; j++ {
		pop := make([]int, nClasses)
		for r := 0; r < nClasses; r++ {
			pop[r] = l[r][j]
		}
		if j == target {
			pop[class]++
		}
		sol, err := solveSite(p, pop)
		if err != nil {
			return Outcome{}, err
		}
		w := make([]float64, nClasses)
		for r := 0; r < nClasses; r++ {
			if pop[r] > 0 {
				w[r] = sol.WaitingTime(r)
			}
		}
		waits[j] = w
	}

	o := Outcome{Site: target, ArrivalWait: waits[target][class]}
	o.ArrivalResponse = o.ArrivalWait + p.cycleDemand(class)

	// System-wide normalized expected waiting per class: the average over
	// every query of that class (including the arrival) of its per-cycle
	// waiting divided by its per-cycle demand.
	norm := make([]float64, nClasses)
	counts := make([]int, nClasses)
	for j := 0; j < p.NumSites; j++ {
		for r := 0; r < nClasses; r++ {
			c := l[r][j]
			if j == target && r == class {
				c++
			}
			if c == 0 {
				continue
			}
			norm[r] += float64(c) * waits[j][r] / p.cycleDemand(r)
			counts[r] += c
		}
	}
	for r := 0; r < nClasses; r++ {
		if counts[r] > 0 {
			norm[r] /= float64(counts[r])
		}
	}
	if nClasses >= 2 {
		o.Fairness = math.Abs(norm[0] - norm[1])
	}
	return o, nil
}

// solveSite runs exact MVA on one site: a PS CPU plus NumDisks FCFS disks
// with equal visit probabilities.
func solveSite(p Params, pop []int) (*mva.Solution, error) {
	net := mva.NewNetwork(len(p.PageCPU))
	if err := net.AddStation("cpu", mva.Queueing, p.PageCPU...); err != nil {
		return nil, err
	}
	perDisk := make([]float64, len(p.PageCPU))
	for r := range perDisk {
		perDisk[r] = p.DiskTime / float64(p.NumDisks)
	}
	for d := 0; d < p.NumDisks; d++ {
		if err := net.AddStation(fmt.Sprintf("disk%d", d), mva.Queueing, perDisk...); err != nil {
			return nil, err
		}
	}
	return net.Solve(pop)
}
