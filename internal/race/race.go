//go:build race

// Package race reports whether the race detector is compiled in, so
// allocation-regression tests can skip numeric assertions that race
// instrumentation would inflate.
package race

// Enabled is true when the binary was built with -race.
const Enabled = true
