package dquery

import (
	"testing"

	"dqalloc/internal/loadinfo"
	"dqalloc/internal/rng"
)

func TestRelationValidate(t *testing.T) {
	ok := Relation{Name: "A", Pages: 10, Selectivity: 0.5, Copies: []int{0, 2}}
	if err := ok.Validate(4); err != nil {
		t.Errorf("valid relation rejected: %v", err)
	}
	bad := []Relation{
		{Name: "p", Pages: 0, Selectivity: 0.5, Copies: []int{0}},
		{Name: "s0", Pages: 10, Selectivity: 0, Copies: []int{0}},
		{Name: "s2", Pages: 10, Selectivity: 1.5, Copies: []int{0}},
		{Name: "nc", Pages: 10, Selectivity: 0.5},
		{Name: "oor", Pages: 10, Selectivity: 0.5, Copies: []int{7}},
		{Name: "dup", Pages: 10, Selectivity: 0.5, Copies: []int{1, 1}},
		{Name: "uns", Pages: 10, Selectivity: 0.5, Copies: []int{2, 0}},
	}
	for _, r := range bad {
		if r.Validate(4) == nil {
			t.Errorf("invalid relation %q accepted", r.Name)
		}
	}
}

func TestOutPages(t *testing.T) {
	r := Relation{Pages: 20, Selectivity: 0.3}
	if r.OutPages() != 6 {
		t.Errorf("OutPages = %d, want 6", r.OutPages())
	}
	tiny := Relation{Pages: 2, Selectivity: 0.1}
	if tiny.OutPages() != 1 {
		t.Errorf("OutPages floor = %d, want 1", tiny.OutPages())
	}
}

func TestPlanValidate(t *testing.T) {
	rels := []Relation{
		{Name: "A", Pages: 10, Selectivity: 0.5, Copies: []int{0, 1}},
		{Name: "B", Pages: 10, Selectivity: 0.5, Copies: []int{2}},
	}
	good := Plan{ScanSites: []int{0, 2}, JoinSites: []int{3}}
	if err := good.Validate(rels, 4); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	bad := []Plan{
		{ScanSites: []int{0}, JoinSites: []int{3}},    // scan arity
		{ScanSites: []int{0, 2}, JoinSites: nil},      // join arity
		{ScanSites: []int{3, 2}, JoinSites: []int{0}}, // no copy
		{ScanSites: []int{0, 2}, JoinSites: []int{9}}, // join site range
	}
	for i, p := range bad {
		if p.Validate(rels, 4) == nil {
			t.Errorf("bad plan %d accepted", i)
		}
	}
}

func TestStaticStrategyDeterministic(t *testing.T) {
	s, err := NewStrategy(Static, nil)
	if err != nil {
		t.Fatal(err)
	}
	rels := []Relation{
		{Name: "A", Pages: 20, Selectivity: 0.5, Copies: []int{0, 1}},
		{Name: "B", Pages: 10, Selectivity: 0.5, Copies: []int{2, 3}},
	}
	env := &PlanEnv{NumSites: 4, NumDisks: 2, DiskTime: 1, JoinSelectivity: 0.5}
	p1 := s.Plan(rels, 0, env)
	p2 := s.Plan(rels, 3, env)
	if p1.ScanSites[0] != p2.ScanSites[0] || p1.JoinSites[0] != p2.JoinSites[0] {
		t.Errorf("static plans differ across arrivals: %+v vs %+v", p1, p2)
	}
	// Larger output (A: 10 pages out) hosts the join.
	if p1.JoinSites[0] != p1.ScanSites[0] {
		t.Errorf("join at %d, want larger input's site %d", p1.JoinSites[0], p1.ScanSites[0])
	}
}

func TestStaticStrategyColocates(t *testing.T) {
	s, err := NewStrategy(Static, nil)
	if err != nil {
		t.Fatal(err)
	}
	rels := []Relation{
		{Name: "A", Pages: 20, Selectivity: 0.5, Copies: []int{0, 1}},
		{Name: "B", Pages: 10, Selectivity: 0.5, Copies: []int{1, 2}},
	}
	p := s.Plan(rels, 0, &PlanEnv{NumSites: 4, NumDisks: 2, DiskTime: 1, JoinSelectivity: 0.5})
	if p.ScanSites[0] != 1 || p.ScanSites[1] != 1 || p.JoinSites[0] != 1 {
		t.Errorf("common-site plan = %+v, want everything at site 1", p)
	}
}

// loadedView pins specific per-site counts for strategy tests.
type loadedView struct{ io, cpu []int }

func (v loadedView) NumQueries(s int) int    { return v.io[s] + v.cpu[s] }
func (v loadedView) NumIOQueries(s int) int  { return v.io[s] }
func (v loadedView) NumCPUQueries(s int) int { return v.cpu[s] }

var _ loadinfo.View = loadedView{}

func idleEnv(sites int) *PlanEnv {
	return &PlanEnv{
		View:            loadedView{io: make([]int, sites), cpu: make([]int, sites)},
		NumSites:        sites,
		NumDisks:        2,
		DiskTime:        1,
		ScanCPUTime:     0.05,
		JoinCPUTime:     1,
		PageNetTime:     0.1,
		JoinSelectivity: 0.5,
	}
}

func TestDynamicStrategyAvoidsLoadedCopy(t *testing.T) {
	s, err := NewStrategy(Dynamic, nil)
	if err != nil {
		t.Fatal(err)
	}
	rels := []Relation{
		{Name: "A", Pages: 20, Selectivity: 0.3, Copies: []int{0, 1}},
		{Name: "B", Pages: 20, Selectivity: 0.3, Copies: []int{2, 3}},
	}
	env := idleEnv(4)
	env.View = loadedView{io: []int{9, 0, 0, 9}, cpu: []int{0, 0, 0, 0}}
	p := s.Plan(rels, 0, env)
	if p.ScanSites[0] != 1 {
		t.Errorf("scan A at loaded site %d, want 1", p.ScanSites[0])
	}
	if p.ScanSites[1] != 2 {
		t.Errorf("scan B at loaded site %d, want 2", p.ScanSites[1])
	}
}

func TestDynamicJoinSiteBalancesShippingAndLoad(t *testing.T) {
	s, err := NewStrategy(Dynamic, nil)
	if err != nil {
		t.Fatal(err)
	}
	rels := []Relation{
		{Name: "A", Pages: 20, Selectivity: 0.3, Copies: []int{0}},
		{Name: "B", Pages: 20, Selectivity: 0.3, Copies: []int{1}},
	}
	env := idleEnv(4)
	p := s.Plan(rels, 3, env)
	if p.JoinSites[0] != 0 && p.JoinSites[0] != 1 {
		t.Errorf("idle-system join at %d, want a scan site", p.JoinSites[0])
	}
	// Heavily load both scan sites' CPUs: the join should move off them.
	env.View = loadedView{io: make([]int, 4), cpu: []int{9, 9, 0, 0}}
	p = s.Plan(rels, 3, env)
	if p.JoinSites[0] == 0 || p.JoinSites[0] == 1 {
		t.Errorf("join stayed at CPU-loaded site %d", p.JoinSites[0])
	}
}

func TestThreeWayPlansLegal(t *testing.T) {
	rels := []Relation{
		{Name: "A", Pages: 20, Selectivity: 0.3, Copies: []int{0, 1}},
		{Name: "B", Pages: 15, Selectivity: 0.4, Copies: []int{2, 3}},
		{Name: "C", Pages: 10, Selectivity: 0.5, Copies: []int{4, 5}},
	}
	env := idleEnv(6)
	for _, kind := range []StrategyKind{Static, Dynamic, RandomPlan} {
		s, err := NewStrategy(kind, rng.NewStream(1))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			p := s.Plan(rels, 0, env)
			if err := p.Validate(rels, 6); err != nil {
				t.Fatalf("%v produced illegal 3-way plan: %v", kind, err)
			}
			if len(p.JoinSites) != 2 {
				t.Fatalf("%v: %d join stages, want 2", kind, len(p.JoinSites))
			}
		}
	}
}

func TestStageOutEstimate(t *testing.T) {
	rels := []Relation{
		{Name: "A", Pages: 20, Selectivity: 0.5, Copies: []int{0}}, // out 10
		{Name: "B", Pages: 20, Selectivity: 0.5, Copies: []int{1}}, // out 10
		{Name: "C", Pages: 20, Selectivity: 0.5, Copies: []int{2}}, // out 10
	}
	env := idleEnv(4)
	// Stage 0: 0.5·(10+10) = 10; stage 1: 0.5·(10+10) = 10.
	if got := env.stageOutEstimate(rels, 0); got != 10 {
		t.Errorf("stage 0 out = %d, want 10", got)
	}
	if got := env.stageOutEstimate(rels, 1); got != 10 {
		t.Errorf("stage 1 out = %d, want 10", got)
	}
}

func TestRandomStrategyLegalPlans(t *testing.T) {
	s, err := NewStrategy(RandomPlan, rng.NewStream(3))
	if err != nil {
		t.Fatal(err)
	}
	rels := []Relation{
		{Name: "A", Pages: 20, Selectivity: 0.3, Copies: []int{0, 2}},
		{Name: "B", Pages: 20, Selectivity: 0.3, Copies: []int{1, 3}},
	}
	for i := 0; i < 200; i++ {
		p := s.Plan(rels, 0, idleEnv(4))
		if err := p.Validate(rels, 4); err != nil {
			t.Fatal(err)
		}
	}
}

func TestNewStrategyErrors(t *testing.T) {
	if _, err := NewStrategy(RandomPlan, nil); err == nil {
		t.Error("RANDOM without stream accepted")
	}
	if _, err := NewStrategy(StrategyKind(99), nil); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestStrategyKindString(t *testing.T) {
	if Static.String() != "STATIC" || Dynamic.String() != "DYNAMIC" ||
		RandomPlan.String() != "RANDOM" || StrategyKind(0).String() != "unknown" {
		t.Error("StrategyKind.String mismatch")
	}
}

func TestConfigValidation(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.NumSites = 0 },
		func(c *Config) { c.NumDisks = 0 },
		func(c *Config) { c.MPL = 0 },
		func(c *Config) { c.DiskTime = 0 },
		func(c *Config) { c.DiskTimeDev = 1 },
		func(c *Config) { c.ThinkTime = -1 },
		func(c *Config) { c.ScanCPUTime = -1 },
		func(c *Config) { c.PageNetTime = -1 },
		func(c *Config) { c.Relations = c.Relations[:1] },
		func(c *Config) { c.HotProb = 2 },
		func(c *Config) { c.Measure = 0 },
		func(c *Config) { c.Relations[0].Copies = []int{99} },
		func(c *Config) { c.RelationsPerQuery = 1 },
		func(c *Config) { c.RelationsPerQuery = 99 },
		func(c *Config) { c.JoinSelectivity = 1.5 },
	}
	for i, mutate := range mutations {
		cfg := Default()
		mutate(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func runJoin(t *testing.T, kind StrategyKind, hot float64, width int) Results {
	t.Helper()
	cfg := Default()
	cfg.Strategy = kind
	cfg.HotProb = hot
	cfg.RelationsPerQuery = width
	cfg.Warmup = 2000
	cfg.Measure = 20000
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys.Run()
}

func TestJoinSystemCompletes(t *testing.T) {
	for _, kind := range []StrategyKind{Static, Dynamic, RandomPlan} {
		r := runJoin(t, kind, 0.5, 2)
		if r.Completed == 0 {
			t.Errorf("%v: no joins completed", kind)
		}
		if r.MeanResponse <= 0 {
			t.Errorf("%v: degenerate response %v", kind, r.MeanResponse)
		}
		if r.P95Response < r.MeanResponse {
			t.Errorf("%v: p95 %v below mean %v", kind, r.P95Response, r.MeanResponse)
		}
	}
}

func TestThreeWayJoinCompletes(t *testing.T) {
	for _, kind := range []StrategyKind{Static, Dynamic} {
		r := runJoin(t, kind, 0.3, 3)
		if r.Completed == 0 {
			t.Errorf("%v: no 3-way joins completed", kind)
		}
	}
}

func TestWiderJoinsTakeLonger(t *testing.T) {
	two := runJoin(t, Dynamic, 0, 2)
	three := runJoin(t, Dynamic, 0, 3)
	if three.MeanResponse <= two.MeanResponse {
		t.Errorf("3-way joins (resp %v) not slower than 2-way (%v)",
			three.MeanResponse, two.MeanResponse)
	}
}

func TestDynamicBeatsStaticOnHotSpot(t *testing.T) {
	// The Section-1.1 scenario: everyone submits (nearly) the same query.
	// The static plan convoys on one site; dynamic allocation spreads the
	// subqueries.
	static := runJoin(t, Static, 0.9, 2)
	dynamic := runJoin(t, Dynamic, 0.9, 2)
	if dynamic.MeanResponse >= static.MeanResponse {
		t.Errorf("dynamic response %v not below static %v on hot workload",
			dynamic.MeanResponse, static.MeanResponse)
	}
	// Convoy indicator: static's hottest CPU far above its mean.
	if static.MaxCPUUtil < 1.5*static.CPUUtil {
		t.Errorf("static hot-site CPU %v not a convoy (mean %v)",
			static.MaxCPUUtil, static.CPUUtil)
	}
	if dynamic.MaxCPUUtil >= static.MaxCPUUtil {
		t.Errorf("dynamic hottest site %v not cooler than static %v",
			dynamic.MaxCPUUtil, static.MaxCPUUtil)
	}
}

func TestDynamicBeatsStaticOnThreeWayHotSpot(t *testing.T) {
	static := runJoin(t, Static, 0.9, 3)
	dynamic := runJoin(t, Dynamic, 0.9, 3)
	if dynamic.MeanResponse >= static.MeanResponse {
		t.Errorf("3-way: dynamic response %v not below static %v",
			dynamic.MeanResponse, static.MeanResponse)
	}
}

func TestDynamicBeatsRandomOnUniform(t *testing.T) {
	random := runJoin(t, RandomPlan, 0, 2)
	dynamic := runJoin(t, Dynamic, 0, 2)
	if dynamic.MeanResponse >= random.MeanResponse {
		t.Errorf("dynamic response %v not below random %v", dynamic.MeanResponse, random.MeanResponse)
	}
}

func TestJoinSystemDeterministic(t *testing.T) {
	a := runJoin(t, Dynamic, 0.5, 2)
	b := runJoin(t, Dynamic, 0.5, 2)
	if a.MeanResponse != b.MeanResponse || a.Completed != b.Completed {
		t.Error("same-seed join runs differ")
	}
}
