// Package dquery realizes the paper's eventual goal (Section 6.2): "to
// integrate these ideas into an actual distributed query processing
// algorithm". It models distributed left-deep join queries that are
// decomposed — exactly as the introduction describes — into subqueries
// (one scan per base relation plus a join per stage) and data moves,
// over partially replicated base relations, and compares the classic
// static plan choice (minimize data shipped, ignore load) against
// dynamic, load-aware subquery allocation.
//
// The static strategy reproduces the failure mode the paper calls out in
// Section 1.1: "if everyone were to submit the same query ... the same
// execution plan will be selected for each query, and only the few sites
// chosen for this plan will be busy."
package dquery

import (
	"fmt"

	"dqalloc/internal/workload"
)

// Relation is one base relation of the distributed database.
type Relation struct {
	// Name labels the relation in reports.
	Name string
	// Pages is the number of disk pages a full scan reads.
	Pages int
	// Selectivity is the fraction of pages surviving the scan and shipped
	// to the join site.
	Selectivity float64
	// Copies lists the sites storing a copy, sorted ascending.
	Copies []int
}

// Validate reports the first relation error, if any.
func (r Relation) Validate(numSites int) error {
	switch {
	case r.Pages < 1:
		return fmt.Errorf("dquery: relation %q has %d pages", r.Name, r.Pages)
	case r.Selectivity <= 0 || r.Selectivity > 1:
		return fmt.Errorf("dquery: relation %q selectivity %v outside (0,1]", r.Name, r.Selectivity)
	case len(r.Copies) == 0:
		return fmt.Errorf("dquery: relation %q has no copies", r.Name)
	}
	for i, s := range r.Copies {
		if s < 0 || s >= numSites {
			return fmt.Errorf("dquery: relation %q copy at invalid site %d", r.Name, s)
		}
		if i > 0 && r.Copies[i-1] >= s {
			return fmt.Errorf("dquery: relation %q copies not sorted/distinct", r.Name)
		}
	}
	return nil
}

// OutPages returns the number of pages the scan ships to the join site.
func (r Relation) OutPages() int {
	return clampPages(float64(r.Pages) * r.Selectivity)
}

// clampPages rounds a page count and floors it at one page.
func clampPages(v float64) int {
	out := int(v + 0.5)
	if out < 1 {
		out = 1
	}
	return out
}

// Plan is the full set of allocation decisions for one left-deep join
// query over n relations: one scan site per relation and one join site
// per stage (stage j joins the previous stage's output — or scan 0 for
// j = 0 — with scan j+1).
type Plan struct {
	ScanSites []int
	JoinSites []int
}

// Validate checks the plan against the catalog.
func (p Plan) Validate(rels []Relation, numSites int) error {
	if len(p.ScanSites) != len(rels) {
		return fmt.Errorf("dquery: plan has %d scan sites for %d relations", len(p.ScanSites), len(rels))
	}
	if len(p.JoinSites) != len(rels)-1 {
		return fmt.Errorf("dquery: plan has %d join sites for %d relations", len(p.JoinSites), len(rels))
	}
	for i, s := range p.ScanSites {
		if !siteIn(s, rels[i].Copies) {
			return fmt.Errorf("dquery: scan of %q planned at site %d without a copy", rels[i].Name, s)
		}
	}
	for j, s := range p.JoinSites {
		if s < 0 || s >= numSites {
			return fmt.Errorf("dquery: join stage %d at invalid site %d", j, s)
		}
	}
	return nil
}

// JoinQuery is one distributed query joining two or more base relations
// in left-deep order.
type JoinQuery struct {
	ID   uint64
	Home int
	// Relations indexes the catalog, in join order.
	Relations []int
	// Plan holds the chosen sites.
	Plan Plan

	// SubmitTime and bookkeeping for metrics.
	SubmitTime  float64
	ExecService float64 // disk+CPU service received across all subqueries

	// stageWait counts the inputs each join stage still awaits (2 for
	// stage 0; the later stages await the previous output plus one scan).
	stageWait []int
	// stageOut is each stage's output page count (filled as it is known).
	stageOut []int
	// scanOf maps a scan subquery to its relation position.
	scanOf map[*workload.Query]int
	// joinOf maps a join subquery to its stage.
	joinOf map[*workload.Query]int
}
