package dquery

import (
	"fmt"

	"dqalloc/internal/loadinfo"
	"dqalloc/internal/network"
	"dqalloc/internal/queue"
	"dqalloc/internal/rng"
	"dqalloc/internal/sim"
	"dqalloc/internal/site"
	"dqalloc/internal/stats"
	"dqalloc/internal/workload"
)

// Config parameterizes one distributed-join simulation.
type Config struct {
	// NumSites, NumDisks and MPL mirror the main model's site parameters.
	NumSites int
	NumDisks int
	MPL      int

	// DiskTime, DiskTimeDev and ThinkTime mirror the main model.
	DiskTime    float64
	DiskTimeDev float64
	ThinkTime   float64

	// ScanCPUTime and JoinCPUTime are per-page CPU demands: scans are
	// I/O-bound, joins CPU-bound, giving the two-class structure of the
	// paper's workload.
	ScanCPUTime float64
	JoinCPUTime float64
	// PageNetTime is the network time to ship one page.
	PageNetTime float64

	// Relations is the base-relation catalog; queries join
	// RelationsPerQuery distinct relations in left-deep order.
	Relations []Relation
	// RelationsPerQuery is the join width (2 = the classic two-way join;
	// larger values exercise the full pipeline). Zero means 2.
	RelationsPerQuery int
	// JoinSelectivity is the output fraction of each join stage (the
	// fraction of combined input pages surviving). Zero means 0.5.
	JoinSelectivity float64
	// HotProb is the probability a query joins the first
	// RelationsPerQuery relations of the catalog — the "everyone submits
	// the same query" hot spot of Section 1.1. The rest join a uniformly
	// random distinct set.
	HotProb float64

	// Strategy selects the planning strategy.
	Strategy StrategyKind

	// Seed, Warmup and Measure mirror the main model.
	Seed    uint64
	Warmup  float64
	Measure float64
}

// Default returns a 6-site catalog of eight 20-page relations with two
// copies each (round-robin placement), two-way joins, a half-hot
// workload, and demand parameters matching the main model's two classes.
func Default() Config {
	cfg := Config{
		NumSites:          6,
		NumDisks:          2,
		MPL:               6,
		DiskTime:          1,
		DiskTimeDev:       0.2,
		ThinkTime:         300,
		ScanCPUTime:       0.05,
		JoinCPUTime:       1.0,
		PageNetTime:       0.1,
		RelationsPerQuery: 2,
		JoinSelectivity:   0.5,
		HotProb:           0.5,
		Strategy:          Dynamic,
		Seed:              1,
		Warmup:            3000,
		Measure:           30000,
	}
	for i := 0; i < 8; i++ {
		cfg.Relations = append(cfg.Relations, Relation{
			Name:        fmt.Sprintf("R%d", i),
			Pages:       20,
			Selectivity: 0.3,
			Copies:      sortedPair(i%cfg.NumSites, (i+1)%cfg.NumSites),
		})
	}
	return cfg
}

func sortedPair(a, b int) []int {
	if a < b {
		return []int{a, b}
	}
	return []int{b, a}
}

// width returns the effective relations-per-query.
func (c Config) width() int {
	if c.RelationsPerQuery == 0 {
		return 2
	}
	return c.RelationsPerQuery
}

// joinSel returns the effective join selectivity.
func (c Config) joinSel() float64 {
	if c.JoinSelectivity == 0 {
		return 0.5
	}
	return c.JoinSelectivity
}

// Validate reports the first configuration error, if any.
func (c Config) Validate() error {
	switch {
	case c.NumSites < 1:
		return fmt.Errorf("dquery: NumSites %d < 1", c.NumSites)
	case c.NumDisks < 1:
		return fmt.Errorf("dquery: NumDisks %d < 1", c.NumDisks)
	case c.MPL < 1:
		return fmt.Errorf("dquery: MPL %d < 1", c.MPL)
	case c.DiskTime <= 0:
		return fmt.Errorf("dquery: DiskTime %v must be positive", c.DiskTime)
	case c.DiskTimeDev < 0 || c.DiskTimeDev >= 1:
		return fmt.Errorf("dquery: DiskTimeDev %v outside [0,1)", c.DiskTimeDev)
	case c.ThinkTime < 0:
		return fmt.Errorf("dquery: negative ThinkTime")
	case c.ScanCPUTime < 0 || c.JoinCPUTime < 0:
		return fmt.Errorf("dquery: negative CPU demand")
	case c.PageNetTime < 0:
		return fmt.Errorf("dquery: negative PageNetTime")
	case c.width() < 2:
		return fmt.Errorf("dquery: RelationsPerQuery %d < 2", c.width())
	case len(c.Relations) < c.width():
		return fmt.Errorf("dquery: need at least %d relations, have %d", c.width(), len(c.Relations))
	case c.joinSel() <= 0 || c.joinSel() > 1:
		return fmt.Errorf("dquery: JoinSelectivity %v outside (0,1]", c.joinSel())
	case c.HotProb < 0 || c.HotProb > 1:
		return fmt.Errorf("dquery: HotProb %v outside [0,1]", c.HotProb)
	case c.Warmup < 0 || c.Measure <= 0:
		return fmt.Errorf("dquery: invalid horizons")
	}
	for _, r := range c.Relations {
		if err := r.Validate(c.NumSites); err != nil {
			return err
		}
	}
	return nil
}

// Results holds one distributed-join run's measurements.
type Results struct {
	// Strategy is the planning strategy's name.
	Strategy string
	// Completed counts join queries finishing in the measured window.
	Completed uint64
	// MeanResponse is the mean end-to-end response time of a join query.
	MeanResponse float64
	// P95Response is the 95th percentile response time, read from a
	// log-bucketed histogram with ≤2% relative error per sample.
	//
	// Deprecated name: earlier revisions approximated this from a coarse
	// fixed-range linear histogram that clipped at 2000 time units; the
	// field keeps its name for compatibility but is now a real quantile.
	P95Response float64
	// CPUUtil and DiskUtil are site means; MaxCPUUtil is the hottest
	// site's CPU utilization — the convoy indicator for static plans.
	CPUUtil    float64
	DiskUtil   float64
	MaxCPUUtil float64
	// SubnetUtil is the ring's busy fraction; PagesShipped the total
	// pages moved between sites.
	SubnetUtil   float64
	PagesShipped float64
	// Throughput is completed joins per time unit.
	Throughput float64
}

// System simulates the distributed-join workload. Build with New, run
// once with Run.
type System struct {
	cfg   Config
	sched *sim.Scheduler
	sites []*site.Site
	ring  *network.Ring
	table *loadinfo.Table
	strat Strategy
	env   *PlanEnv

	think   *rng.Stream
	pairs   *rng.Stream
	classes []workload.Class

	ctx    map[*workload.Query]*JoinQuery
	nextID uint64

	measuring bool
	startAt   float64
	responses stats.Welford
	respHist  *stats.LogHistogram
	shipped   float64
}

// New assembles a distributed-join system from cfg.
func New(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &System{cfg: cfg, sched: sim.New(), ctx: make(map[*workload.Query]*JoinQuery)}
	root := rng.NewStream(cfg.Seed)
	s.think = root.Child(1)
	s.pairs = root.Child(2)

	var err error
	s.strat, err = NewStrategy(cfg.Strategy, root.Child(3))
	if err != nil {
		return nil, err
	}

	s.ring = network.NewRing(s.sched, cfg.NumSites, cfg.PageNetTime)
	s.table = loadinfo.NewTable(cfg.NumSites)
	s.env = &PlanEnv{
		View:            s.table,
		NumSites:        cfg.NumSites,
		NumDisks:        cfg.NumDisks,
		DiskTime:        cfg.DiskTime,
		ScanCPUTime:     cfg.ScanCPUTime,
		JoinCPUTime:     cfg.JoinCPUTime,
		PageNetTime:     cfg.PageNetTime,
		JoinSelectivity: cfg.joinSel(),
	}

	s.classes = []workload.Class{
		{Name: "scan", PageCPUTime: cfg.ScanCPUTime, NumReads: 1, MsgLength: 1},
		{Name: "join", PageCPUTime: cfg.JoinCPUTime, NumReads: 1, MsgLength: 1},
	}
	siteCfg := site.Config{
		NumDisks:      cfg.NumDisks,
		DiskTime:      cfg.DiskTime,
		DiskTimeDev:   cfg.DiskTimeDev,
		DiskSelection: queue.SelectRandom,
		Classes:       s.classes,
	}
	s.sites = make([]*site.Site, cfg.NumSites)
	for i := range s.sites {
		s.sites[i], err = site.New(i, s.sched, siteCfg, root.Child(uint64(100+i)), s.onSubqueryDone)
		if err != nil {
			return nil, err
		}
	}
	s.respHist = stats.NewLogHistogram(0.001, 1e7, 0.02)
	return s, nil
}

// Run executes the simulation and returns its measurements.
func (s *System) Run() Results {
	for home := 0; home < s.cfg.NumSites; home++ {
		for t := 0; t < s.cfg.MPL; t++ {
			s.startThink(home)
		}
	}
	if s.cfg.Warmup > 0 {
		s.sched.At(s.cfg.Warmup, s.beginMeasurement)
	} else {
		s.beginMeasurement()
	}
	end := s.cfg.Warmup + s.cfg.Measure
	s.sched.RunUntil(end)
	return s.collect(end)
}

func (s *System) beginMeasurement() {
	now := s.sched.Now()
	s.measuring = true
	s.startAt = now
	for _, st := range s.sites {
		st.ResetStats(now)
	}
	s.ring.ResetStats(now)
}

func (s *System) startThink(home int) {
	s.sched.After(s.think.Exp(s.cfg.ThinkTime), func() { s.submit(home) })
}

// submit samples a relation set, plans it, and launches every scan.
func (s *System) submit(home int) {
	relIdx := s.sampleRelations()
	n := len(relIdx)
	jq := &JoinQuery{
		ID:         s.nextID,
		Home:       home,
		Relations:  relIdx,
		SubmitTime: s.sched.Now(),
		stageWait:  make([]int, n-1),
		stageOut:   make([]int, n-1),
		scanOf:     make(map[*workload.Query]int, n),
		joinOf:     make(map[*workload.Query]int, n-1),
	}
	s.nextID++
	for j := range jq.stageWait {
		jq.stageWait[j] = 2
	}

	rels := s.rels(relIdx)
	plan := s.strat.Plan(rels, home, s.env)
	if err := plan.Validate(rels, s.cfg.NumSites); err != nil {
		panic(fmt.Sprintf("dquery: strategy %s produced an illegal plan: %v", s.strat.Name(), err))
	}
	jq.Plan = plan

	for i := range rels {
		s.launchScan(jq, i, rels[i], plan.ScanSites[i])
	}
}

// rels resolves catalog indexes to relations.
func (s *System) rels(idx []int) []Relation {
	out := make([]Relation, len(idx))
	for i, v := range idx {
		out[i] = s.cfg.Relations[v]
	}
	return out
}

// sampleRelations draws the joined relations: the hot set with
// probability HotProb, otherwise a uniformly random distinct set.
func (s *System) sampleRelations() []int {
	k := s.cfg.width()
	out := make([]int, k)
	if s.pairs.Bernoulli(s.cfg.HotProb) {
		for i := range out {
			out[i] = i
		}
		return out
	}
	perm := s.pairs.Perm(len(s.cfg.Relations))
	copy(out, perm[:k])
	return out
}

// launchScan starts the scan of relation position i at the chosen site.
func (s *System) launchScan(jq *JoinQuery, i int, rel Relation, siteID int) {
	q := &workload.Query{
		Class:      0,
		Home:       jq.Home,
		Exec:       siteID,
		ReadsTotal: rel.Pages,
		EstReads:   float64(rel.Pages),
		EstPageCPU: s.cfg.ScanCPUTime,
	}
	s.ctx[q] = jq
	jq.scanOf[q] = i
	s.table.Assign(siteID, s.classes[0].Bound(s.cfg.DiskTime, s.cfg.NumDisks))
	s.sites[siteID].Execute(q)
}

// onSubqueryDone routes scan and join completions.
func (s *System) onSubqueryDone(q *workload.Query) {
	jq, ok := s.ctx[q]
	if !ok {
		panic("dquery: completion for unknown subquery")
	}
	delete(s.ctx, q)
	jq.ExecService += q.Service
	bound := s.classes[q.Class].Bound(s.cfg.DiskTime, s.cfg.NumDisks)
	s.table.Complete(q.Exec, bound)

	if q.Class == 0 {
		i := jq.scanOf[q]
		delete(jq.scanOf, q)
		s.scanFinished(jq, i, q.Exec)
		return
	}
	stage := jq.joinOf[q]
	delete(jq.joinOf, q)
	s.joinFinished(jq, stage)
}

// scanFinished ships scan i's output to its consuming join stage: scan 0
// feeds stage 0's left input, scan i (i >= 1) feeds stage i-1's right
// input.
func (s *System) scanFinished(jq *JoinQuery, i, fromSite int) {
	stage := 0
	if i >= 1 {
		stage = i - 1
	}
	out := s.cfg.Relations[jq.Relations[i]].OutPages()
	s.deliverInput(jq, stage, fromSite, out)
}

// deliverInput moves `pages` of intermediate data to the stage's join
// site (over the ring when remote) and counts the arrival.
func (s *System) deliverInput(jq *JoinQuery, stage, fromSite, pages int) {
	dest := jq.Plan.JoinSites[stage]
	if fromSite == dest {
		s.inputArrived(jq, stage)
		return
	}
	if s.measuring {
		s.shipped += float64(pages)
	}
	s.ring.Send(network.Message{
		From:      fromSite,
		To:        dest,
		Size:      float64(pages),
		OnDeliver: func() { s.inputArrived(jq, stage) },
	})
}

// inputArrived counts down a stage's inputs and launches the join when
// both are present.
func (s *System) inputArrived(jq *JoinQuery, stage int) {
	jq.stageWait[stage]--
	if jq.stageWait[stage] > 0 {
		return
	}
	pages := s.stageInput(jq, stage)
	join := &workload.Query{
		Class:      1,
		Home:       jq.Home,
		Exec:       jq.Plan.JoinSites[stage],
		ReadsTotal: pages,
		EstReads:   float64(pages),
		EstPageCPU: s.cfg.JoinCPUTime,
	}
	s.ctx[join] = jq
	jq.joinOf[join] = stage
	s.table.Assign(join.Exec, s.classes[1].Bound(s.cfg.DiskTime, s.cfg.NumDisks))
	s.sites[join.Exec].Execute(join)
}

// stageInput returns the combined input pages of a join stage.
func (s *System) stageInput(jq *JoinQuery, stage int) int {
	left := s.cfg.Relations[jq.Relations[0]].OutPages()
	if stage > 0 {
		left = jq.stageOut[stage-1]
	}
	right := s.cfg.Relations[jq.Relations[stage+1]].OutPages()
	return left + right
}

// joinFinished records the stage output and either feeds the next stage
// or returns the final result home.
func (s *System) joinFinished(jq *JoinQuery, stage int) {
	out := clampPages(s.cfg.joinSel() * float64(s.stageInput(jq, stage)))
	jq.stageOut[stage] = out
	from := jq.Plan.JoinSites[stage]
	if stage+1 < len(jq.Plan.JoinSites) {
		s.deliverInput(jq, stage+1, from, out)
		return
	}
	if from == jq.Home {
		s.complete(jq)
		return
	}
	s.ring.Send(network.Message{
		From:      from,
		To:        jq.Home,
		Size:      1, // one result page
		OnDeliver: func() { s.complete(jq) },
	})
}

func (s *System) complete(jq *JoinQuery) {
	if s.measuring {
		resp := s.sched.Now() - jq.SubmitTime
		s.responses.Add(resp)
		s.respHist.Add(resp)
	}
	s.startThink(jq.Home)
}

func (s *System) collect(end float64) Results {
	r := Results{
		Strategy:     s.strat.Name(),
		Completed:    s.responses.Count(),
		MeanResponse: s.responses.Mean(),
		P95Response:  s.respHist.Quantile(0.95),
		SubnetUtil:   s.ring.Utilization(end),
		PagesShipped: s.shipped,
	}
	for _, st := range s.sites {
		u := st.CPUUtilization(end)
		r.CPUUtil += u
		if u > r.MaxCPUUtil {
			r.MaxCPUUtil = u
		}
		r.DiskUtil += st.DiskUtilization(end)
	}
	r.CPUUtil /= float64(len(s.sites))
	r.DiskUtil /= float64(len(s.sites))
	if span := end - s.startAt; span > 0 {
		r.Throughput = float64(r.Completed) / span
	}
	return r
}
