package dquery

import (
	"fmt"
	"math"

	"dqalloc/internal/loadinfo"
	"dqalloc/internal/rng"
)

// PlanEnv carries what a strategy may consult when planning a join query.
type PlanEnv struct {
	// View exposes per-site subquery counts (scan = I/O-bound, join =
	// CPU-bound with the default class demands).
	View loadinfo.View
	// NumSites and NumDisks describe the homogeneous hardware.
	NumSites int
	NumDisks int
	DiskTime float64
	// ScanCPUTime and JoinCPUTime are the per-page CPU demands.
	ScanCPUTime float64
	JoinCPUTime float64
	// PageNetTime is the network time to ship one page.
	PageNetTime float64
	// JoinSelectivity is the output fraction of each join stage.
	JoinSelectivity float64
}

// stageOutEstimate predicts the output pages of join stage j for the
// given relation chain (used by planners; the runtime uses the same
// formula, so estimates are exact in this model).
func (env *PlanEnv) stageOutEstimate(rels []Relation, j int) int {
	left := rels[0].OutPages()
	for k := 0; k <= j; k++ {
		left = clampPages(env.JoinSelectivity * float64(left+rels[k+1].OutPages()))
	}
	return left
}

// Strategy plans the scan and join sites of a join query.
type Strategy interface {
	// Name returns the strategy's short name.
	Name() string
	// Plan chooses sites for the left-deep join of rels submitted at
	// home.
	Plan(rels []Relation, home int, env *PlanEnv) Plan
}

// StrategyKind enumerates the built-in strategies.
type StrategyKind int

const (
	// Static is the classic load-oblivious plan: fixed copy choice and
	// join sites minimizing the data shipped (Section 1.1's baseline).
	Static StrategyKind = iota + 1
	// Dynamic allocates each subquery with load information, in the
	// spirit of the paper's LERT heuristic.
	Dynamic
	// RandomPlan picks uniformly among legal plans.
	RandomPlan
)

// String returns the strategy name.
func (k StrategyKind) String() string {
	switch k {
	case Static:
		return "STATIC"
	case Dynamic:
		return "DYNAMIC"
	case RandomPlan:
		return "RANDOM"
	default:
		return "unknown"
	}
}

// NewStrategy builds a strategy of the given kind. stream drives
// RandomPlan and may be nil otherwise.
func NewStrategy(kind StrategyKind, stream *rng.Stream) (Strategy, error) {
	switch kind {
	case Static:
		return staticStrategy{}, nil
	case Dynamic:
		return dynamicStrategy{}, nil
	case RandomPlan:
		if stream == nil {
			return nil, fmt.Errorf("dquery: RANDOM strategy needs a stream")
		}
		return &randomStrategy{stream: stream}, nil
	default:
		return nil, fmt.Errorf("dquery: unknown strategy %d", kind)
	}
}

// staticStrategy reproduces a 1980s optimizer: it always picks the first
// copy of each relation and runs every join where the largest scan
// output already sits, minimizing bytes shipped with no regard for load.
// Every instance of the same query gets the same plan.
type staticStrategy struct{}

func (staticStrategy) Name() string { return "STATIC" }

func (staticStrategy) Plan(rels []Relation, _ int, _ *PlanEnv) Plan {
	p := Plan{
		ScanSites: make([]int, len(rels)),
		JoinSites: make([]int, len(rels)-1),
	}
	// If one site holds every relation, run everything there.
	if site, ok := commonSite(rels); ok {
		for i := range p.ScanSites {
			p.ScanSites[i] = site
		}
		for j := range p.JoinSites {
			p.JoinSites[j] = site
		}
		return p
	}
	biggest := 0
	for i, r := range rels {
		p.ScanSites[i] = r.Copies[0]
		if r.OutPages() > rels[biggest].OutPages() {
			biggest = i
		}
	}
	for j := range p.JoinSites {
		p.JoinSites[j] = p.ScanSites[biggest]
	}
	return p
}

// commonSite finds a site holding a copy of every relation, if any.
func commonSite(rels []Relation) (int, bool) {
	for _, s := range rels[0].Copies {
		all := true
		for _, r := range rels[1:] {
			if !siteIn(s, r.Copies) {
				all = false
				break
			}
		}
		if all {
			return s, true
		}
	}
	return 0, false
}

func siteIn(site int, sites []int) bool {
	for _, s := range sites {
		if s == site {
			return true
		}
	}
	return false
}

// dynamicStrategy applies the paper's LERT idea per subquery: each scan
// runs at the copy site with the least estimated response time for an
// I/O-bound task, and each join stage runs at the site minimizing
// estimated shipping plus load-scaled join time given its input sizes.
type dynamicStrategy struct{}

func (dynamicStrategy) Name() string { return "DYNAMIC" }

func (dynamicStrategy) Plan(rels []Relation, _ int, env *PlanEnv) Plan {
	p := Plan{
		ScanSites: make([]int, len(rels)),
		JoinSites: make([]int, len(rels)-1),
	}
	for i, r := range rels {
		p.ScanSites[i] = bestScanSite(r, env)
	}
	// Plan stages left to right: stage j's left input comes from the
	// previous stage's site (or scan 0), its right input from scan j+1.
	leftSite := p.ScanSites[0]
	leftPages := rels[0].OutPages()
	for j := range p.JoinSites {
		rightSite := p.ScanSites[j+1]
		rightPages := rels[j+1].OutPages()
		joinPages := float64(leftPages + rightPages)

		best, bestCost := -1, math.Inf(1)
		for s := 0; s < env.NumSites; s++ {
			ship := 0.0
			if s != leftSite {
				ship += float64(leftPages) * env.PageNetTime
			}
			if s != rightSite {
				ship += float64(rightPages) * env.PageNetTime
			}
			cpu := joinPages * env.JoinCPUTime * (1 + float64(env.View.NumCPUQueries(s)))
			io := joinPages * env.DiskTime * (1 + float64(env.View.NumIOQueries(s))/float64(env.NumDisks))
			if cost := ship + cpu + io; cost < bestCost {
				best, bestCost = s, cost
			}
		}
		p.JoinSites[j] = best
		leftSite = best
		leftPages = clampPages(env.JoinSelectivity * joinPages)
	}
	return p
}

// bestScanSite estimates the scan's response time at each copy holder.
func bestScanSite(r Relation, env *PlanEnv) int {
	pages := float64(r.Pages)
	best, bestCost := r.Copies[0], math.Inf(1)
	for _, s := range r.Copies {
		io := pages * env.DiskTime * (1 + float64(env.View.NumIOQueries(s))/float64(env.NumDisks))
		cpu := pages * env.ScanCPUTime * (1 + float64(env.View.NumCPUQueries(s)))
		if cost := io + cpu; cost < bestCost {
			best, bestCost = s, cost
		}
	}
	return best
}

// randomStrategy picks uniformly among legal plans — the no-information
// baseline.
type randomStrategy struct {
	stream *rng.Stream
}

func (p *randomStrategy) Name() string { return "RANDOM" }

func (p *randomStrategy) Plan(rels []Relation, _ int, env *PlanEnv) Plan {
	plan := Plan{
		ScanSites: make([]int, len(rels)),
		JoinSites: make([]int, len(rels)-1),
	}
	for i, r := range rels {
		plan.ScanSites[i] = r.Copies[p.stream.Intn(len(r.Copies))]
	}
	for j := range plan.JoinSites {
		plan.JoinSites[j] = p.stream.Intn(env.NumSites)
	}
	return plan
}
