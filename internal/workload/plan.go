package workload

// This file is the operator-tree query model of the parallel-query
// extension (the Garofalakis & Ioannidis direction): instead of one
// monolithic reads×(disk→CPU) loop, a query may be a small tree of
// relational operators — scans over fragments, filters, and joins — each
// carrying its own per-resource demands (disk reads, per-page CPU,
// output bytes). The system layer schedules the operators onto sites and
// ships intermediate results over the ring; this package only defines
// the plan representation, its validation, the fragment-and-replicate
// share expansion, and the deterministic plan sampler.

import (
	"fmt"
	"math"

	"dqalloc/internal/replica"
	"dqalloc/internal/rng"
)

// OpKind enumerates the operator types a plan may contain.
type OpKind int8

const (
	// OpScan reads a fragment's pages from disk.
	OpScan OpKind = iota + 1
	// OpFilter re-reads its input's pages, applying a predicate.
	OpFilter
	// OpJoin combines two or more inputs; its read count is the staged
	// input volume.
	OpJoin
)

// String returns the operator-kind name.
func (k OpKind) String() string {
	switch k {
	case OpScan:
		return "scan"
	case OpFilter:
		return "filter"
	case OpJoin:
		return "join"
	default:
		return "unknown"
	}
}

// MaxPlanOps bounds a plan's operator count; anything larger is a
// malformed (or adversarial) plan, not a query.
const MaxPlanOps = 64

// Operator is one node of a query plan. Its resource demands mirror the
// monolithic query's: Reads disk pages, each followed by an
// exponentially distributed CPU burst with mean PageCPU.
type Operator struct {
	// Kind is the operator type.
	Kind OpKind
	// Reads is the number of disk pages the operator processes (≥ 1).
	Reads int
	// PageCPU is the mean per-page CPU demand; 0 means the query class's
	// PageCPUTime applies (scans use 0, joins and filters carry their
	// own cheaper per-page costs).
	PageCPU float64
	// OutPages is the number of result pages the operator produces.
	OutPages int
	// OutBytes is the network size of the operator's output when it must
	// ship to a consumer at another site.
	OutBytes float64
	// Frag identifies the fragment a scan reads; -1 for non-scans.
	Frag int
	// DOP requests a degree of parallelism for the operator: 0 lets the
	// allocation policy choose, 1 forces a single instance, and k > 1
	// forces a k-way fragment-and-replicate split. Only joins may exceed 1.
	DOP int
	// Inputs lists the operator's child node indices (empty for scans).
	Inputs []int
}

// Plan is one query's operator tree. Ops[Root] produces the final
// result; every other operator's output is consumed by exactly one
// parent.
type Plan struct {
	Ops  []Operator
	Root int
}

// finiteNonNeg reports whether x is a finite, non-negative float.
func finiteNonNeg(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0) && x >= 0
}

// Validate checks the plan's structural and numeric sanity: it must be a
// single tree rooted at Root (every non-root consumed exactly once, no
// cycles, everything reachable), every operator's demands must be finite
// and in range, scan fragment ids must lie in [0, numFrags) when
// numFrags > 0, and no DOP may exceed numSites (or request a split of a
// non-join). It is the admission gate between plan generation — or any
// external plan source — and the execution engine.
func (p *Plan) Validate(numFrags, numSites int) error {
	n := len(p.Ops)
	if n < 1 {
		return fmt.Errorf("workload: empty plan")
	}
	if n > MaxPlanOps {
		return fmt.Errorf("workload: plan has %d operators, max %d", n, MaxPlanOps)
	}
	if p.Root < 0 || p.Root >= n {
		return fmt.Errorf("workload: plan root %d out of range [0,%d)", p.Root, n)
	}
	consumers := make([]int, n)
	for i, op := range p.Ops {
		switch op.Kind {
		case OpScan:
			if len(op.Inputs) != 0 {
				return fmt.Errorf("workload: op %d: scan with %d inputs", i, len(op.Inputs))
			}
			if op.Frag < 0 {
				return fmt.Errorf("workload: op %d: scan fragment %d < 0", i, op.Frag)
			}
			if numFrags > 0 && op.Frag >= numFrags {
				return fmt.Errorf("workload: op %d: scan fragment %d out of range [0,%d)", i, op.Frag, numFrags)
			}
		case OpFilter:
			if len(op.Inputs) != 1 {
				return fmt.Errorf("workload: op %d: filter with %d inputs, want 1", i, len(op.Inputs))
			}
			if op.Frag != -1 {
				return fmt.Errorf("workload: op %d: non-scan with fragment %d, want -1", i, op.Frag)
			}
		case OpJoin:
			if len(op.Inputs) < 2 {
				return fmt.Errorf("workload: op %d: join with %d inputs, want >= 2", i, len(op.Inputs))
			}
			if op.Frag != -1 {
				return fmt.Errorf("workload: op %d: non-scan with fragment %d, want -1", i, op.Frag)
			}
		default:
			return fmt.Errorf("workload: op %d: invalid kind %d", i, op.Kind)
		}
		if op.Reads < 1 {
			return fmt.Errorf("workload: op %d: reads %d < 1", i, op.Reads)
		}
		if op.OutPages < 0 {
			return fmt.Errorf("workload: op %d: negative output pages %d", i, op.OutPages)
		}
		if !finiteNonNeg(op.PageCPU) {
			return fmt.Errorf("workload: op %d: page CPU %v not finite and non-negative", i, op.PageCPU)
		}
		if !finiteNonNeg(op.OutBytes) {
			return fmt.Errorf("workload: op %d: output bytes %v not finite and non-negative", i, op.OutBytes)
		}
		if op.DOP < 0 || (numSites > 0 && op.DOP > numSites) {
			return fmt.Errorf("workload: op %d: DOP %d outside [0,%d]", i, op.DOP, numSites)
		}
		if op.DOP > 1 && op.Kind != OpJoin {
			return fmt.Errorf("workload: op %d: DOP %d on a %s (only joins split)", i, op.DOP, op.Kind)
		}
		for _, in := range op.Inputs {
			if in < 0 || in >= n {
				return fmt.Errorf("workload: op %d: input %d out of range [0,%d)", i, in, n)
			}
			if in == i {
				return fmt.Errorf("workload: op %d: self input", i)
			}
			consumers[in]++
		}
	}
	if consumers[p.Root] != 0 {
		return fmt.Errorf("workload: root %d is consumed by another operator", p.Root)
	}
	for i, c := range consumers {
		if i != p.Root && c != 1 {
			return fmt.Errorf("workload: op %d consumed %d times, want 1", i, c)
		}
	}
	// Reachability from the root doubles as the cycle check: with every
	// non-root consumed exactly once there are n-1 edges, so visiting all
	// n nodes from the root proves the graph is a tree.
	seen := make([]bool, n)
	stack := []int{p.Root}
	seen[p.Root] = true
	visited := 1
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, in := range p.Ops[i].Inputs {
			if !seen[in] {
				seen[in] = true
				visited++
				stack = append(stack, in)
			}
		}
	}
	if visited != n {
		return fmt.Errorf("workload: plan is not a single tree: %d of %d ops reachable from root", visited, n)
	}
	return nil
}

// Parent returns, for each operator, the node consuming its output (-1
// for the root). Valid plans only.
func (p *Plan) Parent() []int {
	parent := make([]int, len(p.Ops))
	for i := range parent {
		parent[i] = -1
	}
	for i, op := range p.Ops {
		for _, in := range op.Inputs {
			parent[in] = i
		}
	}
	return parent
}

// FragRep is a fragment-and-replicate share assignment: the fragment's
// pages are partitioned across Sites (Shares[i] pages at Sites[i],
// summing exactly to the total), while the join's other input is
// replicated to every listed site.
type FragRep struct {
	// Sites are the scan sites, a subset of the offered candidates.
	Sites []int
	// Shares[i] is the page count scanned at Sites[i]; every share is at
	// least one page and the shares sum to the fragment's total.
	Shares []int
	// Degraded marks the fallback: none of the offered sites held a copy
	// of the fragment, so the whole scan collapses onto the first offered
	// site, which must fetch the fragment before reading (the degraded
	// remote read of the replication extension).
	Degraded bool
}

// ExpandFragRep partitions a fragment scan of the given page count
// across the offered sites for a fragment-and-replicate join. When pl is
// non-nil only sites holding a copy of frag receive shares; if no
// offered site holds one, the expansion degrades to a single-site scan
// at the first offered site (flagged Degraded so the engine can fetch
// the fragment first). The share count never exceeds the page count, so
// every share is at least one page, and the shares always sum exactly to
// pages — every input page is covered by exactly one site's shipment
// set.
func ExpandFragRep(pl *replica.Placement, frag, pages int, sites []int) (FragRep, error) {
	if pages < 1 {
		return FragRep{}, fmt.Errorf("workload: fragment expansion of %d pages", pages)
	}
	if len(sites) == 0 {
		return FragRep{}, fmt.Errorf("workload: fragment expansion over no sites")
	}
	seen := make(map[int]bool, len(sites))
	for _, s := range sites {
		if s < 0 {
			return FragRep{}, fmt.Errorf("workload: fragment expansion site %d < 0", s)
		}
		if seen[s] {
			return FragRep{}, fmt.Errorf("workload: duplicate expansion site %d", s)
		}
		seen[s] = true
	}
	kept := sites
	if pl != nil {
		if frag < 0 || frag >= pl.NumObjects() {
			return FragRep{}, fmt.Errorf("workload: fragment %d out of range [0,%d)", frag, pl.NumObjects())
		}
		kept = make([]int, 0, len(sites))
		for _, s := range sites {
			if pl.Holds(s, frag) {
				kept = append(kept, s)
			}
		}
		if len(kept) == 0 {
			// Degraded fallback: no offered site holds the fragment.
			return FragRep{Sites: []int{sites[0]}, Shares: []int{pages}, Degraded: true}, nil
		}
	}
	k := len(kept)
	if k > pages {
		k = pages
	}
	out := FragRep{Sites: make([]int, k), Shares: make([]int, k)}
	copy(out.Sites, kept[:k])
	base, extra := pages/k, pages%k
	for i := 0; i < k; i++ {
		out.Shares[i] = base
		if i < extra {
			out.Shares[i]++
		}
	}
	return out, nil
}

// clampPages rounds a fractional page count to at least one page — the
// same convention the seed dquery package uses for selectivity output.
func clampPages(x float64) int {
	n := int(math.Round(x))
	if n < 1 {
		return 1
	}
	return n
}

// PlanGenConfig parameterizes the deterministic plan sampler.
type PlanGenConfig struct {
	// JoinProb is the probability a submitted query becomes a join tree;
	// otherwise it stays a single-scan plan (observably the monolithic
	// query).
	JoinProb float64
	// FilterProb is the probability a join tree gets a filter above the
	// join.
	FilterProb float64
	// SelScan and SelJoin are the scan and join selectivities: output
	// pages per input page.
	SelScan, SelJoin float64
	// JoinPageCPU and FilterPageCPU are the per-page CPU means of join
	// and filter operators (scans use the query class's PageCPUTime).
	JoinPageCPU, FilterPageCPU float64
	// ShipBytesPerPage converts an operator's output pages into the
	// network size of its intermediate-result shipment.
	ShipBytesPerPage float64
	// NumFrags is the fragment count extra scans sample from; 0 means an
	// unfragmented database (every scan reads fragment 0).
	NumFrags int
}

// PlanGen samples operator trees on its own dedicated random stream, so
// runs without the parallel subsystem never see its draws.
type PlanGen struct {
	cfg    PlanGenConfig
	stream *rng.Stream
}

// NewPlanGen builds a sampler over the given dedicated stream.
func NewPlanGen(cfg PlanGenConfig, stream *rng.Stream) (*PlanGen, error) {
	if stream == nil {
		return nil, fmt.Errorf("workload: nil plan stream")
	}
	return &PlanGen{cfg: cfg, stream: stream}, nil
}

// New samples a plan for query q. meanReads is the class's mean read
// count, driving the second scan's size. With probability 1−JoinProb
// the result is a single scan carrying exactly q's sampled demands — a
// plan the engine treats as the monolithic query, so a JoinProb of 0
// reproduces the paper's workload bit for bit.
func (g *PlanGen) New(q *Query, meanReads float64) Plan {
	if !g.stream.Bernoulli(g.cfg.JoinProb) {
		return Plan{Ops: []Operator{{Kind: OpScan, Reads: q.ReadsTotal, Frag: q.Object}}}
	}
	rightReads := int(math.Round(g.stream.Exp(meanReads)))
	if rightReads < 1 {
		rightReads = 1
	}
	rightFrag := 0
	if g.cfg.NumFrags > 0 {
		rightFrag = g.stream.Intn(g.cfg.NumFrags)
	}
	filter := g.stream.Bernoulli(g.cfg.FilterProb)

	left := Operator{Kind: OpScan, Reads: q.ReadsTotal, Frag: q.Object}
	left.OutPages = clampPages(g.cfg.SelScan * float64(left.Reads))
	left.OutBytes = float64(left.OutPages) * g.cfg.ShipBytesPerPage
	right := Operator{Kind: OpScan, Reads: rightReads, Frag: rightFrag}
	right.OutPages = clampPages(g.cfg.SelScan * float64(right.Reads))
	right.OutBytes = float64(right.OutPages) * g.cfg.ShipBytesPerPage
	join := Operator{
		Kind:    OpJoin,
		Reads:   left.OutPages + right.OutPages,
		PageCPU: g.cfg.JoinPageCPU,
		Frag:    -1,
		Inputs:  []int{0, 1},
	}
	join.OutPages = clampPages(g.cfg.SelJoin * float64(join.Reads))
	join.OutBytes = float64(join.OutPages) * g.cfg.ShipBytesPerPage
	ops := []Operator{left, right, join}
	root := 2
	if filter {
		f := Operator{
			Kind:    OpFilter,
			Reads:   join.OutPages,
			PageCPU: g.cfg.FilterPageCPU,
			Frag:    -1,
			Inputs:  []int{2},
		}
		f.OutPages = clampPages(g.cfg.SelScan * float64(f.Reads))
		f.OutBytes = float64(f.OutPages) * g.cfg.ShipBytesPerPage
		ops = append(ops, f)
		root = 3
	}
	return Plan{Ops: ops, Root: root}
}
