// Package workload models the paper's multi-class query workload
// (Sections 1.2.3 and 2). Each query class has its own per-page CPU
// demand, mean read count, and message length; terminals draw a class for
// each new query from the class distribution function.
package workload

import (
	"fmt"
	"math"

	"dqalloc/internal/rng"
)

// Bound classifies a query as I/O- or CPU-bound using the rule of Section
// 4.2: the per-disk I/O demand (disk access time divided by the number of
// disks) is compared with the per-page CPU demand.
type Bound int

const (
	// IOBound queries demand more I/O than CPU per page.
	IOBound Bound = iota + 1
	// CPUBound queries demand at least as much CPU as I/O per page.
	CPUBound
)

// String returns the classification name.
func (b Bound) String() string {
	switch b {
	case IOBound:
		return "io-bound"
	case CPUBound:
		return "cpu-bound"
	default:
		return "unknown"
	}
}

// Class describes one query class with the parameters of Table 2. In the
// simulations (Table 7) result_fraction, query_size and msg_time are
// folded into MsgLength, the constant time to ship a query to, or results
// back from, a remote site.
type Class struct {
	// Name labels the class in reports, e.g. "io" or "cpu".
	Name string
	// PageCPUTime is the mean CPU time to process one page read from disk.
	PageCPUTime float64
	// NumReads is the mean number of disk pages a query reads (i.e. mean
	// cycles through the I/O and CPU service centers).
	NumReads float64
	// MsgLength is the network time to transfer the query descriptor to a
	// remote site or to return its results (Table 7 uses 1.0).
	MsgLength float64
}

// Validate reports a configuration error, if any.
func (c Class) Validate() error {
	switch {
	case c.PageCPUTime < 0:
		return fmt.Errorf("class %q: negative page CPU time", c.Name)
	case c.NumReads < 1:
		return fmt.Errorf("class %q: mean reads %v < 1", c.Name, c.NumReads)
	case c.MsgLength < 0:
		return fmt.Errorf("class %q: negative message length", c.Name)
	}
	return nil
}

// Bound classifies the class for a site with the given storage hardware.
func (c Class) Bound(diskTime float64, numDisks int) Bound {
	if diskTime/float64(numDisks) > c.PageCPUTime {
		return IOBound
	}
	return CPUBound
}

// MeanCPUDemand returns the class's mean total CPU requirement per query.
func (c Class) MeanCPUDemand() float64 { return c.NumReads * c.PageCPUTime }

// MeanDiskDemand returns the class's mean total disk requirement per
// query for the given mean page access time.
func (c Class) MeanDiskDemand(diskTime float64) float64 { return c.NumReads * diskTime }

// MeanServiceDemand returns the class's mean total service requirement
// (CPU plus disk) per query, excluding messages.
func (c Class) MeanServiceDemand(diskTime float64) float64 {
	return c.MeanCPUDemand() + c.MeanDiskDemand(diskTime)
}

// EstimateMode selects what the allocator sees as a query's resource
// demands — the output of the "query optimizer" of Section 1.2.2.
type EstimateMode int

const (
	// EstimateClassMean gives the allocator the class-mean demands, which
	// is what a cost-based optimizer would predict. This is the default.
	EstimateClassMean EstimateMode = iota + 1
	// EstimateActual gives the allocator the query's exact sampled
	// demands — an oracle upper bound used in ablations.
	EstimateActual
)

// String returns the mode name.
func (m EstimateMode) String() string {
	switch m {
	case EstimateClassMean:
		return "class-mean"
	case EstimateActual:
		return "actual"
	default:
		return "unknown"
	}
}

// Query is one task instance flowing through the system.
type Query struct {
	ID    uint64
	Class int // index into the class table
	Home  int // site whose terminal submitted the query
	Exec  int // chosen execution site (set by the allocator)
	// Object identifies the data the query references; only meaningful in
	// the partially replicated extension (zero otherwise).
	Object int

	// ReadsTotal is the sampled number of disk pages this query reads.
	ReadsTotal int
	// ReadsDone counts completed read/process cycles.
	ReadsDone int

	// EstReads and EstPageCPU are the optimizer's estimates available to
	// the allocation policies.
	EstReads   float64
	EstPageCPU float64

	// SubmitTime is when the query left its terminal; Service accumulates
	// the actual service it has received (disk + CPU + transmissions),
	// NetService the transmission component alone, and DiskService the
	// disk component alone (so the CPU share is derivable).
	SubmitTime  float64
	Service     float64
	NetService  float64
	DiskService float64

	// PageCPU overrides the class's per-page CPU mean when positive. The
	// parallel-query extension sets it on operator carriers (a join's
	// per-page cost differs from a scan's); zero everywhere else, which
	// leaves the class mean in force.
	PageCPU float64

	// Migrations counts mid-execution moves (migration extension).
	Migrations int

	// Defers counts admission-control deferrals consumed so far (overload
	// admission extension): each time an overloaded site bounces the
	// query it is parked and resubmitted, up to the configured budget.
	Defers int

	// Degraded marks an allocation that landed at a site holding no copy
	// of the query's fragment (self-healing replication extension): the
	// site must fetch the fragment over the ring before executing. Reset
	// on every allocation attempt.
	Degraded bool

	// Phase is scratch space for the system layer's lifecycle tracking
	// (deadline aborts and hedged execution need to know where a query
	// currently is to cancel it). The workload package assigns it no
	// meaning.
	Phase int8
}

// ExecService returns the pure execution service received (disk + CPU,
// excluding message transmissions) — the paper's "execution time".
func (q *Query) ExecService() float64 { return q.Service - q.NetService }

// EstCPUDemand returns the estimated total CPU requirement.
func (q *Query) EstCPUDemand() float64 { return q.EstReads * q.EstPageCPU }

// EstDiskDemand returns the estimated total disk requirement for the
// given mean page access time.
func (q *Query) EstDiskDemand(diskTime float64) float64 { return q.EstReads * diskTime }

// Remote reports whether the query executes away from its home site.
func (q *Query) Remote() bool { return q.Exec != q.Home }

// Generator samples new queries: it draws the class from the class
// distribution function and the read count from an exponential
// distribution with the class mean (Section 5.1).
type Generator struct {
	classes []Class
	probs   []float64
	mode    EstimateMode
	stream  *rng.Stream
	nextID  uint64
}

// NewGenerator builds a generator over the given classes. probs[i] is the
// probability that a new query belongs to class i; the probabilities must
// sum to 1 (within a small tolerance).
func NewGenerator(classes []Class, probs []float64, mode EstimateMode, stream *rng.Stream) (*Generator, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("workload: no classes")
	}
	if len(probs) != len(classes) {
		return nil, fmt.Errorf("workload: %d probabilities for %d classes", len(probs), len(classes))
	}
	sum := 0.0
	for i, p := range probs {
		if p < 0 {
			return nil, fmt.Errorf("workload: negative probability for class %d", i)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		return nil, fmt.Errorf("workload: class probabilities sum to %v, want 1", sum)
	}
	for _, c := range classes {
		if err := c.Validate(); err != nil {
			return nil, err
		}
	}
	if mode != EstimateClassMean && mode != EstimateActual {
		return nil, fmt.Errorf("workload: invalid estimate mode %d", mode)
	}
	if stream == nil {
		return nil, fmt.Errorf("workload: nil random stream")
	}
	return &Generator{classes: classes, probs: probs, mode: mode, stream: stream}, nil
}

// Classes returns the generator's class table (shared, do not mutate).
func (g *Generator) Classes() []Class { return g.classes }

// New samples a query submitted by a terminal at the given home site at
// the given simulated time.
func (g *Generator) New(home int, now float64) *Query {
	return g.build(g.sampleClass(), home, now)
}

// NewOfClass samples a query of a fixed class — the open-arrival
// extension's entry point, where each class has its own arrival source
// and therefore no class draw happens here. It consumes exactly one
// read-count draw from the generator's stream.
func (g *Generator) NewOfClass(class, home int, now float64) *Query {
	if class < 0 || class >= len(g.classes) {
		panic(fmt.Sprintf("workload: class %d out of range", class))
	}
	return g.build(class, home, now)
}

func (g *Generator) build(class, home int, now float64) *Query {
	c := g.classes[class]
	reads := g.sampleReads(c.NumReads)
	q := &Query{
		ID:         g.nextID,
		Class:      class,
		Home:       home,
		Exec:       home,
		ReadsTotal: reads,
		SubmitTime: now,
	}
	g.nextID++
	switch g.mode {
	case EstimateActual:
		q.EstReads = float64(reads)
	default:
		q.EstReads = c.NumReads
	}
	q.EstPageCPU = c.PageCPUTime
	return q
}

// sampleClass draws a class index from the class distribution function.
func (g *Generator) sampleClass() int {
	u := g.stream.Float64()
	acc := 0.0
	for i, p := range g.probs {
		acc += p
		if u < acc {
			return i
		}
	}
	return len(g.probs) - 1
}

// sampleReads draws the number of reads: exponential with the class mean,
// rounded to the nearest integer, with a floor of one read.
func (g *Generator) sampleReads(mean float64) int {
	n := int(math.Round(g.stream.Exp(mean)))
	if n < 1 {
		n = 1
	}
	return n
}
