package workload

import (
	"math"
	"testing"

	"dqalloc/internal/rng"
)

// paperClasses returns the default two classes of Table 7.
func paperClasses() []Class {
	return []Class{
		{Name: "io", PageCPUTime: 0.05, NumReads: 20, MsgLength: 1},
		{Name: "cpu", PageCPUTime: 1.0, NumReads: 20, MsgLength: 1},
	}
}

func TestClassBoundRule(t *testing.T) {
	tests := []struct {
		name     string
		cpu      float64
		diskTime float64
		disks    int
		want     Bound
	}{
		{name: "io class two disks", cpu: 0.05, diskTime: 1, disks: 2, want: IOBound},
		{name: "cpu class two disks", cpu: 1.0, diskTime: 1, disks: 2, want: CPUBound},
		{name: "boundary equals is cpu", cpu: 0.5, diskTime: 1, disks: 2, want: CPUBound},
		{name: "many disks flip to cpu", cpu: 0.05, diskTime: 1, disks: 25, want: CPUBound},
		{name: "single disk", cpu: 0.9, diskTime: 1, disks: 1, want: IOBound},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := Class{Name: "c", PageCPUTime: tt.cpu, NumReads: 20}
			if got := c.Bound(tt.diskTime, tt.disks); got != tt.want {
				t.Errorf("Bound = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestClassDemands(t *testing.T) {
	c := Class{Name: "cpu", PageCPUTime: 1.0, NumReads: 20}
	if c.MeanCPUDemand() != 20 {
		t.Errorf("MeanCPUDemand = %v, want 20", c.MeanCPUDemand())
	}
	if c.MeanDiskDemand(1) != 20 {
		t.Errorf("MeanDiskDemand = %v, want 20", c.MeanDiskDemand(1))
	}
	if c.MeanServiceDemand(1) != 40 {
		t.Errorf("MeanServiceDemand = %v, want 40", c.MeanServiceDemand(1))
	}
}

func TestPaperMeanExecutionTime(t *testing.T) {
	// Section 5.2 quotes a mean execution time of 30.5 for the default
	// 50/50 mix: 20 reads * (1 + (0.05+1.0)/2).
	cs := paperClasses()
	mean := 0.5*cs[0].MeanServiceDemand(1) + 0.5*cs[1].MeanServiceDemand(1)
	if math.Abs(mean-30.5) > 1e-9 {
		t.Errorf("mean execution time = %v, want 30.5", mean)
	}
}

func TestClassValidate(t *testing.T) {
	tests := []struct {
		name    string
		class   Class
		wantErr bool
	}{
		{name: "valid", class: Class{Name: "ok", PageCPUTime: 0.1, NumReads: 5}},
		{name: "negative cpu", class: Class{PageCPUTime: -1, NumReads: 5}, wantErr: true},
		{name: "reads below one", class: Class{PageCPUTime: 1, NumReads: 0.5}, wantErr: true},
		{name: "negative msg", class: Class{PageCPUTime: 1, NumReads: 5, MsgLength: -1}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.class.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestNewGeneratorRejectsBadConfig(t *testing.T) {
	stream := rng.NewStream(1)
	cs := paperClasses()
	tests := []struct {
		name    string
		classes []Class
		probs   []float64
		mode    EstimateMode
		stream  *rng.Stream
	}{
		{name: "no classes", classes: nil, probs: nil, mode: EstimateClassMean, stream: stream},
		{name: "probs mismatch", classes: cs, probs: []float64{1}, mode: EstimateClassMean, stream: stream},
		{name: "probs not normalized", classes: cs, probs: []float64{0.5, 0.6}, mode: EstimateClassMean, stream: stream},
		{name: "negative prob", classes: cs, probs: []float64{-0.5, 1.5}, mode: EstimateClassMean, stream: stream},
		{name: "bad mode", classes: cs, probs: []float64{0.5, 0.5}, mode: 0, stream: stream},
		{name: "nil stream", classes: cs, probs: []float64{0.5, 0.5}, mode: EstimateClassMean, stream: nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewGenerator(tt.classes, tt.probs, tt.mode, tt.stream); err == nil {
				t.Error("NewGenerator accepted invalid config")
			}
		})
	}
}

func TestGeneratorClassMix(t *testing.T) {
	g, err := NewGenerator(paperClasses(), []float64{0.3, 0.7}, EstimateClassMean, rng.NewStream(5))
	if err != nil {
		t.Fatal(err)
	}
	const n = 100000
	count := 0
	for i := 0; i < n; i++ {
		if g.New(0, 0).Class == 0 {
			count++
		}
	}
	if frac := float64(count) / n; math.Abs(frac-0.3) > 0.01 {
		t.Errorf("class 0 fraction = %v, want ~0.3", frac)
	}
}

func TestGeneratorReadsDistribution(t *testing.T) {
	g, err := NewGenerator(paperClasses(), []float64{1, 0}, EstimateClassMean, rng.NewStream(6))
	if err != nil {
		t.Fatal(err)
	}
	const n = 100000
	sum := 0.0
	minReads := math.MaxInt
	for i := 0; i < n; i++ {
		q := g.New(0, 0)
		sum += float64(q.ReadsTotal)
		if q.ReadsTotal < minReads {
			minReads = q.ReadsTotal
		}
	}
	if mean := sum / n; math.Abs(mean-20) > 0.5 {
		t.Errorf("mean reads = %v, want ~20", mean)
	}
	if minReads < 1 {
		t.Errorf("min reads = %d, want >= 1", minReads)
	}
}

func TestGeneratorEstimateModes(t *testing.T) {
	cs := paperClasses()
	gMean, err := NewGenerator(cs, []float64{1, 0}, EstimateClassMean, rng.NewStream(7))
	if err != nil {
		t.Fatal(err)
	}
	q := gMean.New(2, 5)
	if q.EstReads != 20 || q.EstPageCPU != 0.05 {
		t.Errorf("class-mean estimates = (%v, %v), want (20, 0.05)", q.EstReads, q.EstPageCPU)
	}
	if q.Home != 2 || q.Exec != 2 || q.SubmitTime != 5 {
		t.Errorf("query bookkeeping = %+v", q)
	}

	gActual, err := NewGenerator(cs, []float64{1, 0}, EstimateActual, rng.NewStream(7))
	if err != nil {
		t.Fatal(err)
	}
	q2 := gActual.New(0, 0)
	if q2.EstReads != float64(q2.ReadsTotal) {
		t.Errorf("actual estimate = %v, want sampled %d", q2.EstReads, q2.ReadsTotal)
	}
}

func TestQueryIDsUnique(t *testing.T) {
	g, err := NewGenerator(paperClasses(), []float64{0.5, 0.5}, EstimateClassMean, rng.NewStream(8))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool, 1000)
	for i := 0; i < 1000; i++ {
		q := g.New(0, 0)
		if seen[q.ID] {
			t.Fatalf("duplicate query ID %d", q.ID)
		}
		seen[q.ID] = true
	}
}

func TestQueryEstimateHelpers(t *testing.T) {
	q := &Query{EstReads: 10, EstPageCPU: 0.5, Home: 1, Exec: 3}
	if q.EstCPUDemand() != 5 {
		t.Errorf("EstCPUDemand = %v, want 5", q.EstCPUDemand())
	}
	if q.EstDiskDemand(2) != 20 {
		t.Errorf("EstDiskDemand = %v, want 20", q.EstDiskDemand(2))
	}
	if !q.Remote() {
		t.Error("Remote() = false for Home != Exec")
	}
}

func TestBoundString(t *testing.T) {
	if IOBound.String() != "io-bound" || CPUBound.String() != "cpu-bound" || Bound(0).String() != "unknown" {
		t.Error("Bound.String mismatch")
	}
}

func TestEstimateModeString(t *testing.T) {
	if EstimateClassMean.String() != "class-mean" || EstimateActual.String() != "actual" || EstimateMode(0).String() != "unknown" {
		t.Error("EstimateMode.String mismatch")
	}
}
