package workload

import (
	"math"
	"testing"

	"dqalloc/internal/replica"
	"dqalloc/internal/rng"
)

// validTree returns a four-operator scan-scan-join-filter plan that
// Validate accepts; tests mutate copies of it to probe single defects.
func validTree() Plan {
	return Plan{
		Ops: []Operator{
			{Kind: OpScan, Reads: 10, OutPages: 5, Frag: 0},
			{Kind: OpScan, Reads: 8, OutPages: 4, Frag: 1},
			{Kind: OpJoin, Reads: 9, PageCPU: 0.1, OutPages: 3, Frag: -1, Inputs: []int{0, 1}},
			{Kind: OpFilter, Reads: 3, PageCPU: 0.02, OutPages: 1, Frag: -1, Inputs: []int{2}},
		},
		Root: 3,
	}
}

func TestPlanValidateAccepts(t *testing.T) {
	p := validTree()
	if err := p.Validate(4, 6); err != nil {
		t.Fatalf("valid tree rejected: %v", err)
	}
	single := Plan{Ops: []Operator{{Kind: OpScan, Reads: 1, Frag: 0}}}
	if err := single.Validate(0, 0); err != nil {
		t.Fatalf("single scan rejected: %v", err)
	}
}

func TestPlanValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Plan)
	}{
		{"empty plan", func(p *Plan) { p.Ops = nil }},
		{"root out of range", func(p *Plan) { p.Root = 7 }},
		{"negative root", func(p *Plan) { p.Root = -1 }},
		{"scan with inputs", func(p *Plan) { p.Ops[0].Inputs = []int{1} }},
		{"scan fragment negative", func(p *Plan) { p.Ops[0].Frag = -1 }},
		{"scan fragment out of range", func(p *Plan) { p.Ops[0].Frag = 4 }},
		{"join with one input", func(p *Plan) { p.Ops[2].Inputs = []int{0}; p.Ops[1].Inputs = nil; p.Ops[1].Kind = OpScan }},
		{"join carrying a fragment", func(p *Plan) { p.Ops[2].Frag = 2 }},
		{"filter with two inputs", func(p *Plan) { p.Ops[3].Inputs = []int{2, 0} }},
		{"invalid kind", func(p *Plan) { p.Ops[0].Kind = 0 }},
		{"zero reads", func(p *Plan) { p.Ops[1].Reads = 0 }},
		{"negative output pages", func(p *Plan) { p.Ops[2].OutPages = -1 }},
		{"NaN page CPU", func(p *Plan) { p.Ops[2].PageCPU = math.NaN() }},
		{"infinite output bytes", func(p *Plan) { p.Ops[3].OutBytes = math.Inf(1) }},
		{"negative DOP", func(p *Plan) { p.Ops[2].DOP = -1 }},
		{"DOP beyond site count", func(p *Plan) { p.Ops[2].DOP = 7 }},
		{"DOP on a scan", func(p *Plan) { p.Ops[0].DOP = 2 }},
		{"self input", func(p *Plan) { p.Ops[2].Inputs = []int{0, 2} }},
		{"input out of range", func(p *Plan) { p.Ops[2].Inputs = []int{0, 9} }},
		{"root consumed", func(p *Plan) { p.Root = 2 }},
		{"operator consumed twice", func(p *Plan) { p.Ops[3].Inputs = []int{2}; p.Ops[2].Inputs = []int{0, 1, 3} }},
		{"unreachable operator", func(p *Plan) { p.Ops[2].Inputs = []int{0, 0} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := validTree()
			// Deep-copy the operator slice so mutations don't alias.
			p.Ops = append([]Operator(nil), p.Ops...)
			tc.mutate(&p)
			if err := p.Validate(4, 6); err == nil {
				t.Fatal("defective plan accepted")
			}
		})
	}
	// A two-node cycle is unreachable from the root and must be rejected
	// even though every consumption count balances.
	cyc := Plan{
		Ops: []Operator{
			{Kind: OpScan, Reads: 1, Frag: 0},
			{Kind: OpFilter, Reads: 1, Frag: -1, Inputs: []int{2}},
			{Kind: OpFilter, Reads: 1, Frag: -1, Inputs: []int{1}},
		},
		Root: 0,
	}
	if err := cyc.Validate(0, 0); err == nil {
		t.Fatal("cyclic plan accepted")
	}
	// An oversized plan is malformed regardless of structure.
	big := Plan{Ops: make([]Operator, MaxPlanOps+1)}
	if err := big.Validate(0, 0); err == nil {
		t.Fatal("oversized plan accepted")
	}
}

func TestPlanParent(t *testing.T) {
	p := validTree()
	parent := p.Parent()
	want := []int{2, 2, 3, -1}
	for i, w := range want {
		if parent[i] != w {
			t.Fatalf("parent[%d] = %d, want %d (full: %v)", i, parent[i], w, parent)
		}
	}
}

// FuzzPlanValidate drives Validate with arbitrary operator tables: it
// must never panic, and any plan it accepts must satisfy the structural
// invariants the execution engine relies on (in-range inputs, every
// non-root consumed exactly once, a well-formed Parent map).
func FuzzPlanValidate(f *testing.F) {
	f.Add(int8(1), 10, 0, 0, 0.0, []byte{})
	f.Add(int8(3), 9, -1, 0, math.NaN(), []byte{0, 1})
	f.Add(int8(2), 0, 2, 3, math.Inf(1), []byte{1, 1, 255})
	f.Fuzz(func(t *testing.T, kind int8, reads, frag, dop int, cpu float64, edges []byte) {
		// Build a plan of up to 5 operators: op 0 is fully fuzzed, the rest
		// form a fuzz-wired graph whose edges come from the byte string.
		n := len(edges)/2 + 1
		if n > 5 {
			n = 5
		}
		ops := make([]Operator, n)
		ops[0] = Operator{Kind: OpKind(kind), Reads: reads, Frag: frag, DOP: dop, PageCPU: cpu}
		for i := 1; i < n; i++ {
			a, b := int(edges[(i-1)*2]), 0
			if (i-1)*2+1 < len(edges) {
				b = int(edges[(i-1)*2+1])
			}
			ops[i] = Operator{Kind: OpJoin, Reads: 1, Frag: -1, Inputs: []int{a % (n + 1), b % (n + 1)}}
		}
		root := 0
		if len(edges) > 0 {
			root = int(edges[0]) % (n + 2)
		}
		p := Plan{Ops: ops, Root: root}
		if err := p.Validate(4, 6); err != nil {
			return
		}
		// Accepted: the engine's structural preconditions must hold.
		parent := p.Parent()
		if parent[p.Root] != -1 {
			t.Fatalf("accepted plan's root %d has parent %d", p.Root, parent[p.Root])
		}
		for i, op := range p.Ops {
			if i != p.Root && (parent[i] < 0 || parent[i] >= len(p.Ops)) {
				t.Fatalf("accepted plan: op %d parent %d out of range", i, parent[i])
			}
			if op.Reads < 1 {
				t.Fatalf("accepted plan: op %d reads %d", i, op.Reads)
			}
			for _, in := range op.Inputs {
				if in < 0 || in >= len(p.Ops) || in == i {
					t.Fatalf("accepted plan: op %d has bad input %d", i, in)
				}
			}
		}
	})
}

// TestExpandFragRepCoverage pins the exactly-once property: over many
// page counts and site sets — with and without a placement constraint —
// every share is at least one page and the shares sum exactly to the
// fragment total, so each input page lands in exactly one shipment set.
func TestExpandFragRepCoverage(t *testing.T) {
	pl, err := replica.NewRoundRobin(6, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	stream := rng.NewStream(99)
	for trial := 0; trial < 500; trial++ {
		pages := 1 + stream.Intn(40)
		nsites := 1 + stream.Intn(6)
		perm := stream.Perm(6)
		sites := perm[:nsites]
		var usePl *replica.Placement
		frag := 0
		if stream.Bernoulli(0.5) {
			usePl = pl
			frag = stream.Intn(8)
		}
		rep, err := ExpandFragRep(usePl, frag, pages, sites)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(rep.Sites) != len(rep.Shares) || len(rep.Sites) == 0 {
			t.Fatalf("trial %d: %d sites, %d shares", trial, len(rep.Sites), len(rep.Shares))
		}
		sum, seen := 0, map[int]bool{}
		offered := map[int]bool{}
		for _, s := range sites {
			offered[s] = true
		}
		for i, s := range rep.Sites {
			if rep.Shares[i] < 1 {
				t.Fatalf("trial %d: share %d = %d pages", trial, i, rep.Shares[i])
			}
			if seen[s] {
				t.Fatalf("trial %d: site %d assigned twice", trial, s)
			}
			seen[s] = true
			if !offered[s] {
				t.Fatalf("trial %d: site %d not among the offered candidates", trial, s)
			}
			if usePl != nil && !rep.Degraded && !usePl.Holds(s, frag) {
				t.Fatalf("trial %d: non-degraded share at site %d, which lacks fragment %d", trial, s, frag)
			}
			sum += rep.Shares[i]
		}
		if sum != pages {
			t.Fatalf("trial %d: shares sum to %d, want %d", trial, sum, pages)
		}
		if rep.Degraded && len(rep.Sites) != 1 {
			t.Fatalf("trial %d: degraded expansion across %d sites", trial, len(rep.Sites))
		}
	}
}

// TestExpandFragRepDegraded forces the fallback: when no offered site
// holds the fragment, the whole scan collapses onto the first offered
// site and is flagged so the engine can fetch the fragment first.
func TestExpandFragRepDegraded(t *testing.T) {
	pl, err := replica.NewRoundRobin(6, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	frag := 0
	var holder int
	for s := 0; s < 6; s++ {
		if pl.Holds(s, frag) {
			holder = s
		}
	}
	offered := make([]int, 0, 3)
	for s := 0; s < 6 && len(offered) < 3; s++ {
		if s != holder {
			offered = append(offered, s)
		}
	}
	rep, err := ExpandFragRep(pl, frag, 17, offered)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded {
		t.Fatal("expansion over non-holders not flagged degraded")
	}
	if len(rep.Sites) != 1 || rep.Sites[0] != offered[0] || rep.Shares[0] != 17 {
		t.Fatalf("degraded fallback = %+v, want all 17 pages at site %d", rep, offered[0])
	}
}

func TestExpandFragRepErrors(t *testing.T) {
	if _, err := ExpandFragRep(nil, 0, 0, []int{1}); err == nil {
		t.Error("zero pages accepted")
	}
	if _, err := ExpandFragRep(nil, 0, 5, nil); err == nil {
		t.Error("empty site set accepted")
	}
	if _, err := ExpandFragRep(nil, 0, 5, []int{1, 1}); err == nil {
		t.Error("duplicate site accepted")
	}
	if _, err := ExpandFragRep(nil, 0, 5, []int{-1}); err == nil {
		t.Error("negative site accepted")
	}
	pl, err := replica.NewRoundRobin(4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExpandFragRep(pl, 9, 5, []int{0}); err == nil {
		t.Error("out-of-range fragment accepted")
	}
}

// TestPlanGenAlwaysValid pins the sampler's contract with the engine:
// every generated plan validates, and JoinProb 0 degenerates to the
// single-scan plan carrying exactly the query's sampled demands.
func TestPlanGenAlwaysValid(t *testing.T) {
	cfgs := []PlanGenConfig{
		{JoinProb: 1, FilterProb: 1, SelScan: 0.5, SelJoin: 0.25, JoinPageCPU: 0.1, FilterPageCPU: 0.02, ShipBytesPerPage: 0.05, NumFrags: 8},
		{JoinProb: 0.5, FilterProb: 0.3, SelScan: 2, SelJoin: 0.1, ShipBytesPerPage: 1},
		{JoinProb: 1, SelScan: 0.01, SelJoin: 0.01, NumFrags: 1},
	}
	for ci, cfg := range cfgs {
		gen, err := NewPlanGen(cfg, rng.NewStream(7).Child(12))
		if err != nil {
			t.Fatal(err)
		}
		numFrags := cfg.NumFrags
		for i := 0; i < 300; i++ {
			q := &Query{ReadsTotal: 1 + i%40, Object: i % max(1, numFrags)}
			p := gen.New(q, 20)
			if err := p.Validate(numFrags, 6); err != nil {
				t.Fatalf("cfg %d: generated plan invalid: %v\n%+v", ci, err, p)
			}
		}
	}
	gen, err := NewPlanGen(PlanGenConfig{JoinProb: 0}, rng.NewStream(7).Child(12))
	if err != nil {
		t.Fatal(err)
	}
	q := &Query{ReadsTotal: 23, Object: 3}
	p := gen.New(q, 20)
	if len(p.Ops) != 1 || p.Ops[0].Kind != OpScan || p.Ops[0].Reads != 23 || p.Ops[0].Frag != 3 {
		t.Fatalf("JoinProb 0 plan = %+v, want the monolithic single scan", p)
	}
	if _, err := NewPlanGen(PlanGenConfig{}, nil); err == nil {
		t.Error("nil stream accepted")
	}
}
