package replica

import (
	"fmt"
	"math"

	"dqalloc/internal/rng"
	"dqalloc/internal/stats"
)

// This file is the self-healing replica manager: live placement state
// that a running simulation mutates, instead of the static Placement
// table. Three control loops act on it (all driven by the system layer,
// which owns the event scheduler and the ring):
//
//   - crash-driven re-replication: a site crash wipes the fragment
//     copies it held (except a fragment's last copy, which survives on
//     stable storage); any fragment left below MinCopies gets a timed
//     rebuild that ships the fragment from an up holder to an up
//     non-holder and installs the new copy only when the transfer
//     completes.
//   - load-driven add/drop: per-fragment EWMA access rates promote hot
//     fragments up to MaxCopies and demote cold ones down to MinCopies,
//     with a hysteresis gap (HotRate > ColdRate) and a per-fragment
//     cooldown so noisy estimates don't make placement flap.
//   - degraded remote reads: when no up site holds a fragment the
//     system either pays an explicit ring fetch at the chosen site or
//     rejects the query; the manager only guarantees a fragment always
//     has at least one copy to fetch from.
//
// The manager is pure bookkeeping — it schedules no events and sends no
// messages itself, so it stays deterministic and testable in isolation;
// its only nondeterminism source is the dedicated rng stream used to
// pick donors, targets, and drop victims.

// DegradedMode selects what allocation does when no up site holds a
// queried fragment.
type DegradedMode int

const (
	// DegradedFetch (the default) lets allocation fall back to any up
	// site, which pays an explicit ring fetch of the fragment before
	// executing — degraded but available.
	DegradedFetch DegradedMode = iota
	// DegradedReject rejects the query outright with NoReplica
	// accounting.
	DegradedReject
)

// String names the mode.
func (m DegradedMode) String() string {
	switch m {
	case DegradedFetch:
		return "fetch"
	case DegradedReject:
		return "reject"
	default:
		return "unknown"
	}
}

// ManagerConfig parameterizes the self-healing replica manager. The
// zero value (Enabled == false) disables it: placement stays static and
// the simulation is bit-identical to a build without the manager.
type ManagerConfig struct {
	// Enabled turns the manager on. Requires a Placement.
	Enabled bool

	// MinCopies is the replication floor: a fragment dropping below it
	// (site crash wiping a copy) triggers a rebuild. MaxCopies is the
	// ceiling load-driven promotion may grow a fragment to. Every
	// object's initial placement must lie within [MinCopies, MaxCopies].
	MinCopies int
	MaxCopies int

	// FragmentSize is the ring transfer size of one fragment copy — the
	// rebuild shipment and the degraded-read fetch both pay it. It is
	// deliberately much larger than a query descriptor (MsgLength ~1).
	FragmentSize float64

	// RebuildDelay is the staging delay between detecting a deficit and
	// starting the rebuild transfer; it is also the retry backoff when a
	// rebuild cannot be planned (no up donor or target) or is aborted
	// mid-copy.
	RebuildDelay float64

	// ScanPeriod is the load-driven control loop's period; 0 disables
	// load-driven add/drop (crash-driven rebuilds still run).
	ScanPeriod float64
	// RateTau is the EWMA time constant of the per-fragment access-rate
	// estimate (accesses per time unit).
	RateTau float64
	// HotRate and ColdRate are the promote/demote thresholds. The gap
	// between them is the hysteresis band; HotRate must exceed ColdRate.
	HotRate  float64
	ColdRate float64
	// Cooldown is the minimum time between load-driven placement changes
	// of the same fragment.
	Cooldown float64

	// Degraded selects the no-up-holder behavior (fetch or reject).
	Degraded DegradedMode
}

// DefaultManager returns a moderate self-healing configuration for the
// Table-7 time scale: fragments of 8 message-units, rebuilds staged 25
// time units after the deficit, load-driven add/drop off.
func DefaultManager() ManagerConfig {
	return ManagerConfig{
		Enabled:      true,
		MinCopies:    2,
		MaxCopies:    4,
		FragmentSize: 8,
		RebuildDelay: 25,
		RateTau:      500,
		Cooldown:     1000,
	}
}

// LoadDriven reports whether the load-driven add/drop loop is on.
func (c ManagerConfig) LoadDriven() bool { return c.Enabled && c.ScanPeriod > 0 }

// Validate reports the first configuration error for a system of
// numSites sites. A disabled config is always valid.
func (c ManagerConfig) Validate(numSites int) error {
	if !c.Enabled {
		return nil
	}
	switch {
	case c.MinCopies < 1:
		return fmt.Errorf("replica: MinCopies %d < 1", c.MinCopies)
	case c.MaxCopies < c.MinCopies:
		return fmt.Errorf("replica: MaxCopies %d < MinCopies %d", c.MaxCopies, c.MinCopies)
	case c.MaxCopies > numSites:
		return fmt.Errorf("replica: MaxCopies %d exceeds %d sites", c.MaxCopies, numSites)
	case !(c.FragmentSize > 0) || math.IsInf(c.FragmentSize, 1):
		return fmt.Errorf("replica: FragmentSize %v must be positive and finite", c.FragmentSize)
	case !(c.RebuildDelay > 0) || math.IsInf(c.RebuildDelay, 1):
		return fmt.Errorf("replica: RebuildDelay %v must be positive and finite", c.RebuildDelay)
	case c.ScanPeriod < 0 || math.IsNaN(c.ScanPeriod) || math.IsInf(c.ScanPeriod, 1):
		return fmt.Errorf("replica: ScanPeriod %v must be finite and non-negative", c.ScanPeriod)
	case c.Degraded != DegradedFetch && c.Degraded != DegradedReject:
		return fmt.Errorf("replica: invalid degraded mode %d", c.Degraded)
	}
	if c.ScanPeriod > 0 {
		switch {
		case !(c.RateTau > 0) || math.IsInf(c.RateTau, 1):
			return fmt.Errorf("replica: RateTau %v must be positive and finite", c.RateTau)
		case !(c.HotRate > 0) || math.IsNaN(c.HotRate):
			return fmt.Errorf("replica: load-driven scan needs positive HotRate, got %v", c.HotRate)
		case c.ColdRate < 0 || math.IsNaN(c.ColdRate):
			return fmt.Errorf("replica: negative ColdRate %v", c.ColdRate)
		case c.ColdRate >= c.HotRate:
			return fmt.Errorf("replica: ColdRate %v must be below HotRate %v (hysteresis gap)",
				c.ColdRate, c.HotRate)
		case c.Cooldown < 0 || math.IsNaN(c.Cooldown) || math.IsInf(c.Cooldown, 1):
			return fmt.Errorf("replica: Cooldown %v must be finite and non-negative", c.Cooldown)
		}
	}
	return nil
}

// transfer is one in-flight fragment shipment (at most one per object).
type transfer struct {
	id            uint64
	donor, target int
	add           bool // load-driven add, not a deficit rebuild
}

// Drop records one load-driven copy removal for the caller's
// availability accounting.
type Drop struct {
	Object, Site int
}

// CommitStatus classifies the outcome of a transfer delivery.
type CommitStatus int

const (
	// CommitStale means the delivered transfer was already aborted (a
	// crash invalidated it mid-copy); the delivery is ignored.
	CommitStale CommitStatus = iota
	// CommitInstalled means the copy was installed at the target.
	CommitInstalled
	// CommitAborted means the record was live but the install was
	// impossible (target down or already holding); the transfer aborts.
	CommitAborted
)

// Manager is the live placement plus the bookkeeping of the three
// control loops. It is built from a static Placement, which it never
// mutates.
type Manager struct {
	cfg      ManagerConfig
	numSites int
	holds    [][]bool // object -> site -> holds a copy
	copies   []int    // object -> live copy count
	cands    [][]int  // object -> cached sorted candidate list
	dirty    []bool   // cands[o] needs a rebuild

	pending   []bool      // a rebuild-start event is scheduled
	inflight  []*transfer // the object's in-flight shipment, nil if none
	deficitAt []float64   // when the object last fell below MinCopies

	rate       []float64 // EWMA access rate (accesses per time unit)
	rateAt     []float64 // last rate update instant
	lastChange []float64 // last load-driven add/drop (cooldown clock)

	stream *rng.Stream
	nextID uint64

	mutations uint64 // bumped on every placement/transfer change
	deficient int    // objects with copies < MinCopies

	launched, rebuilt, added, dropped, aborted uint64
	inflightN                                  int
	rebuildLatency                             stats.Welford
}

// NewManager builds a live manager seeded from the static placement p.
// stream is the manager's dedicated random stream (donor/target/victim
// choices); it must not be shared with any other subsystem.
func NewManager(p *Placement, cfg ManagerConfig, stream *rng.Stream) (*Manager, error) {
	if p == nil {
		return nil, fmt.Errorf("replica: manager needs a placement")
	}
	if err := cfg.Validate(p.NumSites()); err != nil {
		return nil, err
	}
	if stream == nil {
		return nil, fmt.Errorf("replica: nil random stream")
	}
	n := p.NumObjects()
	m := &Manager{
		cfg:        cfg,
		numSites:   p.NumSites(),
		holds:      make([][]bool, n),
		copies:     make([]int, n),
		cands:      make([][]int, n),
		dirty:      make([]bool, n),
		pending:    make([]bool, n),
		inflight:   make([]*transfer, n),
		deficitAt:  make([]float64, n),
		rate:       make([]float64, n),
		rateAt:     make([]float64, n),
		lastChange: make([]float64, n),
		stream:     stream,
	}
	for o := 0; o < n; o++ {
		m.holds[o] = make([]bool, m.numSites)
		init := p.Candidates(o)
		if len(init) < cfg.MinCopies || len(init) > cfg.MaxCopies {
			return nil, fmt.Errorf("replica: object %d starts with %d copies outside [%d,%d]",
				o, len(init), cfg.MinCopies, cfg.MaxCopies)
		}
		for _, s := range init {
			m.holds[o][s] = true
		}
		m.copies[o] = len(init)
		m.cands[o] = append([]int(nil), init...)
	}
	return m, nil
}

// Config returns the manager's configuration.
func (m *Manager) Config() ManagerConfig { return m.cfg }

// NumSites returns the number of sites the placement spans.
func (m *Manager) NumSites() int { return m.numSites }

// NumObjects returns the number of managed objects.
func (m *Manager) NumObjects() int { return len(m.copies) }

// Holds reports whether site currently stores a copy of object.
func (m *Manager) Holds(site, object int) bool { return m.holds[object][site] }

// Copies returns object's live copy count.
func (m *Manager) Copies(object int) int { return m.copies[object] }

// Pending reports whether object has a scheduled rebuild-start event.
func (m *Manager) Pending(object int) bool { return m.pending[object] }

// InFlight reports whether object has a shipment on the ring.
func (m *Manager) InFlight(object int) bool { return m.inflight[object] != nil }

// Mutations returns a counter bumped on every placement or transfer
// change — auditors use it to skip re-scans when nothing moved.
func (m *Manager) Mutations() uint64 { return m.mutations }

// Candidates returns the sites currently holding a copy of object,
// sorted ascending. The returned slice is shared and valid until the
// next placement mutation; callers must not mutate or retain it.
func (m *Manager) Candidates(object int) []int {
	if m.dirty[object] {
		c := m.cands[object][:0]
		for s := 0; s < m.numSites; s++ {
			if m.holds[object][s] {
				c = append(c, s)
			}
		}
		m.cands[object] = c
		m.dirty[object] = false
	}
	return m.cands[object]
}

// UpHolders returns how many up sites hold a copy of object.
func (m *Manager) UpHolders(object int, up []bool) int {
	n := 0
	for s := 0; s < m.numSites; s++ {
		if m.holds[object][s] && (up == nil || up[s]) {
			n++
		}
	}
	return n
}

// removeCopy drops object's copy at site, maintaining the deficit
// bookkeeping. The caller guarantees the copy exists.
func (m *Manager) removeCopy(object, site int, now float64) {
	m.holds[object][site] = false
	m.copies[object]--
	m.dirty[object] = true
	m.mutations++
	if m.copies[object] == m.cfg.MinCopies-1 {
		m.deficient++
		m.deficitAt[object] = now
	}
}

// installCopy adds object's copy at site, maintaining the deficit
// bookkeeping; reports whether the install resolved a deficit.
func (m *Manager) installCopy(object, site int, now float64, viaRebuild bool) {
	m.holds[object][site] = true
	m.copies[object]++
	m.dirty[object] = true
	m.mutations++
	if m.copies[object] == m.cfg.MinCopies {
		m.deficient--
		if viaRebuild {
			m.rebuildLatency.Add(now - m.deficitAt[object])
		}
	}
}

// OnCrash wipes the fragment copies the crashed site held — except a
// fragment's last copy, which survives on stable storage — and aborts
// every in-flight shipment whose donor or target crashed mid-copy. It
// returns the objects the caller must (re)schedule a rebuild for: each
// is newly deficient (or its covering transfer just aborted) and has
// neither a pending rebuild event nor a live shipment.
func (m *Manager) OnCrash(site int, now float64) []int {
	for o, t := range m.inflight {
		if t != nil && (t.donor == site || t.target == site) {
			m.abortTransfer(o)
		}
	}
	for o := range m.holds {
		if m.holds[o][site] && m.copies[o] > 1 {
			m.removeCopy(o, site, now)
		}
	}
	var schedule []int
	for o := range m.copies {
		if m.copies[o] < m.cfg.MinCopies && !m.pending[o] && m.inflight[o] == nil {
			m.pending[o] = true
			schedule = append(schedule, o)
		}
	}
	return schedule
}

// abortTransfer retires object's in-flight shipment.
func (m *Manager) abortTransfer(object int) {
	m.inflight[object] = nil
	m.inflightN--
	m.aborted++
	m.mutations++
}

// PlanRebuild picks a donor (uniform among up holders) and a target
// (uniform among up non-holders) for object's pending rebuild. ok is
// false when no donor or no target is currently up — the caller should
// retry after RebuildDelay; the object stays pending.
func (m *Manager) PlanRebuild(object int, up []bool) (donor, target int, ok bool) {
	return m.plan(object, up)
}

// PlanAdd is PlanRebuild for a load-driven promotion: same donor/target
// rule, no pending requirement.
func (m *Manager) PlanAdd(object int, up []bool) (donor, target int, ok bool) {
	return m.plan(object, up)
}

func (m *Manager) plan(object int, up []bool) (donor, target int, ok bool) {
	holders, others := 0, 0
	for s := 0; s < m.numSites; s++ {
		if up != nil && !up[s] {
			continue
		}
		if m.holds[object][s] {
			holders++
		} else {
			others++
		}
	}
	if holders == 0 || others == 0 {
		return -1, -1, false
	}
	dk, tk := m.stream.Intn(holders), m.stream.Intn(others)
	donor, target = -1, -1
	for s := 0; s < m.numSites; s++ {
		if up != nil && !up[s] {
			continue
		}
		if m.holds[object][s] {
			if dk == 0 && donor < 0 {
				donor = s
			}
			dk--
		} else {
			if tk == 0 && target < 0 {
				target = s
			}
			tk--
		}
	}
	return donor, target, true
}

// Begin registers object's shipment from donor to target and returns
// its transfer id, which Commit and Abort must echo. add marks a
// load-driven promotion (it also starts the object's cooldown).
func (m *Manager) Begin(object, donor, target int, add bool, now float64) uint64 {
	if m.inflight[object] != nil {
		panic(fmt.Sprintf("replica: object %d already has a shipment in flight", object))
	}
	m.nextID++
	m.inflight[object] = &transfer{id: m.nextID, donor: donor, target: target, add: add}
	m.inflightN++
	m.pending[object] = false
	m.launched++
	m.mutations++
	if add {
		m.lastChange[object] = now
	}
	return m.nextID
}

// Commit lands object's shipment: if the record with the given id is
// still live and the target can take the copy, the copy is installed.
// needMore reports that the object is still below MinCopies afterwards
// (or the install failed while deficient): the caller must schedule
// another rebuild; the object has been marked pending again.
func (m *Manager) Commit(object int, id uint64, now float64, up []bool) (st CommitStatus, needMore bool) {
	t := m.inflight[object]
	if t == nil || t.id != id {
		return CommitStale, false
	}
	if (up != nil && !up[t.target]) || m.holds[object][t.target] {
		// Unreachable under the crash-abort discipline (a crashed donor
		// or target aborts the record first), kept as a safety net.
		m.abortTransfer(object)
		return CommitAborted, m.markPendingIfDeficient(object)
	}
	target, add := t.target, t.add
	m.inflight[object] = nil
	m.inflightN--
	m.installCopy(object, target, now, !add)
	if add {
		m.added++
	} else {
		m.rebuilt++
	}
	return CommitInstalled, m.markPendingIfDeficient(object)
}

// Abort retires object's shipment after a ring drop. live reports
// whether the record was still current; needMore that the object
// remains deficient and was marked pending for a retry.
func (m *Manager) Abort(object int, id uint64) (live, needMore bool) {
	t := m.inflight[object]
	if t == nil || t.id != id {
		return false, false
	}
	m.abortTransfer(object)
	return true, m.markPendingIfDeficient(object)
}

// markPendingIfDeficient re-marks object as pending when it is still
// below MinCopies and nothing is scheduled or in flight to fix that.
func (m *Manager) markPendingIfDeficient(object int) bool {
	if m.copies[object] < m.cfg.MinCopies && !m.pending[object] && m.inflight[object] == nil {
		m.pending[object] = true
		return true
	}
	return false
}

// Touch records one access to object at time now, updating its EWMA
// rate estimate. Call on every allocation when the load-driven loop is
// on; it draws no random numbers.
func (m *Manager) Touch(object int, now float64) {
	m.decayRate(object, now)
	m.rate[object] += 1 / m.cfg.RateTau
}

func (m *Manager) decayRate(object int, now float64) {
	if dt := now - m.rateAt[object]; dt > 0 {
		m.rate[object] *= math.Exp(-dt / m.cfg.RateTau)
		m.rateAt[object] = now
	}
}

// Rate returns object's access-rate estimate decayed to now.
func (m *Manager) Rate(object int, now float64) float64 {
	m.decayRate(object, now)
	return m.rate[object]
}

// Scan runs one load-driven control step: it returns the hot fragments
// to promote (the caller plans and launches their transfers) and
// performs the cold demotions inline, returning them for the caller's
// availability accounting. canDrop vetoes dropping a copy a site is
// still executing queries against; a fragment's last up copy is never
// dropped.
func (m *Manager) Scan(now float64, up []bool, canDrop func(site, object int) bool) (promote []int, drops []Drop) {
	for o := range m.copies {
		m.decayRate(o, now)
		if m.pending[o] || m.inflight[o] != nil || now-m.lastChange[o] < m.cfg.Cooldown {
			continue
		}
		switch r := m.rate[o]; {
		case r > m.cfg.HotRate && m.copies[o] < m.cfg.MaxCopies:
			promote = append(promote, o)
		case r < m.cfg.ColdRate && m.copies[o] > m.cfg.MinCopies:
			if site, ok := m.dropVictim(o, up, canDrop); ok {
				m.removeCopy(o, site, now)
				m.dropped++
				m.lastChange[o] = now
				drops = append(drops, Drop{Object: o, Site: site})
			}
		}
	}
	return promote, drops
}

// dropVictim picks a uniform up holder of object that canDrop allows,
// keeping at least one other up copy alive.
func (m *Manager) dropVictim(object int, up []bool, canDrop func(site, object int) bool) (int, bool) {
	if m.UpHolders(object, up) < 2 {
		return -1, false
	}
	eligible := 0
	for s := 0; s < m.numSites; s++ {
		if m.holds[object][s] && (up == nil || up[s]) && canDrop(s, object) {
			eligible++
		}
	}
	if eligible == 0 {
		return -1, false
	}
	k := m.stream.Intn(eligible)
	for s := 0; s < m.numSites; s++ {
		if m.holds[object][s] && (up == nil || up[s]) && canDrop(s, object) {
			if k == 0 {
				return s, true
			}
			k--
		}
	}
	return -1, false
}

// Rebuilt, Added, Dropped and Aborted return the lifetime ledger
// counters; MeanRebuildLatency the mean deficit→install latency of
// completed deficit rebuilds.
func (m *Manager) Rebuilt() uint64             { return m.rebuilt }
func (m *Manager) Added() uint64               { return m.added }
func (m *Manager) Dropped() uint64             { return m.dropped }
func (m *Manager) Aborted() uint64             { return m.aborted }
func (m *Manager) MeanRebuildLatency() float64 { return m.rebuildLatency.Mean() }

// AuditState snapshots the invariants the replication-conservation
// auditor asserts. It costs O(objects × sites); callers should gate on
// Mutations.
type AuditState struct {
	// Deficient counts objects below MinCopies; Uncovered those among
	// them with neither a pending rebuild event nor a live shipment
	// (must be zero at every event boundary).
	Deficient, Uncovered int
	// ZeroCopy and OverMax count objects outside [1, MaxCopies] (must
	// be zero: the last copy survives crashes, promotion is bounded).
	ZeroCopy, OverMax int
	// Inconsistent counts objects whose copy counter disagrees with
	// their holder bitmap (must be zero).
	Inconsistent int
	// InFlight is the number of live shipments; the ledger identity is
	// Launched == Rebuilt + Added + Aborted + InFlight.
	InFlight                          int
	Launched, Rebuilt, Added, Aborted uint64
}

// Audit computes the current invariant snapshot.
func (m *Manager) Audit() AuditState {
	st := AuditState{
		InFlight: m.inflightN,
		Launched: m.launched,
		Rebuilt:  m.rebuilt,
		Added:    m.added,
		Aborted:  m.aborted,
	}
	for o := range m.copies {
		n := 0
		for s := 0; s < m.numSites; s++ {
			if m.holds[o][s] {
				n++
			}
		}
		if n != m.copies[o] {
			st.Inconsistent++
		}
		switch {
		case m.copies[o] < 1:
			st.ZeroCopy++
		case m.copies[o] > m.cfg.MaxCopies:
			st.OverMax++
		}
		if m.copies[o] < m.cfg.MinCopies {
			st.Deficient++
			if !m.pending[o] && m.inflight[o] == nil {
				st.Uncovered++
			}
		}
	}
	return st
}
