package replica

import (
	"testing"

	"dqalloc/internal/rng"
)

func testManager(t *testing.T, sites, objects, copies int, cfg ManagerConfig) *Manager {
	t.Helper()
	p, err := NewRoundRobin(sites, objects, copies)
	if err != nil {
		t.Fatalf("placement: %v", err)
	}
	m, err := NewManager(p, cfg, rng.NewStream(7).Child(11))
	if err != nil {
		t.Fatalf("manager: %v", err)
	}
	return m
}

func allUp(n int) []bool {
	up := make([]bool, n)
	for i := range up {
		up[i] = true
	}
	return up
}

func auditClean(t *testing.T, m *Manager) AuditState {
	t.Helper()
	st := m.Audit()
	if st.ZeroCopy != 0 || st.OverMax != 0 || st.Uncovered != 0 || st.Inconsistent != 0 {
		t.Fatalf("audit violation: %+v", st)
	}
	if st.Launched != st.Rebuilt+st.Added+st.Aborted+uint64(st.InFlight) {
		t.Fatalf("ledger leak: %+v", st)
	}
	return st
}

func TestReplicaManagerConfigValidate(t *testing.T) {
	base := DefaultManager()
	cases := map[string]func(*ManagerConfig){
		"min below one":     func(c *ManagerConfig) { c.MinCopies = 0 },
		"max below min":     func(c *ManagerConfig) { c.MaxCopies = 1 },
		"max above sites":   func(c *ManagerConfig) { c.MaxCopies = 7 },
		"zero fragment":     func(c *ManagerConfig) { c.FragmentSize = 0 },
		"zero rebuild":      func(c *ManagerConfig) { c.RebuildDelay = 0 },
		"negative scan":     func(c *ManagerConfig) { c.ScanPeriod = -1 },
		"bad degraded mode": func(c *ManagerConfig) { c.Degraded = DegradedMode(9) },
		"scan without hot":  func(c *ManagerConfig) { c.ScanPeriod = 50 },
		"inverted hysteresis": func(c *ManagerConfig) {
			c.ScanPeriod = 50
			c.HotRate, c.ColdRate = 0.1, 0.2
		},
	}
	for name, mutate := range cases {
		cfg := base
		mutate(&cfg)
		if err := cfg.Validate(6); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
	if err := base.Validate(6); err != nil {
		t.Errorf("default invalid: %v", err)
	}
	off := ManagerConfig{}
	if err := off.Validate(1); err != nil {
		t.Errorf("disabled config invalid: %v", err)
	}
}

func TestReplicaManagerRejectsBadInitialPlacement(t *testing.T) {
	p, err := NewRoundRobin(4, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultManager() // MinCopies 2 > initial 1
	if _, err := NewManager(p, cfg, rng.NewStream(1)); err == nil {
		t.Fatal("single-copy placement accepted with MinCopies=2")
	}
}

func TestReplicaManagerCrashWipesExceptLastCopy(t *testing.T) {
	cfg := DefaultManager()
	cfg.MinCopies, cfg.MaxCopies = 2, 3
	m := testManager(t, 4, 8, 2, cfg)

	sched := m.OnCrash(0, 100)
	if len(sched) == 0 {
		t.Fatal("crash of a holder scheduled no rebuilds")
	}
	for _, o := range sched {
		if m.Copies(o) != 1 {
			t.Fatalf("object %d: %d copies after wipe", o, m.Copies(o))
		}
		if m.Holds(0, o) {
			t.Fatalf("object %d still held at crashed site", o)
		}
		if !m.Pending(o) {
			t.Fatalf("object %d deficient but not pending", o)
		}
	}
	// Crash every other site too: each fragment's last copy must survive.
	for s := 1; s < 4; s++ {
		m.OnCrash(s, 100+float64(s))
	}
	for o := 0; o < m.NumObjects(); o++ {
		if m.Copies(o) != 1 {
			t.Fatalf("object %d: %d copies after total outage (want last copy to survive)", o, m.Copies(o))
		}
	}
	auditClean(t, m)
}

func TestReplicaManagerRebuildLifecycle(t *testing.T) {
	cfg := DefaultManager()
	cfg.MinCopies, cfg.MaxCopies = 2, 3
	m := testManager(t, 4, 4, 2, cfg)
	up := allUp(4)

	sched := m.OnCrash(0, 50)
	up[0] = false
	o := sched[0]
	donor, target, ok := m.PlanRebuild(o, up)
	if !ok {
		t.Fatal("plan failed with up donors and targets")
	}
	if !m.Holds(donor, o) || m.Holds(target, o) || donor == 0 || target == 0 {
		t.Fatalf("bad plan donor=%d target=%d", donor, target)
	}
	id := m.Begin(o, donor, target, false, 50)
	if m.Pending(o) || !m.InFlight(o) {
		t.Fatal("begin did not move pending -> in-flight")
	}
	st, needMore := m.Commit(o, id, 80, up)
	if st != CommitInstalled || needMore {
		t.Fatalf("commit: %v needMore=%v", st, needMore)
	}
	if m.Copies(o) != 2 || !m.Holds(target, o) {
		t.Fatalf("copy not installed: copies=%d", m.Copies(o))
	}
	if m.Rebuilt() != 1 {
		t.Fatalf("rebuilt=%d", m.Rebuilt())
	}
	if got := m.MeanRebuildLatency(); got != 30 {
		t.Fatalf("rebuild latency %v, want 30", got)
	}
	// A replayed (stale) delivery must be ignored.
	if st, _ := m.Commit(o, id, 90, up); st != CommitStale {
		t.Fatalf("replayed commit: %v", st)
	}
	auditClean(t, m)
}

func TestReplicaManagerCrashAbortsMidCopy(t *testing.T) {
	cfg := DefaultManager()
	cfg.MinCopies, cfg.MaxCopies = 2, 3
	m := testManager(t, 4, 4, 2, cfg)
	up := allUp(4)

	sched := m.OnCrash(0, 50)
	up[0] = false
	o := sched[0]
	donor, target, _ := m.PlanRebuild(o, up)
	id := m.Begin(o, donor, target, false, 50)

	// The donor dies mid-copy: the shipment aborts and the object is
	// re-marked pending for another attempt.
	resched := m.OnCrash(donor, 60)
	up[donor] = false
	if m.InFlight(o) {
		t.Fatal("shipment survived its donor")
	}
	found := false
	for _, r := range resched {
		if r == o {
			found = true
		}
	}
	if !found || !m.Pending(o) {
		t.Fatalf("aborted object not rescheduled (resched=%v pending=%v)", resched, m.Pending(o))
	}
	// The stale delivery arrives anyway and must be a no-op.
	if st, _ := m.Commit(o, id, 70, up); st != CommitStale {
		t.Fatalf("stale delivery landed: %v", st)
	}
	if m.Aborted() != 1 {
		t.Fatalf("aborted=%d", m.Aborted())
	}
	auditClean(t, m)
}

func TestReplicaManagerRingDropAbort(t *testing.T) {
	cfg := DefaultManager()
	cfg.MinCopies, cfg.MaxCopies = 2, 3
	m := testManager(t, 4, 4, 2, cfg)
	up := allUp(4)

	o := m.OnCrash(0, 10)[0]
	up[0] = false
	donor, target, _ := m.PlanRebuild(o, up)
	id := m.Begin(o, donor, target, false, 10)
	live, needMore := m.Abort(o, id)
	if !live || !needMore {
		t.Fatalf("drop abort live=%v needMore=%v", live, needMore)
	}
	if live, _ := m.Abort(o, id); live {
		t.Fatal("double abort reported live")
	}
	auditClean(t, m)
}

func TestReplicaManagerLoadDrivenScan(t *testing.T) {
	cfg := DefaultManager()
	cfg.MinCopies, cfg.MaxCopies = 1, 3
	cfg.ScanPeriod = 100
	cfg.RateTau = 100
	cfg.HotRate = 0.05
	cfg.ColdRate = 0.01
	cfg.Cooldown = 0
	m := testManager(t, 4, 2, 2, cfg)
	up := allUp(4)
	anyDrop := func(site, object int) bool { return true }

	// Hammer object 0; leave object 1 untouched so its rate decays to 0.
	for i := 0; i < 200; i++ {
		m.Touch(0, float64(i))
	}
	promote, drops := m.Scan(250, up, anyDrop)
	if len(promote) != 1 || promote[0] != 0 {
		t.Fatalf("promote=%v, want [0]", promote)
	}
	if len(drops) != 1 || drops[0].Object != 1 {
		t.Fatalf("drops=%v, want object 1", drops)
	}
	if m.Copies(1) != 1 || m.Dropped() != 1 {
		t.Fatalf("cold object not demoted: copies=%d dropped=%d", m.Copies(1), m.Dropped())
	}
	// Promotion flows through the same transfer machinery.
	donor, target, ok := m.PlanAdd(0, up)
	if !ok {
		t.Fatal("plan add failed")
	}
	id := m.Begin(0, donor, target, true, 250)
	if st, _ := m.Commit(0, id, 260, up); st != CommitInstalled {
		t.Fatalf("add commit: %v", st)
	}
	if m.Copies(0) != 3 || m.Added() != 1 {
		t.Fatalf("hot object not promoted: copies=%d added=%d", m.Copies(0), m.Added())
	}
	// At MaxCopies and with the other object at MinCopies, a second scan
	// changes nothing.
	promote, drops = m.Scan(261, up, anyDrop)
	if len(promote) != 0 || len(drops) != 0 {
		t.Fatalf("steady-state scan moved copies: %v %v", promote, drops)
	}
	auditClean(t, m)
}

func TestReplicaManagerScanGuards(t *testing.T) {
	cfg := DefaultManager()
	cfg.MinCopies, cfg.MaxCopies = 1, 3
	cfg.ScanPeriod = 100
	cfg.RateTau = 100
	cfg.HotRate = 0.5
	cfg.ColdRate = 0.4
	cfg.Cooldown = 0
	m := testManager(t, 4, 1, 2, cfg)
	up := allUp(4)

	// canDrop veto: active queries pin every copy.
	if _, drops := m.Scan(10, up, func(int, int) bool { return false }); len(drops) != 0 {
		t.Fatalf("dropped pinned copies: %v", drops)
	}
	// Last-up-copy guard: with one holder down, the surviving up copy
	// must not be dropped even though copies > MinCopies.
	holders := m.Candidates(0)
	up[holders[0]] = false
	if _, drops := m.Scan(20, up, func(int, int) bool { return true }); len(drops) != 0 {
		t.Fatalf("dropped the last up copy: %v", drops)
	}
	auditClean(t, m)
}

// TestReplicaManagerCrashStorm runs a deterministic storm of crashes,
// plans, drops, and commits and re-checks the audit invariants after
// every step — the unit-level version of the system auditor.
func TestReplicaManagerCrashStorm(t *testing.T) {
	cfg := DefaultManager()
	cfg.MinCopies, cfg.MaxCopies = 2, 4
	m := testManager(t, 6, 30, 3, cfg)
	up := allUp(6)
	r := rng.NewStream(42)

	type flight struct {
		object int
		id     uint64
	}
	var flights []flight
	pendingSet := map[int]bool{}
	now := 0.0
	for step := 0; step < 500; step++ {
		now += 1
		switch r.Intn(4) {
		case 0: // crash or repair a site
			s := r.Intn(6)
			if up[s] {
				up[s] = false
				for _, o := range m.OnCrash(s, now) {
					pendingSet[o] = true
				}
				// Drop flights the crash aborted.
				kept := flights[:0]
				for _, f := range flights {
					if m.InFlight(f.object) {
						kept = append(kept, f)
					} else if m.Pending(f.object) {
						pendingSet[f.object] = true
					}
				}
				flights = kept
			} else {
				up[s] = true
			}
		case 1: // start a pending rebuild
			for o := range pendingSet {
				if donor, target, ok := m.PlanRebuild(o, up); ok {
					id := m.Begin(o, donor, target, false, now)
					flights = append(flights, flight{o, id})
					delete(pendingSet, o)
				}
				break
			}
		case 2: // deliver a flight
			if len(flights) > 0 {
				f := flights[0]
				flights = flights[1:]
				if _, needMore := m.Commit(f.object, f.id, now, up); needMore {
					pendingSet[f.object] = true
				}
			}
		case 3: // ring-drop a flight
			if len(flights) > 0 {
				f := flights[0]
				flights = flights[1:]
				if _, needMore := m.Abort(f.object, f.id); needMore {
					pendingSet[f.object] = true
				}
			}
		}
		auditClean(t, m)
	}
	st := auditClean(t, m)
	if st.Launched == 0 {
		t.Fatal("storm launched no rebuilds")
	}
}
