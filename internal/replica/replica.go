// Package replica models partially replicated data — the environment the
// paper's future-work section (6.2) targets: "dynamically allocating
// subqueries of distributed queries to sites in an environment with only
// partially replicated data".
//
// The database is divided into objects (relations/fragments); each object
// is stored at a subset of the sites. A query references one object and
// may only execute at sites holding a copy, so the allocation policies
// choose among that candidate set instead of all sites. The paper's
// fully-replicated study is the special case copies = numSites.
package replica

import (
	"fmt"

	"dqalloc/internal/rng"
)

// Placement records which sites hold a copy of each object.
type Placement struct {
	numSites int
	sites    [][]int // object -> sorted candidate sites
}

// NewRoundRobin places numObjects objects with copiesPer copies each,
// assigning copies to consecutive sites round-robin: object o lives at
// sites o, o+1, …, o+copiesPer−1 (mod numSites). This spreads copies
// evenly and deterministically.
func NewRoundRobin(numSites, numObjects, copiesPer int) (*Placement, error) {
	if err := validate(numSites, numObjects, copiesPer); err != nil {
		return nil, err
	}
	p := &Placement{numSites: numSites, sites: make([][]int, numObjects)}
	for o := 0; o < numObjects; o++ {
		cand := make([]int, copiesPer)
		for c := 0; c < copiesPer; c++ {
			cand[c] = (o + c) % numSites
		}
		sortInts(cand)
		p.sites[o] = cand
	}
	return p, nil
}

// NewRandom places numObjects objects with copiesPer copies each at
// uniformly random distinct sites drawn from stream.
func NewRandom(numSites, numObjects, copiesPer int, stream *rng.Stream) (*Placement, error) {
	if err := validate(numSites, numObjects, copiesPer); err != nil {
		return nil, err
	}
	if stream == nil {
		return nil, fmt.Errorf("replica: nil random stream")
	}
	p := &Placement{numSites: numSites, sites: make([][]int, numObjects)}
	for o := 0; o < numObjects; o++ {
		perm := stream.Perm(numSites)
		cand := append([]int(nil), perm[:copiesPer]...)
		sortInts(cand)
		p.sites[o] = cand
	}
	return p, nil
}

// Full returns the fully-replicated placement: every object at every
// site (the paper's main environment).
func Full(numSites, numObjects int) (*Placement, error) {
	return NewRoundRobin(numSites, numObjects, numSites)
}

func validate(numSites, numObjects, copiesPer int) error {
	switch {
	case numSites < 1:
		return fmt.Errorf("replica: numSites %d < 1", numSites)
	case numObjects < 1:
		return fmt.Errorf("replica: numObjects %d < 1", numObjects)
	case copiesPer < 1:
		return fmt.Errorf("replica: copiesPer %d < 1", copiesPer)
	case copiesPer > numSites:
		return fmt.Errorf("replica: copiesPer %d exceeds numSites %d", copiesPer, numSites)
	}
	return nil
}

// NumSites returns the number of sites the placement spans.
func (p *Placement) NumSites() int { return p.numSites }

// NumObjects returns the number of placed objects.
func (p *Placement) NumObjects() int { return len(p.sites) }

// Candidates returns the sites holding a copy of the object, sorted
// ascending. The returned slice is shared: callers must not mutate it.
func (p *Placement) Candidates(object int) []int {
	if object < 0 || object >= len(p.sites) {
		panic(fmt.Sprintf("replica: object %d out of range [0,%d)", object, len(p.sites)))
	}
	return p.sites[object]
}

// Holds reports whether site stores a copy of object.
func (p *Placement) Holds(site, object int) bool {
	for _, s := range p.Candidates(object) {
		if s == site {
			return true
		}
	}
	return false
}

// CopiesPerSite returns, for each site, how many objects it stores —
// useful for checking placement balance.
func (p *Placement) CopiesPerSite() []int {
	counts := make([]int, p.numSites)
	for _, cand := range p.sites {
		for _, s := range cand {
			counts[s]++
		}
	}
	return counts
}

// sortInts sorts a small int slice in place (insertion sort: candidate
// sets are tiny and this avoids pulling in sort for a hot path).
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
