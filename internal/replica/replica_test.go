package replica

import (
	"testing"
	"testing/quick"

	"dqalloc/internal/rng"
)

func TestRoundRobinPlacement(t *testing.T) {
	p, err := NewRoundRobin(4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumSites() != 4 || p.NumObjects() != 4 {
		t.Fatalf("dims = %d/%d", p.NumSites(), p.NumObjects())
	}
	// Object 0 -> sites {0,1}; object 3 wraps -> {0,3}.
	c0 := p.Candidates(0)
	if len(c0) != 2 || c0[0] != 0 || c0[1] != 1 {
		t.Errorf("Candidates(0) = %v, want [0 1]", c0)
	}
	c3 := p.Candidates(3)
	if len(c3) != 2 || c3[0] != 0 || c3[1] != 3 {
		t.Errorf("Candidates(3) = %v, want [0 3]", c3)
	}
	if !p.Holds(1, 0) || p.Holds(2, 0) {
		t.Error("Holds mismatch for object 0")
	}
}

func TestRoundRobinBalance(t *testing.T) {
	// With numObjects a multiple of numSites, every site stores the same
	// number of copies.
	p, err := NewRoundRobin(6, 60, 3)
	if err != nil {
		t.Fatal(err)
	}
	for s, c := range p.CopiesPerSite() {
		if c != 30 {
			t.Errorf("site %d stores %d copies, want 30", s, c)
		}
	}
}

func TestRandomPlacementProperties(t *testing.T) {
	stream := rng.NewStream(11)
	f := func(rawSites, rawObjects, rawCopies uint8) bool {
		numSites := int(rawSites%8) + 1
		numObjects := int(rawObjects%20) + 1
		copies := int(rawCopies)%numSites + 1
		p, err := NewRandom(numSites, numObjects, copies, stream)
		if err != nil {
			return false
		}
		for o := 0; o < numObjects; o++ {
			cand := p.Candidates(o)
			if len(cand) != copies {
				return false
			}
			for i, s := range cand {
				if s < 0 || s >= numSites {
					return false
				}
				if i > 0 && cand[i-1] >= s { // sorted, distinct
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFullPlacement(t *testing.T) {
	p, err := Full(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	for o := 0; o < 5; o++ {
		if len(p.Candidates(o)) != 3 {
			t.Errorf("object %d not at all sites: %v", o, p.Candidates(o))
		}
	}
}

func TestValidation(t *testing.T) {
	cases := []struct{ sites, objects, copies int }{
		{0, 1, 1}, {1, 0, 1}, {1, 1, 0}, {2, 1, 3},
	}
	for _, c := range cases {
		if _, err := NewRoundRobin(c.sites, c.objects, c.copies); err == nil {
			t.Errorf("NewRoundRobin(%+v) accepted", c)
		}
	}
	if _, err := NewRandom(2, 2, 1, nil); err == nil {
		t.Error("nil stream accepted")
	}
}

func TestCandidatesPanicsOutOfRange(t *testing.T) {
	p, err := NewRoundRobin(2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range object did not panic")
		}
	}()
	p.Candidates(5)
}

func TestSortInts(t *testing.T) {
	a := []int{5, 2, 4, 1, 3}
	sortInts(a)
	for i := range a {
		if a[i] != i+1 {
			t.Fatalf("sortInts = %v", a)
		}
	}
}
