package sim

import "testing"

// runSchedule fires a fixed event pattern and returns the digest.
func runSchedule(tag byte) uint64 {
	s := New()
	s.EnableDigest()
	for i := 0; i < 10; i++ {
		e := s.At(float64(i%3), func() {})
		e.SetKind(tag)
	}
	s.Run()
	return s.Digest()
}

func TestDigestDeterministic(t *testing.T) {
	a, b := runSchedule(1), runSchedule(1)
	if a == 0 {
		t.Fatal("digest is zero after events fired")
	}
	if a != b {
		t.Errorf("identical schedules digest %x vs %x", a, b)
	}
}

func TestDigestDistinguishesKind(t *testing.T) {
	if runSchedule(1) == runSchedule(2) {
		t.Error("digest ignores event kind")
	}
}

func TestDigestDistinguishesSchedule(t *testing.T) {
	s := New()
	s.EnableDigest()
	s.At(1, func() {})
	s.At(2, func() {})
	s.Run()
	other := New()
	other.EnableDigest()
	other.At(1, func() {})
	other.At(3, func() {})
	other.Run()
	if s.Digest() == other.Digest() {
		t.Error("digest ignores event times")
	}
}

func TestDigestDisabledIsZero(t *testing.T) {
	s := New()
	s.At(1, func() {})
	s.Run()
	if s.Digest() != 0 {
		t.Errorf("digest = %x without EnableDigest, want 0", s.Digest())
	}
}

func TestObserverSeesFiredEvents(t *testing.T) {
	s := New()
	var times []float64
	var seqs []uint64
	s.Observe(func(e *Event) {
		times = append(times, e.Time())
		seqs = append(seqs, e.Seq())
	})
	s.At(2, func() {})
	s.At(1, func() {})
	s.At(1, func() {})
	s.Run()
	if len(times) != 3 {
		t.Fatalf("observer saw %d events, want 3", len(times))
	}
	if times[0] != 1 || times[1] != 1 || times[2] != 2 {
		t.Errorf("fire order %v, want [1 1 2]", times)
	}
	// Same-instant events report in scheduling order.
	if seqs[0] >= seqs[1] {
		t.Errorf("same-instant seqs %v not FIFO", seqs[:2])
	}
	// Observer can be removed.
	s.Observe(nil)
	s.At(3, func() {})
	s.Run()
	if len(times) != 3 {
		t.Error("observer still active after Observe(nil)")
	}
}

func TestObserverRunsBeforeAction(t *testing.T) {
	s := New()
	order := []string{}
	s.Observe(func(e *Event) { order = append(order, "observe") })
	s.At(1, func() { order = append(order, "action") })
	s.Run()
	if len(order) != 2 || order[0] != "observe" || order[1] != "action" {
		t.Errorf("order = %v, want [observe action]", order)
	}
}
