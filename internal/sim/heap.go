package sim

// eventHeap is a binary min-heap of events ordered by (time, seq). It
// serves two roles: as the reference future-event-list implementation
// (Impl Heap, the pre-calendar kernel kept for differential testing),
// and as the calendar queue's overflow store for far-future events. Each
// pending event's index field records base + its heap position, so
// Cancel can locate and remove an arbitrary event in O(log n); base lets
// the calendar distinguish overflow positions from bucket numbers.
type eventHeap struct {
	items []*Event
	base  int32
}

func (h *eventHeap) len() int { return len(h.items) }

// min returns the earliest pending event without removing it, or nil.
func (h *eventHeap) min() *Event {
	if len(h.items) == 0 {
		return nil
	}
	return h.items[0]
}

func (h *eventHeap) push(e *Event) {
	i := len(h.items)
	e.index = h.base + int32(i)
	h.items = append(h.items, e)
	h.up(i)
}

// pop removes and returns the earliest pending event. The caller must
// know the heap is non-empty.
func (h *eventHeap) pop() *Event {
	e := h.items[0]
	h.removeAt(0)
	return e
}

// remove unlinks a pending event wherever it sits in the heap.
func (h *eventHeap) remove(e *Event) {
	h.removeAt(int(e.index - h.base))
}

// removeAt deletes the element at heap position i, preserving heap order.
func (h *eventHeap) removeAt(i int) {
	last := len(h.items) - 1
	if i != last {
		h.swap(i, last)
	}
	h.items[last] = nil
	h.items = h.items[:last]
	if i < last {
		h.down(i)
		h.up(i)
	}
}

func (h *eventHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].index = h.base + int32(i)
	h.items[j].index = h.base + int32(j)
}

func (h *eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !less(h.items[i], h.items[parent]) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *eventHeap) down(i int) {
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		child := left
		if right := left + 1; right < n && less(h.items[right], h.items[left]) {
			child = right
		}
		if !less(h.items[child], h.items[i]) {
			return
		}
		h.swap(i, child)
		i = child
	}
}
