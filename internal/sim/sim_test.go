package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"dqalloc/internal/rng"
)

func TestSchedulerFiresInTimeOrder(t *testing.T) {
	s := New()
	var got []float64
	for _, tm := range []float64{5, 1, 3, 2, 4} {
		tm := tm
		s.At(tm, func() { got = append(got, tm) })
	}
	s.Run()
	want := []float64{1, 2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
	if s.Now() != 5 {
		t.Errorf("clock = %v, want 5", s.Now())
	}
}

func TestSchedulerSameTimeFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(7, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events fired out of order: %v", got)
		}
	}
}

func TestAfterUsesCurrentTime(t *testing.T) {
	s := New()
	var at float64 = -1
	s.At(10, func() {
		s.After(5, func() { at = s.Now() })
	})
	s.Run()
	if at != 15 {
		t.Errorf("nested After fired at %v, want 15", at)
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	s := New()
	fired := false
	e := s.At(1, func() { fired = true })
	if !s.Cancel(e) {
		t.Fatal("Cancel returned false for pending event")
	}
	if s.Cancel(e) {
		t.Error("second Cancel returned true")
	}
	s.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if e.Scheduled() {
		t.Error("cancelled event still reports Scheduled")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	s := New()
	var got []float64
	var events []Handle
	times := []float64{9, 2, 7, 4, 5, 1, 8, 3, 6}
	for _, tm := range times {
		tm := tm
		events = append(events, s.At(tm, func() { got = append(got, tm) }))
	}
	// Cancel the events at times 4, 1, 8.
	for _, i := range []int{3, 5, 6} {
		if !s.Cancel(events[i]) {
			t.Fatalf("cancel event %d failed", i)
		}
	}
	s.Run()
	want := []float64{2, 3, 5, 6, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := New()
	fired := 0
	s.At(1, func() { fired++ })
	s.At(10, func() { fired++ })
	s.At(20, func() { fired++ })
	s.RunUntil(10)
	if fired != 2 {
		t.Errorf("fired = %d, want 2 (events at t<=10)", fired)
	}
	if s.Now() != 10 {
		t.Errorf("clock = %v, want 10", s.Now())
	}
	if s.Len() != 1 {
		t.Errorf("pending = %d, want 1", s.Len())
	}
	s.RunUntil(15)
	if s.Now() != 15 {
		t.Errorf("clock = %v, want 15 after empty RunUntil window", s.Now())
	}
}

func TestStopHaltsRun(t *testing.T) {
	s := New()
	fired := 0
	s.At(1, func() { fired++; s.Stop() })
	s.At(2, func() { fired++ })
	s.Run()
	if fired != 1 {
		t.Errorf("fired = %d, want 1 after Stop", fired)
	}
	s.Run() // resumes
	if fired != 2 {
		t.Errorf("fired = %d, want 2 after resumed Run", fired)
	}
}

func TestAtPastPanics(t *testing.T) {
	s := New()
	s.At(5, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	s.At(1, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	s.After(-1, func() {})
}

func TestFiredCounter(t *testing.T) {
	s := New()
	for i := 0; i < 5; i++ {
		s.At(float64(i), func() {})
	}
	s.Run()
	if s.Fired() != 5 {
		t.Errorf("Fired = %d, want 5", s.Fired())
	}
}

// TestHeapPropertyQuick is a property test: for any set of event times,
// firing order is the sorted order.
func TestHeapPropertyQuick(t *testing.T) {
	f := func(raw []uint16) bool {
		s := New()
		var got []float64
		for _, v := range raw {
			tm := float64(v)
			s.At(tm, func() { got = append(got, tm) })
		}
		s.Run()
		return sort.Float64sAreSorted(got) && len(got) == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestRandomCancelQuick mixes scheduling and cancellation and checks the
// survivors fire in sorted order.
func TestRandomCancelQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := New()
		var got []float64
		var pending []Handle
		for i := 0; i < 200; i++ {
			tm := float64(r.Intn(1000))
			pending = append(pending, s.At(tm, func() { got = append(got, tm) }))
		}
		cancelled := 0
		for _, i := range r.Perm(len(pending))[:50] {
			if s.Cancel(pending[i]) {
				cancelled++
			}
		}
		s.Run()
		return sort.Float64sAreSorted(got) && len(got) == 200-cancelled
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSchedulerChurn(b *testing.B) {
	for _, impl := range []Impl{Calendar, Heap} {
		b.Run(impl.String(), func(b *testing.B) {
			s := NewImpl(impl)
			r := rand.New(rand.NewSource(1))
			// Keep a rolling window of 1000 pending events.
			var schedule func()
			n := 0
			schedule = func() {
				n++
				if n < b.N {
					s.After(r.Float64(), schedule)
				}
			}
			b.ResetTimer()
			for i := 0; i < 1000 && n < b.N; i++ {
				s.After(r.Float64(), schedule)
			}
			s.Run()
		})
	}
}

// BenchmarkKernelChurnExp mirrors the dqbench kernel/churn suite — a
// 1024-event rolling window with exponential offsets — per
// implementation, so `go test -bench` reproduces the acceptance metric
// without the dqbench harness.
func BenchmarkKernelChurnExp(b *testing.B) {
	for _, impl := range []Impl{Calendar, Heap} {
		b.Run(impl.String(), func(b *testing.B) {
			const window = 1024
			s := NewImpl(impl)
			st := rng.NewStream(1)
			var tick Action
			n := 0
			tick = func() {
				n++
				if n+window <= b.N {
					s.After(st.Exp(1), tick)
				}
			}
			b.ResetTimer()
			for i := 0; i < window && i < b.N; i++ {
				s.After(st.Exp(1), tick)
			}
			s.Run()
		})
	}
}
