// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel maintains a future-event list ordered by simulated time.
// Events scheduled for the same instant fire in FIFO order (by scheduling
// sequence number), which makes every simulation run fully deterministic
// for a given seed and configuration. This kernel is the reproduction's
// substitute for the DISS simulation-language runtime used by the paper.
package sim

import (
	"fmt"
	"math"
)

// Action is the body of an event. It runs exactly once, at the event's
// scheduled simulated time.
type Action func()

// Event is a handle to a scheduled action. It can be cancelled until it
// fires. The zero value is not usable; events are created by Scheduler.
type Event struct {
	time  float64
	seq   uint64
	index int32 // position in the heap, -1 once fired or cancelled

	// Kind is a free-form discriminator mixed into the trace digest (and
	// visible to fire observers) so that digests distinguish event types,
	// not just their (time, seq) coordinates. The scheduler assigns no
	// meaning to it; model packages tag their events with their own
	// constants. Zero is the untagged default. Set it right after At or
	// After returns, before any other event can fire. It sits in the
	// int32 index's padding, keeping the struct at 32 bytes.
	//
	// Registry of kind bytes across the model packages (high nibble =
	// subsystem, kept here so new tags don't collide):
	//
	//	0x11 queue:    FCFS departure
	//	0x12 queue:    processor-sharing completion
	//	0x21 network:  ring transmission
	//	0x31 loadinfo: load broadcast tick
	//	0x32 loadinfo: delayed status-message application
	//	0x41 system:   terminal think completion
	//	0x42 system:   begin-measurement mark
	//	0x43 system:   failover watchdog timeout
	//	0x44 system:   query retry after loss
	//	0x51 fault:    site crash
	//	0x52 fault:    site repair
	Kind byte

	action Action
}

// Time returns the simulated time at which the event is (or was) scheduled.
func (e *Event) Time() float64 { return e.time }

// Seq returns the event's scheduling sequence number — the FIFO tie-break
// key for same-instant events.
func (e *Event) Seq() uint64 { return e.seq }

// Scheduled reports whether the event is still pending.
func (e *Event) Scheduled() bool { return e.index >= 0 }

// Scheduler owns the simulated clock and the future-event list.
//
// Scheduler is not safe for concurrent use: the model is single-threaded by
// design so that runs are reproducible. All model code runs inside event
// actions on one goroutine.
type Scheduler struct {
	now     float64
	seq     uint64
	heap    []*Event
	fired   uint64
	stopped bool

	// digest is a running FNV-1a hash over (time, seq, kind) of every
	// fired event, maintained only when digestOn is set so that the hot
	// path pays a single predictable branch otherwise.
	digest   uint64
	digestOn bool
	// observer, when non-nil, is invoked for every fired event just
	// before its action runs (the calendar is between events, so model
	// state is quiescent). Used by runtime auditors.
	observer func(e *Event)
}

// New returns a Scheduler with the clock at zero and an empty event list.
func New() *Scheduler {
	return &Scheduler{}
}

// Now returns the current simulated time.
func (s *Scheduler) Now() float64 { return s.now }

// Len returns the number of pending events.
func (s *Scheduler) Len() int { return len(s.heap) }

// Fired returns the total number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// fnv-1a 64-bit parameters (FNV is cheap, stateless between updates, and
// good enough to detect any change in the event stream).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// EnableDigest starts maintaining a running hash of every subsequently
// fired event's (time, seq, kind) triple. Two runs of the same model with
// the same seed produce the same digest if and only if they fired the
// same events in the same order — a cheap byte-identity check for
// determinism regressions. Enable before the first event fires.
func (s *Scheduler) EnableDigest() {
	s.digestOn = true
	s.digest = fnvOffset64
}

// Digest returns the current trace digest (0 unless EnableDigest was
// called).
func (s *Scheduler) Digest() uint64 {
	if !s.digestOn {
		return 0
	}
	return s.digest
}

// Observe registers fn to be called for every fired event, immediately
// before its action runs. Pass nil to remove the observer. The observer
// must not schedule or cancel events.
func (s *Scheduler) Observe(fn func(e *Event)) { s.observer = fn }

// mix folds one fired event into the running digest.
func (s *Scheduler) mix(e *Event) {
	h := s.digest
	for _, v := range [3]uint64{math.Float64bits(e.time), e.seq, uint64(e.Kind)} {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= fnvPrime64
			v >>= 8
		}
	}
	s.digest = h
}

// At schedules action to run at absolute simulated time t.
//
// Scheduling in the past or with a non-finite time is a programming error
// in the model and panics, mirroring how out-of-range slice indexing is
// treated: the simulation state would be meaningless if it continued.
func (s *Scheduler) At(t float64, action Action) *Event {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("sim: event time %v is not finite", t))
	}
	if t < s.now {
		panic(fmt.Sprintf("sim: event time %v precedes current time %v", t, s.now))
	}
	if action == nil {
		panic("sim: nil event action")
	}
	e := &Event{time: t, seq: s.seq, action: action}
	s.seq++
	s.push(e)
	return e
}

// After schedules action to run d time units from now. Negative or
// non-finite delays panic (see At).
func (s *Scheduler) After(d float64, action Action) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.At(s.now+d, action)
}

// Cancel removes a pending event from the calendar. It reports whether the
// event was still pending (false if it already fired or was cancelled).
func (s *Scheduler) Cancel(e *Event) bool {
	if e == nil || e.index < 0 {
		return false
	}
	s.remove(int(e.index))
	e.index = -1
	e.action = nil
	return true
}

// Step fires the single earliest pending event, advancing the clock to its
// time. It reports whether an event was fired.
func (s *Scheduler) Step() bool {
	if len(s.heap) == 0 {
		return false
	}
	e := s.heap[0]
	s.remove(0)
	e.index = -1
	s.now = e.time
	action := e.action
	e.action = nil
	s.fired++
	if s.digestOn {
		s.mix(e)
	}
	if s.observer != nil {
		s.observer(e)
	}
	action()
	return true
}

// Run fires events until the calendar is empty or Stop is called.
func (s *Scheduler) Run() {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
}

// RunUntil fires events with time <= t, then advances the clock to exactly
// t. Events scheduled at t fire; later events stay pending.
func (s *Scheduler) RunUntil(t float64) {
	if t < s.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) precedes current time %v", t, s.now))
	}
	s.stopped = false
	for !s.stopped && len(s.heap) > 0 && s.heap[0].time <= t {
		s.Step()
	}
	if !s.stopped && s.now < t {
		s.now = t
	}
}

// Stop makes the innermost Run or RunUntil return after the current event
// completes. It is intended to be called from inside an event action.
func (s *Scheduler) Stop() { s.stopped = true }

// less orders events by time, breaking ties by scheduling order so that
// same-instant events fire FIFO.
func less(a, b *Event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

func (s *Scheduler) push(e *Event) {
	e.index = int32(len(s.heap))
	s.heap = append(s.heap, e)
	s.up(int(e.index))
}

// remove deletes the element at heap position i, preserving heap order.
func (s *Scheduler) remove(i int) {
	last := len(s.heap) - 1
	if i != last {
		s.swap(i, last)
	}
	s.heap[last] = nil
	s.heap = s.heap[:last]
	if i < last {
		s.down(i)
		s.up(i)
	}
}

func (s *Scheduler) swap(i, j int) {
	s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
	s.heap[i].index = int32(i)
	s.heap[j].index = int32(j)
}

func (s *Scheduler) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !less(s.heap[i], s.heap[parent]) {
			return
		}
		s.swap(i, parent)
		i = parent
	}
}

func (s *Scheduler) down(i int) {
	n := len(s.heap)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		child := left
		if right := left + 1; right < n && less(s.heap[right], s.heap[left]) {
			child = right
		}
		if !less(s.heap[child], s.heap[i]) {
			return
		}
		s.swap(i, child)
		i = child
	}
}
