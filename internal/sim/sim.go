// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel maintains a future-event list ordered by simulated time.
// Events scheduled for the same instant fire in FIFO order (by scheduling
// sequence number), which makes every simulation run fully deterministic
// for a given seed and configuration. This kernel is the reproduction's
// substitute for the DISS simulation-language runtime used by the paper.
//
// Two future-event-list implementations sit behind the same API: an
// adaptive calendar queue (the default — amortized O(1) per operation,
// see calendar.go and DESIGN.md §12) and the original binary heap, kept
// as a config-selectable reference (Impl Heap) that the differential
// tests and fuzz target cross-check the calendar against. Both fire
// events in the identical (time, seq) order, so trace digests are
// bit-identical whichever is selected.
//
// Event records are pooled: once an event fires or is cancelled its
// record returns to a per-scheduler free list and is reused by the next
// At/After, so the steady-state hot path allocates nothing. Fresh
// records are carved from slabs — contiguous arrays of Events — so a
// scheduler's working set stays cache-dense instead of scattering one
// heap object per event. Handles are generation-counted — a handle to a
// retired (and possibly reused) event is detected as stale rather than
// acting on the wrong event. See DESIGN.md §10 for the performance
// model.
package sim

import (
	"fmt"
	"math"
)

// Action is the body of an event. It runs exactly once, at the event's
// scheduled simulated time.
type Action func()

// Event is one scheduled action's record. Model code never holds an
// *Event across events — records are pooled and reused — but fire
// observers receive the live record of the event being fired, whose
// fields are valid for the duration of the observer call.
type Event struct {
	time float64
	seq  uint64
	// index locates the pending event inside its future-event list — a
	// heap position for Impl Heap, a bucket number (or overflow-heap
	// position offset by the bucket count) for Impl Calendar — and is -1
	// once the event fires or is cancelled.
	index int32
	// next and prev thread the event through its calendar bucket's
	// sorted list; nil outside a bucket.
	next, prev *Event

	// Kind is a free-form discriminator mixed into the trace digest (and
	// visible to fire observers) so that digests distinguish event types,
	// not just their (time, seq) coordinates. The scheduler assigns no
	// meaning to it; model packages tag their events with their own
	// constants via Handle.SetKind right after At or After returns. Zero
	// is the untagged default.
	//
	// Registry of kind bytes across the model packages (high nibble =
	// subsystem, kept here so new tags don't collide):
	//
	//	0x11 queue:    FCFS departure
	//	0x12 queue:    processor-sharing completion
	//	0x21 network:  ring transmission
	//	0x31 loadinfo: load broadcast tick
	//	0x32 loadinfo: delayed status-message application
	//	0x41 system:   terminal think completion
	//	0x42 system:   begin-measurement mark
	//	0x43 system:   failover watchdog timeout
	//	0x44 system:   query retry after loss
	//	0x45 system:   admission-control deferral
	//	0x46 system:   deadline expiry
	//	0x47 system:   hedge launch timer
	//	0x51 fault:    site crash
	//	0x52 fault:    site repair
	//	0x61 arrival:  open arrival
	//	0x62 arrival:  MMPP phase switch
	Kind byte

	// gen is bumped every time the record is retired to the free list;
	// a Handle carrying an older generation is stale and inert.
	gen uint32

	action Action
}

// Time returns the simulated time at which the event is scheduled.
func (e *Event) Time() float64 { return e.time }

// Seq returns the event's scheduling sequence number — the FIFO tie-break
// key for same-instant events.
func (e *Event) Seq() uint64 { return e.seq }

// Handle refers to a scheduled event. The zero Handle refers to no event
// and is inert: Scheduled reports false and Cancel is a no-op. After the
// event fires or is cancelled the handle goes stale (its generation no
// longer matches the pooled record's), and every operation through it is
// likewise inert — a stale handle can never act on a reused record.
type Handle struct {
	e   *Event
	gen uint32
}

// Scheduled reports whether the handle's event is still pending.
func (h Handle) Scheduled() bool {
	return h.e != nil && h.gen == h.e.gen && h.e.index >= 0
}

// SetKind tags the pending event for the trace digest (see Event.Kind).
// Call it immediately after At or After returns; tagging through a zero
// or stale handle panics, because the tag would otherwise silently land
// on whatever event reused the record.
func (h Handle) SetKind(k byte) {
	if h.e == nil || h.gen != h.e.gen {
		panic("sim: SetKind through a stale event handle")
	}
	h.e.Kind = k
}

// Impl selects the future-event-list implementation behind a Scheduler.
type Impl int

const (
	// Calendar is the default: an adaptive calendar queue with
	// amortized O(1) schedule/fire/cancel (see calendar.go).
	Calendar Impl = iota
	// Heap is the reference binary-heap implementation the calendar
	// queue is differentially tested against — O(log n) per operation,
	// bit-identical fire order.
	Heap
)

// String returns the implementation name as used in flags and reports.
func (i Impl) String() string {
	switch i {
	case Calendar:
		return "calendar"
	case Heap:
		return "heap"
	default:
		return "unknown"
	}
}

// ParseImpl converts a flag value to an Impl.
func ParseImpl(s string) (Impl, error) {
	switch s {
	case "calendar":
		return Calendar, nil
	case "heap":
		return Heap, nil
	default:
		return 0, fmt.Errorf("sim: unknown scheduler implementation %q (want calendar or heap)", s)
	}
}

// Scheduler owns the simulated clock and the future-event list.
//
// Scheduler is not safe for concurrent use: the model is single-threaded by
// design so that runs are reproducible. All model code runs inside event
// actions on one goroutine.
type Scheduler struct {
	now float64
	seq uint64
	// Exactly one of cal and hp is non-nil; hp == nil selects the
	// calendar-queue fast path on every dispatch below.
	cal     *calendar
	hp      *eventHeap
	free    []*Event // retired records awaiting reuse
	slab    []Event  // contiguous backing for fresh records
	fired   uint64
	stopped bool

	// hooked gates the digest/observer work with a single predictable
	// branch on the fire path; it is true iff digestOn or observer is set,
	// so the common disabled case pays one untaken branch and no calls.
	hooked bool
	// digest is a running FNV-1a hash over (time, seq, kind) of every
	// fired event, maintained only when digestOn is set.
	digest   uint64
	digestOn bool
	// observer, when non-nil, is invoked for every fired event just
	// before its action runs (the calendar is between events, so model
	// state is quiescent). Used by runtime auditors. The *Event is valid
	// only for the duration of the call: the record is pooled.
	observer func(e *Event)
}

// New returns a Scheduler with the clock at zero and an empty event
// list, using the default calendar-queue implementation.
func New() *Scheduler {
	return NewImpl(Calendar)
}

// NewImpl returns a Scheduler backed by the selected future-event-list
// implementation. Both implementations fire the same events in the same
// order; Heap exists as the differential-testing reference.
func NewImpl(impl Impl) *Scheduler {
	s := &Scheduler{}
	if impl == Heap {
		s.hp = &eventHeap{}
	} else {
		s.cal = newCalendar()
	}
	return s
}

// Impl reports which future-event-list implementation backs s.
func (s *Scheduler) Impl() Impl {
	if s.hp != nil {
		return Heap
	}
	return Calendar
}

// Now returns the current simulated time.
func (s *Scheduler) Now() float64 { return s.now }

// Len returns the number of pending events.
func (s *Scheduler) Len() int {
	if s.hp != nil {
		return s.hp.len()
	}
	return s.cal.len()
}

// Fired returns the total number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// fnv-1a 64-bit parameters (FNV is cheap, stateless between updates, and
// good enough to detect any change in the event stream).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// EnableDigest starts maintaining a running hash of every subsequently
// fired event's (time, seq, kind) triple. Two runs of the same model with
// the same seed produce the same digest if and only if they fired the
// same events in the same order — a cheap byte-identity check for
// determinism regressions. Enable before the first event fires.
func (s *Scheduler) EnableDigest() {
	s.digestOn = true
	s.hooked = true
	s.digest = fnvOffset64
}

// Digest returns the current trace digest (0 unless EnableDigest was
// called).
func (s *Scheduler) Digest() uint64 {
	if !s.digestOn {
		return 0
	}
	return s.digest
}

// Observe registers fn to be called for every fired event, immediately
// before its action runs. Pass nil to remove the observer. The observer
// must not schedule or cancel events, and must not retain the *Event
// beyond the call — the record is pooled and will be reused.
func (s *Scheduler) Observe(fn func(e *Event)) {
	s.observer = fn
	s.hooked = s.digestOn || fn != nil
}

// mix folds one fired event into the running digest.
func (s *Scheduler) mix(e *Event) {
	h := s.digest
	for _, v := range [3]uint64{math.Float64bits(e.time), e.seq, uint64(e.Kind)} {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= fnvPrime64
			v >>= 8
		}
	}
	s.digest = h
}

// fireHooks runs the digest and observer work for one fired event. Kept
// out of Step so the disabled case stays a single untaken branch.
func (s *Scheduler) fireHooks(e *Event) {
	if s.digestOn {
		s.mix(e)
	}
	if s.observer != nil {
		s.observer(e)
	}
}

// At schedules action to run at absolute simulated time t.
//
// Scheduling in the past or with a non-finite time is a programming error
// in the model and panics, mirroring how out-of-range slice indexing is
// treated: the simulation state would be meaningless if it continued.
func (s *Scheduler) At(t float64, action Action) Handle {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("sim: event time %v is not finite", t))
	}
	if t < s.now {
		panic(fmt.Sprintf("sim: event time %v precedes current time %v", t, s.now))
	}
	if action == nil {
		panic("sim: nil event action")
	}
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		e.time = t
		e.seq = s.seq
		e.Kind = 0
		e.action = action
	} else {
		e = s.newRecord()
		e.time = t
		e.seq = s.seq
		e.action = action
	}
	s.seq++
	if s.hp != nil {
		s.hp.push(e)
	} else {
		s.cal.insert(e)
	}
	return Handle{e: e, gen: e.gen}
}

// slabSize is how many Event records one slab allocation carves out.
// Slabs keep a scheduler's pooled records contiguous — the hot window of
// a simulation walks a few cache-dense arrays instead of pointer-chasing
// individually allocated objects — and divide allocation count during
// pool growth by the same factor.
const slabSize = 64

// newRecord returns a fresh record from the current slab, starting a new
// slab when the current one is exhausted. Only pool growth reaches here;
// the steady state recycles via the free list.
func (s *Scheduler) newRecord() *Event {
	if len(s.slab) == 0 {
		s.slab = make([]Event, slabSize)
	}
	e := &s.slab[0]
	s.slab = s.slab[1:]
	return e
}

// After schedules action to run d time units from now. Negative or
// non-finite delays panic (see At).
func (s *Scheduler) After(d float64, action Action) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.At(s.now+d, action)
}

// Cancel removes a pending event from the calendar and returns its record
// to the pool. It reports whether the event was still pending — false for
// the zero Handle or one whose event already fired or was cancelled.
func (s *Scheduler) Cancel(h Handle) bool {
	e := h.e
	if e == nil || e.gen != h.gen || e.index < 0 {
		return false
	}
	if s.hp != nil {
		s.hp.remove(e)
	} else {
		s.cal.remove(e)
	}
	s.retire(e)
	return true
}

// retire returns a record to the free list, invalidating every handle to
// it by bumping the generation.
func (s *Scheduler) retire(e *Event) {
	e.index = -1
	e.action = nil
	e.gen++
	s.free = append(s.free, e)
}

// peek returns the earliest pending event without firing it, or nil.
func (s *Scheduler) peek() *Event {
	if s.hp != nil {
		return s.hp.min()
	}
	return s.cal.peek()
}

// Step fires the single earliest pending event, advancing the clock to its
// time. It reports whether an event was fired.
func (s *Scheduler) Step() bool {
	var e *Event
	if s.hp != nil {
		if s.hp.len() == 0 {
			return false
		}
		e = s.hp.pop()
	} else {
		e = s.cal.pop()
		if e == nil {
			return false
		}
	}
	e.index = -1
	s.now = e.time
	action := e.action
	s.fired++
	if s.hooked {
		s.fireHooks(e)
	}
	// Retire before running the action so the action's own rescheduling
	// reuses this record immediately (the common service-loop pattern).
	s.retire(e)
	action()
	return true
}

// Run fires events until the calendar is empty or Stop is called.
func (s *Scheduler) Run() {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
}

// RunUntil fires events with time <= t, then advances the clock to exactly
// t. Events scheduled at t fire; later events stay pending.
func (s *Scheduler) RunUntil(t float64) {
	if t < s.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) precedes current time %v", t, s.now))
	}
	s.stopped = false
	for !s.stopped {
		e := s.peek()
		if e == nil || e.time > t {
			break
		}
		s.Step()
	}
	if !s.stopped && s.now < t {
		s.now = t
	}
}

// Stop makes the innermost Run or RunUntil return after the current event
// completes. It is intended to be called from inside an event action.
func (s *Scheduler) Stop() { s.stopped = true }

// less orders events by time, breaking ties by scheduling order so that
// same-instant events fire FIFO. Both future-event-list implementations
// order by exactly this predicate, which is what makes their fire
// streams — and therefore all trace digests — bit-identical.
func less(a, b *Event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}
