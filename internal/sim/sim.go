// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel maintains a future-event list ordered by simulated time.
// Events scheduled for the same instant fire in FIFO order (by scheduling
// sequence number), which makes every simulation run fully deterministic
// for a given seed and configuration. This kernel is the reproduction's
// substitute for the DISS simulation-language runtime used by the paper.
package sim

import (
	"fmt"
	"math"
)

// Action is the body of an event. It runs exactly once, at the event's
// scheduled simulated time.
type Action func()

// Event is a handle to a scheduled action. It can be cancelled until it
// fires. The zero value is not usable; events are created by Scheduler.
type Event struct {
	time   float64
	seq    uint64
	index  int // position in the heap, -1 once fired or cancelled
	action Action
}

// Time returns the simulated time at which the event is (or was) scheduled.
func (e *Event) Time() float64 { return e.time }

// Scheduled reports whether the event is still pending.
func (e *Event) Scheduled() bool { return e.index >= 0 }

// Scheduler owns the simulated clock and the future-event list.
//
// Scheduler is not safe for concurrent use: the model is single-threaded by
// design so that runs are reproducible. All model code runs inside event
// actions on one goroutine.
type Scheduler struct {
	now     float64
	seq     uint64
	heap    []*Event
	fired   uint64
	stopped bool
}

// New returns a Scheduler with the clock at zero and an empty event list.
func New() *Scheduler {
	return &Scheduler{}
}

// Now returns the current simulated time.
func (s *Scheduler) Now() float64 { return s.now }

// Len returns the number of pending events.
func (s *Scheduler) Len() int { return len(s.heap) }

// Fired returns the total number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// At schedules action to run at absolute simulated time t.
//
// Scheduling in the past or with a non-finite time is a programming error
// in the model and panics, mirroring how out-of-range slice indexing is
// treated: the simulation state would be meaningless if it continued.
func (s *Scheduler) At(t float64, action Action) *Event {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("sim: event time %v is not finite", t))
	}
	if t < s.now {
		panic(fmt.Sprintf("sim: event time %v precedes current time %v", t, s.now))
	}
	if action == nil {
		panic("sim: nil event action")
	}
	e := &Event{time: t, seq: s.seq, action: action}
	s.seq++
	s.push(e)
	return e
}

// After schedules action to run d time units from now. Negative or
// non-finite delays panic (see At).
func (s *Scheduler) After(d float64, action Action) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.At(s.now+d, action)
}

// Cancel removes a pending event from the calendar. It reports whether the
// event was still pending (false if it already fired or was cancelled).
func (s *Scheduler) Cancel(e *Event) bool {
	if e == nil || e.index < 0 {
		return false
	}
	s.remove(e.index)
	e.index = -1
	e.action = nil
	return true
}

// Step fires the single earliest pending event, advancing the clock to its
// time. It reports whether an event was fired.
func (s *Scheduler) Step() bool {
	if len(s.heap) == 0 {
		return false
	}
	e := s.heap[0]
	s.remove(0)
	e.index = -1
	s.now = e.time
	action := e.action
	e.action = nil
	s.fired++
	action()
	return true
}

// Run fires events until the calendar is empty or Stop is called.
func (s *Scheduler) Run() {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
}

// RunUntil fires events with time <= t, then advances the clock to exactly
// t. Events scheduled at t fire; later events stay pending.
func (s *Scheduler) RunUntil(t float64) {
	if t < s.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) precedes current time %v", t, s.now))
	}
	s.stopped = false
	for !s.stopped && len(s.heap) > 0 && s.heap[0].time <= t {
		s.Step()
	}
	if !s.stopped && s.now < t {
		s.now = t
	}
}

// Stop makes the innermost Run or RunUntil return after the current event
// completes. It is intended to be called from inside an event action.
func (s *Scheduler) Stop() { s.stopped = true }

// less orders events by time, breaking ties by scheduling order so that
// same-instant events fire FIFO.
func less(a, b *Event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

func (s *Scheduler) push(e *Event) {
	e.index = len(s.heap)
	s.heap = append(s.heap, e)
	s.up(e.index)
}

// remove deletes the element at heap position i, preserving heap order.
func (s *Scheduler) remove(i int) {
	last := len(s.heap) - 1
	if i != last {
		s.swap(i, last)
	}
	s.heap[last] = nil
	s.heap = s.heap[:last]
	if i < last {
		s.down(i)
		s.up(i)
	}
}

func (s *Scheduler) swap(i, j int) {
	s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
	s.heap[i].index = i
	s.heap[j].index = j
}

func (s *Scheduler) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !less(s.heap[i], s.heap[parent]) {
			return
		}
		s.swap(i, parent)
		i = parent
	}
}

func (s *Scheduler) down(i int) {
	n := len(s.heap)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		child := left
		if right := left + 1; right < n && less(s.heap[right], s.heap[left]) {
			child = right
		}
		if !less(s.heap[child], s.heap[i]) {
			return
		}
		s.swap(i, child)
		i = child
	}
}
