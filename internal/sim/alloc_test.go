package sim

import (
	"testing"

	"dqalloc/internal/race"
)

// The tests in this file pin the kernel's steady-state allocation
// behavior: once the free list is warm, scheduling and firing events
// allocates nothing. A regression here (a closure creeping back into a
// hot path, an Event field breaking the pool) multiplies total
// simulation allocations by orders of magnitude, so the budgets are
// exact zeros, not thresholds.
//
// Race-detector instrumentation adds its own allocations, so the
// numeric assertions are skipped under -race (the race CI pass still
// compiles and executes the measured code).

// warmScheduler returns a scheduler whose free list and heap have
// capacity for at least n simultaneous events.
func warmScheduler(n int) *Scheduler {
	s := New()
	nop := func() {}
	for i := 0; i < n; i++ {
		s.At(float64(i), nop)
	}
	s.Run()
	return s
}

func TestAtStepSteadyStateAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are inflated under -race")
	}
	s := warmScheduler(64)
	nop := func() {}
	avg := testing.AllocsPerRun(1000, func() {
		s.At(s.Now()+1, nop)
		s.Step()
	})
	if avg != 0 {
		t.Errorf("At+Step steady state allocates %v objects/op, want 0", avg)
	}
}

func TestAfterStepSteadyStateAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are inflated under -race")
	}
	s := warmScheduler(64)
	nop := func() {}
	avg := testing.AllocsPerRun(1000, func() {
		s.After(1, nop)
		s.Step()
	})
	if avg != 0 {
		t.Errorf("After+Step steady state allocates %v objects/op, want 0", avg)
	}
}

func TestCancelSteadyStateAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are inflated under -race")
	}
	s := warmScheduler(64)
	nop := func() {}
	avg := testing.AllocsPerRun(1000, func() {
		h := s.After(1, nop)
		if !s.Cancel(h) {
			t.Fatal("cancel of live handle failed")
		}
	})
	if avg != 0 {
		t.Errorf("After+Cancel steady state allocates %v objects/op, want 0", avg)
	}
}

func TestDigestedStepSteadyStateAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are inflated under -race")
	}
	// The digest hook must stay allocation-free too: it is enabled for
	// every golden-digest run.
	s := warmScheduler(64)
	s.EnableDigest()
	nop := func() {}
	avg := testing.AllocsPerRun(1000, func() {
		h := s.After(1, nop)
		h.SetKind(0x7f)
		s.Step()
	})
	if avg != 0 {
		t.Errorf("digested Step steady state allocates %v objects/op, want 0", avg)
	}
}
