package sim

import (
	"runtime"
	"testing"

	"dqalloc/internal/race"
)

// The tests in this file pin the kernel's steady-state allocation
// behavior: once the free list is warm, scheduling and firing events
// allocates nothing — under the default calendar queue and the
// reference heap alike. A regression here (a closure creeping back into
// a hot path, an Event field breaking the pool, a calendar rebuild
// dropping its backing arrays) multiplies total simulation allocations
// by orders of magnitude, so the budgets are exact zeros, not
// thresholds.
//
// Race-detector instrumentation adds its own allocations, so the
// numeric assertions are skipped under -race (the race CI pass still
// compiles and executes the measured code).

var allocImpls = []Impl{Calendar, Heap}

// warmScheduler returns a scheduler of the given implementation whose
// free list and future-event list have capacity for at least n
// simultaneous events.
func warmScheduler(impl Impl, n int) *Scheduler {
	s := NewImpl(impl)
	nop := func() {}
	for i := 0; i < n; i++ {
		s.At(float64(i), nop)
	}
	s.Run()
	return s
}

func TestAtStepSteadyStateAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are inflated under -race")
	}
	for _, impl := range allocImpls {
		t.Run(impl.String(), func(t *testing.T) {
			s := warmScheduler(impl, 64)
			nop := func() {}
			avg := testing.AllocsPerRun(1000, func() {
				s.At(s.Now()+1, nop)
				s.Step()
			})
			if avg != 0 {
				t.Errorf("At+Step steady state allocates %v objects/op, want 0", avg)
			}
		})
	}
}

func TestAfterStepSteadyStateAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are inflated under -race")
	}
	for _, impl := range allocImpls {
		t.Run(impl.String(), func(t *testing.T) {
			s := warmScheduler(impl, 64)
			nop := func() {}
			avg := testing.AllocsPerRun(1000, func() {
				s.After(1, nop)
				s.Step()
			})
			if avg != 0 {
				t.Errorf("After+Step steady state allocates %v objects/op, want 0", avg)
			}
		})
	}
}

func TestCancelSteadyStateAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are inflated under -race")
	}
	for _, impl := range allocImpls {
		t.Run(impl.String(), func(t *testing.T) {
			s := warmScheduler(impl, 64)
			nop := func() {}
			avg := testing.AllocsPerRun(1000, func() {
				h := s.After(1, nop)
				if !s.Cancel(h) {
					t.Fatal("cancel of live handle failed")
				}
			})
			if avg != 0 {
				t.Errorf("After+Cancel steady state allocates %v objects/op, want 0", avg)
			}
		})
	}
}

func TestDigestedStepSteadyStateAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are inflated under -race")
	}
	for _, impl := range allocImpls {
		t.Run(impl.String(), func(t *testing.T) {
			// The digest hook must stay allocation-free too: it is enabled
			// for every golden-digest run.
			s := warmScheduler(impl, 64)
			s.EnableDigest()
			nop := func() {}
			avg := testing.AllocsPerRun(1000, func() {
				h := s.After(1, nop)
				h.SetKind(0x7f)
				s.Step()
			})
			if avg != 0 {
				t.Errorf("digested Step steady state allocates %v objects/op, want 0", avg)
			}
		})
	}
}

// TestCalendarResizeOscillationAllocs forces the calendar queue across
// its bucket-resize boundaries in both directions — fill from empty to
// 512 pending (grow rebuilds at count > 2·nb: 17, 33, …, 257) then
// drain back to empty (shrink rebuilds at count < nb/2) — and asserts
// the cycle allocates nothing once the backing arrays are warm.
// rebuild() reuses the buckets, scratch, and overflow arrays across
// resizes precisely so population oscillation around a boundary cannot
// turn into allocation churn.
func TestCalendarResizeOscillationAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are inflated under -race")
	}
	s := NewImpl(Calendar)
	nop := func() {}
	cycle := func() {
		for i := 0; i < 512; i++ {
			s.After(1+float64(i%7), nop)
		}
		for i := 0; i < 512; i++ {
			s.Step()
		}
	}
	cycle() // warm every backing array at its maximum extent
	if avg := testing.AllocsPerRun(10, cycle); avg != 0 {
		t.Errorf("grow/shrink oscillation allocates %v objects/cycle once warm, want 0", avg)
	}
}

// mallocs counts heap allocations performed by a single invocation of f,
// the way testing.AllocsPerRun does but without its warm-up call — the
// point here is to observe the cold path.
func mallocs(f func()) uint64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	f()
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}

// TestCalendarGrowthAllocsOnlyAtResize pins where the calendar's cold
// path is allowed to allocate: growing a fresh scheduler to 4096
// pending events may allocate only at event-slab boundaries (one slab
// per 64 records) and bucket-array resizes (a handful per rebuild) —
// far below one allocation per event — and once the slabs, free list,
// buckets, scratch, and overflow arrays are warm at the workload's
// maximum extent, regrowing after a full drain must allocate nothing at
// all even though it crosses every resize boundary again. (Two warm-up
// cycles, not one: the post-drain calendar geometry — width, start —
// differs from the fresh one, so the second pass can ratchet a backing
// array a few elements larger; from the third pass on the capacities
// are a fixed point.)
func TestCalendarGrowthAllocsOnlyAtResize(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are inflated under -race")
	}
	s := NewImpl(Calendar)
	nop := func() {}
	grow := func() {
		for i := 0; i < 4096; i++ {
			s.After(1+float64(i%7), nop)
		}
	}
	fresh := mallocs(grow)
	// 4096/64 = 64 slab allocations plus ~9 grow rebuilds; 256 leaves
	// generous room for append growth while still proving allocations
	// are per-resize, not per-event.
	if fresh == 0 || fresh > 256 {
		t.Errorf("cold growth to 4096 pending allocated %d objects, want (0, 256]", fresh)
	}
	for s.Step() {
	}
	grow() // second warm-up cycle: let capacities reach their fixed point
	for s.Step() {
	}
	if regrow := mallocs(grow); regrow != 0 {
		t.Errorf("warm regrowth allocated %d objects crossing the same resize boundaries, want 0", regrow)
	}
}
