package sim

// calendar is the kernel's default future-event list: an adaptive
// calendar queue (Brown, CACM 31(10), 1988; two-level variant) with
// amortized O(1) insert, pop-min, and cancel, replacing the binary
// heap's O(log n) sift on every operation.
//
// Layout. The bucket array spans one "year" of simulated time starting
// at start: bucket i holds the pending events with
//
//	(time - start) * invw  in  [i, i+1)
//
// as a doubly-linked list kept sorted by (time, seq), so the head of the
// first non-empty bucket is the global minimum and pop is an unlink.
// Events beyond the year (index >= nb) go to an overflow min-heap; when
// the buckets drain, the year jumps to the overflow's minimum and the
// newly-due prefix migrates into buckets (each far-future event pays one
// O(log n) detour, once, instead of every event paying O(log n)).
//
// Adaptivity. The bucket count tracks the population (double when count
// > 2·nb, halve when count < nb/2) and every rebuild re-estimates the
// bucket width from the bulk spread of the pending set (estimateWidth:
// mean gap over the earliest 7/8 of events × calWidthFactor, the far
// tail excluded), so skewed event-time distributions spread over the
// array instead of piling into one bucket. A sorted-insert walk that
// exceeds calWalkTrigger links flags the width as stale and forces a
// same-size rebuild — the escape hatch for distributions that drift
// without changing the population.
//
// Determinism. Pop order is by (time, seq) exactly — the same total
// order as the reference heap — because bucket mapping is monotone in
// time (subtraction and multiplication by a positive width are
// monotone), within-bucket lists are sorted, and overflow events are
// strictly later than every bucketed event. Bucket-width and resize
// heuristics can therefore never change the fire order, only the cost
// of maintaining it: trace digests are bit-identical to the heap's by
// construction. See DESIGN.md §12.
type calendar struct {
	buckets []bucket
	nb      int     // len(buckets), kept >= calMinBuckets
	width   float64 // simulated-time span of one bucket
	invw    float64 // 1/width; bucket mapping multiplies, never divides
	start   float64 // left edge of buckets[0]'s span
	cur     int     // scan cursor: buckets[:cur] are empty

	inBuckets int       // events currently in buckets
	ovf       eventHeap // far-future events, time beyond the bucket span
	count     int       // total pending (inBuckets + ovf.len())

	scratch      []*Event // rebuild staging, capacity reused
	sinceRebuild int      // inserts since the last rebuild (thrash guard)
	staleWidth   bool     // a sorted-insert walk blew past calWalkTrigger
}

// bucket is one calendar slot: a (time, seq)-sorted doubly-linked list
// threaded through the pooled Event records themselves, so membership
// costs no allocation.
type bucket struct {
	head, tail *Event
}

const (
	// calMinBuckets is the smallest bucket array; below this the
	// constant factors of resizing outweigh scan cost.
	calMinBuckets = 8
	// calWidthFactor scales the estimated mean event gap into a bucket
	// width; see estimateWidth.
	calWidthFactor = 8
	// calWalkTrigger is the sorted-insert walk length past which the
	// bucket width is declared stale (events are piling into one bucket).
	calWalkTrigger = 64
)

func newCalendar() *calendar {
	c := &calendar{
		buckets: make([]bucket, calMinBuckets),
		nb:      calMinBuckets,
		width:   1,
		invw:    1,
	}
	c.ovf.base = calMinBuckets
	return c
}

func (c *calendar) len() int { return c.count }

// insert schedules e, growing the bucket array or refreshing a stale
// width when the population calls for it.
func (c *calendar) insert(e *Event) {
	c.count++
	c.sinceRebuild++
	c.place(e)
	if c.count > 2*c.nb {
		c.rebuild(2 * c.nb)
	} else if c.staleWidth {
		c.staleWidth = false
		if c.sinceRebuild > c.count/2 {
			c.rebuild(c.nb)
		}
	}
}

// place routes e to its bucket or the overflow heap. It performs no
// resize checks, so rebuild and overflow migration can reuse it.
func (c *calendar) place(e *Event) {
	d := (e.time - c.start) * c.invw
	if d >= float64(c.nb) {
		// Beyond the bucket span: far-future overflow.
		c.ovf.push(e)
		return
	}
	i := 0
	if d > 0 {
		i = int(d)
	}
	// After a year jump, start can exceed an insert's time; such events
	// clamp into bucket 0, which the cursor reset below keeps correct
	// (within-bucket order handles any time range).
	if i < c.cur {
		c.cur = i
	}
	c.inBuckets++
	e.index = int32(i)
	b := &c.buckets[i]
	// Sorted insert scanning from the tail: new events usually carry the
	// latest (time, seq) in their bucket — in particular, a same-instant
	// burst appends in O(1) because seq always increases.
	p := b.tail
	walk := 0
	for p != nil && less(e, p) {
		p = p.prev
		walk++
	}
	if walk > calWalkTrigger {
		c.staleWidth = true
	}
	if p == nil {
		e.prev = nil
		e.next = b.head
		if b.head != nil {
			b.head.prev = e
		} else {
			b.tail = e
		}
		b.head = e
	} else {
		e.prev = p
		e.next = p.next
		if p.next != nil {
			p.next.prev = e
		} else {
			b.tail = e
		}
		p.next = e
	}
}

// unlink removes a bucketed event from its list in O(1).
func (c *calendar) unlink(e *Event) {
	b := &c.buckets[e.index]
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		b.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		b.tail = e.prev
	}
	e.next, e.prev = nil, nil
}

// peek returns the earliest pending event without removing it, or nil.
// It advances the scan cursor past drained buckets and jumps the year
// when only far-future events remain; both moves are state the next
// peek/pop reuses, never information loss.
func (c *calendar) peek() *Event {
	if c.count == 0 {
		return nil
	}
	if c.inBuckets == 0 {
		c.jump()
	}
	for c.buckets[c.cur].head == nil {
		c.cur++
	}
	return c.buckets[c.cur].head
}

// pop removes and returns the earliest pending event, or nil.
func (c *calendar) pop() *Event {
	e := c.peek()
	if e == nil {
		return nil
	}
	c.unlink(e)
	c.inBuckets--
	c.count--
	if c.nb > calMinBuckets && c.count < c.nb/2 {
		c.rebuild(c.nb / 2)
	}
	return e
}

// remove cancels a pending event wherever it sits.
func (c *calendar) remove(e *Event) {
	if int(e.index) >= c.nb {
		c.ovf.remove(e)
	} else {
		c.unlink(e)
		c.inBuckets--
	}
	c.count--
	if c.nb > calMinBuckets && c.count < c.nb/2 {
		c.rebuild(c.nb / 2)
	}
}

// jump re-anchors the year at the earliest far-future event — only
// legal with empty buckets — and migrates the newly-due overflow prefix
// into buckets. The migration bound uses the exact expression place
// routes by, so a migrated event can never bounce back to overflow.
func (c *calendar) jump() {
	c.start = c.ovf.min().time
	c.cur = 0
	for c.ovf.len() > 0 && (c.ovf.min().time-c.start)*c.invw < float64(c.nb) {
		c.place(c.ovf.pop())
	}
}

// rebuild resizes the bucket array to nb slots, re-estimates the bucket
// width, and re-inserts every pending event. Collection walks buckets in
// scan order then drains the overflow heap, which yields the events in
// ascending (time, seq) — so every re-insert is an O(1) tail append and
// the whole rebuild is O(count). Backing arrays (buckets, scratch,
// overflow) are reused across rebuilds: steady-state oscillation across
// a resize boundary allocates nothing once capacities are warm.
func (c *calendar) rebuild(nb int) {
	if nb < calMinBuckets {
		nb = calMinBuckets
	}
	sc := c.scratch[:0]
	for i := c.cur; i < c.nb; i++ {
		for e := c.buckets[i].head; e != nil; e = e.next {
			sc = append(sc, e)
		}
	}
	for c.ovf.len() > 0 {
		sc = append(sc, c.ovf.pop())
	}
	c.setWidth(c.estimateWidth(sc))
	if cap(c.buckets) >= nb {
		c.buckets = c.buckets[:nb]
		for i := range c.buckets {
			c.buckets[i] = bucket{}
		}
	} else {
		c.buckets = make([]bucket, nb)
	}
	c.nb = nb
	c.ovf.base = int32(nb)
	c.inBuckets = 0
	c.cur = 0
	if len(sc) > 0 {
		c.start = sc[0].time
	}
	for i, e := range sc {
		e.next, e.prev = nil, nil
		c.place(e)
		sc[i] = nil
	}
	c.scratch = sc[:0]
	c.sinceRebuild = 0
	c.staleWidth = false
}

func (c *calendar) setWidth(w float64) {
	c.width = w
	c.invw = 1 / w
}

// estimateWidth derives the new bucket width from the sorted pending
// set using a bulk-spread rule: the average gap across the earliest 7/8
// of the events (the far tail is excluded so one distant straggler
// can't blow the span up), scaled by calWidthFactor. Compared with
// Brown's head-sampling rule this sees the whole distribution, which
// matters for heavy-tailed offsets: sampling only the queue head reads
// the smallest order-statistic spacings and yields a span far narrower
// than the pending window, pushing the bulk of events through the
// overflow heap. The factor balances sorted-insert walk length (wider
// buckets hold more events) against overflow traffic (a short year
// expires sooner); the estimate tunes only performance — fire order is
// width-independent. With fewer than two distinct times the current
// width stands.
func (c *calendar) estimateWidth(sorted []*Event) float64 {
	n := len(sorted)
	if n < 2 {
		return c.width
	}
	q := n - 1
	if n >= 8 {
		q = n - n/8
	}
	spread := sorted[q].time - sorted[0].time
	w := calWidthFactor * spread / float64(q)
	// Degenerate spreads (all same-instant, subnormal gaps,
	// near-overflow times) keep the old width; correctness never
	// depends on it.
	if !(w > 1e-300) || w > 1e300 {
		return c.width
	}
	return w
}
