package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// diffProfile shapes one randomized differential workload. The delay
// generator controls the event-time distribution; the op weights
// control the schedule/cancel/step mix.
type diffProfile struct {
	name  string
	delay func(r *rand.Rand) float64
	// Op weights out of 100: schedule gets the remainder.
	cancelW, stepW int
}

var diffProfiles = []diffProfile{
	{
		// Smooth churn: a rolling window of uniformly spread events,
		// the calendar queue's design-point workload.
		name:    "uniform-churn",
		delay:   func(r *rand.Rand) float64 { return r.Float64() },
		cancelW: 10, stepW: 45,
	},
	{
		// Bursty: same-instant clusters (zero delay) punctuated by
		// jumps, so buckets hold long sorted runs and the FIFO
		// tie-break carries most of the ordering.
		name: "bursty",
		delay: func(r *rand.Rand) float64 {
			if r.Intn(4) != 0 {
				return 0
			}
			return float64(1 + r.Intn(8))
		},
		cancelW: 10, stepW: 40,
	},
	{
		// Far-future heavy: a third of the events land orders of
		// magnitude beyond the bucket span, living in the overflow
		// heap until a year jump migrates them.
		name: "far-future",
		delay: func(r *rand.Rand) float64 {
			if r.Intn(3) == 0 {
				return 1e4 * (1 + r.Float64())
			}
			return r.Float64()
		},
		cancelW: 10, stepW: 40,
	},
	{
		// Equal-timestamp heavy: delays quantized to four values, so
		// nearly every comparison ties on time and resolves by seq.
		name: "equal-timestamp",
		delay: func(r *rand.Rand) float64 {
			return float64(r.Intn(4))
		},
		cancelW: 10, stepW: 40,
	},
	{
		// Cancel-heavy: most scheduled events are torn back out,
		// hammering mid-list unlinks, overflow removes, and the
		// free-list recycling path on both implementations.
		name: "cancel-heavy",
		delay: func(r *rand.Rand) float64 {
			if r.Intn(8) == 0 {
				return 1e5
			}
			return float64(r.Intn(16))
		},
		cancelW: 40, stepW: 25,
	},
}

// TestDifferentialCalendarVsHeap drives the calendar-queue and
// binary-heap schedulers side by side through randomized workloads and
// asserts they are observationally identical: same fire stream (time
// and seq of every pop), same clocks, same pending counts, same Cancel
// results, same handle liveness, and same free-list population. The
// profiles cover the distributions the calendar's width heuristics care
// about — bursty, far-future, equal-timestamp-heavy, cancel-heavy —
// precisely because those heuristics must never affect order, only
// cost. Structural audits (auditScheduler) run periodically and at the
// end of each phase; running them on every op is quadratic and is the
// fuzz target's job.
func TestDifferentialCalendarVsHeap(t *testing.T) {
	const (
		ops      = 4000
		auditGap = 128
	)
	for _, p := range diffProfiles {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed=%d", p.name, seed), func(t *testing.T) {
				r := rand.New(rand.NewSource(seed))
				cal := NewImpl(Calendar)
				ref := NewImpl(Heap)
				nop := func() {}

				type fire struct {
					time float64
					seq  uint64
				}
				var calFired, refFired []fire
				cal.Observe(func(e *Event) { calFired = append(calFired, fire{e.time, e.seq}) })
				ref.Observe(func(e *Event) { refFired = append(refFired, fire{e.time, e.seq}) })

				var calLive, refLive []Handle

				check := func(structural bool) {
					t.Helper()
					if structural {
						auditScheduler(t, cal)
						auditScheduler(t, ref)
					}
					if cal.Len() != ref.Len() {
						t.Fatalf("pending diverged: calendar %d, heap %d", cal.Len(), ref.Len())
					}
					if cal.Now() != ref.Now() {
						t.Fatalf("clocks diverged: calendar %v, heap %v", cal.Now(), ref.Now())
					}
					if cal.Fired() != ref.Fired() {
						t.Fatalf("fired counters diverged: calendar %d, heap %d", cal.Fired(), ref.Fired())
					}
					if len(calFired) != len(refFired) {
						t.Fatalf("fire streams diverged in length: %d vs %d", len(calFired), len(refFired))
					}
					for i := range calFired {
						if calFired[i] != refFired[i] {
							t.Fatalf("fire %d diverged: calendar (%v,%d), heap (%v,%d)", i,
								calFired[i].time, calFired[i].seq, refFired[i].time, refFired[i].seq)
						}
					}
					// Both implementations share the pooled-record free
					// list: after identical fire/cancel histories the
					// recycled populations must match exactly.
					if len(cal.free) != len(ref.free) {
						t.Fatalf("free lists diverged: calendar %d, heap %d", len(cal.free), len(ref.free))
					}
				}

				for i := 0; i < ops; i++ {
					switch w := r.Intn(100); {
					case w < p.cancelW:
						if len(calLive) == 0 {
							continue
						}
						j := r.Intn(len(calLive))
						cg, rg := cal.Cancel(calLive[j]), ref.Cancel(refLive[j])
						if cg != rg {
							t.Fatalf("Cancel diverged on handle %d: calendar %v, heap %v", j, cg, rg)
						}
					case w < p.cancelW+p.stepW:
						if cal.Step() != ref.Step() {
							t.Fatal("Step diverged")
						}
					default:
						d := p.delay(r)
						var ch, rh Handle
						if r.Intn(2) == 0 {
							ch, rh = cal.After(d, nop), ref.After(d, nop)
						} else {
							at := cal.Now() + d
							ch, rh = cal.At(at, nop), ref.At(at, nop)
						}
						calLive = append(calLive, ch)
						refLive = append(refLive, rh)
					}
					if i%auditGap == 0 {
						check(true)
					}
					if cs, rs := len(calLive), len(refLive); cs > 0 && calLive[cs-1].Scheduled() != refLive[rs-1].Scheduled() {
						t.Fatal("latest handle liveness diverged")
					}
				}
				check(true)

				// Drain both to empty; the streams must stay identical to
				// the last event and every handle must read stale.
				for cal.Step() {
					if !ref.Step() {
						t.Fatal("heap drained before calendar")
					}
				}
				if ref.Step() {
					t.Fatal("calendar drained before heap")
				}
				check(true)
				if cal.Len() != 0 {
					t.Fatalf("%d events survived the drain", cal.Len())
				}
				for j := range calLive {
					if calLive[j].Scheduled() != refLive[j].Scheduled() {
						t.Fatalf("handle %d liveness diverged after drain", j)
					}
					if calLive[j].Scheduled() {
						t.Fatalf("handle %d still scheduled after drain", j)
					}
				}
			})
		}
	}
}
