package sim

import "testing"

// auditScheduler validates every structural invariant of s's
// future-event list and free list. It is shared by the fuzz target and
// the differential property tests, and branches on the implementation:
// heap order and index mapping for Impl Heap; bucket-list ordering,
// bucket mapping, cursor position, overflow routing, and count
// bookkeeping for Impl Calendar.
func auditScheduler(t *testing.T, s *Scheduler) {
	t.Helper()
	if s.hp != nil {
		auditHeap(t, &s.hp.items, s.hp.base)
	} else {
		auditCalendar(t, s.cal)
	}
	for i, e := range s.free {
		if e.index != -1 || e.action != nil || e.next != nil || e.prev != nil {
			t.Fatalf("free[%d] not retired: index %d, action nil=%v, linked=%v",
				i, e.index, e.action == nil, e.next != nil || e.prev != nil)
		}
	}
}

// auditHeap checks the binary-heap invariants: parent ≤ child under the
// (time, seq) order, every record knows its own position, and no record
// lost its action while pending.
func auditHeap(t *testing.T, items *[]*Event, base int32) {
	t.Helper()
	for i, e := range *items {
		if e.index != base+int32(i) {
			t.Fatalf("heap[%d] has index %d (base %d)", i, e.index, base)
		}
		if i > 0 && less(e, (*items)[(i-1)/2]) {
			t.Fatalf("heap order violated at %d: (%v,%d) < parent", i, e.time, e.seq)
		}
		if e.action == nil {
			t.Fatalf("pending heap[%d] has nil action", i)
		}
	}
}

// auditCalendar checks the calendar queue: each bucket is a consistent
// doubly-linked list sorted by (time, seq) whose members map to that
// bucket under the current (start, width) geometry, the scan cursor has
// not passed a pending event, overflow events genuinely lie beyond the
// bucket span, and the population counters agree with the structures.
func auditCalendar(t *testing.T, c *calendar) {
	t.Helper()
	if c.nb != len(c.buckets) {
		t.Fatalf("nb %d but %d buckets", c.nb, len(c.buckets))
	}
	inBuckets := 0
	for i := range c.buckets {
		b := c.buckets[i]
		if (b.head == nil) != (b.tail == nil) {
			t.Fatalf("bucket %d has head nil=%v tail nil=%v", i, b.head == nil, b.tail == nil)
		}
		var prev *Event
		for e := b.head; e != nil; e = e.next {
			inBuckets++
			if i < c.cur {
				t.Fatalf("cursor %d passed pending event in bucket %d", c.cur, i)
			}
			if e.prev != prev {
				t.Fatalf("bucket %d list has broken prev link at seq %d", i, e.seq)
			}
			if prev != nil && !less(prev, e) {
				t.Fatalf("bucket %d not sorted: (%v,%d) before (%v,%d)",
					i, prev.time, prev.seq, e.time, e.seq)
			}
			if int(e.index) != i {
				t.Fatalf("event in bucket %d has index %d", i, e.index)
			}
			if e.action == nil {
				t.Fatalf("pending event in bucket %d has nil action", i)
			}
			if j, ovf := c.mapTime(e.time); ovf || j != i {
				t.Fatalf("event at t=%v sits in bucket %d, maps to (%d, ovf=%v)", e.time, i, j, ovf)
			}
			prev = e
		}
		if b.tail != prev {
			t.Fatalf("bucket %d tail does not terminate its list", i)
		}
	}
	if inBuckets != c.inBuckets {
		t.Fatalf("inBuckets %d, counted %d", c.inBuckets, inBuckets)
	}
	if c.count != c.inBuckets+c.ovf.len() {
		t.Fatalf("count %d != %d bucketed + %d overflow", c.count, c.inBuckets, c.ovf.len())
	}
	if c.ovf.base != int32(c.nb) {
		t.Fatalf("overflow base %d, nb %d", c.ovf.base, c.nb)
	}
	auditHeap(t, &c.ovf.items, c.ovf.base)
	for _, e := range c.ovf.items {
		if _, ovf := c.mapTime(e.time); !ovf {
			t.Fatalf("overflow event at t=%v maps inside the bucket span", e.time)
		}
		if e.next != nil || e.prev != nil {
			t.Fatalf("overflow event at t=%v still bucket-linked", e.time)
		}
	}
}

// mapTime replicates place's routing arithmetic for the auditor.
func (c *calendar) mapTime(tm float64) (bucket int, overflow bool) {
	d := (tm - c.start) * c.invw
	if d >= float64(c.nb) {
		return 0, true
	}
	if d > 0 {
		return int(d), false
	}
	return 0, false
}
