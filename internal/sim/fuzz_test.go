package sim

import (
	"math"
	"testing"
)

// FuzzSchedulerHeap drives the calendar-queue scheduler and the
// reference heap scheduler side by side through a random interleaving of
// At, After, Cancel, and Step operations decoded from the fuzz input,
// checking after every operation that
//
//   - both future-event lists are structurally sound (auditScheduler:
//     heap order and index mapping for the heap; sorted bucket lists,
//     bucket/overflow routing, cursor and count bookkeeping for the
//     calendar queue),
//   - the two implementations agree operation for operation: identical
//     Cancel results, pending counts, clocks, and — via the fire
//     cross-check below — identical pop order,
//   - events fire in non-decreasing time order with FIFO tie-break
//     (ascending seq at equal times),
//   - handle liveness matches the model on both (Cancel succeeds
//     exactly once, fired events' handles go stale), and
//   - non-finite event times are rejected by panic without corrupting
//     either calendar.
//
// Scheduled times are quantized to small integers so that same-instant
// collisions — the FIFO tie-break's interesting case — are common, and
// every 16th delay lands far in the future to exercise the calendar
// queue's overflow heap and year jumps. Long insert or drain runs in the
// input cross the calendar's bucket-resize boundaries (count > 2·nb and
// count < nb/2), so rebuilds are covered by construction.
func FuzzSchedulerHeap(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 3, 3, 3})
	f.Add([]byte{0, 0, 0, 0, 3, 2, 0, 2, 1, 3, 3, 3, 3})
	f.Add([]byte{4, 0, 4, 3, 4})
	f.Add([]byte{1, 7, 1, 7, 1, 7, 2, 0, 2, 0, 3, 3})
	// Grow far past several resize boundaries, then drain back through
	// the shrink boundaries.
	grow := make([]byte, 0, 200)
	for i := 0; i < 60; i++ {
		grow = append(grow, 0, byte(i))
	}
	for i := 0; i < 60; i++ {
		grow = append(grow, 3)
	}
	f.Add(grow)
	// Far-future heavy: odd delay bytes ≥ 0x10 overflow the year span.
	f.Add([]byte{0, 0x9f, 0, 0xaf, 0, 1, 3, 3, 3, 0, 0xff, 2, 0, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		cal := New()
		ref := NewImpl(Heap)
		if cal.Impl() != Calendar || ref.Impl() != Heap {
			t.Fatal("implementation selection broken")
		}
		nop := func() {}
		var calLive, refLive []Handle
		lastTime := math.Inf(-1)
		var lastSeq uint64

		// The calendar scheduler's observer validates the global fire
		// order: time never decreases, and same-instant events fire in
		// scheduling order. The reference scheduler's observer records
		// its stream for the cross-check.
		var calFired, refFired []struct {
			time float64
			seq  uint64
		}
		cal.Observe(func(e *Event) {
			if e.time < lastTime {
				t.Fatalf("fired time %v after %v", e.time, lastTime)
			}
			if e.time == lastTime && e.seq <= lastSeq {
				t.Fatalf("FIFO tie-break violated at t=%v: seq %d after %d", e.time, e.seq, lastSeq)
			}
			lastTime = e.time
			lastSeq = e.seq
			if e.index >= 0 {
				t.Fatalf("fired event still claims list position %d", e.index)
			}
			calFired = append(calFired, struct {
				time float64
				seq  uint64
			}{e.time, e.seq})
		})
		ref.Observe(func(e *Event) {
			refFired = append(refFired, struct {
				time float64
				seq  uint64
			}{e.time, e.seq})
		})

		audit := func() {
			t.Helper()
			auditScheduler(t, cal)
			auditScheduler(t, ref)
			if cal.Len() != ref.Len() {
				t.Fatalf("calendar holds %d pending, heap %d", cal.Len(), ref.Len())
			}
			if cal.Now() != ref.Now() {
				t.Fatalf("clocks diverged: calendar %v, heap %v", cal.Now(), ref.Now())
			}
			if len(calFired) != len(refFired) {
				t.Fatalf("calendar fired %d events, heap %d", len(calFired), len(refFired))
			}
			for i := range calFired {
				if calFired[i] != refFired[i] {
					t.Fatalf("fire stream diverged at %d: calendar %+v, heap %+v",
						i, calFired[i], refFired[i])
				}
			}
			livePending := 0
			for i := range calLive {
				cs, rs := calLive[i].Scheduled(), refLive[i].Scheduled()
				if cs != rs {
					t.Fatalf("handle %d liveness diverged: calendar %v, heap %v", i, cs, rs)
				}
				if cs {
					livePending++
				}
			}
			if livePending != cal.Len() {
				t.Fatalf("%d live handles vs %d pending events", livePending, cal.Len())
			}
		}

		for i := 0; i < len(data); i++ {
			switch data[i] % 5 {
			case 0, 1: // schedule; quantized delay so time ties are common
				var d byte
				if i+1 < len(data) {
					i++
					d = data[i]
				}
				delay := float64(d % 8)
				if d%16 == 9 {
					// A far-future event: lands well beyond the calendar's
					// bucket span, exercising overflow and year jumps.
					delay = 1000 + float64(d)
				}
				var ch, rh Handle
				if data[i]%2 == 0 {
					ch = cal.After(delay, nop)
					rh = ref.After(delay, nop)
				} else {
					ch = cal.At(cal.Now()+delay, nop)
					rh = ref.At(ref.Now()+delay, nop)
				}
				if !ch.Scheduled() || !rh.Scheduled() {
					t.Fatal("fresh handle not scheduled")
				}
				ch.SetKind(0x7f)
				rh.SetKind(0x7f)
				calLive = append(calLive, ch)
				refLive = append(refLive, rh)
			case 2: // cancel a (possibly stale) tracked handle on both
				if len(calLive) == 0 {
					continue
				}
				var idx byte
				if i+1 < len(data) {
					i++
					idx = data[i]
				}
				j := int(idx) % len(calLive)
				ch, rh := calLive[j], refLive[j]
				was := ch.Scheduled()
				cg, rg := cal.Cancel(ch), ref.Cancel(rh)
				if cg != rg {
					t.Fatalf("Cancel diverged: calendar %v, heap %v", cg, rg)
				}
				if cg != was {
					t.Fatalf("Cancel = %v on handle with Scheduled = %v", cg, was)
				}
				if ch.Scheduled() {
					t.Fatal("handle still scheduled after Cancel")
				}
				if cal.Cancel(ch) || ref.Cancel(rh) {
					t.Fatal("double Cancel succeeded")
				}
			case 3: // fire the earliest event on both
				before := cal.Len()
				cf, rf := cal.Step(), ref.Step()
				if cf != rf {
					t.Fatalf("Step diverged: calendar %v, heap %v", cf, rf)
				}
				if cf != (before > 0) {
					t.Fatalf("Step = %v with %d pending", cf, before)
				}
			case 4: // non-finite times must panic and leave no trace
				before := cal.Len()
				for _, s := range []*Scheduler{cal, ref} {
					for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
						func() {
							defer func() {
								if recover() == nil {
									t.Fatalf("At(%v) did not panic", bad)
								}
							}()
							s.At(bad, nop)
						}()
					}
				}
				if cal.Len() != before {
					t.Fatalf("rejected times changed pending count %d -> %d", before, cal.Len())
				}
			}
			audit()
		}

		// Drain: everything left must fire, in order, exactly once, and
		// the two streams must stay identical to the end.
		remaining := cal.Len()
		for cal.Step() {
			if !ref.Step() {
				t.Fatal("heap drained before calendar")
			}
			remaining--
			audit()
		}
		if ref.Step() {
			t.Fatal("calendar drained before heap")
		}
		if remaining != 0 {
			t.Fatalf("drain fired %d fewer events than were pending", -remaining)
		}
		for i := range calLive {
			if calLive[i].Scheduled() || refLive[i].Scheduled() {
				t.Fatal("handle scheduled after drain")
			}
		}
	})
}
