package sim

import (
	"math"
	"testing"
)

// FuzzSchedulerHeap drives a scheduler through a random interleaving of
// At, After, Cancel, and Step operations decoded from the fuzz input,
// checking after every operation that
//
//   - the binary heap is well-formed (parent ≤ child under the
//     (time, seq) order) and every record knows its own position,
//   - the free list holds only retired records (index -1, nil action,
//     no live handle),
//   - events fire in non-decreasing time order with FIFO tie-break
//     (ascending seq at equal times),
//   - handle liveness matches the model (Cancel succeeds exactly once,
//     fired events' handles go stale), and
//   - non-finite event times are rejected by panic without corrupting
//     the calendar.
//
// Scheduled times are quantized to small integers so that same-instant
// collisions — the FIFO tie-break's interesting case — are common.
func FuzzSchedulerHeap(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 3, 3, 3})
	f.Add([]byte{0, 0, 0, 0, 3, 2, 0, 2, 1, 3, 3, 3, 3})
	f.Add([]byte{4, 0, 4, 3, 4})
	f.Add([]byte{1, 7, 1, 7, 1, 7, 2, 0, 2, 0, 3, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		s := New()
		nop := func() {}
		var live []Handle
		lastTime := math.Inf(-1)
		var lastSeq uint64

		// The observer validates the global fire order: time never
		// decreases, and same-instant events fire in scheduling order.
		s.Observe(func(e *Event) {
			if e.time < lastTime {
				t.Fatalf("fired time %v after %v", e.time, lastTime)
			}
			if e.time == lastTime && e.seq <= lastSeq {
				t.Fatalf("FIFO tie-break violated at t=%v: seq %d after %d", e.time, e.seq, lastSeq)
			}
			lastTime = e.time
			lastSeq = e.seq
			if e.index >= 0 {
				t.Fatalf("fired event still claims heap position %d", e.index)
			}
		})

		audit := func() {
			t.Helper()
			for i, e := range s.heap {
				if int(e.index) != i {
					t.Fatalf("heap[%d] has index %d", i, e.index)
				}
				if i > 0 && less(e, s.heap[(i-1)/2]) {
					t.Fatalf("heap order violated at %d: (%v,%d) < parent", i, e.time, e.seq)
				}
				if e.action == nil {
					t.Fatalf("pending heap[%d] has nil action", i)
				}
			}
			for i, e := range s.free {
				if e.index != -1 || e.action != nil {
					t.Fatalf("free[%d] not retired: index %d, action nil=%v", i, e.index, e.action == nil)
				}
			}
			livePending := 0
			for _, h := range live {
				if h.Scheduled() {
					livePending++
				}
			}
			if livePending != s.Len() {
				t.Fatalf("%d live handles vs %d pending events", livePending, s.Len())
			}
		}

		for i := 0; i < len(data); i++ {
			switch data[i] % 5 {
			case 0, 1: // schedule, quantized delay so time ties are common
				var d byte
				if i+1 < len(data) {
					i++
					d = data[i]
				}
				delay := float64(d % 8)
				var h Handle
				if data[i]%2 == 0 {
					h = s.After(delay, nop)
				} else {
					h = s.At(s.Now()+delay, nop)
				}
				if !h.Scheduled() {
					t.Fatal("fresh handle not scheduled")
				}
				h.SetKind(0x7f)
				live = append(live, h)
			case 2: // cancel a (possibly stale) tracked handle
				if len(live) == 0 {
					continue
				}
				var idx byte
				if i+1 < len(data) {
					i++
					idx = data[i]
				}
				h := live[int(idx)%len(live)]
				was := h.Scheduled()
				if got := s.Cancel(h); got != was {
					t.Fatalf("Cancel = %v on handle with Scheduled = %v", got, was)
				}
				if h.Scheduled() {
					t.Fatal("handle still scheduled after Cancel")
				}
				if s.Cancel(h) {
					t.Fatal("double Cancel succeeded")
				}
			case 3: // fire the earliest event
				before := s.Len()
				fired := s.Step()
				if fired != (before > 0) {
					t.Fatalf("Step = %v with %d pending", fired, before)
				}
			case 4: // non-finite times must panic and leave no trace
				before := s.Len()
				for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
					func() {
						defer func() {
							if recover() == nil {
								t.Fatalf("At(%v) did not panic", bad)
							}
						}()
						s.At(bad, nop)
					}()
				}
				if s.Len() != before {
					t.Fatalf("rejected times changed pending count %d -> %d", before, s.Len())
				}
			}
			audit()
		}

		// Drain: everything left must fire, in order, exactly once.
		remaining := s.Len()
		for s.Step() {
			remaining--
			audit()
		}
		if remaining != 0 {
			t.Fatalf("drain fired %d fewer events than were pending", -remaining)
		}
		for _, h := range live {
			if h.Scheduled() {
				t.Fatal("handle scheduled after drain")
			}
		}
	})
}
