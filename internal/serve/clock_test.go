package serve

import (
	"sync"
	"time"
)

// fakeClock is a manually advanced time source shared by the staleness
// and breaker tests, so TTL and cooldown transitions are exact rather
// than sleep-based.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}
