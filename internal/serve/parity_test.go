package serve

import (
	"testing"
	"time"

	"dqalloc/internal/loadinfo"
	"dqalloc/internal/policy"
	"dqalloc/internal/rng"
	"dqalloc/internal/workload"
)

// This file proves the decision-parity claim: given identical load
// tables, a serve-mode Core makes bit-identical selections to the
// sim-mode policy stack, so the simulator remains a faithful offline
// twin for policy tuning. The test mirrors every report into a
// loadinfo.Table, drives both sides with the same query sequence, and
// compares FNV-1a digests of the two decision streams.

// fnv1a folds one decision into a running FNV-1a 64 digest.
func fnv1a(h uint64, site int) uint64 {
	const prime = 0x100000001b3
	if h == 0 {
		h = 0xcbf29ce484222325
	}
	v := uint64(site)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= prime
		v >>= 8
	}
	return h
}

// simTableMirror keeps a loadinfo.Table equal to an absolute per-site
// load state by issuing the Assign/Complete diffs.
type simTableMirror struct {
	table   *loadinfo.Table
	io, cpu []int
	cw, iw  []float64
}

func newSimTableMirror(numSites int) *simTableMirror {
	return &simTableMirror{
		table: loadinfo.NewTable(numSites),
		io:    make([]int, numSites),
		cpu:   make([]int, numSites),
		cw:    make([]float64, numSites),
		iw:    make([]float64, numSites),
	}
}

func (m *simTableMirror) set(site, numIO, numCPU int, cpuWork, ioWork float64) {
	for m.io[site] < numIO {
		m.table.Assign(site, workload.IOBound)
		m.io[site]++
	}
	for m.io[site] > numIO {
		m.table.Complete(site, workload.IOBound)
		m.io[site]--
	}
	for m.cpu[site] < numCPU {
		m.table.Assign(site, workload.CPUBound)
		m.cpu[site]++
	}
	for m.cpu[site] > numCPU {
		m.table.Complete(site, workload.CPUBound)
		m.cpu[site]--
	}
	m.table.AssignWork(site, cpuWork-m.cw[site], ioWork-m.iw[site])
	m.cw[site], m.iw[site] = cpuWork, ioWork
}

// buildRefPolicy reconstructs the sim-mode policy exactly as NewCore
// derives it: the policy stream is rng.NewStream(seed).Child(1).
func buildRefPolicy(t *testing.T, cfg Config) policy.Policy {
	t.Helper()
	root := rng.NewStream(cfg.Seed)
	var pol policy.Policy
	var err error
	if cfg.Tuning.Enabled() {
		pol, err = policy.NewTuned(cfg.Policy, cfg.NumSites, cfg.Tuning, root.Child(1))
	} else {
		pol, err = policy.New(cfg.Policy, cfg.NumSites, root.Child(1))
	}
	if err != nil {
		t.Fatal(err)
	}
	return pol
}

// runParity drives both sides through steps decisions under freshly
// mirrored random load tables and returns the two digests.
func runParity(t *testing.T, cfg Config, steps int) (coreDigest, simDigest uint64) {
	t.Helper()
	clk := newFakeClock()
	cfg.Clock = clk.Now
	core, err := NewCore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	refPol := buildRefPolicy(t, cfg)
	mirror := newSimTableMirror(cfg.NumSites)
	refEnv := &policy.Env{
		View:     mirror.table,
		NumSites: cfg.NumSites,
		NumDisks: cfg.NumDisks,
		DiskTime: cfg.DiskTime,
		NetTime: func(q *workload.Query, from, to int) float64 {
			if from == to {
				return 0
			}
			return 2 * cfg.MsgTime * cfg.Classes[q.Class].MsgLength
		},
	}

	driver := rng.NewStream(1234)
	for step := 0; step < steps; step++ {
		// A fresh load state every step: every site reports, so the
		// serve table's optimistic deltas are cleared and both sides
		// see byte-identical views.
		for s := 0; s < cfg.NumSites; s++ {
			numIO, numCPU := driver.Intn(16), driver.Intn(16)
			cpuW := float64(driver.Intn(400)) / 8
			ioW := float64(driver.Intn(400)) / 8
			if err := core.Report(s, numIO, numCPU, cpuW, ioW, 0, 0, clk.Now()); err != nil {
				t.Fatal(err)
			}
			mirror.set(s, numIO, numCPU, cpuW, ioW)
		}
		q := &workload.Query{
			Class: driver.Intn(len(cfg.Classes)),
			Home:  driver.Intn(cfg.NumSites),
		}
		q.Exec = q.Home
		cfg.classMeans(q)
		refQ := *q

		site, out := core.Decide(q, clk.Now())
		if out != OutcomeDecided {
			t.Fatalf("step %d: outcome %v, want decided", step, out)
		}
		refSite := refPol.Select(&refQ, refQ.Home, refEnv)
		if site != refSite {
			t.Fatalf("step %d: serve chose %d, sim policy chose %d", step, site, refSite)
		}
		coreDigest = fnv1a(coreDigest, site)
		simDigest = fnv1a(simDigest, refSite)
		clk.Advance(10 * time.Millisecond)
	}
	return coreDigest, simDigest
}

func TestDecisionParityWithSimPolicies(t *testing.T) {
	for _, kind := range []policy.Kind{policy.Local, policy.Random, policy.BNQ, policy.BNQRD, policy.LERT, policy.Work} {
		t.Run(kind.String(), func(t *testing.T) {
			cfg := Default()
			cfg.NumSites = 5
			cfg.Policy = kind
			cd, sd := runParity(t, cfg, 400)
			if cd != sd || cd == 0 {
				t.Fatalf("digest mismatch: serve %#x, sim %#x", cd, sd)
			}
		})
	}
}

func TestDecisionParityWithAntiHerdTuning(t *testing.T) {
	cfg := Default()
	cfg.NumSites = 6
	cfg.Policy = policy.LERT
	cfg.Tuning = policy.Tuning{Hysteresis: 0.15, PowerK: 2, RandomTies: true}
	cd, sd := runParity(t, cfg, 400)
	if cd != sd || cd == 0 {
		t.Fatalf("tuned digest mismatch: serve %#x, sim %#x", cd, sd)
	}
}

// TestDecisionParityStable pins the parity digest for one fixed
// scenario: any change to the serve-side decision path that alters
// selections (and would therefore break the offline-twin property)
// shows up as a digest change here.
func TestDecisionParityStable(t *testing.T) {
	cfg := Default()
	cfg.NumSites = 5
	cfg.Policy = policy.LERT
	cd, sd := runParity(t, cfg, 400)
	if cd != sd {
		t.Fatalf("digest mismatch: serve %#x, sim %#x", cd, sd)
	}
	const want uint64 = 0xb9215ae2c168fe60
	if cd != want {
		t.Fatalf("parity digest drifted: %#x, want %#x", cd, want)
	}
}
