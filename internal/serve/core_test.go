package serve

import (
	"testing"
	"time"

	"dqalloc/internal/policy"
	"dqalloc/internal/workload"
)

// coreConfig returns a small BNQ core config on a fake clock.
func coreConfig(clk *fakeClock) Config {
	cfg := Default()
	cfg.NumSites = 4
	cfg.Policy = policy.BNQ
	cfg.TTL = 100 * time.Millisecond
	cfg.OpenFor = 200 * time.Millisecond
	cfg.Clock = clk.Now
	return cfg
}

// reportAll ingests a clean zero-load report from every site.
func reportAll(t *testing.T, c *Core, now time.Time) {
	t.Helper()
	for s := 0; s < c.cfg.NumSites; s++ {
		if err := c.Report(s, 0, 0, 0, 0, 0, 0, now); err != nil {
			t.Fatal(err)
		}
	}
}

func newQuery(cfg Config, class, home int) *workload.Query {
	q := &workload.Query{Class: class, Home: home, Exec: home}
	cfg.classMeans(q)
	return q
}

func TestCoreNoSitesBeforeAnyReport(t *testing.T) {
	clk := newFakeClock()
	cfg := coreConfig(clk)
	c, err := NewCore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	site, out := c.Decide(newQuery(cfg, 0, 0), clk.Now())
	if out != OutcomeNoSites || site != policy.NoSite {
		t.Fatalf("Decide = (%d, %v), want (NoSite, no-sites)", site, out)
	}
	if c.Ready(clk.Now()) {
		t.Error("Ready with no reports")
	}
}

func TestCoreDecidesAndSpreadsViaDeltas(t *testing.T) {
	clk := newFakeClock()
	cfg := coreConfig(clk)
	c, err := NewCore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reportAll(t, c, clk.Now())
	if !c.Ready(clk.Now()) {
		t.Fatal("not Ready after clean reports")
	}

	// With optimistic commitment, a burst of BNQ decisions inside one
	// report period must spread across sites instead of herding onto
	// one momentarily idle victim.
	counts := make([]int, cfg.NumSites)
	for i := 0; i < 8; i++ {
		site, out := c.Decide(newQuery(cfg, 0, 0), clk.Now())
		if out != OutcomeDecided {
			t.Fatalf("decision %d: outcome %v", i, out)
		}
		counts[site]++
	}
	for s, n := range counts {
		if n != 2 {
			t.Fatalf("BNQ burst herded: per-site counts %v (site %d got %d, want 2)", counts, s, n)
		}
	}
}

func TestCoreFallbackRoundRobinWhenAllViewsExpire(t *testing.T) {
	clk := newFakeClock()
	cfg := coreConfig(clk)
	c, err := NewCore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reportAll(t, c, clk.Now())

	// Older than TTL (stale view) but inside the breaker gap (3×TTL):
	// the sites are reachable, the information is expired.
	clk.Advance(150 * time.Millisecond)
	var sites []int
	for i := 0; i < 8; i++ {
		site, out := c.Decide(newQuery(cfg, 0, 0), clk.Now())
		if out != OutcomeFallback {
			t.Fatalf("decision %d: outcome %v, want fallback", i, out)
		}
		sites = append(sites, site)
	}
	for i, s := range sites {
		if s != i%cfg.NumSites {
			t.Fatalf("fallback order %v is not round-robin", sites)
		}
	}

	// Past the gap every breaker opens: no sites at all.
	clk.Advance(200 * time.Millisecond)
	if _, out := c.Decide(newQuery(cfg, 0, 0), clk.Now()); out != OutcomeNoSites {
		t.Fatalf("outcome %v, want no-sites past the breaker gap", out)
	}

	// One site recovers: decisions flow there.
	if err := c.Report(2, 0, 0, 0, 0, 0, 0, clk.Now()); err != nil {
		t.Fatal(err)
	}
	site, out := c.Decide(newQuery(cfg, 0, 0), clk.Now())
	if out != OutcomeDecided || site != 2 {
		t.Fatalf("Decide = (%d, %v), want (2, decided)", site, out)
	}
}

// TestCoreFallbackRespectsAdmissionCap: the round-robin fallback taken
// when every view has expired must still honor AdmitMax — a staleness
// episode is not a license to drive sites past the admission cap.
func TestCoreFallbackRespectsAdmissionCap(t *testing.T) {
	clk := newFakeClock()
	cfg := coreConfig(clk)
	cfg.AdmitMax = 5
	c, err := NewCore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Site 1 reports at the cap; everyone else has room.
	for s := 0; s < cfg.NumSites; s++ {
		n := 0
		if s == 1 {
			n = cfg.AdmitMax
		}
		if err := c.Report(s, n, 0, 0, 0, 0, 0, clk.Now()); err != nil {
			t.Fatal(err)
		}
	}
	// Expire every view (stale, but inside the breaker gap): fallback
	// round-robin must skip the capped site. Sites 0, 2, 3 have 5 slots
	// each, so exactly 15 fallback decisions fit.
	clk.Advance(150 * time.Millisecond)
	for i := 0; i < 15; i++ {
		site, out := c.Decide(newQuery(cfg, 0, 0), clk.Now())
		if out != OutcomeFallback {
			t.Fatalf("decision %d: outcome %v, want fallback", i, out)
		}
		if site == 1 {
			t.Fatalf("decision %d: fallback routed to capped site 1", i)
		}
	}
	// The optimistic commitments now hold every uncapped site at the
	// cap: refuse with no-capacity rather than overrun.
	if _, out := c.Decide(newQuery(cfg, 0, 0), clk.Now()); out != OutcomeNoCapacity {
		t.Fatalf("outcome %v, want no-capacity once every routable site is capped", out)
	}
}

func TestCoreAdmissionCap(t *testing.T) {
	clk := newFakeClock()
	cfg := coreConfig(clk)
	cfg.NumSites = 2
	cfg.AdmitMax = 3
	c, err := NewCore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Both sites already report 3 committed queries: every decision is
	// at the cap.
	for s := 0; s < 2; s++ {
		if err := c.Report(s, 3, 0, 0, 0, 0, 0, clk.Now()); err != nil {
			t.Fatal(err)
		}
	}
	if _, out := c.Decide(newQuery(cfg, 0, 0), clk.Now()); out != OutcomeNoCapacity {
		t.Fatalf("outcome %v, want no-capacity", out)
	}
	// Capacity opens up at one site.
	if err := c.Report(0, 1, 0, 0, 0, 0, 0, clk.Now()); err != nil {
		t.Fatal(err)
	}
	site, out := c.Decide(newQuery(cfg, 0, 0), clk.Now())
	if out != OutcomeDecided || site != 0 {
		t.Fatalf("Decide = (%d, %v), want (0, decided)", site, out)
	}
	// The optimistic deltas now hold site 0 at the cap again (1+1=2...
	// one more decision reaches 3).
	site, out = c.Decide(newQuery(cfg, 0, 0), clk.Now())
	if out != OutcomeDecided || site != 0 {
		t.Fatalf("second Decide = (%d, %v), want (0, decided)", site, out)
	}
	if _, out = c.Decide(newQuery(cfg, 0, 0), clk.Now()); out != OutcomeNoCapacity {
		t.Fatalf("outcome %v, want no-capacity at the cap", out)
	}
	if err := c.Report(99, 0, 0, 0, 0, 0, 0, clk.Now()); err == nil {
		t.Error("out-of-range report site accepted")
	}
}
