package serve

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dqalloc/internal/policy"
)

// FuzzDecodeDecideRequest is the dqserve request-decoder fuzz target:
// arbitrary bytes — malformed JSON, absurd field values, unknown fields,
// trailing garbage — must never panic, and anything the decoder accepts
// must satisfy the validated invariants the decision path relies on.
func FuzzDecodeDecideRequest(f *testing.F) {
	f.Add([]byte(`{"class":0,"home":0}`))
	f.Add([]byte(`{"class":1,"home":5,"est_reads":20,"est_page_cpu":0.05,"deadline_ms":50}`))
	f.Add([]byte(`{"class":-1,"home":0}`))
	f.Add([]byte(`{"class":0,"home":0,"est_reads":-1}`))
	f.Add([]byte(`{"class":0,"home":0,"est_reads":1e308}`))
	f.Add([]byte(`{"class":0,"home":0,"deadline_ms":1e999}`))
	f.Add([]byte(`{"class":0,"home":0,"unknown":true}`))
	f.Add([]byte(`{"class":0,"home":0}{"class":1}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`[0,1,2]`))
	f.Add([]byte(`"just a string"`))
	f.Add([]byte(`{"site":0,"num_io":3,"num_cpu":1,"rejected":2}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		const numClasses, numSites = 2, 6
		req, err := DecodeDecideRequest(data, numClasses, numSites)
		if err == nil {
			if req.Class < 0 || req.Class >= numClasses {
				t.Fatalf("accepted class %d out of range", req.Class)
			}
			if req.Home < 0 || req.Home >= numSites {
				t.Fatalf("accepted home %d out of range", req.Home)
			}
			for name, v := range map[string]float64{
				"est_reads": req.EstReads, "est_page_cpu": req.EstPageCPU, "deadline_ms": req.DeadlineMS,
			} {
				if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > absurd {
					t.Fatalf("accepted %s = %v", name, v)
				}
			}
		}
		rep, err := DecodeReportRequest(data, numSites)
		if err == nil {
			if rep.Site < 0 || rep.Site >= numSites {
				t.Fatalf("accepted report site %d out of range", rep.Site)
			}
			if rep.NumIO < 0 || rep.NumCPU < 0 || rep.Rejected < 0 {
				t.Fatalf("accepted negative counts: %+v", rep)
			}
		}
	})
}

// TestDecoderErrorsMapTo4xx drives the fuzz corpus shapes through the
// live handlers: a decode error must always surface as a 4xx, never a
// 5xx or a panic.
func TestDecoderErrorsMapTo4xx(t *testing.T) {
	cfg := Default()
	cfg.NumSites = 3
	cfg.Policy = policy.BNQ
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	bodies := []string{
		`{`, ``, `[]`, `null`, `"s"`, `{"class":-1,"home":0}`, `{"class":0,"home":99}`,
		`{"class":0,"home":0,"est_reads":1e308}`, `{"class":0,"home":0,"x":1}`,
		strings.Repeat("9", 1<<17), // over the body bound
	}
	for _, path := range []string{"/v1/decide", "/v1/report"} {
		for _, body := range bodies {
			resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatalf("%s %q: %v", path, body[:min(20, len(body))], err)
			}
			resp.Body.Close()
			if resp.StatusCode < 400 || resp.StatusCode >= 500 {
				t.Errorf("%s %q: status %d, want 4xx", path, body[:min(20, len(body))], resp.StatusCode)
			}
		}
	}
}
