// Package chaostest is a deterministic fault-injection harness for the
// serve decision engine. A Scenario describes the chaos — report loss,
// report delay, site churn (sites going silent and returning) — and Run
// replays it against a serve.Core on a fake clock, with every random
// draw taken from seeded rng streams. The same scenario therefore
// produces bit-identical results on every run, so availability floors
// and degradation ladders can be asserted exactly rather than
// statistically.
//
// The harness closes the feedback loop the way cmd/dqload does for a
// live server: each routed decision raises the chosen site's synthetic
// outstanding count, which falls again after a random service interval,
// and the (possibly lost, possibly delayed) reports carry those counts
// back into the live table.
package chaostest

import (
	"fmt"
	"sync"
	"time"

	"dqalloc/internal/policy"
	"dqalloc/internal/rng"
	"dqalloc/internal/serve"
	"dqalloc/internal/workload"
)

// Clock is a manually advanced time source for deterministic replay.
type Clock struct {
	mu  sync.Mutex
	now time.Time
}

// NewClock starts at a fixed instant so scenarios are reproducible.
func NewClock() *Clock {
	return &Clock{now: time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC)}
}

// Now returns the current fake time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the fake time forward.
func (c *Clock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// Scenario describes one deterministic chaos run. Time advances in
// fixed steps; one decision is attempted per step and report rounds
// happen every ReportEvery steps.
type Scenario struct {
	// Steps is the number of decision steps to replay.
	Steps int
	// StepDt is the simulated time per step.
	StepDt time.Duration
	// ReportEvery is the number of steps between report rounds; each
	// round every site attempts one report.
	ReportEvery int
	// FirstCleanRounds exempts the initial rounds from loss and churn so
	// the table warms up before the faults start.
	FirstCleanRounds int
	// LossProb is the per-site, per-round probability a report is lost.
	LossProb float64
	// MaxDelaySteps delays each delivered report uniformly by 0..this
	// many steps (stale-on-arrival reports).
	MaxDelaySteps int
	// ChurnPeriod, when positive, silences one randomly chosen site
	// every ChurnPeriod rounds for ChurnSilence rounds — the site keeps
	// serving but stops reporting, as in a partition or agent crash.
	ChurnPeriod  int
	ChurnSilence int
	// SlowFactor, when > 1, opens a fail-slow brownout at SlowSite: from
	// round SlowStart for SlowRounds rounds the site's synthetic
	// completions take SlowFactor× longer and its reports carry the
	// inflated latency — the site keeps reporting on time, so only
	// latency-driven breaking can catch it.
	SlowFactor float64
	SlowSite   int
	SlowStart  int
	SlowRounds int
	// Seed drives every random draw in the scenario.
	Seed uint64
}

// Result aggregates one run. Decisions always equals the sum of the
// four outcome counters — every attempt resolves exactly once.
type Result struct {
	Decisions  int
	Decided    int
	Fallback   int
	NoCapacity int
	NoSites    int
	// BreakerOpens counts breaker open transitions over the run.
	BreakerOpens uint64
	// SlowProbations counts latency-driven closed→half-open demotions.
	SlowProbations uint64
	// SlowSiteDecisions counts decisions routed to the scenario's
	// SlowSite while its brownout was active.
	SlowSiteDecisions int
	// Digest is an FNV-1a fold of the (site, outcome) decision stream;
	// equal scenarios yield equal digests.
	Digest uint64
	// FinalBreakers is each site's breaker state at the end of the run.
	FinalBreakers []string
}

// Availability is the fraction of decision attempts that received a
// routing decision (policy or degraded fallback).
func (r Result) Availability() float64 {
	if r.Decisions == 0 {
		return 1
	}
	return float64(r.Decided+r.Fallback) / float64(r.Decisions)
}

// Conserved reports whether every decision resolved to exactly one
// outcome.
func (r Result) Conserved() bool {
	return r.Decided+r.Fallback+r.NoCapacity+r.NoSites == r.Decisions
}

// pendingReport is a captured load snapshot in flight toward the server.
type pendingReport struct {
	due                 int // step index at which it arrives
	site, numIO, numCPU int
	cpuWork, ioWork     float64
	latencyMS           float64
}

// completion releases one synthetic outstanding query.
type completion struct {
	due  int
	site int
	io   bool
}

// Run replays sc against a fresh Core built from cfg (cfg.Clock is
// overridden). It returns an error only for invalid configuration;
// chaos outcomes are reported in the Result, never as errors.
func Run(cfg serve.Config, sc Scenario) (Result, error) {
	if sc.Steps <= 0 || sc.StepDt <= 0 || sc.ReportEvery <= 0 {
		return Result{}, fmt.Errorf("chaostest: Steps, StepDt, and ReportEvery must be positive")
	}
	clk := NewClock()
	cfg.Clock = clk.Now
	core, err := serve.NewCore(cfg)
	if err != nil {
		return Result{}, err
	}

	root := rng.NewStream(sc.Seed)
	lossRng := root.Child(10)
	delayRng := root.Child(11)
	queryRng := root.Child(12)
	svcRng := root.Child(13)
	churnRng := root.Child(14)

	numIO := make([]int, cfg.NumSites)
	numCPU := make([]int, cfg.NumSites)
	silentUntil := make([]int, cfg.NumSites) // round index, exclusive
	var inFlight []pendingReport
	var completions []completion
	var res Result
	round := 0

	for step := 0; step < sc.Steps; step++ {
		// Deliver reports whose delay has elapsed.
		kept := inFlight[:0]
		for _, pr := range inFlight {
			if pr.due > step {
				kept = append(kept, pr)
				continue
			}
			if err := core.Report(pr.site, pr.numIO, pr.numCPU, pr.cpuWork, pr.ioWork, 0, pr.latencyMS, clk.Now()); err != nil {
				return Result{}, err
			}
		}
		inFlight = kept

		// Release completed synthetic queries.
		keptC := completions[:0]
		for _, c := range completions {
			if c.due > step {
				keptC = append(keptC, c)
				continue
			}
			if c.io {
				numIO[c.site]--
			} else {
				numCPU[c.site]--
			}
		}
		completions = keptC

		// Brownout window: the slow site serves and reports normally on
		// schedule, but everything it touches takes SlowFactor× longer.
		slowActive := sc.SlowFactor > 1 &&
			round >= sc.SlowStart && round < sc.SlowStart+sc.SlowRounds

		// Report round: churn, loss, delay, and brownout latency apply
		// per site.
		if step%sc.ReportEvery == 0 {
			faulty := round >= sc.FirstCleanRounds
			if faulty && sc.ChurnPeriod > 0 && round%sc.ChurnPeriod == 0 {
				s := churnRng.Intn(cfg.NumSites)
				silentUntil[s] = round + sc.ChurnSilence
			}
			// Mean synthetic service is ~4.5 steps; reports carry it as
			// the site's observed latency, inflated during a brownout.
			baseLatMS := 4.5 * float64(sc.StepDt) / float64(time.Millisecond)
			for s := 0; s < cfg.NumSites; s++ {
				if faulty && round < silentUntil[s] {
					continue // churned away: the site reports nothing
				}
				if faulty && lossRng.Bernoulli(sc.LossProb) {
					continue // report lost in transit
				}
				delay := 0
				if sc.MaxDelaySteps > 0 {
					delay = delayRng.Intn(sc.MaxDelaySteps + 1)
				}
				lat := baseLatMS
				if slowActive && s == sc.SlowSite {
					lat *= sc.SlowFactor
				}
				inFlight = append(inFlight, pendingReport{
					due: step + delay, site: s,
					numIO: numIO[s], numCPU: numCPU[s],
					cpuWork: float64(numCPU[s]), ioWork: float64(numIO[s]),
					latencyMS: lat,
				})
			}
			round++
		}

		// One decision attempt per step.
		q := &workload.Query{
			Class: queryRng.Intn(len(cfg.Classes)),
			Home:  queryRng.Intn(cfg.NumSites),
		}
		q.Exec = q.Home
		cl := cfg.Classes[q.Class]
		q.EstReads, q.EstPageCPU = cl.NumReads, cl.PageCPUTime

		site, out := core.Decide(q, clk.Now())
		res.Decisions++
		res.Digest = fold(res.Digest, site)
		res.Digest = fold(res.Digest, int(out))
		switch out {
		case serve.OutcomeDecided:
			res.Decided++
		case serve.OutcomeFallback:
			res.Fallback++
		case serve.OutcomeNoCapacity:
			res.NoCapacity++
		case serve.OutcomeNoSites:
			res.NoSites++
		}
		if out == serve.OutcomeDecided || out == serve.OutcomeFallback {
			io := policy.QueryBound(q, cfg.DiskTime, cfg.NumDisks) == workload.IOBound
			if io {
				numIO[site]++
			} else {
				numCPU[site]++
			}
			svc := 1 + svcRng.Intn(8)
			if slowActive && site == sc.SlowSite {
				svc = int(float64(svc) * sc.SlowFactor)
				res.SlowSiteDecisions++
			}
			completions = append(completions, completion{
				due: step + svc, site: site, io: io,
			})
		}

		clk.Advance(sc.StepDt)
	}

	res.BreakerOpens = core.BreakerOpens()
	res.SlowProbations = core.SlowProbations()
	res.FinalBreakers = core.Breakers()
	return res, nil
}

// fold mixes one value into a running FNV-1a 64 digest.
func fold(h uint64, v int) uint64 {
	const prime = 0x100000001b3
	if h == 0 {
		h = 0xcbf29ce484222325
	}
	u := uint64(int64(v))
	for i := 0; i < 8; i++ {
		h ^= u & 0xff
		h *= prime
		u >>= 8
	}
	return h
}
