package chaostest

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dqalloc/internal/policy"
	"dqalloc/internal/rng"
	"dqalloc/internal/serve"
)

// chaosConfig is the serve configuration under test: short TTL so
// staleness is actually exercised within a few hundred steps.
func chaosConfig() serve.Config {
	cfg := serve.Default()
	cfg.NumSites = 6
	cfg.Policy = policy.LERT
	cfg.TTL = 100 * time.Millisecond
	cfg.GapFactor = 3
	cfg.OpenFor = 200 * time.Millisecond
	return cfg
}

// baseline is a healthy scenario: reports every 5 steps (50ms of fake
// time) against a 100ms TTL.
func baseline() Scenario {
	return Scenario{
		Steps:            2000,
		StepDt:           10 * time.Millisecond,
		ReportEvery:      5,
		FirstCleanRounds: 2,
		Seed:             42,
	}
}

func TestChaosRunIsDeterministic(t *testing.T) {
	sc := baseline()
	sc.LossProb = 0.3
	sc.MaxDelaySteps = 3
	sc.ChurnPeriod = 20
	sc.ChurnSilence = 10
	a, err := Run(chaosConfig(), sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(chaosConfig(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest || a.Decided != b.Decided || a.BreakerOpens != b.BreakerOpens {
		t.Fatalf("same scenario diverged:\n  %+v\n  %+v", a, b)
	}
}

// TestChaosReportLossAvailability: with 30% report loss and delays, the
// staleness ladder (fresh view → AssumeBusy aging → round-robin
// fallback) must keep availability at or above 99%, and every attempt
// must resolve exactly once.
func TestChaosReportLossAvailability(t *testing.T) {
	sc := baseline()
	sc.LossProb = 0.3
	sc.MaxDelaySteps = 3
	res, err := Run(chaosConfig(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Conserved() {
		t.Fatalf("outcome counts do not conserve: %+v", res)
	}
	if a := res.Availability(); a < 0.99 {
		t.Errorf("availability %.4f under 30%% report loss, want >= 0.99 (%+v)", a, res)
	}
	if res.Decided == 0 {
		t.Error("no policy decisions at all — the table never went fresh")
	}
}

// TestChaosSiteChurn: sites that stop reporting must trip their
// breakers (opens observed) without dragging availability below 99%,
// and once the churn ends and clean reports resume, every breaker must
// return to closed.
func TestChaosSiteChurn(t *testing.T) {
	sc := baseline()
	sc.Steps = 3000
	sc.ChurnPeriod = 15
	sc.ChurnSilence = 10
	res, err := Run(chaosConfig(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Conserved() {
		t.Fatalf("outcome counts do not conserve: %+v", res)
	}
	if res.BreakerOpens == 0 {
		t.Error("churn never tripped a breaker — gap detection is dead")
	}
	if a := res.Availability(); a < 0.99 {
		t.Errorf("availability %.4f under churn, want >= 0.99 (%+v)", a, res)
	}
	// A second, fault-free leg proves recovery: same core semantics,
	// fresh run with no faults must end with every breaker closed.
	calm := baseline()
	calmRes, err := Run(chaosConfig(), calm)
	if err != nil {
		t.Fatal(err)
	}
	for s, st := range calmRes.FinalBreakers {
		if st != "closed" {
			t.Errorf("site %d breaker %q after calm run, want closed", s, st)
		}
	}
}

// TestChaosBlackoutDegradesInOrder: when every report stops, the server
// must degrade through the documented ladder — policy decisions while
// fresh, round-robin fallback while stale-but-within-gap, NoSites once
// the breakers trip — rather than inventing decisions from dead data.
func TestChaosBlackoutDegradesInOrder(t *testing.T) {
	sc := baseline()
	sc.Steps = 400
	sc.FirstCleanRounds = 2
	sc.LossProb = 1.0
	res, err := Run(chaosConfig(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Conserved() {
		t.Fatalf("outcome counts do not conserve: %+v", res)
	}
	if res.Decided == 0 || res.Fallback == 0 || res.NoSites == 0 {
		t.Errorf("blackout should produce all three ladder stages, got %+v", res)
	}
	for s, st := range res.FinalBreakers {
		if st != "open" {
			t.Errorf("site %d breaker %q after blackout, want open", s, st)
		}
	}
}

// TestChaosBrownoutProbation: a site that keeps reporting on schedule
// but runs 10× slow — the gray failure the gap detector can never see —
// must be caught by latency-driven breaking: probation demotions
// observed, less traffic routed to it than with the knob off, and once
// the brownout ends its fast reports must close the breaker again.
func TestChaosBrownoutProbation(t *testing.T) {
	sc := baseline()
	sc.Steps = 3000
	sc.SlowFactor = 10
	sc.SlowSite = 2
	sc.SlowStart = 10
	sc.SlowRounds = 60

	res, err := Run(chaosConfig(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Conserved() {
		t.Fatalf("outcome counts do not conserve: %+v", res)
	}
	if res.SlowProbations == 0 {
		t.Error("brownout never demoted the slow site into probation")
	}
	if a := res.Availability(); a < 0.99 {
		t.Errorf("availability %.4f under brownout, want >= 0.99 (%+v)", a, res)
	}
	for s, st := range res.FinalBreakers {
		if st != "closed" {
			t.Errorf("site %d breaker %q after brownout healed, want closed", s, st)
		}
	}

	// The same brownout with latency breaking disabled: no probations,
	// and at least as much traffic lands on the slow site.
	off := chaosConfig()
	off.SlowLatency = 0
	resOff, err := Run(off, sc)
	if err != nil {
		t.Fatal(err)
	}
	if resOff.SlowProbations != 0 {
		t.Errorf("%d probations with latency breaking disabled", resOff.SlowProbations)
	}
	if res.SlowSiteDecisions > resOff.SlowSiteDecisions {
		t.Errorf("probation routed MORE to the slow site: %d on vs %d off",
			res.SlowSiteDecisions, resOff.SlowSiteDecisions)
	}

	// Determinism holds under brownouts too.
	again, err := Run(chaosConfig(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if again.Digest != res.Digest || again.SlowProbations != res.SlowProbations {
		t.Errorf("brownout scenario diverged: %+v vs %+v", res, again)
	}
}

// TestHTTPChaosSmoke runs the real HTTP server under concurrent chaos —
// lossy reporters, mixed clients including slow ones with hopeless
// deadlines — then drains and asserts the service-level invariants:
// every request accounted exactly once, p99 decision latency bounded,
// and zero goroutine leaks after shutdown.
func TestHTTPChaosSmoke(t *testing.T) {
	before := runtime.NumGoroutine()

	cfg := serve.Default()
	cfg.NumSites = 4
	cfg.Policy = policy.BNQ
	cfg.TTL = 150 * time.Millisecond
	srv, err := serve.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Lossy reporters: each site reports every 30ms, dropping 30%.
	for s := 0; s < cfg.NumSites; s++ {
		wg.Add(1)
		go func(site int) {
			defer wg.Done()
			r := rng.NewStream(uint64(100 + site))
			tick := time.NewTicker(30 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					if r.Bernoulli(0.3) {
						continue
					}
					body := fmt.Sprintf(`{"site":%d,"num_io":%d,"num_cpu":%d}`, site, r.Intn(5), r.Intn(5))
					resp, err := http.Post(ts.URL+"/v1/report", "application/json", strings.NewReader(body))
					if err == nil {
						resp.Body.Close()
					}
				}
			}
		}(s)
	}
	// Give the reporters one period so some views are fresh.
	time.Sleep(60 * time.Millisecond)

	// Clients: 4 workers × 40 requests; every tenth request is a "slow
	// client" carrying a deadline that cannot be met.
	var sent, answered atomic.Int64
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := rng.NewStream(uint64(200 + id))
			for i := 0; i < 40; i++ {
				body := fmt.Sprintf(`{"class":%d,"home":%d}`, r.Intn(2), r.Intn(cfg.NumSites))
				if i%10 == 9 {
					body = fmt.Sprintf(`{"class":%d,"home":%d,"deadline_ms":0.000001}`, r.Intn(2), r.Intn(cfg.NumSites))
				}
				sent.Add(1)
				resp, err := http.Post(ts.URL+"/v1/decide", "application/json", strings.NewReader(body))
				if err != nil {
					continue
				}
				resp.Body.Close()
				answered.Add(1)
				time.Sleep(time.Millisecond)
			}
		}(c)
	}

	// Let the clients finish, then stop the reporters and drain.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	go func() {
		time.Sleep(3 * time.Second)
		select {
		case <-done:
		default:
			close(stop)
		}
	}()
	<-done
	select {
	case <-stop:
	default:
		close(stop)
	}

	st := srv.Stats()
	resolved := st.Decided + st.Fallback + st.NoCapacity + st.Unavailable +
		st.Shed + st.Expired + st.Malformed + st.Draining
	if st.Requests != resolved {
		t.Errorf("exactly-once violated: %d requests, %d resolved (%+v)", st.Requests, resolved, st)
	}
	if got, want := int64(st.Requests), sent.Load(); got != want {
		t.Errorf("server saw %d requests, clients sent %d", got, want)
	}
	if answered.Load() != sent.Load() {
		t.Errorf("transport failures under chaos: %d sent, %d answered", sent.Load(), answered.Load())
	}
	if st.Decided+st.Fallback == 0 {
		t.Error("no requests were routed at all")
	}
	if st.LatencyP99US > 2e6 {
		t.Errorf("p99 decision latency %.0fus unbounded (> 2s)", st.LatencyP99US)
	}
	// Per-outcome latency lanes: every routed request must be accounted
	// in the decided/fallback lanes, and lane counts must match the
	// resolution counters.
	var laneRouted uint64
	for _, name := range []string{"decided", "fallback"} {
		laneRouted += st.LatencyByOutcome[name].Count
	}
	if laneRouted != st.Decided+st.Fallback {
		t.Errorf("latency lanes hold %d routed decisions, counters say %d",
			laneRouted, st.Decided+st.Fallback)
	}
	if q := st.LatencyByOutcome["decided"]; q.Count > 0 && (q.P50US <= 0 || q.P99US < q.P50US) {
		t.Errorf("decided latency quantiles inconsistent: %+v", q)
	}

	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Zero goroutine leaks: everything the server and harness spawned
	// must wind down (AfterFunc timers and HTTP keepalives need a beat).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after drain", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}
