// Package serve turns the paper's allocation procedure into a live
// service: an HTTP/JSON daemon that ingests per-site load reports (the
// wire form of the loadinfo status broadcasts), answers "which site runs
// this query" through the existing policy/Tuning stack, and wraps every
// path in a production robustness stack — per-request deadlines, a
// staleness tracker that ages load-table entries into a degraded
// assume-busy view, per-site circuit breakers, bounded-queue
// backpressure, health/readiness endpoints, and graceful drain.
//
// The simulator remains the offline twin: given identical load tables, a
// serve-mode decision stream is bit-identical to the sim-mode policy's
// selections (see parity_test.go), so policies tuned offline carry over
// unchanged.
//
// Layering (one goroutine owns all mutable decision state):
//
//	HTTP handlers ──queue──▶ decision loop ──▶ Core.Decide
//	      │                                        │
//	      └── reports ──▶ LiveTable / breakers ◀───┘
//
// Handlers decode, validate, and enqueue; the single decision loop runs
// the policy (whose selector state and random streams are deliberately
// not concurrency-safe, exactly like the simulator's) and resolves each
// request exactly once even when it races its deadline.
package serve

import (
	"fmt"
	"math"
	"time"

	"dqalloc/internal/policy"
	"dqalloc/internal/workload"
)

// Config parameterizes the service. The zero value is invalid; start
// from Default.
type Config struct {
	// NumSites is the number of execution sites decisions choose among.
	NumSites int
	// Policy and Tuning select the allocation algorithm and its
	// anti-herd knobs, exactly as in the simulator.
	Policy policy.Kind
	Tuning policy.Tuning
	// Seed drives the service's random streams (RANDOM policy, PowerK
	// sampling, tie-breaking). Decisions are deterministic given the
	// seed and the request/report sequence.
	Seed uint64
	// Classes is the query-class table; decide requests name a class by
	// index and may override its demand estimates.
	Classes []workload.Class
	// NumDisks, DiskTime and MsgTime are the hardware/cost-model
	// parameters the cost functions consult (paper Table 7).
	NumDisks int
	DiskTime float64
	MsgTime  float64

	// TTL is the report freshness horizon: a site whose last report is
	// older than TTL is aged into the degraded assume-busy view.
	TTL time.Duration
	// GapFactor opens a site's circuit breaker after GapFactor×TTL
	// without any report — the site is presumed unreachable, not merely
	// stale. Must be ≥ 1.
	GapFactor float64
	// AssumeBusy is the query count a stale entry reads as, so policies
	// avoid stale sites whenever a fresh alternative exists.
	AssumeBusy int

	// RejectThreshold opens a breaker after this many consecutive
	// reports carrying rejection feedback (Report.Rejected > 0).
	RejectThreshold int
	// OpenFor is the open→half-open cooldown.
	OpenFor time.Duration
	// HalfOpenProbes is how many decisions may be routed to a half-open
	// site before it re-opens (absent a clean report closing it).
	HalfOpenProbes int
	// SlowLatency is the gray-failure threshold: a report whose
	// latency_ms exceeds it marks the site slow-but-reporting, and the
	// site's breaker enters half-open probation instead of closing — a
	// bounded probe trickle keeps testing it while the bulk of traffic
	// routes elsewhere. Zero disables latency-driven breaking.
	SlowLatency time.Duration

	// AdmitMax caps the committed query count per site (0 = unbounded):
	// a decision whose chosen site is at the cap is rejected with 429,
	// the serving analogue of the simulator's admission control.
	AdmitMax int

	// QueueBound bounds the decision queue; requests beyond it are shed
	// immediately with 429 + Retry-After.
	QueueBound int
	// DefaultDeadline applies to decide requests that carry none;
	// MaxDeadline clamps client-supplied deadlines.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration

	// Clock substitutes a time source in tests; nil means time.Now.
	Clock func() time.Time
}

// Default returns a serving configuration mirroring the simulator's
// baseline (system.Default): 6 sites, 2 disks, the 50/50 io/cpu class
// mix, LERT — plus serving-layer defaults tuned for ~100ms report
// periods.
func Default() Config {
	return Config{
		NumSites: 6,
		Policy:   policy.LERT,
		Seed:     1,
		Classes: []workload.Class{
			{Name: "io", PageCPUTime: 0.05, NumReads: 20, MsgLength: 1},
			{Name: "cpu", PageCPUTime: 1.0, NumReads: 20, MsgLength: 1},
		},
		NumDisks: 2,
		DiskTime: 1,
		MsgTime:  1,

		TTL:        time.Second,
		GapFactor:  3,
		AssumeBusy: 1 << 16,

		RejectThreshold: 3,
		OpenFor:         2 * time.Second,
		HalfOpenProbes:  4,
		SlowLatency:     250 * time.Millisecond,

		QueueBound:      1024,
		DefaultDeadline: 50 * time.Millisecond,
		MaxDeadline:     time.Second,
	}
}

// Validate reports the first configuration error, if any.
func (c Config) Validate() error {
	switch {
	case c.NumSites < 1:
		return fmt.Errorf("serve: NumSites %d < 1", c.NumSites)
	case len(c.Classes) == 0:
		return fmt.Errorf("serve: no query classes")
	case c.NumDisks < 1:
		return fmt.Errorf("serve: NumDisks %d < 1", c.NumDisks)
	case c.DiskTime <= 0:
		return fmt.Errorf("serve: DiskTime %v must be positive", c.DiskTime)
	case c.MsgTime < 0:
		return fmt.Errorf("serve: negative MsgTime %v", c.MsgTime)
	case c.TTL <= 0:
		return fmt.Errorf("serve: TTL %v must be positive", c.TTL)
	case math.IsNaN(c.GapFactor) || c.GapFactor < 1:
		return fmt.Errorf("serve: GapFactor %v must be ≥ 1", c.GapFactor)
	case c.AssumeBusy < 1:
		return fmt.Errorf("serve: AssumeBusy %d < 1", c.AssumeBusy)
	case c.RejectThreshold < 1:
		return fmt.Errorf("serve: RejectThreshold %d < 1", c.RejectThreshold)
	case c.OpenFor <= 0:
		return fmt.Errorf("serve: OpenFor %v must be positive", c.OpenFor)
	case c.HalfOpenProbes < 1:
		return fmt.Errorf("serve: HalfOpenProbes %d < 1", c.HalfOpenProbes)
	case c.SlowLatency < 0:
		return fmt.Errorf("serve: negative SlowLatency %v", c.SlowLatency)
	case c.AdmitMax < 0:
		return fmt.Errorf("serve: negative AdmitMax %d", c.AdmitMax)
	case c.QueueBound < 1:
		return fmt.Errorf("serve: QueueBound %d < 1", c.QueueBound)
	case c.DefaultDeadline <= 0:
		return fmt.Errorf("serve: DefaultDeadline %v must be positive", c.DefaultDeadline)
	case c.MaxDeadline < c.DefaultDeadline:
		return fmt.Errorf("serve: MaxDeadline %v below DefaultDeadline %v", c.MaxDeadline, c.DefaultDeadline)
	}
	for _, cl := range c.Classes {
		if err := cl.Validate(); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
	}
	if c.Tuning.Enabled() {
		if err := c.Tuning.Validate(c.NumSites); err != nil {
			return err
		}
		switch c.Policy {
		case policy.BNQ, policy.BNQRD, policy.LERT, policy.Work:
		default:
			return fmt.Errorf("serve: tuning requires a cost-based policy, not %v", c.Policy)
		}
	}
	return nil
}

// gap returns the report gap beyond which a breaker opens.
func (c Config) gap() time.Duration {
	return time.Duration(c.GapFactor * float64(c.TTL))
}

// clock returns the configured time source.
func (c Config) clock() func() time.Time {
	if c.Clock != nil {
		return c.Clock
	}
	return time.Now
}

// classMeans fills zero-valued estimate fields from the class table, the
// same default a cost-based optimizer supplies in the simulator.
func (c Config) classMeans(q *workload.Query) {
	cl := c.Classes[q.Class]
	if q.EstReads == 0 {
		q.EstReads = cl.NumReads
	}
	if q.EstPageCPU == 0 {
		q.EstPageCPU = cl.PageCPUTime
	}
}
