package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dqalloc/internal/policy"
)

// startServer builds a server on a fake clock and wraps it in httptest.
func startServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server, *fakeClock) {
	t.Helper()
	clk := newFakeClock()
	cfg := Default()
	cfg.NumSites = 3
	cfg.Policy = policy.BNQ
	cfg.Clock = clk.Now
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return srv, ts, clk
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func sendReport(t *testing.T, url string, site, numIO, numCPU, rejected int) {
	t.Helper()
	body := fmt.Sprintf(`{"site":%d,"num_io":%d,"num_cpu":%d,"rejected":%d}`, site, numIO, numCPU, rejected)
	resp, out := postJSON(t, url+"/v1/report", body)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("report: status %d: %s", resp.StatusCode, out)
	}
}

func TestServerDecideLifecycle(t *testing.T) {
	srv, ts, _ := startServer(t, nil)

	// healthz is alive before any report; readyz is not.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz before reports: %v %v, want 503", resp.StatusCode, err)
	}
	resp.Body.Close()

	// No reports yet: decisions are 503.
	resp, _ = postJSON(t, ts.URL+"/v1/decide", `{"class":0,"home":0}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("decide without reports: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}

	for s := 0; s < 3; s++ {
		sendReport(t, ts.URL, s, 0, 0, 0)
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz after reports: %v %v, want 200", resp.StatusCode, err)
	}
	resp.Body.Close()

	resp, body := postJSON(t, ts.URL+"/v1/decide", `{"class":1,"home":2,"est_reads":10}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decide: status %d: %s", resp.StatusCode, body)
	}
	var dr DecideResponse
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatalf("decide response does not parse: %v", err)
	}
	if dr.Site < 0 || dr.Site >= 3 || dr.Mode != "policy" || dr.Policy != "BNQ" {
		t.Errorf("decide response = %+v", dr)
	}

	st := srv.Stats()
	if st.Requests != 2 || st.Decided != 1 || st.Unavailable != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Reports != 3 {
		t.Errorf("reports = %d, want 3", st.Reports)
	}
	if st.LatencyP99US <= 0 {
		t.Errorf("latency p99 = %v, want > 0", st.LatencyP99US)
	}
}

func TestServerRejectsMalformedRequests(t *testing.T) {
	srv, ts, _ := startServer(t, nil)
	cases := []string{
		``,
		`{`,
		`[]`,
		`{"class":99,"home":0}`,
		`{"class":0,"home":-1}`,
		`{"class":0,"home":0,"est_reads":-5}`,
		`{"class":0,"home":0,"deadline_ms":1e13}`,
		`{"class":0,"home":0,"bogus":1}`,
		`{"class":0,"home":0} trailing`,
	}
	for _, body := range cases {
		resp, out := postJSON(t, ts.URL+"/v1/decide", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("decide %q: status %d (%s), want 400", body, resp.StatusCode, out)
		}
	}
	badReports := []string{
		`{"site":3,"num_io":0,"num_cpu":0}`,
		`{"site":0,"num_io":-1,"num_cpu":0}`,
		`{"site":0,"num_io":0,"num_cpu":0,"cpu_work":-1}`,
		`not json`,
	}
	for _, body := range badReports {
		resp, out := postJSON(t, ts.URL+"/v1/report", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("report %q: status %d (%s), want 400", body, resp.StatusCode, out)
		}
	}
	st := srv.Stats()
	if int(st.Malformed) != len(cases) {
		t.Errorf("malformed = %d, want %d", st.Malformed, len(cases))
	}
	if int(st.BadReports) != len(badReports) {
		t.Errorf("bad reports = %d, want %d", st.BadReports, len(badReports))
	}
	// Method misuse.
	resp, err := http.Get(ts.URL + "/v1/decide")
	if err != nil || resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET decide: %v %v, want 405", resp.StatusCode, err)
	}
	resp.Body.Close()
}

func TestServerDeadlineExpiresRequest(t *testing.T) {
	srv, ts, _ := startServer(t, nil)
	for s := 0; s < 3; s++ {
		sendReport(t, ts.URL, s, 0, 0, 0)
	}
	// A deadline far below the scheduling quantum expires before the
	// decision loop can claim the request.
	resp, body := postJSON(t, ts.URL+"/v1/decide", `{"class":0,"home":0,"deadline_ms":0.000001}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("tiny deadline: status %d (%s), want 504", resp.StatusCode, body)
	}
	st := srv.Stats()
	if st.Expired != 1 {
		t.Errorf("expired = %d, want 1", st.Expired)
	}
}

// TestServerBackpressureSheds exercises the queue-full path with a
// hand-built server whose decision loop never runs.
func TestServerBackpressureSheds(t *testing.T) {
	cfg := Default()
	cfg.NumSites = 3
	cfg.Policy = policy.BNQ
	cfg.QueueBound = 1
	cfg.DefaultDeadline = 30 * time.Millisecond
	core, err := NewCore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := &Server{
		cfg:      cfg,
		core:     core,
		clock:    time.Now,
		queue:    make(chan *decideReq, cfg.QueueBound),
		loopDone: make(chan struct{}),
	}
	s.initLatencyHists()
	// First request occupies the only queue slot and times out there.
	first := make(chan int, 1)
	go func() {
		rec := httptest.NewRecorder()
		s.handleDecide(rec, httptest.NewRequest(http.MethodPost, "/v1/decide",
			strings.NewReader(`{"class":0,"home":0}`)))
		first <- rec.Code
	}()
	deadline := time.Now().Add(time.Second)
	for len(s.queue) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never enqueued")
		}
		time.Sleep(time.Millisecond)
	}
	// Second request finds the queue full: shed immediately.
	rec := httptest.NewRecorder()
	s.handleDecide(rec, httptest.NewRequest(http.MethodPost, "/v1/decide",
		strings.NewReader(`{"class":0,"home":0}`)))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("queue-full decide: status %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if code := <-first; code != http.StatusGatewayTimeout {
		t.Fatalf("queued request: status %d, want 504", code)
	}
	st := s.Stats()
	if st.Shed != 1 || st.Expired != 1 || st.Requests != 2 {
		t.Errorf("stats = %+v", st)
	}
}

// TestServerHandlerDoesNotHangWhenLoopExpiresRequest pins the loss side
// of the expiry race: when the decision loop dequeues a request whose
// context is already dead, it claims it as expired without ever sending
// on req.done — the waiting handler must answer 504, not block forever
// on the channel.
func TestServerHandlerDoesNotHangWhenLoopExpiresRequest(t *testing.T) {
	cfg := Default()
	cfg.NumSites = 3
	cfg.Policy = policy.BNQ
	// Long deadlines so only the test's cancel wakes the handler.
	cfg.DefaultDeadline = 5 * time.Second
	cfg.MaxDeadline = 5 * time.Second
	core, err := NewCore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := &Server{
		cfg:      cfg,
		core:     core,
		clock:    time.Now,
		queue:    make(chan *decideReq, cfg.QueueBound),
		loopDone: make(chan struct{}),
	}
	s.initLatencyHists()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r := httptest.NewRequest(http.MethodPost, "/v1/decide",
		strings.NewReader(`{"class":0,"home":0}`)).WithContext(ctx)
	code := make(chan int, 1)
	go func() {
		rec := httptest.NewRecorder()
		s.handleDecide(rec, r)
		code <- rec.Code
	}()
	// Play the loop's expired branch: claim the queued request as
	// expired, never sending a result.
	var req *decideReq
	select {
	case req = <-s.queue:
	case <-time.After(2 * time.Second):
		t.Fatal("request never enqueued")
	}
	if !req.resolved.CompareAndSwap(resolvePending, resolveExpired) {
		t.Fatal("request resolved before the test claimed it")
	}
	cancel()
	select {
	case c := <-code:
		if c != http.StatusGatewayTimeout {
			t.Fatalf("handler status %d, want 504", c)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("handler hung after losing the expiry race to the loop")
	}
}

// TestServerShutdownEnqueueRaceIsSafe hammers handlers against Shutdown:
// a handler that passes the draining check just before the queue closes
// must get a clean drain refusal, never a send on a closed channel.
func TestServerShutdownEnqueueRaceIsSafe(t *testing.T) {
	for i := 0; i < 25; i++ {
		cfg := Default()
		cfg.NumSites = 2
		cfg.Policy = policy.BNQ
		srv, err := NewServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		start := make(chan struct{})
		for c := 0; c < 4; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for k := 0; k < 20; k++ {
					rec := httptest.NewRecorder()
					srv.handleDecide(rec, httptest.NewRequest(http.MethodPost, "/v1/decide",
						strings.NewReader(`{"class":0,"home":0}`)))
					switch rec.Code {
					case http.StatusOK, http.StatusServiceUnavailable,
						http.StatusTooManyRequests, http.StatusGatewayTimeout:
					default:
						t.Errorf("unexpected status %d", rec.Code)
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if err := srv.Close(); err != nil {
				t.Error(err)
			}
		}()
		close(start)
		wg.Wait()
	}
}

func TestServerDrainAndShutdown(t *testing.T) {
	srv, ts, _ := startServer(t, nil)
	for s := 0; s < 3; s++ {
		sendReport(t, ts.URL, s, 0, 0, 0)
	}
	srv.BeginDrain()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz draining: %v %v, want 503", resp.StatusCode, err)
	}
	resp.Body.Close()
	resp, _ = postJSON(t, ts.URL+"/v1/decide", `{"class":0,"home":0}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("decide while draining: status %d, want 503", resp.StatusCode)
	}
	st := srv.Stats()
	if st.Draining != 1 {
		t.Errorf("draining = %d, want 1", st.Draining)
	}
	// Shutdown is idempotent and leaves the loop stopped.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-srv.loopDone:
	default:
		t.Error("decision loop still running after Shutdown")
	}
}

// TestServerStatsConservation drives a mixed request stream and checks
// the resolution counters account for every request exactly once.
func TestServerStatsConservation(t *testing.T) {
	srv, ts, _ := startServer(t, nil)
	for s := 0; s < 3; s++ {
		sendReport(t, ts.URL, s, 0, 0, 0)
	}
	for i := 0; i < 20; i++ {
		resp, _ := postJSON(t, ts.URL+"/v1/decide", fmt.Sprintf(`{"class":%d,"home":%d}`, i%2, i%3))
		resp.Body.Close()
	}
	postJSON(t, ts.URL+"/v1/decide", `malformed`)
	postJSON(t, ts.URL+"/v1/decide", `{"class":0,"home":0,"deadline_ms":0.000001}`)
	st := srv.Stats()
	resolved := st.Decided + st.Fallback + st.NoCapacity + st.Unavailable +
		st.Shed + st.Expired + st.Malformed + st.Draining
	if st.Requests != resolved {
		t.Errorf("conservation violated: %d requests, %d resolved (%+v)", st.Requests, resolved, st)
	}
	if st.Requests != 22 {
		t.Errorf("requests = %d, want 22", st.Requests)
	}
}
