package serve

import (
	"fmt"
	"time"

	"dqalloc/internal/policy"
	"dqalloc/internal/rng"
	"dqalloc/internal/workload"
)

// Outcome classifies one decision request's fate. Every request resolves
// to exactly one outcome; the chaos harness asserts the counts conserve.
type Outcome uint8

const (
	// OutcomeDecided means the policy chose a site from a (partially)
	// fresh view.
	OutcomeDecided Outcome = iota
	// OutcomeFallback means every routable site's view had expired, so
	// the site was chosen round-robin — degraded but available.
	OutcomeFallback
	// OutcomeNoCapacity means the chosen site was at the AdmitMax cap;
	// the client should back off and retry.
	OutcomeNoCapacity
	// OutcomeNoSites means every site's breaker refused routing.
	OutcomeNoSites
)

// String names the outcome for stats and logs.
func (o Outcome) String() string {
	switch o {
	case OutcomeDecided:
		return "decided"
	case OutcomeFallback:
		return "fallback"
	case OutcomeNoCapacity:
		return "no-capacity"
	case OutcomeNoSites:
		return "no-sites"
	default:
		return "unknown"
	}
}

// Core is the single-threaded decision engine: the policy stack from the
// simulator wired to the live table and breakers. Exactly one goroutine
// may call Decide (the policy selector's cursor state and random streams
// are not concurrency-safe, by design — determinism needs a serial
// decision order); Table ingestion and breaker report feedback are safe
// from other goroutines.
//
// Random streams: the root stream is rng.NewStream(cfg.Seed) and the
// policy consumes root.Child(1) — parity tests reconstruct the sim-mode
// policy from the same derivation.
type Core struct {
	cfg      Config
	table    *LiveTable
	breakers *breakerSet
	pol      policy.Policy
	env      policy.Env
	up       []bool
	rr       int
}

// NewCore builds a decision engine from cfg.
func NewCore(cfg Config) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := rng.NewStream(cfg.Seed)
	var pol policy.Policy
	var err error
	if cfg.Tuning.Enabled() {
		pol, err = policy.NewTuned(cfg.Policy, cfg.NumSites, cfg.Tuning, root.Child(1))
	} else {
		pol, err = policy.New(cfg.Policy, cfg.NumSites, root.Child(1))
	}
	if err != nil {
		return nil, err
	}
	c := &Core{
		cfg:      cfg,
		table:    NewLiveTable(cfg.NumSites, cfg.TTL, cfg.AssumeBusy),
		breakers: newBreakerSet(cfg.NumSites, cfg),
		pol:      pol,
		up:       make([]bool, cfg.NumSites),
	}
	c.env = policy.Env{
		View:     c.table,
		NumSites: cfg.NumSites,
		NumDisks: cfg.NumDisks,
		DiskTime: cfg.DiskTime,
		NetTime: func(q *workload.Query, from, to int) float64 {
			if from == to {
				return 0
			}
			// Query shipped out plus results shipped back, the
			// simulator's cost model (system.New).
			return 2 * cfg.MsgTime * cfg.Classes[q.Class].MsgLength
		},
		Up: c.up,
	}
	return c, nil
}

// Table returns the live load table (for report ingestion).
func (c *Core) Table() *LiveTable { return c.table }

// Policy returns the configured policy's name.
func (c *Core) Policy() string { return c.pol.Name() }

// Breakers exposes breaker state names for the stats endpoint.
func (c *Core) Breakers() []string { return c.breakers.States() }

// BreakerOpens returns the cumulative count of breaker open transitions.
func (c *Core) BreakerOpens() uint64 { return c.breakers.Opens() }

// SlowProbations returns how many times latency feedback demoted a
// closed breaker into half-open probation (gray-failure detections).
func (c *Core) SlowProbations() uint64 { return c.breakers.SlowTrips() }

// Ready reports whether at least one site is currently routable.
func (c *Core) Ready(now time.Time) bool { return c.breakers.AnyRoutable(now) }

// Report ingests one site's load report: table entry, freshness stamp,
// and breaker feedback (rejections and observed latency). Safe for
// concurrent use. latencyMS zero means "not measured".
func (c *Core) Report(site, numIO, numCPU int, cpuWork, ioWork float64, rejected int, latencyMS float64, now time.Time) error {
	if site < 0 || site >= c.cfg.NumSites {
		return fmt.Errorf("serve: site %d out of range [0,%d)", site, c.cfg.NumSites)
	}
	c.table.Ingest(site, numIO, numCPU, cpuWork, ioWork, now)
	c.breakers.OnReport(site, rejected, latencyMS, now)
	return nil
}

// Decide chooses the execution site for q at time now. Only the decision
// loop may call it. The returned site is policy.NoSite unless the
// outcome is OutcomeDecided or OutcomeFallback.
func (c *Core) Decide(q *workload.Query, now time.Time) (int, Outcome) {
	c.table.BeginDecision(now)
	anyUp, anyFresh := false, false
	for s := 0; s < c.cfg.NumSites; s++ {
		c.up[s] = c.breakers.CanRoute(s, now)
		if c.up[s] {
			anyUp = true
			if c.table.Fresh(s) {
				anyFresh = true
			}
		}
	}
	if !anyUp {
		return policy.NoSite, OutcomeNoSites
	}
	if !anyFresh {
		// Every surviving view has expired: the table would read
		// AssumeBusy everywhere, so pretending to cost sites is theater.
		// Degrade honestly to round-robin over the routable sites. The
		// admission cap still binds — Committed ignores staleness, so a
		// staleness episode must not drive sites past AdmitMax.
		for i := 0; i < c.cfg.NumSites; i++ {
			s := (c.rr + i) % c.cfg.NumSites
			if !c.up[s] {
				continue
			}
			if c.cfg.AdmitMax > 0 && c.table.Committed(s) >= c.cfg.AdmitMax {
				continue
			}
			c.rr = (s + 1) % c.cfg.NumSites
			c.commit(q, s, now)
			return s, OutcomeFallback
		}
		// anyUp held, so some site was routable: they were all capped.
		return policy.NoSite, OutcomeNoCapacity
	}
	s := c.pol.Select(q, q.Home, &c.env)
	if s == policy.NoSite {
		return policy.NoSite, OutcomeNoSites
	}
	if c.cfg.AdmitMax > 0 && c.table.Committed(s) >= c.cfg.AdmitMax {
		return policy.NoSite, OutcomeNoCapacity
	}
	c.commit(q, s, now)
	return s, OutcomeDecided
}

// commit records the decision in the live table (optimistic commitment
// semantics) and consumes a half-open probe if the site was probing.
func (c *Core) commit(q *workload.Query, site int, now time.Time) {
	bound := policy.QueryBound(q, c.cfg.DiskTime, c.cfg.NumDisks)
	c.table.NoteAssign(site, bound, q.EstCPUDemand(), q.EstDiskDemand(c.cfg.DiskTime))
	c.breakers.RoutedProbe(site, now)
}
