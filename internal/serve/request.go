package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// maxBodyBytes bounds request bodies; both wire types fit in a fraction
// of this.
const maxBodyBytes = 1 << 16

// absurd is the upper bound on demand-estimate fields: a query claiming
// more is a client bug (or an attack), not a workload, and is rejected
// with 400 rather than fed to the cost functions.
const absurd = 1e12

// DecideRequest is the wire form of "which site runs this query".
type DecideRequest struct {
	// Class indexes the configured class table.
	Class int `json:"class"`
	// Home is the site whose client submits the query (the arrival site
	// of the paper's procedure).
	Home int `json:"home"`
	// EstReads and EstPageCPU override the class-mean demand estimates;
	// zero means "use the class mean", matching the simulator's
	// cost-based-optimizer default.
	EstReads   float64 `json:"est_reads,omitempty"`
	EstPageCPU float64 `json:"est_page_cpu,omitempty"`
	// DeadlineMS caps how long the client will wait for the decision;
	// zero means the server default. Clamped to the server maximum.
	DeadlineMS float64 `json:"deadline_ms,omitempty"`
}

// DecideResponse answers a successful decision.
type DecideResponse struct {
	// Site is the chosen execution site.
	Site int `json:"site"`
	// Mode is "policy" for a normal decision, "fallback" for the
	// all-views-expired round-robin path.
	Mode string `json:"mode"`
	// Policy names the deciding policy.
	Policy string `json:"policy"`
}

// ReportRequest is the wire form of one site's load report — the live
// analogue of a loadinfo status broadcast.
type ReportRequest struct {
	// Site identifies the reporting site.
	Site int `json:"site"`
	// NumIO and NumCPU are the site's current query counts by bound.
	NumIO  int `json:"num_io"`
	NumCPU int `json:"num_cpu"`
	// CPUWork and IOWork are the outstanding estimated demands (for the
	// WORK policy; zero is fine for count-based policies).
	CPUWork float64 `json:"cpu_work,omitempty"`
	IOWork  float64 `json:"io_work,omitempty"`
	// Rejected is how many queries the site refused since its last
	// report — the rejection feedback that trips circuit breakers.
	Rejected int `json:"rejected,omitempty"`
	// LatencyMS is the site's recent mean query latency in milliseconds;
	// a value above the server's SlowLatency threshold marks the site
	// slow-but-reporting (gray failure) and moves its breaker into
	// half-open probation instead of closing it. Zero means "not
	// measured" and never trips anything.
	LatencyMS float64 `json:"latency_ms,omitempty"`
}

// errorResponse is the JSON error envelope.
type errorResponse struct {
	Error string `json:"error"`
}

// decodeStrict unmarshals a JSON object into v rejecting non-objects
// (null would silently zero-fill), unknown fields, and trailing garbage.
func decodeStrict(data []byte, v any) error {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) == 0 || trimmed[0] != '{' {
		return fmt.Errorf("expected a JSON object")
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if _, err := dec.Token(); err != io.EOF {
		return fmt.Errorf("trailing data after JSON value")
	}
	return nil
}

// finiteNonNeg rejects NaN, infinities, negatives, and absurd values.
func finiteNonNeg(name string, v float64) error {
	switch {
	case math.IsNaN(v) || math.IsInf(v, 0):
		return fmt.Errorf("%s must be finite", name)
	case v < 0:
		return fmt.Errorf("%s %v is negative", name, v)
	case v > absurd:
		return fmt.Errorf("%s %v exceeds %v", name, v, absurd)
	}
	return nil
}

// DecodeDecideRequest parses and validates a decide request body for a
// service with the given class and site counts. Every error maps to a
// 4xx response; no input may panic (fuzz-tested).
func DecodeDecideRequest(data []byte, numClasses, numSites int) (DecideRequest, error) {
	var req DecideRequest
	if err := decodeStrict(data, &req); err != nil {
		return DecideRequest{}, fmt.Errorf("malformed decide request: %w", err)
	}
	switch {
	case req.Class < 0 || req.Class >= numClasses:
		return DecideRequest{}, fmt.Errorf("class %d out of range [0,%d)", req.Class, numClasses)
	case req.Home < 0 || req.Home >= numSites:
		return DecideRequest{}, fmt.Errorf("home %d out of range [0,%d)", req.Home, numSites)
	}
	if err := finiteNonNeg("est_reads", req.EstReads); err != nil {
		return DecideRequest{}, err
	}
	if err := finiteNonNeg("est_page_cpu", req.EstPageCPU); err != nil {
		return DecideRequest{}, err
	}
	if err := finiteNonNeg("deadline_ms", req.DeadlineMS); err != nil {
		return DecideRequest{}, err
	}
	return req, nil
}

// DecodeReportRequest parses and validates a load-report body.
func DecodeReportRequest(data []byte, numSites int) (ReportRequest, error) {
	var rep ReportRequest
	if err := decodeStrict(data, &rep); err != nil {
		return ReportRequest{}, fmt.Errorf("malformed report: %w", err)
	}
	switch {
	case rep.Site < 0 || rep.Site >= numSites:
		return ReportRequest{}, fmt.Errorf("site %d out of range [0,%d)", rep.Site, numSites)
	case rep.NumIO < 0:
		return ReportRequest{}, fmt.Errorf("num_io %d is negative", rep.NumIO)
	case rep.NumCPU < 0:
		return ReportRequest{}, fmt.Errorf("num_cpu %d is negative", rep.NumCPU)
	case rep.Rejected < 0:
		return ReportRequest{}, fmt.Errorf("rejected %d is negative", rep.Rejected)
	}
	if err := finiteNonNeg("cpu_work", rep.CPUWork); err != nil {
		return ReportRequest{}, err
	}
	if err := finiteNonNeg("io_work", rep.IOWork); err != nil {
		return ReportRequest{}, err
	}
	if err := finiteNonNeg("latency_ms", rep.LatencyMS); err != nil {
		return ReportRequest{}, err
	}
	return rep, nil
}
