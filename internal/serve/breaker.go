package serve

import (
	"sync"
	"time"
)

// BreakerState is one site's circuit-breaker state.
type BreakerState uint8

const (
	// BreakerClosed routes normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen routes nothing: the site is presumed unreachable
	// (report gap) or overloaded (rejection feedback).
	BreakerOpen
	// BreakerHalfOpen routes a bounded number of probe decisions while
	// waiting for a clean report to confirm recovery.
	BreakerHalfOpen
)

// String returns the conventional state name.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// breakerSet holds one circuit breaker per site. Two signals drive the
// state machine:
//
//   - Report gaps. A site silent for longer than GapFactor×TTL trips to
//     open lazily, at the next routability check. A never-reported site
//     starts open: it has not yet proven it exists.
//   - Rejection feedback. RejectThreshold consecutive reports carrying
//     Rejected > 0 trip to open; the site is alive but shedding, so
//     routing more work there only feeds the overload.
//   - Latency feedback. A report carrying LatencyMS above the SlowLatency
//     threshold marks the site slow-but-reporting — a gray failure the
//     gap detector can never see, because the site keeps talking. Such a
//     report does NOT close the breaker: a closed breaker demotes to
//     half-open probation, and a half-open one has its probe budget
//     refreshed, so the slow site receives a bounded probe trickle while
//     the bulk of traffic routes around it until a fast report closes it.
//
// open → half-open after the OpenFor cooldown; half-open admits up to
// HalfOpenProbes routed decisions, then re-opens (restarting the
// cooldown) unless a clean report (Rejected == 0 and latency under the
// threshold) arrives, which closes the breaker from any state.
//
// OnReport is called from handler goroutines and CanRoute/RoutedProbe
// from the decision loop; one mutex guards the set.
type breakerSet struct {
	mu        sync.Mutex
	gap       time.Duration
	openFor   time.Duration
	threshold int
	probes    int
	slowMS    float64 // SlowLatency in milliseconds; 0 disables

	state      []BreakerState
	openedAt   []time.Time
	rejects    []int
	probesLeft []int
	last       []time.Time
	opens      uint64
	slowTrips  uint64
}

func newBreakerSet(numSites int, cfg Config) *breakerSet {
	return &breakerSet{
		gap:        cfg.gap(),
		openFor:    cfg.OpenFor,
		threshold:  cfg.RejectThreshold,
		probes:     cfg.HalfOpenProbes,
		slowMS:     float64(cfg.SlowLatency) / float64(time.Millisecond),
		state:      make([]BreakerState, numSites),
		openedAt:   make([]time.Time, numSites),
		rejects:    make([]int, numSites),
		probesLeft: make([]int, numSites),
		last:       make([]time.Time, numSites),
	}
}

// toOpen trips site's breaker. Caller holds mu.
func (b *breakerSet) toOpen(site int, now time.Time) {
	b.state[site] = BreakerOpen
	b.openedAt[site] = now
	b.rejects[site] = 0
	b.opens++
}

// OnReport feeds one report's liveness, rejection, and latency feedback
// into site's breaker.
func (b *breakerSet) OnReport(site, rejected int, latencyMS float64, now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.last[site] = now
	if rejected > 0 {
		b.rejects[site]++
		switch b.state[site] {
		case BreakerHalfOpen:
			b.toOpen(site, now) // the probe load was rejected too
		case BreakerOpen:
			b.openedAt[site] = now // still failing; restart the cooldown
		case BreakerClosed:
			if b.rejects[site] >= b.threshold {
				b.toOpen(site, now)
			}
		}
		return
	}
	b.rejects[site] = 0
	if b.slowMS > 0 && latencyMS > b.slowMS {
		// Slow-but-reporting: the site is alive (the gap detector stays
		// quiet) yet degraded. Probation, not closure: a closed breaker
		// demotes to half-open, a half-open one gets a fresh probe
		// budget, and an open one keeps its cooldown.
		switch b.state[site] {
		case BreakerClosed:
			b.state[site] = BreakerHalfOpen
			b.probesLeft[site] = b.probes
			b.slowTrips++
		case BreakerHalfOpen:
			b.probesLeft[site] = b.probes
		}
		return
	}
	b.state[site] = BreakerClosed // a clean report closes from any state
}

// CanRoute reports whether a decision may consider site, advancing the
// state machine lazily: silent sites trip open, cooled-down breakers
// move to half-open with a fresh probe budget.
func (b *breakerSet) CanRoute(site int, now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state[site] != BreakerOpen &&
		(b.last[site].IsZero() || now.Sub(b.last[site]) > b.gap) {
		b.toOpen(site, now)
	}
	switch b.state[site] {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now.Sub(b.openedAt[site]) < b.openFor {
			return false
		}
		// Cooldown over, but a site silent past the gap stays open: a
		// probe routed to a site that has not spoken at all is wasted.
		if b.last[site].IsZero() || now.Sub(b.last[site]) > b.gap {
			b.openedAt[site] = now
			return false
		}
		b.state[site] = BreakerHalfOpen
		b.probesLeft[site] = b.probes
		return true
	default: // half-open
		return b.probesLeft[site] > 0
	}
}

// RoutedProbe consumes one half-open probe after a decision actually
// routed to site; exhausting the budget without a clean report re-opens.
func (b *breakerSet) RoutedProbe(site int, now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state[site] != BreakerHalfOpen {
		return
	}
	b.probesLeft[site]--
	if b.probesLeft[site] <= 0 {
		b.toOpen(site, now)
	}
}

// States snapshots every breaker's state name, for the stats endpoint.
func (b *breakerSet) States() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, len(b.state))
	for i, s := range b.state {
		out[i] = s.String()
	}
	return out
}

// Opens returns the total number of open transitions since start.
func (b *breakerSet) Opens() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

// SlowTrips returns how many closed→half-open probation demotions
// latency feedback has caused since start.
func (b *breakerSet) SlowTrips() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.slowTrips
}

// AnyRoutable reports whether any site would pass CanRoute, without
// consuming probes or mutating state beyond the lazy gap check.
func (b *breakerSet) AnyRoutable(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	for site := range b.state {
		switch b.state[site] {
		case BreakerClosed:
			if !b.last[site].IsZero() && now.Sub(b.last[site]) <= b.gap {
				return true
			}
		case BreakerHalfOpen:
			if b.probesLeft[site] > 0 {
				return true
			}
		case BreakerOpen:
			if now.Sub(b.openedAt[site]) >= b.openFor &&
				!b.last[site].IsZero() && now.Sub(b.last[site]) <= b.gap {
				return true
			}
		}
	}
	return false
}
