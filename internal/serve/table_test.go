package serve

import (
	"testing"
	"time"

	"dqalloc/internal/workload"
)

func TestLiveTableFreshAndAged(t *testing.T) {
	clk := newFakeClock()
	lt := NewLiveTable(3, time.Second, 500)

	lt.Ingest(0, 2, 3, 10, 20, clk.Now())
	lt.BeginDecision(clk.Now())
	if !lt.Fresh(0) {
		t.Fatal("just-ingested entry reads stale")
	}
	if got := lt.NumQueries(0); got != 5 {
		t.Errorf("NumQueries(0) = %d, want 5", got)
	}
	if got := lt.NumIOQueries(0); got != 2 {
		t.Errorf("NumIOQueries(0) = %d, want 2", got)
	}
	if got := lt.CPUWork(0); got != 10 {
		t.Errorf("CPUWork(0) = %v, want 10", got)
	}

	// Site 1 never reported: stale from the start, assume-busy view.
	if lt.Fresh(1) {
		t.Error("never-reported entry reads fresh")
	}
	if got := lt.NumQueries(1); got != 500 {
		t.Errorf("stale NumQueries = %d, want assume-busy 500", got)
	}
	if got := lt.IOWork(1); got != 500 {
		t.Errorf("stale IOWork = %v, want 500", got)
	}

	// Past the TTL the fresh entry ages into the same degraded view.
	clk.Advance(1001 * time.Millisecond)
	lt.BeginDecision(clk.Now())
	if lt.Fresh(0) {
		t.Error("entry older than TTL reads fresh")
	}
	if got := lt.NumQueries(0); got != 500 {
		t.Errorf("aged NumQueries = %d, want 500", got)
	}
}

func TestLiveTableOptimisticDeltas(t *testing.T) {
	clk := newFakeClock()
	lt := NewLiveTable(2, time.Second, 99)
	lt.Ingest(0, 1, 1, 5, 5, clk.Now())
	lt.BeginDecision(clk.Now())

	lt.NoteAssign(0, workload.IOBound, 2, 4)
	lt.NoteAssign(0, workload.CPUBound, 8, 1)
	if got := lt.NumQueries(0); got != 4 {
		t.Errorf("NumQueries with deltas = %d, want 4", got)
	}
	if got := lt.NumIOQueries(0); got != 2 {
		t.Errorf("NumIOQueries with delta = %d, want 2", got)
	}
	if got := lt.CPUWork(0); got != 15 {
		t.Errorf("CPUWork with deltas = %v, want 15", got)
	}
	if got := lt.Committed(0); got != 4 {
		t.Errorf("Committed = %d, want 4", got)
	}

	// The next report is authoritative: deltas cleared, not stacked.
	lt.Ingest(0, 2, 2, 6, 6, clk.Now())
	if got := lt.NumQueries(0); got != 4 {
		t.Errorf("NumQueries after re-report = %d, want 4 (reported only)", got)
	}
	if got := lt.CPUWork(0); got != 6 {
		t.Errorf("CPUWork after re-report = %v, want 6", got)
	}

	// Committed ignores staleness so the admission cap still binds.
	clk.Advance(2 * time.Second)
	lt.BeginDecision(clk.Now())
	if got := lt.Committed(0); got != 4 {
		t.Errorf("stale Committed = %d, want 4", got)
	}
	if got := lt.NumQueries(0); got != 99 {
		t.Errorf("stale NumQueries = %d, want 99", got)
	}
}
