package serve

import (
	"testing"
	"time"
)

// breakerConfig returns a config with round numbers for the breaker
// tests: TTL 100ms, gap 300ms, cooldown 500ms, 2 probes, threshold 3.
func breakerConfig() Config {
	cfg := Default()
	cfg.TTL = 100 * time.Millisecond
	cfg.GapFactor = 3
	cfg.OpenFor = 500 * time.Millisecond
	cfg.HalfOpenProbes = 2
	cfg.RejectThreshold = 3
	return cfg
}

func TestBreakerStartsOpenUntilFirstReport(t *testing.T) {
	clk := newFakeClock()
	b := newBreakerSet(2, breakerConfig())
	if b.CanRoute(0, clk.Now()) {
		t.Fatal("never-reported site routable")
	}
	if b.AnyRoutable(clk.Now()) {
		t.Fatal("AnyRoutable true with no reports")
	}
	b.OnReport(0, 0, 0, clk.Now())
	if !b.CanRoute(0, clk.Now()) {
		t.Fatal("reported site not routable")
	}
	if !b.AnyRoutable(clk.Now()) {
		t.Fatal("AnyRoutable false after a clean report")
	}
}

func TestBreakerGapOpensThenHalfOpenProbes(t *testing.T) {
	clk := newFakeClock()
	cfg := breakerConfig()
	b := newBreakerSet(1, cfg)
	b.OnReport(0, 0, 0, clk.Now())

	// Within the gap: routable.
	clk.Advance(250 * time.Millisecond)
	if !b.CanRoute(0, clk.Now()) {
		t.Fatal("site inside gap not routable")
	}
	// Past the gap: trips open.
	clk.Advance(100 * time.Millisecond) // 350ms since report > 300ms gap
	if b.CanRoute(0, clk.Now()) {
		t.Fatal("silent site routable past the gap")
	}
	if got := b.Opens(); got != 1 {
		t.Fatalf("opens = %d, want 1", got)
	}

	// The site resumes reporting but the breaker is cooling down.
	b.OnReport(0, 0, 0, clk.Now())
	// A clean report closes immediately — recovery needs no cooldown.
	if !b.CanRoute(0, clk.Now()) {
		t.Fatal("clean report did not close the breaker")
	}
}

func TestBreakerRejectFeedbackAndProbeBudget(t *testing.T) {
	clk := newFakeClock()
	cfg := breakerConfig()
	b := newBreakerSet(1, cfg)
	b.OnReport(0, 0, 0, clk.Now())

	// Two rejecting reports: still closed (threshold 3).
	b.OnReport(0, 5, 0, clk.Now())
	b.OnReport(0, 2, 0, clk.Now())
	if !b.CanRoute(0, clk.Now()) {
		t.Fatal("breaker opened below the reject threshold")
	}
	// Third consecutive rejection: open.
	b.OnReport(0, 1, 0, clk.Now())
	if b.CanRoute(0, clk.Now()) {
		t.Fatal("breaker closed after threshold rejections")
	}

	// Cooldown elapses; reports keep arriving (still rejecting would
	// restart the cooldown, so send none and rely on the last stamp).
	clk.Advance(cfg.OpenFor)
	b.OnReport(0, 1, 0, clk.Now()) // still rejecting: cooldown restarts
	if b.CanRoute(0, clk.Now()) {
		t.Fatal("rejecting site routable after cooldown restart")
	}
	clk.Advance(cfg.OpenFor)
	b.OnReport(0, 1, 0, clk.Now())
	clk.Advance(cfg.OpenFor - 50*time.Millisecond)
	// Keep the report stamp fresh enough to pass the gap check but keep
	// the rejection count out of it (a clean report would close).
	if b.CanRoute(0, clk.Now()) {
		t.Fatal("breaker half-opened before cooldown elapsed")
	}
	clk.Advance(60 * time.Millisecond)
	// Gap: last report was OpenFor+10ms = 510ms ago > 300ms gap, so the
	// site stays open — silent sites get no probes.
	if b.CanRoute(0, clk.Now()) {
		t.Fatal("silent site got half-open probes")
	}

	// Now a recovering site: clean report closes everything, then trip
	// it open via gap and walk the half-open path with fresh reports...
	b.OnReport(0, 0, 0, clk.Now())
	if !b.CanRoute(0, clk.Now()) {
		t.Fatal("clean report did not close")
	}
}

func TestBreakerHalfOpenProbeExhaustionReopens(t *testing.T) {
	clk := newFakeClock()
	cfg := breakerConfig()
	cfg.RejectThreshold = 1
	b := newBreakerSet(1, cfg)
	b.OnReport(0, 0, 0, clk.Now())
	b.OnReport(0, 1, 0, clk.Now()) // threshold 1: open
	if b.CanRoute(0, clk.Now()) {
		t.Fatal("breaker closed after rejection")
	}
	clk.Advance(cfg.OpenFor)
	// Keep the report stamp fresh (rejections during open restart the
	// cooldown, so stamp freshness comes from a pre-cooldown report: use
	// a new clean-ish path instead — advance only to the gap edge).
	b.mu.Lock()
	b.last[0] = clk.Now() // site is talking; report content irrelevant here
	b.mu.Unlock()
	if !b.CanRoute(0, clk.Now()) {
		t.Fatal("cooled-down breaker did not half-open")
	}
	// Consume the probe budget (2) without a clean report.
	b.RoutedProbe(0, clk.Now())
	if !b.CanRoute(0, clk.Now()) {
		t.Fatal("half-open refused with probes remaining")
	}
	b.RoutedProbe(0, clk.Now())
	if b.CanRoute(0, clk.Now()) {
		t.Fatal("probe budget exhausted but still routable")
	}
	// A clean report ends the probation.
	b.OnReport(0, 0, 0, clk.Now())
	if !b.CanRoute(0, clk.Now()) {
		t.Fatal("clean report did not close half-open breaker")
	}
	states := b.States()
	if states[0] != "closed" {
		t.Errorf("state = %q, want closed", states[0])
	}
}

// A slow-but-reporting site (gray failure) must be demoted to half-open
// probation — a bounded probe trickle — rather than closed by its
// on-time reports, and a fast report must close it from any state.
func TestBreakerLatencyProbation(t *testing.T) {
	clk := newFakeClock()
	cfg := breakerConfig() // SlowLatency 250ms from Default
	b := newBreakerSet(1, cfg)
	b.OnReport(0, 0, 45, clk.Now()) // fast clean report: closed
	if !b.CanRoute(0, clk.Now()) {
		t.Fatal("fast report did not close the breaker")
	}

	// Slow report: closed → half-open probation, not open, not closed.
	b.OnReport(0, 0, 450, clk.Now())
	if got := b.States()[0]; got != "half-open" {
		t.Fatalf("state after slow report = %q, want half-open", got)
	}
	if got := b.SlowTrips(); got != 1 {
		t.Fatalf("slow trips = %d, want 1", got)
	}

	// Probation is bounded: the probe budget (2) gates routing.
	b.RoutedProbe(0, clk.Now())
	if !b.CanRoute(0, clk.Now()) {
		t.Fatal("half-open refused with probes remaining")
	}
	// Another slow report refreshes the budget instead of closing.
	b.OnReport(0, 0, 450, clk.Now())
	if got := b.States()[0]; got != "half-open" {
		t.Fatalf("state after budget refresh = %q, want half-open", got)
	}
	if !b.CanRoute(0, clk.Now()) {
		t.Fatal("refreshed probe budget not routable")
	}
	if got := b.SlowTrips(); got != 1 {
		t.Fatalf("slow trips after refresh = %d, want 1 (no re-demotion)", got)
	}

	// Exhausting the budget without a fast report re-opens; a slow
	// report while open must not close it.
	b.RoutedProbe(0, clk.Now())
	b.RoutedProbe(0, clk.Now())
	if b.CanRoute(0, clk.Now()) {
		t.Fatal("probe budget exhausted but still routable")
	}
	b.OnReport(0, 0, 450, clk.Now())
	if got := b.States()[0]; got != "open" {
		t.Fatalf("slow report changed open breaker to %q", got)
	}

	// A fast report closes from any state.
	b.OnReport(0, 0, 45, clk.Now())
	if got := b.States()[0]; got != "closed" {
		t.Fatalf("fast report left breaker %q, want closed", got)
	}
}

// SlowLatency zero disables latency-driven breaking entirely.
func TestBreakerLatencyDisabled(t *testing.T) {
	clk := newFakeClock()
	cfg := breakerConfig()
	cfg.SlowLatency = 0
	b := newBreakerSet(1, cfg)
	b.OnReport(0, 0, 1e6, clk.Now()) // absurdly slow, but the knob is off
	if got := b.States()[0]; got != "closed" {
		t.Fatalf("state = %q with latency breaking disabled, want closed", got)
	}
	if got := b.SlowTrips(); got != 0 {
		t.Fatalf("slow trips = %d with latency breaking disabled", got)
	}
}
