package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"dqalloc/internal/stats"
	"dqalloc/internal/workload"
)

// request resolution states: exactly one of the decision loop and the
// waiting handler resolves each request, via CAS.
const (
	resolvePending = iota
	resolveDecided // the loop resolved it (any Outcome)
	resolveExpired // the handler's deadline fired first
)

// decideReq is one queued decision.
type decideReq struct {
	ctx      context.Context
	q        workload.Query
	enqueued time.Time
	resolved atomic.Int32
	done     chan decideResult // buffered, cap 1
}

type decideResult struct {
	site    int
	outcome Outcome
}

// Stats is a point-in-time snapshot of the service counters. The
// decide counters conserve: Requests = Decided + Fallback + NoCapacity
// + Unavailable + Shed + Expired + Malformed + Draining.
type Stats struct {
	Requests    uint64 `json:"requests"`
	Decided     uint64 `json:"decided"`
	Fallback    uint64 `json:"fallback"`
	NoCapacity  uint64 `json:"no_capacity"`
	Unavailable uint64 `json:"unavailable"`
	Shed        uint64 `json:"shed"`
	Expired     uint64 `json:"expired"`
	Malformed   uint64 `json:"malformed"`
	Draining    uint64 `json:"draining"`

	Reports    uint64 `json:"reports"`
	BadReports uint64 `json:"bad_reports"`

	// LateDecides counts decisions the loop completed after the waiting
	// handler had already timed out; they are Expired above (each
	// request resolves once) and tracked here for observability.
	LateDecides uint64 `json:"late_decides"`

	BreakerOpens uint64   `json:"breaker_opens"`
	Breakers     []string `json:"breakers"`

	// SlowProbations counts closed→half-open breaker demotions driven by
	// latency feedback (gray-failure detections).
	SlowProbations uint64 `json:"slow_probations"`

	QueueDepth int `json:"queue_depth"`

	// Decision latency quantiles in microseconds (enqueue → resolve),
	// from a log-bucketed histogram (≤2% relative error).
	LatencyP50US float64 `json:"latency_p50_us"`
	LatencyP99US float64 `json:"latency_p99_us"`

	// LatencyByOutcome breaks the decision latency down per resolution
	// outcome, so a tail inflated by expiries is distinguishable from
	// slow successful decisions. Only outcomes observed at least once
	// appear.
	LatencyByOutcome map[string]LatencyQuantiles `json:"latency_by_outcome,omitempty"`
}

// LatencyQuantiles summarizes one outcome's decision-latency
// distribution in microseconds.
type LatencyQuantiles struct {
	Count uint64  `json:"count"`
	P50US float64 `json:"p50_us"`
	P99US float64 `json:"p99_us"`
}

// histogram outcome lanes; each resolution path records into exactly one.
const (
	laneDecided = iota
	laneFallback
	laneNoCapacity
	laneUnavailable
	laneExpired
	numLanes
)

// laneNames maps histogram lanes to their stats keys.
var laneNames = [numLanes]string{
	"decided", "fallback", "no_capacity", "unavailable", "expired",
}

// Server is the dqserve HTTP layer: handlers decode and enqueue, a
// single decision loop decides, and every request resolves exactly once.
type Server struct {
	cfg   Config
	core  *Core
	clock func() time.Time
	mux   *http.ServeMux

	queue    chan *decideReq
	qmu      sync.RWMutex // pairs enqueue sends with Shutdown's close
	loopDone chan struct{}
	draining atomic.Bool
	closed   atomic.Bool

	mu    sync.Mutex
	st    Stats
	hist  *stats.LogHistogram
	lanes [numLanes]*stats.LogHistogram
}

// NewServer builds the service and starts its decision loop. Callers
// must eventually call Shutdown (or Close) to stop the loop.
func NewServer(cfg Config) (*Server, error) {
	core, err := NewCore(cfg)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		core:     core,
		clock:    cfg.clock(),
		queue:    make(chan *decideReq, cfg.QueueBound),
		loopDone: make(chan struct{}),
	}
	s.initLatencyHists()
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/decide", s.handleDecide)
	s.mux.HandleFunc("/v1/report", s.handleReport)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	go s.loop()
	return s, nil
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Core exposes the decision engine (report ingestion in embedders).
func (s *Server) Core() *Core { return s.core }

// BeginDrain flips the server into draining: readiness reports 503 and
// new decide requests are refused, while queued and in-flight requests
// still complete. Idempotent.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain (or Shutdown) has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown gracefully stops the decision loop: drain mode, then the
// queue is closed and the loop exits once the backlog is resolved.
// Handlers still in flight are safe: enqueue holds qmu.RLock across its
// send and refuses once closed is set, so the close below can never
// race a send. Idempotent; the context bounds the wait for the backlog.
func (s *Server) Shutdown(ctx context.Context) error {
	s.BeginDrain()
	if s.closed.CompareAndSwap(false, true) {
		s.qmu.Lock()
		close(s.queue)
		s.qmu.Unlock()
	}
	select {
	case <-s.loopDone:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: shutdown: %w", ctx.Err())
	}
}

// Close is Shutdown with a short grace period, for tests.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return s.Shutdown(ctx)
}

// loop is the single decision goroutine: it owns the Core and resolves
// queued requests in FIFO order until the queue is closed and empty.
func (s *Server) loop() {
	defer close(s.loopDone)
	for req := range s.queue {
		// A request whose deadline passed while queued is expired
		// without deciding — its handler may have already resolved it.
		if req.ctx.Err() != nil {
			if req.resolved.CompareAndSwap(resolvePending, resolveExpired) {
				s.note(&s.st.Expired, laneExpired, req)
			}
			continue
		}
		site, out := s.core.Decide(&req.q, s.clock())
		if req.resolved.CompareAndSwap(resolvePending, resolveDecided) {
			switch out {
			case OutcomeDecided:
				s.note(&s.st.Decided, laneDecided, req)
			case OutcomeFallback:
				s.note(&s.st.Fallback, laneFallback, req)
			case OutcomeNoCapacity:
				s.note(&s.st.NoCapacity, laneNoCapacity, req)
			case OutcomeNoSites:
				s.note(&s.st.Unavailable, laneUnavailable, req)
			}
			req.done <- decideResult{site, out}
		} else {
			// The handler timed out mid-decision and owns the Expired
			// count; the optimistic table delta it committed washes out
			// at the site's next report.
			s.mu.Lock()
			s.st.LateDecides++
			s.mu.Unlock()
		}
	}
}

// enqueue status: queued, shed (queue full), or refused (queue closed).
const (
	enqueueOK = iota
	enqueueFull
	enqueueClosed
)

// enqueue offers req to the decision queue. The read-lock pairs with
// Shutdown's write-lock around close(queue): closed is set before the
// close and checked under the lock here, so a handler racing Shutdown
// observes enqueueClosed instead of sending on a closed channel.
func (s *Server) enqueue(req *decideReq) int {
	s.qmu.RLock()
	defer s.qmu.RUnlock()
	if s.closed.Load() {
		return enqueueClosed
	}
	select {
	case s.queue <- req:
		return enqueueOK
	default:
		return enqueueFull
	}
}

// initLatencyHists builds the global and per-outcome latency histograms:
// 1µs–60s decision latencies at ≤2% relative error.
func (s *Server) initLatencyHists() {
	s.hist = stats.NewLogHistogram(1, 60e6, 0.02)
	for i := range s.lanes {
		s.lanes[i] = stats.NewLogHistogram(1, 60e6, 0.02)
	}
}

// note bumps one resolution counter and records the request's
// enqueue→resolve latency, globally and in the outcome's lane.
func (s *Server) note(counter *uint64, lane int, req *decideReq) {
	lat := s.clock().Sub(req.enqueued)
	us := float64(lat.Microseconds()) + 1 // keep zero out of the log buckets
	s.mu.Lock()
	*counter++
	s.hist.Add(us)
	s.lanes[lane].Add(us)
	s.mu.Unlock()
}

// bump increments one counter not tied to a queued request.
func (s *Server) bump(counter *uint64) {
	s.mu.Lock()
	*counter++
	s.mu.Unlock()
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeError writes the JSON error envelope.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// readBody reads a bounded request body.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	return io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
}

func (s *Server) handleDecide(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	s.bump(&s.st.Requests)
	if s.draining.Load() {
		s.bump(&s.st.Draining)
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	body, err := readBody(w, r)
	if err != nil {
		s.bump(&s.st.Malformed)
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	dr, err := DecodeDecideRequest(body, len(s.cfg.Classes), s.cfg.NumSites)
	if err != nil {
		s.bump(&s.st.Malformed)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	deadline := s.cfg.DefaultDeadline
	if dr.DeadlineMS > 0 {
		deadline = time.Duration(dr.DeadlineMS * float64(time.Millisecond))
		if deadline > s.cfg.MaxDeadline {
			deadline = s.cfg.MaxDeadline
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()

	req := &decideReq{
		ctx:      ctx,
		enqueued: s.clock(),
		done:     make(chan decideResult, 1),
	}
	req.q = workload.Query{Class: dr.Class, Home: dr.Home, Exec: dr.Home,
		EstReads: dr.EstReads, EstPageCPU: dr.EstPageCPU}
	s.cfg.classMeans(&req.q)

	switch s.enqueue(req) {
	case enqueueOK:
	case enqueueClosed:
		// Shutdown closed the queue between the draining check above
		// and the send; answer as a drain refusal.
		s.bump(&s.st.Draining)
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	default: // enqueueFull
		// Backpressure: the decision queue is full; shed now rather
		// than let latency collapse for everyone.
		s.bump(&s.st.Shed)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "decision queue full")
		return
	}

	select {
	case res := <-req.done:
		s.writeDecision(w, res)
	case <-ctx.Done():
		if req.resolved.CompareAndSwap(resolvePending, resolveExpired) {
			s.note(&s.st.Expired, laneExpired, req)
			writeError(w, http.StatusGatewayTimeout, "decision deadline exceeded")
			return
		}
		// The loop won the race. The resolution is terminal, so the
		// CAS losing means it is readable: decided means a result is
		// (or is about to be) in the buffered channel; expired means
		// the loop saw the dead context at dequeue, took the Expired
		// count, and will never send — receiving would hang forever.
		if req.resolved.Load() == resolveDecided {
			s.writeDecision(w, <-req.done)
			return
		}
		writeError(w, http.StatusGatewayTimeout, "decision deadline exceeded")
	}
}

// writeDecision maps a loop resolution to its HTTP response.
func (s *Server) writeDecision(w http.ResponseWriter, res decideResult) {
	switch res.outcome {
	case OutcomeDecided:
		writeJSON(w, http.StatusOK, DecideResponse{Site: res.site, Mode: "policy", Policy: s.core.Policy()})
	case OutcomeFallback:
		writeJSON(w, http.StatusOK, DecideResponse{Site: res.site, Mode: "fallback", Policy: s.core.Policy()})
	case OutcomeNoCapacity:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "all candidate sites at admission cap")
	default: // OutcomeNoSites
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "no routable sites")
	}
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body, err := readBody(w, r)
	if err != nil {
		s.bump(&s.st.BadReports)
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	rep, err := DecodeReportRequest(body, s.cfg.NumSites)
	if err != nil {
		s.bump(&s.st.BadReports)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.core.Report(rep.Site, rep.NumIO, rep.NumCPU, rep.CPUWork, rep.IOWork, rep.Rejected, rep.LatencyMS, s.clock()); err != nil {
		s.bump(&s.st.BadReports)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.bump(&s.st.Reports)
	w.WriteHeader(http.StatusNoContent)
}

// Stats snapshots the service counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	st := s.st
	st.LatencyP50US = s.hist.Quantile(0.5)
	st.LatencyP99US = s.hist.Quantile(0.99)
	for lane, h := range s.lanes {
		if h.Count() == 0 {
			continue
		}
		if st.LatencyByOutcome == nil {
			st.LatencyByOutcome = make(map[string]LatencyQuantiles, numLanes)
		}
		st.LatencyByOutcome[laneNames[lane]] = LatencyQuantiles{
			Count: h.Count(),
			P50US: h.Quantile(0.5),
			P99US: h.Quantile(0.99),
		}
	}
	s.mu.Unlock()
	st.Breakers = s.core.Breakers()
	st.BreakerOpens = s.core.BreakerOpens()
	st.SlowProbations = s.core.SlowProbations()
	st.QueueDepth = len(s.queue)
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	switch {
	case s.draining.Load():
		writeError(w, http.StatusServiceUnavailable, "draining")
	case !s.core.Ready(s.clock()):
		writeError(w, http.StatusServiceUnavailable, "no live sites (no fresh reports)")
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}
