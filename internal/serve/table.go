package serve

import (
	"sync"
	"time"

	"dqalloc/internal/loadinfo"
	"dqalloc/internal/workload"
)

// LiveTable is the serving-side load table: per-site counts and work
// backlogs as last reported by the sites, aged by wall-clock staleness.
// It plays the role loadinfo.Broadcaster plays in the simulator, with
// two differences a live system forces:
//
//   - Entries expire. A site that has not reported within the TTL reads
//     as AssumeBusy queries (and AssumeBusy units of work), so policies
//     prefer any fresh site over a stale one; when every candidate is
//     stale the Core falls back to round-robin instead of trusting a
//     view that may be arbitrarily wrong.
//   - Decisions are committed optimistically. Each decision increments a
//     per-site delta on top of the reported counts (the simulator's
//     commitment semantics: a query counts from its allocation instant);
//     the site's next report, which observes the routed queries itself,
//     overwrites the entry and clears the delta. This keeps a burst of
//     decisions inside one report period from herding onto the site that
//     happened to look idle at the last report.
//
// Ingest is called from HTTP handler goroutines and the view methods
// from the decision loop; a mutex guards every method. View consistency
// across one decision is per-site (a report may land mid-decision),
// which is exactly the consistency a distributed load table offers.
type LiveTable struct {
	mu         sync.Mutex
	ttl        time.Duration
	assumeBusy int

	io, cpu          []int
	cpuWork, ioWork  []float64
	dio, dcpu        []int
	dcpuWork, dioWrk []float64
	last             []time.Time

	// now is the epoch of the decision in progress, set by
	// BeginDecision; freshness is evaluated against it so one decision
	// sees one consistent notion of "now".
	now time.Time
}

var (
	_ loadinfo.View     = (*LiveTable)(nil)
	_ loadinfo.WorkView = (*LiveTable)(nil)
)

// NewLiveTable returns a table for numSites sites, all entries unset
// (and therefore stale until the first report).
func NewLiveTable(numSites int, ttl time.Duration, assumeBusy int) *LiveTable {
	return &LiveTable{
		ttl:        ttl,
		assumeBusy: assumeBusy,
		io:         make([]int, numSites),
		cpu:        make([]int, numSites),
		cpuWork:    make([]float64, numSites),
		ioWork:     make([]float64, numSites),
		dio:        make([]int, numSites),
		dcpu:       make([]int, numSites),
		dcpuWork:   make([]float64, numSites),
		dioWrk:     make([]float64, numSites),
		last:       make([]time.Time, numSites),
	}
}

// Ingest installs one site's report, stamping it at now and clearing the
// site's optimistic delta (the report observed the routed queries
// itself, or they completed; either way the report is authoritative).
func (t *LiveTable) Ingest(site, numIO, numCPU int, cpuWork, ioWork float64, now time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.io[site] = numIO
	t.cpu[site] = numCPU
	t.cpuWork[site] = cpuWork
	t.ioWork[site] = ioWork
	t.dio[site] = 0
	t.dcpu[site] = 0
	t.dcpuWork[site] = 0
	t.dioWrk[site] = 0
	t.last[site] = now
}

// NoteAssign commits a decision optimistically: site carries one more
// query of the given bound, and the query's estimated demands, until its
// next report.
func (t *LiveTable) NoteAssign(site int, b workload.Bound, cpuWork, ioWork float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if b == workload.IOBound {
		t.dio[site]++
	} else {
		t.dcpu[site]++
	}
	t.dcpuWork[site] += cpuWork
	t.dioWrk[site] += ioWork
}

// BeginDecision fixes the freshness epoch for the decision in progress.
func (t *LiveTable) BeginDecision(now time.Time) {
	t.mu.Lock()
	t.now = now
	t.mu.Unlock()
}

// fresh reports entry freshness against the current epoch. Caller holds mu.
func (t *LiveTable) fresh(site int) bool {
	return !t.last[site].IsZero() && t.now.Sub(t.last[site]) <= t.ttl
}

// Fresh reports whether site's entry is within the TTL of the epoch set
// by BeginDecision.
func (t *LiveTable) Fresh(site int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.fresh(site)
}

// LastReport returns the receive time of site's last report (zero if it
// never reported).
func (t *LiveTable) LastReport(site int) time.Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.last[site]
}

// Committed returns the site's committed query count ignoring staleness
// — last reported counts plus optimistic deltas. The admission cap
// checks this rather than the aged view so a stale site cannot dodge the
// cap by reading AssumeBusy.
func (t *LiveTable) Committed(site int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.io[site] + t.cpu[site] + t.dio[site] + t.dcpu[site]
}

// NumQueries returns the aged view's query count at site.
func (t *LiveTable) NumQueries(site int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.fresh(site) {
		return t.assumeBusy
	}
	return t.io[site] + t.cpu[site] + t.dio[site] + t.dcpu[site]
}

// NumIOQueries returns the aged view's I/O-bound count at site.
func (t *LiveTable) NumIOQueries(site int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.fresh(site) {
		return t.assumeBusy
	}
	return t.io[site] + t.dio[site]
}

// NumCPUQueries returns the aged view's CPU-bound count at site.
func (t *LiveTable) NumCPUQueries(site int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.fresh(site) {
		return t.assumeBusy
	}
	return t.cpu[site] + t.dcpu[site]
}

// CPUWork returns the aged view's outstanding CPU work at site.
func (t *LiveTable) CPUWork(site int) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.fresh(site) {
		return float64(t.assumeBusy)
	}
	return t.cpuWork[site] + t.dcpuWork[site]
}

// IOWork returns the aged view's outstanding disk work at site.
func (t *LiveTable) IOWork(site int) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.fresh(site) {
		return float64(t.assumeBusy)
	}
	return t.ioWork[site] + t.dioWrk[site]
}
