package exper

import (
	"math"
	"testing"
)

// The analytic Tables 5/6 are deterministic (exact MVA, no seeds), so
// their values can be pinned as golden regressions. The FIF column for
// load matrix L1 reproduces the paper's printed values exactly; the WIF
// column is within a couple of hundredths (see EXPERIMENTS.md for the
// full comparison and the tie-break caveat).

func TestGoldenTable5FirstColumn(t *testing.T) {
	rows, err := Table5()
	if err != nil {
		t.Fatal(err)
	}
	// L1, arrival class 1 — paper prints .14/.24/.20/.31/.00/.02.
	want := []float64{0.16, 0.27, 0.21, 0.33, 0.00, 0.00}
	for i, row := range rows {
		got := row.Cells[0].Value
		if math.Abs(got-want[i]) > 0.005 {
			t.Errorf("WIF row %s = %.3f, want %.2f (golden)", row.Ratio.Label(), got, want[i])
		}
	}
}

func TestGoldenTable6FirstColumn(t *testing.T) {
	rows, err := Table6()
	if err != nil {
		t.Fatal(err)
	}
	// L1, arrival class 1 — matches the paper's printed column exactly
	// for the first four ratios: .69/.75/.72/.78.
	want := []float64{0.69, 0.75, 0.72, 0.78, 0.60, 0.60}
	paperExact := 4
	for i, row := range rows {
		got := row.Cells[0].Value
		if math.Abs(got-want[i]) > 0.005 {
			t.Errorf("FIF row %s = %.3f, want %.2f (golden)", row.Ratio.Label(), got, want[i])
		}
		if i < paperExact {
			// These four cells are the paper's own printed values.
			if math.Abs(got-want[i]) > 0.005 {
				t.Errorf("paper-exact cell diverged at %s", row.Ratio.Label())
			}
		}
	}
}

func TestGoldenTable6SecondClassColumn(t *testing.T) {
	rows, err := Table6()
	if err != nil {
		t.Fatal(err)
	}
	// L1, arrival class 2 — paper prints .60/.70/.69/.81 for the first
	// four ratios, which we match exactly.
	want := []float64{0.60, 0.70, 0.69, 0.81}
	for i := 0; i < len(want); i++ {
		got := rows[i].Cells[1].Value
		if math.Abs(got-want[i]) > 0.005 {
			t.Errorf("FIF(L1,i=2) row %s = %.3f, want %.2f (paper-exact)",
				rows[i].Ratio.Label(), got, want[i])
		}
	}
}
