package exper

import (
	"fmt"

	"dqalloc/internal/policy"
	"dqalloc/internal/system"
	"dqalloc/internal/workload"
)

// ParallelQueryRow is one cell of the parallel-query study: one
// allocation policy under one plan-placement mode, every replication
// fully audited (operator conservation included), averaged over the
// runner's replications.
type ParallelQueryRow struct {
	// Policy is the allocation policy's name.
	Policy string
	// Mode is the plan-placement mode's name (single, operator, dop).
	Mode string
	// MeanResponse and MeanWait are replication means over completed
	// queries.
	MeanResponse float64
	MeanWait     float64
	// ParallelQueries and Operators are totals across replications:
	// queries that became multi-operator plans, and operator attempts
	// dispatched for them.
	ParallelQueries uint64
	Operators       uint64
	// WideFrac is the fraction of multi-operator plans whose instances
	// landed on two or more distinct sites (0 in single mode by
	// construction).
	WideFrac float64
	// IntermediateBytes is the total ring volume of intermediate operator
	// results across replications.
	IntermediateBytes float64
	// SubnetUtil and DiskUtil are replication means — the price the split
	// pays (ring traffic) and the resource it spreads (disk service).
	SubnetUtil float64
	DiskUtil   float64
	// Completed is the total completions across replications.
	Completed uint64
}

// ParallelWorkloadConfig returns the workload the parallel-query study
// runs on: the Table-7 system with a handful of large scan-heavy
// queries per site instead of many small ones. Low multiprogramming
// makes a single query's makespan disk-bound rather than queueing-bound
// — the regime where splitting the bottom join across sites can pay —
// and every submitted query becomes a join tree so the modes differ on
// the whole workload. Shipping costs stay small (a result page is far
// smaller than its input pages), so the split's overhead is startup
// plus replication, as in the cost model.
func ParallelWorkloadConfig() system.Config {
	cfg := system.Default()
	cfg.MPL = 2
	cfg.ThinkTime = 150
	cfg.Classes = []workload.Class{
		{Name: "io", PageCPUTime: 0.05, NumReads: 48, MsgLength: 1},
		{Name: "cpu", PageCPUTime: 0.4, NumReads: 32, MsgLength: 1},
	}
	par := system.DefaultParallel()
	par.JoinProb = 1
	par.FilterProb = 0.25
	par.SelScan = 0.1
	par.ShipBytesPerPage = 0.02
	par.SplitOverhead = 0.5
	cfg.Parallel = par
	return cfg
}

// ParallelQuerySweep runs each policy under each plan-placement mode on
// the ParallelWorkloadConfig workload with common random numbers and
// full auditing. The study behind the tentpole claim: on a disk-bound
// workload of large join queries, placing operators — and splitting the
// bottom join — across sites must buy a lower mean response time than
// anchoring every plan at one site, and the sweep quantifies the ring
// traffic the improvement costs.
func ParallelQuerySweep(r Runner, kinds []policy.Kind, modes []policy.ParallelMode) ([]ParallelQueryRow, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	if len(modes) == 0 {
		return nil, fmt.Errorf("exper: parallel-query sweep: no placement modes")
	}
	rows := make([]ParallelQueryRow, 0, len(kinds)*len(modes))
	for _, kind := range kinds {
		for _, mode := range modes {
			row, err := parallelCell(r, kind, mode)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// parallelCell averages one (policy, mode) cell over the runner's
// replications.
func parallelCell(r Runner, kind policy.Kind, mode policy.ParallelMode) (ParallelQueryRow, error) {
	cfg := r.applyHorizons(ParallelWorkloadConfig())
	cfg.PolicyKind = kind
	cfg.Audit = true
	cfg.Parallel.Mode = mode
	row := ParallelQueryRow{Policy: kind.String(), Mode: mode.String()}
	var wide, plans uint64
	for rep := 0; rep < r.Reps; rep++ {
		cfg.Seed = r.BaseSeed + uint64(rep)
		sys, err := newSystem(cfg)
		if err != nil {
			return ParallelQueryRow{}, fmt.Errorf("exper: parallel-query sweep %v %v: %w", kind, mode, err)
		}
		res := sys.Run()
		if err := sys.Audit(); err != nil {
			return ParallelQueryRow{}, fmt.Errorf("exper: parallel-query sweep %v %v seed %d: %w",
				kind, mode, cfg.Seed, err)
		}
		row.MeanResponse += res.MeanResponse
		row.MeanWait += res.MeanWait
		row.SubnetUtil += res.SubnetUtil
		row.DiskUtil += res.DiskUtil
		row.ParallelQueries += res.ParallelQueries
		row.Operators += res.Operators
		row.IntermediateBytes += res.IntermediateBytes
		row.Completed += res.Completed
		plans += res.ParallelQueries
		for k := 1; k < len(res.DOPHist); k++ {
			wide += res.DOPHist[k]
		}
	}
	n := float64(r.Reps)
	row.MeanResponse /= n
	row.MeanWait /= n
	row.SubnetUtil /= n
	row.DiskUtil /= n
	if plans > 0 {
		row.WideFrac = float64(wide) / float64(plans)
	}
	return row, nil
}
