package exper

import (
	"testing"

	"dqalloc/internal/policy"
)

// TestParallelQuerySweep is the acceptance experiment of the
// parallel-query extension: on the disk-bound large-join workload,
// spreading plans across sites (operator or dop mode) must beat
// anchoring every plan at one site (single mode) on mean response, with
// every replication audited. It also pins the bookkeeping each row
// reports.
func TestParallelQuerySweep(t *testing.T) {
	r := Quick()
	rows, err := ParallelQuerySweep(r, []policy.Kind{policy.LERT},
		[]policy.ParallelMode{policy.ParallelSingle, policy.ParallelOperator, policy.ParallelDOP})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	byMode := map[string]ParallelQueryRow{}
	for _, row := range rows {
		byMode[row.Mode] = row
		if row.ParallelQueries == 0 || row.Operators == 0 || row.Completed == 0 {
			t.Fatalf("idle cell: %+v", row)
		}
		if row.MeanResponse <= 0 {
			t.Fatalf("non-positive mean response: %+v", row)
		}
	}
	single := byMode["single"]
	if single.WideFrac != 0 {
		t.Errorf("single mode split %v of its plans across sites", single.WideFrac)
	}
	if byMode["dop"].WideFrac == 0 {
		t.Error("dop mode never split a plan across sites")
	}
	if byMode["operator"].IntermediateBytes == 0 {
		t.Error("operator mode shipped no intermediate results")
	}
	best := byMode["operator"].MeanResponse
	if dop := byMode["dop"].MeanResponse; dop < best {
		best = dop
	}
	if best >= single.MeanResponse {
		t.Errorf("no split mode beat single-site placement: single %.2f, operator %.2f, dop %.2f",
			single.MeanResponse, byMode["operator"].MeanResponse, byMode["dop"].MeanResponse)
	}
}

func TestParallelQuerySweepErrors(t *testing.T) {
	if _, err := ParallelQuerySweep(Runner{}, []policy.Kind{policy.LERT},
		[]policy.ParallelMode{policy.ParallelSingle}); err == nil {
		t.Error("invalid runner accepted")
	}
	if _, err := ParallelQuerySweep(Quick(), []policy.Kind{policy.LERT}, nil); err == nil {
		t.Error("empty mode list accepted")
	}
}

// TestParallelWorkloadConfigValid keeps the study's workload admissible
// on its own — the sweep depends on it building directly.
func TestParallelWorkloadConfigValid(t *testing.T) {
	cfg := ParallelWorkloadConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if !cfg.Parallel.Enabled || cfg.Parallel.JoinProb != 1 {
		t.Fatalf("workload not all-join: %+v", cfg.Parallel)
	}
}
