package exper

import (
	"math"
	"testing"

	"dqalloc/internal/fault"
	"dqalloc/internal/policy"
)

// TestDegradationSweep is the PR's capstone: every policy family across
// three failure intensities, every replication audited. Any ledger
// violation (a query lost without being retried, rejected or pending)
// surfaces as a sweep error here.
func TestDegradationSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("degradation sweep is slow")
	}
	r := Runner{Reps: 2, BaseSeed: 41, Warmup: 400, Measure: 4000}
	kinds := []policy.Kind{
		policy.Local, policy.Random, policy.BNQ, policy.BNQRD, policy.LERT,
	}
	fcfg := fault.Default()
	fcfg.MTTR = 300
	fcfg.DropProb = 0.02
	mttfs := []float64{math.Inf(1), 8000, 1500}
	rows, err := DegradationSweep(r, kinds, mttfs, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(kinds)*len(mttfs) {
		t.Fatalf("got %d rows, want %d", len(rows), len(kinds)*len(mttfs))
	}
	for _, row := range rows {
		if row.Completed == 0 {
			t.Errorf("%s mttf=%v: no completions", row.Policy, row.MTTF)
		}
		if row.Availability <= 0 || row.Availability > 1 {
			t.Errorf("%s mttf=%v: availability %v out of (0,1]", row.Policy, row.MTTF, row.Availability)
		}
		if row.AvailResponse < row.MeanResponse {
			t.Errorf("%s mttf=%v: AvailResponse %v < MeanResponse %v",
				row.Policy, row.MTTF, row.AvailResponse, row.MeanResponse)
		}
		if math.IsInf(row.MTTF, 1) {
			if row.Crashes != 0 {
				t.Errorf("%s mttf=+Inf: %d crashes", row.Policy, row.Crashes)
			}
			if row.Availability != 1 {
				t.Errorf("%s mttf=+Inf: availability %v, want 1", row.Policy, row.Availability)
			}
		} else if row.MTTF <= 1500 {
			if row.Crashes == 0 {
				t.Errorf("%s mttf=%v: no site crashes in an aggressive-failure run",
					row.Policy, row.MTTF)
			}
			if row.Availability >= 1 {
				t.Errorf("%s mttf=%v: availability %v despite crashes",
					row.Policy, row.MTTF, row.Availability)
			}
		}
	}
}

func TestDegradationSweepRejectsEmptyLevels(t *testing.T) {
	r := Runner{Reps: 1, BaseSeed: 1, Warmup: 10, Measure: 100}
	if _, err := DegradationSweep(r, []policy.Kind{policy.Local}, nil, fault.Default()); err == nil {
		t.Error("empty MTTF levels accepted")
	}
}

func TestDefaultMTTFLevels(t *testing.T) {
	levels := DefaultMTTFLevels()
	if len(levels) < 3 {
		t.Fatalf("want at least 3 levels, got %d", len(levels))
	}
	if !math.IsInf(levels[0], 1) {
		t.Errorf("first level %v, want +Inf baseline", levels[0])
	}
	for i := 1; i < len(levels); i++ {
		if levels[i] >= levels[i-1] {
			t.Errorf("levels not strictly decreasing at %d: %v", i, levels)
		}
	}
}
