package exper

import (
	"fmt"

	"dqalloc/internal/policy"
	"dqalloc/internal/replica"
	"dqalloc/internal/rng"
	"dqalloc/internal/system"
)

// ReplicationRow is one row of the partial-replication sweep: waiting
// time under nearest-copy ("static") and LERT allocation with k copies
// per object.
type ReplicationRow struct {
	Copies     int
	WStatic    float64 // LOCAL policy = nearest copy holder
	WLERT      float64
	Impr       float64 // ΔW̄ (%) of LERT over static
	SubnetLERT float64
	RemoteLERT float64
}

// ReplicationSweep varies the number of copies per object from 1 to the
// number of sites on the Table-7 baseline — the future-work environment
// of Section 6.2 and a direct probe of the Table-11 observation that
// "there is an optimal value for the number of copies of data items".
func ReplicationSweep(r Runner, numObjects int) ([]ReplicationRow, error) {
	base := system.Default()
	rows := make([]ReplicationRow, 0, base.NumSites)
	for copies := 1; copies <= base.NumSites; copies++ {
		placement, err := replica.NewRoundRobin(base.NumSites, numObjects, copies)
		if err != nil {
			return nil, fmt.Errorf("exper: replication sweep: %w", err)
		}
		cfg := base
		cfg.Placement = placement
		aggs, err := r.RunPolicies(cfg, []policy.Kind{policy.Local, policy.LERT})
		if err != nil {
			return nil, fmt.Errorf("exper: replication sweep copies %d: %w", copies, err)
		}
		static, lert := aggs[0], aggs[1]
		rows = append(rows, ReplicationRow{
			Copies:     copies,
			WStatic:    static.MeanWait.Mean,
			WLERT:      lert.MeanWait.Mean,
			Impr:       Improvement(static.MeanWait.Mean, lert.MeanWait.Mean),
			SubnetLERT: lert.SubnetUtil,
			RemoteLERT: lert.RemoteFrac,
		})
	}
	return rows, nil
}

// MigrationRow compares a policy with and without mid-execution
// migration.
type MigrationRow struct {
	Policy        string
	WPlain        float64
	WMigration    float64
	Impr          float64 // ΔW̄ (%) from enabling migration
	MigrationsPer float64 // migrations per completed query
}

// MigrationAblation measures what mid-execution migration (future work
// Section 6.2) adds on top of each allocation policy.
func MigrationAblation(r Runner, kinds []policy.Kind) ([]MigrationRow, error) {
	rows := make([]MigrationRow, 0, len(kinds))
	for _, kind := range kinds {
		plain := system.Default()
		plain.PolicyKind = kind
		aggPlain, err := r.Run(plain)
		if err != nil {
			return nil, fmt.Errorf("exper: migration ablation %v: %w", kind, err)
		}

		mig := plain
		mig.Migration = system.DefaultMigration()
		// Aggregate migration counts across replications by hand: the
		// Runner exposes means, so run once more at the base seed for the
		// per-query rate.
		aggMig, err := r.Run(mig)
		if err != nil {
			return nil, fmt.Errorf("exper: migration ablation %v: %w", kind, err)
		}
		mig.Seed = r.BaseSeed
		if r.Warmup > 0 {
			mig.Warmup = r.Warmup
		}
		if r.Measure > 0 {
			mig.Measure = r.Measure
		}
		sys, err := system.New(mig)
		if err != nil {
			return nil, err
		}
		one := sys.Run()
		rate := 0.0
		if one.Completed > 0 {
			rate = float64(one.Migrations) / float64(one.Completed)
		}
		rows = append(rows, MigrationRow{
			Policy:        kind.String(),
			WPlain:        aggPlain.MeanWait.Mean,
			WMigration:    aggMig.MeanWait.Mean,
			Impr:          Improvement(aggPlain.MeanWait.Mean, aggMig.MeanWait.Mean),
			MigrationsPer: rate,
		})
	}
	return rows, nil
}

// HeterogeneityRow compares policies on one hardware profile.
type HeterogeneityRow struct {
	Profile string
	WLocal  float64
	WBNQ    float64
	WLERT   float64
	// LERTEdge is LERT's improvement over BNQ (%) — the payoff of a
	// speed-aware cost function.
	LERTEdge float64
}

// HeterogeneitySweep relaxes the paper's homogeneity assumption: it
// compares the policies on uniform hardware and on a mixed profile with
// one double-speed and one half-speed CPU. Count-based policies treat a
// slow site like any other; LERT's cost function scales with site speed.
func HeterogeneitySweep(r Runner) ([]HeterogeneityRow, error) {
	profiles := []struct {
		name   string
		speeds []float64
	}{
		{name: "uniform", speeds: nil},
		{name: "one-fast-one-slow", speeds: []float64{2, 1, 1, 1, 1, 0.5}},
		{name: "two-tier", speeds: []float64{2, 2, 2, 0.5, 0.5, 0.5}},
	}
	rows := make([]HeterogeneityRow, 0, len(profiles))
	for _, p := range profiles {
		cfg := system.Default()
		cfg.CPUSpeeds = p.speeds
		aggs, err := r.RunPolicies(cfg, []policy.Kind{policy.Local, policy.BNQ, policy.LERT})
		if err != nil {
			return nil, fmt.Errorf("exper: heterogeneity %s: %w", p.name, err)
		}
		rows = append(rows, HeterogeneityRow{
			Profile:  p.name,
			WLocal:   aggs[0].MeanWait.Mean,
			WBNQ:     aggs[1].MeanWait.Mean,
			WLERT:    aggs[2].MeanWait.Mean,
			LERTEdge: Improvement(aggs[1].MeanWait.Mean, aggs[2].MeanWait.Mean),
		})
	}
	return rows, nil
}

// ProbeRow is one point of the limited-information sweep: waiting times
// when the allocator sees only the arrival site plus k random probes.
type ProbeRow struct {
	Probes    int
	WProbeBNQ float64
	WProbeRT  float64 // probing LERT
	WThresh   float64 // threshold policy (T=3) with k probes
}

// ProbeSweep measures how much of the full-information benefit survives
// when the allocator probes only k sites per decision — the flip side of
// the Section-4.4 information-exchange question. Compare against the
// perfect-information W̄ from Table 8 and the LOCAL baseline.
func ProbeSweep(r Runner, ks []int) ([]ProbeRow, error) {
	// Probing policies are stateful (per-decision RNG streams), so the
	// replications must run serially regardless of the caller's runner.
	r.Parallel = false
	rows := make([]ProbeRow, 0, len(ks))
	for _, k := range ks {
		row := ProbeRow{Probes: k}
		for i, build := range []func(stream *rng.Stream) (policy.Policy, error){
			func(st *rng.Stream) (policy.Policy, error) { return policy.NewProbeKind(policy.BNQ, k, st) },
			func(st *rng.Stream) (policy.Policy, error) { return policy.NewProbeKind(policy.LERT, k, st) },
			func(st *rng.Stream) (policy.Policy, error) { return policy.NewThreshold(3, k, st) },
		} {
			cfg := system.Default()
			pol, err := build(rng.NewStream(900 + uint64(k)))
			if err != nil {
				return nil, fmt.Errorf("exper: probe sweep k=%d: %w", k, err)
			}
			cfg.CustomPolicy = pol
			agg, err := r.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("exper: probe sweep k=%d: %w", k, err)
			}
			switch i {
			case 0:
				row.WProbeBNQ = agg.MeanWait.Mean
			case 1:
				row.WProbeRT = agg.MeanWait.Mean
			case 2:
				row.WThresh = agg.MeanWait.Mean
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// StalenessRow is one point of the load-information staleness sweep.
type StalenessRow struct {
	Period float64 // 0 = perfect information
	WBNQ   float64
	WLERT  float64
}

// StalenessSweep measures BNQ and LERT under increasingly stale load
// information (broadcast period sweep) — the information-exchange
// dimension the paper defers in Section 4.4.
func StalenessSweep(r Runner, periods []float64) ([]StalenessRow, error) {
	rows := make([]StalenessRow, 0, len(periods))
	for _, period := range periods {
		cfg := system.Default()
		if period > 0 {
			cfg.InfoMode = system.InfoPeriodic
			cfg.InfoPeriod = period
		}
		aggs, err := r.RunPolicies(cfg, []policy.Kind{policy.BNQ, policy.LERT})
		if err != nil {
			return nil, fmt.Errorf("exper: staleness sweep period %v: %w", period, err)
		}
		rows = append(rows, StalenessRow{
			Period: period,
			WBNQ:   aggs[0].MeanWait.Mean,
			WLERT:  aggs[1].MeanWait.Mean,
		})
	}
	return rows, nil
}
