package exper

import (
	"fmt"

	"dqalloc/internal/fault"
	"dqalloc/internal/policy"
	"dqalloc/internal/replica"
	"dqalloc/internal/system"
)

// SelfHealRow is one cell of the self-healing replication study: one
// allocation policy at one failure intensity and one replication degree,
// with crash-driven re-replication either on or off, averaged over the
// runner's replications.
type SelfHealRow struct {
	// Policy is the allocation policy's name.
	Policy string
	// MTTF is the per-site mean time to failure (+Inf = no failures).
	MTTF float64
	// Copies is the initial number of copies per fragment.
	Copies int
	// Rebuild reports whether the replica manager (crash-driven
	// re-replication plus degraded remote reads) was on.
	Rebuild bool
	// FragAvailability and MinFragAvailability are the mean and minimum
	// per-fragment availability — the fraction of the measured window
	// each fragment had at least one up holder.
	FragAvailability    float64
	MinFragAvailability float64
	// MeanRebuildLatency is the mean deficit-to-restored time of
	// completed rebuilds (0 when Rebuild is off or nothing was rebuilt).
	MeanRebuildLatency float64
	// ReplicasRebuilt and RebuildsAborted are totals across
	// replications.
	ReplicasRebuilt uint64
	RebuildsAborted uint64
	// DegradedReads and NoReplicaRejects are totals across replications.
	DegradedReads    uint64
	NoReplicaRejects uint64
	// MeanResponse is the mean response time of completed queries.
	MeanResponse float64
	// Completed, Rejected and Crashes are totals across replications.
	Completed uint64
	Rejected  uint64
	Crashes   uint64
}

// SelfHealSweep runs each policy across the given MTTF levels and
// replication degrees on the Table-7 baseline with a round-robin partial
// placement, once with the static placement and once with the
// self-healing replica manager on — every replication fully audited,
// including the replication-conservation auditor on the manager runs.
// fcfg supplies the non-MTTF fault knobs; its MTTF field is overridden
// per level. rcfg supplies the manager knobs; its MinCopies is pinned to
// the sweep's copy count (the manager restores exactly the configured
// degree) and MaxCopies raised to it when needed.
//
// This is the experiment behind the tentpole claim: re-replication must
// buy strictly higher minimum per-fragment availability than a static
// placement under the same crash schedule — and the sweep shows where it
// does not (rebuild traffic shares the ring with queries, so frequent
// crashes plus large fragments can stretch deficit windows until
// self-healing stops paying for itself).
func SelfHealSweep(r Runner, kinds []policy.Kind, mttfs []float64, copies []int, fcfg fault.Config, rcfg replica.ManagerConfig) ([]SelfHealRow, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	if len(mttfs) == 0 {
		return nil, fmt.Errorf("exper: self-heal sweep: no MTTF levels")
	}
	if len(copies) == 0 {
		return nil, fmt.Errorf("exper: self-heal sweep: no copy levels")
	}
	rows := make([]SelfHealRow, 0, len(kinds)*len(mttfs)*len(copies)*2)
	for _, kind := range kinds {
		for _, mttf := range mttfs {
			for _, k := range copies {
				for _, rebuild := range []bool{false, true} {
					row, err := replicationCell(r, kind, mttf, k, rebuild, fcfg, rcfg)
					if err != nil {
						return nil, err
					}
					rows = append(rows, row)
				}
			}
		}
	}
	return rows, nil
}

// replicationCell averages one (policy, MTTF, copies, rebuild) cell over
// the runner's replications.
func replicationCell(r Runner, kind policy.Kind, mttf float64, copies int, rebuild bool, fcfg fault.Config, rcfg replica.ManagerConfig) (SelfHealRow, error) {
	cfg := r.applyHorizons(system.Default())
	cfg.PolicyKind = kind
	cfg.Audit = true
	cfg.Fault = fcfg
	cfg.Fault.Enabled = true
	cfg.Fault.MTTF = mttf
	placement, err := replica.NewRoundRobin(cfg.NumSites, 10*cfg.NumSites, copies)
	if err != nil {
		return SelfHealRow{}, fmt.Errorf("exper: self-heal sweep: %w", err)
	}
	cfg.Placement = placement
	if rebuild {
		cfg.Replication = rcfg
		cfg.Replication.Enabled = true
		cfg.Replication.MinCopies = copies
		if cfg.Replication.MaxCopies < copies {
			cfg.Replication.MaxCopies = copies
		}
	}
	row := SelfHealRow{Policy: kind.String(), MTTF: mttf, Copies: copies, Rebuild: rebuild}
	var latWeight float64
	for rep := 0; rep < r.Reps; rep++ {
		cfg.Seed = r.BaseSeed + uint64(rep)
		sys, err := newSystem(cfg)
		if err != nil {
			return SelfHealRow{}, fmt.Errorf("exper: self-heal sweep %v mttf %v copies %d rebuild %v: %w",
				kind, mttf, copies, rebuild, err)
		}
		res := sys.Run()
		if err := sys.Audit(); err != nil {
			return SelfHealRow{}, fmt.Errorf("exper: self-heal sweep %v mttf %v copies %d rebuild %v seed %d: %w",
				kind, mttf, copies, rebuild, cfg.Seed, err)
		}
		row.FragAvailability += res.FragAvailability
		row.MinFragAvailability += res.MinFragAvailability
		row.MeanResponse += res.MeanResponse
		row.ReplicasRebuilt += res.ReplicasRebuilt
		row.RebuildsAborted += res.RebuildsAborted
		row.DegradedReads += res.DegradedReads
		row.NoReplicaRejects += res.NoReplicaRejects
		row.Completed += res.Completed
		row.Rejected += res.QueriesRejected
		row.Crashes += res.SiteCrashes
		// The latency mean weights each replication by its rebuild count.
		if res.ReplicasRebuilt > 0 {
			row.MeanRebuildLatency += res.MeanRebuildLatency * float64(res.ReplicasRebuilt)
			latWeight += float64(res.ReplicasRebuilt)
		}
	}
	n := float64(r.Reps)
	row.FragAvailability /= n
	row.MinFragAvailability /= n
	row.MeanResponse /= n
	if latWeight > 0 {
		row.MeanRebuildLatency /= latWeight
	}
	return row, nil
}

// DefaultReplicationMTTFLevels returns the failure intensities used for
// the replication study in EXPERIMENTS.md: no failures, rare failures,
// and crashes frequent enough that rebuilds race the next outage.
func DefaultReplicationMTTFLevels() []float64 {
	return DefaultMTTFLevels()
}
