package exper

import (
	"testing"

	"dqalloc/internal/policy"
)

// TestSensitivitySweep is this PR's capstone: every axis of information
// degradation across the policy families, every replication audited
// with admission control (and its shed/defer conservation auditor)
// active. Any ledger violation surfaces as a sweep error here.
func TestSensitivitySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sensitivity sweep is slow")
	}
	r := Runner{Reps: 2, BaseSeed: 3, Warmup: 400, Measure: 4000}
	kinds := []policy.Kind{policy.Local, policy.Random, policy.BNQ, policy.LERT}
	sigmas := []float64{0, 0.5, 1}
	periods := []float64{0, 40}
	margins := []float64{0, 0.3}
	rows, err := SensitivitySweep(r, kinds, sigmas, periods, margins)
	if err != nil {
		t.Fatal(err)
	}
	costKinds := 0
	for _, k := range kinds {
		if costBased(k) {
			costKinds++
		}
	}
	want := len(kinds)*(len(sigmas)+len(periods)) + costKinds*len(margins)
	if len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	byAxis := map[string]int{}
	for _, row := range rows {
		byAxis[row.Axis]++
		if row.Completed == 0 {
			t.Errorf("%s %s=%v: no completions", row.Policy, row.Axis, row.Value)
		}
		if row.MeanResponse <= 0 {
			t.Errorf("%s %s=%v: non-positive mean response %v",
				row.Policy, row.Axis, row.Value, row.MeanResponse)
		}
		if row.HerdFrac < 0 || row.HerdFrac > 1 {
			t.Errorf("%s %s=%v: herd fraction %v outside [0,1]",
				row.Policy, row.Axis, row.Value, row.HerdFrac)
		}
		if row.Axis == "hysteresis" && !costBased(policyKindByName(t, row.Policy)) {
			t.Errorf("hysteresis row for non-selector policy %s", row.Policy)
		}
	}
	if byAxis["noise"] != len(kinds)*len(sigmas) ||
		byAxis["staleness"] != len(kinds)*len(periods) ||
		byAxis["hysteresis"] != costKinds*len(margins) {
		t.Errorf("axis row counts %v", byAxis)
	}

	// Injected noise must show up in the realized-error statistic for
	// every policy: sigma 1 rows carry strictly more estimate error than
	// sigma 0 rows.
	for _, k := range kinds {
		var at0, at1 float64
		for _, row := range rows {
			if row.Axis == "noise" && row.Policy == k.String() {
				switch row.Value {
				case 0:
					at0 = row.EstReadsErr
				case 1:
					at1 = row.EstReadsErr
				}
			}
		}
		if at1 <= at0 {
			t.Errorf("%v: EstReadsErr at sigma 1 (%v) not above sigma 0 (%v)", k, at1, at0)
		}
	}
}

// policyKindByName maps a printed policy name back to its Kind.
func policyKindByName(t *testing.T, name string) policy.Kind {
	t.Helper()
	for _, k := range []policy.Kind{
		policy.Local, policy.Random, policy.BNQ, policy.BNQRD, policy.LERT, policy.Work,
	} {
		if k.String() == name {
			return k
		}
	}
	t.Fatalf("unknown policy name %q", name)
	return 0
}

func TestSensitivitySweepRejectsEmptyAxes(t *testing.T) {
	r := Runner{Reps: 1, BaseSeed: 1, Warmup: 10, Measure: 100}
	if _, err := SensitivitySweep(r, []policy.Kind{policy.Local}, nil, nil, nil); err == nil {
		t.Error("empty axis levels accepted")
	}
}

func TestDefaultSensitivityLevels(t *testing.T) {
	for name, levels := range map[string][]float64{
		"noise":      DefaultNoiseLevels(),
		"staleness":  DefaultStalenessLevels(),
		"hysteresis": DefaultHysteresisLevels(),
	} {
		if len(levels) < 3 {
			t.Fatalf("%s: want at least 3 levels, got %d", name, len(levels))
		}
		if levels[0] != 0 {
			t.Errorf("%s: first level %v, want 0 baseline", name, levels[0])
		}
		for i := 1; i < len(levels); i++ {
			if levels[i] <= levels[i-1] {
				t.Errorf("%s: levels not strictly increasing: %v", name, levels)
			}
		}
	}
}
