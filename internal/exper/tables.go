package exper

import (
	"fmt"
	"sort"

	"dqalloc/internal/policy"
	"dqalloc/internal/system"
)

// comparedPolicies is the policy set of Tables 8 and 9.
var comparedPolicies = []policy.Kind{policy.Local, policy.BNQ, policy.BNQRD, policy.LERT}

// ImprovementRow is one row of Table 8 or Table 9: the LOCAL baseline and
// the percentage improvements of the dynamic policies.
type ImprovementRow struct {
	// X is the swept parameter's value (think_time for Table 8, mpl for
	// Table 9).
	X float64
	// RhoC is ρ_c, the CPU utilization under LOCAL.
	RhoC float64
	// WLocal is W̄_LOCAL.
	WLocal float64
	// VsLocal holds ΔW̄_{X,LOCAL}/W̄_LOCAL (%) for BNQ, BNQRD, LERT.
	VsLocal [3]float64
	// VsBNQ holds ΔW̄_{X,BNQ}/W̄_BNQ (%) for BNQRD, LERT.
	VsBNQ [2]float64
}

// improvementRow measures one configuration under the four compared
// policies and assembles the paper's improvement percentages.
func (r Runner) improvementRow(cfg system.Config, x float64) (ImprovementRow, error) {
	aggs, err := r.RunPolicies(cfg, comparedPolicies)
	if err != nil {
		return ImprovementRow{}, err
	}
	local, bnq, bnqrd, lert := aggs[0], aggs[1], aggs[2], aggs[3]
	return ImprovementRow{
		X:      x,
		RhoC:   local.CPUUtil,
		WLocal: local.MeanWait.Mean,
		VsLocal: [3]float64{
			Improvement(local.MeanWait.Mean, bnq.MeanWait.Mean),
			Improvement(local.MeanWait.Mean, bnqrd.MeanWait.Mean),
			Improvement(local.MeanWait.Mean, lert.MeanWait.Mean),
		},
		VsBNQ: [2]float64{
			Improvement(bnq.MeanWait.Mean, bnqrd.MeanWait.Mean),
			Improvement(bnq.MeanWait.Mean, lert.MeanWait.Mean),
		},
	}, nil
}

// Table8ThinkTimes is the think-time sweep of Table 8.
var Table8ThinkTimes = []float64{150, 200, 250, 300, 350, 400, 450}

// Table8 reproduces "Waiting time versus think time".
func Table8(r Runner) ([]ImprovementRow, error) {
	rows := make([]ImprovementRow, 0, len(Table8ThinkTimes))
	for _, think := range Table8ThinkTimes {
		cfg := system.Default()
		cfg.ThinkTime = think
		row, err := r.improvementRow(cfg, think)
		if err != nil {
			return nil, fmt.Errorf("exper: table 8 think %v: %w", think, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// MsgLengthRow is the msg_length = 2.0 variant the paper reports in prose
// after Table 8 ("the values of ΔW̄_{X,BNQ}/W̄_BNQ changed to 16.43 and
// 24.12 for X = BNQRD and LERT").
type MsgLengthRow struct {
	MsgLength  float64
	VsBNQRD    float64 // ΔW̄_{BNQRD,BNQ}/W̄_BNQ (%)
	VsLERT     float64 // ΔW̄_{LERT,BNQ}/W̄_BNQ (%)
	WBNQ       float64
	WLERT      float64
	SubnetBNQ  float64
	SubnetLERT float64
}

// TableMsgLength runs the msg_length variant at think_time 350.
func TableMsgLength(r Runner, msgLength float64) (MsgLengthRow, error) {
	cfg := system.Default()
	for i := range cfg.Classes {
		cfg.Classes[i].MsgLength = msgLength
	}
	aggs, err := r.RunPolicies(cfg, []policy.Kind{policy.BNQ, policy.BNQRD, policy.LERT})
	if err != nil {
		return MsgLengthRow{}, fmt.Errorf("exper: msg length %v: %w", msgLength, err)
	}
	bnq, bnqrd, lert := aggs[0], aggs[1], aggs[2]
	return MsgLengthRow{
		MsgLength:  msgLength,
		VsBNQRD:    Improvement(bnq.MeanWait.Mean, bnqrd.MeanWait.Mean),
		VsLERT:     Improvement(bnq.MeanWait.Mean, lert.MeanWait.Mean),
		WBNQ:       bnq.MeanWait.Mean,
		WLERT:      lert.MeanWait.Mean,
		SubnetBNQ:  bnq.SubnetUtil,
		SubnetLERT: lert.SubnetUtil,
	}, nil
}

// Table9MPLs is the multiprogramming-level sweep of Table 9.
var Table9MPLs = []int{15, 20, 25, 30, 35}

// Table9 reproduces "Waiting time versus mpl".
func Table9(r Runner) ([]ImprovementRow, error) {
	rows := make([]ImprovementRow, 0, len(Table9MPLs))
	for _, mpl := range Table9MPLs {
		cfg := system.Default()
		cfg.MPL = mpl
		row, err := r.improvementRow(cfg, float64(mpl))
		if err != nil {
			return nil, fmt.Errorf("exper: table 9 mpl %d: %w", mpl, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table10Targets is the response-time column of Table 10.
var Table10Targets = []float64{40, 50, 60, 70, 80}

// CapacityRow is one row of Table 10: the maximum mpl at which each
// policy still meets the expected-response-time target.
type CapacityRow struct {
	Target   float64
	MaxLocal int
	MaxLERT  int
}

// Table10 reproduces "Maximum mpl versus response time": for each target
// it searches the largest mpl whose mean response time stays within the
// target, for LOCAL and for LERT.
func Table10(r Runner) ([]CapacityRow, error) {
	const maxMPL = 60
	search := func(kind policy.Kind, target float64) (int, error) {
		// Mean response grows with mpl, so binary search the threshold.
		resp := make(map[int]float64)
		eval := func(mpl int) (float64, error) {
			if v, ok := resp[mpl]; ok {
				return v, nil
			}
			cfg := system.Default()
			cfg.MPL = mpl
			cfg.PolicyKind = kind
			agg, err := r.Run(cfg)
			if err != nil {
				return 0, err
			}
			resp[mpl] = agg.MeanResponse
			return agg.MeanResponse, nil
		}
		lo, hi := 1, maxMPL // invariant: lo meets the target (or nothing does)
		v, err := eval(lo)
		if err != nil {
			return 0, err
		}
		if v > target {
			return 0, nil
		}
		for lo < hi {
			mid := (lo + hi + 1) / 2
			v, err := eval(mid)
			if err != nil {
				return 0, err
			}
			if v <= target {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		return lo, nil
	}

	rows := make([]CapacityRow, 0, len(Table10Targets))
	for _, target := range Table10Targets {
		maxLocal, err := search(policy.Local, target)
		if err != nil {
			return nil, fmt.Errorf("exper: table 10 target %v: %w", target, err)
		}
		maxLERT, err := search(policy.LERT, target)
		if err != nil {
			return nil, fmt.Errorf("exper: table 10 target %v: %w", target, err)
		}
		rows = append(rows, CapacityRow{Target: target, MaxLocal: maxLocal, MaxLERT: maxLERT})
	}
	return rows, nil
}

// Table11Sites is the system-size sweep of Table 11.
var Table11Sites = []int{2, 4, 6, 8, 10}

// SitesRow is one row of Table 11: improvements over LOCAL and subnet
// utilizations for BNQ and LERT at one system size.
type SitesRow struct {
	NumSites   int
	WLocal     float64
	ImprBNQ    float64 // ΔW̄_{BNQ,LOCAL}/W̄_LOCAL (%)
	ImprLERT   float64 // ΔW̄_{LERT,LOCAL}/W̄_LOCAL (%)
	SubnetBNQ  float64 // subnet utilization under BNQ (%)
	SubnetLERT float64 // subnet utilization under LERT (%)
}

// Table11 reproduces "Waiting time and subnet utilization versus number
// of sites".
func Table11(r Runner) ([]SitesRow, error) {
	rows := make([]SitesRow, 0, len(Table11Sites))
	for _, n := range Table11Sites {
		cfg := system.Default()
		cfg.NumSites = n
		aggs, err := r.RunPolicies(cfg, []policy.Kind{policy.Local, policy.BNQ, policy.LERT})
		if err != nil {
			return nil, fmt.Errorf("exper: table 11 sites %d: %w", n, err)
		}
		local, bnq, lert := aggs[0], aggs[1], aggs[2]
		rows = append(rows, SitesRow{
			NumSites:   n,
			WLocal:     local.MeanWait.Mean,
			ImprBNQ:    Improvement(local.MeanWait.Mean, bnq.MeanWait.Mean),
			ImprLERT:   Improvement(local.MeanWait.Mean, lert.MeanWait.Mean),
			SubnetBNQ:  bnq.SubnetUtil * 100,
			SubnetLERT: lert.SubnetUtil * 100,
		})
	}
	return rows, nil
}

// Table12Probs is the class-mix sweep of Table 12.
var Table12Probs = []float64{0.3, 0.4, 0.5, 0.6, 0.7, 0.8}

// FairnessRow is one row of Table 12: waiting time and fairness versus
// the I/O-bound class probability.
type FairnessRow struct {
	ClassIOProb float64
	UtilRatio   float64 // ρ_d / ρ_c under LOCAL
	WLocal      float64
	ImprBNQ     float64 // ΔW̄_{BNQ,LOCAL}/W̄_LOCAL (%)
	ImprLERT    float64
	FLocal      float64
	// FImprBNQ and FImprLERT are ΔF_{X,LOCAL}/F_LOCAL (%): the reduction
	// in the magnitude of the class bias (negative = fairness worsened).
	FImprBNQ  float64
	FImprLERT float64
}

// Table12 reproduces "W̄ and F versus class_io_prob".
func Table12(r Runner) ([]FairnessRow, error) {
	rows := make([]FairnessRow, 0, len(Table12Probs))
	for _, pio := range Table12Probs {
		cfg := system.Default()
		cfg.ClassProbs = []float64{pio, 1 - pio}
		aggs, err := r.RunPolicies(cfg, []policy.Kind{policy.Local, policy.BNQ, policy.LERT})
		if err != nil {
			return nil, fmt.Errorf("exper: table 12 p_io %v: %w", pio, err)
		}
		local, bnq, lert := aggs[0], aggs[1], aggs[2]
		row := FairnessRow{
			ClassIOProb: pio,
			WLocal:      local.MeanWait.Mean,
			ImprBNQ:     Improvement(local.MeanWait.Mean, bnq.MeanWait.Mean),
			ImprLERT:    Improvement(local.MeanWait.Mean, lert.MeanWait.Mean),
			FLocal:      local.Fairness.Mean,
		}
		if local.CPUUtil > 0 {
			row.UtilRatio = local.DiskUtil / local.CPUUtil
		}
		row.FImprBNQ = fairnessImprovement(local.Fairness.Mean, bnq.Fairness.Mean)
		row.FImprLERT = fairnessImprovement(local.Fairness.Mean, lert.Fairness.Mean)
		rows = append(rows, row)
	}
	return rows, nil
}

// fairnessImprovement returns the percentage reduction in |F| relative
// to the LOCAL case, matching the paper's ΔF_{X,LOCAL}/F_LOCAL column
// (which can be negative when dynamic allocation overshoots the bias).
func fairnessImprovement(fLocal, fX float64) float64 {
	abs := func(v float64) float64 {
		if v < 0 {
			return -v
		}
		return v
	}
	if abs(fLocal) == 0 {
		return 0
	}
	return (abs(fLocal) - abs(fX)) / abs(fLocal) * 100
}

// CrossoverMPL interpolates Table 9-style data to find where two response
// curves cross a target; exported for the capacity-planning example.
// Rows must be sorted by X.
func CrossoverMPL(rows []ImprovementRow, wLimit float64) (float64, bool) {
	sorted := append([]ImprovementRow(nil), rows...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].X < sorted[j].X })
	for i := 1; i < len(sorted); i++ {
		a, b := sorted[i-1], sorted[i]
		if a.WLocal <= wLimit && b.WLocal >= wLimit && b.WLocal != a.WLocal {
			t := (wLimit - a.WLocal) / (b.WLocal - a.WLocal)
			return a.X + t*(b.X-a.X), true
		}
	}
	return 0, false
}
