package exper

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"dqalloc/internal/policy"
	"dqalloc/internal/rng"
	"dqalloc/internal/system"
)

// tiny returns a runner sized for unit tests.
func tiny() Runner {
	return Runner{Reps: 1, BaseSeed: 7, Warmup: 1000, Measure: 8000}
}

func TestRunnerValidate(t *testing.T) {
	if (Runner{Reps: 0}).Validate() == nil {
		t.Error("zero reps accepted")
	}
	if (Runner{Reps: 1, Warmup: -1}).Validate() == nil {
		t.Error("negative warmup accepted")
	}
	if err := Quick().Validate(); err != nil {
		t.Errorf("Quick() invalid: %v", err)
	}
	if err := Full().Validate(); err != nil {
		t.Errorf("Full() invalid: %v", err)
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(100, 60); got != 40 {
		t.Errorf("Improvement(100,60) = %v, want 40", got)
	}
	if got := Improvement(0, 60); got != 0 {
		t.Errorf("Improvement with zero ref = %v, want 0", got)
	}
	if got := Improvement(50, 60); got != -20 {
		t.Errorf("degradation = %v, want -20", got)
	}
}

// TestImprovementAntisymmetric is a property test: waits displaced
// symmetrically around the reference yield equal and opposite
// improvements, and the reference itself yields zero.
func TestImprovementAntisymmetric(t *testing.T) {
	f := func(refRaw, deltaRaw uint16) bool {
		ref := 1 + float64(refRaw)/100     // 1 .. ~656
		delta := float64(deltaRaw) / 65536 // [0, 1): keeps ref±Δ positive
		d := ref * delta
		up, down := Improvement(ref, ref+d), Improvement(ref, ref-d)
		if math.Abs(up+down) > 1e-9 {
			t.Logf("Improvement(%v, %v) = %v vs Improvement(%v, %v) = %v",
				ref, ref+d, up, ref, ref-d, down)
			return false
		}
		return Improvement(ref, ref) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRunAggregates(t *testing.T) {
	r := Runner{Reps: 3, BaseSeed: 1, Warmup: 500, Measure: 5000}
	agg, err := r.Run(system.Default())
	if err != nil {
		t.Fatal(err)
	}
	if agg.Policy != "LERT" {
		t.Errorf("Policy = %q, want LERT", agg.Policy)
	}
	if agg.MeanWait.N != 3 {
		t.Errorf("CI over %d reps, want 3", agg.MeanWait.N)
	}
	if agg.MeanWait.Mean <= 0 || agg.Completed == 0 {
		t.Errorf("degenerate aggregate: %+v", agg)
	}
	if agg.CPUUtil <= 0 || agg.CPUUtil >= 1 {
		t.Errorf("CPU utilization %v out of range", agg.CPUUtil)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	serial := Runner{Reps: 4, BaseSeed: 11, Warmup: 500, Measure: 5000}
	parallel := serial
	parallel.Parallel = true
	a, err := serial.Run(system.Default())
	if err != nil {
		t.Fatal(err)
	}
	b, err := parallel.Run(system.Default())
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanWait != b.MeanWait || a.Completed != b.Completed || a.Fairness != b.Fairness {
		t.Errorf("parallel aggregate differs from serial:\n%+v\n%+v", a, b)
	}
}

func TestParallelRejectsCustomPolicy(t *testing.T) {
	r := Runner{Reps: 2, BaseSeed: 1, Warmup: 200, Measure: 2000, Parallel: true}
	cfg := system.Default()
	pol, err := policy.NewThreshold(3, 2, rng.NewStream(1))
	if err != nil {
		t.Fatal(err)
	}
	cfg.CustomPolicy = pol // stateful: a shared value cannot run concurrently
	if _, err := r.Run(cfg); !errors.Is(err, ErrParallelCustomPolicy) {
		t.Fatalf("Run with Parallel+CustomPolicy: err = %v, want ErrParallelCustomPolicy", err)
	}

	// Clearing Parallel — what the error tells the caller to do — works.
	r.Parallel = false
	agg, err := r.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Completed == 0 {
		t.Error("serial custom-policy run completed nothing")
	}
}

func TestParallelWorkerPool(t *testing.T) {
	// A worker pool smaller than Reps must still fill every replication
	// slot and produce the exact serial aggregate.
	serial := Runner{Reps: 5, BaseSeed: 7, Warmup: 300, Measure: 3000}
	pooled := serial
	pooled.Parallel = true
	pooled.Workers = 2
	a, err := serial.Run(system.Default())
	if err != nil {
		t.Fatal(err)
	}
	b, err := pooled.Run(system.Default())
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanWait != b.MeanWait || a.Completed != b.Completed || a.Fairness != b.Fairness {
		t.Errorf("worker-pool aggregate differs from serial:\n%+v\n%+v", a, b)
	}
	// Workers beyond Reps are harmless (pool is capped at Reps).
	pooled.Workers = 64
	c, err := pooled.Run(system.Default())
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanWait != c.MeanWait {
		t.Errorf("oversized worker pool changed the aggregate: %v vs %v", a.MeanWait, c.MeanWait)
	}
}

func TestRunToPrecision(t *testing.T) {
	r := Runner{Reps: 2, BaseSeed: 5, Warmup: 500, Measure: 4000, Parallel: true}
	agg, reps, err := r.RunToPrecision(system.Default(), 0.10, 16)
	if err != nil {
		t.Fatal(err)
	}
	if reps < 2 || reps > 16 {
		t.Errorf("reps = %d outside [2,16]", reps)
	}
	if agg.MeanWait.Mean <= 0 {
		t.Error("degenerate aggregate")
	}
	// Either precision was met or the cap was hit.
	rel := agg.MeanWait.HalfWide / agg.MeanWait.Mean
	if rel > 0.10 && reps < 16 {
		t.Errorf("stopped early at rel width %v with %d reps", rel, reps)
	}

	if _, _, err := r.RunToPrecision(system.Default(), 0, 4); err == nil {
		t.Error("non-positive relWidth accepted")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if _, err := (Runner{Reps: 0}).Run(system.Default()); err == nil {
		t.Error("invalid runner accepted")
	}
	bad := system.Default()
	bad.NumSites = 0
	if _, err := tiny().Run(bad); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestTable5And6Grids(t *testing.T) {
	t5, err := Table5()
	if err != nil {
		t.Fatal(err)
	}
	t6, err := Table6()
	if err != nil {
		t.Fatal(err)
	}
	if len(t5) != 6 || len(t6) != 6 {
		t.Fatalf("grid rows = %d/%d, want 6/6", len(t5), len(t6))
	}
	for _, row := range t5 {
		if len(row.Cells) != 12 {
			t.Fatalf("row %s has %d cells, want 12", row.Ratio.Label(), len(row.Cells))
		}
		for _, c := range row.Cells {
			if c.Value < 0 || c.Value > 1 {
				t.Errorf("WIF %v outside [0,1]", c.Value)
			}
		}
	}
	// Table 6's factors are generally much larger than Table 5's.
	mean := func(rows []FactorRow) float64 {
		sum, n := 0.0, 0
		for _, r := range rows {
			for _, c := range r.Cells {
				sum += c.Value
				n++
			}
		}
		return sum / float64(n)
	}
	if mean(t6) <= mean(t5) {
		t.Errorf("mean FIF (%v) not above mean WIF (%v)", mean(t6), mean(t5))
	}
}

func TestTable8Shape(t *testing.T) {
	rows, err := Table8(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Table8ThinkTimes) {
		t.Fatalf("rows = %d, want %d", len(rows), len(Table8ThinkTimes))
	}
	for i, row := range rows {
		if row.X != Table8ThinkTimes[i] {
			t.Errorf("row %d X = %v", i, row.X)
		}
		for p, impr := range row.VsLocal {
			if impr <= 0 {
				t.Errorf("think %v: policy %d improvement %v not positive", row.X, p, impr)
			}
		}
	}
	// Utilization falls and W_LOCAL falls as think time grows.
	for i := 1; i < len(rows); i++ {
		if rows[i].RhoC >= rows[i-1].RhoC {
			t.Errorf("rho_c not decreasing with think time: %v -> %v", rows[i-1].RhoC, rows[i].RhoC)
		}
		if rows[i].WLocal >= rows[i-1].WLocal {
			t.Errorf("W_LOCAL not decreasing with think time: %v -> %v", rows[i-1].WLocal, rows[i].WLocal)
		}
	}
}

func TestTable9Shape(t *testing.T) {
	rows, err := Table9(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Table9MPLs) {
		t.Fatalf("rows = %d, want %d", len(rows), len(Table9MPLs))
	}
	// W_LOCAL and utilization grow with mpl.
	for i := 1; i < len(rows); i++ {
		if rows[i].WLocal <= rows[i-1].WLocal {
			t.Errorf("W_LOCAL not increasing with mpl")
		}
		if rows[i].RhoC <= rows[i-1].RhoC {
			t.Errorf("rho_c not increasing with mpl")
		}
	}
}

func TestTableMsgLengthDemandAwareEdge(t *testing.T) {
	r := Runner{Reps: 2, BaseSeed: 1, Warmup: 2000, Measure: 20000}
	short, err := TableMsgLength(r, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	long, err := TableMsgLength(r, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports that the demand-aware policies' edge over BNQ
	// grows with msg_length. In our model BNQRD's edge holds roughly flat
	// and LERT's shrinks, eroded by ring queueing that Figure 6's cost
	// function does not price (divergence analyzed in EXPERIMENTS.md).
	// Assert the stable parts: both policies keep beating BNQ at both
	// message lengths, and the ring load grows with msg_length.
	for _, row := range []MsgLengthRow{short, long} {
		if row.VsBNQRD <= 0 || row.VsLERT <= 0 {
			t.Errorf("msg %v: demand-aware policy not beating BNQ: %+v", row.MsgLength, row)
		}
	}
	// Heavier messages load the ring roughly proportionally.
	if long.SubnetBNQ <= short.SubnetBNQ {
		t.Errorf("subnet utilization did not grow with msg_length: %v vs %v",
			short.SubnetBNQ, long.SubnetBNQ)
	}
}

func TestTable10Capacity(t *testing.T) {
	r := Runner{Reps: 1, BaseSeed: 3, Warmup: 1000, Measure: 10000}
	rows, err := Table10(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Table10Targets) {
		t.Fatalf("rows = %d, want %d", len(rows), len(Table10Targets))
	}
	for i, row := range rows {
		// LERT must sustain at least as many terminals as LOCAL.
		if row.MaxLERT < row.MaxLocal {
			t.Errorf("target %v: LERT max mpl %d < LOCAL %d", row.Target, row.MaxLERT, row.MaxLocal)
		}
		// Rows are monotone in the target.
		if i > 0 && (row.MaxLocal < rows[i-1].MaxLocal || row.MaxLERT < rows[i-1].MaxLERT) {
			t.Errorf("capacity not monotone in target at row %d", i)
		}
	}
	// The paper's headline: 20–50%% more terminals under LERT. Allow a
	// wide band for the tiny runner.
	first := rows[0]
	if first.MaxLocal > 0 {
		gain := float64(first.MaxLERT-first.MaxLocal) / float64(first.MaxLocal)
		if gain < 0.05 {
			t.Errorf("capacity gain = %v, want noticeable (> 5%%)", gain)
		}
	}
}

func TestTable11Shape(t *testing.T) {
	rows, err := Table11(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Table11Sites) {
		t.Fatalf("rows = %d, want %d", len(rows), len(Table11Sites))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].SubnetBNQ <= rows[i-1].SubnetBNQ {
			t.Errorf("subnet utilization not increasing with sites")
		}
	}
	// The improvement peaks in the interior (6–8 sites), not at 2 or 10.
	best := 0
	for i, row := range rows {
		if row.ImprLERT > rows[best].ImprLERT {
			best = i
		}
	}
	if rows[best].NumSites == 2 {
		t.Errorf("LERT improvement maximal at 2 sites; paper peaks at 6-8")
	}
	for _, row := range rows {
		if row.ImprLERT <= 0 || row.ImprBNQ <= 0 {
			t.Errorf("sites %d: non-positive improvement", row.NumSites)
		}
	}
}

func TestTable12Shape(t *testing.T) {
	rows, err := Table12(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Table12Probs) {
		t.Fatalf("rows = %d, want %d", len(rows), len(Table12Probs))
	}
	// ρ_d/ρ_c grows with p_io; F_LOCAL crosses from negative to positive.
	for i := 1; i < len(rows); i++ {
		if rows[i].UtilRatio <= rows[i-1].UtilRatio {
			t.Errorf("utilization ratio not increasing with p_io")
		}
	}
	if rows[0].FLocal >= 0 {
		t.Errorf("F_LOCAL(0.3) = %v, want negative", rows[0].FLocal)
	}
	if rows[len(rows)-1].FLocal <= 0 {
		t.Errorf("F_LOCAL(0.8) = %v, want positive", rows[len(rows)-1].FLocal)
	}
	// Dynamic allocation shrinks |F| at the skewed mixes.
	for _, i := range []int{0, len(rows) - 1} {
		if rows[i].FImprLERT <= 0 {
			t.Errorf("p_io %v: LERT fairness improvement %v not positive",
				rows[i].ClassIOProb, rows[i].FImprLERT)
		}
	}
}

func TestRunPoliciesOrder(t *testing.T) {
	aggs, err := tiny().RunPolicies(system.Default(), []policy.Kind{policy.Local, policy.LERT})
	if err != nil {
		t.Fatal(err)
	}
	if aggs[0].Policy != "LOCAL" || aggs[1].Policy != "LERT" {
		t.Errorf("policy order = %q/%q", aggs[0].Policy, aggs[1].Policy)
	}
}

func TestCrossoverMPL(t *testing.T) {
	rows := []ImprovementRow{
		{X: 10, WLocal: 10},
		{X: 20, WLocal: 30},
	}
	x, ok := CrossoverMPL(rows, 20)
	if !ok || math.Abs(x-15) > 1e-9 {
		t.Errorf("crossover = %v/%v, want 15/true", x, ok)
	}
	if _, ok := CrossoverMPL(rows, 99); ok {
		t.Error("crossover found beyond data range")
	}
}

func TestFairnessImprovement(t *testing.T) {
	if got := fairnessImprovement(-0.4, -0.1); math.Abs(got-75) > 1e-9 {
		t.Errorf("fairnessImprovement(-0.4,-0.1) = %v, want 75", got)
	}
	if got := fairnessImprovement(0.2, 0.3); math.Abs(got+50) > 1e-9 {
		t.Errorf("worsened fairness = %v, want -50", got)
	}
	if got := fairnessImprovement(0, 0.3); got != 0 {
		t.Errorf("zero baseline = %v, want 0", got)
	}
}
