package exper

import (
	"fmt"

	"dqalloc/internal/fault"
	"dqalloc/internal/loadinfo"
	"dqalloc/internal/policy"
	"dqalloc/internal/system"
)

// GrayFailureRow is one cell of the gray-failure study: one allocation
// policy at one fail-slow severity, measured three ways — clean (no
// fail-slow), blind (fail-slow, no defenses), and aware (fail-slow with
// the suspicion detector and straggler hedging on) — all averaged over
// the runner's replications with common random numbers.
type GrayFailureRow struct {
	// Policy is the allocation policy's name.
	Policy string
	// Factor is the fail-slow severity (service-time multiplier).
	Factor float64
	// CleanResponse, BlindResponse, and AwareResponse are the mean
	// response times of the three legs.
	CleanResponse float64
	BlindResponse float64
	AwareResponse float64
	// Recovery is the fraction of the gray-failure degradation the
	// defenses clawed back: (Blind − Aware) / (Blind − Clean). Zero when
	// the episodes did not degrade the blind run at all; negative means
	// the defenses hurt.
	Recovery float64
	// SlowEpisodes is the total fail-slow episodes across the blind
	// replications (the aware legs see the same episode schedule —
	// injection draws from a dedicated stream).
	SlowEpisodes uint64
	// DegradedFrac is the mean fraction of site-time spent degraded in
	// the blind legs.
	DegradedFrac float64
	// SuspectTransfers, Hedged, HedgeWins, and HedgeWinsVsSlow total the
	// defense activity across the aware replications.
	SuspectTransfers uint64
	Hedged           uint64
	HedgeWins        uint64
	HedgeWinsVsSlow  uint64
	// Completed and Lost are totals across the aware replications.
	Completed uint64
	Lost      uint64
}

// GrayFailureSweep measures how much of a fail-slow (gray failure)
// response-time hit the detection stack recovers, per policy and
// severity. fcfg supplies the episode schedule (SlowMTTF/SlowMTTR and,
// optionally, crashes and brownouts); its SlowFactor is overridden per
// severity level, and the clean leg zeroes SlowMTTF so the same seeds
// run without episodes. Every replication of every leg is fully audited:
// the rate-scaling and suspicion paths are exactly where conservation
// bugs would hide.
//
// The study behind the paper's resilience conjecture, extended to
// failures the crash detector cannot see: a gray site keeps answering
// and keeps broadcasting load reports, so only realized-slowdown
// evidence (the suspicion scorer) or racing clones (hedging) can route
// around it. LOCAL shows the cleanest contrast — it never reads the
// load table, so without the detector every home query crawls through
// every episode — while cost-based policies already dodge partially via
// the victim's growing backlog.
// Additional opts mutate each cell's configuration before it runs (all
// three legs identically) — typically easing ThinkTime toward moderate
// load: at the Table-7 default the 10× site saturates, which both
// starves the detector of completion samples and leaves the survivors
// no headroom to absorb the displaced stream, so the saturated regime
// caps how much any detector can recover.
func GrayFailureSweep(r Runner, kinds []policy.Kind, factors []float64, fcfg fault.Config, opts ...func(*system.Config)) ([]GrayFailureRow, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	if len(factors) == 0 {
		return nil, fmt.Errorf("exper: gray-failure sweep: no severity levels")
	}
	if !fcfg.SlowFaults() {
		return nil, fmt.Errorf("exper: gray-failure sweep: fault config has no fail-slow episodes")
	}
	rows := make([]GrayFailureRow, 0, len(kinds)*len(factors))
	for _, kind := range kinds {
		// The clean leg is severity-independent: one set of replications
		// per policy, reused across factors.
		cleanCfg := r.applyHorizons(system.Default())
		cleanCfg.PolicyKind = kind
		cleanCfg.Audit = true
		cleanCfg.Fault = fcfg
		cleanCfg.Fault.SlowMTTF = 0 // no episodes; everything else identical
		for _, opt := range opts {
			opt(&cleanCfg)
		}
		clean, err := grayLeg(r, cleanCfg, "clean", nil)
		if err != nil {
			return nil, err
		}
		for _, factor := range factors {
			blindCfg := r.applyHorizons(system.Default())
			blindCfg.PolicyKind = kind
			blindCfg.Audit = true
			blindCfg.Fault = fcfg
			blindCfg.Fault.SlowFactor = factor
			for _, opt := range opts {
				opt(&blindCfg)
			}

			awareCfg := blindCfg
			awareCfg.Suspect = loadinfo.DefaultSuspect()
			awareCfg.Hedge = system.DefaultHedge()

			row := GrayFailureRow{Policy: kind.String(), Factor: factor}
			blind, err := grayLeg(r, blindCfg, "blind", func(res *system.Results) {
				row.SlowEpisodes += res.SlowEpisodes
				var degraded float64
				for _, d := range res.DegradedTime {
					degraded += d
				}
				if res.MeasuredTime > 0 {
					row.DegradedFrac += degraded /
						(float64(len(res.DegradedTime)) * res.MeasuredTime)
				}
			})
			if err != nil {
				return nil, err
			}
			aware, err := grayLeg(r, awareCfg, "aware", func(res *system.Results) {
				row.SuspectTransfers += res.SuspectTransfers
				row.Hedged += res.Hedged
				row.HedgeWins += res.HedgeWins
				row.HedgeWinsVsSlow += res.HedgeWinsVsSlow
				row.Completed += res.Completed
				row.Lost += res.QueriesLost
			})
			if err != nil {
				return nil, err
			}
			row.CleanResponse = clean
			row.BlindResponse = blind
			row.AwareResponse = aware
			row.DegradedFrac /= float64(r.Reps)
			if hit := blind - clean; hit > 0 {
				row.Recovery = (blind - aware) / hit
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// grayLeg runs one audited leg of the sweep and returns its mean
// response time, feeding each replication's results to collect when set.
func grayLeg(r Runner, cfg system.Config, leg string, collect func(*system.Results)) (float64, error) {
	var mean float64
	for rep := 0; rep < r.Reps; rep++ {
		cfg.Seed = r.BaseSeed + uint64(rep)
		sys, err := newSystem(cfg)
		if err != nil {
			return 0, fmt.Errorf("exper: gray-failure sweep %s %s: %w", cfg.PolicyName(), leg, err)
		}
		res := sys.Run()
		if err := sys.Audit(); err != nil {
			return 0, fmt.Errorf("exper: gray-failure sweep %s %s seed %d: %w",
				cfg.PolicyName(), leg, cfg.Seed, err)
		}
		mean += res.MeanResponse
		if collect != nil {
			collect(&res)
		}
	}
	return mean / float64(r.Reps), nil
}

// DefaultGrayFactors returns the severity ladder used in EXPERIMENTS.md:
// mild, painful, and crippling service-time multipliers.
func DefaultGrayFactors() []float64 {
	return []float64{4, 10, 25}
}
