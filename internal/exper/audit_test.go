package exper

import (
	"fmt"
	"testing"

	"dqalloc/internal/policy"
	"dqalloc/internal/system"
)

// auditConfigs enumerates the configurations behind every simulation
// table (8, 9, 11, 12, the msg_length variant, and Table 10's deep end),
// crossed with the policies each table compares.
func auditConfigs() []struct {
	name string
	cfg  system.Config
} {
	var out []struct {
		name string
		cfg  system.Config
	}
	add := func(name string, cfg system.Config, kinds []policy.Kind) {
		for _, k := range kinds {
			c := cfg
			c.PolicyKind = k
			out = append(out, struct {
				name string
				cfg  system.Config
			}{fmt.Sprintf("%s/%v", name, k), c})
		}
	}
	threePolicies := []policy.Kind{policy.Local, policy.BNQ, policy.LERT}

	for _, think := range Table8ThinkTimes {
		cfg := system.Default()
		cfg.ThinkTime = think
		add(fmt.Sprintf("table8/think=%v", think), cfg, comparedPolicies)
	}
	for _, mpl := range Table9MPLs {
		cfg := system.Default()
		cfg.MPL = mpl
		add(fmt.Sprintf("table9/mpl=%d", mpl), cfg, comparedPolicies)
	}
	for _, msgLength := range []float64{1.0, 2.0} {
		cfg := system.Default()
		for i := range cfg.Classes {
			cfg.Classes[i].MsgLength = msgLength
		}
		add(fmt.Sprintf("msglength/%v", msgLength), cfg,
			[]policy.Kind{policy.BNQ, policy.BNQRD, policy.LERT})
	}
	// Table 10's binary search probes deep saturation; spot-check its
	// upper range.
	for _, mpl := range []int{45, 60} {
		cfg := system.Default()
		cfg.MPL = mpl
		add(fmt.Sprintf("table10/mpl=%d", mpl), cfg,
			[]policy.Kind{policy.Local, policy.LERT})
	}
	for _, n := range Table11Sites {
		cfg := system.Default()
		cfg.NumSites = n
		add(fmt.Sprintf("table11/sites=%d", n), cfg, threePolicies)
	}
	for _, pio := range Table12Probs {
		cfg := system.Default()
		cfg.ClassProbs = []float64{pio, 1 - pio}
		add(fmt.Sprintf("table12/pio=%v", pio), cfg, threePolicies)
	}
	return out
}

// TestAuditAllTableConfigs runs every table configuration under the full
// runtime auditor set at reduced horizons: conservation, utilization
// bounds, Little's law, clock monotonicity, and ring conservation must
// all hold on each.
func TestAuditAllTableConfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("audits every table configuration")
	}
	for _, tc := range auditConfigs() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := tc.cfg
			cfg.Seed = 9
			cfg.Warmup = 800
			cfg.Measure = 6000
			cfg.Audit = true
			sys, err := system.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			r := sys.Run()
			if r.Completed == 0 {
				t.Fatal("no completions")
			}
			if err := sys.Audit(); err != nil {
				t.Errorf("auditor violation: %v", err)
			}
		})
	}
}
