package exper

import (
	"reflect"
	"sync/atomic"
	"testing"

	"dqalloc/internal/system"
)

// countSystems stubs newSystem to count model constructions; the cleanup
// restores the real constructor.
func countSystems(t *testing.T) *atomic.Int64 {
	t.Helper()
	var n atomic.Int64
	orig := newSystem
	newSystem = func(cfg system.Config) (*system.System, error) {
		n.Add(1)
		return orig(cfg)
	}
	t.Cleanup(func() { newSystem = orig })
	return &n
}

// TestRunToPrecisionReusesReplications drives RunToPrecision to its cap
// with an unreachable precision target and checks each doubling only
// simulated the new seeds: reaching 8 replications must build exactly 8
// systems, not 2+4+8.
func TestRunToPrecisionReusesReplications(t *testing.T) {
	built := countSystems(t)
	r := Runner{Reps: 2, BaseSeed: 5, Warmup: 300, Measure: 3000}
	_, reps, err := r.RunToPrecision(system.Default(), 1e-9, 8)
	if err != nil {
		t.Fatal(err)
	}
	if reps != 8 {
		t.Fatalf("reps = %d, want the cap 8", reps)
	}
	if got := built.Load(); got != 8 {
		t.Errorf("built %d systems for 8 replications, want 8 (earlier batches re-run)", got)
	}
}

// TestParallelReplicationsBitIdentical strengthens the runner's
// "identical to serial" claim into a full-structure regression test: the
// parallel path must produce replication Results — trace digests
// included — that are bit-for-bit equal to the serial path's.
func TestParallelReplicationsBitIdentical(t *testing.T) {
	cfg := system.Default()
	cfg.TraceDigest = true
	cfg.Audit = true
	serial := Runner{Reps: 4, BaseSeed: 11, Warmup: 500, Measure: 5000}
	parallel := serial
	parallel.Parallel = true

	a, err := serial.replicate(serial.applyHorizons(cfg))
	if err != nil {
		t.Fatal(err)
	}
	b, err := parallel.replicate(parallel.applyHorizons(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("parallel results differ from serial:\n%+v\n%+v", a, b)
	}
	for i, res := range a {
		if res.TraceDigest == 0 {
			t.Errorf("replication %d: zero trace digest", i)
		}
	}
}

// TestRunToPrecisionMatchesFixedBudget checks the incremental seed set is
// the same one a fixed-budget run uses: the final aggregate must be
// bit-identical to Runner{Reps: cap}.Run on the same configuration.
func TestRunToPrecisionMatchesFixedBudget(t *testing.T) {
	r := Runner{Reps: 2, BaseSeed: 5, Warmup: 300, Measure: 3000}
	agg, reps, err := r.RunToPrecision(system.Default(), 1e-9, 8)
	if err != nil {
		t.Fatal(err)
	}
	fixed := r
	fixed.Reps = reps
	want, err := fixed.Run(system.Default())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(agg, want) {
		t.Errorf("incremental aggregate differs from fixed-budget run:\n%+v\n%+v", agg, want)
	}
}
