// Package exper defines one reproduction harness per table of the
// paper's evaluation: the analytical WIF/FIF grids of Tables 5–6 and the
// simulation studies of Tables 8–12 (plus the msg_length variant reported
// in the prose of Section 5.2). Each harness returns typed rows carrying
// the same quantities the paper prints.
package exper

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"dqalloc/internal/policy"
	"dqalloc/internal/sim"
	"dqalloc/internal/stats"
	"dqalloc/internal/system"
)

// ErrParallelCustomPolicy is returned when Parallel is combined with a
// configuration carrying a CustomPolicy. A custom policy is a single
// shared value — typically stateful (probe counters, thresholds, RNG
// streams) — so replications sharing it cannot run concurrently, and
// silently serializing would misreport how the numbers were produced.
// Callers that want serial execution must clear Parallel explicitly.
var ErrParallelCustomPolicy = errors.New("exper: Parallel replication is not available for CustomPolicy configurations (clear Parallel to run serially)")

// Runner fixes the replication discipline for the simulation studies:
// every configuration is run Reps times with seeds BaseSeed, BaseSeed+1,
// …, and results are averaged. Policies being compared share the same
// seed sequence (common random numbers), which sharpens the improvement
// estimates the paper's tables report.
type Runner struct {
	// Reps is the number of independent replications per configuration.
	Reps int
	// BaseSeed is the first replication's seed.
	BaseSeed uint64
	// Warmup and Measure override the configuration's horizons when
	// positive.
	Warmup, Measure float64
	// Parallel runs replications on a pool of worker goroutines.
	// Results are identical to the serial order (each replication owns
	// its seed and its entire model); only wall-clock time changes.
	// Each worker runs many replications back to back, reusing its
	// goroutine and keeping at most Workers models live at once, so
	// peak memory stays bounded however large Reps grows. Not available
	// for configurations carrying a CustomPolicy (a single shared,
	// possibly stateful value): Run returns ErrParallelCustomPolicy
	// rather than silently serializing.
	Parallel bool
	// Workers caps the worker pool used by Parallel mode. Zero or
	// negative means GOMAXPROCS. Ignored when Parallel is false.
	Workers int
	// Scheduler selects the kernel's future-event list for every
	// replication (the runner owns this choice, overwriting whatever the
	// configuration carries). The zero value is sim.Calendar, the
	// default; sim.Heap runs the reference implementation. Results are
	// identical either way — the scheduler trades only speed — so
	// benchmark harnesses can compare implementations on byte-identical
	// workloads.
	Scheduler sim.Impl
}

// Quick returns a runner sized for tests and demos (a few seconds per
// table).
func Quick() Runner {
	return Runner{Reps: 2, BaseSeed: 1, Warmup: 2000, Measure: 20000}
}

// Full returns the runner used for the numbers recorded in
// EXPERIMENTS.md.
func Full() Runner {
	return Runner{Reps: 5, BaseSeed: 1, Warmup: 5000, Measure: 60000}
}

// Validate reports the first runner error, if any.
func (r Runner) Validate() error {
	if r.Reps < 1 {
		return fmt.Errorf("exper: Reps %d < 1", r.Reps)
	}
	if r.Warmup < 0 || r.Measure < 0 {
		return fmt.Errorf("exper: negative horizon")
	}
	return nil
}

// Aggregate summarizes the replications of one configuration.
type Aggregate struct {
	// Policy is the allocation policy's name.
	Policy string
	// MeanWait is W̄ with a 95% replication confidence interval.
	MeanWait stats.CI
	// Fairness is F with a 95% replication confidence interval.
	Fairness stats.CI
	// MeanResponse, CPUUtil, DiskUtil, SubnetUtil, Throughput and
	// RemoteFrac are replication means.
	MeanResponse float64
	CPUUtil      float64
	DiskUtil     float64
	SubnetUtil   float64
	Throughput   float64
	RemoteFrac   float64
	// Completed is the total completions across replications.
	Completed uint64
	// Events is the total count of kernel events fired across
	// replications — the numerator of aggregate events/sec when the
	// replication batch is timed (dqbench's parallel suite).
	Events uint64
}

// Run executes cfg across the runner's replications and aggregates.
func (r Runner) Run(cfg system.Config) (Aggregate, error) {
	if err := r.Validate(); err != nil {
		return Aggregate{}, err
	}
	results, err := r.replicate(r.applyHorizons(cfg))
	if err != nil {
		return Aggregate{}, err
	}
	return aggregate(cfg.PolicyName(), results), nil
}

// applyHorizons overlays the runner's warmup/measure overrides, when
// set, and its scheduler selection on the configuration.
func (r Runner) applyHorizons(cfg system.Config) system.Config {
	if r.Warmup > 0 {
		cfg.Warmup = r.Warmup
	}
	if r.Measure > 0 {
		cfg.Measure = r.Measure
	}
	cfg.Scheduler = r.Scheduler
	return cfg
}

// aggregate summarizes a batch of replication results. The aggregate of
// a seed set is independent of how the replications were batched, which
// lets RunToPrecision grow the set incrementally.
func aggregate(policyName string, results []system.Results) Aggregate {
	waits := make([]float64, 0, len(results))
	fairs := make([]float64, 0, len(results))
	agg := Aggregate{Policy: policyName}
	for _, res := range results {
		waits = append(waits, res.MeanWait)
		fairs = append(fairs, res.Fairness)
		agg.MeanResponse += res.MeanResponse
		agg.CPUUtil += res.CPUUtil
		agg.DiskUtil += res.DiskUtil
		agg.SubnetUtil += res.SubnetUtil
		agg.Throughput += res.Throughput
		agg.RemoteFrac += res.RemoteFrac
		agg.Completed += res.Completed
		agg.Events += res.EventsFired
	}
	n := float64(len(results))
	agg.MeanWait = stats.MeanCI(waits)
	agg.Fairness = stats.MeanCI(fairs)
	agg.MeanResponse /= n
	agg.CPUUtil /= n
	agg.DiskUtil /= n
	agg.SubnetUtil /= n
	agg.Throughput /= n
	agg.RemoteFrac /= n
	return agg
}

// newSystem builds one replication's model; tests stub it to count
// constructions.
var newSystem = system.New

// replicate runs the configuration once per replication seed, serially
// or — when Parallel is set — on a pool of worker goroutines. Each
// replication builds its own System, so there is no shared mutable
// state; results land at their replication index, making the output
// independent of worker interleaving.
func (r Runner) replicate(cfg system.Config) ([]system.Results, error) {
	if r.Parallel && cfg.CustomPolicy != nil {
		return nil, ErrParallelCustomPolicy
	}
	results := make([]system.Results, r.Reps)
	if !r.Parallel {
		for i := range results {
			cfg.Seed = r.BaseSeed + uint64(i)
			sys, err := newSystem(cfg)
			if err != nil {
				return nil, err
			}
			results[i] = sys.Run()
		}
		return results, nil
	}

	// Worker pool: each worker claims replication indices from a shared
	// counter and runs them back to back on its own goroutine, so at
	// most `workers` models are live at once and a worker's stack (and
	// the allocator arenas it warms) is reused across replications
	// rather than paid per rep.
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > r.Reps {
		workers = r.Reps
	}
	var (
		wg       sync.WaitGroup
		next     atomic.Int64
		errMu    sync.Mutex
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= r.Reps {
					return
				}
				c := cfg
				c.Seed = r.BaseSeed + uint64(i)
				sys, err := newSystem(c)
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
				results[i] = sys.Run()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// RunToPrecision keeps adding replications (beyond Reps, up to maxReps)
// until the 95% confidence interval of W̄ is narrower than relWidth of
// its mean. It returns the final aggregate and the number of
// replications used. Use this when a table cell must be statistically
// solid rather than fixed-budget.
//
// Earlier replications are reused across doublings: each round simulates
// only the seeds not yet run (BaseSeed+len(done) onward), so reaching n
// replications costs n system builds, not 2n−2 extra. The seed set at
// any count is identical to a fixed-budget run of that count, preserving
// common random numbers across policies.
func (r Runner) RunToPrecision(cfg system.Config, relWidth float64, maxReps int) (Aggregate, int, error) {
	if err := r.Validate(); err != nil {
		return Aggregate{}, 0, err
	}
	if relWidth <= 0 {
		return Aggregate{}, 0, fmt.Errorf("exper: relWidth %v must be positive", relWidth)
	}
	if maxReps < r.Reps {
		maxReps = r.Reps
	}
	reps := r.Reps
	if reps < 2 {
		reps = 2 // a CI needs at least two samples
	}
	runCfg := r.applyHorizons(cfg)
	results := make([]system.Results, 0, reps)
	for {
		rr := r
		rr.BaseSeed = r.BaseSeed + uint64(len(results))
		rr.Reps = reps - len(results)
		batch, err := rr.replicate(runCfg)
		if err != nil {
			return Aggregate{}, 0, err
		}
		results = append(results, batch...)
		agg := aggregate(cfg.PolicyName(), results)
		if agg.MeanWait.Mean == 0 ||
			agg.MeanWait.HalfWide/agg.MeanWait.Mean <= relWidth ||
			reps >= maxReps {
			return agg, reps, nil
		}
		reps *= 2
		if reps > maxReps {
			reps = maxReps
		}
	}
}

// RunPolicies runs the same configuration under several policies with
// common random numbers and returns the aggregates in order.
func (r Runner) RunPolicies(cfg system.Config, kinds []policy.Kind) ([]Aggregate, error) {
	out := make([]Aggregate, 0, len(kinds))
	for _, k := range kinds {
		c := cfg
		c.PolicyKind = k
		c.CustomPolicy = nil
		agg, err := r.Run(c)
		if err != nil {
			return nil, err
		}
		out = append(out, agg)
	}
	return out, nil
}

// Improvement returns the paper's percentage improvement
// ΔW̄_{X,REF}/W̄_REF × 100 of x over ref (positive = x waits less).
func Improvement(ref, x float64) float64 {
	if ref == 0 {
		return 0
	}
	return (ref - x) / ref * 100
}
