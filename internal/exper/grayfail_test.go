package exper

import (
	"testing"

	"dqalloc/internal/fault"
	"dqalloc/internal/policy"
	"dqalloc/internal/system"
)

// grayFaultConfig returns the episode schedule used by the sweep tests:
// no crashes, long gray episodes (the realistic regime — fail-slow
// faults in the wild persist for minutes to hours against query times
// of milliseconds), with an episode usually in progress somewhere.
func grayFaultConfig() fault.Config {
	fcfg := fault.DefaultSlow()
	fcfg.SlowMTTF = 6000
	fcfg.SlowMTTR = 2000
	return fcfg
}

// TestGrayFailureSweep pins the headline claim of the gray-failure
// study: at severity 10×, suspicion-based routing plus straggler
// hedging recovers at least half of the mean-response degradation on at
// least one policy (LOCAL, which has everything to gain — it never
// reads the load table).
func TestGrayFailureSweep(t *testing.T) {
	r := Runner{Reps: 3, BaseSeed: 1, Warmup: 1000, Measure: 16000}
	kinds := []policy.Kind{policy.Local, policy.LERT}
	factors := []float64{10}
	// Moderate load: at the Table-7 default think time the 10× site
	// saturates, starving the detector of completion samples (see the
	// GrayFailureSweep doc comment).
	moderate := func(cfg *system.Config) { cfg.ThinkTime = 600 }
	rows, err := GrayFailureSweep(r, kinds, factors, grayFaultConfig(), moderate)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(kinds)*len(factors) {
		t.Fatalf("got %d rows, want %d", len(rows), len(kinds)*len(factors))
	}
	best := -1.0
	for _, row := range rows {
		if row.SlowEpisodes == 0 {
			t.Errorf("%s factor %v: no fail-slow episodes", row.Policy, row.Factor)
		}
		if row.DegradedFrac <= 0 || row.DegradedFrac >= 1 {
			t.Errorf("%s factor %v: degraded fraction %v outside (0,1)", row.Policy, row.Factor, row.DegradedFrac)
		}
		if row.BlindResponse <= row.CleanResponse {
			t.Errorf("%s factor %v: blind response %v not above clean %v",
				row.Policy, row.Factor, row.BlindResponse, row.CleanResponse)
		}
		if row.SuspectTransfers == 0 {
			t.Errorf("%s factor %v: detector never steered a query", row.Policy, row.Factor)
		}
		if row.Lost != 0 {
			t.Errorf("%s factor %v: %d queries lost under fail-slow", row.Policy, row.Factor, row.Lost)
		}
		if row.Recovery > best {
			best = row.Recovery
		}
		t.Logf("%s factor %v: clean %.2f blind %.2f aware %.2f recovery %.0f%% (transfers %d, hedges %d, wins-vs-slow %d)",
			row.Policy, row.Factor, row.CleanResponse, row.BlindResponse, row.AwareResponse,
			row.Recovery*100, row.SuspectTransfers, row.Hedged, row.HedgeWinsVsSlow)
	}
	if best < 0.5 {
		t.Errorf("no policy recovered >= 50%% of the 10x degradation (best %.0f%%)", best*100)
	}
}

// TestGrayFailureSweepRejectsBadInput: empty severity lists and
// episode-free fault configs are configuration errors, not silent
// no-op sweeps.
func TestGrayFailureSweepRejectsBadInput(t *testing.T) {
	r := Runner{Reps: 1, BaseSeed: 1, Warmup: 100, Measure: 500}
	if _, err := GrayFailureSweep(r, []policy.Kind{policy.Local}, nil, grayFaultConfig()); err == nil {
		t.Error("empty factor list accepted")
	}
	if _, err := GrayFailureSweep(r, []policy.Kind{policy.Local}, []float64{10}, fault.Default()); err == nil {
		t.Error("fault config without fail-slow episodes accepted")
	}
	if _, err := GrayFailureSweep(Runner{}, []policy.Kind{policy.Local}, []float64{10}, grayFaultConfig()); err == nil {
		t.Error("invalid runner accepted")
	}
}

func TestDefaultGrayFactors(t *testing.T) {
	fs := DefaultGrayFactors()
	if len(fs) == 0 {
		t.Fatal("empty default severity ladder")
	}
	for i, f := range fs {
		if f <= 1 {
			t.Errorf("factor %v is not a slowdown", f)
		}
		if i > 0 && fs[i] <= fs[i-1] {
			t.Errorf("ladder not increasing at %d", i)
		}
	}
}
