package exper

import (
	"fmt"

	"dqalloc/internal/optimal"
)

// FactorCell is one cell of Table 5 or 6: the improvement factor for one
// arrival condition A(L, i).
type FactorCell struct {
	// LoadIndex identifies the load matrix (0-based column group).
	LoadIndex int
	// Class is the arriving query's class (0-based; the paper prints 1/2).
	Class int
	// Value is the WIF or FIF.
	Value float64
}

// FactorRow is one row of Table 5 or 6: a CPU-demand ratio and its twelve
// cells (six load matrices × two arrival classes).
type FactorRow struct {
	Ratio optimal.CPURatio
	Cells []FactorCell
}

// FactorKind selects which factor a grid reports.
type FactorKind int

const (
	// WIFKind selects the Waiting Improvement Factor (Table 5).
	WIFKind FactorKind = iota + 1
	// FIFKind selects the Fairness Improvement Factor (Table 6).
	FIFKind
)

// Table5 computes the Waiting Improvement Factor grid of Table 5.
func Table5() ([]FactorRow, error) { return factorGrid(WIFKind) }

// Table6 computes the Fairness Improvement Factor grid of Table 6.
func Table6() ([]FactorRow, error) { return factorGrid(FIFKind) }

func factorGrid(kind FactorKind) ([]FactorRow, error) {
	matrices := optimal.PaperLoadMatrices()
	var rows []FactorRow
	for _, ratio := range optimal.PaperCPURatios() {
		p := optimal.PaperParams(ratio.CPU1, ratio.CPU2)
		row := FactorRow{Ratio: ratio}
		for li, l := range matrices {
			for class := 0; class < 2; class++ {
				a, err := optimal.Evaluate(p, l, class)
				if err != nil {
					return nil, fmt.Errorf("exper: table 5/6 ratio %s L%d class %d: %w",
						ratio.Label(), li+1, class+1, err)
				}
				v := a.WIF()
				if kind == FIFKind {
					v = a.FIF()
				}
				row.Cells = append(row.Cells, FactorCell{LoadIndex: li, Class: class, Value: v})
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}
