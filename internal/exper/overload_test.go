package exper

import (
	"testing"

	"dqalloc/internal/policy"
)

// TestOverloadSweep exercises the overload grid end to end: open bursty
// arrivals, deadlines, and hedging across four policies, every
// replication audited. Any ledger violation (a watchdog or hedge clone
// leaking) surfaces as a sweep error here.
func TestOverloadSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("overload sweep is slow")
	}
	r := Runner{Reps: 2, BaseSeed: 41, Warmup: 400, Measure: 4000}
	kinds := []policy.Kind{policy.Local, policy.BNQ, policy.BNQRD, policy.LERT}
	rates := []float64{0.30, 0.50}
	bursts := []float64{1, 4}
	rows, err := OverloadSweep(r, kinds, rates, bursts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(kinds)*len(rates)*len(bursts) {
		t.Fatalf("got %d rows, want %d", len(rows), len(kinds)*len(rates)*len(bursts))
	}
	for _, row := range rows {
		if row.Arrivals == 0 {
			t.Errorf("%s rate=%v burst=%v: no arrivals", row.Policy, row.Rate, row.Burst)
		}
		if row.Completed == 0 {
			t.Errorf("%s rate=%v burst=%v: no completions", row.Policy, row.Rate, row.Burst)
		}
		if row.MissFrac < 0 || row.MissFrac > 1 {
			t.Errorf("%s rate=%v burst=%v: miss fraction %v outside [0,1]",
				row.Policy, row.Rate, row.Burst, row.MissFrac)
		}
		if row.P50 > row.P95 || row.P95 > row.P99 {
			t.Errorf("%s rate=%v burst=%v: quantiles not monotone: p50=%v p95=%v p99=%v",
				row.Policy, row.Rate, row.Burst, row.P50, row.P95, row.P99)
		}
		if row.HedgeWins > row.Hedged {
			t.Errorf("%s rate=%v burst=%v: hedge wins %d exceed launches %d",
				row.Policy, row.Rate, row.Burst, row.HedgeWins, row.Hedged)
		}
	}
	// The load-aware policies must launch hedges somewhere on the grid
	// (LOCAL never transfers, so it never hedges).
	var hedged uint64
	for _, row := range rows {
		if row.Policy != policy.Local.String() {
			hedged += row.Hedged
		}
	}
	if hedged == 0 {
		t.Error("no hedges launched anywhere on the load-aware grid")
	}
}

func TestOverloadSweepRejectsEmptyGrid(t *testing.T) {
	r := Runner{Reps: 1, BaseSeed: 1, Warmup: 10, Measure: 100}
	if _, err := OverloadSweep(r, []policy.Kind{policy.Local}, nil, []float64{1}); err == nil {
		t.Error("empty rate grid accepted")
	}
	if _, err := OverloadSweep(r, []policy.Kind{policy.Local}, []float64{0.3}, nil); err == nil {
		t.Error("empty burst grid accepted")
	}
}

func TestDefaultOverloadLevels(t *testing.T) {
	rates := DefaultOverloadRates()
	if len(rates) < 3 {
		t.Fatalf("want at least 3 rates, got %d", len(rates))
	}
	for i := 1; i < len(rates); i++ {
		if rates[i] <= rates[i-1] {
			t.Errorf("rates not strictly increasing: %v", rates)
		}
	}
	bursts := DefaultBurstLevels()
	if len(bursts) < 2 || bursts[0] != 1 {
		t.Fatalf("want Poisson baseline first, got %v", bursts)
	}
}
