package exper

import (
	"math"
	"testing"

	"dqalloc/internal/fault"
	"dqalloc/internal/policy"
	"dqalloc/internal/replica"
	"dqalloc/internal/system"
)

// replicationKnobs returns manager knobs sized so rebuilds are fast
// relative to the test's crash rate (small fragments, short staging).
func replicationKnobs() replica.ManagerConfig {
	rcfg := replica.DefaultManager()
	rcfg.FragmentSize = 1
	rcfg.RebuildDelay = 10
	return rcfg
}

// TestSelfHealSweepAudited is the tentpole's capstone: LERT across a
// MTTF ladder at two replication degrees, rebuild on and off, every
// replication audited — including the replication-conservation auditor
// on every rebuild-on rep. Under frequent crashes re-replication must
// buy strictly higher minimum per-fragment availability than the static
// placement.
func TestSelfHealSweepAudited(t *testing.T) {
	if testing.Short() {
		t.Skip("replication sweep is slow")
	}
	r := Runner{Reps: 2, BaseSeed: 3, Warmup: 1000, Measure: 10000}
	fcfg := fault.Default()
	fcfg.MTTR = 600
	mttfs := []float64{math.Inf(1), 1500}
	rows, err := SelfHealSweep(r, []policy.Kind{policy.LERT}, mttfs, []int{1, 2}, fcfg, replicationKnobs())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(mttfs)*2*2 {
		t.Fatalf("got %d rows, want %d", len(rows), len(mttfs)*2*2)
	}
	cell := func(mttf float64, copies int, rebuild bool) SelfHealRow {
		for _, row := range rows {
			if row.MTTF == mttf && row.Copies == copies && row.Rebuild == rebuild {
				return row
			}
		}
		t.Fatalf("missing cell mttf=%v copies=%d rebuild=%v", mttf, copies, rebuild)
		return SelfHealRow{}
	}

	for _, row := range rows {
		if row.Completed == 0 {
			t.Errorf("%s mttf=%v copies=%d rebuild=%v: no completions",
				row.Policy, row.MTTF, row.Copies, row.Rebuild)
		}
		if math.IsInf(row.MTTF, 1) {
			if row.FragAvailability != 1 || row.MinFragAvailability != 1 {
				t.Errorf("mttf=+Inf copies=%d rebuild=%v: availability (%v, %v), want (1, 1)",
					row.Copies, row.Rebuild, row.FragAvailability, row.MinFragAvailability)
			}
			if row.ReplicasRebuilt != 0 {
				t.Errorf("mttf=+Inf: %d rebuilds without crashes", row.ReplicasRebuilt)
			}
		}
		if !row.Rebuild && (row.ReplicasRebuilt != 0 || row.DegradedReads != 0) {
			t.Errorf("static cell rebuilt %d / degraded %d", row.ReplicasRebuilt, row.DegradedReads)
		}
	}

	on, off := cell(1500, 2, true), cell(1500, 2, false)
	if on.ReplicasRebuilt == 0 {
		t.Fatal("crash-heavy rebuild-on cell rebuilt nothing")
	}
	if on.MeanRebuildLatency <= 0 {
		t.Errorf("rebuilds happened but mean latency %v", on.MeanRebuildLatency)
	}
	if on.MinFragAvailability <= off.MinFragAvailability {
		t.Errorf("rebuild-on min fragment availability %v not above rebuild-off %v",
			on.MinFragAvailability, off.MinFragAvailability)
	}
	if on.FragAvailability <= off.FragAvailability {
		t.Errorf("rebuild-on mean fragment availability %v not above rebuild-off %v",
			on.FragAvailability, off.FragAvailability)
	}

	// A single copy can never be rebuilt (the last copy survives its
	// site's crash) — the manager serves the window degraded instead.
	single := cell(1500, 1, true)
	if single.ReplicasRebuilt != 0 {
		t.Errorf("single-copy cell rebuilt %d replicas", single.ReplicasRebuilt)
	}
	if single.DegradedReads == 0 {
		t.Error("single-copy cell under crashes served no degraded reads")
	}
}

func TestSelfHealSweepRejectsEmptyLevels(t *testing.T) {
	r := Runner{Reps: 1, BaseSeed: 1, Warmup: 10, Measure: 100}
	if _, err := SelfHealSweep(r, []policy.Kind{policy.Local}, nil, []int{2}, fault.Default(), replica.DefaultManager()); err == nil {
		t.Error("empty MTTF levels accepted")
	}
	if _, err := SelfHealSweep(r, []policy.Kind{policy.Local}, []float64{1000}, nil, fault.Default(), replica.DefaultManager()); err == nil {
		t.Error("empty copy levels accepted")
	}
}

// TestDegradationSweepFragAvailability: satellite check for the latent
// gap — with a partial Placement the degradation sweep must report
// fragment-weighted availability below 1 under crashes, and exactly 1
// in the unplaced baseline (every site serves everything).
func TestDegradationSweepFragAvailability(t *testing.T) {
	if testing.Short() {
		t.Skip("degradation sweep is slow")
	}
	r := Runner{Reps: 2, BaseSeed: 41, Warmup: 400, Measure: 6000}
	fcfg := fault.Default()
	fcfg.MTTR = 300
	placed, err := DegradationSweep(r, []policy.Kind{policy.LERT}, []float64{1500}, fcfg,
		func(cfg *system.Config) {
			p, err := replica.NewRoundRobin(cfg.NumSites, 10*cfg.NumSites, 2)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Placement = p
		})
	if err != nil {
		t.Fatal(err)
	}
	row := placed[0]
	if row.FragAvailability <= 0 || row.FragAvailability >= 1 {
		t.Errorf("placed sweep fragment availability %v outside (0,1) despite crashes", row.FragAvailability)
	}
	if row.MinFragAvailability > row.FragAvailability {
		t.Errorf("min %v above mean %v", row.MinFragAvailability, row.FragAvailability)
	}
	if row.FragAvailability < row.Availability {
		t.Errorf("2-copy fragment availability %v below site availability %v",
			row.FragAvailability, row.Availability)
	}

	plain, err := DegradationSweep(r, []policy.Kind{policy.LERT}, []float64{1500}, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain[0].FragAvailability != 1 || plain[0].MinFragAvailability != 1 {
		t.Errorf("unplaced sweep reports fragment availability (%v, %v), want (1, 1)",
			plain[0].FragAvailability, plain[0].MinFragAvailability)
	}
}
