package exper

import (
	"fmt"

	"dqalloc/internal/noise"
	"dqalloc/internal/policy"
	"dqalloc/internal/system"
)

// SensitivityRow is one cell of the imperfect-information sensitivity
// study: one allocation policy at one level of one degradation axis,
// averaged over the runner's replications.
type SensitivityRow struct {
	// Axis names the swept knob: "noise" (lognormal estimation-error
	// sigma), "staleness" (load-broadcast period; 0 = perfect
	// information), or "hysteresis" (anti-herd transfer margin at
	// broadcast period 40).
	Axis string
	// Value is the axis level.
	Value float64
	// Policy is the allocation policy's name.
	Policy string
	// MeanWait is W̄ over completed queries; MeanResponse the mean
	// response time; Fairness the paper's F.
	MeanWait     float64
	MeanResponse float64
	Fairness     float64
	// TransferFrac is the fraction of allocations choosing a remote
	// site; HerdFrac the fraction of transfers landing on a site truly
	// busier than home.
	TransferFrac float64
	HerdFrac     float64
	// EstReadsErr is the mean realized relative error of the read-count
	// estimates the policy acted on.
	EstReadsErr float64
	// Completed, Shed and Deferred are totals across replications.
	Completed uint64
	Shed      uint64
	Deferred  uint64
}

// DefaultNoiseLevels returns the estimation-error magnitudes used in
// EXPERIMENTS.md: exact estimates up to sigma 1 (a one-standard-
// deviation factor of e ≈ 2.7×).
func DefaultNoiseLevels() []float64 { return []float64{0, 0.25, 0.5, 1} }

// DefaultStalenessLevels returns the broadcast periods used in
// EXPERIMENTS.md, from perfect information to views refreshed about
// once per two response times.
func DefaultStalenessLevels() []float64 { return []float64{0, 10, 40, 160} }

// DefaultHysteresisLevels returns the anti-herd margins used in
// EXPERIMENTS.md.
func DefaultHysteresisLevels() []float64 { return []float64{0, 0.1, 0.3} }

// costBased reports whether the kind runs through the Figure-3 selector
// and therefore accepts anti-herd tuning.
func costBased(k policy.Kind) bool {
	switch k {
	case policy.BNQ, policy.BNQRD, policy.LERT, policy.Work:
		return true
	}
	return false
}

// SensitivitySweep measures how gracefully each policy degrades as its
// information quality does, on the Table-7 baseline with overload
// admission control enabled and every replication fully audited
// (including the shed/defer conservation auditor): any invariant
// violation fails the sweep. Three axes are swept independently:
//
//   - noise: lognormal estimation error of the given sigmas on both
//     demand estimates, under perfect load information — isolating the
//     optimizer-error sensitivity the paper's Section 1.2.2 assumes away;
//   - staleness: the load-broadcast period (0 = perfect information),
//     isolating the Section 4.4 stale-view sensitivity;
//   - hysteresis: the anti-herd transfer margin at broadcast period 40,
//     cost-based policies only — the mitigation study.
func SensitivitySweep(r Runner, kinds []policy.Kind, sigmas, periods, margins []float64) ([]SensitivityRow, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	if len(sigmas) == 0 && len(periods) == 0 && len(margins) == 0 {
		return nil, fmt.Errorf("exper: sensitivity sweep: no levels on any axis")
	}

	base := func() system.Config {
		cfg := r.applyHorizons(system.Default())
		cfg.Audit = true
		cfg.Admission = system.DefaultAdmission()
		return cfg
	}
	var rows []SensitivityRow
	sweep := func(axis string, value float64, cfg system.Config) error {
		row := SensitivityRow{Axis: axis, Value: value, Policy: cfg.PolicyName()}
		for rep := 0; rep < r.Reps; rep++ {
			cfg.Seed = r.BaseSeed + uint64(rep)
			sys, err := newSystem(cfg)
			if err != nil {
				return fmt.Errorf("exper: sensitivity sweep %s=%v %s: %w", axis, value, row.Policy, err)
			}
			res := sys.Run()
			if err := sys.Audit(); err != nil {
				return fmt.Errorf("exper: sensitivity sweep %s=%v %s seed %d: %w",
					axis, value, row.Policy, cfg.Seed, err)
			}
			row.MeanWait += res.MeanWait
			row.MeanResponse += res.MeanResponse
			row.Fairness += res.Fairness
			row.TransferFrac += res.TransferFrac
			row.HerdFrac += res.HerdFrac
			row.EstReadsErr += res.EstReadsErr
			row.Completed += res.Completed
			row.Shed += res.QueriesShed
			row.Deferred += res.QueriesDeferred
		}
		n := float64(r.Reps)
		row.MeanWait /= n
		row.MeanResponse /= n
		row.Fairness /= n
		row.TransferFrac /= n
		row.HerdFrac /= n
		row.EstReadsErr /= n
		rows = append(rows, row)
		return nil
	}

	for _, kind := range kinds {
		for _, sigma := range sigmas {
			cfg := base()
			cfg.PolicyKind = kind
			if sigma > 0 {
				cfg.Noise = noise.Config{Enabled: true, Dist: noise.Lognormal, ReadsSigma: sigma, CPUSigma: sigma}
			}
			if err := sweep("noise", sigma, cfg); err != nil {
				return nil, err
			}
		}
		for _, period := range periods {
			cfg := base()
			cfg.PolicyKind = kind
			if period > 0 {
				cfg.InfoMode = system.InfoPeriodic
				cfg.InfoPeriod = period
			}
			if err := sweep("staleness", period, cfg); err != nil {
				return nil, err
			}
		}
		if !costBased(kind) {
			continue
		}
		for _, margin := range margins {
			cfg := base()
			cfg.PolicyKind = kind
			cfg.InfoMode = system.InfoPeriodic
			cfg.InfoPeriod = 40
			cfg.Tuning = policy.Tuning{Hysteresis: margin}
			if err := sweep("hysteresis", margin, cfg); err != nil {
				return nil, err
			}
		}
	}
	return rows, nil
}
