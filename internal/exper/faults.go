package exper

import (
	"fmt"
	"math"

	"dqalloc/internal/fault"
	"dqalloc/internal/policy"
	"dqalloc/internal/system"
)

// DegradationRow is one cell of the graceful-degradation study: one
// allocation policy at one failure intensity (MTTF level), averaged
// over the runner's replications.
type DegradationRow struct {
	// Policy is the allocation policy's name.
	Policy string
	// MTTF is the per-site mean time to failure (+Inf = no failures).
	MTTF float64
	// Availability is the mean fraction of site-time up.
	Availability float64
	// MeanWait is W̄ over the queries that completed.
	MeanWait float64
	// MeanResponse is the mean response time of completed queries.
	MeanResponse float64
	// AvailResponse is MeanResponse / Availability — the paper-style
	// single number folding lost capacity into the response metric.
	AvailResponse float64
	// Completed, Lost, Retried and Rejected are totals across
	// replications.
	Completed uint64
	Lost      uint64
	Retried   uint64
	Rejected  uint64
	// Crashes is the total site failures across replications.
	Crashes uint64
	// FragAvailability and MinFragAvailability weight availability by
	// fragment reachability instead of raw site-time: the fraction of
	// the measured window each fragment had at least one up holder
	// (mean and minimum across fragments). Both are 1 when the run has
	// no Placement — every site serves everything — which is exactly
	// the gap this column closes: a 97%-up system can still have
	// fragments unreachable far more often than 3% of the time.
	FragAvailability    float64
	MinFragAvailability float64
}

// DegradationSweep runs each policy across the given MTTF levels on the
// Table-7 baseline, with every replication fully audited (the fault
// paths are exactly where accounting bugs would hide): any invariant
// violation fails the sweep. fcfg supplies the non-MTTF fault knobs
// (MTTR, network loss, watchdog); its MTTF field is overridden per
// level. The paper conjectures dynamic allocation "should be more
// resilient to failures" than static assignment (Section 6.1) — this
// sweep is the experiment behind that sentence: LOCAL degrades by
// losing its home site's capacity outright, while the load-aware
// policies reroute around the outage.
// Additional opts mutate each cell's configuration before it runs —
// typically setting a partial Placement so the sweep also reports
// fragment-weighted availability.
func DegradationSweep(r Runner, kinds []policy.Kind, mttfs []float64, fcfg fault.Config, opts ...func(*system.Config)) ([]DegradationRow, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	if len(mttfs) == 0 {
		return nil, fmt.Errorf("exper: degradation sweep: no MTTF levels")
	}
	rows := make([]DegradationRow, 0, len(kinds)*len(mttfs))
	for _, kind := range kinds {
		for _, mttf := range mttfs {
			cfg := r.applyHorizons(system.Default())
			cfg.PolicyKind = kind
			cfg.Audit = true
			cfg.Fault = fcfg
			cfg.Fault.Enabled = true
			cfg.Fault.MTTF = mttf
			for _, opt := range opts {
				opt(&cfg)
			}
			row := DegradationRow{Policy: kind.String(), MTTF: mttf}
			for rep := 0; rep < r.Reps; rep++ {
				cfg.Seed = r.BaseSeed + uint64(rep)
				sys, err := newSystem(cfg)
				if err != nil {
					return nil, fmt.Errorf("exper: degradation sweep %v mttf %v: %w", kind, mttf, err)
				}
				res := sys.Run()
				if err := sys.Audit(); err != nil {
					return nil, fmt.Errorf("exper: degradation sweep %v mttf %v seed %d: %w",
						kind, mttf, cfg.Seed, err)
				}
				row.Availability += res.Availability
				row.MeanWait += res.MeanWait
				row.MeanResponse += res.MeanResponse
				row.AvailResponse += res.AvailResponse
				row.Completed += res.Completed
				row.Lost += res.QueriesLost
				row.Retried += res.QueriesRetried
				row.Rejected += res.QueriesRejected
				row.Crashes += res.SiteCrashes
				if cfg.Placement != nil {
					row.FragAvailability += res.FragAvailability
					row.MinFragAvailability += res.MinFragAvailability
				} else {
					// No placement: every fragment is everywhere.
					row.FragAvailability++
					row.MinFragAvailability++
				}
			}
			n := float64(r.Reps)
			row.Availability /= n
			row.MeanWait /= n
			row.MeanResponse /= n
			row.AvailResponse /= n
			row.FragAvailability /= n
			row.MinFragAvailability /= n
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// DefaultMTTFLevels returns the failure intensities used in
// EXPERIMENTS.md: no failures, rare failures, and failures frequent
// enough that an outage is usually in progress somewhere.
func DefaultMTTFLevels() []float64 {
	return []float64{math.Inf(1), 10000, 2000}
}
