package exper

import (
	"fmt"

	"dqalloc/internal/arrival"
	"dqalloc/internal/policy"
	"dqalloc/internal/system"
)

// OverloadRow is one cell of the overload & tail-robustness study: one
// allocation policy at one offered load and burstiness level, with
// deadlines and hedging on, averaged over the runner's replications.
type OverloadRow struct {
	// Policy is the allocation policy's name.
	Policy string
	// Rate is the offered arrival rate (queries per time unit,
	// system-wide); Burst is the MMPP burst factor (1 = plain Poisson).
	Rate  float64
	Burst float64
	// Arrivals and Completed are totals across replications.
	Arrivals  uint64
	Completed uint64
	// MeanResponse is the mean response time of completed queries.
	MeanResponse float64
	// P50, P95 and P99 are the measured response-time quantiles,
	// averaged across replications.
	P50 float64
	P95 float64
	P99 float64
	// MissFrac is deadline misses over deadline outcomes (met+missed).
	MissFrac float64
	// Hedged, HedgeWins, Aborted and Rejected are totals across
	// replications.
	Hedged    uint64
	HedgeWins uint64
	Aborted   uint64
	Rejected  uint64
	// Throughput is completed queries per time unit, averaged.
	Throughput float64
}

// OverloadSweep runs each policy across an offered-load × burstiness
// grid under open arrivals with deadlines and hedging enabled, every
// replication fully audited — the overload extension's counterpart of
// DegradationSweep. burst == 1 selects a plain Poisson source; any
// other level selects an MMPP source with that burst factor and the
// default dwell times. The paper's closed terminals bound the backlog
// by construction; this sweep asks how the allocation policies degrade
// when that bound is removed and arrivals cluster.
func OverloadSweep(r Runner, kinds []policy.Kind, rates, bursts []float64) ([]OverloadRow, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	if len(rates) == 0 || len(bursts) == 0 {
		return nil, fmt.Errorf("exper: overload sweep: empty rate or burst grid")
	}
	rows := make([]OverloadRow, 0, len(kinds)*len(rates)*len(bursts))
	for _, kind := range kinds {
		for _, rate := range rates {
			for _, burst := range bursts {
				cfg := r.applyHorizons(system.Default())
				cfg.PolicyKind = kind
				cfg.Audit = true
				if burst == 1 {
					cfg.Arrival = arrival.DefaultPoisson(rate)
				} else {
					cfg.Arrival = arrival.DefaultMMPP(rate)
					cfg.Arrival.BurstFactor = burst
				}
				cfg.Deadline = system.DefaultDeadline()
				cfg.Hedge = system.DefaultHedge()
				row := OverloadRow{Policy: kind.String(), Rate: rate, Burst: burst}
				var missed, met uint64
				for rep := 0; rep < r.Reps; rep++ {
					cfg.Seed = r.BaseSeed + uint64(rep)
					sys, err := newSystem(cfg)
					if err != nil {
						return nil, fmt.Errorf("exper: overload sweep %v rate %v burst %v: %w",
							kind, rate, burst, err)
					}
					res := sys.Run()
					if err := sys.Audit(); err != nil {
						return nil, fmt.Errorf("exper: overload sweep %v rate %v burst %v seed %d: %w",
							kind, rate, burst, cfg.Seed, err)
					}
					row.Arrivals += res.OpenArrivals
					row.Completed += res.Completed
					row.MeanResponse += res.MeanResponse
					row.P50 += res.RespQuantiles.P50
					row.P95 += res.RespQuantiles.P95
					row.P99 += res.RespQuantiles.P99
					met += res.DeadlineMet
					missed += res.DeadlineMisses
					row.Hedged += res.Hedged
					row.HedgeWins += res.HedgeWins
					row.Aborted += res.QueriesAborted
					row.Rejected += res.QueriesRejected
					row.Throughput += res.Throughput
				}
				n := float64(r.Reps)
				row.MeanResponse /= n
				row.P50 /= n
				row.P95 /= n
				row.P99 /= n
				row.Throughput /= n
				if met+missed > 0 {
					row.MissFrac = float64(missed) / float64(met+missed)
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// DefaultOverloadRates returns the offered loads used in EXPERIMENTS.md:
// moderate, near-saturation, and past the Table-7 baseline's capacity
// (the 6-site system saturates near 0.57 queries per time unit).
func DefaultOverloadRates() []float64 {
	return []float64{0.30, 0.45, 0.60}
}

// DefaultBurstLevels returns the burstiness grid used in EXPERIMENTS.md:
// plain Poisson and 4× bursts.
func DefaultBurstLevels() []float64 {
	return []float64{1, 4}
}
