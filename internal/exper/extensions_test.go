package exper

import (
	"testing"

	"dqalloc/internal/policy"
	"dqalloc/internal/system"
)

func TestReplicationSweepShape(t *testing.T) {
	rows, err := ReplicationSweep(tiny(), 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6 (copies 1..6)", len(rows))
	}
	// With a single copy there is no allocation freedom: LERT ≈ static.
	if rows[0].Impr > 5 || rows[0].Impr < -5 {
		t.Errorf("copies=1: improvement %v, want ~0 (no freedom)", rows[0].Impr)
	}
	// Full replication must give LERT a solid edge.
	last := rows[len(rows)-1]
	if last.Impr < 10 {
		t.Errorf("copies=6: improvement %v, want substantial", last.Impr)
	}
	// More copies -> more allocation freedom -> LERT waiting should not
	// get dramatically worse; check monotone-ish trend loosely via the
	// endpoints.
	if last.WLERT >= rows[0].WLERT {
		t.Errorf("W̄_LERT at full replication (%v) not below single copy (%v)",
			last.WLERT, rows[0].WLERT)
	}
}

func TestMigrationAblationShape(t *testing.T) {
	rows, err := MigrationAblation(tiny(), []policy.Kind{policy.Local, policy.LERT})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	local, lert := rows[0], rows[1]
	if local.Policy != "LOCAL" || lert.Policy != "LERT" {
		t.Fatalf("row order = %q/%q", local.Policy, lert.Policy)
	}
	// Migration must rescue the LOCAL baseline substantially...
	if local.Impr <= 5 {
		t.Errorf("migration on LOCAL improved only %v%%", local.Impr)
	}
	// ...and fire much less often when allocation is already good.
	if lert.MigrationsPer >= local.MigrationsPer {
		t.Errorf("migration rate under LERT (%v) not below LOCAL (%v)",
			lert.MigrationsPer, local.MigrationsPer)
	}
}

func TestHeterogeneitySweepShape(t *testing.T) {
	rows, err := HeterogeneitySweep(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	if rows[0].Profile != "uniform" {
		t.Errorf("first profile = %q", rows[0].Profile)
	}
	for _, row := range rows {
		if row.WLERT >= row.WLocal {
			t.Errorf("%s: LERT (W̄=%v) not better than LOCAL (W̄=%v)",
				row.Profile, row.WLERT, row.WLocal)
		}
	}
	// The speed-aware edge must be bigger on mixed hardware.
	if rows[1].LERTEdge <= rows[0].LERTEdge {
		t.Errorf("LERT edge on mixed hardware (%v%%) not above uniform (%v%%)",
			rows[1].LERTEdge, rows[0].LERTEdge)
	}
}

func TestProbeSweepShape(t *testing.T) {
	rows, err := ProbeSweep(tiny(), []int{1, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	// More probes cannot hurt (5 probes = full coverage on 6 sites).
	if rows[1].WProbeBNQ >= rows[0].WProbeBNQ {
		t.Errorf("probe-5 BNQ (W̄=%v) not better than probe-1 (W̄=%v)",
			rows[1].WProbeBNQ, rows[0].WProbeBNQ)
	}
	// Even one probe must beat never transferring.
	local := system.Default()
	local.PolicyKind = policy.Local
	agg, err := tiny().Run(local)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].WProbeRT >= agg.MeanWait.Mean {
		t.Errorf("probe-1 LERT (W̄=%v) not better than LOCAL (W̄=%v)",
			rows[0].WProbeRT, agg.MeanWait.Mean)
	}
	if rows[0].WThresh >= agg.MeanWait.Mean {
		t.Errorf("threshold policy (W̄=%v) not better than LOCAL (W̄=%v)",
			rows[0].WThresh, agg.MeanWait.Mean)
	}
}

func TestStalenessSweepShape(t *testing.T) {
	rows, err := StalenessSweep(tiny(), []float64{0, 100, 800})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	// Very stale information must be worse than perfect information.
	if rows[2].WLERT <= rows[0].WLERT {
		t.Errorf("LERT with period 800 (W̄=%v) not worse than perfect (W̄=%v)",
			rows[2].WLERT, rows[0].WLERT)
	}
}
