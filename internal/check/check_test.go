package check

import (
	"strings"
	"testing"

	"dqalloc/internal/sim"
)

func TestConservationCleanRun(t *testing.T) {
	table := 0
	sites := []SiteCounts{{Active: 0, AtCPU: 0, AtDisk: 0}}
	c := NewConservation(4, func() int { return table }, func(buf []SiteCounts) []SiteCounts {
		return append(buf, sites...)
	})
	// Two queries flow through: submit (table entry + site admission),
	// execute, complete.
	table, sites[0] = 1, SiteCounts{Active: 1, AtCPU: 0, AtDisk: 1}
	c.Submitted(1)
	table, sites[0] = 2, SiteCounts{Active: 2, AtCPU: 1, AtDisk: 1}
	c.Submitted(2)
	table, sites[0] = 1, SiteCounts{Active: 1, AtCPU: 1, AtDisk: 0}
	c.Completed(3)
	table, sites[0] = 0, SiteCounts{}
	c.Completed(4)
	if err := c.Err(); err != nil {
		t.Fatalf("clean run flagged: %v", err)
	}
	if c.InFlight() != 0 {
		t.Errorf("in-flight = %d, want 0", c.InFlight())
	}
}

func TestConservationViolations(t *testing.T) {
	t.Run("completionWithoutSubmission", func(t *testing.T) {
		c := NewConservation(4, func() int { return 0 }, nil)
		c.Completed(1)
		if c.Err() == nil {
			t.Fatal("uncovered completion not flagged")
		}
	})
	t.Run("populationExceeded", func(t *testing.T) {
		c := NewConservation(2, func() int { return 0 }, nil)
		for i := 0; i < 3; i++ {
			c.Submitted(float64(i))
		}
		if c.Err() == nil || !strings.Contains(c.Err().Error(), "closed population") {
			t.Fatalf("population overflow not flagged: %v", c.Err())
		}
	})
	t.Run("tableAboveInflight", func(t *testing.T) {
		c := NewConservation(4, func() int { return 2 }, nil)
		c.Submitted(1)
		if c.Err() == nil || !strings.Contains(c.Err().Error(), "load table") {
			t.Fatalf("table/in-flight mismatch not flagged: %v", c.Err())
		}
	})
	t.Run("siteCensusMismatch", func(t *testing.T) {
		c := NewConservation(4, func() int { return 1 },
			func(buf []SiteCounts) []SiteCounts {
				return append(buf, SiteCounts{Active: 1, AtCPU: 0, AtDisk: 0})
			})
		c.Submitted(1)
		if c.Err() == nil || !strings.Contains(c.Err().Error(), "active") {
			t.Fatalf("census mismatch not flagged: %v", c.Err())
		}
	})
	t.Run("activeAboveTable", func(t *testing.T) {
		c := NewConservation(4, func() int { return 0 },
			func(buf []SiteCounts) []SiteCounts {
				return append(buf, SiteCounts{Active: 1, AtCPU: 1, AtDisk: 0})
			})
		c.Submitted(1)
		if c.Err() == nil || !strings.Contains(c.Err().Error(), "active at sites") {
			t.Fatalf("active>table not flagged: %v", c.Err())
		}
	})
}

func TestUtilizationBounds(t *testing.T) {
	u := NewUtilization()
	u.Finalize(Final{CPUUtil: []float64{0.4, 1.0}, DiskUtil: []float64{0, 0.99}, SubnetUtil: 0.2})
	if err := u.Err(); err != nil {
		t.Fatalf("valid utilizations flagged: %v", err)
	}
	u = NewUtilization()
	u.Finalize(Final{CPUUtil: []float64{1.5}})
	if u.Err() == nil {
		t.Error("cpu utilization 1.5 not flagged")
	}
	u = NewUtilization()
	u.Finalize(Final{DiskUtil: []float64{-0.2}})
	if u.Err() == nil {
		t.Error("negative disk utilization not flagged")
	}
	u = NewUtilization()
	u.Finalize(Final{SubnetUtil: 2})
	if u.Err() == nil {
		t.Error("subnet utilization 2 not flagged")
	}
}

// TestLittlesLawHolds feeds a synthetic deterministic stream where the
// law holds exactly: one query in flight half the time (W = 1, λ = 0.5).
func TestLittlesLawHolds(t *testing.T) {
	l := NewLittlesLaw()
	l.MeasureStarted(0)
	n := uint64(0)
	for start := 0.0; start < 1000; start += 2 {
		l.Submitted(start)
		l.Completed(start + 1)
		n++
	}
	l.Finalize(Final{Start: 0, End: 1000, Completed: n, MeanResponse: 1})
	if err := l.Err(); err != nil {
		t.Fatalf("exact Little's-law stream flagged: %v", err)
	}
}

func TestLittlesLawViolation(t *testing.T) {
	l := NewLittlesLaw()
	l.MeasureStarted(0)
	n := uint64(0)
	for start := 0.0; start < 1000; start += 2 {
		l.Submitted(start)
		l.Completed(start + 1)
		n++
	}
	// Claimed response time 10 contradicts the observed N̄ of 0.5.
	l.Finalize(Final{Start: 0, End: 1000, Completed: n, MeanResponse: 10})
	if l.Err() == nil {
		t.Fatal("inconsistent response time not flagged")
	}
}

func TestLittlesLawSkipsSmallSamples(t *testing.T) {
	l := NewLittlesLaw()
	l.MeasureStarted(0)
	l.Submitted(1)
	// Wildly inconsistent, but only one completion: below MinSamples.
	l.Completed(2)
	l.Finalize(Final{Start: 0, End: 10, Completed: 1, MeanResponse: 500})
	if err := l.Err(); err != nil {
		t.Fatalf("sub-minimum sample flagged: %v", err)
	}
}

func TestLittlesLawSkipsShortWindows(t *testing.T) {
	l := NewLittlesLaw()
	l.MeasureStarted(0)
	n := uint64(0)
	for start := 0.0; start < 1000; start += 2 {
		l.Submitted(start)
		l.Completed(start + 1)
		n++
	}
	// Inconsistent, but the claimed response time makes the window only
	// 1000/50 = 20 response times long: boundary effects dominate.
	l.Finalize(Final{Start: 0, End: 1000, Completed: n, MeanResponse: 50})
	if err := l.Err(); err != nil {
		t.Fatalf("short-window check not skipped: %v", err)
	}
}

func TestMonotonicity(t *testing.T) {
	m := NewMonotonicity()
	m.observe(1, 0)
	m.observe(1, 3)
	m.observe(2.5, 1)
	if err := m.Err(); err != nil {
		t.Fatalf("ordered stream flagged: %v", err)
	}
	if m.Events() != 3 {
		t.Errorf("events = %d, want 3", m.Events())
	}

	back := NewMonotonicity()
	back.observe(2, 0)
	back.observe(1, 1)
	if back.Err() == nil {
		t.Error("clock regression not flagged")
	}

	fifo := NewMonotonicity()
	fifo.observe(1, 5)
	fifo.observe(1, 2)
	if fifo.Err() == nil {
		t.Error("same-instant FIFO inversion not flagged")
	}
}

// fakeRing is a RingCounters with settable values.
type fakeRing struct {
	sent, delivered, dropped uint64
	pending                  int
}

func (f *fakeRing) Sent() uint64           { return f.sent }
func (f *fakeRing) TotalDelivered() uint64 { return f.delivered }
func (f *fakeRing) TotalDropped() uint64   { return f.dropped }
func (f *fakeRing) Pending() int           { return f.pending }

func TestRingConservation(t *testing.T) {
	ring := &fakeRing{sent: 10, delivered: 7, pending: 3}
	r := NewRingConservation(ring)
	r.check(1)
	if err := r.Err(); err != nil {
		t.Fatalf("balanced ring flagged: %v", err)
	}

	ring.delivered = 8 // lost message: 10 != 8 + 3
	r2 := NewRingConservation(ring)
	r2.check(2)
	if r2.Err() == nil {
		t.Error("message leak not flagged")
	}

	r3 := NewRingConservation(&fakeRing{pending: -1})
	r3.check(3)
	if r3.Err() == nil {
		t.Error("negative pending not flagged")
	}
}

// TestSetDispatch wires a Set to a live scheduler and checks hooks reach
// the right auditors and the first violation wins.
func TestSetDispatch(t *testing.T) {
	mono := NewMonotonicity()
	util := NewUtilization()
	set := NewSet(mono, util)

	sched := sim.New()
	sched.Observe(set.EventFired)
	for i := 0; i < 5; i++ {
		sched.After(float64(i), func() {})
	}
	sched.Run()
	if mono.Events() != 5 {
		t.Errorf("monotonicity saw %d events, want 5", mono.Events())
	}
	if err := set.Err(); err != nil {
		t.Fatalf("clean dispatch flagged: %v", err)
	}

	// A finalize-time violation surfaces through the set.
	if err := set.Finalize(Final{CPUUtil: []float64{7}}); err == nil {
		t.Error("set missed the utilization violation")
	}
	if len(set.Auditors()) != 2 {
		t.Errorf("Auditors() = %d entries, want 2", len(set.Auditors()))
	}
}

// TestAuditorNames pins the names used in violation triage.
func TestAuditorNames(t *testing.T) {
	names := []string{
		NewConservation(1, func() int { return 0 }, nil).Name(),
		NewUtilization().Name(),
		NewLittlesLaw().Name(),
		NewMonotonicity().Name(),
		NewRingConservation(&fakeRing{}).Name(),
	}
	want := []string{"conservation", "utilization", "littles-law", "monotonicity", "ring-conservation"}
	for i, n := range names {
		if n != want[i] {
			t.Errorf("auditor %d name = %q, want %q", i, n, want[i])
		}
	}
}

func TestAdmissionConservationCleanRun(t *testing.T) {
	tot := AdmissionTotals{}
	a := NewAdmissionConservation(4, func() AdmissionTotals { return tot })
	// One query admitted and completed, one deferred then resubmitted and
	// completed, one shed.
	a.Submitted(1)
	a.Completed(2)
	tot.Deferred, tot.Waiting = 1, 1
	a.check(3)
	tot.Resubmitted, tot.Waiting = 1, 0
	a.Submitted(4)
	a.Completed(5)
	a.Submitted(6)
	tot.Shed++
	a.Rejected(6)
	a.Finalize(Final{End: 7})
	if err := a.Err(); err != nil {
		t.Fatalf("clean admission run flagged: %v", err)
	}
}

func TestAdmissionConservationViolations(t *testing.T) {
	t.Run("leakedDeferral", func(t *testing.T) {
		tot := AdmissionTotals{Deferred: 2, Resubmitted: 1, Waiting: 0}
		a := NewAdmissionConservation(4, func() AdmissionTotals { return tot })
		a.check(1)
		if a.Err() == nil || !strings.Contains(a.Err().Error(), "deferred") {
			t.Fatalf("leaked deferral not flagged: %v", a.Err())
		}
	})
	t.Run("negativeWaiting", func(t *testing.T) {
		tot := AdmissionTotals{Waiting: -1}
		a := NewAdmissionConservation(4, func() AdmissionTotals { return tot })
		a.check(1)
		if a.Err() == nil || !strings.Contains(a.Err().Error(), "negative waiting") {
			t.Fatalf("negative waiting not flagged: %v", a.Err())
		}
	})
	t.Run("shedWithoutRejection", func(t *testing.T) {
		tot := AdmissionTotals{Shed: 1}
		a := NewAdmissionConservation(4, func() AdmissionTotals { return tot })
		a.Submitted(1)
		if a.Err() == nil || !strings.Contains(a.Err().Error(), "sheds exceed") {
			t.Fatalf("unobserved shed not flagged: %v", a.Err())
		}
	})
	t.Run("populationExceeded", func(t *testing.T) {
		a := NewAdmissionConservation(2, func() AdmissionTotals { return AdmissionTotals{} })
		for i := 0; i < 3; i++ {
			a.Submitted(float64(i))
		}
		if a.Err() == nil || !strings.Contains(a.Err().Error(), "closed population") {
			t.Fatalf("population overflow not flagged: %v", a.Err())
		}
	})
	t.Run("uncoveredCompletion", func(t *testing.T) {
		a := NewAdmissionConservation(2, func() AdmissionTotals { return AdmissionTotals{} })
		a.Completed(1)
		if a.Err() == nil {
			t.Fatal("uncovered completion not flagged")
		}
	})
	if got := NewAdmissionConservation(1, func() AdmissionTotals { return AdmissionTotals{} }).Name(); got != "admission-conservation" {
		t.Errorf("name = %q", got)
	}
}
