package check

import "dqalloc/internal/sim"

// DeadlineTotals is the overload layer's deadline/hedge ledger, read by
// the deadline-conservation auditor through a closure so the auditor
// stays decoupled from the system package.
type DeadlineTotals struct {
	// Armed counts deadline watchdogs armed (one per query, at its first
	// allocation).
	Armed uint64
	// Met counts deadlines resolved by completion before expiry.
	Met uint64
	// Missed counts deadline expiries; each aborts its query.
	Missed uint64
	// Cancelled counts armed deadlines retired by a rejection path
	// (admission shed after deferral, retry budget exhausted) before
	// either completing or expiring.
	Cancelled uint64
	// Pending counts deadlines currently armed.
	Pending int

	// HedgesLaunched counts hedge clones issued to a second site.
	HedgesLaunched uint64
	// HedgeWins counts races the clone won.
	HedgeWins uint64
	// HedgeCancelled counts clones cancelled (primary finished first,
	// deadline abort) or destroyed by faults before finishing.
	HedgeCancelled uint64
	// HedgePending counts clones currently racing.
	HedgePending int

	// OpsAborted counts operator attempts withdrawn by deadline aborts of
	// operator-split queries (parallel-query extension), and OpReleases
	// the load-table releases those withdrawals performed. They must be
	// equal at all times: a deadline abort releases every per-site
	// commitment of the plan exactly once. Both zero without the
	// parallel subsystem.
	OpsAborted uint64
	OpReleases uint64
}

// DeadlineConservation audits the deadline/hedge ledger between every
// pair of events: every armed deadline is met, missed, cancelled, or
// still pending — armed == met + missed + cancelled + pending — and
// every launched hedge clone wins, is cancelled, or is still racing —
// launched == wins + cancelled + racing — so no watchdog or clone
// silently vanishes.
type DeadlineConservation struct {
	violation
	totals func() DeadlineTotals
}

// NewDeadlineConservation builds the auditor over the overload layer's
// counters.
func NewDeadlineConservation(totals func() DeadlineTotals) *DeadlineConservation {
	if totals == nil {
		panic("check: nil deadline totals")
	}
	return &DeadlineConservation{totals: totals}
}

// Name implements Auditor.
func (d *DeadlineConservation) Name() string { return "deadline-conservation" }

// EventFired implements EventObserver: the ledger identities must hold
// whenever the model is quiescent.
func (d *DeadlineConservation) EventFired(e *sim.Event) {
	if d.err == nil {
		d.check(e.Time())
	}
}

// Finalize implements Finalizer, re-checking at measurement end.
func (d *DeadlineConservation) Finalize(f Final) {
	if d.err == nil {
		d.check(f.End)
	}
}

func (d *DeadlineConservation) check(t float64) {
	tot := d.totals()
	if tot.Pending < 0 {
		d.failf("check: deadline-conservation: t=%v: negative pending count %d", t, tot.Pending)
		return
	}
	if tot.HedgePending < 0 {
		d.failf("check: deadline-conservation: t=%v: negative racing-clone count %d", t, tot.HedgePending)
		return
	}
	if tot.Armed != tot.Met+tot.Missed+tot.Cancelled+uint64(tot.Pending) {
		d.failf("check: deadline-conservation: t=%v: %d armed != %d met + %d missed + %d cancelled + %d pending",
			t, tot.Armed, tot.Met, tot.Missed, tot.Cancelled, tot.Pending)
		return
	}
	if tot.HedgesLaunched != tot.HedgeWins+tot.HedgeCancelled+uint64(tot.HedgePending) {
		d.failf("check: deadline-conservation: t=%v: %d hedges != %d wins + %d cancelled + %d racing",
			t, tot.HedgesLaunched, tot.HedgeWins, tot.HedgeCancelled, tot.HedgePending)
		return
	}
	if tot.OpsAborted != tot.OpReleases {
		d.failf("check: deadline-conservation: t=%v: %d deadline-aborted operators released %d load-table entries (want exactly one each)",
			t, tot.OpsAborted, tot.OpReleases)
	}
}
