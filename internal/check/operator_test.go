package check

import (
	"strings"
	"testing"
)

func TestOperatorConservation(t *testing.T) {
	t.Run("balanced ledger passes", func(t *testing.T) {
		tot := OperatorTotals{
			Spawned: 12, Completed: 7, Aborted: 2, Preempted: 1, InFlight: 2,
			Commits: 12, Releases: 10, TableLive: 2,
		}
		o := NewOperatorConservation(func() OperatorTotals { return tot })
		o.check(1)
		o.Finalize(Final{End: 2})
		if err := o.Err(); err != nil {
			t.Fatalf("balanced ledger flagged: %v", err)
		}
	})
	t.Run("leaked operator fails", func(t *testing.T) {
		tot := OperatorTotals{Spawned: 5, Completed: 3, InFlight: 1}
		o := NewOperatorConservation(func() OperatorTotals { return tot })
		o.check(1)
		if err := o.Err(); err == nil || !strings.Contains(err.Error(), "spawned") {
			t.Fatalf("leaked operator not flagged: %v", err)
		}
	})
	t.Run("leaked commitment fails", func(t *testing.T) {
		tot := OperatorTotals{Commits: 4, Releases: 2, TableLive: 1}
		o := NewOperatorConservation(func() OperatorTotals { return tot })
		o.check(1)
		if err := o.Err(); err == nil || !strings.Contains(err.Error(), "leak or double release") {
			t.Fatalf("leaked commitment not flagged: %v", err)
		}
	})
	t.Run("double release fails", func(t *testing.T) {
		o := NewOperatorConservation(func() OperatorTotals { return OperatorTotals{TableLive: -1} })
		o.check(1)
		if err := o.Err(); err == nil || !strings.Contains(err.Error(), "double release") {
			t.Fatalf("negative live count not flagged: %v", err)
		}
	})
	t.Run("negative in-flight fails", func(t *testing.T) {
		o := NewOperatorConservation(func() OperatorTotals { return OperatorTotals{InFlight: -1} })
		o.check(1)
		if o.Err() == nil {
			t.Fatal("negative in-flight not flagged")
		}
	})
	t.Run("first violation sticks", func(t *testing.T) {
		tot := OperatorTotals{Spawned: 1}
		o := NewOperatorConservation(func() OperatorTotals { return tot })
		o.check(1)
		first := o.Err()
		tot = OperatorTotals{}
		o.check(2)
		o.Finalize(Final{End: 3})
		if o.Err() != first {
			t.Fatal("later balanced check cleared the recorded violation")
		}
	})
	if got := NewOperatorConservation(func() OperatorTotals { return OperatorTotals{} }).Name(); got != "operator-conservation" {
		t.Fatalf("name %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("nil totals closure accepted")
		}
	}()
	NewOperatorConservation(nil)
}
