package diffmva

import (
	"math"
	"testing"
)

// TestSimMatchesMVA runs every differential case and requires the
// simulated response time to land within the case's tolerance of the
// exact MVA answer, with all runtime auditors silent.
func TestSimMatchesMVA(t *testing.T) {
	if testing.Short() {
		t.Skip("long differential runs")
	}
	for _, c := range Cases() {
		t.Run(c.Name, func(t *testing.T) {
			res, err := Run(c, 11, 5000, 120000)
			if err != nil {
				t.Fatal(err)
			}
			if res.AuditErr != nil {
				t.Errorf("auditor violation: %v", res.AuditErr)
			}
			if res.TraceDigest == 0 {
				t.Error("trace digest is zero")
			}
			if res.RelErr > c.Tol {
				t.Errorf("response %v vs MVA %v (rel err %.3f > %.3f)",
					res.SimResponse, res.MVAResponse, res.RelErr, c.Tol)
			}
			if rel := math.Abs(res.SimThroughput-res.MVAThroughput) / res.MVAThroughput; rel > c.Tol {
				t.Errorf("throughput %v vs MVA %v (rel err %.3f > %.3f)",
					res.SimThroughput, res.MVAThroughput, rel, c.Tol)
			}
		})
	}
}

// TestCasesAreWellFormed pins the harness shape: at least three cases,
// distinct names, positive tolerances.
func TestCasesAreWellFormed(t *testing.T) {
	cases := Cases()
	if len(cases) < 3 {
		t.Fatalf("only %d differential cases, want >= 3", len(cases))
	}
	seen := map[string]bool{}
	for _, c := range cases {
		if seen[c.Name] {
			t.Errorf("duplicate case name %q", c.Name)
		}
		seen[c.Name] = true
		if c.Tol <= 0 || c.Tol > 0.2 {
			t.Errorf("%s: tolerance %v outside (0, 0.2]", c.Name, c.Tol)
		}
		if c.NumSites < 1 || c.MPL < 1 || c.NumDisks < 1 {
			t.Errorf("%s: degenerate shape %+v", c.Name, c)
		}
	}
}
