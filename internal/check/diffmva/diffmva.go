// Package diffmva differentially tests the discrete-event simulator
// against the exact MVA solver, the same cross-validation discipline the
// paper applies before trusting its simulation results (Section 5).
//
// Each Case is a balanced product-form configuration: a single query
// class, exponential disk service, and purely local allocation, so every
// site is an independent closed product-form network with a fixed
// per-site population. On such configurations MVA is exact, and the
// simulated mean response time must converge to the analytical answer
// within a statistical tolerance. Every run also executes with the full
// internal/check auditor set and the trace digest enabled, so a diffmva
// pass certifies invariants and accuracy together.
package diffmva

import (
	"fmt"

	"dqalloc/internal/mva"
	"dqalloc/internal/policy"
	"dqalloc/internal/site"
	"dqalloc/internal/system"
	"dqalloc/internal/workload"
)

// Case is one balanced product-form configuration to differential-test.
type Case struct {
	// Name labels the case in test output.
	Name string

	// NumSites, NumDisks and MPL shape the closed network: each site is
	// an independent product-form network with population MPL.
	NumSites int
	NumDisks int
	MPL      int

	// Think is the mean terminal think time (exponential).
	Think float64
	// PageCPU is the per-page CPU demand; Reads the pages per query;
	// DiskTime the mean page access time (exponential here).
	PageCPU  float64
	Reads    float64
	DiskTime float64

	// Tol is the allowed relative error between the simulated and exact
	// mean response times at the default horizons.
	Tol float64
}

// Cases returns the balanced product-form configurations the harness
// certifies, spanning I/O-bound through CPU-bound service mixes and one
// through four sites.
func Cases() []Case {
	return []Case{
		{
			Name:     "single-site-balanced",
			NumSites: 1, NumDisks: 2, MPL: 10,
			Think: 200, PageCPU: 0.5, Reads: 20, DiskTime: 1,
			Tol: 0.06,
		},
		{
			Name:     "two-sites-io-heavy",
			NumSites: 2, NumDisks: 2, MPL: 8,
			Think: 150, PageCPU: 0.05, Reads: 20, DiskTime: 1,
			Tol: 0.06,
		},
		{
			Name:     "four-sites-cpu-heavy",
			NumSites: 4, NumDisks: 2, MPL: 6,
			Think: 300, PageCPU: 1.0, Reads: 20, DiskTime: 1,
			Tol: 0.06,
		},
		{
			Name:     "single-disk-light-load",
			NumSites: 2, NumDisks: 1, MPL: 4,
			Think: 250, PageCPU: 0.2, Reads: 20, DiskTime: 1,
			Tol: 0.06,
		},
	}
}

// Result reports one differential run.
type Result struct {
	// Case is the configuration that ran.
	Case Case
	// SimResponse and MVAResponse are the simulated and exact mean
	// response times; RelErr their relative discrepancy.
	SimResponse float64
	MVAResponse float64
	RelErr      float64
	// SimThroughput and MVAThroughput are the system-wide query
	// completion rates.
	SimThroughput float64
	MVAThroughput float64
	// TraceDigest is the run's event-stream hash.
	TraceDigest uint64
	// AuditErr is the first runtime-invariant violation, or nil.
	AuditErr error
}

// config builds the simulator configuration for a case: one class, local
// allocation, exponential disks — the product-form corner of the model.
func config(c Case, seed uint64, warmup, measure float64) system.Config {
	cfg := system.Default()
	cfg.NumSites = c.NumSites
	cfg.NumDisks = c.NumDisks
	cfg.MPL = c.MPL
	cfg.ThinkTime = c.Think
	cfg.DiskTime = c.DiskTime
	cfg.DiskDist = site.DiskExponential
	cfg.PolicyKind = policy.Local
	cfg.Classes = []workload.Class{{Name: "only", PageCPUTime: c.PageCPU, NumReads: c.Reads, MsgLength: 1}}
	cfg.ClassProbs = []float64{1}
	cfg.Audit = true
	cfg.TraceDigest = true
	cfg.Seed = seed
	cfg.Warmup = warmup
	cfg.Measure = measure
	return cfg
}

// exact solves the per-site closed network analytically and returns the
// mean response time (excluding think) and the per-site throughput.
func exact(c Case) (resp, perSiteX float64, err error) {
	net := mva.NewNetwork(1)
	if err := net.AddStation("think", mva.Delay, c.Think); err != nil {
		return 0, 0, err
	}
	if err := net.AddStation("cpu", mva.Queueing, c.Reads*c.PageCPU); err != nil {
		return 0, 0, err
	}
	for d := 0; d < c.NumDisks; d++ {
		name := fmt.Sprintf("disk%d", d)
		if err := net.AddStation(name, mva.Queueing, c.Reads/float64(c.NumDisks)*c.DiskTime); err != nil {
			return 0, 0, err
		}
	}
	sol, err := net.Solve([]int{c.MPL})
	if err != nil {
		return 0, 0, err
	}
	return sol.ResponseTime(0) - c.Think, sol.Throughput[0], nil
}

// Run executes one differential case: it simulates the configuration
// with auditing and trace digesting on, solves the matching product-form
// network exactly, and reports both sides. The error return covers setup
// failures only; accuracy and invariant verdicts live in the Result.
func Run(c Case, seed uint64, warmup, measure float64) (Result, error) {
	sys, err := system.New(config(c, seed, warmup, measure))
	if err != nil {
		return Result{}, fmt.Errorf("diffmva: %s: %w", c.Name, err)
	}
	r := sys.Run()

	wantResp, perSiteX, err := exact(c)
	if err != nil {
		return Result{}, fmt.Errorf("diffmva: %s: %w", c.Name, err)
	}
	res := Result{
		Case:          c,
		SimResponse:   r.MeanResponse,
		MVAResponse:   wantResp,
		SimThroughput: r.Throughput,
		MVAThroughput: perSiteX * float64(c.NumSites),
		TraceDigest:   r.TraceDigest,
		AuditErr:      sys.Audit(),
	}
	if wantResp > 0 {
		res.RelErr = abs(r.MeanResponse-wantResp) / wantResp
	}
	return res, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
