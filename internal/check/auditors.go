package check

import (
	"fmt"
	"math"

	"dqalloc/internal/sim"
	"dqalloc/internal/stats"
)

// utilEpsilon absorbs floating-point residue in utilization bounds.
const utilEpsilon = 1e-9

// violation latches the first failure an auditor detects.
type violation struct {
	err error
}

// failf records the violation unless one is already latched.
func (v *violation) failf(format string, args ...any) {
	if v.err == nil {
		v.err = fmt.Errorf(format, args...)
	}
}

// Err returns the latched violation, or nil.
func (v *violation) Err() error { return v.err }

// Conservation audits query conservation: at every submission and
// completion instant, submitted = completed + in-flight, the in-flight
// count stays within the closed population, the independently maintained
// load table tracks a subset of the in-flight queries, and every site's
// active count decomposes exactly into its CPU and disk occupancies.
type Conservation struct {
	violation
	capacity   int        // closed population: sites × mpl
	tableTotal func() int // live load-table total (allocated, not exec-done)
	sites      func(buf []SiteCounts) []SiteCounts

	submitted uint64
	completed uint64
	rejected  uint64
	buf       []SiteCounts
}

// NewConservation builds the auditor. capacity is the closed population
// bound (NumSites × MPL), or 0 for an open system (unbounded in-flight
// population — the open-arrival extension); tableTotal reads the load
// table; sites (optional) reports the per-site census into the provided
// buffer.
func NewConservation(capacity int, tableTotal func() int, sites func(buf []SiteCounts) []SiteCounts) *Conservation {
	if capacity < 0 {
		panic("check: negative conservation capacity")
	}
	if tableTotal == nil {
		panic("check: nil tableTotal")
	}
	return &Conservation{capacity: capacity, tableTotal: tableTotal, sites: sites}
}

// Name implements Auditor.
func (c *Conservation) Name() string { return "conservation" }

// Submitted implements QueryObserver.
func (c *Conservation) Submitted(t float64) {
	c.submitted++
	c.check(t)
}

// Completed implements QueryObserver.
func (c *Conservation) Completed(t float64) {
	c.completed++
	c.check(t)
}

// Rejected implements RejectObserver: a rejected query leaves the
// population without completing.
func (c *Conservation) Rejected(t float64) {
	c.rejected++
	c.check(t)
}

// InFlight returns the current submitted-minus-retired count.
func (c *Conservation) InFlight() uint64 { return c.submitted - c.completed - c.rejected }

func (c *Conservation) check(t float64) {
	if c.err != nil {
		return
	}
	if c.completed+c.rejected > c.submitted {
		c.failf("check: conservation: t=%v: %d completions + %d rejections exceed %d submissions",
			t, c.completed, c.rejected, c.submitted)
		return
	}
	inflight := c.submitted - c.completed - c.rejected
	if c.capacity > 0 && inflight > uint64(c.capacity) {
		c.failf("check: conservation: t=%v: %d queries in flight exceed closed population %d",
			t, inflight, c.capacity)
		return
	}
	tt := c.tableTotal()
	if tt < 0 || uint64(tt) > inflight {
		c.failf("check: conservation: t=%v: load table holds %d queries, %d in flight",
			t, tt, inflight)
		return
	}
	if c.sites == nil {
		return
	}
	c.buf = c.sites(c.buf[:0])
	active := 0
	for i, sc := range c.buf {
		if sc.AtCPU+sc.AtDisk != sc.Active {
			c.failf("check: conservation: t=%v: site %d active %d != cpu %d + disk %d",
				t, i, sc.Active, sc.AtCPU, sc.AtDisk)
			return
		}
		active += sc.Active
	}
	if active > tt {
		c.failf("check: conservation: t=%v: %d queries active at sites, load table holds %d",
			t, active, tt)
	}
}

// Utilization audits that every measured busy fraction lies in [0, 1]:
// each site's CPU and disk utilization and the ring's, at measurement end.
type Utilization struct {
	violation
}

// NewUtilization builds the auditor.
func NewUtilization() *Utilization { return &Utilization{} }

// Name implements Auditor.
func (u *Utilization) Name() string { return "utilization" }

// Finalize implements Finalizer.
func (u *Utilization) Finalize(f Final) {
	checkOne := func(label string, site int, v float64) {
		if v < -utilEpsilon || v > 1+utilEpsilon || math.IsNaN(v) {
			u.failf("check: utilization: site %d %s utilization %v outside [0,1]", site, label, v)
		}
	}
	for i, v := range f.CPUUtil {
		checkOne("cpu", i, v)
	}
	for i, v := range f.DiskUtil {
		checkOne("disk", i, v)
	}
	if f.SubnetUtil < -utilEpsilon || f.SubnetUtil > 1+utilEpsilon || math.IsNaN(f.SubnetUtil) {
		u.failf("check: utilization: subnet utilization %v outside [0,1]", f.SubnetUtil)
	}
}

// LittlesLaw audits N = λ·W over the measured window: the time-average
// number of in-flight queries must match throughput times mean response
// within a tolerance that absorbs window-boundary effects. The check is
// skipped when fewer than MinSamples queries completed — short windows
// make the boundary terms dominate.
type LittlesLaw struct {
	violation
	// RelTol is the allowed relative discrepancy (default 0.10).
	RelTol float64
	// AbsTol is an absolute floor below which discrepancies are ignored,
	// guarding near-empty systems (default 0.1 queries).
	AbsTol float64
	// MinSamples is the minimum completion count for the check to apply
	// (default 100).
	MinSamples uint64
	// MinWindows is the minimum measured-window length in units of the
	// mean response time (default 100): in shorter windows the queries
	// straddling the boundaries bias N̄ and λ·W apart regardless of model
	// correctness.
	MinWindows float64

	inflight int
	tw       stats.TimeWeighted
	started  bool
	rejected uint64
}

// NewLittlesLaw builds the auditor with default tolerances.
func NewLittlesLaw() *LittlesLaw {
	return &LittlesLaw{RelTol: 0.10, AbsTol: 0.1, MinSamples: 100, MinWindows: 100}
}

// Name implements Auditor.
func (l *LittlesLaw) Name() string { return "littles-law" }

// Submitted implements QueryObserver.
func (l *LittlesLaw) Submitted(t float64) {
	l.inflight++
	l.tw.Set(t, float64(l.inflight))
}

// Completed implements QueryObserver.
func (l *LittlesLaw) Completed(t float64) {
	l.inflight--
	l.tw.Set(t, float64(l.inflight))
}

// Rejected implements RejectObserver. Rejections remove queries from
// the population without a response-time sample, decoupling N̄ from
// λ·W; the integral stays honest but the end-of-run identity check is
// skipped (FaultConservation owns the accounting under faults).
func (l *LittlesLaw) Rejected(t float64) {
	l.inflight--
	l.tw.Set(t, float64(l.inflight))
	l.rejected++
}

// MeasureStarted implements MeasureObserver: the integral restarts so the
// warmup transient is excluded, exactly like the model's own statistics.
func (l *LittlesLaw) MeasureStarted(t float64) {
	l.tw.Reset(t)
	l.started = true
}

// Finalize implements Finalizer.
func (l *LittlesLaw) Finalize(f Final) {
	if l.err != nil || !l.started || f.End <= f.Start || f.Completed < l.MinSamples {
		return
	}
	if l.rejected > 0 {
		// Rejected queries spent time in flight but contribute nothing
		// to λ·W, so the identity does not hold; see Rejected.
		return
	}
	if f.End-f.Start < l.MinWindows*f.MeanResponse {
		return
	}
	nbar := l.tw.MeanAt(f.End)
	lambda := float64(f.Completed) / (f.End - f.Start)
	lw := lambda * f.MeanResponse
	diff := math.Abs(nbar - lw)
	if diff > l.RelTol*math.Max(nbar, lw)+l.AbsTol {
		l.failf("check: littles-law: N̄ = %v but λ·W = %v·%v = %v (diff %v beyond tolerance)",
			nbar, lambda, f.MeanResponse, lw, diff)
	}
}

// Monotonicity audits the simulation clock: fired events must have
// non-decreasing times, and same-instant events must fire in scheduling
// (sequence) order — the kernel's FIFO tie-break determinism guarantee.
type Monotonicity struct {
	violation
	seen    bool
	lastT   float64
	lastSeq uint64
	events  uint64
}

// NewMonotonicity builds the auditor.
func NewMonotonicity() *Monotonicity { return &Monotonicity{} }

// Name implements Auditor.
func (m *Monotonicity) Name() string { return "monotonicity" }

// Events returns the number of fired events observed.
func (m *Monotonicity) Events() uint64 { return m.events }

// EventFired implements EventObserver.
func (m *Monotonicity) EventFired(e *sim.Event) {
	m.observe(e.Time(), e.Seq())
}

// observe is the testable core of EventFired.
func (m *Monotonicity) observe(t float64, seq uint64) {
	m.events++
	if m.seen && m.err == nil {
		switch {
		case t < m.lastT:
			m.failf("check: monotonicity: event at t=%v fired after t=%v", t, m.lastT)
		case t == m.lastT && seq <= m.lastSeq:
			m.failf("check: monotonicity: same-instant events out of FIFO order at t=%v (seq %d after %d)",
				t, seq, m.lastSeq)
		}
	}
	m.seen = true
	m.lastT, m.lastSeq = t, seq
}

// RingCounters is the slice of the token ring the conservation auditor
// reads; *network.Ring implements it.
type RingCounters interface {
	// Sent is the lifetime count of messages handed to the ring.
	Sent() uint64
	// TotalDelivered is the lifetime count of completed transmissions.
	TotalDelivered() uint64
	// TotalDropped is the lifetime count of messages discarded by the
	// fault model (zero on a reliable ring).
	TotalDropped() uint64
	// Pending is the count of messages waiting or in flight.
	Pending() int
}

// RingConservation audits token-ring message conservation between every
// pair of events: sent = delivered + dropped + pending, with pending
// non-negative.
type RingConservation struct {
	violation
	ring RingCounters
}

// NewRingConservation builds the auditor over the given ring.
func NewRingConservation(ring RingCounters) *RingConservation {
	if ring == nil {
		panic("check: nil ring")
	}
	return &RingConservation{ring: ring}
}

// Name implements Auditor.
func (r *RingConservation) Name() string { return "ring-conservation" }

// EventFired implements EventObserver.
func (r *RingConservation) EventFired(e *sim.Event) {
	if r.err != nil {
		return
	}
	r.check(e.Time())
}

// Finalize implements Finalizer, re-checking at measurement end.
func (r *RingConservation) Finalize(f Final) {
	if r.err == nil {
		r.check(f.End)
	}
}

func (r *RingConservation) check(t float64) {
	pending := r.ring.Pending()
	if pending < 0 {
		r.failf("check: ring-conservation: t=%v: negative pending count %d", t, pending)
		return
	}
	sent, delivered, dropped := r.ring.Sent(), r.ring.TotalDelivered(), r.ring.TotalDropped()
	if sent != delivered+dropped+uint64(pending) {
		r.failf("check: ring-conservation: t=%v: sent %d != delivered %d + dropped %d + pending %d",
			t, sent, delivered, dropped, pending)
	}
}

// FaultTotals is the fault layer's loss ledger, read by the
// fault-conservation auditor through a closure so the auditor stays
// decoupled from the system package.
type FaultTotals struct {
	// Lost counts execution losses (site crashes wiping queries, dropped
	// ship/result messages).
	Lost uint64
	// Retried counts watchdog re-dispatches of lost queries.
	Retried uint64
	// Abandoned counts lost queries whose retry budget ran out (each is
	// also a rejection).
	Abandoned uint64
	// Preempted counts losses resolved outside the retry path entirely:
	// the query completed through a hedge clone, or a deadline abort
	// withdrew it, while it was awaiting recovery (overload extension).
	Preempted uint64
	// PendingRecovery counts queries currently lost and awaiting their
	// watchdog (not yet retried, abandoned, or preempted).
	PendingRecovery int
}

// FaultConservation audits the fault layer's loss accounting between
// every pair of events: every loss must be retried, abandoned, preempted
// (resolved by a hedge win or deadline abort), or still awaiting its
// watchdog — lost == retried + abandoned + preempted + pendingRecovery
// — so no query silently vanishes. It also re-checks the closed
// population bound using the rejection-aware in-flight count.
type FaultConservation struct {
	violation
	capacity int
	totals   func() FaultTotals

	submitted uint64
	completed uint64
	rejected  uint64
}

// NewFaultConservation builds the auditor. capacity is the closed
// population bound (NumSites × MPL), or 0 for an open system; totals
// reads the fault layer's counters.
func NewFaultConservation(capacity int, totals func() FaultTotals) *FaultConservation {
	if capacity < 0 {
		panic("check: negative fault-conservation capacity")
	}
	if totals == nil {
		panic("check: nil fault totals")
	}
	return &FaultConservation{capacity: capacity, totals: totals}
}

// Name implements Auditor.
func (f *FaultConservation) Name() string { return "fault-conservation" }

// Submitted implements QueryObserver.
func (f *FaultConservation) Submitted(t float64) { f.submitted++; f.check(t) }

// Completed implements QueryObserver.
func (f *FaultConservation) Completed(t float64) { f.completed++; f.check(t) }

// Rejected implements RejectObserver.
func (f *FaultConservation) Rejected(t float64) { f.rejected++; f.check(t) }

// Lost implements LossObserver.
func (f *FaultConservation) Lost(t float64) { f.check(t) }

// Retried implements LossObserver.
func (f *FaultConservation) Retried(t float64) { f.check(t) }

// EventFired implements EventObserver: the ledger identity must hold
// whenever the model is quiescent.
func (f *FaultConservation) EventFired(e *sim.Event) {
	if f.err == nil {
		f.check(e.Time())
	}
}

// Finalize implements Finalizer, re-checking at measurement end.
func (f *FaultConservation) Finalize(fin Final) {
	if f.err == nil {
		f.check(fin.End)
	}
}

func (f *FaultConservation) check(t float64) {
	if f.err != nil {
		return
	}
	tot := f.totals()
	if tot.PendingRecovery < 0 {
		f.failf("check: fault-conservation: t=%v: negative pending-recovery count %d",
			t, tot.PendingRecovery)
		return
	}
	if tot.Lost != tot.Retried+tot.Abandoned+tot.Preempted+uint64(tot.PendingRecovery) {
		f.failf("check: fault-conservation: t=%v: %d lost != %d retried + %d abandoned + %d preempted + %d pending recovery",
			t, tot.Lost, tot.Retried, tot.Abandoned, tot.Preempted, tot.PendingRecovery)
		return
	}
	if f.completed+f.rejected > f.submitted {
		f.failf("check: fault-conservation: t=%v: %d completions + %d rejections exceed %d submissions",
			t, f.completed, f.rejected, f.submitted)
		return
	}
	if inflight := f.submitted - f.completed - f.rejected; f.capacity > 0 && inflight > uint64(f.capacity) {
		f.failf("check: fault-conservation: t=%v: %d queries in flight exceed closed population %d",
			t, inflight, f.capacity)
	}
}

// AdmissionTotals is the admission controller's shed/defer ledger, read
// by the admission-conservation auditor through a closure so the auditor
// stays decoupled from the system package.
type AdmissionTotals struct {
	// Deferred counts admission deferrals: queries bounced by an
	// overloaded site and parked for a delayed resubmission.
	Deferred uint64
	// Resubmitted counts deferred queries whose delay elapsed and that
	// re-entered allocation.
	Resubmitted uint64
	// Shed counts queries rejected outright by admission control (each
	// is also a rejection).
	Shed uint64
	// Aborted counts parked queries withdrawn by a deadline abort before
	// their resubmission timer fired (overload extension).
	Aborted uint64
	// Waiting counts queries currently parked awaiting resubmission.
	Waiting int
}

// AdmissionConservation audits the overload-admission ledger between
// every pair of events: every deferral must be resubmitted, still
// parked, or withdrawn by a deadline abort — deferred == resubmitted +
// waiting + aborted — so no bounced query silently vanishes; sheds
// never exceed observed rejections; and the rejection-aware in-flight
// count respects the closed population.
type AdmissionConservation struct {
	violation
	capacity int
	totals   func() AdmissionTotals

	submitted uint64
	completed uint64
	rejected  uint64
}

// NewAdmissionConservation builds the auditor. capacity is the closed
// population bound (NumSites × MPL), or 0 for an open system; totals
// reads the admission controller's counters.
func NewAdmissionConservation(capacity int, totals func() AdmissionTotals) *AdmissionConservation {
	if capacity < 0 {
		panic("check: negative admission-conservation capacity")
	}
	if totals == nil {
		panic("check: nil admission totals")
	}
	return &AdmissionConservation{capacity: capacity, totals: totals}
}

// Name implements Auditor.
func (a *AdmissionConservation) Name() string { return "admission-conservation" }

// Submitted implements QueryObserver.
func (a *AdmissionConservation) Submitted(t float64) { a.submitted++; a.check(t) }

// Completed implements QueryObserver.
func (a *AdmissionConservation) Completed(t float64) { a.completed++; a.check(t) }

// Rejected implements RejectObserver.
func (a *AdmissionConservation) Rejected(t float64) { a.rejected++; a.check(t) }

// EventFired implements EventObserver: the ledger identity must hold
// whenever the model is quiescent.
func (a *AdmissionConservation) EventFired(e *sim.Event) {
	if a.err == nil {
		a.check(e.Time())
	}
}

// Finalize implements Finalizer, re-checking at measurement end.
func (a *AdmissionConservation) Finalize(fin Final) {
	if a.err == nil {
		a.check(fin.End)
	}
}

func (a *AdmissionConservation) check(t float64) {
	if a.err != nil {
		return
	}
	tot := a.totals()
	if tot.Waiting < 0 {
		a.failf("check: admission-conservation: t=%v: negative waiting count %d", t, tot.Waiting)
		return
	}
	if tot.Deferred != tot.Resubmitted+tot.Aborted+uint64(tot.Waiting) {
		a.failf("check: admission-conservation: t=%v: %d deferred != %d resubmitted + %d waiting + %d aborted",
			t, tot.Deferred, tot.Resubmitted, tot.Waiting, tot.Aborted)
		return
	}
	if tot.Shed > a.rejected {
		a.failf("check: admission-conservation: t=%v: %d sheds exceed %d observed rejections",
			t, tot.Shed, a.rejected)
		return
	}
	if a.completed+a.rejected > a.submitted {
		a.failf("check: admission-conservation: t=%v: %d completions + %d rejections exceed %d submissions",
			t, a.completed, a.rejected, a.submitted)
		return
	}
	if inflight := a.submitted - a.completed - a.rejected; a.capacity > 0 && inflight > uint64(a.capacity) {
		a.failf("check: admission-conservation: t=%v: %d queries in flight exceed closed population %d",
			t, inflight, a.capacity)
	}
}

// ReplicationState is the replica manager's invariant snapshot, read by
// the replication-conservation auditor through a closure so the auditor
// stays decoupled from the system and replica packages. Mutations must
// change whenever any other field can have changed; the auditor skips
// its (O(objects × sites)) re-scan while it is stable.
type ReplicationState struct {
	// Mutations is the manager's placement/transfer change counter plus
	// any system-side violation counters.
	Mutations uint64
	// Deficient counts fragments below MinCopies; Uncovered those among
	// them with neither a scheduled rebuild nor a shipment in flight.
	Deficient, Uncovered int
	// ZeroCopy and OverMax count fragments outside [1, MaxCopies].
	ZeroCopy, OverMax int
	// Inconsistent counts fragments whose copy counter disagrees with
	// their holder set (a leak or duplication across a crash/rebuild
	// race).
	Inconsistent int
	// InFlight is the number of live fragment shipments; the transfer
	// ledger identity is Launched == Rebuilt + Added + Aborted + InFlight.
	InFlight                          int
	Launched, Rebuilt, Added, Aborted uint64
	// BadExec counts queries that started executing at a site holding no
	// copy of their fragment without being marked degraded (which would
	// have fetched it first).
	BadExec uint64
}

// ReplicationConservation audits the self-healing replica manager at
// every event boundary: every fragment keeps between 1 and MaxCopies
// copies, every deficit is covered by a scheduled rebuild or an
// in-flight shipment, the transfer ledger balances (no shipment leaked
// or double-counted across crash/rebuild races), holder sets stay
// consistent with copy counts, and no query executes against a missing
// fragment undeclared.
type ReplicationConservation struct {
	violation
	state func() ReplicationState

	lastMutations uint64
	checkedOnce   bool
}

// NewReplicationConservation builds the auditor; state reads the replica
// manager's snapshot.
func NewReplicationConservation(state func() ReplicationState) *ReplicationConservation {
	if state == nil {
		panic("check: nil replication state")
	}
	return &ReplicationConservation{state: state}
}

// Name implements Auditor.
func (r *ReplicationConservation) Name() string { return "replication-conservation" }

// EventFired implements EventObserver.
func (r *ReplicationConservation) EventFired(e *sim.Event) {
	if r.err == nil {
		r.check(e.Time())
	}
}

// Finalize implements Finalizer, re-checking at measurement end.
func (r *ReplicationConservation) Finalize(fin Final) {
	if r.err == nil {
		r.checkedOnce = false // force one last full scan
		r.check(fin.End)
	}
}

func (r *ReplicationConservation) check(t float64) {
	st := r.state()
	if r.checkedOnce && st.Mutations == r.lastMutations {
		return
	}
	r.lastMutations = st.Mutations
	r.checkedOnce = true
	switch {
	case st.ZeroCopy > 0:
		r.failf("check: replication-conservation: t=%v: %d fragments lost their last copy", t, st.ZeroCopy)
	case st.OverMax > 0:
		r.failf("check: replication-conservation: t=%v: %d fragments exceed MaxCopies", t, st.OverMax)
	case st.Inconsistent > 0:
		r.failf("check: replication-conservation: t=%v: %d fragments with holder/count mismatch", t, st.Inconsistent)
	case st.Uncovered > 0:
		r.failf("check: replication-conservation: t=%v: %d of %d deficient fragments have no rebuild scheduled or in flight",
			t, st.Uncovered, st.Deficient)
	case st.InFlight < 0:
		r.failf("check: replication-conservation: t=%v: negative in-flight count %d", t, st.InFlight)
	case st.Launched != st.Rebuilt+st.Added+st.Aborted+uint64(st.InFlight):
		r.failf("check: replication-conservation: t=%v: %d launched != %d rebuilt + %d added + %d aborted + %d in flight",
			t, st.Launched, st.Rebuilt, st.Added, st.Aborted, st.InFlight)
	case st.BadExec > 0:
		r.failf("check: replication-conservation: t=%v: %d queries executed at sites lacking their fragment",
			t, st.BadExec)
	}
}

// SlowTotals is the fail-slow layer's episode ledger, read by the
// slow-fault-conservation auditor through a closure so the auditor stays
// decoupled from the fault package.
type SlowTotals struct {
	// Episodes and Recoveries count fail-slow onsets and completed
	// recoveries; Degraded counts sites currently inside an episode.
	Episodes, Recoveries uint64
	Degraded             int
	// Brownouts and BrownoutEnds count ring-brownout onsets and ends;
	// BrownoutActive reports whether one is open now.
	Brownouts, BrownoutEnds uint64
	BrownoutActive          bool
}

// SlowFaultConservation audits the fail-slow episode accounting between
// every pair of events: every onset must be recovered or still open —
// episodes == recoveries + degraded — with the open count bounded by the
// site count, and symmetrically for the single ring brownout process.
// An imbalance means a site was left degraded (or restored) without its
// ledger knowing, which would silently corrupt every degraded-time and
// suspicion statistic built on it.
type SlowFaultConservation struct {
	violation
	numSites int
	totals   func() SlowTotals
}

// NewSlowFaultConservation builds the auditor. numSites bounds the
// number of concurrently degraded sites; totals reads the fail-slow
// ledger.
func NewSlowFaultConservation(numSites int, totals func() SlowTotals) *SlowFaultConservation {
	if numSites < 1 {
		panic("check: slow-fault-conservation needs at least one site")
	}
	if totals == nil {
		panic("check: nil slow totals")
	}
	return &SlowFaultConservation{numSites: numSites, totals: totals}
}

// Name implements Auditor.
func (s *SlowFaultConservation) Name() string { return "slow-fault-conservation" }

// EventFired implements EventObserver: the ledger identity must hold
// whenever the model is quiescent.
func (s *SlowFaultConservation) EventFired(e *sim.Event) {
	if s.err == nil {
		s.check(e.Time())
	}
}

// Finalize implements Finalizer, re-checking at measurement end.
func (s *SlowFaultConservation) Finalize(fin Final) {
	if s.err == nil {
		s.check(fin.End)
	}
}

func (s *SlowFaultConservation) check(t float64) {
	tot := s.totals()
	if tot.Degraded < 0 || tot.Degraded > s.numSites {
		s.failf("check: slow-fault-conservation: t=%v: degraded count %d outside [0,%d]",
			t, tot.Degraded, s.numSites)
		return
	}
	if tot.Episodes != tot.Recoveries+uint64(tot.Degraded) {
		s.failf("check: slow-fault-conservation: t=%v: %d episodes != %d recoveries + %d degraded",
			t, tot.Episodes, tot.Recoveries, tot.Degraded)
		return
	}
	open := uint64(0)
	if tot.BrownoutActive {
		open = 1
	}
	if tot.Brownouts != tot.BrownoutEnds+open {
		s.failf("check: slow-fault-conservation: t=%v: %d brownouts != %d ends + %d open",
			t, tot.Brownouts, tot.BrownoutEnds, open)
	}
}
