// Package check provides pluggable runtime invariant auditors for the
// simulation. An auditor watches a run through narrow observer hooks and
// records the first violation of a queueing-theoretic or structural law it
// detects; a Set bundles auditors and fans hooks out to the ones that care.
//
// The paper's claims rest on the analytic MVA model (Section 3) and the
// discrete-event simulation (Section 5) agreeing where their assumptions
// overlap. These auditors are the simulation half of that cross-validation
// discipline: they assert conservation (nothing is created or lost),
// bounded utilizations, Little's law, event-clock monotonicity, and
// token-ring message conservation while the model runs. Auditing is wired
// behind system.Config.Audit so benchmark hot paths pay nothing when off.
package check

import "dqalloc/internal/sim"

// Auditor is a runtime invariant monitor. Concrete auditors additionally
// implement whichever observer interfaces below they need; a Set
// dispatches each hook only to the auditors implementing it.
type Auditor interface {
	// Name identifies the auditor in violation reports.
	Name() string
	// Err returns the first invariant violation detected, or nil while
	// every check has passed. Once non-nil it never changes: auditors
	// latch the first failure so the report points at the original
	// divergence, not a cascade.
	Err() error
}

// QueryObserver is notified of query lifecycle transitions.
type QueryObserver interface {
	// Submitted fires when a terminal submits a new query (after the
	// allocator has committed it to a site).
	Submitted(t float64)
	// Completed fires when a query's results reach its home terminal.
	Completed(t float64)
}

// EventObserver is notified of every fired scheduler event, between
// event actions (model state is quiescent at that instant).
type EventObserver interface {
	EventFired(e *sim.Event)
}

// RejectObserver is notified when a submitted query is rejected — no
// allowed execution site existed, or its retry budget ran out (fault
// extension). A rejected query leaves the in-flight population without
// a completion.
type RejectObserver interface {
	Rejected(t float64)
}

// LossObserver is notified of fault-induced query losses: Lost fires
// when an allocated query's execution is wiped out (site crash or
// message drop), Retried when its watchdog re-dispatches it. A lost
// query stays in flight until it is retried to completion or rejected.
type LossObserver interface {
	Lost(t float64)
	Retried(t float64)
}

// MeasureObserver is notified when the warmup transient ends and
// measurement begins.
type MeasureObserver interface {
	MeasureStarted(t float64)
}

// Finalizer runs end-of-run checks over the collected measurements.
type Finalizer interface {
	Finalize(f Final)
}

// Final snapshots the end-of-run quantities the finalizing auditors need.
type Final struct {
	// Start and End bound the measured window.
	Start, End float64
	// Completed is the number of queries finishing inside the window.
	Completed uint64
	// MeanResponse is the mean response time of those completions.
	MeanResponse float64
	// CPUUtil and DiskUtil are per-site utilizations over the window.
	CPUUtil, DiskUtil []float64
	// SubnetUtil is the ring's busy fraction over the window.
	SubnetUtil float64
}

// SiteCounts is one site's instantaneous census, used by the conservation
// auditor to tie the site layer to the load table.
type SiteCounts struct {
	// Active is the site's count of admitted, unfinished queries.
	Active int
	// AtCPU and AtDisk are the occupancies of the two service centers.
	AtCPU, AtDisk int
}

// Set fans observer hooks out to a fixed group of auditors. The typed
// dispatch slices are precomputed at construction so the per-event path
// does no interface type assertions.
type Set struct {
	all     []Auditor
	query   []QueryObserver
	reject  []RejectObserver
	loss    []LossObserver
	event   []EventObserver
	measure []MeasureObserver
	final   []Finalizer
}

// NewSet bundles the given auditors.
func NewSet(auditors ...Auditor) *Set {
	s := &Set{all: auditors}
	for _, a := range auditors {
		if o, ok := a.(QueryObserver); ok {
			s.query = append(s.query, o)
		}
		if o, ok := a.(RejectObserver); ok {
			s.reject = append(s.reject, o)
		}
		if o, ok := a.(LossObserver); ok {
			s.loss = append(s.loss, o)
		}
		if o, ok := a.(EventObserver); ok {
			s.event = append(s.event, o)
		}
		if o, ok := a.(MeasureObserver); ok {
			s.measure = append(s.measure, o)
		}
		if o, ok := a.(Finalizer); ok {
			s.final = append(s.final, o)
		}
	}
	return s
}

// Auditors returns the bundled auditors in registration order.
func (s *Set) Auditors() []Auditor { return s.all }

// Submitted dispatches a query-submission hook.
func (s *Set) Submitted(t float64) {
	for _, o := range s.query {
		o.Submitted(t)
	}
}

// Completed dispatches a query-completion hook.
func (s *Set) Completed(t float64) {
	for _, o := range s.query {
		o.Completed(t)
	}
}

// Rejected dispatches a query-rejection hook.
func (s *Set) Rejected(t float64) {
	for _, o := range s.reject {
		o.Rejected(t)
	}
}

// Lost dispatches a fault-loss hook.
func (s *Set) Lost(t float64) {
	for _, o := range s.loss {
		o.Lost(t)
	}
}

// Retried dispatches a retry-dispatch hook.
func (s *Set) Retried(t float64) {
	for _, o := range s.loss {
		o.Retried(t)
	}
}

// EventFired dispatches a scheduler-event hook; wire it to
// sim.Scheduler.Observe.
func (s *Set) EventFired(e *sim.Event) {
	for _, o := range s.event {
		o.EventFired(e)
	}
}

// MeasureStarted dispatches the begin-measurement hook.
func (s *Set) MeasureStarted(t float64) {
	for _, o := range s.measure {
		o.MeasureStarted(t)
	}
}

// Finalize runs the end-of-run checks and returns the set's first
// violation (including any latched earlier in the run), or nil.
func (s *Set) Finalize(f Final) error {
	for _, o := range s.final {
		o.Finalize(f)
	}
	return s.Err()
}

// Err returns the first violation across the set's auditors, or nil.
func (s *Set) Err() error {
	for _, a := range s.all {
		if err := a.Err(); err != nil {
			return err
		}
	}
	return nil
}
