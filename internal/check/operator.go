package check

import "dqalloc/internal/sim"

// OperatorTotals is the parallel-query engine's operator ledger, read by
// the operator-conservation auditor through a closure so the auditor
// stays decoupled from the system package. One entry is one dispatched
// operator attempt (a primary instance or its hedge clone).
type OperatorTotals struct {
	// Spawned counts operator attempts dispatched (load-table entry
	// assigned, execution started or descriptor shipped).
	Spawned uint64
	// Completed counts attempts that finished their last CPU burst and
	// delivered (or began delivering) their output.
	Completed uint64
	// Aborted counts attempts withdrawn deliberately — a deadline abort
	// of the whole plan, a failed sibling collapsing the plan, or a hedge
	// race's loser.
	Aborted uint64
	// Preempted counts attempts destroyed by faults: a site crash wiping
	// the executing operator, or a dropped descriptor shipment.
	Preempted uint64
	// InFlight counts attempts currently dispatched and unretired.
	InFlight int

	// Commits and Releases count load-table Assign/Complete pairs made on
	// behalf of operator attempts; TableLive is the current difference.
	// Together they prove every per-site commitment is released exactly
	// once — no leak, no double release.
	Commits   uint64
	Releases  uint64
	TableLive int
}

// OperatorConservation audits the operator ledger between every pair of
// events: every spawned operator attempt completes, is aborted, is
// preempted by a fault, or is still in flight — spawned == completed +
// aborted + preempted + in-flight — and every load-table commitment an
// attempt made is released exactly once — commits == releases + live.
type OperatorConservation struct {
	violation
	totals func() OperatorTotals
}

// NewOperatorConservation builds the auditor over the parallel engine's
// counters.
func NewOperatorConservation(totals func() OperatorTotals) *OperatorConservation {
	if totals == nil {
		panic("check: nil operator totals")
	}
	return &OperatorConservation{totals: totals}
}

// Name implements Auditor.
func (o *OperatorConservation) Name() string { return "operator-conservation" }

// EventFired implements EventObserver: the ledger identities must hold
// whenever the model is quiescent.
func (o *OperatorConservation) EventFired(e *sim.Event) {
	if o.err == nil {
		o.check(e.Time())
	}
}

// Finalize implements Finalizer, re-checking at measurement end.
func (o *OperatorConservation) Finalize(f Final) {
	if o.err == nil {
		o.check(f.End)
	}
}

func (o *OperatorConservation) check(t float64) {
	tot := o.totals()
	if tot.InFlight < 0 {
		o.failf("check: operator-conservation: t=%v: negative in-flight count %d", t, tot.InFlight)
		return
	}
	if tot.TableLive < 0 {
		o.failf("check: operator-conservation: t=%v: negative live-commitment count %d (double release)",
			t, tot.TableLive)
		return
	}
	if tot.Spawned != tot.Completed+tot.Aborted+tot.Preempted+uint64(tot.InFlight) {
		o.failf("check: operator-conservation: t=%v: %d spawned != %d completed + %d aborted + %d preempted + %d in flight",
			t, tot.Spawned, tot.Completed, tot.Aborted, tot.Preempted, tot.InFlight)
		return
	}
	if tot.Commits != tot.Releases+uint64(tot.TableLive) {
		o.failf("check: operator-conservation: t=%v: %d commitments != %d releases + %d live (leak or double release)",
			t, tot.Commits, tot.Releases, tot.TableLive)
	}
}
