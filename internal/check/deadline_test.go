package check

import (
	"strings"
	"testing"
)

func TestDeadlineConservation(t *testing.T) {
	t.Run("balanced ledger passes", func(t *testing.T) {
		tot := DeadlineTotals{
			Armed: 10, Met: 5, Missed: 2, Cancelled: 1, Pending: 2,
			HedgesLaunched: 4, HedgeWins: 1, HedgeCancelled: 2, HedgePending: 1,
		}
		d := NewDeadlineConservation(func() DeadlineTotals { return tot })
		d.check(1)
		d.Finalize(Final{End: 2})
		if err := d.Err(); err != nil {
			t.Fatalf("balanced ledger flagged: %v", err)
		}
	})
	t.Run("leaked watchdog fails", func(t *testing.T) {
		tot := DeadlineTotals{Armed: 3, Met: 1, Pending: 1}
		d := NewDeadlineConservation(func() DeadlineTotals { return tot })
		d.check(1)
		if err := d.Err(); err == nil || !strings.Contains(err.Error(), "armed") {
			t.Fatalf("leaked watchdog not flagged: %v", err)
		}
	})
	t.Run("leaked clone fails", func(t *testing.T) {
		tot := DeadlineTotals{HedgesLaunched: 2, HedgeWins: 1}
		d := NewDeadlineConservation(func() DeadlineTotals { return tot })
		d.check(1)
		if err := d.Err(); err == nil || !strings.Contains(err.Error(), "hedges") {
			t.Fatalf("leaked clone not flagged: %v", err)
		}
	})
	t.Run("negative pendings fail", func(t *testing.T) {
		d := NewDeadlineConservation(func() DeadlineTotals { return DeadlineTotals{Pending: -1} })
		d.check(1)
		if d.Err() == nil {
			t.Fatal("negative pending not flagged")
		}
		d2 := NewDeadlineConservation(func() DeadlineTotals { return DeadlineTotals{HedgePending: -1} })
		d2.check(1)
		if d2.Err() == nil {
			t.Fatal("negative hedge pending not flagged")
		}
	})
	if got := NewDeadlineConservation(func() DeadlineTotals { return DeadlineTotals{} }).Name(); got != "deadline-conservation" {
		t.Fatalf("name %q", got)
	}
}

// TestOpenCapacityUnbounded: capacity 0 means an open population — the
// in-flight bound is waived across the conservation auditors while the
// other identities keep applying.
func TestOpenCapacityUnbounded(t *testing.T) {
	c := NewConservation(0, func() int { return 0 }, nil)
	for i := 0; i < 100; i++ {
		c.Submitted(float64(i))
	}
	if err := c.Err(); err != nil {
		t.Fatalf("open conservation flagged unbounded in-flight: %v", err)
	}

	f := NewFaultConservation(0, func() FaultTotals { return FaultTotals{} })
	for i := 0; i < 100; i++ {
		f.Submitted(float64(i))
	}
	if err := f.Err(); err != nil {
		t.Fatalf("open fault-conservation flagged unbounded in-flight: %v", err)
	}

	a := NewAdmissionConservation(0, func() AdmissionTotals { return AdmissionTotals{} })
	for i := 0; i < 100; i++ {
		a.Submitted(float64(i))
	}
	if err := a.Err(); err != nil {
		t.Fatalf("open admission-conservation flagged unbounded in-flight: %v", err)
	}

	for _, fn := range []func(){
		func() { NewConservation(-1, func() int { return 0 }, nil) },
		func() { NewFaultConservation(-1, func() FaultTotals { return FaultTotals{} }) },
		func() { NewAdmissionConservation(-1, func() AdmissionTotals { return AdmissionTotals{} }) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("negative capacity did not panic")
				}
			}()
			fn()
		}()
	}
}

// TestPreemptedBalancesFaultLedger: preempted losses (hedge wins /
// deadline aborts of lost queries) are a fourth resolution channel.
func TestPreemptedBalancesFaultLedger(t *testing.T) {
	tot := FaultTotals{Lost: 5, Retried: 2, Abandoned: 1, Preempted: 2}
	f := NewFaultConservation(4, func() FaultTotals { return tot })
	f.Lost(1)
	if err := f.Err(); err != nil {
		t.Fatalf("preempted-balanced ledger flagged: %v", err)
	}
	tot.Preempted = 1
	f2 := NewFaultConservation(4, func() FaultTotals { return tot })
	f2.Lost(1)
	if err := f2.Err(); err == nil || !strings.Contains(err.Error(), "preempted") {
		t.Fatalf("unbalanced preempted ledger not flagged: %v", err)
	}
}

// TestAbortedBalancesAdmissionLedger: deadline aborts of parked queries
// are a third resolution channel for deferrals.
func TestAbortedBalancesAdmissionLedger(t *testing.T) {
	tot := AdmissionTotals{Deferred: 4, Resubmitted: 2, Waiting: 1, Aborted: 1}
	a := NewAdmissionConservation(4, func() AdmissionTotals { return tot })
	a.Submitted(1)
	if err := a.Err(); err != nil {
		t.Fatalf("aborted-balanced ledger flagged: %v", err)
	}
	tot.Aborted = 0
	a2 := NewAdmissionConservation(4, func() AdmissionTotals { return tot })
	a2.Submitted(1)
	if err := a2.Err(); err == nil {
		t.Fatal("unbalanced aborted ledger not flagged")
	}
}
