package stats

import (
	"math"
	"testing"

	"dqalloc/internal/rng"
)

func TestBatchMeansIIDCoverage(t *testing.T) {
	// For iid exponential data the batch-means CI should cover the true
	// mean in roughly 95% of trials.
	r := rng.NewStream(21)
	const (
		trials = 200
		mean   = 4.0
	)
	covered := 0
	for trial := 0; trial < trials; trial++ {
		b := NewBatchMeans(20)
		for i := 0; i < 5000; i++ {
			b.Add(r.Exp(mean))
		}
		if b.CI().Contains(mean) {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.88 || rate > 1.0 {
		t.Errorf("CI coverage = %v, want ~0.95", rate)
	}
}

func TestBatchMeansCorrelatedWiderThanNaive(t *testing.T) {
	// AR(1)-style positively correlated stream: the batch-means CI must
	// be wider than the naive iid CI from the same observations.
	r := rng.NewStream(22)
	b := NewBatchMeans(20)
	var naive Welford
	x := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		x = 0.95*x + r.Exp(1) - 1 // strongly autocorrelated, mean ~0
		b.Add(x)
		naive.Add(x)
	}
	naiveHalf := 1.96 * naive.StdDev() / math.Sqrt(n)
	if bm := b.CI(); bm.HalfWide <= naiveHalf {
		t.Errorf("batch-means half-width %v not wider than naive %v on correlated data",
			bm.HalfWide, naiveHalf)
	}
}

func TestBatchMeansMeanMatchesWelford(t *testing.T) {
	r := rng.NewStream(23)
	b := NewBatchMeans(16)
	var w Welford
	for i := 0; i < 12345; i++ {
		v := r.Float64()
		b.Add(v)
		w.Add(v)
	}
	if math.Abs(b.Mean()-w.Mean()) > 1e-12 {
		t.Errorf("means diverge: %v vs %v", b.Mean(), w.Mean())
	}
	if b.Count() != w.Count() {
		t.Errorf("counts diverge: %d vs %d", b.Count(), w.Count())
	}
}

func TestBatchMeansRebatchBoundsMemory(t *testing.T) {
	b := NewBatchMeans(10)
	for i := 0; i < 100000; i++ {
		b.Add(float64(i % 7))
	}
	if got := b.Batches(); got >= 20 {
		t.Errorf("stored batches = %d, want < 2×target", got)
	}
	if b.batchSize < 2 {
		t.Error("batch size never grew")
	}
}

func TestBatchMeansFewObservations(t *testing.T) {
	b := NewBatchMeans(20)
	b.Add(5)
	ci := b.CI()
	if ci.HalfWide != 0 || ci.Mean != 5 {
		t.Errorf("single observation CI = %+v", ci)
	}
}

func TestBatchMeansReset(t *testing.T) {
	b := NewBatchMeans(8)
	for i := 0; i < 100; i++ {
		b.Add(1)
	}
	b.Reset()
	if b.Count() != 0 || b.Batches() != 0 || b.Mean() != 0 {
		t.Error("Reset incomplete")
	}
}

func TestNewBatchMeansFloor(t *testing.T) {
	b := NewBatchMeans(0)
	if b.maxBatch < 2 {
		t.Error("batch floor not applied")
	}
}
