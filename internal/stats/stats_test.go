package stats

import (
	"math"
	"testing"
	"testing/quick"

	"dqalloc/internal/rng"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestWelfordBasics(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.Count() != 8 {
		t.Errorf("Count = %d, want 8", w.Count())
	}
	if !almostEqual(w.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", w.Mean())
	}
	// Population variance is 4; sample variance is 32/7.
	if !almostEqual(w.Variance(), 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", w.Variance(), 32.0/7.0)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", w.Min(), w.Max())
	}
	if !almostEqual(w.Sum(), 40, 1e-9) {
		t.Errorf("Sum = %v, want 40", w.Sum())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.Count() != 0 {
		t.Error("zero-value Welford not all-zero")
	}
	w.Add(3)
	if w.Mean() != 3 || w.Variance() != 0 || w.StdDev() != 0 {
		t.Error("single observation: mean 3, variance 0 expected")
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	f := func(xsRaw, ysRaw []int8) bool {
		var all, a, b Welford
		for _, v := range xsRaw {
			all.Add(float64(v))
			a.Add(float64(v))
		}
		for _, v := range ysRaw {
			all.Add(float64(v))
			b.Add(float64(v))
		}
		a.Merge(b)
		return a.Count() == all.Count() &&
			almostEqual(a.Mean(), all.Mean(), 1e-9) &&
			almostEqual(a.Variance(), all.Variance(), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	a.Add(1)
	a.Add(2)
	orig := a
	a.Merge(b) // merging empty is a no-op
	if a != orig {
		t.Error("merging empty changed accumulator")
	}
	b.Merge(a) // merging into empty copies
	if b.Mean() != a.Mean() || b.Count() != a.Count() {
		t.Error("merging into empty did not copy")
	}
}

func TestWelfordReset(t *testing.T) {
	var w Welford
	w.Add(5)
	w.Reset()
	if w.Count() != 0 || w.Mean() != 0 {
		t.Error("Reset did not clear accumulator")
	}
}

func TestTimeWeightedPiecewise(t *testing.T) {
	var tw TimeWeighted
	tw.Set(0, 0)  // value 0 over [0,10)
	tw.Set(10, 2) // value 2 over [10,20)
	tw.Set(20, 1) // value 1 over [20,40)
	got := tw.MeanAt(40)
	want := (0*10 + 2*10 + 1*20) / 40.0
	if !almostEqual(got, want, 1e-12) {
		t.Errorf("MeanAt(40) = %v, want %v", got, want)
	}
}

func TestTimeWeightedAdd(t *testing.T) {
	var tw TimeWeighted
	tw.Set(0, 0)
	tw.Add(5, 3) // 3 over [5,15)
	tw.Add(15, -3)
	if !almostEqual(tw.MeanAt(30), 1.0, 1e-12) {
		t.Errorf("MeanAt(30) = %v, want 1.0", tw.MeanAt(30))
	}
	if tw.Value() != 0 {
		t.Errorf("Value = %v, want 0", tw.Value())
	}
}

func TestTimeWeightedReset(t *testing.T) {
	var tw TimeWeighted
	tw.Set(0, 100) // large transient
	tw.Set(10, 1)
	tw.Reset(10)
	if !almostEqual(tw.MeanAt(20), 1.0, 1e-12) {
		t.Errorf("post-reset MeanAt = %v, want 1.0", tw.MeanAt(20))
	}
}

func TestTimeWeightedEmptyWindow(t *testing.T) {
	var tw TimeWeighted
	tw.Set(5, 7)
	if tw.MeanAt(5) != 7 {
		t.Errorf("empty-window mean = %v, want current value 7", tw.MeanAt(5))
	}
}

func TestTimeWeightedUtilization(t *testing.T) {
	// A busy/idle 0-1 signal should yield the busy fraction.
	var tw TimeWeighted
	tw.Set(0, 1)
	tw.Set(3, 0)
	tw.Set(7, 1)
	tw.Set(8, 0)
	if got := tw.MeanAt(10); !almostEqual(got, 0.4, 1e-12) {
		t.Errorf("utilization = %v, want 0.4", got)
	}
}

func TestMeanCIBasics(t *testing.T) {
	ci := MeanCI([]float64{10, 10, 10, 10})
	if ci.Mean != 10 || ci.HalfWide != 0 {
		t.Errorf("constant samples: CI = %+v, want mean 10 half-width 0", ci)
	}
	if !ci.Contains(10) || ci.Contains(10.1) {
		t.Error("Contains misbehaves for degenerate interval")
	}
}

func TestMeanCISingleSample(t *testing.T) {
	ci := MeanCI([]float64{3})
	if ci.Mean != 3 || ci.HalfWide != 0 || ci.N != 1 {
		t.Errorf("CI = %+v, want mean 3, width 0, n 1", ci)
	}
}

func TestMeanCICoverage(t *testing.T) {
	// ~95% of intervals over N(0,1) replication means should contain 0.
	r := rng.NewStream(99)
	const trials = 400
	covered := 0
	for i := 0; i < trials; i++ {
		samples := make([]float64, 10)
		for j := range samples {
			// Sum of 12 uniforms - 6 approximates N(0,1).
			s := -6.0
			for k := 0; k < 12; k++ {
				s += r.Float64()
			}
			samples[j] = s
		}
		if MeanCI(samples).Contains(0) {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.90 || rate > 0.99 {
		t.Errorf("95%% CI coverage = %v, want in [0.90, 0.99]", rate)
	}
}

func TestTQuantileMonotone(t *testing.T) {
	prev := math.Inf(1)
	for df := 1; df <= 200; df++ {
		q := tQuantile95(df)
		if q > prev {
			t.Fatalf("t quantile not non-increasing at df=%d: %v > %v", df, q, prev)
		}
		prev = q
	}
	if tQuantile95(10000) != 1.96 {
		t.Errorf("large-df quantile = %v, want 1.96", tQuantile95(10000))
	}
}

func TestCIBounds(t *testing.T) {
	ci := CI{Mean: 5, HalfWide: 2}
	if ci.Lo() != 3 || ci.Hi() != 7 {
		t.Errorf("bounds = [%v,%v], want [3,7]", ci.Lo(), ci.Hi())
	}
}
