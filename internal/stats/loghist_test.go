package stats

import (
	"math"
	"sort"
	"testing"

	"dqalloc/internal/rng"
)

func TestLogHistogramBasics(t *testing.T) {
	h := NewLogHistogram(0.001, 1e7, 0.02)
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram: count %d quantile %v", h.Count(), h.Quantile(0.5))
	}
	h.Add(1e-9) // below range: clamps to lo
	h.Add(1e9)  // above range: overflow
	h.Add(42)
	if h.Count() != 3 {
		t.Fatalf("count %d, want 3", h.Count())
	}
	if h.Overflow() != 1 {
		t.Fatalf("overflow %d, want 1", h.Overflow())
	}
	if got := h.Quantile(0); got != 0.001 {
		t.Fatalf("q0 = %v, want clamp to lo", got)
	}
	if got := h.Quantile(1); got != 1e7 {
		t.Fatalf("q1 = %v, want hi", got)
	}
	mid := h.Quantile(0.5)
	if math.Abs(mid-42)/42 > 0.02 {
		t.Fatalf("median %v not within 2%% of 42", mid)
	}
	h.Reset()
	if h.Count() != 0 || h.Overflow() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("reset did not clear: count %d overflow %d", h.Count(), h.Overflow())
	}
}

func TestLogHistogramConstructionPanics(t *testing.T) {
	for _, tc := range []struct {
		name           string
		lo, hi, relErr float64
	}{
		{"zero lo", 0, 10, 0.02},
		{"inverted", 10, 1, 0.02},
		{"zero relErr", 1, 10, 0},
		{"relErr one", 1, 10, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewLogHistogram(%v,%v,%v) did not panic", tc.lo, tc.hi, tc.relErr)
				}
			}()
			NewLogHistogram(tc.lo, tc.hi, tc.relErr)
		})
	}
}

// TestLogHistogramQuantileBrackets is the satellite property test: on
// small runs drawn from long-tailed distributions, every estimated
// quantile must bracket the exact sorted-sample quantile within the
// histogram's advertised relative error.
func TestLogHistogramQuantileBrackets(t *testing.T) {
	const relErr = 0.02
	stream := rng.NewStream(7)
	quantiles := []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999}
	for trial := 0; trial < 20; trial++ {
		n := 10 + int(stream.Float64()*990)
		h := NewLogHistogram(0.001, 1e7, relErr)
		samples := make([]float64, n)
		for i := range samples {
			// Lognormal-ish long tail spanning several decades.
			v := math.Exp(stream.Exp(1.5)) * (0.01 + stream.Float64())
			samples[i] = v
			h.Add(v)
		}
		sort.Float64s(samples)
		for _, q := range quantiles {
			est := h.Quantile(q)
			// The histogram's rank rule: the value at rank ceil(q·n).
			k := int(math.Ceil(q * float64(n)))
			if k < 1 {
				k = 1
			}
			if k > n {
				k = n
			}
			exact := samples[k-1]
			if exact < 0.001 || exact >= 1e7 {
				continue // outside the range the bound applies to
			}
			if diff := math.Abs(est - exact); diff > relErr*exact+1e-12 {
				t.Fatalf("trial %d n=%d q=%v: estimate %v vs exact %v (rel err %v > %v)",
					trial, n, q, est, exact, diff/exact, relErr)
			}
		}
	}
}

func TestLogHistogramSummaryMonotone(t *testing.T) {
	h := NewLogHistogram(0.01, 1e6, 0.02)
	stream := rng.NewStream(3)
	for i := 0; i < 5000; i++ {
		h.Add(stream.Exp(100))
	}
	s := h.Summary()
	if !(s.P50 <= s.P90 && s.P90 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.P999) {
		t.Fatalf("summary not monotone: %+v", s)
	}
	// Exponential(100): p50 ≈ 69.3, p99 ≈ 460.5. Allow generous sampling
	// slack on top of the 2% bucket error.
	if s.P50 < 60 || s.P50 > 80 {
		t.Fatalf("p50 = %v, want ≈ 69.3", s.P50)
	}
	if s.P99 < 400 || s.P99 > 520 {
		t.Fatalf("p99 = %v, want ≈ 460.5", s.P99)
	}
}
