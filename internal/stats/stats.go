// Package stats provides the measurement substrate for the simulation:
// running moments for discrete observations (query waiting times), time-
// weighted averages for continuous signals (queue lengths, utilizations),
// and confidence intervals over independent replications.
package stats

import "math"

// Welford accumulates count, mean and variance of a stream of observations
// using Welford's numerically stable online algorithm. The zero value is
// ready to use.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Count returns the number of observations.
func (w *Welford) Count() uint64 { return w.n }

// Mean returns the sample mean (0 with no observations).
func (w *Welford) Mean() float64 { return w.mean }

// Sum returns the observation total.
func (w *Welford) Sum() float64 { return w.mean * float64(w.n) }

// Variance returns the unbiased sample variance (0 with < 2 observations).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest observation (0 with no observations).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 with no observations).
func (w *Welford) Max() float64 { return w.max }

// Merge folds another accumulator into this one (Chan et al. parallel
// combination), as if all its observations had been Added here.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	w.mean += delta * float64(o.n) / float64(n)
	w.m2 += o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	w.n = n
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
}

// Reset discards all observations.
func (w *Welford) Reset() { *w = Welford{} }

// TimeWeighted integrates a piecewise-constant signal over simulated time,
// yielding time averages such as mean queue length or utilization.
type TimeWeighted struct {
	origin   float64 // start of the current integration window
	lastT    float64 // time of the most recent Set
	value    float64 // current signal value
	integral float64 // ∫ value dt over [origin, lastT]
	started  bool
}

// Set records that the signal takes value v from time t onward. Calls must
// have non-decreasing t.
func (tw *TimeWeighted) Set(t, v float64) {
	if !tw.started {
		tw.origin = t
		tw.started = true
	} else {
		tw.integral += tw.value * (t - tw.lastT)
	}
	tw.lastT = t
	tw.value = v
}

// Add shifts the signal by delta at time t (convenient for counters).
func (tw *TimeWeighted) Add(t, delta float64) { tw.Set(t, tw.value+delta) }

// Value returns the signal's current value.
func (tw *TimeWeighted) Value() float64 { return tw.value }

// Reset restarts integration at time t, preserving the current value.
// Used to discard the warmup transient.
func (tw *TimeWeighted) Reset(t float64) {
	tw.integral = 0
	tw.origin = t
	tw.lastT = t
	tw.started = true
}

// MeanAt returns the time average of the signal over [origin, t], where
// origin is the first Set or the latest Reset. If the window is empty the
// current value is returned.
func (tw *TimeWeighted) MeanAt(t float64) float64 {
	if !tw.started || t <= tw.origin {
		return tw.value
	}
	total := tw.integral + tw.value*(t-tw.lastT)
	return total / (t - tw.origin)
}

// CI describes a symmetric confidence interval around a mean.
type CI struct {
	Mean     float64
	HalfWide float64 // half-width; the interval is Mean ± HalfWide
	N        int     // number of independent samples behind the interval
}

// Lo returns the interval's lower bound.
func (c CI) Lo() float64 { return c.Mean - c.HalfWide }

// Hi returns the interval's upper bound.
func (c CI) Hi() float64 { return c.Mean + c.HalfWide }

// Contains reports whether v lies inside the interval.
func (c CI) Contains(v float64) bool { return v >= c.Lo() && v <= c.Hi() }

// MeanCI returns the 95% confidence interval of the mean of independent
// samples (replication means). With fewer than two samples the half-width
// is zero.
func MeanCI(samples []float64) CI {
	var w Welford
	for _, s := range samples {
		w.Add(s)
	}
	n := len(samples)
	ci := CI{Mean: w.Mean(), N: n}
	if n >= 2 {
		ci.HalfWide = tQuantile95(n-1) * w.StdDev() / math.Sqrt(float64(n))
	}
	return ci
}

// tQuantile95 returns the two-sided 95% Student-t quantile for the given
// degrees of freedom, from the standard table, converging to the normal
// 1.96 for large df.
func tQuantile95(df int) float64 {
	table := []float64{ // df = 1..30
		12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
	}
	switch {
	case df <= 0:
		return math.Inf(1)
	case df <= len(table):
		return table[df-1]
	case df <= 40:
		return 2.021
	case df <= 60:
		return 2.000
	case df <= 120:
		return 1.980
	default:
		return 1.960
	}
}
