package stats

import (
	"math"
	"testing"

	"dqalloc/internal/rng"
)

// normal draws a standard-normal variate via Box–Muller (the rng package
// deliberately carries only the distributions the model needs).
func normal(r *rng.Stream, mean, sd float64) float64 {
	u1 := 1 - r.Float64() // (0, 1]: keeps the log finite
	u2 := r.Float64()
	return mean + sd*math.Sqrt(-2*math.Log(u1))*math.Cos(2*math.Pi*u2)
}

// TestBatchMeansCoverageNormals estimates the batch-means CI's actual
// coverage on iid normal data across independent seeds: a nominal 95%
// interval must cover the true mean in roughly 95% of trials — neither
// anticonservative (missing too often) nor vacuously wide.
func TestBatchMeansCoverageNormals(t *testing.T) {
	const (
		trials = 300
		mean   = 10.0
		sd     = 3.0
	)
	covered := 0
	for seed := uint64(1); seed <= trials; seed++ {
		r := rng.NewStream(seed)
		b := NewBatchMeans(24)
		for i := 0; i < 2000; i++ {
			b.Add(normal(r, mean, sd))
		}
		if b.CI().Contains(mean) {
			covered++
		}
	}
	rate := float64(covered) / trials
	// Binomial(300, 0.95) puts ~4 SDs at ±0.05.
	if rate < 0.90 || rate > 0.995 {
		t.Errorf("CI coverage = %v over %d seeds, want ~0.95", rate, trials)
	}
}

// TestMeanCIDegenerate pins the small-n behavior: no samples yields the
// zero interval, one sample yields a zero-width interval at the sample.
func TestMeanCIDegenerate(t *testing.T) {
	if ci := MeanCI(nil); ci != (CI{}) {
		t.Errorf("MeanCI(nil) = %+v, want zero value", ci)
	}
	if ci := MeanCI([]float64{}); ci != (CI{}) {
		t.Errorf("MeanCI(empty) = %+v, want zero value", ci)
	}
	ci := MeanCI([]float64{7.5})
	if ci.Mean != 7.5 || ci.HalfWide != 0 || ci.N != 1 {
		t.Errorf("MeanCI(one sample) = %+v, want {7.5 0 1}", ci)
	}
	if !ci.Contains(7.5) || ci.Contains(7.6) {
		t.Error("zero-width interval contains wrong points")
	}
}
