package stats

import "math"

// BatchMeans estimates a confidence interval for the mean of a single
// correlated observation stream (e.g. successive waiting times within
// one simulation run) by the method of non-overlapping batch means:
// observations are grouped into batches large enough that batch averages
// are approximately independent, and a replication-style CI is formed
// over the batch averages.
//
// The accumulator uses a fixed number of batches and doubles the batch
// size whenever the batches fill up, so memory stays O(batches) for any
// stream length. The zero value is not usable; construct with
// NewBatchMeans.
type BatchMeans struct {
	batchSize int
	means     []float64 // completed batch means
	maxBatch  int

	curSum   float64
	curCount int
	all      Welford
}

// NewBatchMeans returns an accumulator targeting the given number of
// batches (20–40 is customary; values below 2 are raised to 8).
func NewBatchMeans(batches int) *BatchMeans {
	if batches < 2 {
		batches = 8
	}
	return &BatchMeans{batchSize: 1, maxBatch: batches}
}

// Add records one observation.
func (b *BatchMeans) Add(x float64) {
	b.all.Add(x)
	b.curSum += x
	b.curCount++
	if b.curCount == b.batchSize {
		b.means = append(b.means, b.curSum/float64(b.curCount))
		b.curSum, b.curCount = 0, 0
		if len(b.means) == 2*b.maxBatch {
			b.rebatch()
		}
	}
}

// rebatch halves the number of stored batches by pairing them, doubling
// the batch size.
func (b *BatchMeans) rebatch() {
	half := len(b.means) / 2
	for i := 0; i < half; i++ {
		b.means[i] = (b.means[2*i] + b.means[2*i+1]) / 2
	}
	b.means = b.means[:half]
	b.batchSize *= 2
}

// Count returns the number of observations recorded.
func (b *BatchMeans) Count() uint64 { return b.all.Count() }

// Mean returns the overall sample mean.
func (b *BatchMeans) Mean() float64 { return b.all.Mean() }

// Batches returns the number of completed batches.
func (b *BatchMeans) Batches() int { return len(b.means) }

// CI returns the 95% batch-means confidence interval for the stream
// mean. With fewer than two completed batches the half-width is zero —
// callers should treat that as "not enough data", not certainty.
func (b *BatchMeans) CI() CI {
	ci := CI{Mean: b.all.Mean(), N: len(b.means)}
	if len(b.means) < 2 {
		return ci
	}
	var w Welford
	for _, m := range b.means {
		w.Add(m)
	}
	ci.HalfWide = tQuantile95(len(b.means)-1) * w.StdDev() / math.Sqrt(float64(len(b.means)))
	return ci
}

// Reset discards all state, keeping the batch target.
func (b *BatchMeans) Reset() {
	b.batchSize = 1
	b.means = b.means[:0]
	b.curSum, b.curCount = 0, 0
	b.all.Reset()
}
