package stats

import (
	"fmt"
	"math"
)

// LogHistogram is a log-bucketed (HDR-style) histogram for long-tailed
// positive observations such as response times. Bucket i covers the
// geometric interval [lo·γ^i, lo·γ^(i+1)) with γ = (1+relErr)², so the
// geometric midpoint of any bucket is within a factor (1+relErr) of
// every value the bucket holds: quantile estimates carry a bounded
// *relative* error of relErr regardless of where in the range they
// fall — unlike a linear-bin Histogram, whose absolute bin width makes
// small quantiles arbitrarily coarse.
//
// Values below lo clamp to lo and values at or above hi land in a
// dedicated overflow bin reported as hi; choose [lo, hi) generously
// (the bucket count only grows logarithmically in hi/lo).
type LogHistogram struct {
	lo, hi  float64
	relErr  float64
	logLo   float64
	invLogG float64 // 1 / ln γ
	sqrtG   float64 // γ^(1/2): multiplies a bucket's lower edge into its geometric midpoint
	bins    []uint64
	under   uint64
	over    uint64
	count   uint64
}

// NewLogHistogram builds a histogram over [lo, hi) with the given
// relative quantile error bound (e.g. 0.02 for 2%). lo and hi must be
// positive with lo < hi, and relErr must lie in (0, 1).
func NewLogHistogram(lo, hi, relErr float64) *LogHistogram {
	if lo <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: log histogram range [%v,%v) invalid", lo, hi))
	}
	if relErr <= 0 || relErr >= 1 {
		panic(fmt.Sprintf("stats: log histogram relative error %v outside (0,1)", relErr))
	}
	g := (1 + relErr) * (1 + relErr)
	n := int(math.Ceil(math.Log(hi/lo) / math.Log(g)))
	return &LogHistogram{
		lo:      lo,
		hi:      hi,
		relErr:  relErr,
		logLo:   math.Log(lo),
		invLogG: 1 / math.Log(g),
		sqrtG:   1 + relErr,
		bins:    make([]uint64, n),
	}
}

// RelErr returns the histogram's relative quantile error bound.
func (h *LogHistogram) RelErr() float64 { return h.relErr }

// Add records one observation.
func (h *LogHistogram) Add(v float64) {
	h.count++
	switch {
	case v < h.lo:
		h.under++
	case v >= h.hi:
		h.over++
	default:
		i := int((math.Log(v) - h.logLo) * h.invLogG)
		// Guard both edges against floating-point residue in the index.
		if i < 0 {
			i = 0
		} else if i >= len(h.bins) {
			i = len(h.bins) - 1
		}
		h.bins[i]++
	}
}

// Count returns the number of observations.
func (h *LogHistogram) Count() uint64 { return h.count }

// Overflow returns how many observations were at or above the range's
// upper bound.
func (h *LogHistogram) Overflow() uint64 { return h.over }

// Quantile estimates the q-quantile (q in [0,1]) as the geometric
// midpoint of the containing bucket — within a factor (1+RelErr) of the
// exact sample quantile whenever it lies inside [lo, hi). Quantiles in
// the under/overflow bins return lo and hi; an empty histogram returns
// zero.
func (h *LogHistogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.count)
	acc := float64(h.under)
	if target <= acc && h.under > 0 {
		return h.lo
	}
	for i, c := range h.bins {
		next := acc + float64(c)
		if target <= next && c > 0 {
			lower := math.Exp(h.logLo + float64(i)/h.invLogG)
			mid := lower * h.sqrtG
			if mid > h.hi {
				mid = h.hi
			}
			return mid
		}
		acc = next
	}
	return h.hi
}

// Summary reads the standard tail quantiles in one call.
func (h *LogHistogram) Summary() Quantiles {
	return Quantiles{
		P50:  h.Quantile(0.50),
		P90:  h.Quantile(0.90),
		P95:  h.Quantile(0.95),
		P99:  h.Quantile(0.99),
		P999: h.Quantile(0.999),
	}
}

// Reset discards all observations, keeping the binning.
func (h *LogHistogram) Reset() {
	for i := range h.bins {
		h.bins[i] = 0
	}
	h.under, h.over, h.count = 0, 0, 0
}

// Quantiles bundles the tail-latency summary of one distribution.
type Quantiles struct {
	P50  float64
	P90  float64
	P95  float64
	P99  float64
	P999 float64
}
