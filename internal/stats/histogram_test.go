package stats

import (
	"math"
	"testing"

	"dqalloc/internal/rng"
)

func TestHistogramQuantileUniform(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 100; i++ {
		h.Add(float64(i) + 0.5)
	}
	if got := h.Quantile(0.5); math.Abs(got-50) > 1.5 {
		t.Errorf("median = %v, want ~50", got)
	}
	if got := h.Quantile(0.95); math.Abs(got-95) > 1.5 {
		t.Errorf("p95 = %v, want ~95", got)
	}
	if h.Count() != 100 {
		t.Errorf("Count = %d", h.Count())
	}
}

func TestHistogramOverUnderflow(t *testing.T) {
	h := NewHistogram(10, 20, 10)
	h.Add(5)   // under
	h.Add(25)  // over
	h.Add(100) // over
	if h.Overflow() != 2 {
		t.Errorf("Overflow = %d, want 2", h.Overflow())
	}
	if h.Count() != 3 {
		t.Errorf("Count = %d, want 3", h.Count())
	}
	// With 2/3 of mass in overflow, the p95 saturates at the upper bound.
	if got := h.Quantile(0.95); got != 20 {
		t.Errorf("p95 = %v, want hi bound 20", got)
	}
	// The 0.1 quantile lands in the under bin -> lower bound.
	if got := h.Quantile(0.1); got != 10 {
		t.Errorf("q(0.1) = %v, want lo bound 10", got)
	}
}

func TestHistogramEmptyAndClamp(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile != 0")
	}
	h.Add(0.5)
	if h.Quantile(-1) != h.Quantile(0) {
		t.Error("q < 0 not clamped")
	}
	if h.Quantile(2) != h.Quantile(1) {
		t.Error("q > 1 not clamped")
	}
}

func TestHistogramBoundaryValue(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.Add(10) // exactly hi -> overflow, must not panic or mis-bin
	if h.Overflow() != 1 {
		t.Errorf("value at hi bound not in overflow: %d", h.Overflow())
	}
}

func TestHistogramExponentialP95(t *testing.T) {
	r := rng.NewStream(5)
	h := NewHistogram(0, 200, 2000)
	const mean = 10.0
	for i := 0; i < 200000; i++ {
		h.Add(r.Exp(mean))
	}
	want := -mean * math.Log(0.05) // ~29.96
	if got := h.Quantile(0.95); math.Abs(got-want) > 0.5 {
		t.Errorf("exponential p95 = %v, want ~%v", got, want)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(3)
	h.Add(30)
	h.Reset()
	if h.Count() != 0 || h.Overflow() != 0 || h.Quantile(0.5) != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(5, 5, 10) },
		func() { NewHistogram(0, 10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid histogram construction did not panic")
				}
			}()
			fn()
		}()
	}
}
