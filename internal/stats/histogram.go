package stats

import "fmt"

// Histogram is a fixed-range linear-bin histogram with an overflow bin,
// used to estimate response-time quantiles without storing observations.
type Histogram struct {
	lo, hi   float64
	width    float64
	bins     []uint64
	overflow uint64
	under    uint64
	count    uint64
}

// NewHistogram builds a histogram over [lo, hi) with the given number of
// equal-width bins. Values below lo or at/above hi land in dedicated
// under/overflow bins.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if hi <= lo {
		panic(fmt.Sprintf("stats: histogram range [%v,%v) empty", lo, hi))
	}
	if bins < 1 {
		panic("stats: histogram needs at least one bin")
	}
	return &Histogram{lo: lo, hi: hi, width: (hi - lo) / float64(bins), bins: make([]uint64, bins)}
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	h.count++
	switch {
	case v < h.lo:
		h.under++
	case v >= h.hi:
		h.overflow++
	default:
		i := int((v - h.lo) / h.width)
		if i >= len(h.bins) { // guard the hi boundary against fp rounding
			i = len(h.bins) - 1
		}
		h.bins[i]++
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Overflow returns how many observations exceeded the histogram range.
func (h *Histogram) Overflow() uint64 { return h.overflow }

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// within the containing bin. Quantiles falling into the overflow bin
// return the range's upper bound; an empty histogram returns zero.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.count)
	acc := float64(h.under)
	if target <= acc {
		return h.lo
	}
	for i, c := range h.bins {
		next := acc + float64(c)
		if target <= next && c > 0 {
			frac := (target - acc) / float64(c)
			return h.lo + (float64(i)+frac)*h.width
		}
		acc = next
	}
	return h.hi
}

// Reset discards all observations, keeping the binning.
func (h *Histogram) Reset() {
	for i := range h.bins {
		h.bins[i] = 0
	}
	h.overflow, h.under, h.count = 0, 0, 0
}
