package mva

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSingleStationSingleClass(t *testing.T) {
	// One queueing station, N customers cycling through it: everyone
	// queues at the single station, so R(N) = N·D and X = 1/D.
	net := NewNetwork(1)
	if err := net.AddStation("cpu", Queueing, 2.0); err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= 5; n++ {
		sol, err := net.Solve([]int{n})
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(sol.ResponseTime(0), float64(n)*2, 1e-9) {
			t.Errorf("N=%d: R = %v, want %v", n, sol.ResponseTime(0), float64(n)*2)
		}
		if !almostEqual(sol.Throughput[0], 0.5, 1e-9) {
			t.Errorf("N=%d: X = %v, want 0.5", n, sol.Throughput[0])
		}
		if !almostEqual(sol.WaitingTime(0), float64(n-1)*2, 1e-9) {
			t.Errorf("N=%d: W = %v, want %v", n, sol.WaitingTime(0), float64(n-1)*2)
		}
	}
}

func TestInteractiveSystemSmall(t *testing.T) {
	// Terminal (delay Z=4) + CPU (D=1), N=2. Hand recursion:
	// N=1: R=1, X=1/(4+1)=0.2, Q=0.2.
	// N=2: R=1·(1+0.2)=1.2, X=2/(4+1.2)=0.384615…, Q=0.4615…
	net := NewNetwork(1)
	if err := net.AddStation("think", Delay, 4.0); err != nil {
		t.Fatal(err)
	}
	if err := net.AddStation("cpu", Queueing, 1.0); err != nil {
		t.Fatal(err)
	}
	sol, err := net.Solve([]int{2})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(sol.Throughput[0], 2.0/5.2, 1e-9) {
		t.Errorf("X = %v, want %v", sol.Throughput[0], 2.0/5.2)
	}
	if !almostEqual(sol.Residence[1][0], 1.2, 1e-9) {
		t.Errorf("CPU residence = %v, want 1.2", sol.Residence[1][0])
	}
}

func TestLittlesLawAcrossStations(t *testing.T) {
	// Total mean queue lengths (including delay-station customers) must
	// equal the total population.
	net := NewNetwork(2)
	if err := net.AddStation("think", Delay, 10, 5); err != nil {
		t.Fatal(err)
	}
	if err := net.AddStation("cpu", Queueing, 1.0, 0.05); err != nil {
		t.Fatal(err)
	}
	if err := net.AddStation("disk1", Queueing, 0.5, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := net.AddStation("disk2", Queueing, 0.5, 0.5); err != nil {
		t.Fatal(err)
	}
	sol, err := net.Solve([]int{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for m := range sol.QueueLen {
		total += sol.QueueLen[m]
	}
	if !almostEqual(total, 7, 1e-9) {
		t.Errorf("Σ queue lengths = %v, want population 7", total)
	}
}

// TestPopulationConservationQuick is the same invariant as a property
// test over random demands and populations.
func TestPopulationConservationQuick(t *testing.T) {
	f := func(d1, d2, d3 uint8, n1, n2 uint8) bool {
		net := NewNetwork(2)
		toDemand := func(v uint8) float64 { return 0.1 + float64(v%40)/10 }
		if err := net.AddStation("a", Queueing, toDemand(d1), toDemand(d2)); err != nil {
			return false
		}
		if err := net.AddStation("b", Queueing, toDemand(d3), toDemand(d1)); err != nil {
			return false
		}
		if err := net.AddStation("z", Delay, toDemand(d2)*5, toDemand(d3)*5); err != nil {
			return false
		}
		pop := []int{int(n1 % 6), int(n2 % 6)}
		sol, err := net.Solve(pop)
		if err != nil {
			return false
		}
		total := 0.0
		for m := range sol.QueueLen {
			total += sol.QueueLen[m]
		}
		return almostEqual(total, float64(pop[0]+pop[1]), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUtilizationBounds(t *testing.T) {
	net := NewNetwork(2)
	if err := net.AddStation("cpu", Queueing, 1.0, 2.0); err != nil {
		t.Fatal(err)
	}
	if err := net.AddStation("disk", Queueing, 0.5, 0.5); err != nil {
		t.Fatal(err)
	}
	sol, err := net.Solve([]int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 2; m++ {
		u := sol.Utilization(m)
		if u < 0 || u > 1+1e-9 {
			t.Errorf("station %d utilization = %v outside [0,1]", m, u)
		}
	}
	// CPU is the bottleneck; with 8 customers it should be nearly
	// saturated.
	if sol.Utilization(0) < 0.95 {
		t.Errorf("bottleneck utilization = %v, want > 0.95", sol.Utilization(0))
	}
}

func TestSymmetricClassesEqualMetrics(t *testing.T) {
	net := NewNetwork(2)
	if err := net.AddStation("cpu", Queueing, 1.0, 1.0); err != nil {
		t.Fatal(err)
	}
	if err := net.AddStation("disk", Queueing, 0.5, 0.5); err != nil {
		t.Fatal(err)
	}
	sol, err := net.Solve([]int{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(sol.Throughput[0], sol.Throughput[1], 1e-12) {
		t.Errorf("symmetric classes: X = %v vs %v", sol.Throughput[0], sol.Throughput[1])
	}
	if !almostEqual(sol.WaitingTime(0), sol.WaitingTime(1), 1e-12) {
		t.Errorf("symmetric classes: W = %v vs %v", sol.WaitingTime(0), sol.WaitingTime(1))
	}
}

func TestEmptyPopulation(t *testing.T) {
	net := NewNetwork(2)
	if err := net.AddStation("cpu", Queueing, 1.0, 1.0); err != nil {
		t.Fatal(err)
	}
	sol, err := net.Solve([]int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Throughput[0] != 0 || sol.QueueLen[0] != 0 {
		t.Errorf("empty network: X=%v Q=%v, want zeros", sol.Throughput[0], sol.QueueLen[0])
	}
}

func TestOneClassEmpty(t *testing.T) {
	net := NewNetwork(2)
	if err := net.AddStation("cpu", Queueing, 1.0, 7.0); err != nil {
		t.Fatal(err)
	}
	sol, err := net.Solve([]int{3, 0})
	if err != nil {
		t.Fatal(err)
	}
	// The empty class contributes nothing; the populated class behaves as
	// single-class.
	if sol.Throughput[1] != 0 {
		t.Errorf("empty class throughput = %v, want 0", sol.Throughput[1])
	}
	if !almostEqual(sol.ResponseTime(0), 3.0, 1e-9) {
		t.Errorf("R = %v, want 3 (N·D single station)", sol.ResponseTime(0))
	}
}

func TestMoreLoadMoreWaiting(t *testing.T) {
	// Waiting time must be monotone in the competing population.
	net := NewNetwork(2)
	if err := net.AddStation("cpu", Queueing, 0.05, 1.0); err != nil {
		t.Fatal(err)
	}
	if err := net.AddStation("disk1", Queueing, 0.5, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := net.AddStation("disk2", Queueing, 0.5, 0.5); err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for other := 0; other <= 5; other++ {
		sol, err := net.Solve([]int{1, other})
		if err != nil {
			t.Fatal(err)
		}
		w := sol.WaitingTime(0)
		if w <= prev {
			t.Errorf("waiting not increasing: W(%d) = %v <= %v", other, w, prev)
		}
		prev = w
	}
}

func TestValidationErrors(t *testing.T) {
	net := NewNetwork(2)
	if err := net.AddStation("bad-kind", StationKind(0), 1, 1); err == nil {
		t.Error("invalid kind accepted")
	}
	if err := net.AddStation("bad-arity", Queueing, 1); err == nil {
		t.Error("wrong demand arity accepted")
	}
	if err := net.AddStation("bad-demand", Queueing, -1, 1); err == nil {
		t.Error("negative demand accepted")
	}
	if err := net.AddStation("nan", Queueing, math.NaN(), 1); err == nil {
		t.Error("NaN demand accepted")
	}
	if err := net.AddStation("ok", Queueing, 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Solve([]int{1}); err == nil {
		t.Error("wrong population arity accepted")
	}
	if _, err := net.Solve([]int{-1, 0}); err == nil {
		t.Error("negative population accepted")
	}
	empty := NewNetwork(1)
	if _, err := empty.Solve([]int{1}); err == nil {
		t.Error("empty network accepted")
	}
}

func TestStationKindString(t *testing.T) {
	if Queueing.String() != "queueing" || Delay.String() != "delay" ||
		StationKind(0).String() != "unknown" {
		t.Error("StationKind.String mismatch")
	}
}

func TestAccessors(t *testing.T) {
	net := NewNetwork(3)
	if net.Classes() != 3 || net.Stations() != 0 {
		t.Error("fresh network accessors wrong")
	}
	if err := net.AddStation("s", Delay, 1, 2, 3); err != nil {
		t.Fatal(err)
	}
	if net.Stations() != 1 {
		t.Error("Stations() != 1 after AddStation")
	}
}

func BenchmarkSolvePaperSite(b *testing.B) {
	net := NewNetwork(2)
	_ = net.AddStation("cpu", Queueing, 0.05, 1.0)
	_ = net.AddStation("disk1", Queueing, 0.5, 0.5)
	_ = net.AddStation("disk2", Queueing, 0.5, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Solve([]int{3, 3}); err != nil {
			b.Fatal(err)
		}
	}
}
