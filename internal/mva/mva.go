// Package mva implements exact multiclass Mean Value Analysis for closed
// product-form queuing networks (Reiser & Lavenberg, "Mean Value Analysis
// of Closed Multichain Queuing Networks", JACM 1980 — the paper's [Reis78]
// reference). The paper uses this algorithm for its Section 3 study of
// optimal single-allocation decisions; we additionally use it to cross-
// validate the discrete-event simulator.
//
// Supported stations are single-server queueing centers (FCFS with class-
// independent exponential service, or processor sharing with arbitrary
// per-class demands) and delay (infinite-server) centers. These are
// exactly the centers of the paper's DB-site model.
package mva

import (
	"fmt"
	"math"
)

// StationKind distinguishes queueing from delay stations.
type StationKind int

const (
	// Queueing is a single-server station with queueing (FCFS or PS; both
	// obey the same exact-MVA arrival theorem in product-form networks).
	Queueing StationKind = iota + 1
	// Delay is an infinite-server station (pure think/service time, no
	// queueing).
	Delay
)

// String returns the kind name.
func (k StationKind) String() string {
	switch k {
	case Queueing:
		return "queueing"
	case Delay:
		return "delay"
	default:
		return "unknown"
	}
}

// Station is one service center with per-class service demands
// (visit ratio × mean service time per visit).
type Station struct {
	Name   string
	Kind   StationKind
	Demand []float64
}

// Network is a closed multiclass queuing network under construction.
type Network struct {
	classes  int
	stations []Station
}

// NewNetwork returns an empty network with the given number of classes.
func NewNetwork(classes int) *Network {
	if classes <= 0 {
		panic("mva: need at least one class")
	}
	return &Network{classes: classes}
}

// Classes returns the number of customer classes.
func (n *Network) Classes() int { return n.classes }

// Stations returns the number of stations added so far.
func (n *Network) Stations() int { return len(n.stations) }

// AddStation appends a station. demand must have one non-negative entry
// per class.
func (n *Network) AddStation(name string, kind StationKind, demand ...float64) error {
	if kind != Queueing && kind != Delay {
		return fmt.Errorf("mva: invalid station kind %d", kind)
	}
	if len(demand) != n.classes {
		return fmt.Errorf("mva: station %q has %d demands for %d classes", name, len(demand), n.classes)
	}
	for _, d := range demand {
		if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			return fmt.Errorf("mva: station %q has invalid demand %v", name, d)
		}
	}
	n.stations = append(n.stations, Station{Name: name, Kind: kind, Demand: append([]float64(nil), demand...)})
	return nil
}

// Solution holds the exact steady-state metrics at the full population.
type Solution struct {
	// Population is the per-class population the network was solved at.
	Population []int
	// Throughput is the per-class cycle throughput X_r.
	Throughput []float64
	// Residence[m][r] is class r's mean residence time per cycle at
	// station m (waiting plus service).
	Residence [][]float64
	// QueueLen[m] is station m's mean total queue length.
	QueueLen []float64
	// QueueLenByClass[m][r] is the per-class decomposition of QueueLen.
	QueueLenByClass [][]float64

	demands [][]float64 // station × class, for waiting-time derivation
}

// ResponseTime returns class r's total residence time per cycle across
// all stations.
func (s *Solution) ResponseTime(r int) float64 {
	total := 0.0
	for m := range s.Residence {
		total += s.Residence[m][r]
	}
	return total
}

// ServiceDemand returns class r's total service demand per cycle.
func (s *Solution) ServiceDemand(r int) float64 {
	total := 0.0
	for m := range s.demands {
		total += s.demands[m][r]
	}
	return total
}

// WaitingTime returns class r's mean queueing time per cycle: residence
// minus pure service demand. This is the paper's "expected waiting time
// per cycle".
func (s *Solution) WaitingTime(r int) float64 {
	return s.ResponseTime(r) - s.ServiceDemand(r)
}

// NormalizedWaiting returns class r's waiting time per cycle divided by
// its service demand per cycle — the Ŵ of Section 3.
func (s *Solution) NormalizedWaiting(r int) float64 {
	d := s.ServiceDemand(r)
	if d == 0 {
		return 0
	}
	return s.WaitingTime(r) / d
}

// Utilization returns station m's utilization: Σ_r X_r · D_{m,r}.
func (s *Solution) Utilization(m int) float64 {
	u := 0.0
	for r, x := range s.Throughput {
		u += x * s.demands[m][r]
	}
	return u
}

// Solve runs the exact MVA recursion up to the given per-class
// population. Population entries must be non-negative; the lattice of
// intermediate populations is evaluated in lexicographic order so every
// n − e_r precedes n.
func (n *Network) Solve(pop []int) (*Solution, error) {
	if len(pop) != n.classes {
		return nil, fmt.Errorf("mva: population has %d classes, network has %d", len(pop), n.classes)
	}
	for r, p := range pop {
		if p < 0 {
			return nil, fmt.Errorf("mva: negative population for class %d", r)
		}
	}
	if len(n.stations) == 0 {
		return nil, fmt.Errorf("mva: network has no stations")
	}

	nClasses := n.classes
	nStations := len(n.stations)

	// Mixed-radix addressing over the population lattice.
	dims := make([]int, nClasses)
	stride := make([]int, nClasses)
	total := 1
	for r := 0; r < nClasses; r++ {
		dims[r] = pop[r] + 1
		stride[r] = total
		total *= dims[r]
	}

	// queueLen[idx] = per-station mean queue lengths at population idx.
	queueLen := make([][]float64, total)
	queueLen[0] = make([]float64, nStations)

	vec := make([]int, nClasses)
	residence := make([][]float64, nStations)
	for m := range residence {
		residence[m] = make([]float64, nClasses)
	}
	throughput := make([]float64, nClasses)

	for idx := 1; idx < total; idx++ {
		// Decode idx into the population vector.
		rem := idx
		for r := 0; r < nClasses; r++ {
			vec[r] = rem % dims[r]
			rem /= dims[r]
		}

		for r := 0; r < nClasses; r++ {
			throughput[r] = 0
			if vec[r] == 0 {
				for m := range n.stations {
					residence[m][r] = 0
				}
				continue
			}
			prev := queueLen[idx-stride[r]]
			sum := 0.0
			for m, st := range n.stations {
				d := st.Demand[r]
				if st.Kind == Queueing {
					residence[m][r] = d * (1 + prev[m])
				} else {
					residence[m][r] = d
				}
				sum += residence[m][r]
			}
			if sum > 0 {
				throughput[r] = float64(vec[r]) / sum
			}
		}

		ql := make([]float64, nStations)
		for m := range n.stations {
			for r := 0; r < nClasses; r++ {
				ql[m] += throughput[r] * residence[m][r]
			}
		}
		queueLen[idx] = ql
	}

	sol := &Solution{
		Population:      append([]int(nil), pop...),
		Throughput:      make([]float64, nClasses),
		Residence:       make([][]float64, nStations),
		QueueLen:        make([]float64, nStations),
		QueueLenByClass: make([][]float64, nStations),
		demands:         make([][]float64, nStations),
	}
	if total == 1 {
		// Empty network: zero everything, demands still reported.
		for m, st := range n.stations {
			sol.Residence[m] = make([]float64, nClasses)
			sol.QueueLenByClass[m] = make([]float64, nClasses)
			sol.demands[m] = append([]float64(nil), st.Demand...)
		}
		return sol, nil
	}
	copy(sol.Throughput, throughput)
	for m, st := range n.stations {
		sol.Residence[m] = append([]float64(nil), residence[m]...)
		sol.QueueLen[m] = queueLen[total-1][m]
		byClass := make([]float64, nClasses)
		for r := 0; r < nClasses; r++ {
			byClass[r] = throughput[r] * residence[m][r]
		}
		sol.QueueLenByClass[m] = byClass
		sol.demands[m] = append([]float64(nil), st.Demand...)
	}
	return sol, nil
}
