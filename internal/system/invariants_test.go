package system

import (
	"math"
	"testing"

	"dqalloc/internal/policy"
)

// TestLittlesLawEndToEnd applies Little's law to the whole closed
// network: the terminal population NumSites×MPL must equal system
// throughput times the mean terminal cycle time (think + response).
// This ties together the clock, the terminals, the servers, the ring and
// the metrics in one equation.
func TestLittlesLawEndToEnd(t *testing.T) {
	for _, kind := range []policy.Kind{policy.Local, policy.BNQ, policy.LERT} {
		t.Run(kind.String(), func(t *testing.T) {
			cfg := Default()
			cfg.PolicyKind = kind
			cfg.Warmup = 4000
			cfg.Measure = 60000
			sys, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			r := sys.Run()
			pop := float64(cfg.NumSites * cfg.MPL)
			implied := r.Throughput * (cfg.ThinkTime + r.MeanResponse)
			if rel := math.Abs(implied-pop) / pop; rel > 0.03 {
				t.Errorf("Little's law: X·(Z+R) = %.1f vs population %.0f (rel err %.3f)",
					implied, pop, rel)
			}
		})
	}
}

// TestUtilizationLaw checks ρ = X·D at the CPUs: measured CPU
// utilization must equal per-site throughput times the mean CPU demand
// per query.
func TestUtilizationLaw(t *testing.T) {
	cfg := Default()
	cfg.PolicyKind = policy.LERT
	cfg.Warmup = 4000
	cfg.Measure = 60000
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := sys.Run()
	// Mean CPU demand per query: 0.5·(20·0.05) + 0.5·(20·1.0) = 10.5.
	const meanCPUDemand = 10.5
	implied := r.Throughput / float64(cfg.NumSites) * meanCPUDemand
	if rel := math.Abs(implied-r.CPUUtil) / r.CPUUtil; rel > 0.05 {
		t.Errorf("utilization law: X·D = %.3f vs measured ρ_c %.3f", implied, r.CPUUtil)
	}
}

// TestBatchMeansCISane: the single-run batch-means interval must center
// on the measured mean and be neither zero nor absurdly wide.
func TestBatchMeansCISane(t *testing.T) {
	cfg := Default()
	cfg.Warmup = 2000
	cfg.Measure = 40000
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := sys.Run()
	if !r.WaitCI.Contains(r.MeanWait) {
		t.Errorf("CI %v..%v does not contain its own mean %v",
			r.WaitCI.Lo(), r.WaitCI.Hi(), r.MeanWait)
	}
	if r.WaitCI.HalfWide <= 0 {
		t.Error("single-run CI has zero width on a long run")
	}
	if r.WaitCI.HalfWide > r.MeanWait {
		t.Errorf("CI half-width %v exceeds the mean %v", r.WaitCI.HalfWide, r.MeanWait)
	}
	// Two independent seeds should produce overlapping 95% intervals
	// virtually always.
	cfg.Seed = 77
	sys2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2 := sys2.Run()
	if r.WaitCI.Lo() > r2.WaitCI.Hi() || r2.WaitCI.Lo() > r.WaitCI.Hi() {
		t.Errorf("independent-run CIs disjoint: [%v,%v] vs [%v,%v]",
			r.WaitCI.Lo(), r.WaitCI.Hi(), r2.WaitCI.Lo(), r2.WaitCI.Hi())
	}
}

// TestWaitNonNegative: with FIFO/PS servers and exact service
// accounting, no query can wait a negative amount.
func TestWaitNonNegative(t *testing.T) {
	cfg := Default()
	cfg.Warmup = 500
	cfg.Measure = 10000
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := sys.Run()
	for _, c := range r.ByClass {
		if c.MeanWait < -1e-9 {
			t.Errorf("class %s mean wait %v negative", c.Name, c.MeanWait)
		}
		if c.MeanResp < c.MeanExecService {
			t.Errorf("class %s response %v below execution service %v",
				c.Name, c.MeanResp, c.MeanExecService)
		}
	}
}

// TestResponseDecomposition: mean response must equal mean execution
// service plus mean waiting, per class and overall.
func TestResponseDecomposition(t *testing.T) {
	cfg := Default()
	cfg.Warmup = 1000
	cfg.Measure = 20000
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := sys.Run()
	for _, c := range r.ByClass {
		if math.Abs(c.MeanResp-(c.MeanExecService+c.MeanWait)) > 1e-6 {
			t.Errorf("class %s: response %v != service %v + wait %v",
				c.Name, c.MeanResp, c.MeanExecService, c.MeanWait)
		}
	}
}

// TestClassMixMatchesProbability: completed-query class shares should
// track ClassProbs.
func TestClassMixMatchesProbability(t *testing.T) {
	cfg := Default()
	cfg.ClassProbs = []float64{0.7, 0.3}
	cfg.Warmup = 1000
	cfg.Measure = 40000
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := sys.Run()
	frac := float64(r.ByClass[0].Completed) / float64(r.Completed)
	// The closed model completes cheap (io) queries faster, so the
	// completion share exceeds the arrival probability slightly.
	if frac < 0.65 || frac > 0.8 {
		t.Errorf("io-class completion share %v, want near 0.7", frac)
	}
}

// TestSubnetConservation: bytes carried must equal 2·msg_length per
// remote completion (transfer + return), up to in-flight edge effects.
func TestSubnetConservation(t *testing.T) {
	cfg := Default()
	cfg.PolicyKind = policy.BNQ
	cfg.Warmup = 1000
	cfg.Measure = 30000
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := sys.Run()
	remote := float64(r.Completed) * r.RemoteFrac
	carried := sys.ring.BytesCarried()
	want := 2 * remote // msg_length 1 each way
	if math.Abs(carried-want)/want > 0.05 {
		t.Errorf("ring carried %v bytes, want ~%v (2 per remote query)", carried, want)
	}
}
