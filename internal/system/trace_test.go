package system

import (
	"strconv"
	"strings"
	"testing"
)

func TestTracerRecordsCompletions(t *testing.T) {
	var sb strings.Builder
	cfg := Default()
	cfg.Warmup = 500
	cfg.Measure = 3000
	cfg.Trace = NewTracer(&sb)
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := sys.Run()
	if err := cfg.Trace.Flush(); err != nil {
		t.Fatal(err)
	}
	if cfg.Trace.Lines() != r.Completed {
		t.Errorf("trace lines %d != completions %d", cfg.Trace.Lines(), r.Completed)
	}

	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != int(r.Completed)+1 {
		t.Fatalf("trace has %d lines, want %d + header", len(lines), r.Completed)
	}
	header := strings.Split(lines[0], ",")
	if header[0] != "id" || header[len(header)-1] != "migrations" {
		t.Errorf("unexpected header %v", header)
	}
	// Every record parses and obeys response = complete − submit ≥ wait ≥ 0.
	for _, line := range lines[1:] {
		f := strings.Split(line, ",")
		if len(f) != len(header) {
			t.Fatalf("record width %d != header %d: %q", len(f), len(header), line)
		}
		response := parseF(t, f[7])
		wait := parseF(t, f[10])
		if wait < -1e-9 || response < wait-1e-9 {
			t.Fatalf("inconsistent record: %q", line)
		}
		if f[1] != "io" && f[1] != "cpu" {
			t.Fatalf("bad class name %q", f[1])
		}
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestTracerExcludesWarmup(t *testing.T) {
	var sb strings.Builder
	cfg := Default()
	cfg.Warmup = 2000
	cfg.Measure = 2000
	cfg.Trace = NewTracer(&sb)
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run()
	if err := cfg.Trace.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(strings.TrimRight(sb.String(), "\n"), "\n") {
		if i == 0 {
			continue
		}
		complete := parseF(t, strings.Split(line, ",")[6])
		if complete < 2000 {
			t.Fatalf("warmup completion traced at t=%v", complete)
		}
	}
}
