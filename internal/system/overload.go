package system

import (
	"fmt"
	"math"

	"dqalloc/internal/arrival"
	"dqalloc/internal/check"
	"dqalloc/internal/policy"
	"dqalloc/internal/rng"
	"dqalloc/internal/sim"
	"dqalloc/internal/workload"
)

// This file is the overload & tail-robustness extension: open (possibly
// bursty) arrivals replacing the closed terminals, per-query deadlines
// that abort a query wherever it currently is, and hedged execution that
// races a straggling remote query against a clone at the next-best site.
//
// Everything here is gated on s.arr / s.dl / s.hedge being non-nil; a run
// with all three knobs disabled schedules no extra events, draws no extra
// random numbers, and is bit-identical to a build without the subsystem.

// Scheduler event kinds for the overload layer (see sim.Event.Kind).
const (
	// eventKindDeadline tags deadline watchdog expirations.
	eventKindDeadline byte = 0x46
	// eventKindHedge tags hedge launch timers.
	eventKindHedge byte = 0x47
)

// Query lifecycle phases, stored in workload.Query.Phase so a deadline
// abort or hedge cancellation knows where the attempt currently is. The
// zero value phaseNone means "not yet dispatched".
const (
	phaseNone int8 = iota
	// phaseDeferred: parked by admission control, awaiting resubmission.
	phaseDeferred
	// phaseCommitted: dispatched and counted in the load table — in
	// transit toward, queued at, or in service at its execution site.
	phaseCommitted
	// phaseResult: execution finished, result page set in transit home.
	phaseResult
	// phaseLost: execution wiped out by a fault, awaiting its watchdog.
	phaseLost
	// phaseDone: completed, rejected, or cancelled; nothing in flight.
	phaseDone
)

// Response-time histogram shape: log-spaced buckets covering [histLo,
// histHi) with ≤ histRelErr relative quantile error (internal/stats).
const (
	histLo     = 0.001
	histHi     = 1e7
	histRelErr = 0.02
)

// hedgeMinSamples is the measured-completion count a class must reach
// before its histogram quantile drives the hedge delay; below it (and
// throughout warmup) the configured MinDelay applies.
const hedgeMinSamples = 32

// DeadlineConfig parameterizes per-query deadlines. The zero value
// (Enabled == false) disables them.
type DeadlineConfig struct {
	// Enabled turns deadlines on.
	Enabled bool
	// Deadline is each query's response-time budget, relative to its
	// submission instant. A query not completed when it expires is
	// aborted wherever it is — queued, in service, or in transit — with
	// its load-table commitment released.
	Deadline float64
}

// DefaultDeadline returns a moderate deadline: 400 time units, a few
// multiples of the baseline mean response time.
func DefaultDeadline() DeadlineConfig {
	return DeadlineConfig{Enabled: true, Deadline: 400}
}

// validate reports the first deadline-config error, if any.
func (d DeadlineConfig) validate() error {
	if !d.Enabled {
		return nil
	}
	if math.IsNaN(d.Deadline) || math.IsInf(d.Deadline, 0) || d.Deadline <= 0 {
		return fmt.Errorf("system: deadline %v must be positive and finite", d.Deadline)
	}
	return nil
}

// HedgeConfig parameterizes hedged execution. The zero value
// (Enabled == false) disables it.
type HedgeConfig struct {
	// Enabled turns hedging on.
	Enabled bool
	// Quantile selects the hedge trigger: a remote query still unfinished
	// after its class's Quantile response time is raced against a clone
	// at the next-best up site. Must lie in (0, 1).
	Quantile float64
	// MinDelay floors the hedge delay; it also applies whenever the
	// class's histogram has too few samples to estimate the quantile
	// (fewer than 32 measured completions, e.g. during warmup).
	MinDelay float64
}

// DefaultHedge returns the classic tail-hedging setting: re-issue at the
// p95 response time, never sooner than 50 time units.
func DefaultHedge() HedgeConfig {
	return HedgeConfig{Enabled: true, Quantile: 0.95, MinDelay: 50}
}

// validate reports the first hedge-config error, if any.
func (h HedgeConfig) validate() error {
	if !h.Enabled {
		return nil
	}
	switch {
	case math.IsNaN(h.Quantile) || h.Quantile <= 0 || h.Quantile >= 1:
		return fmt.Errorf("system: hedge quantile %v outside (0,1)", h.Quantile)
	case math.IsNaN(h.MinDelay) || math.IsInf(h.MinDelay, 0) || h.MinDelay <= 0:
		return fmt.Errorf("system: hedge MinDelay %v must be positive and finite", h.MinDelay)
	}
	return nil
}

// arrivalRuntime is the per-run state of the open-arrival subsystem: one
// source per query class with positive arrival rate.
type arrivalRuntime struct {
	cfg     arrival.Config
	sources []*arrival.Source
}

// deadlineRuntime is the per-run state of the deadline subsystem.
type deadlineRuntime struct {
	cfg DeadlineConfig
	// timers maps every query with an armed deadline to its watchdog.
	timers map[*workload.Query]sim.Handle

	armed     uint64
	met       uint64
	missed    uint64
	cancelled uint64
}

// hedgeRuntime is the per-run state of the hedging subsystem.
type hedgeRuntime struct {
	cfg HedgeConfig
	// races maps a hedged primary to its race; byClone indexes the same
	// races by the clone once one is launched.
	races   map[*workload.Query]*hedgeRace
	byClone map[*workload.Query]*hedgeRace

	launched     uint64
	wins         uint64
	cancelled    uint64
	activeClones int
}

// hedgeRace is one primary/clone race.
type hedgeRace struct {
	primary *workload.Query
	// clone is the racing re-issue, nil before the timer fires and after
	// the clone dies.
	clone *workload.Query
	// timer is the pending hedge launch.
	timer sim.Handle
	// fired marks that the launch decision was taken (at most one clone
	// per primary, even across fault retries).
	fired bool
	// primaryDead marks that the primary exhausted its retry budget while
	// the clone was still racing: the clone alone carries the query.
	primaryDead bool
}

// setupArrivals builds the open-arrival runtime during New. astream must
// be the root's dedicated arrival child (Child 10); each class with a
// positive share of the offered load gets its own source and sub-stream.
func (s *System) setupArrivals(astream *rng.Stream) error {
	ar := &arrivalRuntime{cfg: s.cfg.Arrival}
	for c := range s.cfg.Classes {
		rate := s.cfg.Arrival.Rate * s.cfg.ClassProbs[c]
		if rate <= 0 {
			continue
		}
		class := c
		src, err := arrival.NewSource(s.sched, s.cfg.Arrival, rate, s.cfg.NumSites,
			astream.Child(uint64(c+1)),
			func(home int) { s.submitOpen(class, home) })
		if err != nil {
			return err
		}
		ar.sources = append(ar.sources, src)
	}
	s.arr = ar
	return nil
}

// submitOpen is the open-arrival counterpart of submit: the source
// already chose the class and home terminal, so only the read count is
// sampled here.
func (s *System) submitOpen(class, home int) {
	q := s.gen.NewOfClass(class, home, s.sched.Now())
	if s.noise != nil {
		s.noise.Perturb(q)
	}
	if s.cfg.Placement != nil {
		q.Object = s.objStream.Intn(s.cfg.Placement.NumObjects())
	}
	if s.aud != nil {
		s.aud.Submitted(s.sched.Now())
	}
	if s.par != nil {
		s.parSubmit(q)
		return
	}
	s.allocate(q)
}

// openArrivals sums the lifetime arrival counts across sources (zero in
// closed mode).
func (s *System) openArrivals() uint64 {
	if s.arr == nil {
		return 0
	}
	var n uint64
	for _, src := range s.arr.sources {
		n += src.Arrivals()
	}
	return n
}

// overloadTotals implements the closure read by
// check.NewDeadlineConservation, merging the deadline and hedge ledgers
// (either subsystem may be disabled).
func (s *System) overloadTotals() check.DeadlineTotals {
	var t check.DeadlineTotals
	if s.dl != nil {
		t.Armed, t.Met, t.Missed, t.Cancelled = s.dl.armed, s.dl.met, s.dl.missed, s.dl.cancelled
		t.Pending = len(s.dl.timers)
	}
	if s.hedge != nil {
		t.HedgesLaunched, t.HedgeWins, t.HedgeCancelled = s.hedge.launched, s.hedge.wins, s.hedge.cancelled
		t.HedgePending = s.hedge.activeClones
	}
	if s.par != nil {
		t.OpsAborted, t.OpReleases = s.par.dlOpsAborted, s.par.dlOpReleases
	}
	return t
}

// audRetire reports to the auditors that one population member left
// without completing or being counted in Results.QueriesRejected — a
// cancelled hedge clone, or a primary whose clone won.
func (s *System) audRetire(now float64) {
	if s.aud != nil {
		s.aud.Rejected(now)
	}
}

// markDefunct flags a query that was cancelled while in transit on the
// ring (or while parked by admission): its pending delivery event cannot
// be cancelled, so the delivery consumes the flag and drops the query.
func (s *System) markDefunct(q *workload.Query) {
	s.defunct[q] = struct{}{}
}

// dropDefunct consumes a defunct flag, reporting whether the query was
// cancelled while this delivery was pending. Free when the overload
// subsystems are off (the map is nil and the length check short-circuits).
func (s *System) dropDefunct(q *workload.Query) bool {
	if len(s.defunct) == 0 {
		return false
	}
	if _, ok := s.defunct[q]; ok {
		delete(s.defunct, q)
		return true
	}
	return false
}

// execDeliver lands a shipped (or migrated) query at its execution site,
// unless it was cancelled in transit.
func (s *System) execDeliver(q *workload.Query, exec int) {
	if s.dropDefunct(q) {
		return
	}
	s.landQuery(q, exec)
}

// resultDeliver lands a result page set at the home terminal, unless the
// query was aborted while the result was in transit.
func (s *System) resultDeliver(q *workload.Query) {
	if s.dropDefunct(q) {
		return
	}
	s.complete(q)
}

// resultDropped is the fault path of a result return: the loss only
// matters if the query is still live.
func (s *System) resultDropped(q *workload.Query) {
	if s.dropDefunct(q) {
		return
	}
	s.faultLost(q)
}

// deadlineArm starts a query's deadline watchdog at its first allocation
// attempt; deferrals and retries keep the original watchdog.
func (s *System) deadlineArm(q *workload.Query) {
	if s.dl == nil {
		return
	}
	if _, ok := s.dl.timers[q]; ok {
		return
	}
	remaining := q.SubmitTime + s.dl.cfg.Deadline - s.sched.Now()
	if remaining < 0 {
		remaining = 0
	}
	ev := s.sched.After(remaining, func() { s.deadlineExpire(q) })
	ev.SetKind(eventKindDeadline)
	s.dl.timers[q] = ev
	s.dl.armed++
}

// deadlineMet retires the watchdog of a query that completed in time.
func (s *System) deadlineMet(q *workload.Query) {
	if s.dl == nil {
		return
	}
	if ev, ok := s.dl.timers[q]; ok {
		s.sched.Cancel(ev)
		delete(s.dl.timers, q)
		s.dl.met++
	}
}

// deadlineCancel retires the watchdog of a query leaving the population
// through a rejection path (admission shed, retry budget exhausted).
func (s *System) deadlineCancel(q *workload.Query) {
	if s.dl == nil {
		return
	}
	if ev, ok := s.dl.timers[q]; ok {
		s.sched.Cancel(ev)
		delete(s.dl.timers, q)
		s.dl.cancelled++
	}
}

// deadlineExpire aborts a query whose deadline passed: the attempt is
// withdrawn from wherever it currently is (with exactly-once load-table
// release), any racing hedge clone is withdrawn with it, and the query
// counts as missed, aborted, and rejected. In closed mode the terminal
// returns to thinking, preserving the population.
func (s *System) deadlineExpire(q *workload.Query) {
	if _, ok := s.dl.timers[q]; !ok {
		return
	}
	delete(s.dl.timers, q)
	s.dl.missed++
	now := s.sched.Now()
	if s.hedge != nil {
		if race := s.hedge.races[q]; race != nil {
			s.sched.Cancel(race.timer)
			if race.clone != nil {
				s.cancelAttempt(race.clone)
				delete(s.hedge.byClone, race.clone)
				s.hedge.activeClones--
				s.hedge.cancelled++
				s.audRetire(now)
			}
			delete(s.hedge.races, q)
		}
	}
	if s.par != nil {
		// An operator-split query withdraws every per-site attempt (each
		// releasing its commitment exactly once) and is then settled.
		s.parDeadlineAbort(q)
	}
	if q.Phase != phaseDone {
		s.cancelAttempt(q)
	}
	s.aborted++
	s.rejected++
	if s.aud != nil {
		s.aud.Rejected(now)
	}
	if s.arr == nil {
		s.startThink(q.Home)
	}
}

// cancelAttempt withdraws one in-flight attempt (a deadline-aborted
// query, a hedge loser, or a fault-orphaned primary) from wherever it
// currently is, releasing its load-table commitment exactly once and
// retiring its fault watchdog. The phase tells it what is outstanding:
//
//   - phaseCommitted: the attempt holds a table commitment and is either
//     at its site (aborted in place) or in transit (marked defunct so the
//     delivery drops it).
//   - phaseResult: execution already released the commitment; only the
//     homeward result message remains, marked defunct.
//   - phaseDeferred: parked by admission; the resubmission timer's query
//     is marked defunct and the admission ledger records the abort.
//   - phaseLost: nothing is in flight; the loss ledger records that the
//     pending recovery was preempted.
func (s *System) cancelAttempt(q *workload.Query) {
	switch q.Phase {
	case phaseCommitted:
		if !s.sites[q.Exec].Abort(q) {
			s.markDefunct(q)
		}
		s.releaseAllocation(q)
	case phaseResult:
		s.markDefunct(q)
	case phaseDeferred:
		s.markDefunct(q)
		s.adm.waiting--
		s.adm.aborted++
	case phaseLost:
		// Nothing in flight; the watchdog retirement below settles it.
	}
	if s.faults != nil {
		if e := s.faults.pending[q]; e != nil {
			if e.lost {
				s.faults.pendingRecovery--
				s.faults.preempted++
			}
			s.sched.Cancel(e.timer)
			delete(s.faults.pending, q)
		}
	}
	q.Phase = phaseDone
}

// hedgeArm schedules the hedge decision for a newly dispatched remote
// query. Local executions are normally not hedged (there is no
// straggling network leg to race) — unless the gray-failure detector
// suspects the home site, in which case a stuck local query is exactly
// the straggler hedging exists for. A query re-dispatched by the fault
// layer keeps its original race.
func (s *System) hedgeArm(q *workload.Query) {
	if s.hedge == nil {
		return
	}
	if q.Exec == q.Home && !s.suspected(q.Exec) {
		return
	}
	if _, ok := s.hedge.races[q]; ok {
		return
	}
	race := &hedgeRace{primary: q}
	race.timer = s.sched.After(s.hedgeDelay(q.Class), func() { s.hedgeFire(q) })
	race.timer.SetKind(eventKindHedge)
	s.hedge.races[q] = race
}

// hedgeDelay returns the class's current hedge trigger: its measured
// response-time quantile once enough samples exist, floored by MinDelay.
func (s *System) hedgeDelay(class int) float64 {
	h := s.respHists[class]
	if h.Count() >= hedgeMinSamples {
		if d := h.Quantile(s.hedge.cfg.Quantile); d > s.hedge.cfg.MinDelay {
			return d
		}
	}
	return s.hedge.cfg.MinDelay
}

// hedgeFire launches the clone if the primary is still committed when
// the trigger fires: the policy picks the best up site excluding the
// primary's, and a fresh copy of the query races the original there.
// The clone joins the auditor population as a submission; it carries no
// deadline, no fault watchdog, and no nested hedge of its own.
func (s *System) hedgeFire(q *workload.Query) {
	race := s.hedge.races[q]
	if race == nil || race.fired {
		return
	}
	race.fired = true
	if q.Phase != phaseCommitted {
		return
	}
	exec := s.hedgeSite(q)
	if exec == policy.NoSite {
		return
	}
	clone := &workload.Query{
		ID:         q.ID,
		Class:      q.Class,
		Home:       q.Home,
		Object:     q.Object,
		ReadsTotal: q.ReadsTotal,
		EstReads:   q.EstReads,
		EstPageCPU: q.EstPageCPU,
		SubmitTime: q.SubmitTime,
	}
	race.clone = clone
	s.hedge.byClone[clone] = race
	s.hedge.launched++
	s.hedge.activeClones++
	if s.aud != nil {
		s.aud.Submitted(s.sched.Now())
	}
	s.dispatch(clone, exec)
}

// hedgeSite runs the allocation policy over the candidate sites that are
// up and distinct from the primary's execution site, returning NoSite
// when none exists.
func (s *System) hedgeSite(q *workload.Query) int {
	s.hedgeScratch = s.hedgeScratch[:0]
	for _, c := range s.candidateSites(q) {
		if c != q.Exec && s.up(c) {
			s.hedgeScratch = append(s.hedgeScratch, c)
		}
	}
	if len(s.hedgeScratch) == 0 {
		return policy.NoSite
	}
	saved := s.env.Candidates
	s.env.Candidates = s.hedgeScratch
	exec := s.pol.Select(q, q.Home, s.env)
	s.env.Candidates = saved
	return exec
}

// hedgeResolve settles a race at completion time: whichever of primary
// and clone finished first wins, the loser's attempt is withdrawn, and
// the primary — the logical query whose watchdog, deadline, and terminal
// the rest of complete() must retire — is returned. Queries with no race
// pass through untouched.
func (s *System) hedgeResolve(q *workload.Query) *workload.Query {
	now := s.sched.Now()
	if race := s.hedge.byClone[q]; race != nil {
		// The clone won the race.
		s.sched.Cancel(race.timer)
		delete(s.hedge.byClone, q)
		s.hedge.activeClones--
		s.hedge.wins++
		primary := race.primary
		if s.slow != nil && !race.primaryDead && s.slow.inj.Slowed(primary.Exec) {
			// The loser was stuck at a site mid-fail-slow-episode: this
			// hedge demonstrably beat a gray failure.
			s.slow.hedgeWinsVsSlow++
		}
		delete(s.hedge.races, primary)
		if !race.primaryDead {
			s.cancelAttempt(primary)
		}
		// The primary leaves the population; the clone is the completion.
		s.audRetire(now)
		return primary
	}
	if race := s.hedge.races[q]; race != nil {
		// The primary won (or finished unraced).
		s.sched.Cancel(race.timer)
		delete(s.hedge.races, q)
		if race.clone != nil {
			s.cancelAttempt(race.clone)
			delete(s.hedge.byClone, race.clone)
			s.hedge.activeClones--
			s.hedge.cancelled++
			s.audRetire(now)
		}
	}
	return q
}

// cloneDied handles a fault destroying a racing clone (site crash or
// message drop): clones carry no watchdog, so the loss retires the clone
// outright. If the primary had already exhausted its retry budget, the
// logical query dies with the clone and is rejected.
func (s *System) cloneDied(clone *workload.Query, race *hedgeRace) {
	clone.Phase = phaseDone
	race.clone = nil
	delete(s.hedge.byClone, clone)
	s.hedge.activeClones--
	s.hedge.cancelled++
	s.audRetire(s.sched.Now())
	if race.primaryDead {
		delete(s.hedge.races, race.primary)
		s.rejectQuery(race.primary)
	}
}
