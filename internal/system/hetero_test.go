package system

import (
	"testing"

	"dqalloc/internal/policy"
)

func heteroConfig(kind policy.Kind) Config {
	cfg := Default()
	cfg.PolicyKind = kind
	// One double-speed CPU, one half-speed CPU, four baseline sites.
	cfg.CPUSpeeds = []float64{2, 1, 1, 1, 1, 0.5}
	cfg.Warmup = 2000
	cfg.Measure = 25000
	return cfg
}

func TestCPUSpeedsValidation(t *testing.T) {
	cfg := Default()
	cfg.CPUSpeeds = []float64{1, 1}
	if cfg.Validate() == nil {
		t.Error("wrong-length CPU speeds accepted")
	}
	cfg.CPUSpeeds = []float64{1, 1, 1, 1, 1, 0}
	if cfg.Validate() == nil {
		t.Error("zero CPU speed accepted")
	}
	cfg = heteroConfig(policy.LERT)
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid heterogeneous config rejected: %v", err)
	}
}

func TestHeterogeneousRunsComplete(t *testing.T) {
	for _, kind := range []policy.Kind{policy.Local, policy.BNQ, policy.LERT} {
		sys, err := New(heteroConfig(kind))
		if err != nil {
			t.Fatal(err)
		}
		if r := sys.Run(); r.Completed == 0 {
			t.Errorf("%v: no completions on heterogeneous hardware", kind)
		}
	}
}

func TestFastSiteServesFaster(t *testing.T) {
	// Under LOCAL the fast site's CPU utilization must be well below the
	// slow site's: same arrival work, double the service rate.
	sys, err := New(heteroConfig(policy.Local))
	if err != nil {
		t.Fatal(err)
	}
	sys.Run()
	end := sys.cfg.Warmup + sys.cfg.Measure
	fast := sys.sites[0].CPUUtilization(end)
	slow := sys.sites[5].CPUUtilization(end)
	if fast >= slow {
		t.Errorf("fast site CPU util %v not below slow site %v", fast, slow)
	}
}

func TestLERTExploitsHeterogeneity(t *testing.T) {
	// LERT's speed-aware cost function should beat the count-based BNQ by
	// more on heterogeneous hardware than on homogeneous hardware, since
	// BNQ treats a slow site like any other.
	wait := func(kind policy.Kind, hetero bool) float64 {
		cfg := heteroConfig(kind)
		if !hetero {
			cfg.CPUSpeeds = nil
		}
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sys.Run().MeanWait
	}
	gapHomo := wait(policy.BNQ, false) - wait(policy.LERT, false)
	gapHetero := wait(policy.BNQ, true) - wait(policy.LERT, true)
	if gapHetero <= gapHomo {
		t.Errorf("LERT's edge over BNQ on heterogeneous hardware (%v) not larger than homogeneous (%v)",
			gapHetero, gapHomo)
	}
}

func TestLERTSendsCPUWorkToFastSite(t *testing.T) {
	// Under LERT, the fast CPU should attract more completed work than a
	// baseline site: compare pages processed.
	sys, err := New(heteroConfig(policy.LERT))
	if err != nil {
		t.Fatal(err)
	}
	sys.Run()
	fast := sys.sites[0].PagesRead()
	slow := sys.sites[5].PagesRead()
	if fast <= slow {
		t.Errorf("fast site read %d pages, slow site %d; LERT not steering work", fast, slow)
	}
}
