// Package system assembles the complete distributed database model of the
// paper's Figure 1: a set of homogeneous DB sites (internal/site), each
// with a set of terminals, connected by a token-ring subnet
// (internal/network), with a dynamic query allocation policy
// (internal/policy) deciding where each newly submitted query executes.
// It is a closed queuing model: each of the mpl terminals per site cycles
// think → submit → wait-for-results.
package system

import (
	"fmt"

	"dqalloc/internal/arrival"
	"dqalloc/internal/fault"
	"dqalloc/internal/loadinfo"
	"dqalloc/internal/noise"
	"dqalloc/internal/policy"
	"dqalloc/internal/queue"
	"dqalloc/internal/replica"
	"dqalloc/internal/sim"
	"dqalloc/internal/site"
	"dqalloc/internal/workload"
)

// InfoMode selects how allocators learn remote loads.
type InfoMode int

const (
	// InfoPerfect gives allocators the live load table — the paper's
	// working assumption (Section 2).
	InfoPerfect InfoMode = iota + 1
	// InfoPeriodic gives allocators a snapshot refreshed every InfoPeriod
	// time units (the staleness extension of Section 4.4).
	InfoPeriodic
)

// String returns the mode name.
func (m InfoMode) String() string {
	switch m {
	case InfoPerfect:
		return "perfect"
	case InfoPeriodic:
		return "periodic"
	default:
		return "unknown"
	}
}

// Config parameterizes one simulation run. Zero values are invalid except
// where noted; use Default() for the paper's Table 7 baseline.
type Config struct {
	// NumSites is the number of DB sites (Table 7: 2–10, default 6).
	NumSites int
	// NumDisks is the number of disks per site (Table 7: 2).
	NumDisks int
	// MPL is the number of terminals per site (Table 7: 15–30, default 20).
	MPL int

	// DiskTime is the mean page access time (Table 7: 1).
	DiskTime float64
	// DiskTimeDev is the uniform disk-time half-width as a fraction of
	// DiskTime (Table 7: 20%).
	DiskTimeDev float64
	// ThinkTime is the mean terminal think time (Table 7: 150–450,
	// default 350); exponential.
	ThinkTime float64

	// Classes and ClassProbs define the workload mix. ClassProbs[i] is
	// the probability a new query belongs to Classes[i].
	Classes    []workload.Class
	ClassProbs []float64
	// EstimateMode selects what the allocator sees as query demands.
	EstimateMode workload.EstimateMode

	// DiskSelection picks the disk serving each read.
	DiskSelection queue.DiskSelection
	// DiskDist selects the disk service-time distribution; the zero value
	// means the paper's uniform distribution.
	DiskDist site.DiskDist

	// PolicyKind selects a built-in allocation policy; CustomPolicy, if
	// non-nil, overrides it.
	PolicyKind   policy.Kind
	CustomPolicy policy.Policy

	// InfoMode and InfoPeriod configure load-information freshness.
	InfoMode   InfoMode
	InfoPeriod float64

	// Placement, when non-nil, makes the database partially replicated
	// (the future-work environment of Section 6.2): each query references
	// a uniformly random object and may only execute at the sites holding
	// a copy. nil means fully replicated — the paper's main environment.
	Placement *replica.Placement

	// Replication configures the self-healing replica manager on top of
	// Placement: crash-driven re-replication (a fragment dropping below
	// MinCopies gets rebuilt over the ring), load-driven replica add/drop
	// from EWMA access rates, and degraded remote reads when no up site
	// holds a fragment. Disabled (the zero value) by default; a disabled
	// run — including one with a static Placement — is event-for-event
	// identical to a build without the subsystem. Requires Placement.
	Replication replica.ManagerConfig

	// Migration enables mid-execution query migration at cycle
	// boundaries (the future-work extension of Section 6.2).
	Migration MigrationConfig

	// CPUSpeeds gives each site a CPU speed factor (heterogeneity
	// extension). nil or all-ones is the paper's homogeneous system; when
	// set it must have NumSites positive entries.
	CPUSpeeds []float64

	// MsgTime is the network transfer time per byte (Section 2, Table 3).
	// With MsgTime = 1 a class's MsgLength is directly the transfer time,
	// matching the collapsed msg_length parameter of Table 7.
	MsgTime float64

	// Trace, when non-nil, receives one CSV record per query completed
	// inside the measured window.
	Trace *Tracer

	// Noise configures the estimation-error injector: multiplicative
	// noise on each submitted query's EstReads/EstPageCPU, so policies
	// decide on imperfect optimizer predictions while execution consumes
	// the true sampled demands. Disabled (the zero value) by default; a
	// disabled run is event-for-event identical to one built without the
	// subsystem.
	Noise noise.Config

	// Tuning configures the selector's anti-herd defenses — hysteresis,
	// power-of-K candidate sampling, probabilistic tie-breaking. The zero
	// value restores the paper's plain Figure-3 loop bit for bit. Only
	// meaningful with a built-in cost-based PolicyKind (BNQ, BNQRD, LERT,
	// WORK).
	Tuning policy.Tuning

	// Admission configures per-site overload admission control: a bounded
	// run queue with defer-or-shed backpressure to the terminals.
	// Disabled (the zero value) by default; a disabled run is
	// event-for-event identical to one built without the subsystem.
	Admission AdmissionConfig

	// Fault configures the fault-injection subsystem: site crash/repair
	// processes, lossy/delayed transmissions and load broadcasts, and
	// the watchdog's timeout/retry failover. Disabled (the zero value)
	// by default; a disabled run is event-for-event identical to one
	// built without the subsystem.
	Fault fault.Config

	// Suspect configures the gray-failure suspicion detector: each
	// completed query feeds its execution site's realized-slowdown EWMA,
	// sites far above the population median are marked suspect, and the
	// allocation policies route around them (cost policies via a
	// surcharge, LOCAL/RANDOM via clean-site preference). Disabled (the
	// zero value) by default; a disabled run is event-for-event identical
	// to one built without the subsystem. Usually combined with
	// Fault.SlowMTTF — but it works against any slowness source, e.g.
	// heterogeneous CPUSpeeds.
	Suspect loadinfo.SuspectConfig

	// Arrival replaces the closed terminals with an open arrival process
	// — per-class Poisson or bursty 2-state MMPP sources (overload
	// extension). Disabled (the zero value) by default, preserving the
	// paper's closed model bit for bit.
	Arrival arrival.Config

	// Deadline arms a per-query response-time watchdog that aborts the
	// query wherever it is when the budget expires. Disabled (the zero
	// value) by default; a disabled run is event-for-event identical to
	// one built without the subsystem.
	Deadline DeadlineConfig

	// Hedge races straggling remote queries against a clone at the
	// next-best up site; the first finisher wins and the loser is
	// cancelled. Disabled (the zero value) by default; a disabled run is
	// event-for-event identical to one built without the subsystem.
	Hedge HedgeConfig

	// Parallel turns queries into small operator trees (scan/filter/join
	// plans) that the allocator may split across sites, with
	// intermediate results shipped over the ring. Disabled (the zero
	// value) by default; a disabled run is event-for-event identical to
	// one built without the subsystem.
	Parallel ParallelConfig

	// Scheduler selects the kernel's future-event list implementation:
	// sim.Calendar (the default adaptive calendar queue) or sim.Heap (the
	// reference binary heap). The two are observationally identical —
	// every run fires the same events in the same order with either, and
	// TraceDigest values match bit for bit — so this knob trades only
	// performance, and exists chiefly so regression suites can
	// cross-check the implementations on full macro runs.
	Scheduler sim.Impl

	// Audit attaches the internal/check runtime auditors to the run:
	// query conservation, utilization bounds, Little's law, event-clock
	// monotonicity, and ring message conservation. Off by default so hot
	// paths pay nothing; read violations with System.Audit after Run.
	Audit bool

	// TraceDigest maintains a running hash of every fired event's
	// (time, seq, kind) in the scheduler and reports it in
	// Results.TraceDigest. Two runs with the same configuration and seed
	// are event-for-event identical iff their digests match.
	TraceDigest bool

	// Seed selects the experiment's random streams.
	Seed uint64
	// Warmup is the transient discarded before measurement; Measure is
	// the measured horizon.
	Warmup  float64
	Measure float64
}

// Default returns the paper's baseline configuration (Table 7 with the
// defaults quoted in Section 5.1): 6 sites, 2 disks, mpl 20, think time
// 350, a 50/50 I/O-bound / CPU-bound mix with per-page CPU means 0.05 and
// 1.0, 20 reads per query, and msg_length 1.
func Default() Config {
	return Config{
		NumSites:    6,
		NumDisks:    2,
		MPL:         20,
		DiskTime:    1,
		DiskTimeDev: 0.2,
		ThinkTime:   350,
		Classes: []workload.Class{
			{Name: "io", PageCPUTime: 0.05, NumReads: 20, MsgLength: 1},
			{Name: "cpu", PageCPUTime: 1.0, NumReads: 20, MsgLength: 1},
		},
		ClassProbs:    []float64{0.5, 0.5},
		EstimateMode:  workload.EstimateClassMean,
		DiskSelection: queue.SelectRandom,
		PolicyKind:    policy.LERT,
		InfoMode:      InfoPerfect,
		MsgTime:       1,
		Seed:          1,
		Warmup:        5000,
		Measure:       50000,
	}
}

// Validate reports the first configuration error, if any.
func (c Config) Validate() error {
	switch {
	case c.NumSites < 1:
		return fmt.Errorf("system: NumSites %d < 1", c.NumSites)
	case c.NumDisks < 1:
		return fmt.Errorf("system: NumDisks %d < 1", c.NumDisks)
	case c.MPL < 1:
		return fmt.Errorf("system: MPL %d < 1", c.MPL)
	case c.DiskTime <= 0:
		return fmt.Errorf("system: DiskTime %v must be positive", c.DiskTime)
	case c.DiskTimeDev < 0 || c.DiskTimeDev >= 1:
		return fmt.Errorf("system: DiskTimeDev %v outside [0,1)", c.DiskTimeDev)
	case c.ThinkTime < 0:
		return fmt.Errorf("system: negative ThinkTime %v", c.ThinkTime)
	case len(c.Classes) == 0:
		return fmt.Errorf("system: no query classes")
	case len(c.ClassProbs) != len(c.Classes):
		return fmt.Errorf("system: %d class probabilities for %d classes",
			len(c.ClassProbs), len(c.Classes))
	case c.MsgTime < 0:
		return fmt.Errorf("system: negative MsgTime %v", c.MsgTime)
	case c.Warmup < 0:
		return fmt.Errorf("system: negative Warmup %v", c.Warmup)
	case c.Measure <= 0:
		return fmt.Errorf("system: Measure %v must be positive", c.Measure)
	}
	for _, cl := range c.Classes {
		if err := cl.Validate(); err != nil {
			return fmt.Errorf("system: %w", err)
		}
	}
	if c.InfoMode == InfoPeriodic && c.InfoPeriod <= 0 {
		return fmt.Errorf("system: periodic info needs positive InfoPeriod, got %v", c.InfoPeriod)
	}
	if c.InfoMode != InfoPerfect && c.InfoMode != InfoPeriodic {
		return fmt.Errorf("system: invalid InfoMode %d", c.InfoMode)
	}
	if c.Placement != nil && c.Placement.NumSites() != c.NumSites {
		return fmt.Errorf("system: placement spans %d sites, system has %d",
			c.Placement.NumSites(), c.NumSites)
	}
	if c.Replication.Enabled {
		if c.Placement == nil {
			return fmt.Errorf("system: replica manager requires a Placement")
		}
		if err := c.Replication.Validate(c.NumSites); err != nil {
			return fmt.Errorf("system: %w", err)
		}
	}
	if err := c.Migration.validate(); err != nil {
		return err
	}
	if err := c.Fault.Validate(); err != nil {
		return fmt.Errorf("system: %w", err)
	}
	if err := c.Suspect.Validate(); err != nil {
		return fmt.Errorf("system: %w", err)
	}
	if err := c.Noise.Validate(); err != nil {
		return fmt.Errorf("system: %w", err)
	}
	if c.Tuning.Enabled() {
		if err := c.Tuning.Validate(c.NumSites); err != nil {
			return fmt.Errorf("system: %w", err)
		}
		if c.CustomPolicy != nil {
			return fmt.Errorf("system: anti-herd tuning cannot wrap a custom policy")
		}
		switch c.PolicyKind {
		case policy.BNQ, policy.BNQRD, policy.LERT, policy.Work:
		default:
			return fmt.Errorf("system: anti-herd tuning requires a cost-based policy, not %v", c.PolicyKind)
		}
	}
	if err := c.Admission.validate(); err != nil {
		return err
	}
	if err := c.Arrival.Validate(); err != nil {
		return fmt.Errorf("system: %w", err)
	}
	if err := c.Deadline.validate(); err != nil {
		return err
	}
	if err := c.Hedge.validate(); err != nil {
		return err
	}
	if err := c.Parallel.validate(); err != nil {
		return err
	}
	if c.Parallel.Enabled {
		if c.Parallel.Hedge && !c.Hedge.Enabled {
			return fmt.Errorf("system: Parallel.Hedge requires Hedge.Enabled")
		}
		if c.Migration.Enabled {
			// Migration's cycle hook would move operator carriers without
			// the plan engine's knowledge.
			return fmt.Errorf("system: parallel queries and migration are mutually exclusive")
		}
	}
	if c.Scheduler != sim.Calendar && c.Scheduler != sim.Heap {
		return fmt.Errorf("system: invalid Scheduler %d", c.Scheduler)
	}
	if c.CPUSpeeds != nil {
		if len(c.CPUSpeeds) != c.NumSites {
			return fmt.Errorf("system: %d CPU speeds for %d sites", len(c.CPUSpeeds), c.NumSites)
		}
		for i, v := range c.CPUSpeeds {
			if v <= 0 {
				return fmt.Errorf("system: non-positive CPU speed %v at site %d", v, i)
			}
		}
	}
	return nil
}

// PolicyName returns the name of the policy a run with this config uses.
func (c Config) PolicyName() string {
	if c.CustomPolicy != nil {
		return c.CustomPolicy.Name()
	}
	return c.PolicyKind.String()
}
