package system

import (
	"testing"

	"dqalloc/internal/policy"
)

// digestRun executes one audited run and returns its trace digest.
func digestRun(t *testing.T, kind policy.Kind, seed uint64) uint64 {
	t.Helper()
	cfg := Default()
	cfg.PolicyKind = kind
	cfg.Seed = seed
	cfg.Warmup = 500
	cfg.Measure = 6000
	cfg.Audit = true
	cfg.TraceDigest = true
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := sys.Run()
	if err := sys.Audit(); err != nil {
		t.Fatalf("%v seed %d: %v", kind, seed, err)
	}
	if r.TraceDigest == 0 {
		t.Fatalf("%v seed %d: zero trace digest", kind, seed)
	}
	return r.TraceDigest
}

// TestTraceDigestDeterministic is the determinism regression test: under
// every allocation policy, re-running the same seed must reproduce the
// event stream bit-for-bit (equal digests), and a different seed must
// not (the digest actually covers the stream).
func TestTraceDigestDeterministic(t *testing.T) {
	for _, kind := range []policy.Kind{policy.Local, policy.BNQ, policy.BNQRD, policy.LERT} {
		t.Run(kind.String(), func(t *testing.T) {
			a := digestRun(t, kind, 3)
			b := digestRun(t, kind, 3)
			if a != b {
				t.Errorf("same seed digests differ: %x vs %x", a, b)
			}
			if other := digestRun(t, kind, 4); other == a {
				t.Errorf("different seeds share digest %x", a)
			}
		})
	}
}

// TestTraceDigestDistinguishesPolicies: the policies allocate differently
// under the default contention, so their event streams — and digests —
// must differ on a shared seed.
func TestTraceDigestDistinguishesPolicies(t *testing.T) {
	digests := map[uint64]policy.Kind{}
	for _, kind := range []policy.Kind{policy.Local, policy.BNQ, policy.BNQRD, policy.LERT} {
		d := digestRun(t, kind, 3)
		if prev, dup := digests[d]; dup {
			t.Errorf("%v and %v share digest %x", prev, kind, d)
		}
		digests[d] = kind
	}
}
