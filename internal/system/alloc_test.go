package system

import (
	"testing"

	"dqalloc/internal/race"
)

// TestThinkExecuteCycleAllocBudget pins the end-to-end allocation cost
// of the model: one full terminal cycle (think → submit → allocate →
// execute → reply) costs a handful of allocations — the Query object
// and its per-run bookkeeping — and nothing per event. The budget is
// per completed query, amortizing one-time construction over the run;
// it is set at roughly 2× the measured value (~3/query on a short
// run), far below the ~50/query a per-event closure regression costs.
func TestThinkExecuteCycleAllocBudget(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are inflated under -race")
	}
	cfg := Default()
	cfg.Seed = 1
	cfg.Warmup = 300
	cfg.Measure = 2000
	var res Results
	avg := testing.AllocsPerRun(1, func() {
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res = sys.Run()
	})
	if res.Completed == 0 {
		t.Fatal("run completed nothing")
	}
	perQuery := avg / float64(res.Completed)
	t.Logf("%.0f allocs over %d completions = %.2f allocs/query", avg, res.Completed, perQuery)
	if perQuery > 6 {
		t.Errorf("think–execute cycle costs %.2f allocs/query, budget 6", perQuery)
	}
}
