package system

import (
	"fmt"
	"math"

	"dqalloc/internal/check"
	"dqalloc/internal/network"
	"dqalloc/internal/policy"
	"dqalloc/internal/rng"
	"dqalloc/internal/sim"
	"dqalloc/internal/workload"
)

// This file is the parallel-query extension: queries may be small
// operator trees (internal/workload plans) instead of monolithic
// reads×(disk→CPU) loops, and the allocator may split one query across
// sites — per-operator placement, and fragment-and-replicate splits of
// the bottom join at a cost-model-chosen degree of parallelism.
// Operators execute as "carrier" queries on the existing site engine
// (their per-resource demands encoded in ReadsTotal/PageCPU), and
// intermediate results ship between sites as ring messages tagged
// eventKindOperator.
//
// Everything here is gated on s.par != nil; a run with
// Config.Parallel.Enabled == false schedules no extra events, draws no
// extra random numbers, and is bit-identical to a build without the
// subsystem. The plan sampler draws from its own dedicated root child
// (12), so even an enabled run whose every plan degenerates to a single
// scan (JoinProb 0) leaves all other streams untouched and reproduces
// the monolithic model event for event.
//
// Simplifications, stated rather than hidden: carriers bypass admission
// control (the logical query was already admitted at submission), plans
// are not migrated (Config.Validate forbids the combination), lost
// operators are not individually retried — any fault touching a plan
// collapses the whole plan into a rejection, which the watchdog-free
// carriers make exactly-once — and a hedge clone of a non-scan operator
// starts at its site without re-shipping the inputs (the model assumes
// the small intermediate pages travel with the clone descriptor).

// eventKindOperator tags ring transmissions carrying an operator's
// intermediate result pages, so traces distinguish intra-query data
// flow from query descriptors and fragment copies.
const eventKindOperator byte = 0x23

// ParallelConfig parameterizes operator-tree queries. The zero value
// (Enabled == false) disables them.
type ParallelConfig struct {
	// Enabled turns operator-tree queries on.
	Enabled bool
	// Mode selects how multi-operator plans are placed (single site,
	// per-operator, or per-operator with a fragment-and-replicate split
	// of the bottom join).
	Mode policy.ParallelMode

	// JoinProb is the probability a submitted query becomes a join tree;
	// the rest stay single-scan plans, observably the monolithic query.
	JoinProb float64
	// FilterProb is the probability a join tree gets a filter above the
	// join.
	FilterProb float64
	// SelScan and SelJoin are the scan and join selectivities (output
	// pages per input page).
	SelScan, SelJoin float64
	// JoinPageCPU and FilterPageCPU are the per-page CPU means of join
	// and filter operators; scans use the query class's PageCPUTime.
	JoinPageCPU, FilterPageCPU float64
	// ShipBytesPerPage converts intermediate-result pages into ring
	// transmission size.
	ShipBytesPerPage float64

	// MaxDOP caps the fragment-and-replicate split width; 0 means
	// NumSites.
	MaxDOP int
	// SplitOverhead is the per-extra-site startup price the DOP cost
	// model charges (on top of shipping the replicated input once more).
	SplitOverhead float64

	// Hedge arms the straggler hedge on remotely dispatched operators:
	// an operator still unfinished at its class's hedge delay races a
	// clone at the next-best site, reusing the hedged-execution
	// machinery at operator granularity. Requires Hedge.Enabled.
	Hedge bool
}

// DefaultParallel returns a moderate operator-tree workload: 30% of
// queries become joins, placed per-operator.
func DefaultParallel() ParallelConfig {
	return ParallelConfig{
		Enabled:          true,
		Mode:             policy.ParallelOperator,
		JoinProb:         0.3,
		FilterProb:       0.25,
		SelScan:          0.5,
		SelJoin:          0.25,
		JoinPageCPU:      0.1,
		FilterPageCPU:    0.02,
		ShipBytesPerPage: 0.05,
		SplitOverhead:    2,
	}
}

// validate reports the first parallel-config error, if any.
func (p ParallelConfig) validate() error {
	if !p.Enabled {
		return nil
	}
	if !p.Mode.Valid() {
		return fmt.Errorf("system: invalid parallel mode %d", p.Mode)
	}
	for _, pr := range [...]struct {
		name string
		v    float64
	}{{"JoinProb", p.JoinProb}, {"FilterProb", p.FilterProb}} {
		if math.IsNaN(pr.v) || pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("system: parallel %s %v outside [0,1]", pr.name, pr.v)
		}
	}
	for _, pr := range [...]struct {
		name string
		v    float64
	}{{"SelScan", p.SelScan}, {"SelJoin", p.SelJoin}} {
		if math.IsNaN(pr.v) || math.IsInf(pr.v, 0) || pr.v <= 0 {
			return fmt.Errorf("system: parallel %s %v must be positive and finite", pr.name, pr.v)
		}
	}
	for _, pr := range [...]struct {
		name string
		v    float64
	}{
		{"JoinPageCPU", p.JoinPageCPU}, {"FilterPageCPU", p.FilterPageCPU},
		{"ShipBytesPerPage", p.ShipBytesPerPage}, {"SplitOverhead", p.SplitOverhead},
	} {
		if math.IsNaN(pr.v) || math.IsInf(pr.v, 0) || pr.v < 0 {
			return fmt.Errorf("system: parallel %s %v must be finite and non-negative", pr.name, pr.v)
		}
	}
	if p.MaxDOP < 0 {
		return fmt.Errorf("system: parallel MaxDOP %d < 0", p.MaxDOP)
	}
	return nil
}

// Operator-instance lifecycle states.
const (
	// instPending: placed but not yet dispatched (waiting on inputs).
	instPending int8 = iota
	// instDispatched: carrier committed to its site (in transit or
	// executing), possibly racing a hedge clone.
	instDispatched
	// instDone: retired — completed, withdrawn, or lost.
	instDone
)

// opInstance is one placed instance of one plan operator. Unsplit
// operators have exactly one; a fragment-and-replicate split join (and
// its partitioned input scan) has one per chosen site.
type opInstance struct {
	pe *planExec
	// node is the plan operator index; idx the instance index within it.
	node, idx int
	// site is the placement decision.
	site int
	// reads is the instance's page count (a split share for partitioned
	// scans, the full operator reads otherwise).
	reads int
	// outBytes is the ring size of this instance's output shipment.
	outBytes float64
	// outTo are the consumer instances this instance's output feeds.
	outTo []*opInstance
	// waiting counts input shipments not yet delivered; the instance
	// dispatches when it reaches zero.
	waiting int
	state   int8

	// q is the primary carrier; clone the racing hedge re-issue, nil
	// outside a race.
	q, clone *workload.Query
	// primaryDead marks a primary destroyed by a fault while its clone
	// raced on; primaryLanded / cloneLanded mark attempts that reached
	// their site (so withdrawal knows whether anything is in transit).
	primaryDead, primaryLanded, cloneLanded bool

	hedgeTimer sim.Handle
	hedgeArmed bool
	hedgeFired bool
}

// isScan reports whether the instance executes a scan operator.
func (in *opInstance) isScan() bool {
	return in.pe.plan.Ops[in.node].Kind == workload.OpScan
}

// planExec is the execution state of one multi-operator query.
type planExec struct {
	q    *workload.Query
	plan workload.Plan
	// insts[node] are the placed instances of each operator.
	insts [][]*opInstance
	// live counts unretired instances; rootRemaining counts root-instance
	// results not yet delivered home.
	live          int
	rootRemaining int
	// partNode/splitNode identify the fragment-and-replicate pair
	// (partitioned scan feeding its colocated join instance); -1 outside
	// DOP mode.
	partNode, splitNode int
	// aborted latches plan collapse (deadline abort or fault), making
	// every in-flight callback for the plan a no-op.
	aborted bool
}

// parallelRuntime is the per-run state of the parallel-query subsystem.
type parallelRuntime struct {
	cfg ParallelConfig
	gen *workload.PlanGen

	// instances maps every dispatched carrier (primary or clone) to its
	// instance; plans maps every live multi-operator logical query to
	// its execution state.
	instances map[*workload.Query]*opInstance
	plans     map[*workload.Query]*planExec

	scratch  []int  // reusable site pool for split placement
	siteSeen []bool // reusable distinct-site marker for the DOP histogram

	// Operator ledger (check.OperatorTotals).
	spawned      uint64
	completedOps uint64
	abortedOps   uint64
	preempted    uint64
	inFlight     int
	commits      uint64
	releases     uint64
	tableLive    int

	// Deadline-withdrawal ledger (check.DeadlineTotals extension):
	// dlOpsAborted counts attempts withdrawn by deadline aborts,
	// dlOpReleases the load-table releases performed while withdrawing —
	// equal exactly when each withdrawal releases once.
	dlOpsAborted  uint64
	dlOpReleases  uint64
	dlWithdrawing bool

	// Results surface.
	parallelQueries uint64
	dopHist         []uint64
	interBytes      float64
	opCPUBusy       float64
	opDiskBusy      float64
	opNetBusy       float64
}

// setupParallel builds the parallel runtime during New. stream must be
// the root's dedicated plan-sampler child (12).
func (s *System) setupParallel(stream *rng.Stream) error {
	cfg := s.cfg.Parallel
	gcfg := workload.PlanGenConfig{
		JoinProb:         cfg.JoinProb,
		FilterProb:       cfg.FilterProb,
		SelScan:          cfg.SelScan,
		SelJoin:          cfg.SelJoin,
		JoinPageCPU:      cfg.JoinPageCPU,
		FilterPageCPU:    cfg.FilterPageCPU,
		ShipBytesPerPage: cfg.ShipBytesPerPage,
	}
	if s.cfg.Placement != nil {
		gcfg.NumFrags = s.cfg.Placement.NumObjects()
	}
	gen, err := workload.NewPlanGen(gcfg, stream)
	if err != nil {
		return err
	}
	s.par = &parallelRuntime{
		cfg:       cfg,
		gen:       gen,
		instances: make(map[*workload.Query]*opInstance),
		plans:     make(map[*workload.Query]*planExec),
	}
	return nil
}

// parTotals implements the closure read by check.NewOperatorConservation.
func (s *System) parTotals() check.OperatorTotals {
	p := s.par
	return check.OperatorTotals{
		Spawned:   p.spawned,
		Completed: p.completedOps,
		Aborted:   p.abortedOps,
		Preempted: p.preempted,
		InFlight:  p.inFlight,
		Commits:   p.commits,
		Releases:  p.releases,
		TableLive: p.tableLive,
	}
}

// parNumFrags returns the fragment count plans are validated against (0
// = unfragmented).
func (s *System) parNumFrags() int {
	if s.cfg.Placement != nil {
		return s.cfg.Placement.NumObjects()
	}
	return 0
}

// pages rounds a fractional page count to at least one page, matching
// workload's clamp convention.
func pages(x float64) int {
	n := int(math.Round(x))
	if n < 1 {
		return 1
	}
	return n
}

// parSubmit is the allocation entry point with operator trees on: the
// sampler draws a plan, single-operator plans take the monolithic path
// unchanged, and multi-operator plans enter the engine.
func (s *System) parSubmit(q *workload.Query) {
	plan := s.par.gen.New(q, s.cfg.Classes[q.Class].NumReads)
	if len(plan.Ops) == 1 {
		s.allocate(q)
		return
	}
	if err := plan.Validate(s.parNumFrags(), s.cfg.NumSites); err != nil {
		panic(fmt.Sprintf("system: generated plan invalid: %v", err))
	}
	s.parStart(q, plan)
}

// parStart places and launches a multi-operator plan. A plan that
// cannot be placed (no up candidate for some operator) is rejected
// whole — there is no per-operator retry.
func (s *System) parStart(q *workload.Query, plan workload.Plan) {
	s.deadlineArm(q)
	pe := &planExec{q: q, plan: plan, partNode: -1, splitNode: -1}
	if !s.parPlace(pe) {
		s.rejectQuery(q)
		return
	}
	q.Phase = phaseCommitted
	s.par.plans[q] = pe
	s.par.parallelQueries++
	s.parRecordDOP(pe)
	for _, insts := range pe.insts {
		for _, inst := range insts {
			if pe.aborted {
				return
			}
			if inst.waiting == 0 && inst.state == instPending {
				s.parDispatch(inst)
			}
		}
	}
}

// parRecordDOP records the plan's realized degree of parallelism — the
// number of distinct sites its instances landed on — in the histogram.
func (s *System) parRecordDOP(pe *planExec) {
	p := s.par
	if p.dopHist == nil {
		p.dopHist = make([]uint64, s.cfg.NumSites)
		p.siteSeen = make([]bool, s.cfg.NumSites)
	}
	distinct := 0
	for _, insts := range pe.insts {
		for _, inst := range insts {
			if !p.siteSeen[inst.site] {
				p.siteSeen[inst.site] = true
				distinct++
			}
		}
	}
	for _, insts := range pe.insts {
		for _, inst := range insts {
			p.siteSeen[inst.site] = false
		}
	}
	p.dopHist[distinct-1]++
}

// parCarrier builds the carrier query executing one operator: the
// site engine and load table see a query with the operator's demands.
// Scans reference their fragment; non-scans keep the logical query's
// object (they need no fragment access, but the replication ledger
// stays balanced).
func (s *System) parCarrier(pe *planExec, node int) *workload.Query {
	op := pe.plan.Ops[node]
	q := pe.q
	c := &workload.Query{
		ID:         q.ID,
		Class:      q.Class,
		Home:       q.Home,
		Exec:       q.Home,
		Object:     q.Object,
		ReadsTotal: op.Reads,
		EstReads:   float64(op.Reads),
		EstPageCPU: op.PageCPU,
		PageCPU:    op.PageCPU,
		SubmitTime: q.SubmitTime,
	}
	if op.PageCPU == 0 {
		c.EstPageCPU = s.cfg.Classes[q.Class].PageCPUTime
	}
	if op.Kind == workload.OpScan {
		c.Object = op.Frag
	}
	return c
}

// parSelect runs the allocation policy for a carrier over the given
// candidate set (nil = all sites), preserving the ambient Env.
func (s *System) parSelect(c *workload.Query, cands []int) int {
	saved := s.env.Candidates
	s.env.Candidates = cands
	exec := s.pol.Select(c, c.Home, s.env)
	s.env.Candidates = saved
	return exec
}

// parPlace places every operator of the plan according to the
// configured mode, wires the dataflow edges, and initializes the
// dispatch-readiness counters. Reports false when some operator has no
// feasible site.
func (s *System) parPlace(pe *planExec) bool {
	plan := &pe.plan
	n := len(plan.Ops)
	pe.insts = make([][]*opInstance, n)

	switch s.par.cfg.Mode {
	case policy.ParallelSingle:
		// One policy-chosen anchor hosts the whole tree; under a
		// placement, scans still go to fragment holders (the anchor may
		// not hold their fragments).
		var cands []int
		if s.cfg.Placement != nil {
			cands = s.candidateSites(pe.q)
		}
		anchor := s.parSelect(pe.q, cands)
		if anchor == policy.NoSite {
			return false
		}
		for i, op := range plan.Ops {
			if op.Kind == workload.OpScan && s.cfg.Placement != nil {
				if !s.parPlaceOp(pe, i) {
					return false
				}
				continue
			}
			s.parInstAt(pe, i, anchor)
		}
	case policy.ParallelOperator:
		for i := range plan.Ops {
			if !s.parPlaceOp(pe, i) {
				return false
			}
		}
	case policy.ParallelDOP:
		split := -1
		for i, op := range plan.Ops {
			if op.Kind != workload.OpJoin {
				continue
			}
			allScans := true
			for _, in := range op.Inputs {
				if plan.Ops[in].Kind != workload.OpScan {
					allScans = false
					break
				}
			}
			if allScans {
				split = i
				break
			}
		}
		for i := range plan.Ops {
			if split >= 0 && (i == split || i == plan.Ops[split].Inputs[0]) {
				continue // placed by parPlaceSplit below
			}
			if !s.parPlaceOp(pe, i) {
				return false
			}
		}
		if split >= 0 && !s.parPlaceSplit(pe, split) {
			return false
		}
	}

	parent := pe.plan.Parent()
	for node := 0; node < n; node++ {
		p := parent[node]
		if p < 0 {
			continue
		}
		for i, inst := range pe.insts[node] {
			if node == pe.partNode && p == pe.splitNode {
				// Partitioned scan share i feeds only its colocated join
				// instance i.
				inst.outTo = pe.insts[p][i : i+1]
			} else {
				inst.outTo = pe.insts[p]
			}
			for _, tgt := range inst.outTo {
				tgt.waiting++
			}
		}
	}
	for _, insts := range pe.insts {
		pe.live += len(insts)
	}
	pe.rootRemaining = len(pe.insts[plan.Root])
	return true
}

// parInstAt places one unsplit instance of node at a fixed site.
func (s *System) parInstAt(pe *planExec, node, site int) {
	c := s.parCarrier(pe, node)
	pe.insts[node] = []*opInstance{{
		pe:       pe,
		node:     node,
		site:     site,
		reads:    c.ReadsTotal,
		outBytes: pe.plan.Ops[node].OutBytes,
		q:        c,
	}}
}

// parPlaceOp places one operator via the allocation policy, costing it
// by its own demands — the multi-resource balanced placement. Scans
// under a placement are confined to their fragment's holders.
func (s *System) parPlaceOp(pe *planExec, node int) bool {
	c := s.parCarrier(pe, node)
	var cands []int
	if pe.plan.Ops[node].Kind == workload.OpScan && s.cfg.Placement != nil {
		cands = s.candidateSites(c)
		if len(cands) == 0 {
			return false
		}
	}
	site := s.parSelect(c, cands)
	if site == policy.NoSite {
		return false
	}
	pe.insts[node] = []*opInstance{{
		pe:       pe,
		node:     node,
		site:     site,
		reads:    c.ReadsTotal,
		outBytes: pe.plan.Ops[node].OutBytes,
		q:        c,
	}}
	return true
}

// parPlaceSplit places a fragment-and-replicate split of join: its
// partitioned input scan (Inputs[0]) is sharded over k policy-ranked
// sites with a colocated join instance each, while the remaining inputs
// replicate their output to every chosen site. k is the requested DOP
// or the cost model's argmin.
func (s *System) parPlaceSplit(pe *planExec, joinNode int) bool {
	plan := &pe.plan
	join := plan.Ops[joinNode]
	partNode := join.Inputs[0]
	part := plan.Ops[partNode]
	partC := s.parCarrier(pe, partNode)

	// Candidate pool: up sites, holding the fragment under a placement.
	pool := s.par.scratch[:0]
	if s.cfg.Placement != nil {
		for _, c := range s.candidateSites(partC) {
			if s.up(c) {
				pool = append(pool, c)
			}
		}
	} else {
		for c := 0; c < s.cfg.NumSites; c++ {
			if s.up(c) {
				pool = append(pool, c)
			}
		}
	}
	s.par.scratch = pool
	if len(pool) == 0 {
		return false
	}

	// Cost model: every site repeats the replicated input's join share
	// (fixed), the partitioned scan and its join share divide (divisible),
	// and each extra site pays startup plus one more copy of the
	// replicated input on the ring (overhead).
	scanCPU := s.cfg.Classes[pe.q.Class].PageCPUTime
	joinCPU := join.PageCPU
	if joinCPU == 0 {
		joinCPU = scanCPU
	}
	perJoinPage := s.cfg.DiskTime + joinCPU
	repOut := 0
	repBytes := 0.0
	for _, in := range join.Inputs[1:] {
		repOut += plan.Ops[in].OutPages
		repBytes += plan.Ops[in].OutBytes
	}
	fixed := float64(repOut) * perJoinPage
	divisible := float64(part.Reads)*(s.cfg.DiskTime+scanCPU) + float64(part.OutPages)*perJoinPage
	overhead := s.par.cfg.SplitOverhead + s.ring.TransmitTime(repBytes)

	kmax := len(pool)
	if m := s.par.cfg.MaxDOP; m > 0 && m < kmax {
		kmax = m
	}
	if part.Reads < kmax {
		kmax = part.Reads
	}
	k := join.DOP
	if k < 1 {
		k = policy.ChooseDOP(fixed, divisible, overhead, kmax)
	}
	if k > kmax {
		k = kmax
	}

	// Pick k distinct sites by repeated policy selection over a
	// shrinking pool: the straggler-aware ranking chooses the least
	// loaded holders first.
	sites := make([]int, 0, k)
	for len(sites) < k {
		site := s.parSelect(partC, pool)
		if site == policy.NoSite {
			break
		}
		sites = append(sites, site)
		for i, c := range pool {
			if c == site {
				pool = append(pool[:i], pool[i+1:]...)
				break
			}
		}
	}
	if len(sites) == 0 {
		return false
	}

	// The pool was already confined to live holders, so no placement
	// filter (and no degraded fallback) applies here.
	rep, err := workload.ExpandFragRep(nil, part.Frag, part.Reads, sites)
	if err != nil || rep.Degraded {
		return false
	}
	k = len(rep.Sites)
	shares := make([]*opInstance, k)
	joins := make([]*opInstance, k)
	cfg := s.par.cfg
	for i := 0; i < k; i++ {
		sc := s.parCarrier(pe, partNode)
		sc.ReadsTotal = rep.Shares[i]
		sc.EstReads = float64(rep.Shares[i])
		shareOut := pages(cfg.SelScan * float64(rep.Shares[i]))
		shares[i] = &opInstance{
			pe: pe, node: partNode, idx: i, site: rep.Sites[i],
			reads: rep.Shares[i], q: sc,
			// Colocated with its join instance: no ring shipment.
		}
		jc := s.parCarrier(pe, joinNode)
		jreads := shareOut + repOut
		jc.ReadsTotal = jreads
		jc.EstReads = float64(jreads)
		jout := pages(cfg.SelJoin * float64(jreads))
		joins[i] = &opInstance{
			pe: pe, node: joinNode, idx: i, site: rep.Sites[i],
			reads: jreads, q: jc,
			outBytes: float64(jout) * cfg.ShipBytesPerPage,
		}
	}
	pe.insts[partNode] = shares
	pe.insts[joinNode] = joins
	pe.partNode, pe.splitNode = partNode, joinNode
	return true
}

// parAssign commits a carrier to the load table (the operator-granular
// mirror of dispatch's Assign/AssignWork pairing).
func (s *System) parAssign(c *workload.Query) {
	s.table.Assign(c.Exec, s.bound(c))
	s.table.AssignWork(c.Exec, c.EstCPUDemand(), c.EstDiskDemand(s.cfg.DiskTime))
	s.replAssign(c, c.Exec)
	s.par.commits++
	s.par.tableLive++
}

// parRelease releases a carrier's commitment exactly once.
func (s *System) parRelease(c *workload.Query) {
	s.table.Complete(c.Exec, s.bound(c))
	s.table.CompleteWork(c.Exec, c.EstCPUDemand(), c.EstDiskDemand(s.cfg.DiskTime))
	s.replRelease(c, c.Exec)
	s.par.releases++
	s.par.tableLive--
	if s.par.dlWithdrawing {
		s.par.dlOpReleases++
	}
}

// parDispatch commits one ready instance's primary carrier to its site:
// the carrier joins the load table and the audited population, scans
// dispatched away from home ship a descriptor first, and everything
// else starts in place (joins and filters receive their inputs via the
// intermediate-result shipments, so no separate descriptor travels).
func (s *System) parDispatch(inst *opInstance) {
	if inst.pe.aborted {
		return
	}
	inst.state = instDispatched
	c := inst.q
	c.Exec = inst.site
	c.Phase = phaseCommitted
	s.parAssign(c)
	if s.aud != nil {
		s.aud.Submitted(s.sched.Now())
	}
	s.par.spawned++
	s.par.inFlight++
	s.par.instances[c] = inst
	s.parHedgeArm(inst)
	if inst.isScan() && inst.site != c.Home {
		size := s.cfg.Classes[c.Class].MsgLength
		t := s.ring.TransmitTime(size)
		c.Service += t
		c.NetService += t
		m := network.Message{
			From:      c.Home,
			To:        inst.site,
			Size:      size,
			OnDeliver: func() { s.parLand(inst, c) },
		}
		if s.faults != nil {
			m.OnDrop = func() { s.parShipLost(inst, c) }
		}
		s.ring.Send(m)
		return
	}
	s.parLand(inst, c)
}

// parLand starts one carrier attempt at its site, unless it was
// withdrawn in transit, the site died, or (for scans under the replica
// manager) the copy vanished while the descriptor travelled.
func (s *System) parLand(inst *opInstance, attempt *workload.Query) {
	if s.dropDefunct(attempt) {
		return
	}
	if !s.up(attempt.Exec) {
		s.parAttemptLost(inst, attempt)
		return
	}
	if inst.isScan() && s.repl != nil && !s.repl.mgr.Holds(attempt.Exec, attempt.Object) {
		s.parAttemptLost(inst, attempt)
		return
	}
	if attempt == inst.clone {
		inst.cloneLanded = true
	} else {
		inst.primaryLanded = true
	}
	s.sites[attempt.Exec].Execute(attempt)
}

// parShipLost is the drop path of a carrier descriptor shipment.
func (s *System) parShipLost(inst *opInstance, attempt *workload.Query) {
	if s.dropDefunct(attempt) {
		return
	}
	s.parAttemptLost(inst, attempt)
}

// parAttemptLost retires one carrier attempt destroyed by a fault (site
// crash wiping it mid-service, a dead destination, or a dropped
// descriptor). A lost clone leaves the primary racing on; a lost
// primary survives through a live clone; with neither left, the plan
// collapses.
func (s *System) parAttemptLost(inst *opInstance, attempt *workload.Query) {
	pe := inst.pe
	s.parRelease(attempt)
	delete(s.par.instances, attempt)
	attempt.Phase = phaseDone
	s.par.preempted++
	s.par.inFlight--
	s.audRetire(s.sched.Now())
	if attempt == inst.clone {
		inst.clone = nil
		s.hedge.activeClones--
		s.hedge.cancelled++
		if !inst.primaryDead {
			return
		}
	} else {
		if inst.clone != nil {
			inst.primaryDead = true
			return
		}
	}
	inst.state = instDone
	pe.live--
	s.parPlanFailed(pe)
}

// parOpDone fires when a carrier's last CPU burst ends: the attempt
// retires, any race settles (loser withdrawn without double counting),
// the operator's realized service folds into the logical query, and the
// output ships to its consumers — or home, for root instances.
func (s *System) parOpDone(inst *opInstance, finisher *workload.Query) {
	pe := inst.pe
	now := s.sched.Now()
	s.parRelease(finisher)
	delete(s.par.instances, finisher)
	finisher.Phase = phaseDone
	s.par.completedOps++
	s.par.inFlight--
	s.audRetire(now)
	if inst.hedgeArmed && !inst.hedgeFired {
		s.sched.Cancel(inst.hedgeTimer)
		inst.hedgeFired = true
	}
	if finisher == inst.clone {
		inst.clone = nil
		s.hedge.activeClones--
		s.hedge.wins++
		if !inst.primaryDead {
			s.parWithdrawAttempt(inst.q, inst.primaryLanded)
		}
	} else if inst.clone != nil {
		clone := inst.clone
		inst.clone = nil
		s.hedge.activeClones--
		s.hedge.cancelled++
		s.parWithdrawAttempt(clone, inst.cloneLanded)
	}
	inst.state = instDone
	pe.live--

	q := pe.q
	q.Service += finisher.Service
	q.NetService += finisher.NetService
	q.DiskService += finisher.DiskService
	s.par.opDiskBusy += finisher.DiskService
	s.par.opCPUBusy += finisher.ExecService() - finisher.DiskService
	s.par.opNetBusy += finisher.NetService

	if len(inst.outTo) == 0 {
		s.parRootResult(pe, finisher.Exec)
		return
	}
	for _, tgt := range inst.outTo {
		s.parShipOutput(inst, finisher.Exec, tgt)
	}
}

// parShipOutput moves one instance's output to one consumer instance —
// free when colocated, a ring transmission otherwise.
func (s *System) parShipOutput(inst *opInstance, from int, tgt *opInstance) {
	pe := inst.pe
	if from == tgt.site {
		s.parDeliver(pe, tgt)
		return
	}
	size := inst.outBytes
	t := s.ring.TransmitTime(size)
	pe.q.Service += t
	pe.q.NetService += t
	s.par.opNetBusy += t
	s.par.interBytes += size
	m := network.Message{
		From: from,
		To:   tgt.site,
		Size: size,
		Kind: eventKindOperator,
		OnDeliver: func() {
			if !pe.aborted {
				s.parDeliver(pe, tgt)
			}
		},
	}
	if s.faults != nil {
		// An intermediate result has no retry path: its producer already
		// retired, so the loss collapses the plan.
		m.OnDrop = func() {
			if !pe.aborted {
				s.parPlanFailed(pe)
			}
		}
	}
	s.ring.Send(m)
}

// parDeliver counts one input arrival at a consumer instance,
// dispatching it when its inputs are complete.
func (s *System) parDeliver(pe *planExec, tgt *opInstance) {
	if pe.aborted {
		return
	}
	tgt.waiting--
	if tgt.waiting == 0 && tgt.state == instPending {
		s.parDispatch(tgt)
	}
}

// parRootResult ships one root instance's share of the final result
// home (a split root sends one share per instance).
func (s *System) parRootResult(pe *planExec, from int) {
	if from == pe.q.Home {
		s.parRootArrived(pe)
		return
	}
	size := s.cfg.Classes[pe.q.Class].MsgLength / float64(len(pe.insts[pe.plan.Root]))
	t := s.ring.TransmitTime(size)
	pe.q.Service += t
	pe.q.NetService += t
	m := network.Message{
		From: from,
		To:   pe.q.Home,
		Size: size,
		OnDeliver: func() {
			if !pe.aborted {
				s.parRootArrived(pe)
			}
		},
	}
	if s.faults != nil {
		m.OnDrop = func() {
			if !pe.aborted {
				s.parPlanFailed(pe)
			}
		}
	}
	s.ring.Send(m)
}

// parRootArrived completes the logical query once every root share is
// home.
func (s *System) parRootArrived(pe *planExec) {
	pe.rootRemaining--
	if pe.rootRemaining > 0 {
		return
	}
	delete(s.par.plans, pe.q)
	s.complete(pe.q)
}

// parPlanFailed collapses a plan a fault broke: every surviving attempt
// is withdrawn and the logical query is rejected.
func (s *System) parPlanFailed(pe *planExec) {
	if pe.aborted {
		return
	}
	s.parWithdraw(pe, false)
	s.rejectQuery(pe.q)
}

// parDeadlineAbort withdraws an operator-split query whose deadline
// expired; deadlineExpire's own ledger (missed/aborted/rejected and the
// terminal's think state) runs after this returns. Single-operator
// plans never enter s.par.plans and take the monolithic abort path.
func (s *System) parDeadlineAbort(q *workload.Query) {
	pe := s.par.plans[q]
	if pe == nil {
		return
	}
	s.parWithdraw(pe, true)
	q.Phase = phaseDone
}

// parWithdraw aborts every in-flight attempt of a plan exactly once:
// unfired hedge timers are cancelled, racing clones and live primaries
// are withdrawn from their sites (or marked defunct in transit), and
// each withdrawal releases its load-table commitment. byDeadline routes
// the withdrawals into the deadline-conservation ledger.
func (s *System) parWithdraw(pe *planExec, byDeadline bool) {
	pe.aborted = true
	delete(s.par.plans, pe.q)
	if byDeadline {
		s.par.dlWithdrawing = true
	}
	for _, insts := range pe.insts {
		for _, inst := range insts {
			if inst.hedgeArmed && !inst.hedgeFired {
				s.sched.Cancel(inst.hedgeTimer)
				inst.hedgeFired = true
			}
			if inst.state != instDispatched {
				continue
			}
			if inst.clone != nil {
				clone := inst.clone
				inst.clone = nil
				s.hedge.activeClones--
				s.hedge.cancelled++
				if byDeadline {
					s.par.dlOpsAborted++
				}
				s.parWithdrawAttempt(clone, inst.cloneLanded)
			}
			if !inst.primaryDead {
				if byDeadline {
					s.par.dlOpsAborted++
				}
				s.parWithdrawAttempt(inst.q, inst.primaryLanded)
			}
			inst.state = instDone
			pe.live--
		}
	}
	if byDeadline {
		s.par.dlWithdrawing = false
	}
}

// parWithdrawAttempt removes one attempt from wherever it currently is:
// aborted in place at its site, or — if the descriptor is still in
// transit — marked defunct so the delivery drops it. The commitment is
// released exactly once either way.
func (s *System) parWithdrawAttempt(attempt *workload.Query, landed bool) {
	if !s.sites[attempt.Exec].Abort(attempt) && !landed {
		s.markDefunct(attempt)
	}
	s.parRelease(attempt)
	delete(s.par.instances, attempt)
	attempt.Phase = phaseDone
	s.par.abortedOps++
	s.par.inFlight--
	s.audRetire(s.sched.Now())
}

// parHedgeArm schedules the straggler hedge for a remotely dispatched
// operator, reusing the class-quantile delay of the query-level hedge.
func (s *System) parHedgeArm(inst *opInstance) {
	if s.hedge == nil || !s.par.cfg.Hedge {
		return
	}
	if inst.site == inst.pe.q.Home || inst.state != instDispatched {
		return
	}
	inst.hedgeArmed = true
	inst.hedgeTimer = s.sched.After(s.hedgeDelay(inst.pe.q.Class), func() { s.parHedgeFire(inst) })
	inst.hedgeTimer.SetKind(eventKindHedge)
}

// parHedgeFire launches an operator clone if the primary is still in
// flight when the trigger fires. The clone shares the query-level hedge
// ledger (launched/wins/cancelled) so the deadline-conservation
// identity covers operator races too. A non-scan clone starts in place
// at its site: the already-delivered inputs are assumed to travel with
// the (small) clone descriptor rather than being re-shipped.
func (s *System) parHedgeFire(inst *opInstance) {
	inst.hedgeFired = true
	pe := inst.pe
	if pe.aborted || inst.state != instDispatched || inst.clone != nil || inst.primaryDead {
		return
	}
	site := s.parHedgeSite(inst)
	if site == policy.NoSite {
		return
	}
	p := inst.q
	clone := &workload.Query{
		ID:         p.ID,
		Class:      p.Class,
		Home:       p.Home,
		Exec:       site,
		Object:     p.Object,
		ReadsTotal: p.ReadsTotal,
		EstReads:   p.EstReads,
		EstPageCPU: p.EstPageCPU,
		PageCPU:    p.PageCPU,
		SubmitTime: p.SubmitTime,
		Phase:      phaseCommitted,
	}
	inst.clone = clone
	s.par.instances[clone] = inst
	s.hedge.launched++
	s.hedge.activeClones++
	s.parAssign(clone)
	if s.aud != nil {
		s.aud.Submitted(s.sched.Now())
	}
	s.par.spawned++
	s.par.inFlight++
	if inst.isScan() && site != p.Home {
		size := s.cfg.Classes[clone.Class].MsgLength
		t := s.ring.TransmitTime(size)
		clone.Service += t
		clone.NetService += t
		m := network.Message{
			From:      p.Home,
			To:        site,
			Size:      size,
			OnDeliver: func() { s.parLand(inst, clone) },
		}
		if s.faults != nil {
			m.OnDrop = func() { s.parShipLost(inst, clone) }
		}
		s.ring.Send(m)
		return
	}
	s.parLand(inst, clone)
}

// parHedgeSite picks the clone's site: the policy's best up site
// distinct from the primary's, confined to fragment holders for scans.
func (s *System) parHedgeSite(inst *opInstance) int {
	s.hedgeScratch = s.hedgeScratch[:0]
	if inst.isScan() && s.cfg.Placement != nil {
		for _, c := range s.candidateSites(inst.q) {
			if c != inst.site && s.up(c) {
				s.hedgeScratch = append(s.hedgeScratch, c)
			}
		}
	} else {
		for c := 0; c < s.cfg.NumSites; c++ {
			if c != inst.site && s.up(c) {
				s.hedgeScratch = append(s.hedgeScratch, c)
			}
		}
	}
	if len(s.hedgeScratch) == 0 {
		return policy.NoSite
	}
	return s.parSelect(inst.q, s.hedgeScratch)
}
