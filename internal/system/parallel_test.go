package system

import (
	"reflect"
	"testing"

	"dqalloc/internal/fault"
	"dqalloc/internal/policy"
	"dqalloc/internal/replica"
	"dqalloc/internal/sim"
)

// parallelCfg returns the shared short-horizon base with operator trees
// enabled at the given join probability and mode.
func parallelCfg(kind policy.Kind, joinProb float64, mode policy.ParallelMode) Config {
	cfg := imperfectCfg(kind, InfoPerfect)
	par := DefaultParallel()
	par.JoinProb = joinProb
	par.Mode = mode
	cfg.Parallel = par
	return cfg
}

// TestParallelSingleOpDifferential is the differential harness of the
// parallel-query extension: with the subsystem enabled but every plan
// degenerating to a single scan (JoinProb 0), each policy must
// reproduce the monolithic model bit for bit — identical trace digest
// and identical Results, for every placement mode. This holds by
// construction (single-operator plans bypass the engine entirely and
// the sampler draws from its own dedicated stream), and this test keeps
// it true.
func TestParallelSingleOpDifferential(t *testing.T) {
	kinds := []policy.Kind{policy.Local, policy.Random, policy.BNQ, policy.BNQRD, policy.LERT, policy.Work}
	modes := []policy.ParallelMode{policy.ParallelSingle, policy.ParallelOperator, policy.ParallelDOP}
	for _, kind := range kinds {
		base := runDigest(t, imperfectCfg(kind, InfoPerfect))
		for _, mode := range modes {
			t.Run(kind.String()+"/"+mode.String(), func(t *testing.T) {
				r := runDigest(t, parallelCfg(kind, 0, mode))
				if r.TraceDigest != base.TraceDigest {
					t.Errorf("digest %#x, want monolithic %#x — single-op trees changed the event stream",
						r.TraceDigest, base.TraceDigest)
				}
				if !reflect.DeepEqual(r, base) {
					t.Errorf("results diverged from the monolithic run:\n  trees: %+v\n  mono:  %+v", r, base)
				}
			})
		}
	}
}

// TestParallelDigestDeterminism pins the enabled subsystem's own
// reproducibility: same seed, same digest; different seed, different
// digest; and the heap scheduler replays the calendar's event stream
// bit for bit with trees on.
func TestParallelDigestDeterminism(t *testing.T) {
	for _, mode := range []policy.ParallelMode{policy.ParallelSingle, policy.ParallelOperator, policy.ParallelDOP} {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := parallelCfg(policy.LERT, 0.5, mode)
			a := runDigest(t, cfg)
			b := runDigest(t, cfg)
			if a.TraceDigest != b.TraceDigest {
				t.Errorf("same seed digests differ: %#x vs %#x", a.TraceDigest, b.TraceDigest)
			}
			heap := cfg
			heap.Scheduler = sim.Heap
			h := runDigest(t, heap)
			if h.TraceDigest != a.TraceDigest {
				t.Errorf("heap digest %#x, want calendar %#x", h.TraceDigest, a.TraceDigest)
			}
			other := cfg
			other.Seed = cfg.Seed + 1
			o := runDigest(t, other)
			if o.TraceDigest == a.TraceDigest {
				t.Errorf("different seeds produced the same digest %#x", a.TraceDigest)
			}
		})
	}
}

// TestParallelModesAudited runs each placement mode with trees on under
// the full auditor set and checks the Results surface: plans ran, every
// operator attempt is accounted for, and the per-resource ledger moved.
func TestParallelModesAudited(t *testing.T) {
	for _, mode := range []policy.ParallelMode{policy.ParallelSingle, policy.ParallelOperator, policy.ParallelDOP} {
		t.Run(mode.String(), func(t *testing.T) {
			r := runDigest(t, parallelCfg(policy.LERT, 0.6, mode))
			if r.ParallelQueries == 0 {
				t.Fatal("no multi-operator plans ran")
			}
			if r.OperatorsCompleted == 0 {
				t.Fatal("no operators completed")
			}
			if r.Operators < r.OperatorsCompleted+r.OperatorsAborted+r.OperatorsPreempted {
				t.Errorf("operator ledger overflows: %d spawned < %d completed + %d aborted + %d preempted",
					r.Operators, r.OperatorsCompleted, r.OperatorsAborted, r.OperatorsPreempted)
			}
			if len(r.DOPHist) == 0 {
				t.Error("empty DOP histogram with plans on")
			}
			if r.OpDiskBusy <= 0 || r.OpCPUBusy <= 0 {
				t.Errorf("per-resource busy ledger empty: cpu %v disk %v", r.OpCPUBusy, r.OpDiskBusy)
			}
			if mode != policy.ParallelSingle && r.IntermediateBytes <= 0 {
				t.Errorf("no intermediate bytes shipped in %v mode", mode)
			}
		})
	}
}

// TestParallelDOPSplitsWide checks that DOP mode actually splits: with
// the default cost parameters the bottom join's divisible work dwarfs
// the per-site overhead, so some plans must land on two or more sites
// via the fragment-and-replicate expansion.
func TestParallelDOPSplitsWide(t *testing.T) {
	r := runDigest(t, parallelCfg(policy.LERT, 1, policy.ParallelDOP))
	var wide uint64
	for k := 1; k < len(r.DOPHist); k++ {
		wide += r.DOPHist[k]
	}
	if wide == 0 {
		t.Fatalf("no plan used more than one site: hist %v", r.DOPHist)
	}
}

// TestParallelUnderPlacement runs trees over a partially replicated
// database: scans are confined to fragment holders and the expansion
// shares split among them, all under audit.
func TestParallelUnderPlacement(t *testing.T) {
	for _, mode := range []policy.ParallelMode{policy.ParallelOperator, policy.ParallelDOP} {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := parallelCfg(policy.LERT, 0.6, mode)
			p, err := replica.NewRoundRobin(cfg.NumSites, 12, 3)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Placement = p
			r := runDigest(t, cfg)
			if r.ParallelQueries == 0 || r.OperatorsCompleted == 0 {
				t.Fatalf("plans %d, completed operators %d — placement run idle",
					r.ParallelQueries, r.OperatorsCompleted)
			}
		})
	}
}

// TestParallelDeadlineAbortReleasesOnce pins satellite 4's first half:
// a deadline abort of an operator-split query withdraws every per-site
// attempt exactly once. The deadline-conservation auditor enforces
// OpsAborted == OpReleases between every pair of events and the
// operator auditor enforces commits == releases + live, so a double
// release or a leak fails the run; here we additionally require that
// the path actually fired.
func TestParallelDeadlineAbortReleasesOnce(t *testing.T) {
	cfg := parallelCfg(policy.LERT, 1, policy.ParallelOperator)
	cfg.Deadline = DeadlineConfig{Enabled: true, Deadline: 60}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := sys.Run()
	if err := sys.Audit(); err != nil {
		t.Fatal(err)
	}
	if r.DeadlineMisses == 0 {
		t.Fatal("deadline never fired; tighten the budget")
	}
	if sys.par.dlOpsAborted == 0 {
		t.Fatal("no operator attempt was withdrawn by a deadline abort")
	}
	if sys.par.dlOpsAborted != sys.par.dlOpReleases {
		t.Fatalf("%d deadline-aborted operators released %d commitments",
			sys.par.dlOpsAborted, sys.par.dlOpReleases)
	}
	if r.OperatorsAborted == 0 {
		t.Fatal("aborted-operator counter never moved")
	}
}

// TestParallelHedgedOperatorNoDoubleCount pins satellite 4's second
// half: operator hedge clones win and lose without double counting.
// The clones share the query-level hedge ledger, so the auditor's
// launched == wins + cancelled + racing identity holds at every event;
// the operator auditor rules out a loser being released twice.
func TestParallelHedgedOperatorNoDoubleCount(t *testing.T) {
	cfg := parallelCfg(policy.LERT, 0.8, policy.ParallelOperator)
	cfg.Hedge = HedgeConfig{Enabled: true, Quantile: 0.5, MinDelay: 5}
	cfg.Parallel.Hedge = true
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := sys.Run()
	if err := sys.Audit(); err != nil {
		t.Fatal(err)
	}
	if r.Hedged == 0 {
		t.Fatal("no operator hedge clone launched; loosen the trigger")
	}
	if got := sys.hedge.wins + sys.hedge.cancelled + uint64(sys.hedge.activeClones); sys.hedge.launched != got {
		t.Fatalf("hedge ledger unbalanced: %d launched, %d settled", sys.hedge.launched, got)
	}
	if sys.par.tableLive < 0 {
		t.Fatalf("negative live commitments %d (double release)", sys.par.tableLive)
	}
}

// TestParallelFaultChaos runs trees under site crashes and a lossy ring
// with every auditor armed: carrier losses must collapse their plans
// into clean rejections with no leaked or double-released commitment.
func TestParallelFaultChaos(t *testing.T) {
	for _, mode := range []policy.ParallelMode{policy.ParallelOperator, policy.ParallelDOP} {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := parallelCfg(policy.LERT, 0.7, mode)
			cfg.Fault = fault.Config{
				Enabled:       true,
				MTTF:          1200,
				MTTR:          250,
				DropProb:      0.03,
				DetectTimeout: 150,
				RetryBackoff:  10,
				MaxRetries:    6,
			}
			r := runDigest(t, parallelChaosHedge(cfg))
			if r.ParallelQueries == 0 {
				t.Fatal("no plans ran under chaos")
			}
			if r.OperatorsPreempted == 0 && r.QueriesRejected == 0 {
				t.Log("chaos run saw no carrier losses; auditors still passed")
			}
		})
	}
}

// parallelChaosHedge layers operator hedging onto a chaos config so the
// crash/drop paths exercise the race bookkeeping too.
func parallelChaosHedge(cfg Config) Config {
	cfg.Hedge = HedgeConfig{Enabled: true, Quantile: 0.9, MinDelay: 25}
	cfg.Parallel.Hedge = true
	return cfg
}

// TestParallelConfigRejects pins the cross-field validation: operator
// hedging without the hedge subsystem, and plans under migration, are
// configuration errors.
func TestParallelConfigRejects(t *testing.T) {
	cfg := parallelCfg(policy.LERT, 0.5, policy.ParallelOperator)
	cfg.Parallel.Hedge = true
	if _, err := New(cfg); err == nil {
		t.Error("Parallel.Hedge without Hedge.Enabled accepted")
	}
	cfg = parallelCfg(policy.LERT, 0.5, policy.ParallelOperator)
	cfg.Migration = MigrationConfig{Enabled: true, Threshold: 2, CheckEvery: 4, MinRemaining: 5, StateFactor: 1}
	if _, err := New(cfg); err == nil {
		t.Error("parallel plans under migration accepted")
	}
	cfg = parallelCfg(policy.LERT, 0.5, policy.ParallelOperator)
	cfg.Parallel.Mode = 0
	if _, err := New(cfg); err == nil {
		t.Error("invalid parallel mode accepted")
	}
}

// FuzzParallelScheduler cross-checks the operator engine under both
// kernel implementations: for arbitrary seeds, join probabilities,
// modes, and fault settings, the calendar and heap schedulers must
// produce bit-identical event streams with every auditor passing.
func FuzzParallelScheduler(f *testing.F) {
	f.Add(uint64(1), uint8(128), uint8(0), false)
	f.Add(uint64(7), uint8(255), uint8(1), true)
	f.Add(uint64(42), uint8(64), uint8(2), false)
	f.Fuzz(func(t *testing.T, seed uint64, joinProb, mode uint8, faultOn bool) {
		modes := []policy.ParallelMode{policy.ParallelSingle, policy.ParallelOperator, policy.ParallelDOP}
		cfg := parallelCfg(policy.LERT, float64(joinProb)/255, modes[int(mode)%len(modes)])
		cfg.Seed = seed
		cfg.Warmup = 200
		cfg.Measure = 1500
		if faultOn {
			cfg.Fault = fault.Config{
				Enabled:       true,
				MTTF:          900,
				MTTR:          200,
				DropProb:      0.02,
				DetectTimeout: 120,
				RetryBackoff:  10,
				MaxRetries:    4,
			}
		}
		a := runDigest(t, cfg)
		heap := cfg
		heap.Scheduler = sim.Heap
		b := runDigest(t, heap)
		if a.TraceDigest != b.TraceDigest {
			t.Fatalf("scheduler implementations diverged: calendar %#x, heap %#x", a.TraceDigest, b.TraceDigest)
		}
	})
}
