package system

import "dqalloc/internal/stats"

// ClassResults holds the per-class measurements of one run.
type ClassResults struct {
	// Name is the class label (e.g. "io", "cpu").
	Name string
	// Completed is the number of measured completions.
	Completed uint64
	// MeanWait is the class's mean waiting (queueing) time per query:
	// response time minus actual service received.
	MeanWait float64
	// MeanResp is the class's mean response time.
	MeanResp float64
	// MeanService is the class's mean total service demand per query
	// (disk + CPU + message transmissions).
	MeanService float64
	// MeanExecService is the class's mean execution demand per query
	// (disk + CPU only) — the paper's "execution time".
	MeanExecService float64
	// NormWait is the normalized mean waiting time Ŵ = MeanWait /
	// MeanExecService (Section 3's fairness currency).
	NormWait float64
	// RespQuantiles are the class's measured response-time tail quantiles
	// from the log-bucketed histogram (≤2% relative quantile error).
	RespQuantiles stats.Quantiles
}

// Results holds the measurements of one simulation run over the measured
// horizon (after warmup).
type Results struct {
	// Policy is the allocation policy's name.
	Policy string
	// Seed is the run's random seed.
	Seed uint64
	// MeasuredTime is the length of the measured horizon.
	MeasuredTime float64

	// Completed counts queries finishing inside the measured horizon.
	Completed uint64
	// MeanWait is the paper's W̄: mean waiting time over all queries —
	// response time minus pure execution service (message transmission
	// counts as waiting).
	MeanWait float64
	// WaitCI is a single-run 95% confidence interval for MeanWait,
	// produced by the method of batch means (the observations within one
	// run are autocorrelated, so a naive interval would be too narrow).
	WaitCI stats.CI
	// MeanResponse is the mean response time over all queries.
	MeanResponse float64
	// ByClass holds the per-class breakdown, indexed like Config.Classes.
	ByClass []ClassResults
	// Fairness is the paper's F: the difference in normalized waiting
	// times between class 0 and class 1 (Ŵ_io − Ŵ_cpu with the default
	// class table). Zero when fewer than two classes are configured.
	Fairness float64

	// CPUUtil is the paper's ρ_c: mean CPU utilization across sites.
	CPUUtil float64
	// DiskUtil is the paper's ρ_d: mean disk utilization across sites.
	DiskUtil float64
	// SubnetUtil is the ring's busy fraction (Table 11).
	SubnetUtil float64

	// Throughput is completed queries per time unit, system-wide.
	Throughput float64
	// RemoteFrac is the fraction of completed queries that executed away
	// from their home site.
	RemoteFrac float64
	// TransferFrac is the fraction of allocation decisions that chose a
	// remote site.
	TransferFrac float64
	// Migrations counts mid-execution migrations (zero unless the
	// migration extension is enabled).
	Migrations uint64

	// QueriesLost counts fault-induced execution losses over the run's
	// lifetime (site crashes wiping queries mid-service, dropped query
	// shipments, dropped result returns). Zero without fault injection.
	QueriesLost uint64
	// QueriesRetried counts watchdog re-dispatches of lost queries
	// (lifetime). A query lost twice is retried twice.
	QueriesRetried uint64
	// QueriesRejected counts queries given up on over the run's
	// lifetime: no allowed execution site existed at submission, or the
	// retry budget ran out. These never complete and are excluded from
	// every response-time statistic.
	QueriesRejected uint64
	// SiteCrashes counts site failures over the run's lifetime.
	SiteCrashes uint64
	// Downtime is each site's accumulated downtime inside the measured
	// window (nil without fault injection).
	Downtime []float64
	// Availability is the mean fraction of site-time the sites were up
	// over the measured window (1 without fault injection).
	Availability float64
	// AvailResponse is the availability-weighted mean response time
	// MeanResponse / Availability: the response-time cost of the
	// capacity the failures removed. Equals MeanResponse at
	// availability 1.
	AvailResponse float64
	// QueriesShed counts queries rejected outright by overload admission
	// control over the run's lifetime (each is also counted in
	// QueriesRejected). Zero without admission control.
	QueriesShed uint64
	// QueriesDeferred counts admission deferrals over the run's lifetime
	// (a query bounced twice is counted twice). Zero without admission
	// control.
	QueriesDeferred uint64
	// HerdTransfers counts measured remote allocations that moved a query
	// onto a site truly busier than its home at the decision instant —
	// transfers the policy's (stale or noise-misled) load view got wrong.
	HerdTransfers uint64
	// HerdFrac is HerdTransfers / measured transfers (0 when no query
	// transferred).
	HerdFrac float64
	// EstReadsErr and EstCPUErr are the mean realized relative errors of
	// the optimizer estimates the policies acted on, over measured
	// allocations: |EstReads − ReadsTotal| / ReadsTotal and
	// |EstPageCPU − class PageCPUTime| / PageCPUTime. Without injected
	// noise EstReadsErr reflects only the class-mean vs sampled spread
	// and EstCPUErr is zero.
	EstReadsErr float64
	EstCPUErr   float64
	// RespQuantiles are the measured response-time tail quantiles
	// (p50/p90/p95/p99/p999) over all classes, from the log-bucketed
	// histogram (≤2% relative quantile error).
	RespQuantiles stats.Quantiles
	// OpenArrivals counts queries injected by the open-arrival sources
	// over the run's lifetime (zero in closed mode).
	OpenArrivals uint64
	// DeadlineMet and DeadlineMisses count queries completing within and
	// beyond their deadline over the run's lifetime (zero without
	// deadlines). Each miss aborts its query.
	DeadlineMet    uint64
	DeadlineMisses uint64
	// QueriesAborted counts queries withdrawn mid-flight by a deadline
	// abort over the run's lifetime (each is also counted in
	// QueriesRejected).
	QueriesAborted uint64
	// Hedged counts hedge clones launched and HedgeWins the races the
	// clone finished first (lifetime; zero without hedging).
	Hedged    uint64
	HedgeWins uint64
	// ReplicasRebuilt, ReplicasAdded and ReplicasDropped count the replica
	// manager's copy installs (deficit rebuilds and load-driven
	// promotions) and load-driven removals over the run's lifetime;
	// RebuildsAborted counts fragment shipments that died mid-copy (donor
	// or target crash, ring drop). All zero without the replica manager.
	ReplicasRebuilt uint64
	ReplicasAdded   uint64
	ReplicasDropped uint64
	RebuildsAborted uint64
	// DegradedReads counts dispatches of queries whose fragment no up
	// site held: the chosen site fetched the fragment over the ring
	// before executing (lifetime; zero without the replica manager).
	DegradedReads uint64
	// NoReplicaRejects counts queries rejected at allocation because no
	// up site could serve their fragment — reject-mode degraded reads, or
	// every site down (each is also counted in QueriesRejected).
	NoReplicaRejects uint64
	// MeanRebuildLatency is the mean time from a fragment falling below
	// MinCopies to the rebuild restoring it (lifetime; zero when no
	// deficit was repaired).
	MeanRebuildLatency float64
	// FragAvailability and MinFragAvailability are the mean and minimum,
	// over fragments, of the fraction of the measured window each
	// fragment had at least one up holder — fragment-weighted
	// availability, which unlike Availability counts "site up but data
	// gone" as unavailable. Both 1 when the database is fully replicated
	// or failures are off.
	FragAvailability    float64
	MinFragAvailability float64
	// Operators counts operator-carrier attempts dispatched by the
	// parallel-query subsystem over the run's lifetime (hedge clones
	// included); OperatorsCompleted/Aborted/Preempted split their fates
	// (finished; withdrawn by a deadline abort, plan collapse, or lost
	// hedge race; destroyed by a fault). All zero with the subsystem
	// off. The json omitempty tags keep disabled-run JSON output
	// byte-identical to builds without the subsystem.
	Operators          uint64 `json:",omitempty"`
	OperatorsCompleted uint64 `json:",omitempty"`
	OperatorsAborted   uint64 `json:",omitempty"`
	OperatorsPreempted uint64 `json:",omitempty"`
	// ParallelQueries counts queries that became multi-operator plans;
	// DOPHist[k-1] counts plans whose instances landed on exactly k
	// distinct sites (nil until the first multi-operator plan).
	ParallelQueries uint64   `json:",omitempty"`
	DOPHist         []uint64 `json:",omitempty"`
	// IntermediateBytes is the total ring size of intermediate operator
	// results shipped between sites (lifetime).
	IntermediateBytes float64 `json:",omitempty"`
	// OpCPUBusy, OpDiskBusy and OpNetBusy are the per-resource busy-time
	// ledger of completed operator attempts: realized CPU, disk, and
	// network service folded into their logical queries (lifetime).
	OpCPUBusy  float64 `json:",omitempty"`
	OpDiskBusy float64 `json:",omitempty"`
	OpNetBusy  float64 `json:",omitempty"`
	// SlowEpisodes counts fail-slow onsets over the run's lifetime and
	// DegradedTime is each site's fail-slow time inside the measured
	// window (nil without fail-slow injection). Unlike a crash, a
	// degraded site loses no queries — it just serves them slower. The
	// json omitempty tags keep disabled-run JSON output byte-identical
	// to builds without the subsystem.
	SlowEpisodes uint64    `json:",omitempty"`
	DegradedTime []float64 `json:",omitempty"`
	// Brownouts counts ring-brownout onsets (lifetime) and BrownoutTime
	// the browned-out ring time inside the measured window.
	Brownouts    uint64  `json:",omitempty"`
	BrownoutTime float64 `json:",omitempty"`
	// SuspectTransfers counts measured allocations the gray-failure
	// detector steered off a suspect home site; SuspectSites is the
	// number of sites under suspicion at measurement end. Zero without
	// the detector.
	SuspectTransfers uint64 `json:",omitempty"`
	SuspectSites     int    `json:",omitempty"`
	// HedgeWinsVsSlow counts hedge races the clone won while the
	// primary's site was inside a fail-slow episode — straggler hedges
	// that demonstrably beat a gray failure (lifetime; zero without
	// hedging or fail-slow).
	HedgeWinsVsSlow uint64 `json:",omitempty"`
	// TraceDigest is the scheduler's running event-stream hash (zero
	// unless Config.TraceDigest was set). Equal digests mean the two runs
	// fired identical event sequences.
	TraceDigest uint64
	// EventsFired is the total number of scheduler events executed over
	// the run's lifetime (warmup included) — the kernel-throughput
	// denominator cmd/dqbench reports as events/sec.
	EventsFired uint64
}

// UtilizationRatio returns ρ_d/ρ_c as reported in Table 12 (0 if the CPU
// was idle).
func (r Results) UtilizationRatio() float64 {
	if r.CPUUtil == 0 {
		return 0
	}
	return r.DiskUtil / r.CPUUtil
}
