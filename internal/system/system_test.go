package system

import (
	"math"
	"testing"

	"dqalloc/internal/policy"
	"dqalloc/internal/workload"
)

// quickConfig returns a down-scaled configuration for fast tests.
func quickConfig(kind policy.Kind) Config {
	cfg := Default()
	cfg.PolicyKind = kind
	cfg.Warmup = 2000
	cfg.Measure = 20000
	return cfg
}

func TestConfigValidateTable(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{name: "no sites", mutate: func(c *Config) { c.NumSites = 0 }},
		{name: "no disks", mutate: func(c *Config) { c.NumDisks = 0 }},
		{name: "no terminals", mutate: func(c *Config) { c.MPL = 0 }},
		{name: "zero disk time", mutate: func(c *Config) { c.DiskTime = 0 }},
		{name: "disk dev", mutate: func(c *Config) { c.DiskTimeDev = 1.5 }},
		{name: "negative think", mutate: func(c *Config) { c.ThinkTime = -1 }},
		{name: "no classes", mutate: func(c *Config) { c.Classes = nil }},
		{name: "probs mismatch", mutate: func(c *Config) { c.ClassProbs = []float64{1} }},
		{name: "negative msg time", mutate: func(c *Config) { c.MsgTime = -1 }},
		{name: "negative warmup", mutate: func(c *Config) { c.Warmup = -1 }},
		{name: "zero measure", mutate: func(c *Config) { c.Measure = 0 }},
		{name: "periodic without period", mutate: func(c *Config) { c.InfoMode = InfoPeriodic; c.InfoPeriod = 0 }},
		{name: "bad info mode", mutate: func(c *Config) { c.InfoMode = 0 }},
		{name: "bad class", mutate: func(c *Config) { c.Classes[0].PageCPUTime = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := Default()
			tt.mutate(&cfg)
			if cfg.Validate() == nil {
				t.Error("invalid config accepted")
			}
			if _, err := New(cfg); err == nil {
				t.Error("New accepted invalid config")
			}
		})
	}
	if err := Default().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestInfoModeString(t *testing.T) {
	if InfoPerfect.String() != "perfect" || InfoPeriodic.String() != "periodic" ||
		InfoMode(0).String() != "unknown" {
		t.Error("InfoMode.String mismatch")
	}
}

func TestLocalRunMatchesPaperBaseline(t *testing.T) {
	// Paper Table 8 at think_time = 350 reports W̄_LOCAL = 22.71 and
	// ρ_c = 0.53; Section 5.2 quotes a mean execution time of 30.5. Our
	// model should land near those values (independent implementation and
	// seeds: allow ~15% on W̄, a few points on utilization).
	cfg := quickConfig(policy.Local)
	cfg.Measure = 60000
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := sys.Run()
	if r.MeanWait < 17 || r.MeanWait > 28 {
		t.Errorf("W̄_LOCAL = %v, paper reports 22.71", r.MeanWait)
	}
	if math.Abs(r.CPUUtil-0.53) > 0.05 {
		t.Errorf("ρ_c = %v, paper reports 0.53", r.CPUUtil)
	}
	meanService := 0.5*r.ByClass[0].MeanService + 0.5*r.ByClass[1].MeanService
	if math.Abs(meanService-30.5) > 1.5 {
		t.Errorf("mean execution time = %v, paper quotes 30.5", meanService)
	}
	if r.RemoteFrac != 0 || r.SubnetUtil != 0 {
		t.Errorf("LOCAL run used the network: remote %v subnet %v", r.RemoteFrac, r.SubnetUtil)
	}
	if r.Policy != "LOCAL" {
		t.Errorf("Policy = %q", r.Policy)
	}
}

func TestDynamicPoliciesBeatLocal(t *testing.T) {
	waits := make(map[policy.Kind]float64)
	for _, kind := range []policy.Kind{policy.Local, policy.BNQ, policy.BNQRD, policy.LERT} {
		sys, err := New(quickConfig(kind))
		if err != nil {
			t.Fatal(err)
		}
		waits[kind] = sys.Run().MeanWait
	}
	for _, kind := range []policy.Kind{policy.BNQ, policy.BNQRD, policy.LERT} {
		if waits[kind] >= waits[policy.Local] {
			t.Errorf("%v W̄ = %v not better than LOCAL %v", kind, waits[kind], waits[policy.Local])
		}
	}
	// The paper's central result: demand-aware policies beat BNQ.
	if waits[policy.BNQRD] >= waits[policy.BNQ] {
		t.Errorf("BNQRD (%v) not better than BNQ (%v)", waits[policy.BNQRD], waits[policy.BNQ])
	}
	if waits[policy.LERT] >= waits[policy.BNQ] {
		t.Errorf("LERT (%v) not better than BNQ (%v)", waits[policy.LERT], waits[policy.BNQ])
	}
}

func TestWorkPolicyCompetitive(t *testing.T) {
	// The two-dimensional WORK policy uses strictly more information
	// than BNQ (demand estimates per resource) and should beat it.
	waits := map[policy.Kind]float64{}
	for _, kind := range []policy.Kind{policy.BNQ, policy.Work, policy.LERT} {
		sys, err := New(quickConfig(kind))
		if err != nil {
			t.Fatal(err)
		}
		waits[kind] = sys.Run().MeanWait
	}
	if waits[policy.Work] >= waits[policy.BNQ] {
		t.Errorf("WORK (W̄=%v) not better than BNQ (W̄=%v)", waits[policy.Work], waits[policy.BNQ])
	}
	// It should be in LERT's league (within 25%).
	if waits[policy.Work] > waits[policy.LERT]*1.25 {
		t.Errorf("WORK (W̄=%v) far behind LERT (W̄=%v)", waits[policy.Work], waits[policy.LERT])
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	cfg := quickConfig(policy.LERT)
	cfg.Warmup = 500
	cfg.Measure = 5000
	run := func() Results {
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sys.Run()
	}
	a, b := run(), run()
	if a.MeanWait != b.MeanWait || a.Completed != b.Completed || a.CPUUtil != b.CPUUtil {
		t.Errorf("same seed produced different results: %+v vs %+v", a, b)
	}
	cfg.Seed = 99
	c := run()
	if c.MeanWait == a.MeanWait && c.Completed == a.Completed {
		t.Error("different seed produced identical results")
	}
}

func TestClosedPopulationInvariant(t *testing.T) {
	// In a closed model the number of measured completions per terminal
	// cannot exceed horizon / min cycle time, and every query completes
	// with reads done == reads total.
	cfg := quickConfig(policy.BNQ)
	cfg.Warmup = 500
	cfg.Measure = 5000
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := sys.Run()
	if r.Completed == 0 {
		t.Fatal("no completions")
	}
	// Load table must return to the live population (queries still in
	// flight are counted; completed ones are not).
	total := sys.table.Total()
	if total < 0 || total > cfg.NumSites*cfg.MPL {
		t.Errorf("load table total %d outside [0, %d]", total, cfg.NumSites*cfg.MPL)
	}
}

func TestRemoteQueriesPayMessageCosts(t *testing.T) {
	// With RANDOM allocation most queries go remote; their measured mean
	// service must exceed the LOCAL mean by about the two message times.
	local, err := New(quickConfig(policy.Local))
	if err != nil {
		t.Fatal(err)
	}
	random, err := New(quickConfig(policy.Random))
	if err != nil {
		t.Fatal(err)
	}
	rl, rr := local.Run(), random.Run()
	if rr.RemoteFrac < 0.7 {
		t.Errorf("RANDOM remote fraction = %v, want > 0.7 for 6 sites", rr.RemoteFrac)
	}
	dl := rr.ByClass[0].MeanService - rl.ByClass[0].MeanService
	want := 2 * rr.RemoteFrac // msg_length 1 each way, only for remotes
	if math.Abs(dl-want) > 0.4 {
		t.Errorf("remote service premium = %v, want ~%v", dl, want)
	}
	if rr.SubnetUtil <= 0 {
		t.Error("RANDOM run reports zero subnet utilization")
	}
}

func TestPeriodicInfoRuns(t *testing.T) {
	cfg := quickConfig(policy.LERT)
	cfg.InfoMode = InfoPeriodic
	cfg.InfoPeriod = 50
	cfg.Warmup = 500
	cfg.Measure = 10000
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := sys.Run()
	if r.Completed == 0 {
		t.Error("periodic-info run completed nothing")
	}
}

func TestStaleInfoDegradesLERT(t *testing.T) {
	fresh := quickConfig(policy.LERT)
	stale := quickConfig(policy.LERT)
	stale.InfoMode = InfoPeriodic
	stale.InfoPeriod = 400 // older than a typical response time
	sysF, err := New(fresh)
	if err != nil {
		t.Fatal(err)
	}
	sysS, err := New(stale)
	if err != nil {
		t.Fatal(err)
	}
	wF, wS := sysF.Run().MeanWait, sysS.Run().MeanWait
	if wS <= wF {
		t.Errorf("very stale info (W̄=%v) not worse than perfect info (W̄=%v)", wS, wF)
	}
}

func TestFairnessSignTracksClassMix(t *testing.T) {
	// Table 12: with mostly CPU-bound work (p_io = 0.3) the CPU is the
	// bottleneck and F = Ŵ_io − Ŵ_cpu is negative; with mostly I/O-bound
	// work (p_io = 0.8) the disks are the bottleneck and F is positive.
	run := func(pio float64) Results {
		cfg := quickConfig(policy.Local)
		cfg.ClassProbs = []float64{pio, 1 - pio}
		cfg.Measure = 40000
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sys.Run()
	}
	low, high := run(0.3), run(0.8)
	if low.Fairness >= 0 {
		t.Errorf("F(p_io=0.3) = %v, want negative (paper: −0.377)", low.Fairness)
	}
	if high.Fairness <= 0 {
		t.Errorf("F(p_io=0.8) = %v, want positive (paper: +0.224)", high.Fairness)
	}
	// ρ_d/ρ_c ratios from Table 12: 0.70 at 0.3 and 2.08 at 0.8.
	if math.Abs(low.UtilizationRatio()-0.70) > 0.08 {
		t.Errorf("ρ_d/ρ_c at p_io=0.3 = %v, paper reports 0.70", low.UtilizationRatio())
	}
	if math.Abs(high.UtilizationRatio()-2.08) > 0.2 {
		t.Errorf("ρ_d/ρ_c at p_io=0.8 = %v, paper reports 2.08", high.UtilizationRatio())
	}
}

func TestCustomPolicyIsUsed(t *testing.T) {
	cfg := quickConfig(policy.BNQ)
	cfg.CustomPolicy = fixedSitePolicy{site: 0}
	cfg.Warmup = 100
	cfg.Measure = 2000
	if cfg.PolicyName() != "fixed" {
		t.Errorf("PolicyName = %q, want fixed", cfg.PolicyName())
	}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := sys.Run()
	if r.Policy != "fixed" {
		t.Errorf("Policy = %q, want fixed", r.Policy)
	}
	// Everything funnels to site 0: 5/6 of completions are remote.
	if r.RemoteFrac < 0.7 {
		t.Errorf("remote fraction = %v, want ~0.83", r.RemoteFrac)
	}
}

// fixedSitePolicy always allocates to one site (pathological, for tests).
type fixedSitePolicy struct{ site int }

func (p fixedSitePolicy) Name() string { return "fixed" }

func (p fixedSitePolicy) Select(*workload.Query, int, *policy.Env) int { return p.site }

func TestUtilizationRatioZeroCPU(t *testing.T) {
	var r Results
	if r.UtilizationRatio() != 0 {
		t.Error("UtilizationRatio with zero CPU should be 0")
	}
}

func TestEstimateOracleRuns(t *testing.T) {
	cfg := quickConfig(policy.LERT)
	cfg.EstimateMode = workload.EstimateActual
	cfg.Warmup = 500
	cfg.Measure = 10000
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r := sys.Run(); r.Completed == 0 {
		t.Error("oracle-estimate run completed nothing")
	}
}
