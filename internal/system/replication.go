package system

import (
	"dqalloc/internal/check"
	"dqalloc/internal/network"
	"dqalloc/internal/policy"
	"dqalloc/internal/replica"
	"dqalloc/internal/rng"
	"dqalloc/internal/workload"
)

// This file wires the self-healing replica manager (internal/replica)
// into the system model. The manager itself is pure bookkeeping; this
// layer owns everything with side effects — the scheduler events, the
// ring shipments, the allocation fallback for degraded reads, and the
// per-(site, fragment) commitment ledger that keeps load-driven demotion
// from dropping a copy a site is still executing against.
//
// Everything here is gated on s.repl != nil; a run with
// Config.Replication.Enabled == false schedules no extra events, draws
// no extra random numbers, and is bit-identical to a build without the
// subsystem. The fragment-availability tracker (s.avail) is independent:
// it is built for any Placement under site failures — manager or not —
// and adds no events or draws either.

// Scheduler event kinds for the replication layer (see sim.Event.Kind).
const (
	// eventKindReplScan tags the load-driven add/drop scan ticks.
	eventKindReplScan byte = 0x71
	// eventKindReplRebuild tags rebuild-start timers (the staging delay
	// between detecting a deficit and launching its transfer, and the
	// retry backoff after a failed plan or an aborted copy).
	eventKindReplRebuild byte = 0x72
	// eventKindFragment tags ring transmissions carrying a fragment copy
	// (rebuild/promotion shipments and degraded-read fetches), so traces
	// distinguish data movement from query traffic.
	eventKindFragment byte = 0x22
)

// replRuntime is the per-run state of the replication subsystem.
type replRuntime struct {
	cfg replica.ManagerConfig
	mgr *replica.Manager

	// active counts the queries currently committed to each (site,
	// fragment) pair; load-driven demotion may only drop a copy with a
	// zero count. Maintained at exactly the load-table Assign/Complete
	// pairing points, so it balances whenever the table does.
	active  [][]int32
	canDrop func(site, object int) bool

	// penaltyFn prices the degraded-read fallback: every site pays the
	// ring fetch time of one fragment. Constant per-site in this ring
	// model, but the hook is per-site for generality.
	penalty   float64
	penaltyFn func(site int) float64

	degraded  uint64 // degraded dispatches (fetch-at-non-holder)
	noReplica uint64 // queries rejected because no up site could serve the fragment
	badExec   uint64 // executions at a non-holder without degraded marking (auditor)

	// cachedState memoizes the auditor snapshot between mutations; the
	// auditor runs at every event, the O(objects × sites) scan only when
	// something moved.
	cachedState check.ReplicationState
	cachedValid bool
}

// setupReplication builds the replica manager during New. stream is the
// manager's dedicated root child (11).
func (s *System) setupReplication(stream *rng.Stream) error {
	mgr, err := replica.NewManager(s.cfg.Placement, s.cfg.Replication, stream)
	if err != nil {
		return err
	}
	r := &replRuntime{cfg: s.cfg.Replication, mgr: mgr}
	r.active = make([][]int32, s.cfg.NumSites)
	for i := range r.active {
		r.active[i] = make([]int32, mgr.NumObjects())
	}
	r.canDrop = func(site, object int) bool { return r.active[site][object] == 0 }
	r.penalty = s.ring.TransmitTime(r.cfg.FragmentSize)
	r.penaltyFn = func(int) float64 { return r.penalty }
	s.repl = r
	if r.cfg.LoadDriven() {
		ev := s.sched.After(r.cfg.ScanPeriod, s.replScanTick)
		ev.SetKind(eventKindReplScan)
	}
	return nil
}

// holdsLive reports whether site holds a copy of object under the live
// placement (static when the manager is off).
func (s *System) holdsLive(site, object int) bool {
	if s.repl != nil {
		return s.repl.mgr.Holds(site, object)
	}
	return s.cfg.Placement.Holds(site, object)
}

// replUp returns the live site mask for the manager (nil = all up).
func (s *System) replUp() []bool {
	if s.faults != nil {
		return s.faults.inj.Up()
	}
	return nil
}

// replAssign and replRelease maintain the per-(site, fragment)
// commitment ledger; they piggyback on exactly the load-table
// Assign/Complete pairing points.
func (s *System) replAssign(q *workload.Query, site int) {
	if s.repl != nil {
		s.repl.active[site][q.Object]++
	}
}

func (s *System) replRelease(q *workload.Query, site int) {
	if s.repl != nil {
		s.repl.active[site][q.Object]--
	}
}

// selectSite runs the allocation policy for q over the currently allowed
// sites — the live copy holders under a placement — falling back to a
// degraded-read site when the replica manager is on and no up site holds
// the fragment. NoSite means nothing can take the query.
func (s *System) selectSite(q *workload.Query) int {
	if s.cfg.Placement != nil {
		s.env.Candidates = s.candidateSites(q)
	}
	q.Degraded = false
	exec := s.pol.Select(q, q.Home, s.env)
	if exec == policy.NoSite && s.repl != nil {
		exec = s.replDegradedSite(q)
	}
	return exec
}

// replDegradedSite handles the no-up-holder case: in fetch mode the
// policy re-runs over all up sites with every candidate's cost
// surcharged by the fragment fetch time, and the winner executes
// degraded; in reject mode (or when every site is down) the query is
// unservable.
func (s *System) replDegradedSite(q *workload.Query) int {
	if s.repl.cfg.Degraded == replica.DegradedReject {
		return policy.NoSite
	}
	saved := s.env.Candidates
	s.env.Candidates = nil
	s.env.Penalty = s.repl.penaltyFn
	exec := s.pol.Select(q, q.Home, s.env)
	s.env.Penalty = nil
	s.env.Candidates = saved
	if exec != policy.NoSite {
		q.Degraded = true
	}
	return exec
}

// landQuery starts q's execution at site. Under the replica manager a
// site lacking the fragment either fetches it over the ring first (a
// degraded allocation) or — when a crash wiped the copy while the query
// was in flight and the site repaired before delivery — counts the
// landing as a loss for the watchdog to recover. Any other
// missing-fragment execution is an allocator bug the auditor flags.
func (s *System) landQuery(q *workload.Query, site int) {
	if r := s.repl; r != nil && !r.mgr.Holds(site, q.Object) {
		if q.Degraded {
			s.replFetch(q, site)
			return
		}
		if s.faults != nil {
			s.releaseAllocation(q)
			s.faultLost(q)
			return
		}
		r.badExec++
	}
	s.sites[site].Execute(q)
}

// replFetch ships q's fragment from the nearest holder to the degraded
// execution site, then executes. The holder may be down — its stable
// storage survives the execution engine's crash (the same assumption
// that keeps terminals alive), so archives stay readable.
func (s *System) replFetch(q *workload.Query, site int) {
	src := s.replNearestHolder(q.Object, site)
	size := s.repl.cfg.FragmentSize
	t := s.ring.TransmitTime(size)
	q.Service += t
	q.NetService += t
	m := network.Message{
		From: src,
		To:   site,
		Size: size,
		Kind: eventKindFragment,
		OnDeliver: func() {
			if s.dropDefunct(q) {
				return
			}
			if !s.up(site) {
				s.releaseAllocation(q)
				s.faultLost(q)
				return
			}
			s.sites[site].Execute(q)
		},
	}
	if s.faults != nil {
		m.OnDrop = func() {
			if s.dropDefunct(q) {
				return
			}
			s.releaseAllocation(q)
			s.faultLost(q)
		}
	}
	s.repl.degraded++
	s.ring.Send(m)
}

// replNearestHolder picks the holder of object with the shortest ring
// distance to site (deterministic: lowest index on ties).
func (s *System) replNearestHolder(object, site int) int {
	n := s.cfg.NumSites
	best, bestDist := -1, n+1
	for _, h := range s.repl.mgr.Candidates(object) {
		d := (site - h + n) % n
		if d < bestDist {
			best, bestDist = h, d
		}
	}
	return best
}

// replScheduleDeficits schedules a rebuild-start timer for each object
// the manager just reported deficient and uncovered.
func (s *System) replScheduleDeficits(objects []int) {
	for _, o := range objects {
		s.replScheduleOne(o)
	}
}

func (s *System) replScheduleOne(o int) {
	ev := s.sched.After(s.repl.cfg.RebuildDelay, func() { s.replTryRebuild(o) })
	ev.SetKind(eventKindReplRebuild)
}

// replTryRebuild fires when a deficit's staging delay (or retry backoff)
// expires: plan a donor and target among the up sites and launch the
// shipment, or — when none exists yet — try again after another delay.
func (s *System) replTryRebuild(o int) {
	r := s.repl
	if !r.mgr.Pending(o) {
		return // resolved (or launched) since this timer was set
	}
	donor, target, ok := r.mgr.PlanRebuild(o, s.replUp())
	if !ok {
		s.replScheduleOne(o)
		return
	}
	id := r.mgr.Begin(o, donor, target, false, s.sched.Now())
	s.replShip(o, id, donor, target)
}

// replShip puts one fragment shipment on the ring. Delivery installs the
// copy; a lossy-ring drop aborts the transfer and retries the deficit.
func (s *System) replShip(o int, id uint64, donor, target int) {
	s.ring.Send(network.Message{
		From:      donor,
		To:        target,
		Size:      s.repl.cfg.FragmentSize,
		Kind:      eventKindFragment,
		OnDeliver: func() { s.replXferDone(o, id) },
		OnDrop:    func() { s.replXferDropped(o, id) },
	})
}

func (s *System) replXferDone(o int, id uint64) {
	st, needMore := s.repl.mgr.Commit(o, id, s.sched.Now(), s.replUp())
	if st == replica.CommitInstalled && s.avail != nil {
		s.availRecount(o)
	}
	if needMore {
		s.replScheduleOne(o)
	}
}

func (s *System) replXferDropped(o int, id uint64) {
	if _, needMore := s.repl.mgr.Abort(o, id); needMore {
		s.replScheduleOne(o)
	}
}

// replScanTick is the load-driven control loop: decay the EWMA rates,
// demote cold fragments (subject to the commitment ledger and the
// last-up-copy guard), and launch promotion shipments for hot ones.
func (s *System) replScanTick() {
	r := s.repl
	now := s.sched.Now()
	up := s.replUp()
	promote, drops := r.mgr.Scan(now, up, r.canDrop)
	if s.avail != nil {
		for _, d := range drops {
			s.availRecount(d.Object)
		}
	}
	for _, o := range promote {
		donor, target, ok := r.mgr.PlanAdd(o, up)
		if !ok {
			continue // no up target; the next scan retries
		}
		id := r.mgr.Begin(o, donor, target, true, now)
		s.replShip(o, id, donor, target)
	}
	ev := s.sched.After(r.cfg.ScanPeriod, s.replScanTick)
	ev.SetKind(eventKindReplScan)
}

// replState feeds the replication-conservation auditor, memoized on the
// manager's mutation counter so per-event checks stay O(1).
func (s *System) replState() check.ReplicationState {
	r := s.repl
	mut := r.mgr.Mutations() + r.badExec
	if r.cachedValid && mut == r.cachedState.Mutations {
		return r.cachedState
	}
	a := r.mgr.Audit()
	r.cachedState = check.ReplicationState{
		Mutations:    mut,
		Deficient:    a.Deficient,
		Uncovered:    a.Uncovered,
		ZeroCopy:     a.ZeroCopy,
		OverMax:      a.OverMax,
		Inconsistent: a.Inconsistent,
		InFlight:     a.InFlight,
		Launched:     a.Launched,
		Rebuilt:      a.Rebuilt,
		Added:        a.Added,
		Aborted:      a.Aborted,
		BadExec:      r.badExec,
	}
	r.cachedValid = true
	return r.cachedState
}

// fragAvail tracks each fragment's reachability — the time it spent with
// no up holder — for the fragment-weighted availability results. Built
// for any Placement under site failures; it schedules no events and
// draws nothing, so it never perturbs digests.
type fragAvail struct {
	nUp       []int     // current up-holder count per fragment
	downSince []float64 // instant the fragment lost its last up holder
	downTime  []float64 // unreachable time inside the measured window
	winStart  float64
}

// setupFragAvail builds the tracker (every site starts up).
func (s *System) setupFragAvail() {
	n := s.cfg.Placement.NumObjects()
	a := &fragAvail{
		nUp:       make([]int, n),
		downSince: make([]float64, n),
		downTime:  make([]float64, n),
	}
	for o := 0; o < n; o++ {
		a.nUp[o] = len(s.cfg.Placement.Candidates(o))
	}
	s.avail = a
}

// availReset starts the measured window.
func (s *System) availReset(now float64) {
	a := s.avail
	a.winStart = now
	for o := range a.downTime {
		a.downTime[o] = 0
	}
}

// availSet updates one fragment's up-holder count, accumulating
// unreachable time at the down→up transition.
func (a *fragAvail) availSet(o, n int, now float64) {
	prev := a.nUp[o]
	a.nUp[o] = n
	switch {
	case prev > 0 && n == 0:
		a.downSince[o] = now
	case prev == 0 && n > 0:
		from := a.downSince[o]
		if from < a.winStart {
			from = a.winStart
		}
		a.downTime[o] += now - from
	}
}

// availRecount refreshes one fragment's up-holder count from the live
// placement and the site mask.
func (s *System) availRecount(o int) {
	n := 0
	for site := 0; site < s.cfg.NumSites; site++ {
		if s.up(site) && s.holdsLive(site, o) {
			n++
		}
	}
	s.avail.availSet(o, n, s.sched.Now())
}

// availRecountAll refreshes every fragment — used at the rare crash and
// repair instants, when any fragment's holder set may have changed.
func (s *System) availRecountAll() {
	for o := range s.avail.nUp {
		s.availRecount(o)
	}
}

// availFinal closes the window at end and returns the mean and minimum
// per-fragment availability.
func (s *System) availFinal(end float64) (mean, min float64) {
	a := s.avail
	window := end - a.winStart
	if window <= 0 {
		return 1, 1
	}
	min = 1
	for o := range a.nUp {
		dt := a.downTime[o]
		if a.nUp[o] == 0 {
			from := a.downSince[o]
			if from < a.winStart {
				from = a.winStart
			}
			dt += end - from
		}
		av := 1 - dt/window
		mean += av
		if av < min {
			min = av
		}
	}
	mean /= float64(len(a.nUp))
	return mean, min
}
