package system

import (
	"dqalloc/internal/check"
	"dqalloc/internal/fault"
	"dqalloc/internal/loadinfo"
	"dqalloc/internal/rng"
	"dqalloc/internal/workload"
)

// This file wires the fail-slow (gray failure) subsystem into the system
// model: the injector's episodes throttle a site's CPU and disks in
// place while the site keeps running — and keeps broadcasting load
// reports — and ring brownouts stretch transmission times. On top sits
// the defense layer: a suspicion detector scoring each site's realized
// slowdown against the population so the allocation policies route
// around gray sites, plus a straggler-aware relaxation of the hedge gate
// so a query stuck at a suspect site is raced by a clone elsewhere.
//
// Everything here is gated on s.slow / s.susp being non-nil; a run with
// both knobs disabled schedules no extra events, draws no extra random
// numbers, and is bit-identical to a build without the subsystem.

// slowRuntime is the per-run state of the fail-slow injection.
type slowRuntime struct {
	cfg fault.Config
	inj *fault.SlowInjector

	// hedgeWinsVsSlow counts hedge races the clone won while the
	// primary's execution site was inside a fail-slow episode — the
	// hedges that demonstrably beat a gray failure.
	hedgeWinsVsSlow uint64
}

// suspicionRuntime is the per-run state of the gray-failure detector.
type suspicionRuntime struct {
	det *loadinfo.Suspicion

	// suspectTransfers counts measured allocations that moved a query
	// off its suspect home site — the detector's routing interventions.
	suspectTransfers uint64
}

// totals implements the closure read by check.NewSlowFaultConservation.
func (sr *slowRuntime) totals() check.SlowTotals {
	t := sr.inj.Totals()
	return check.SlowTotals{
		Episodes:       t.Episodes,
		Recoveries:     t.Recoveries,
		Degraded:       t.Degraded,
		Brownouts:      t.Brownouts,
		BrownoutEnds:   t.BrownoutEnds,
		BrownoutActive: t.BrownoutActive,
	}
}

// setupSlow builds the fail-slow runtime during New. stream must be the
// root's dedicated fail-slow child (Child 13), so crash-only runs and
// no-fault runs never touch it.
func (s *System) setupSlow(stream *rng.Stream) error {
	sr := &slowRuntime{cfg: s.cfg.Fault}
	var onSlow, onRecover func(int)
	if s.cfg.Fault.SlowFaults() {
		// A degradation factor of k throttles the service rate to 1/k:
		// the in-service work already done keeps its timing and only the
		// remainder stretches (queue.SetRate semantics).
		cpuRate := 1 / s.cfg.Fault.SlowCPUFactor()
		diskRate := 1 / s.cfg.Fault.SlowDiskMult()
		onSlow = func(site int) {
			s.sites[site].SetCPURate(cpuRate)
			s.sites[site].SetDiskRate(diskRate)
		}
		onRecover = func(site int) {
			s.sites[site].SetCPURate(1)
			s.sites[site].SetDiskRate(1)
		}
	}
	var onBrownout func(bool)
	if s.cfg.Fault.Brownouts() {
		factor := s.cfg.Fault.BrownoutFactor
		stretch := func() float64 { return factor }
		// The stretch hook is only installed while a brownout is open, so
		// nominal transmissions never even multiply by 1.
		onBrownout = func(active bool) {
			if active {
				s.ring.SetStretch(stretch)
			} else {
				s.ring.SetStretch(nil)
			}
		}
	}
	inj, err := fault.NewSlowInjector(s.sched, s.cfg.NumSites, s.cfg.Fault, stream, onSlow, onRecover, onBrownout)
	if err != nil {
		return err
	}
	sr.inj = inj
	s.slow = sr
	return nil
}

// setupSuspicion builds the gray-failure detector during New and hands
// the policies its live mask and penalty hook. The detector draws no
// random numbers and schedules no events — it only changes decisions —
// so it composes with common-random-numbers comparisons.
func (s *System) setupSuspicion() error {
	det, err := loadinfo.NewSuspicion(s.cfg.NumSites, s.cfg.Suspect)
	if err != nil {
		return err
	}
	s.susp = &suspicionRuntime{det: det}
	s.env.Suspect = det.Mask()
	s.env.Penalty = det.Penalty
	return nil
}

// suspected reports whether the detector currently suspects site (always
// false without a detector).
func (s *System) suspected(site int) bool {
	return s.susp != nil && s.susp.det.Suspected(site)
}

// suspectObserve feeds the detector one completed attempt's realized
// slowdown: wall response over nominal execution demand. The sites'
// service draws are nominal — a fail-slow episode delays completions
// without touching the sampled demands — so the ratio is ≈ 1 + queueing
// at a healthy site and ≈ the degradation factor + queueing at a gray
// one, which is exactly the contrast the detector thresholds.
func (s *System) suspectObserve(q *workload.Query) {
	if s.susp == nil {
		return
	}
	if es := q.ExecService(); es > 0 {
		now := s.sched.Now()
		s.susp.det.Observe(q.Exec, (now-q.SubmitTime)/es, now)
	}
}
