package system

import (
	"testing"

	"dqalloc/internal/policy"
)

func TestMigrationConfigValidation(t *testing.T) {
	tests := []struct {
		name string
		m    MigrationConfig
		ok   bool
	}{
		{name: "disabled zero value", m: MigrationConfig{}, ok: true},
		{name: "default", m: DefaultMigration(), ok: true},
		{name: "check every zero", m: MigrationConfig{Enabled: true, CheckEvery: 0, MinRemaining: 1}},
		{name: "min remaining zero", m: MigrationConfig{Enabled: true, CheckEvery: 1, MinRemaining: 0}},
		{name: "negative state", m: MigrationConfig{Enabled: true, CheckEvery: 1, MinRemaining: 1, StateFactor: -1}},
		{name: "negative threshold", m: MigrationConfig{Enabled: true, CheckEvery: 1, MinRemaining: 1, Threshold: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := Default()
			cfg.Migration = tt.m
			err := cfg.Validate()
			if (err == nil) != tt.ok {
				t.Errorf("Validate() = %v, ok = %v", err, tt.ok)
			}
		})
	}
}

func TestMigrationRunsAndMigrates(t *testing.T) {
	cfg := Default()
	cfg.PolicyKind = policy.Local // force imbalance so migration has work
	cfg.Migration = DefaultMigration()
	cfg.Warmup = 1000
	cfg.Measure = 20000
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := sys.Run()
	if r.Completed == 0 {
		t.Fatal("no completions with migration enabled")
	}
	if r.Migrations == 0 {
		t.Error("migration enabled but no migrations happened under LOCAL imbalance")
	}
}

func TestMigrationImprovesLocal(t *testing.T) {
	// Migration is the only load-balancing mechanism when allocation is
	// LOCAL; it must reduce waiting time versus plain LOCAL.
	base := Default()
	base.PolicyKind = policy.Local
	base.Warmup = 2000
	base.Measure = 30000
	plain, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	wPlain := plain.Run().MeanWait

	mig := base
	mig.Migration = DefaultMigration()
	migSys, err := New(mig)
	if err != nil {
		t.Fatal(err)
	}
	wMig := migSys.Run().MeanWait
	if wMig >= wPlain {
		t.Errorf("LOCAL+migration W̄ = %v not better than LOCAL %v", wMig, wPlain)
	}
}

func TestMigrationRareUnderLERT(t *testing.T) {
	// With good initial placement there is little left for migration to
	// fix: under LERT, migrations should be far rarer than completions.
	cfg := Default()
	cfg.PolicyKind = policy.LERT
	cfg.Migration = DefaultMigration()
	cfg.Warmup = 1000
	cfg.Measure = 20000
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := sys.Run()
	if r.Migrations > r.Completed/2 {
		t.Errorf("migrations %d vs completions %d: migration thrashing under LERT",
			r.Migrations, r.Completed)
	}
}

func TestMigrationRespectsPlacement(t *testing.T) {
	cfg := partialConfig(t, policy.Local, 2)
	cfg.Migration = DefaultMigration()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Run would panic (placement check in submit / Execute) if migration
	// moved a query to a site without a copy; completing cleanly plus the
	// final table consistency is the assertion.
	r := sys.Run()
	if r.Completed == 0 {
		t.Fatal("no completions")
	}
}

func TestMigrationPreservesLoadTable(t *testing.T) {
	cfg := Default()
	cfg.PolicyKind = policy.Local
	cfg.Migration = DefaultMigration()
	cfg.Warmup = 500
	cfg.Measure = 5000
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run()
	// Drain: everything still in flight must be consistent (total within
	// the closed population).
	total := sys.table.Total()
	if total < 0 || total > cfg.NumSites*cfg.MPL {
		t.Errorf("load table total %d outside [0, %d] after migrating run",
			total, cfg.NumSites*cfg.MPL)
	}
}

func TestCycleHookOwnershipContract(t *testing.T) {
	// A hook that always takes ownership must leave the site idle; the
	// query never completes there.
	cfg := Default()
	cfg.Migration = MigrationConfig{Enabled: true, CheckEvery: 1, MinRemaining: 1, StateFactor: 1, Threshold: 0}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("aggressive migration config rejected: %v", err)
	}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := sys.Run()
	if r.Completed == 0 {
		t.Fatal("aggressive migration starved the system")
	}
}
