package system

import (
	"reflect"
	"testing"

	"dqalloc/internal/fault"
	"dqalloc/internal/policy"
	"dqalloc/internal/replica"
)

// selfHealConfig returns an audited, digested run over a 2-copy partial
// placement with aggressive site crashes and the replica manager on.
func selfHealConfig(t *testing.T, kind policy.Kind, seed uint64) Config {
	t.Helper()
	cfg := partialConfig(t, kind, 2)
	cfg.Seed = seed
	cfg.Audit = true
	cfg.TraceDigest = true
	cfg.Fault = fault.Default()
	cfg.Fault.MTTF = 1500
	cfg.Fault.MTTR = 300
	cfg.Replication = replica.DefaultManager()
	return cfg
}

// TestSelfHealRebuildSmoke: a crash-heavy run with the manager on must
// actually rebuild replicas, stay audit-clean (including the
// replication-conservation auditor), and keep completing queries.
func TestSelfHealRebuildSmoke(t *testing.T) {
	for _, kind := range []policy.Kind{policy.Local, policy.Random, policy.BNQ, policy.LERT} {
		t.Run(kind.String(), func(t *testing.T) {
			r := runCfg(t, selfHealConfig(t, kind, 3))
			if r.SiteCrashes == 0 {
				t.Fatal("no site crashes over ~7 MTTFs per site")
			}
			if r.ReplicasRebuilt == 0 {
				t.Error("crashes wiped copies but nothing was rebuilt")
			}
			if r.MeanRebuildLatency <= 0 {
				t.Errorf("rebuilds happened but mean latency = %v", r.MeanRebuildLatency)
			}
			if r.Completed == 0 {
				t.Error("no completions")
			}
			if r.FragAvailability <= 0 || r.FragAvailability > 1 {
				t.Errorf("fragment availability %v outside (0,1]", r.FragAvailability)
			}
			if r.MinFragAvailability > r.FragAvailability {
				t.Errorf("min fragment availability %v above mean %v",
					r.MinFragAvailability, r.FragAvailability)
			}
		})
	}
}

// TestSelfHealReplicationDigestDeterministic: the manager's events and
// draws are part of the deterministic stream — same seed, same digest
// and same results; different seed, different digest.
func TestSelfHealReplicationDigestDeterministic(t *testing.T) {
	for _, kind := range []policy.Kind{policy.Random, policy.LERT} {
		t.Run(kind.String(), func(t *testing.T) {
			a := runCfg(t, selfHealConfig(t, kind, 3))
			b := runCfg(t, selfHealConfig(t, kind, 3))
			if a.TraceDigest != b.TraceDigest {
				t.Errorf("same seed digests differ: %x vs %x", a.TraceDigest, b.TraceDigest)
			}
			if !reflect.DeepEqual(a, b) {
				t.Errorf("same seed results differ:\n%+v\nvs\n%+v", a, b)
			}
			if c := runCfg(t, selfHealConfig(t, kind, 4)); c.TraceDigest == a.TraceDigest {
				t.Errorf("different seeds share digest %x", a.TraceDigest)
			}
		})
	}
}

// TestRebuildImprovesFragAvailability: under the same crash schedule a
// rebuild-on run must keep every fragment reachable strictly more of the
// time than a static 2-copy placement — the tentpole's whole point. The
// rebuild must be fast relative to the crash rate for this to hold: the
// fragment shipments share the ring with query traffic, so a large
// FragmentSize under frequent crashes stretches the deficit windows
// until re-replication stops paying for itself.
func TestRebuildImprovesFragAvailability(t *testing.T) {
	onCfg := selfHealConfig(t, policy.LERT, 5)
	onCfg.Fault.MTTR = 600
	onCfg.Replication.FragmentSize = 1
	onCfg.Replication.RebuildDelay = 10
	on := runCfg(t, onCfg)
	offCfg := selfHealConfig(t, policy.LERT, 5)
	offCfg.Fault.MTTR = 600
	offCfg.Replication = replica.ManagerConfig{}
	off := runCfg(t, offCfg)

	if off.MinFragAvailability <= 0 || off.MinFragAvailability >= 1 {
		t.Fatalf("static placement min fragment availability %v outside (0,1); cannot compare",
			off.MinFragAvailability)
	}
	if on.MinFragAvailability <= off.MinFragAvailability {
		t.Errorf("rebuild-on min fragment availability %v not above rebuild-off %v",
			on.MinFragAvailability, off.MinFragAvailability)
	}
	if on.FragAvailability <= off.FragAvailability {
		t.Errorf("rebuild-on mean fragment availability %v not above rebuild-off %v",
			on.FragAvailability, off.FragAvailability)
	}
	if off.ReplicasRebuilt != 0 {
		t.Errorf("static placement rebuilt %d replicas", off.ReplicasRebuilt)
	}
}

// degradedConfig pins every fragment to a single copy with no rebuild
// headroom (Min = Max = 1), so a crashed holder leaves its fragments
// unreachable until repair — the degraded-read window.
func degradedConfig(t *testing.T, mode replica.DegradedMode) Config {
	t.Helper()
	cfg := partialConfig(t, policy.LERT, 1)
	cfg.Seed = 11
	cfg.Audit = true
	cfg.Fault = fault.Default()
	cfg.Fault.MTTF = 1500
	cfg.Fault.MTTR = 500
	cfg.Replication = replica.DefaultManager()
	cfg.Replication.MinCopies = 1
	cfg.Replication.MaxCopies = 1
	cfg.Replication.Degraded = mode
	return cfg
}

// TestDegradedFetchServesUnreachableFragments: in fetch mode queries for
// a downed holder's fragment execute elsewhere after paying the ring
// fetch, instead of being rejected.
func TestDegradedFetchServesUnreachableFragments(t *testing.T) {
	r := runCfg(t, degradedConfig(t, replica.DegradedFetch))
	if r.SiteCrashes == 0 {
		t.Fatal("no crashes to open a degraded window")
	}
	if r.DegradedReads == 0 {
		t.Error("single-copy placement under crashes produced no degraded reads")
	}
	if r.NoReplicaRejects != 0 {
		t.Errorf("%d NoReplica rejects in fetch mode", r.NoReplicaRejects)
	}
	if r.Completed == 0 {
		t.Error("no completions")
	}
}

// TestDegradedRejectCountsNoReplica: in reject mode the same windows
// surface as NoReplica rejections instead.
func TestDegradedRejectCountsNoReplica(t *testing.T) {
	r := runCfg(t, degradedConfig(t, replica.DegradedReject))
	if r.SiteCrashes == 0 {
		t.Fatal("no crashes to open a degraded window")
	}
	if r.NoReplicaRejects == 0 {
		t.Error("single-copy placement under crashes produced no NoReplica rejects")
	}
	if r.DegradedReads != 0 {
		t.Errorf("%d degraded reads in reject mode", r.DegradedReads)
	}
	if r.QueriesRejected < r.NoReplicaRejects {
		t.Errorf("total rejections %d below NoReplica rejections %d",
			r.QueriesRejected, r.NoReplicaRejects)
	}
}

// TestLoadDrivenReplicaAddAndDrop: the scan loop must promote fragments
// toward MaxCopies when the hot threshold sits below the observed access
// rates, and demote toward MinCopies when the cold threshold sits above
// them — each run audit-clean.
func TestLoadDrivenReplicaAddAndDrop(t *testing.T) {
	grow := partialConfig(t, policy.LERT, 2)
	grow.Seed = 13
	grow.Warmup = 2000 // the first promotion waves must clear before measuring
	grow.Audit = true
	grow.Replication = replica.DefaultManager()
	grow.Replication.FragmentSize = 1
	grow.Replication.ScanPeriod = 200
	grow.Replication.RateTau = 200
	grow.Replication.Cooldown = 400
	grow.Replication.HotRate = 1e-4 // far below any fragment's real rate
	grow.Replication.ColdRate = 1e-5
	g := runCfg(t, grow)
	if g.ReplicasAdded == 0 {
		t.Error("hot threshold below every access rate but no replicas added")
	}
	if g.ReplicasDropped != 0 {
		t.Errorf("%d drops with a cold threshold below every access rate", g.ReplicasDropped)
	}

	shrink := partialConfig(t, policy.LERT, 3)
	shrink.Seed = 13
	shrink.Warmup = 2000
	shrink.Audit = true
	shrink.Replication = replica.DefaultManager()
	shrink.Replication.FragmentSize = 1
	shrink.Replication.ScanPeriod = 200
	shrink.Replication.RateTau = 200
	shrink.Replication.Cooldown = 400
	shrink.Replication.HotRate = 1e6 // far above any fragment's real rate
	shrink.Replication.ColdRate = 1e5
	sh := runCfg(t, shrink)
	if sh.ReplicasDropped == 0 {
		t.Error("cold threshold above every access rate but no replicas dropped")
	}
	if sh.ReplicasAdded != 0 {
		t.Errorf("%d adds with a hot threshold above every access rate", sh.ReplicasAdded)
	}
}

// TestStaticFragAvailabilityReported: satellite 6 — even without the
// manager, a static placement under site failures must report fragment-
// weighted availability, and a failure-free placed run reports 1.
func TestStaticFragAvailabilityReported(t *testing.T) {
	cfg := partialConfig(t, policy.BNQ, 2)
	cfg.Seed = 7
	cfg.Audit = true
	cfg.Fault = fault.Default()
	cfg.Fault.MTTF = 1500
	cfg.Fault.MTTR = 300
	r := runCfg(t, cfg)
	if r.FragAvailability <= 0 || r.FragAvailability >= 1 {
		t.Errorf("fragment availability %v outside (0,1) despite crashes", r.FragAvailability)
	}
	if r.MinFragAvailability > r.FragAvailability {
		t.Errorf("min %v above mean %v", r.MinFragAvailability, r.FragAvailability)
	}
	// Site availability weights all sites; fragment availability only
	// suffers when every holder of some fragment is down at once, so the
	// 2-copy fragment view must not be worse than the site view.
	if r.FragAvailability < r.Availability {
		t.Errorf("2-copy fragment availability %v below site availability %v",
			r.FragAvailability, r.Availability)
	}

	clean := partialConfig(t, policy.BNQ, 2)
	clean.Seed = 7
	c := runCfg(t, clean)
	if c.FragAvailability != 1 || c.MinFragAvailability != 1 {
		t.Errorf("failure-free placed run reports availability (%v, %v), want (1, 1)",
			c.FragAvailability, c.MinFragAvailability)
	}
}
