package system

import (
	"fmt"
	"math"

	"dqalloc/internal/check"
	"dqalloc/internal/rng"
	"dqalloc/internal/workload"
)

// This file is the per-site overload admission control of the
// imperfect-information robustness extension. Under estimation error or
// stale load views the policies occasionally herd queries onto one site;
// a bounded run queue turns that failure mode from unbounded queueing
// into explicit backpressure: a site at its bound refuses the new
// arrival, which is either parked and resubmitted after a delay (its
// terminal stays blocked — backpressure) or shed outright (the terminal
// returns to thinking and the rejection is counted).
//
// Everything here is gated on s.adm != nil; a run with
// Config.Admission.Enabled == false schedules no extra events, draws no
// extra random numbers, and is bit-identical to a build without the
// subsystem. The fault layer's retry failover bypasses admission on
// purpose: a retried query is already in flight and bounded by the
// closed population, and shedding it would double-count the loss.

// eventKindDefer tags admission resubmission timers (see sim.Event.Kind).
const eventKindDefer byte = 0x45

// AdmissionConfig parameterizes per-site overload admission control. The
// zero value (Enabled == false) disables it.
type AdmissionConfig struct {
	// Enabled turns admission control on.
	Enabled bool
	// MaxQueue is the per-site bound on committed queries (queued,
	// in service, or in flight toward the site): an arrival finding the
	// chosen site at the bound is bounced.
	MaxQueue int
	// Defer parks bounced queries for a random delay and resubmits them
	// through the full allocation path, instead of shedding immediately.
	Defer bool
	// DeferDelay is the mean of the exponential resubmission delay.
	DeferDelay float64
	// MaxDefers is the per-query deferral budget; a query bounced after
	// exhausting it is shed.
	MaxDefers int
}

// DefaultAdmission returns a moderate setting: bound each site at 15
// committed queries and defer up to 3 times with mean delay 5 before
// shedding.
func DefaultAdmission() AdmissionConfig {
	return AdmissionConfig{Enabled: true, MaxQueue: 15, Defer: true, DeferDelay: 5, MaxDefers: 3}
}

// validate reports the first admission-config error, if any.
func (a AdmissionConfig) validate() error {
	if !a.Enabled {
		return nil
	}
	switch {
	case a.MaxQueue < 1:
		return fmt.Errorf("system: admission MaxQueue %d < 1", a.MaxQueue)
	case a.Defer && (math.IsNaN(a.DeferDelay) || math.IsInf(a.DeferDelay, 0) || a.DeferDelay <= 0):
		return fmt.Errorf("system: admission DeferDelay %v must be positive and finite", a.DeferDelay)
	case a.MaxDefers < 0:
		return fmt.Errorf("system: negative admission MaxDefers %d", a.MaxDefers)
	}
	return nil
}

// admissionRuntime is the per-run state of the admission subsystem.
type admissionRuntime struct {
	cfg AdmissionConfig
	// stream draws resubmission delays; a dedicated child of the root
	// stream so deferrals never perturb the other model streams.
	stream *rng.Stream

	shed        uint64
	deferred    uint64
	resubmitted uint64
	aborted     uint64 // parked queries withdrawn by a deadline abort
	waiting     int
}

// totals implements the closure read by check.NewAdmissionConservation.
func (ar *admissionRuntime) totals() check.AdmissionTotals {
	return check.AdmissionTotals{
		Deferred:    ar.deferred,
		Resubmitted: ar.resubmitted,
		Shed:        ar.shed,
		Aborted:     ar.aborted,
		Waiting:     ar.waiting,
	}
}

// overloadedAt reports whether the chosen site is at its admission bound.
// The count is the ground-truth load table (the same commitment the
// conservation auditor tracks), not the policy's possibly stale view:
// admission is enforced by the receiving site, which always knows its
// own queue.
func (s *System) overloadedAt(site int) bool {
	return s.table.NumQueries(site) >= s.adm.cfg.MaxQueue
}

// admissionBounce handles a query refused by its chosen site: park it
// for a delayed resubmission while its budget lasts, then shed it.
func (s *System) admissionBounce(q *workload.Query) {
	ar := s.adm
	if ar.cfg.Defer && q.Defers < ar.cfg.MaxDefers {
		q.Defers++
		q.Phase = phaseDeferred
		ar.deferred++
		ar.waiting++
		ev := s.sched.After(ar.stream.Exp(ar.cfg.DeferDelay), func() { s.resubmit(q) })
		ev.SetKind(eventKindDefer)
		return
	}
	ar.shed++
	s.rejectQuery(q)
}

// resubmit re-enters a deferred query into the full allocation path: the
// policy runs again over the (possibly changed) load view, and admission
// applies again at whichever site it now picks.
func (s *System) resubmit(q *workload.Query) {
	if s.dropDefunct(q) {
		return // withdrawn by a deadline abort while parked
	}
	s.adm.waiting--
	s.adm.resubmitted++
	s.allocate(q)
}
