package system

import (
	"fmt"

	"dqalloc/internal/network"
	"dqalloc/internal/workload"
)

// MigrationConfig enables mid-execution query migration — the paper's
// first future-work direction (Section 6.2): "moving partially executed
// queries from site to site at certain critical times ... probably
// between its primitive relational operations". Here the critical times
// are read/process cycle boundaries.
type MigrationConfig struct {
	// Enabled turns migration on.
	Enabled bool
	// CheckEvery is the number of completed cycles between migration
	// checks (checking after every page read would be unrealistically
	// aggressive for 1984 hardware).
	CheckEvery int
	// MinRemaining suppresses migration when fewer reads remain — the
	// move could never pay for itself.
	MinRemaining int
	// StateFactor scales the migration message: the state to move is the
	// query descriptor plus partially accumulated results, so the message
	// size is MsgLength × StateFactor.
	StateFactor float64
	// Threshold is the minimum fractional improvement in estimated
	// remaining response time required to migrate (hysteresis against
	// thrashing).
	Threshold float64
}

// DefaultMigration returns a conservative migration setting: check every
// 5 cycles, require 5 remaining reads and a 30% estimated improvement,
// and ship twice the query-descriptor size as state.
func DefaultMigration() MigrationConfig {
	return MigrationConfig{
		Enabled:      true,
		CheckEvery:   5,
		MinRemaining: 5,
		StateFactor:  2,
		Threshold:    0.3,
	}
}

// validate reports the first migration-config error, if any.
func (m MigrationConfig) validate() error {
	if !m.Enabled {
		return nil
	}
	switch {
	case m.CheckEvery < 1:
		return fmt.Errorf("system: migration CheckEvery %d < 1", m.CheckEvery)
	case m.MinRemaining < 1:
		return fmt.Errorf("system: migration MinRemaining %d < 1", m.MinRemaining)
	case m.StateFactor < 0:
		return fmt.Errorf("system: negative migration StateFactor %v", m.StateFactor)
	case m.Threshold < 0:
		return fmt.Errorf("system: negative migration Threshold %v", m.Threshold)
	}
	return nil
}

// maybeMigrate is the site cycle hook: it estimates the remaining
// response time of q at its current site and at every other candidate,
// and moves the query when a strictly better site clears the threshold.
// It reports whether it took ownership of the query.
func (s *System) maybeMigrate(q *workload.Query) bool {
	m := s.cfg.Migration
	remaining := q.ReadsTotal - q.ReadsDone
	if remaining < m.MinRemaining || q.ReadsDone%m.CheckEvery != 0 {
		return false
	}

	// The remaining-work terms deliberately mix one observed quantity
	// with two estimated ones: `remaining` counts the reads actually left
	// (the executing site knows its own progress exactly), but the
	// per-page costs come from the optimizer's EstPageCPU and the mean
	// DiskTime — a migration decision is an allocation decision and sees
	// the same imperfect information, so injected estimation error
	// (internal/noise) propagates to migration exactly as it does to the
	// initial placement.
	remCPU := float64(remaining) * q.EstPageCPU
	remIO := float64(remaining) * s.cfg.DiskTime
	costAt := func(site int) float64 {
		view := s.env.View
		cpuWait := remCPU * float64(view.NumCPUQueries(site))
		ioWait := remIO * float64(view.NumIOQueries(site)) / float64(s.cfg.NumDisks)
		return remCPU + cpuWait + remIO + ioWait
	}

	migSize := s.cfg.Classes[q.Class].MsgLength * m.StateFactor
	migTime := s.ring.TransmitTime(migSize)
	cur := costAt(q.Exec)

	best, bestCost := -1, cur
	candidates := s.candidateSites(q)
	for _, site := range candidates {
		if site == q.Exec || !s.up(site) {
			continue
		}
		if c := costAt(site) + migTime; c < bestCost {
			best, bestCost = site, c
		}
	}
	if best < 0 || bestCost > cur*(1-m.Threshold) {
		return false
	}

	// The query leaves its current site and is re-assigned to the target
	// while its state is in flight.
	bound := s.bound(q)
	s.table.Complete(q.Exec, bound)
	s.table.Assign(best, bound)
	estCPU, estIO := q.EstCPUDemand(), q.EstDiskDemand(s.cfg.DiskTime)
	s.table.CompleteWork(q.Exec, estCPU, estIO)
	s.table.AssignWork(best, estCPU, estIO)
	s.replRelease(q, q.Exec)
	s.replAssign(q, best)
	from := q.Exec
	q.Exec = best
	q.Service += migTime
	q.NetService += migTime
	q.Migrations++
	s.migrations++
	if s.faults != nil {
		// Liveness-checked delivery with drop recovery, like any query
		// shipment: a migration losing its state restarts from scratch.
		s.ring.Send(s.shipMessage(q, from, best, migSize))
		return true
	}
	s.ring.Send(network.Message{
		From:      from,
		To:        best,
		Size:      migSize,
		OnDeliver: func() { s.execDeliver(q, best) },
	})
	return true
}

// candidateSites returns the sites allowed to execute q — the live copy
// holders when the replica manager runs, the static placement otherwise.
func (s *System) candidateSites(q *workload.Query) []int {
	if s.repl != nil {
		return s.repl.mgr.Candidates(q.Object)
	}
	if s.cfg.Placement != nil {
		return s.cfg.Placement.Candidates(q.Object)
	}
	if s.allSites == nil {
		s.allSites = make([]int, s.cfg.NumSites)
		for i := range s.allSites {
			s.allSites[i] = i
		}
	}
	return s.allSites
}
