package system

import (
	"math"
	"reflect"
	"testing"

	"dqalloc/internal/fault"
	"dqalloc/internal/policy"
	"dqalloc/internal/workload"
)

// faultyConfig returns a short audited run with aggressive faults: site
// crashes every ~1500 time units plus a lossy, laggy network.
func faultyConfig(kind policy.Kind, seed uint64) Config {
	cfg := Default()
	cfg.PolicyKind = kind
	cfg.Seed = seed
	cfg.Warmup = 500
	cfg.Measure = 6000
	cfg.Audit = true
	cfg.TraceDigest = true
	cfg.Fault = fault.Default()
	cfg.Fault.MTTF = 1500
	cfg.Fault.MTTR = 300
	cfg.Fault.DropProb = 0.05
	cfg.Fault.DelayMean = 0.5
	return cfg
}

func runCfg(t *testing.T, cfg Config) Results {
	t.Helper()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := sys.Run()
	if err := sys.Audit(); err != nil {
		t.Fatalf("%s seed %d: %v", cfg.PolicyName(), cfg.Seed, err)
	}
	return r
}

// TestFaultSmoke: a heavily faulted run must stay audit-clean, actually
// exercise the failure paths, and keep making progress.
func TestFaultSmoke(t *testing.T) {
	for _, kind := range []policy.Kind{policy.Local, policy.Random, policy.BNQ, policy.BNQRD, policy.LERT} {
		t.Run(kind.String(), func(t *testing.T) {
			r := runCfg(t, faultyConfig(kind, 3))
			if r.SiteCrashes == 0 {
				t.Error("no site crashes over ~4 MTTFs per site")
			}
			if r.QueriesLost == 0 {
				t.Error("no queries lost despite crashes and a 5% drop rate")
			}
			if r.QueriesRetried == 0 {
				t.Error("no retries despite losses")
			}
			if r.Completed == 0 {
				t.Error("no completions")
			}
			if r.Availability <= 0 || r.Availability >= 1 {
				t.Errorf("availability %v outside (0,1) despite downtime", r.Availability)
			}
			if r.AvailResponse < r.MeanResponse {
				t.Errorf("availability-weighted response %v below mean response %v",
					r.AvailResponse, r.MeanResponse)
			}
			var down float64
			for _, d := range r.Downtime {
				if d < 0 || d > r.MeasuredTime {
					t.Errorf("per-site downtime %v outside [0, %v]", d, r.MeasuredTime)
				}
				down += d
			}
			if down == 0 {
				t.Error("no downtime recorded despite crashes")
			}
		})
	}
}

// TestFaultDigestDeterministic extends the determinism regression to
// fault runs: same seed, same faults → identical event stream; a
// different seed must produce a different one.
func TestFaultDigestDeterministic(t *testing.T) {
	for _, kind := range []policy.Kind{policy.Local, policy.Random, policy.LERT} {
		t.Run(kind.String(), func(t *testing.T) {
			a := runCfg(t, faultyConfig(kind, 3))
			b := runCfg(t, faultyConfig(kind, 3))
			if a.TraceDigest != b.TraceDigest {
				t.Errorf("same seed digests differ: %x vs %x", a.TraceDigest, b.TraceDigest)
			}
			if !reflect.DeepEqual(a, b) {
				t.Errorf("same seed results differ:\n%+v\nvs\n%+v", a, b)
			}
			if c := runCfg(t, faultyConfig(kind, 4)); c.TraceDigest == a.TraceDigest {
				t.Errorf("different seeds share digest %x", a.TraceDigest)
			}
		})
	}
}

// TestFaultRunsConcurrently: concurrent fault runs must reproduce the
// serial digests — systems share no mutable state.
func TestFaultRunsConcurrently(t *testing.T) {
	seeds := []uint64{3, 4, 5, 6}
	serial := make([]uint64, len(seeds))
	for i, seed := range seeds {
		serial[i] = runCfg(t, faultyConfig(policy.LERT, seed)).TraceDigest
	}
	parallel := make([]uint64, len(seeds))
	done := make(chan int)
	for i, seed := range seeds {
		go func(i int, seed uint64) {
			cfg := faultyConfig(policy.LERT, seed)
			sys, err := New(cfg)
			if err == nil {
				parallel[i] = sys.Run().TraceDigest
			}
			done <- i
		}(i, seed)
	}
	for range seeds {
		<-done
	}
	for i := range seeds {
		if serial[i] != parallel[i] {
			t.Errorf("seed %d: serial digest %x != parallel %x", seeds[i], serial[i], parallel[i])
		}
	}
}

// TestFaultNoopMatchesDisabled: enabling the subsystem with MTTF = +Inf
// and a clean network must leave every measurement identical to a
// disabled run. (The event stream gains watchdog timers, so the trace
// digest legitimately differs — the model's behavior must not.)
func TestFaultNoopMatchesDisabled(t *testing.T) {
	for _, kind := range []policy.Kind{policy.Local, policy.Random, policy.BNQ, policy.LERT} {
		t.Run(kind.String(), func(t *testing.T) {
			base := faultyConfig(kind, 7)
			base.Fault = fault.Config{}
			noop := faultyConfig(kind, 7)
			noop.Fault = fault.Default()
			noop.Fault.MTTF = math.Inf(1)
			noop.Fault.DropProb = 0
			noop.Fault.DelayMean = 0

			a := runCfg(t, base)
			b := runCfg(t, noop)
			if b.QueriesLost != 0 || b.QueriesRetried != 0 || b.QueriesRejected != 0 || b.SiteCrashes != 0 {
				t.Fatalf("noop fault run lost/retried/rejected/crashed: %+v", b)
			}
			for s, d := range b.Downtime {
				if d != 0 {
					t.Fatalf("noop fault run has downtime %v at site %d", d, s)
				}
			}
			// Normalize the fields that legitimately differ in shape.
			// The watchdog timers are extra fired events, so the kernel's
			// event count (like the digest) differs by design.
			a.TraceDigest, b.TraceDigest = 0, 0
			if b.EventsFired <= a.EventsFired {
				t.Errorf("noop fault run fired %d events, disabled %d: watchdogs missing?", b.EventsFired, a.EventsFired)
			}
			a.EventsFired, b.EventsFired = 0, 0
			a.Downtime, b.Downtime = nil, nil
			if !reflect.DeepEqual(a, b) {
				t.Errorf("noop fault run differs from disabled run:\n%+v\nvs\n%+v", a, b)
			}
		})
	}
}

// rejectAllPolicy always returns NoSite.
type rejectAllPolicy struct{}

func (rejectAllPolicy) Name() string                                 { return "REJECT" }
func (rejectAllPolicy) Select(*workload.Query, int, *policy.Env) int { return policy.NoSite }

// TestNoSiteRejectsInsteadOfPanic: a policy returning NoSite must lead
// to a counted rejection — with the terminal returning to think — not a
// panic or a stuck terminal.
func TestNoSiteRejectsInsteadOfPanic(t *testing.T) {
	cfg := Default()
	cfg.CustomPolicy = rejectAllPolicy{}
	cfg.Warmup = 200
	cfg.Measure = 3000
	cfg.Audit = true
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := sys.Run()
	if err := sys.Audit(); err != nil {
		t.Fatalf("audit: %v", err)
	}
	if r.Completed != 0 {
		t.Errorf("%d completions under an always-reject policy", r.Completed)
	}
	if r.QueriesRejected == 0 {
		t.Error("no rejections counted")
	}
	// Terminals must keep cycling: far more rejections than one per
	// terminal means they returned to the think state each time.
	if min := uint64(cfg.NumSites * cfg.MPL * 2); r.QueriesRejected < min {
		t.Errorf("only %d rejections over the horizon, want ≥ %d (stuck terminals?)",
			r.QueriesRejected, min)
	}
}

// TestRetryExhaustionRejects: with every remote site down more often
// than not and retries capped at zero, lost queries must surface as
// rejections rather than vanish.
func TestRetryExhaustionRejects(t *testing.T) {
	cfg := faultyConfig(policy.LERT, 9)
	cfg.Fault.MaxRetries = 0
	r := runCfg(t, cfg)
	if r.QueriesLost == 0 {
		t.Fatal("no losses to exercise the retry budget")
	}
	if r.QueriesRetried != 0 {
		t.Errorf("%d retries with MaxRetries = 0", r.QueriesRetried)
	}
	if r.QueriesRejected == 0 {
		t.Error("losses with a zero retry budget produced no rejections")
	}
}
