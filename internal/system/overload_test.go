package system

import (
	"bytes"
	"math"
	"sort"
	"strconv"
	"strings"
	"testing"

	"dqalloc/internal/arrival"
	"dqalloc/internal/fault"
	"dqalloc/internal/policy"
)

// overloadCfg is the shared small-horizon configuration for the overload
// extension's tests: 4 sites, audited, digest on.
func overloadCfg() Config {
	cfg := Default()
	cfg.NumSites = 4
	cfg.MPL = 5
	cfg.Warmup = 500
	cfg.Measure = 6000
	cfg.Seed = 7
	cfg.Audit = true
	cfg.TraceDigest = true
	return cfg
}

func runOverload(t *testing.T, cfg Config) Results {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := s.Run()
	if err := s.Audit(); err != nil {
		t.Fatalf("auditor violation: %v", err)
	}
	return r
}

func TestOverloadConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		ok   bool
	}{
		{"all disabled", func(c *Config) {}, true},
		{"poisson", func(c *Config) { c.Arrival = arrival.DefaultPoisson(0.2) }, true},
		{"mmpp", func(c *Config) { c.Arrival = arrival.DefaultMMPP(0.2) }, true},
		{"zero rate", func(c *Config) { c.Arrival = arrival.Config{Enabled: true, Process: arrival.Poisson} }, false},
		{"mmpp factor below one", func(c *Config) {
			c.Arrival = arrival.DefaultMMPP(0.2)
			c.Arrival.BurstFactor = 0.5
		}, false},
		{"deadline default", func(c *Config) { c.Deadline = DefaultDeadline() }, true},
		{"deadline zero budget", func(c *Config) { c.Deadline = DeadlineConfig{Enabled: true} }, false},
		{"deadline nan", func(c *Config) { c.Deadline = DeadlineConfig{Enabled: true, Deadline: math.NaN()} }, false},
		{"hedge default", func(c *Config) { c.Hedge = DefaultHedge() }, true},
		{"hedge quantile one", func(c *Config) { c.Hedge = HedgeConfig{Enabled: true, Quantile: 1, MinDelay: 10} }, false},
		{"hedge zero delay", func(c *Config) { c.Hedge = HedgeConfig{Enabled: true, Quantile: 0.9} }, false},
		{"hedge inf delay", func(c *Config) {
			c.Hedge = HedgeConfig{Enabled: true, Quantile: 0.9, MinDelay: math.Inf(1)}
		}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := overloadCfg()
			tc.mut(&cfg)
			err := cfg.Validate()
			if tc.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}

// TestOpenArrivalsPoisson: the open Poisson source drives the system at
// the configured offered load; throughput tracks it and the auditors
// stay quiet with the closed-population bound waived.
func TestOpenArrivalsPoisson(t *testing.T) {
	cfg := overloadCfg()
	cfg.Arrival = arrival.DefaultPoisson(0.2)
	r := runOverload(t, cfg)
	horizon := cfg.Warmup + cfg.Measure
	got := float64(r.OpenArrivals) / horizon
	if math.Abs(got-0.2) > 0.02 {
		t.Fatalf("realized arrival rate %v, want ≈0.2", got)
	}
	if r.Completed == 0 {
		t.Fatal("no completions under open arrivals")
	}
	// Offered load 0.2 is well under capacity (≈0.38), so almost every
	// arrival inside the window completes.
	if math.Abs(r.Throughput-0.2) > 0.03 {
		t.Fatalf("throughput %v, want ≈ offered load 0.2", r.Throughput)
	}
	if r.RespQuantiles.P50 <= 0 || r.RespQuantiles.P99 < r.RespQuantiles.P50 {
		t.Fatalf("implausible quantiles %+v", r.RespQuantiles)
	}
}

// TestOpenArrivalsMMPPDeterminism: two same-seed bursty runs are
// event-for-event identical.
func TestOpenArrivalsMMPPDeterminism(t *testing.T) {
	cfg := overloadCfg()
	cfg.Arrival = arrival.DefaultMMPP(0.2)
	a := runOverload(t, cfg)
	b := runOverload(t, cfg)
	if a.TraceDigest == 0 || a.TraceDigest != b.TraceDigest {
		t.Fatalf("same-seed MMPP digests differ: %#x vs %#x", a.TraceDigest, b.TraceDigest)
	}
	if a.Completed != b.Completed || a.OpenArrivals != b.OpenArrivals {
		t.Fatalf("same-seed MMPP results differ: %+v vs %+v", a, b)
	}
	if a.OpenArrivals == 0 {
		t.Fatal("MMPP source produced no arrivals")
	}
}

// TestDeadlineLedger: a tight deadline produces both met and missed
// queries, every miss is an abort and a rejection, and the
// deadline-conservation auditor holds throughout.
func TestDeadlineLedger(t *testing.T) {
	cfg := overloadCfg()
	cfg.Deadline = DeadlineConfig{Enabled: true, Deadline: 40}
	r := runOverload(t, cfg)
	if r.DeadlineMet == 0 || r.DeadlineMisses == 0 {
		t.Fatalf("want both met and missed deadlines, got met=%d missed=%d",
			r.DeadlineMet, r.DeadlineMisses)
	}
	if r.QueriesAborted != r.DeadlineMisses {
		t.Fatalf("aborted %d != missed %d", r.QueriesAborted, r.DeadlineMisses)
	}
	if r.QueriesRejected < r.QueriesAborted {
		t.Fatalf("rejected %d < aborted %d (every abort is a rejection)",
			r.QueriesRejected, r.QueriesAborted)
	}
}

// TestHedgingRacesAndWins: under load with remote transfers, hedges
// launch and some clones win; the ledgers balance at every event.
func TestHedgingRacesAndWins(t *testing.T) {
	cfg := overloadCfg()
	cfg.MPL = 20
	cfg.ThinkTime = 150
	cfg.Hedge = HedgeConfig{Enabled: true, Quantile: 0.9, MinDelay: 25}
	r := runOverload(t, cfg)
	if r.Hedged == 0 {
		t.Fatal("no hedges launched under load")
	}
	if r.HedgeWins > r.Hedged {
		t.Fatalf("wins %d exceed launches %d", r.HedgeWins, r.Hedged)
	}
	if r.Completed == 0 {
		t.Fatal("no completions")
	}
}

// TestQuantileBracketsExact: the histogram's p50 and p95 must sit near
// the exact sample quantiles of a traced run's responses (the
// satellite's accuracy claim, end to end through the system layer).
func TestQuantileBracketsExact(t *testing.T) {
	cfg := overloadCfg()
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	cfg.Trace = tr
	r := runOverload(t, cfg)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	var resp []float64
	for _, line := range lines[1:] { // skip header
		f := strings.Split(line, ",")
		v, err := strconv.ParseFloat(f[7], 64)
		if err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		resp = append(resp, v)
	}
	if len(resp) < 100 {
		t.Fatalf("only %d traced completions", len(resp))
	}
	sort.Float64s(resp)
	for _, tc := range []struct {
		q    float64
		got  float64
		name string
	}{
		{0.5, r.RespQuantiles.P50, "p50"},
		{0.95, r.RespQuantiles.P95, "p95"},
	} {
		exact := resp[int(math.Ceil(tc.q*float64(len(resp))))-1]
		// The traced responses are %.4f-rounded, so allow the histogram's
		// 2% relative error plus a little rounding slack.
		if math.Abs(tc.got-exact) > 0.021*exact+1e-3 {
			t.Fatalf("histogram %s %v vs exact %v", tc.name, tc.got, exact)
		}
	}
}

// TestOverloadChaosAllSubsystems is the acceptance sweep: bursty MMPP
// arrivals, deadlines, hedging, fault injection, and admission control
// all enabled at once, audited, across four policies — zero violations
// and a balanced deadline ledger on every run.
func TestOverloadChaosAllSubsystems(t *testing.T) {
	for _, kind := range []policy.Kind{policy.Local, policy.BNQ, policy.BNQRD, policy.LERT} {
		t.Run(kind.String(), func(t *testing.T) {
			cfg := overloadCfg()
			cfg.PolicyKind = kind
			cfg.InfoMode = InfoPeriodic
			cfg.InfoPeriod = 25
			cfg.Arrival = arrival.DefaultMMPP(0.2)
			cfg.Deadline = DeadlineConfig{Enabled: true, Deadline: 250}
			cfg.Hedge = HedgeConfig{Enabled: true, Quantile: 0.9, MinDelay: 25}
			cfg.Fault = fault.Default()
			cfg.Fault.MTTF = 2000
			cfg.Fault.MTTR = 300
			cfg.Fault.DropProb = 0.03
			cfg.Admission = DefaultAdmission()
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			r := s.Run()
			if err := s.Audit(); err != nil {
				t.Fatalf("auditor violation: %v", err)
			}
			if r.Completed == 0 {
				t.Fatal("no completions under chaos")
			}
			// The final ledger must balance by hand, not just via the
			// auditor: armed == met + missed + cancelled + pending, and
			// launched == wins + cancelled + racing.
			tot := s.overloadTotals()
			if tot.Armed != tot.Met+tot.Missed+tot.Cancelled+uint64(tot.Pending) {
				t.Fatalf("deadline ledger unbalanced: %+v", tot)
			}
			if tot.HedgesLaunched != tot.HedgeWins+tot.HedgeCancelled+uint64(tot.HedgePending) {
				t.Fatalf("hedge ledger unbalanced: %+v", tot)
			}
			if got := s.hedge.activeClones; got != len(s.hedge.byClone) {
				t.Fatalf("clone census %d != byClone index size %d", got, len(s.hedge.byClone))
			}
		})
	}
}

// TestClosedModeUnaffectedByHistogram: the always-on histograms must not
// disturb a plain closed run — digest equality with the recorded golden
// is covered by TestGoldenDigestsWithKnobsDisabled; here two fresh runs
// with and without the Deadline/Hedge structs zero-valued confirm the
// zero values change nothing.
func TestClosedModeUnaffectedByHistogram(t *testing.T) {
	cfg := overloadCfg()
	a := runOverload(t, cfg)
	cfg2 := overloadCfg()
	cfg2.Deadline = DeadlineConfig{}
	cfg2.Hedge = HedgeConfig{}
	cfg2.Arrival = arrival.Config{}
	b := runOverload(t, cfg2)
	if a.TraceDigest != b.TraceDigest {
		t.Fatalf("zero-valued overload knobs changed the digest: %#x vs %#x",
			a.TraceDigest, b.TraceDigest)
	}
}
