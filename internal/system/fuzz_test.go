package system

import (
	"testing"
	"testing/quick"

	"dqalloc/internal/policy"
	"dqalloc/internal/workload"
)

// TestRandomConfigsHoldInvariants is a model-level property test: for
// randomly drawn (small) valid configurations, a run completes and the
// core invariants hold — non-negative waits, response = service + wait,
// utilizations in [0,1], and the load table within the closed
// population.
func TestRandomConfigsHoldInvariants(t *testing.T) {
	kinds := []policy.Kind{policy.Local, policy.Random, policy.BNQ, policy.BNQRD, policy.LERT}
	f := func(seed uint64, sitesRaw, mplRaw, kindRaw, pioRaw, thinkRaw uint8) bool {
		cfg := Default()
		cfg.Seed = seed
		cfg.NumSites = int(sitesRaw%5) + 2 // 2..6
		cfg.MPL = int(mplRaw%10) + 3       // 3..12
		cfg.PolicyKind = kinds[int(kindRaw)%len(kinds)]
		pio := 0.1 + float64(pioRaw%9)/10.0 // 0.1..0.9
		cfg.ClassProbs = []float64{pio, 1 - pio}
		cfg.ThinkTime = 100 + float64(thinkRaw%4)*100
		cfg.Warmup = 300
		cfg.Measure = 2500

		sys, err := New(cfg)
		if err != nil {
			t.Logf("config rejected: %v", err)
			return false
		}
		r := sys.Run()
		if r.Completed == 0 {
			t.Logf("no completions for %+v", cfg)
			return false
		}
		for _, c := range r.ByClass {
			if c.MeanWait < -1e-9 {
				t.Logf("negative wait %v", c.MeanWait)
				return false
			}
			if c.Completed > 0 && c.MeanResp+1e-9 < c.MeanExecService {
				t.Logf("response below service")
				return false
			}
		}
		for _, u := range []float64{r.CPUUtil, r.DiskUtil, r.SubnetUtil} {
			if u < 0 || u > 1+1e-9 {
				t.Logf("utilization %v out of range", u)
				return false
			}
		}
		total := sys.table.Total()
		return total >= 0 && total <= cfg.NumSites*cfg.MPL
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// FuzzConfigAudit drives the full model under the runtime auditors: any
// valid configuration in the fuzzed range must build, run to completion
// without panicking, and leave every invariant auditor silent — query
// conservation, utilization bounds, Little's law, clock monotonicity,
// and ring message conservation.
func FuzzConfigAudit(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0))
	f.Add(uint64(42), uint8(4), uint8(9), uint8(2), uint8(8), uint8(3))
	f.Add(uint64(7), uint8(2), uint8(5), uint8(4), uint8(4), uint8(1))
	kinds := []policy.Kind{policy.Local, policy.Random, policy.BNQ, policy.BNQRD, policy.LERT}
	f.Fuzz(func(t *testing.T, seed uint64, sitesRaw, mplRaw, kindRaw, pioRaw, thinkRaw uint8) {
		cfg := Default()
		cfg.Seed = seed
		cfg.NumSites = int(sitesRaw%6) + 1 // 1..6
		cfg.MPL = int(mplRaw%10) + 2       // 2..11
		cfg.PolicyKind = kinds[int(kindRaw)%len(kinds)]
		pio := 0.1 + float64(pioRaw%9)/10.0 // 0.1..0.9
		cfg.ClassProbs = []float64{pio, 1 - pio}
		cfg.ThinkTime = 50 + float64(thinkRaw%8)*50
		cfg.Warmup = 200
		cfg.Measure = 2000
		cfg.Audit = true
		cfg.TraceDigest = true

		sys, err := New(cfg)
		if err != nil {
			t.Fatalf("valid config rejected: %v", err)
		}
		r := sys.Run()
		if err := sys.Audit(); err != nil {
			t.Fatalf("auditor violation (sites=%d mpl=%d policy=%v think=%v seed=%d): %v",
				cfg.NumSites, cfg.MPL, cfg.PolicyKind, cfg.ThinkTime, seed, err)
		}
		if r.TraceDigest == 0 {
			t.Error("trace digest is zero after a run")
		}
	})
}

// TestThreeClassWorkload verifies the model is not hard-wired to two
// classes: a three-class mix runs and reports per-class metrics.
func TestThreeClassWorkload(t *testing.T) {
	cfg := Default()
	cfg.Classes = []workload.Class{
		{Name: "io", PageCPUTime: 0.05, NumReads: 20, MsgLength: 1},
		{Name: "mid", PageCPUTime: 0.4, NumReads: 15, MsgLength: 1},
		{Name: "cpu", PageCPUTime: 1.0, NumReads: 20, MsgLength: 1},
	}
	cfg.ClassProbs = []float64{0.4, 0.2, 0.4}
	cfg.Warmup = 1000
	cfg.Measure = 15000
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := sys.Run()
	if len(r.ByClass) != 3 {
		t.Fatalf("ByClass has %d entries, want 3", len(r.ByClass))
	}
	for _, c := range r.ByClass {
		if c.Completed == 0 {
			t.Errorf("class %s completed nothing", c.Name)
		}
	}
	// Fairness is defined over the first two classes; it must be finite.
	if r.Fairness != r.ByClass[0].NormWait-r.ByClass[1].NormWait {
		t.Error("Fairness not the class-0/class-1 normalized difference")
	}
}

// TestSingleSiteDegenerates: with one site every policy reduces to
// LOCAL.
func TestSingleSiteDegenerates(t *testing.T) {
	waits := map[policy.Kind]float64{}
	for _, kind := range []policy.Kind{policy.Local, policy.BNQ, policy.LERT} {
		cfg := Default()
		cfg.NumSites = 1
		cfg.PolicyKind = kind
		cfg.Warmup = 500
		cfg.Measure = 8000
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r := sys.Run()
		waits[kind] = r.MeanWait
		if r.RemoteFrac != 0 || r.SubnetUtil != 0 {
			t.Errorf("%v: single site used the network", kind)
		}
	}
	if waits[policy.Local] != waits[policy.BNQ] || waits[policy.BNQ] != waits[policy.LERT] {
		t.Errorf("single-site runs differ across policies: %v", waits)
	}
}
