package system

import (
	"fmt"

	"dqalloc/internal/check"
	"dqalloc/internal/loadinfo"
	"dqalloc/internal/network"
	"dqalloc/internal/noise"
	"dqalloc/internal/policy"
	"dqalloc/internal/rng"
	"dqalloc/internal/sim"
	"dqalloc/internal/site"
	"dqalloc/internal/stats"
	"dqalloc/internal/workload"
)

// Event kinds tagged onto this package's scheduler events for the trace
// digest (see sim.Event.Kind).
const (
	eventKindThink byte = 0x41
	eventKindBegin byte = 0x42
)

// System is one instantiated simulation of the paper's model. Build it
// with New and produce measurements with Run; a System is single-use.
type System struct {
	cfg   Config
	sched *sim.Scheduler

	sites []*site.Site
	ring  *network.Ring
	gen   *workload.Generator
	table *loadinfo.Table
	bcast *loadinfo.Broadcaster
	pol   policy.Policy
	env   *policy.Env

	think     []*rng.Stream // per-site terminal think streams
	thinkFns  []sim.Action  // per-site submit actions, preallocated so think events cost no closure
	objStream *rng.Stream   // object sampling (partial replication)

	measuring bool
	startAt   float64

	waits      []stats.Welford // per-class waiting times
	responses  []stats.Welford
	services   []stats.Welford
	execSvcs   []stats.Welford
	allWaits   stats.Welford
	batchW     *stats.BatchMeans
	allResp    stats.Welford
	remote     uint64
	transfers  uint64 // allocations that chose a remote site (measured window)
	allocs     uint64
	migrations uint64
	allSites   []int // cached candidate list for full replication

	aud    *check.Set // runtime invariant auditors, nil when auditing is off
	audErr error      // first violation, latched at collect

	faults   *faultRuntime // fault-injection state, nil when disabled
	rejected uint64        // queries given up on (no allowed site / retries exhausted / shed)

	slow *slowRuntime      // fail-slow injection state, nil when disabled
	susp *suspicionRuntime // gray-failure detector, nil when disabled

	repl  *replRuntime // self-healing replica manager, nil when disabled
	avail *fragAvail   // fragment reachability tracker, nil unless a placement runs under site failures

	noise *noise.Injector   // estimation-error injector, nil when disabled
	adm   *admissionRuntime // overload admission control, nil when disabled

	herd        uint64 // measured remote allocations onto a truly busier site
	estReadsErr stats.Welford
	estCPUErr   stats.Welford

	arr     *arrivalRuntime  // open-arrival sources, nil in closed mode
	dl      *deadlineRuntime // per-query deadlines, nil when disabled
	hedge   *hedgeRuntime    // hedged execution, nil when disabled
	aborted uint64           // queries withdrawn by a deadline abort

	par *parallelRuntime // operator-tree queries, nil when disabled

	// defunct flags queries cancelled while a delivery for them was in
	// flight; the delivery consumes the flag. nil unless deadlines or
	// hedging are on.
	defunct      map[*workload.Query]struct{}
	hedgeScratch []int // reusable candidate buffer for hedge re-selection

	// respHists are the per-class measured response-time histograms (plus
	// the all-classes aggregate) behind the tail quantiles in Results and
	// the hedge trigger. Always built; adding a sample costs no
	// allocation and no events, so disabled-knob digests are unaffected.
	respHists   []*stats.LogHistogram
	allRespHist *stats.LogHistogram
}

// New assembles a system from cfg. The configuration is validated and the
// model is built but no events run until Run.
func New(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &System{cfg: cfg, sched: sim.NewImpl(cfg.Scheduler)}
	root := rng.NewStream(cfg.Seed)

	var err error
	s.gen, err = workload.NewGenerator(cfg.Classes, cfg.ClassProbs, cfg.EstimateMode, root.Child(1))
	if err != nil {
		return nil, fmt.Errorf("system: %w", err)
	}

	s.pol = cfg.CustomPolicy
	if s.pol == nil {
		if cfg.Tuning.Enabled() {
			// The anti-herd knobs draw from their own root child, so an
			// untuned run's policy stream (Child 2) is untouched.
			s.pol, err = policy.NewTuned(cfg.PolicyKind, cfg.NumSites, cfg.Tuning, root.Child(8))
		} else {
			s.pol, err = policy.New(cfg.PolicyKind, cfg.NumSites, root.Child(2))
		}
		if err != nil {
			return nil, fmt.Errorf("system: %w", err)
		}
	}

	if cfg.Noise.Enabled {
		s.noise, err = noise.NewInjector(cfg.Noise, len(cfg.Classes), root.Child(7))
		if err != nil {
			return nil, fmt.Errorf("system: %w", err)
		}
	}
	if cfg.Admission.Enabled {
		s.adm = &admissionRuntime{cfg: cfg.Admission, stream: root.Child(9)}
	}

	s.ring = network.NewRing(s.sched, cfg.NumSites, cfg.MsgTime)
	s.table = loadinfo.NewTable(cfg.NumSites)

	var view loadinfo.View = s.table
	if cfg.InfoMode == InfoPeriodic {
		s.bcast, err = loadinfo.NewBroadcaster(s.sched, s.table, cfg.InfoPeriod)
		if err != nil {
			return nil, fmt.Errorf("system: %w", err)
		}
		view = s.bcast
	}

	s.env = &policy.Env{
		View:     view,
		NumSites: cfg.NumSites,
		NumDisks: cfg.NumDisks,
		DiskTime: cfg.DiskTime,
		NetTime: func(q *workload.Query, from, to int) float64 {
			if from == to {
				return 0
			}
			return 2 * s.ring.TransmitTime(cfg.Classes[q.Class].MsgLength)
		},
		CPUSpeeds: cfg.CPUSpeeds,
	}

	siteCfg := site.Config{
		NumDisks:      cfg.NumDisks,
		DiskTime:      cfg.DiskTime,
		DiskTimeDev:   cfg.DiskTimeDev,
		DiskDist:      cfg.DiskDist,
		DiskSelection: cfg.DiskSelection,
		Classes:       cfg.Classes,
	}
	if cfg.Migration.Enabled {
		siteCfg.CycleHook = s.maybeMigrate
	}
	s.sites = make([]*site.Site, cfg.NumSites)
	s.think = make([]*rng.Stream, cfg.NumSites)
	s.thinkFns = make([]sim.Action, cfg.NumSites)
	for i := range s.thinkFns {
		home := i
		s.thinkFns[i] = func() { s.submit(home) }
	}
	for i := range s.sites {
		sc := siteCfg
		if cfg.CPUSpeeds != nil {
			sc.CPUSpeed = cfg.CPUSpeeds[i]
		}
		s.sites[i], err = site.New(i, s.sched, sc, root.Child(uint64(100+i)), s.onExecDone)
		if err != nil {
			return nil, err
		}
		s.think[i] = root.Child(uint64(1000 + i))
	}

	if cfg.Placement != nil {
		s.objStream = root.Child(3)
	}

	if cfg.Fault.Enabled {
		if err := s.setupFaults(root); err != nil {
			return nil, fmt.Errorf("system: %w", err)
		}
	}
	if cfg.Fault.SlowFaults() || cfg.Fault.Brownouts() {
		// Child 13 is the fail-slow injector's dedicated stream, so
		// crash-only fault runs never perturb their streams.
		if err := s.setupSlow(root.Child(13)); err != nil {
			return nil, fmt.Errorf("system: %w", err)
		}
	}
	if cfg.Suspect.Enabled {
		if err := s.setupSuspicion(); err != nil {
			return nil, fmt.Errorf("system: %w", err)
		}
	}
	if cfg.Replication.Enabled {
		// Child 11 is the replica manager's dedicated stream
		// (donor/target/drop-victim picks), so a manager-off run's
		// streams are untouched.
		if err := s.setupReplication(root.Child(11)); err != nil {
			return nil, fmt.Errorf("system: %w", err)
		}
	}
	if cfg.Placement != nil && cfg.Fault.SiteFailures() {
		s.setupFragAvail()
	}

	if cfg.Arrival.Enabled {
		// Child 10 is the arrival layer's dedicated stream, so open-mode
		// runs never perturb the closed-mode streams.
		if err := s.setupArrivals(root.Child(10)); err != nil {
			return nil, fmt.Errorf("system: %w", err)
		}
	}
	if cfg.Deadline.Enabled {
		s.dl = &deadlineRuntime{cfg: cfg.Deadline, timers: make(map[*workload.Query]sim.Handle)}
	}
	if cfg.Hedge.Enabled {
		s.hedge = &hedgeRuntime{
			cfg:     cfg.Hedge,
			races:   make(map[*workload.Query]*hedgeRace),
			byClone: make(map[*workload.Query]*hedgeRace),
		}
	}
	if cfg.Parallel.Enabled {
		// Child 12 is the plan sampler's dedicated stream, so runs
		// without operator trees — and enabled runs whose plans all
		// degenerate to single scans — leave every other stream
		// untouched.
		if err := s.setupParallel(root.Child(12)); err != nil {
			return nil, fmt.Errorf("system: %w", err)
		}
	}
	if s.dl != nil || s.hedge != nil || s.par != nil {
		s.defunct = make(map[*workload.Query]struct{})
	}

	if cfg.Audit {
		// Open arrivals unbound the population; hedge clones and
		// operator carriers join the audited population too, so any of
		// these knobs waives the closed bound.
		capacity := cfg.NumSites * cfg.MPL
		if cfg.Arrival.Enabled || cfg.Hedge.Enabled || cfg.Parallel.Enabled {
			capacity = 0
		}
		auditors := []check.Auditor{
			check.NewConservation(capacity, s.table.Total, s.siteCounts),
			check.NewUtilization(),
			check.NewLittlesLaw(),
			check.NewMonotonicity(),
			check.NewRingConservation(s.ring),
		}
		if s.faults != nil {
			auditors = append(auditors, check.NewFaultConservation(capacity, s.faults.totals))
		}
		if s.slow != nil {
			auditors = append(auditors, check.NewSlowFaultConservation(cfg.NumSites, s.slow.totals))
		}
		if s.adm != nil {
			auditors = append(auditors, check.NewAdmissionConservation(capacity, s.adm.totals))
		}
		if s.dl != nil || s.hedge != nil {
			auditors = append(auditors, check.NewDeadlineConservation(s.overloadTotals))
		}
		if s.repl != nil {
			auditors = append(auditors, check.NewReplicationConservation(s.replState))
		}
		if s.par != nil {
			auditors = append(auditors, check.NewOperatorConservation(s.parTotals))
		}
		s.aud = check.NewSet(auditors...)
		s.sched.Observe(s.aud.EventFired)
	}
	if cfg.TraceDigest {
		s.sched.EnableDigest()
	}

	n := len(cfg.Classes)
	s.waits = make([]stats.Welford, n)
	s.responses = make([]stats.Welford, n)
	s.services = make([]stats.Welford, n)
	s.execSvcs = make([]stats.Welford, n)
	s.batchW = stats.NewBatchMeans(24)
	s.respHists = make([]*stats.LogHistogram, n)
	for i := range s.respHists {
		s.respHists[i] = stats.NewLogHistogram(histLo, histHi, histRelErr)
	}
	s.allRespHist = stats.NewLogHistogram(histLo, histHi, histRelErr)
	return s, nil
}

// Run executes the simulation — warmup followed by the measured horizon —
// and returns the collected results.
func (s *System) Run() Results {
	if s.arr != nil {
		// Open mode: the arrival sources drive submissions; the closed
		// terminals stay idle.
		for _, src := range s.arr.sources {
			src.Start()
		}
	} else {
		// Every terminal starts in its think state.
		for home := range s.sites {
			for t := 0; t < s.cfg.MPL; t++ {
				s.startThink(home)
			}
		}
	}
	if s.cfg.Warmup > 0 {
		ev := s.sched.At(s.cfg.Warmup, s.beginMeasurement)
		ev.SetKind(eventKindBegin)
	} else {
		s.beginMeasurement()
	}
	end := s.cfg.Warmup + s.cfg.Measure
	s.sched.RunUntil(end)
	if s.bcast != nil {
		s.bcast.Stop()
	}
	return s.collect(end)
}

// beginMeasurement discards the warmup transient.
func (s *System) beginMeasurement() {
	now := s.sched.Now()
	s.measuring = true
	s.startAt = now
	for _, st := range s.sites {
		st.ResetStats(now)
	}
	s.ring.ResetStats(now)
	if s.faults != nil {
		s.faults.inj.ResetStats(now)
	}
	if s.slow != nil {
		s.slow.inj.ResetStats(now)
	}
	if s.avail != nil {
		s.availReset(now)
	}
	if s.aud != nil {
		s.aud.MeasureStarted(now)
	}
}

// startThink puts one terminal at the given site into its think state;
// when the think time expires the terminal submits a new query.
func (s *System) startThink(home int) {
	ev := s.sched.After(s.think[home].Exp(s.cfg.ThinkTime), s.thinkFns[home])
	ev.SetKind(eventKindThink)
}

// submit realizes the allocation decision point of Figure 2: a new query
// is generated (its optimizer estimates perturbed when estimation-error
// injection is on) and handed to the allocation path.
func (s *System) submit(home int) {
	q := s.gen.New(home, s.sched.Now())
	if s.noise != nil {
		// Policies decide on the noisy estimates; execution consumes the
		// true sampled demands (ReadsTotal and the sites' service draws).
		s.noise.Perturb(q)
	}
	if s.cfg.Placement != nil {
		q.Object = s.objStream.Intn(s.cfg.Placement.NumObjects())
	}
	if s.aud != nil {
		s.aud.Submitted(s.sched.Now())
	}
	if s.par != nil {
		s.parSubmit(q)
		return
	}
	s.allocate(q)
}

// allocate runs the policy and admission control for a new or
// resubmitted query: the policy chooses its execution site, the chosen
// site's admission bound is enforced, and the query is either admitted
// locally or shipped over the ring. A query no site may execute (empty
// candidate set, or every copy holder down) is rejected rather than
// dispatched.
func (s *System) allocate(q *workload.Query) {
	s.deadlineArm(q)
	exec := s.selectSite(q)
	if exec == policy.NoSite {
		if s.repl != nil {
			s.repl.noReplica++
		}
		s.rejectQuery(q)
		return
	}
	if exec < 0 || exec >= s.cfg.NumSites {
		panic(fmt.Sprintf("system: policy %s chose invalid site %d", s.pol.Name(), exec))
	}
	if s.cfg.Placement != nil && !q.Degraded && !s.holdsLive(exec, q.Object) {
		panic(fmt.Sprintf("system: policy %s chose site %d without a copy of object %d",
			s.pol.Name(), exec, q.Object))
	}
	if s.adm != nil && s.overloadedAt(exec) {
		s.admissionBounce(q)
		return
	}
	if s.repl != nil && s.repl.cfg.LoadDriven() {
		s.repl.mgr.Touch(q.Object, s.sched.Now())
	}
	s.recordAlloc(q, exec)
	s.faultArm(q)
	s.dispatch(q, exec)
	s.hedgeArm(q)
}

// recordAlloc accumulates the measured-window allocation statistics at
// the commit point — after admission, so bounced attempts do not count
// as allocations.
func (s *System) recordAlloc(q *workload.Query, exec int) {
	if !s.measuring {
		return
	}
	s.allocs++
	if exec != q.Home {
		s.transfers++
		// A herd transfer moves the query onto a site that is truly
		// busier than home at the decision instant: the policy's (stale
		// or noise-misled) view contradicted the ground-truth table.
		if s.table.NumQueries(exec) > s.table.NumQueries(q.Home) {
			s.herd++
		}
		if s.susp != nil && s.susp.det.Suspected(q.Home) {
			// The detector steered the query off its suspect home.
			s.susp.suspectTransfers++
		}
	}
	// Realized relative estimation error: what the policy believed vs the
	// query's true sampled demands. With noise off this measures the
	// intrinsic class-mean spread alone.
	if q.ReadsTotal > 0 {
		s.estReadsErr.Add(relErr(q.EstReads, float64(q.ReadsTotal)))
	}
	if truth := s.cfg.Classes[q.Class].PageCPUTime; truth > 0 {
		s.estCPUErr.Add(relErr(q.EstPageCPU, truth))
	}
}

// relErr returns |est − truth| / truth.
func relErr(est, truth float64) float64 {
	d := est - truth
	if d < 0 {
		d = -d
	}
	return d / truth
}

// dispatch commits q to the chosen execution site and starts it — either
// locally or by shipping it over the ring. It is shared by submit and
// the fault layer's retry path.
func (s *System) dispatch(q *workload.Query, exec int) {
	q.Exec = exec
	q.Phase = phaseCommitted
	s.table.Assign(exec, s.bound(q))
	s.table.AssignWork(exec, q.EstCPUDemand(), q.EstDiskDemand(s.cfg.DiskTime))
	s.replAssign(q, exec)
	if exec == q.Home {
		if !s.up(exec) {
			// Only a policy ignoring Env.Up can pick a down site; treat
			// the dispatch as instantly lost rather than execute there.
			s.releaseAllocation(q)
			s.faultLost(q)
			return
		}
		s.landQuery(q, exec)
		return
	}
	size := s.cfg.Classes[q.Class].MsgLength
	q.Service += s.ring.TransmitTime(size)
	q.NetService += s.ring.TransmitTime(size)
	if s.faults != nil {
		s.ring.Send(s.shipMessage(q, q.Home, exec, size))
		return
	}
	s.ring.Send(network.Message{
		From:      q.Home,
		To:        exec,
		Size:      size,
		OnDeliver: func() { s.execDeliver(q, exec) },
	})
}

// onExecDone fires when a query's last CPU burst ends at its execution
// site. The query stops counting against the site; remote queries ship
// their results home before the terminal sees them.
func (s *System) onExecDone(q *workload.Query) {
	if s.par != nil {
		if inst := s.par.instances[q]; inst != nil {
			// An operator carrier finished, not a whole query.
			s.parOpDone(inst, q)
			return
		}
	}
	s.table.Complete(q.Exec, s.bound(q))
	s.table.CompleteWork(q.Exec, q.EstCPUDemand(), q.EstDiskDemand(s.cfg.DiskTime))
	s.replRelease(q, q.Exec)
	if !q.Remote() {
		s.complete(q)
		return
	}
	q.Phase = phaseResult
	size := s.cfg.Classes[q.Class].MsgLength
	q.Service += s.ring.TransmitTime(size)
	q.NetService += s.ring.TransmitTime(size)
	m := network.Message{
		From:      q.Exec,
		To:        q.Home,
		Size:      size,
		OnDeliver: func() { s.resultDeliver(q) },
	}
	if s.faults != nil {
		// A dropped result page set loses the execution's output; the
		// load-table commitment was already released above, so only the
		// loss is recorded and the watchdog re-runs the query.
		m.OnDrop = func() { s.resultDropped(q) }
	}
	s.ring.Send(m)
}

// complete returns results to the query's terminal of origin, records
// metrics, and puts the terminal back into its think state. q is the
// finishing attempt (possibly a hedge clone); the race, fault watchdog,
// and deadline all settle against the logical query.
func (s *System) complete(q *workload.Query) {
	now := s.sched.Now()
	// The finishing attempt's realized slowdown feeds the gray-failure
	// detector, attributed to the site that executed it.
	s.suspectObserve(q)
	key := q
	if s.hedge != nil {
		key = s.hedgeResolve(q)
	}
	s.faultComplete(key)
	s.deadlineMet(key)
	key.Phase = phaseDone
	q.Phase = phaseDone
	if s.measuring {
		response := now - q.SubmitTime
		// Waiting is response minus pure execution service (disk + CPU).
		// Message transmission counts as waiting, matching the paper's
		// "execution time" of cpu+disk demands only (Section 5.2 quotes
		// 30.5, which excludes message time).
		wait := response - q.ExecService()
		s.waits[q.Class].Add(wait)
		s.responses[q.Class].Add(response)
		s.services[q.Class].Add(q.Service)
		s.execSvcs[q.Class].Add(q.ExecService())
		s.allWaits.Add(wait)
		s.batchW.Add(wait)
		s.allResp.Add(response)
		s.respHists[q.Class].Add(response)
		s.allRespHist.Add(response)
		if q.Remote() {
			s.remote++
		}
		if s.cfg.Trace != nil {
			s.cfg.Trace.record(q, now, s.cfg.Classes[q.Class].Name)
		}
	}
	if s.aud != nil {
		s.aud.Completed(now)
	}
	if s.arr == nil {
		s.startThink(q.Home)
	}
}

// bound classifies q exactly as the allocation heuristics do, so that
// load-table increments and decrements always match.
func (s *System) bound(q *workload.Query) workload.Bound {
	return policy.QueryBound(q, s.cfg.DiskTime, s.cfg.NumDisks)
}

// collect snapshots all metrics at the end of the measured horizon.
func (s *System) collect(end float64) Results {
	n := len(s.cfg.Classes)
	r := Results{
		Policy:       s.pol.Name(),
		Seed:         s.cfg.Seed,
		MeasuredTime: end - s.startAt,
		Completed:    s.allWaits.Count(),
		ByClass:      make([]ClassResults, n),
	}
	r.MeanWait = s.allWaits.Mean()
	r.WaitCI = s.batchW.CI()
	r.MeanResponse = s.allResp.Mean()
	for c := 0; c < n; c++ {
		cr := ClassResults{
			Name:            s.cfg.Classes[c].Name,
			Completed:       s.waits[c].Count(),
			MeanWait:        s.waits[c].Mean(),
			MeanResp:        s.responses[c].Mean(),
			MeanService:     s.services[c].Mean(),
			MeanExecService: s.execSvcs[c].Mean(),
			RespQuantiles:   s.respHists[c].Summary(),
		}
		if cr.MeanExecService > 0 {
			cr.NormWait = cr.MeanWait / cr.MeanExecService
		}
		r.ByClass[c] = cr
	}
	if n >= 2 {
		r.Fairness = r.ByClass[0].NormWait - r.ByClass[1].NormWait
	}
	cpuUtil := make([]float64, len(s.sites))
	diskUtil := make([]float64, len(s.sites))
	for i, st := range s.sites {
		cpuUtil[i] = st.CPUUtilization(end)
		diskUtil[i] = st.DiskUtilization(end)
		r.CPUUtil += cpuUtil[i]
		r.DiskUtil += diskUtil[i]
	}
	r.CPUUtil /= float64(len(s.sites))
	r.DiskUtil /= float64(len(s.sites))
	r.SubnetUtil = s.ring.Utilization(end)
	if r.MeasuredTime > 0 {
		r.Throughput = float64(r.Completed) / r.MeasuredTime
	}
	if r.Completed > 0 {
		r.RemoteFrac = float64(s.remote) / float64(r.Completed)
	}
	if s.allocs > 0 {
		r.TransferFrac = float64(s.transfers) / float64(s.allocs)
	}
	r.Migrations = s.migrations
	r.QueriesRejected = s.rejected
	r.HerdTransfers = s.herd
	if s.transfers > 0 {
		r.HerdFrac = float64(s.herd) / float64(s.transfers)
	}
	r.EstReadsErr = s.estReadsErr.Mean()
	r.EstCPUErr = s.estCPUErr.Mean()
	r.RespQuantiles = s.allRespHist.Summary()
	r.OpenArrivals = s.openArrivals()
	r.QueriesAborted = s.aborted
	if s.dl != nil {
		r.DeadlineMet = s.dl.met
		r.DeadlineMisses = s.dl.missed
	}
	if s.hedge != nil {
		r.Hedged = s.hedge.launched
		r.HedgeWins = s.hedge.wins
	}
	if s.adm != nil {
		r.QueriesShed = s.adm.shed
		r.QueriesDeferred = s.adm.deferred
	}
	r.Availability = 1
	r.AvailResponse = r.MeanResponse
	if s.faults != nil {
		r.QueriesLost = s.faults.lost
		r.QueriesRetried = s.faults.retried
		r.SiteCrashes = s.faults.inj.Crashes()
		r.Downtime = make([]float64, len(s.sites))
		var down float64
		for i := range s.sites {
			r.Downtime[i] = s.faults.inj.Downtime(i, end)
			down += r.Downtime[i]
		}
		if r.MeasuredTime > 0 {
			r.Availability = 1 - down/(float64(len(s.sites))*r.MeasuredTime)
		}
		if r.Availability > 0 {
			r.AvailResponse = r.MeanResponse / r.Availability
		}
	}
	if s.slow != nil {
		tot := s.slow.inj.Totals()
		r.SlowEpisodes = tot.Episodes
		r.Brownouts = tot.Brownouts
		r.BrownoutTime = s.slow.inj.BrownoutTime(end)
		r.DegradedTime = make([]float64, len(s.sites))
		for i := range s.sites {
			r.DegradedTime[i] = s.slow.inj.DegradedTime(i, end)
		}
		r.HedgeWinsVsSlow = s.slow.hedgeWinsVsSlow
	}
	if s.susp != nil {
		r.SuspectTransfers = s.susp.suspectTransfers
		r.SuspectSites = s.susp.det.SuspectCount()
	}
	if s.cfg.Placement != nil {
		r.FragAvailability, r.MinFragAvailability = 1, 1
		if s.avail != nil {
			r.FragAvailability, r.MinFragAvailability = s.availFinal(end)
		}
	}
	if s.repl != nil {
		r.ReplicasRebuilt = s.repl.mgr.Rebuilt()
		r.ReplicasAdded = s.repl.mgr.Added()
		r.ReplicasDropped = s.repl.mgr.Dropped()
		r.RebuildsAborted = s.repl.mgr.Aborted()
		r.MeanRebuildLatency = s.repl.mgr.MeanRebuildLatency()
		r.DegradedReads = s.repl.degraded
		r.NoReplicaRejects = s.repl.noReplica
	}
	if s.par != nil {
		r.Operators = s.par.spawned
		r.OperatorsCompleted = s.par.completedOps
		r.OperatorsAborted = s.par.abortedOps
		r.OperatorsPreempted = s.par.preempted
		r.ParallelQueries = s.par.parallelQueries
		if s.par.parallelQueries > 0 {
			r.DOPHist = s.par.dopHist
		}
		r.IntermediateBytes = s.par.interBytes
		r.OpCPUBusy = s.par.opCPUBusy
		r.OpDiskBusy = s.par.opDiskBusy
		r.OpNetBusy = s.par.opNetBusy
	}
	r.TraceDigest = s.sched.Digest()
	r.EventsFired = s.sched.Fired()
	if s.aud != nil {
		s.audErr = s.aud.Finalize(check.Final{
			Start:        s.startAt,
			End:          end,
			Completed:    r.Completed,
			MeanResponse: r.MeanResponse,
			CPUUtil:      cpuUtil,
			DiskUtil:     diskUtil,
			SubnetUtil:   r.SubnetUtil,
		})
	}
	return r
}

// Audit returns the first invariant violation the runtime auditors
// detected, or nil — always nil when Config.Audit was off. Call it after
// Run; violations found mid-run are also reported here.
func (s *System) Audit() error {
	if s.aud == nil {
		return nil
	}
	if s.audErr != nil {
		return s.audErr
	}
	return s.aud.Err()
}

// siteCounts reports every site's instantaneous census for the
// conservation auditor.
func (s *System) siteCounts(buf []check.SiteCounts) []check.SiteCounts {
	for _, st := range s.sites {
		cpu, disk := st.Occupancy()
		buf = append(buf, check.SiteCounts{Active: st.Active(), AtCPU: cpu, AtDisk: disk})
	}
	return buf
}
