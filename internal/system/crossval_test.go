package system

import (
	"math"
	"testing"

	"dqalloc/internal/mva"
	"dqalloc/internal/policy"
	"dqalloc/internal/site"
	"dqalloc/internal/workload"
)

// TestSimulatorMatchesMVA cross-validates the discrete-event simulator
// against the exact MVA solver on a configuration where the site is a
// product-form network: a single site (so allocation is trivial), one
// query class (so chain populations are fixed), exponential disk service,
// and Markovian-ish cycling. The simulated mean response time must match
// the analytical value closely.
func TestSimulatorMatchesMVA(t *testing.T) {
	const (
		mpl      = 10
		think    = 200.0
		reads    = 20.0
		pageCPU  = 0.5
		diskTime = 1.0
		numDisks = 2
	)

	cfg := Default()
	cfg.NumSites = 1
	cfg.MPL = mpl
	cfg.ThinkTime = think
	cfg.DiskDist = site.DiskExponential
	cfg.PolicyKind = policy.Local
	cfg.Classes = []workload.Class{{Name: "only", PageCPUTime: pageCPU, NumReads: reads, MsgLength: 1}}
	cfg.ClassProbs = []float64{1}
	cfg.Warmup = 5000
	cfg.Measure = 200000
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := sys.Run()

	net := mva.NewNetwork(1)
	if err := net.AddStation("think", mva.Delay, think); err != nil {
		t.Fatal(err)
	}
	if err := net.AddStation("cpu", mva.Queueing, reads*pageCPU); err != nil {
		t.Fatal(err)
	}
	for d := 0; d < numDisks; d++ {
		if err := net.AddStation("disk", mva.Queueing, reads/numDisks*diskTime); err != nil {
			t.Fatal(err)
		}
	}
	sol, err := net.Solve([]int{mpl})
	if err != nil {
		t.Fatal(err)
	}
	// Analytical response excludes think time (stations 1..3).
	wantResp := sol.ResponseTime(0) - think

	if rel := math.Abs(r.MeanResponse-wantResp) / wantResp; rel > 0.05 {
		t.Errorf("simulated response %v vs MVA %v (rel err %.3f)", r.MeanResponse, wantResp, rel)
	}
	// Throughput and utilization must agree too.
	if rel := math.Abs(r.Throughput-sol.Throughput[0]) / sol.Throughput[0]; rel > 0.05 {
		t.Errorf("simulated X %v vs MVA %v", r.Throughput, sol.Throughput[0])
	}
	if diff := math.Abs(r.CPUUtil - sol.Utilization(1)); diff > 0.03 {
		t.Errorf("simulated ρ_c %v vs MVA %v", r.CPUUtil, sol.Utilization(1))
	}
}

// TestSimulatorMatchesMVATwoChains repeats the cross-validation with two
// sites and a pinned two-class mix executed locally: each site is an
// independent product-form network, and the aggregate waiting time of
// each class must match MVA within tolerance. Because class membership is
// resampled per query (probabilistic, not a fixed chain population), we
// use the single-class-per-network decomposition: every terminal draws
// from one class only by setting the mix to a degenerate distribution per
// run.
func TestSimulatorMatchesMVATwoChains(t *testing.T) {
	const (
		mpl   = 8
		think = 150.0
	)
	for _, tt := range []struct {
		name    string
		pageCPU float64
	}{
		{name: "io-heavy", pageCPU: 0.05},
		{name: "cpu-heavy", pageCPU: 1.0},
	} {
		t.Run(tt.name, func(t *testing.T) {
			cfg := Default()
			cfg.NumSites = 2
			cfg.MPL = mpl
			cfg.ThinkTime = think
			cfg.DiskDist = site.DiskExponential
			cfg.PolicyKind = policy.Local
			cfg.Classes = []workload.Class{{Name: "only", PageCPUTime: tt.pageCPU, NumReads: 20, MsgLength: 1}}
			cfg.ClassProbs = []float64{1}
			cfg.Warmup = 5000
			cfg.Measure = 150000
			sys, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			r := sys.Run()

			net := mva.NewNetwork(1)
			if err := net.AddStation("think", mva.Delay, think); err != nil {
				t.Fatal(err)
			}
			if err := net.AddStation("cpu", mva.Queueing, 20*tt.pageCPU); err != nil {
				t.Fatal(err)
			}
			if err := net.AddStation("disk1", mva.Queueing, 10); err != nil {
				t.Fatal(err)
			}
			if err := net.AddStation("disk2", mva.Queueing, 10); err != nil {
				t.Fatal(err)
			}
			sol, err := net.Solve([]int{mpl})
			if err != nil {
				t.Fatal(err)
			}
			wantResp := sol.ResponseTime(0) - think
			if rel := math.Abs(r.MeanResponse-wantResp) / wantResp; rel > 0.06 {
				t.Errorf("simulated response %v vs MVA %v (rel err %.3f)", r.MeanResponse, wantResp, rel)
			}
		})
	}
}
