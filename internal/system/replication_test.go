package system

import (
	"testing"

	"dqalloc/internal/policy"
	"dqalloc/internal/replica"
)

// partialConfig returns a 6-site system where each object has k copies.
func partialConfig(t *testing.T, kind policy.Kind, copies int) Config {
	t.Helper()
	cfg := Default()
	cfg.PolicyKind = kind
	cfg.Warmup = 1000
	cfg.Measure = 10000
	p, err := replica.NewRoundRobin(cfg.NumSites, 60, copies)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Placement = p
	return cfg
}

func TestPartialReplicationRuns(t *testing.T) {
	for _, kind := range []policy.Kind{policy.Local, policy.Random, policy.BNQ, policy.BNQRD, policy.LERT} {
		t.Run(kind.String(), func(t *testing.T) {
			sys, err := New(partialConfig(t, kind, 2))
			if err != nil {
				t.Fatal(err)
			}
			r := sys.Run()
			if r.Completed == 0 {
				t.Fatal("no completions under partial replication")
			}
			// With 2 copies out of 6 sites, most queries find no local
			// copy, so even LOCAL must go remote often.
			if kind == policy.Local && r.RemoteFrac < 0.5 {
				t.Errorf("LOCAL remote fraction = %v, want > 0.5 (copies rarely local)", r.RemoteFrac)
			}
		})
	}
}

func TestPlacementSiteMismatchRejected(t *testing.T) {
	cfg := Default()
	p, err := replica.NewRoundRobin(4, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Placement = p // 4-site placement on a 6-site system
	if _, err := New(cfg); err == nil {
		t.Error("mismatched placement accepted")
	}
}

func TestMoreCopiesImproveLERT(t *testing.T) {
	// The Table-11 discussion: more copies give the allocator more
	// freedom. Waiting time under LERT should not get worse going from 1
	// copy (no choice at all) to full replication.
	single, err := New(partialConfig(t, policy.LERT, 1))
	if err != nil {
		t.Fatal(err)
	}
	full, err := New(partialConfig(t, policy.LERT, 6))
	if err != nil {
		t.Fatal(err)
	}
	w1, w6 := single.Run().MeanWait, full.Run().MeanWait
	if w6 >= w1 {
		t.Errorf("full replication (W̄=%v) not better than single copy (W̄=%v)", w6, w1)
	}
}

func TestSingleCopyForcesPlacement(t *testing.T) {
	// With one copy per object no policy has any freedom: all policies
	// must produce identical allocations, so identical waiting times.
	wait := make(map[string]float64)
	for _, kind := range []policy.Kind{policy.BNQ, policy.LERT} {
		sys, err := New(partialConfig(t, kind, 1))
		if err != nil {
			t.Fatal(err)
		}
		wait[kind.String()] = sys.Run().MeanWait
	}
	if wait["BNQ"] != wait["LERT"] {
		t.Errorf("single-copy runs differ: %v", wait)
	}
}
